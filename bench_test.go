// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI). Each Benchmark* below drives the corresponding experiment of
// internal/bench at a laptop scale; `go test -bench=. -benchmem` runs them
// all, and `go run ./cmd/ewhbench` prints the full tables. The recorded
// paper-versus-measured shapes live in EXPERIMENTS.md.
package ewh_test

import (
	"io"
	"testing"

	"ewh/internal/bench"
)

// benchCfg is the default benchmark configuration: J=8 machines at scale 1
// (≈ the paper's setup divided by 1000; use ewhbench -j 32 for the paper's
// J).
var benchCfg = bench.Config{Scale: 1, J: 8, Seed: 42}

func runExperiment(b *testing.B, f func(io.Writer, bench.Config) error) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Example reproduces the paper's running example (Fig. 1):
// three schemes partitioning a 16×16 band-join matrix over 3 machines.
func BenchmarkFig1Example(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.Fig1(io.Discard, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Regionalization measures the BSP-versus-MonotonicBSP
// complexity gap (Table III).
func BenchmarkTable3Regionalization(b *testing.B) { runExperiment(b, bench.TableIII) }

// BenchmarkTable4JoinCharacteristics regenerates the joins' characteristics
// (Table IV: input/output sizes and ρoi).
func BenchmarkTable4JoinCharacteristics(b *testing.B) { runExperiment(b, bench.TableIV) }

// BenchmarkTable5CSIBuckets regenerates CSI's histogram-time/join-time
// trade-off against the bucket count p (Table V).
func BenchmarkTable5CSIBuckets(b *testing.B) { runExperiment(b, bench.TableV) }

// BenchmarkFig4aTotalTime regenerates total execution time for all eight
// joins under CI, CSI and CSIO (Fig. 4a).
func BenchmarkFig4aTotalTime(b *testing.B) { runExperiment(b, bench.Fig4a) }

// BenchmarkFig4bNormalizedTime regenerates the normalized-time-versus-ρoi
// sweep over the BCB band widths (Fig. 4b).
func BenchmarkFig4bNormalizedTime(b *testing.B) { runExperiment(b, bench.Fig4b) }

// BenchmarkFig4cMemory regenerates cluster memory consumption (Fig. 4c).
func BenchmarkFig4cMemory(b *testing.B) { runExperiment(b, bench.Fig4c) }

// BenchmarkFig4dBCBScalingTime regenerates BCB-3 weak-scaling execution time
// (Fig. 4d).
func BenchmarkFig4dBCBScalingTime(b *testing.B) { runExperiment(b, bench.Fig4d) }

// BenchmarkFig4eBCBScalingMemory regenerates BCB-3 weak-scaling memory
// (Fig. 4e).
func BenchmarkFig4eBCBScalingMemory(b *testing.B) { runExperiment(b, bench.Fig4e) }

// BenchmarkFig4fBEOCDScalingTime regenerates BEOCD weak-scaling execution
// time (Fig. 4f).
func BenchmarkFig4fBEOCDScalingTime(b *testing.B) { runExperiment(b, bench.Fig4f) }

// BenchmarkFig4gBEOCDScalingMemory regenerates BEOCD weak-scaling memory
// (Fig. 4g).
func BenchmarkFig4gBEOCDScalingMemory(b *testing.B) { runExperiment(b, bench.Fig4g) }

// BenchmarkFig4hMaxRegionWeight regenerates the maximum-region-weight
// comparison including the planner's estimate (Fig. 4h).
func BenchmarkFig4hMaxRegionWeight(b *testing.B) { runExperiment(b, bench.Fig4h) }

// BenchmarkWorstCases regenerates the §VI-E worst-case analysis (bounded
// slowdown on input-dominated joins; high-selectivity fallback).
func BenchmarkWorstCases(b *testing.B) { runExperiment(b, bench.Worst) }

// BenchmarkAblations runs the design-choice studies of DESIGN.md: nc = 2J vs
// J, AdaptNS, output-sample size, and the Stream-Sample variants.
func BenchmarkAblations(b *testing.B) { runExperiment(b, bench.Ablations) }

module ewh

go 1.24

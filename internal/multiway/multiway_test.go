package multiway

import (
	"testing"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/stats"
)

// bruteForce3Way is the ground truth for R1 ⋈_A Mid ⋈_B R3.
func bruteForce3Way(q Query) int64 {
	var out int64
	for _, a := range q.R1 {
		for i := 0; i < q.Mid.Rows(); i++ {
			if !q.CondA.Matches(a, q.Mid.A[i]) {
				continue
			}
			for _, c := range q.R3 {
				if q.CondB.Matches(q.Mid.B[i], c) {
					out++
				}
			}
		}
	}
	return out
}

func randQuery(n int, seed uint64) Query {
	r := stats.NewRNG(seed)
	q := Query{
		R1:    make([]join.Key, n),
		Mid:   MidRelation{A: make([]join.Key, n), B: make([]join.Key, n)},
		R3:    make([]join.Key, n),
		CondA: join.NewBand(2),
		CondB: join.NewBand(1),
	}
	dom := int64(n) * 2
	for i := 0; i < n; i++ {
		q.R1[i] = r.Int64n(dom)
		q.Mid.A[i] = r.Int64n(dom)
		q.Mid.B[i] = r.Int64n(dom)
		q.R3[i] = r.Int64n(dom)
	}
	return q
}

func TestExecuteMatchesBruteForce(t *testing.T) {
	q := randQuery(700, 1)
	res, err := Execute(q, core.Options{J: 4, Model: cost.DefaultBand, Seed: 2}, exec.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce3Way(q); res.Output != want {
		t.Fatalf("3-way output %d, want %d", res.Output, want)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("%d stages, want 2", len(res.Stages))
	}
	if res.Intermediate != res.Stages[0].Exec.Output {
		t.Fatal("intermediate size mismatch")
	}
}

func TestExecuteSkewedMid(t *testing.T) {
	// A heavy-hitter B key in the middle relation creates a skewed
	// intermediate; stage 2's fresh EWH plan must still balance it.
	r := stats.NewRNG(4)
	n := 800
	q := Query{
		R1:    make([]join.Key, n),
		Mid:   MidRelation{A: make([]join.Key, n), B: make([]join.Key, n)},
		R3:    make([]join.Key, n),
		CondA: join.NewBand(1),
		CondB: join.Equi{},
	}
	for i := 0; i < n; i++ {
		q.R1[i] = r.Int64n(int64(n))
		q.Mid.A[i] = r.Int64n(int64(n))
		if i%3 == 0 {
			q.Mid.B[i] = 7 // heavy hitter
		} else {
			q.Mid.B[i] = r.Int64n(int64(n))
		}
		q.R3[i] = r.Int64n(int64(n))
	}
	res, err := Execute(q, core.Options{J: 6, Model: cost.DefaultBand, Seed: 5}, exec.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce3Way(q); res.Output != want {
		t.Fatalf("skewed 3-way output %d, want %d", res.Output, want)
	}
}

func TestExecuteEmptyIntermediate(t *testing.T) {
	q := Query{
		R1:    []join.Key{1, 2, 3},
		Mid:   MidRelation{A: []join.Key{100, 200}, B: []join.Key{5, 6}},
		R3:    []join.Key{5, 6},
		CondA: join.Equi{},
		CondB: join.Equi{},
	}
	res, err := Execute(q, core.Options{J: 2, Model: cost.DefaultBand, Seed: 7}, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 0 || res.Intermediate != 0 {
		t.Fatalf("output=%d intermediate=%d, want 0/0", res.Output, res.Intermediate)
	}
}

func TestValidation(t *testing.T) {
	bad := Query{
		R1:    []join.Key{1},
		Mid:   MidRelation{A: []join.Key{1, 2}, B: []join.Key{1}},
		R3:    []join.Key{1},
		CondA: join.Equi{}, CondB: join.Equi{},
	}
	if _, err := Execute(bad, core.Options{J: 2}, exec.Config{}); err == nil {
		t.Error("misaligned mid relation accepted")
	}
	empty := Query{CondA: join.Equi{}, CondB: join.Equi{}}
	if _, err := Execute(empty, core.Options{J: 2}, exec.Config{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestMixedConditions(t *testing.T) {
	// Equality first stage, band second stage.
	r := stats.NewRNG(8)
	n := 500
	q := Query{
		R1:    make([]join.Key, n),
		Mid:   MidRelation{A: make([]join.Key, n), B: make([]join.Key, n)},
		R3:    make([]join.Key, n),
		CondA: join.Equi{},
		CondB: join.NewBand(3),
	}
	for i := 0; i < n; i++ {
		q.R1[i] = r.Int64n(200)
		q.Mid.A[i] = r.Int64n(200)
		q.Mid.B[i] = r.Int64n(2000)
		q.R3[i] = r.Int64n(2000)
	}
	res, err := Execute(q, core.Options{J: 4, Model: cost.DefaultBand, Seed: 9}, exec.Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce3Way(q); res.Output != want {
		t.Fatalf("mixed 3-way output %d, want %d", res.Output, want)
	}
}

// Package multiway executes multi-way monotonic joins as a sequence of
// EWH-planned 2-way joins, the strategy §IV-B prescribes ("a multi-way join
// can be efficiently executed using a sequence of our 2-way joins"). The
// output of each stage is materialized as tuples keyed by the next stage's
// join attribute and re-partitioned with a fresh equi-weight histogram, so
// every stage is individually balanced on both its input and its output.
package multiway

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/stats"
)

// MidRelation is the middle relation of a 3-way chain join
// R1 ⋈_A Mid ⋈_B R3: column A joins with R1 and column B with R3. Rows are
// column-oriented; A and B must have equal length.
type MidRelation struct {
	A []join.Key
	B []join.Key
}

// Rows returns the row count.
func (m *MidRelation) Rows() int { return len(m.A) }

// Validate checks column alignment.
func (m *MidRelation) Validate() error {
	if len(m.A) != len(m.B) {
		return fmt.Errorf("multiway: mid relation columns differ: |A|=%d |B|=%d", len(m.A), len(m.B))
	}
	return nil
}

// Query is a 3-way chain join R1 ⋈_CondA Mid ⋈_CondB R3.
type Query struct {
	R1    []join.Key
	Mid   MidRelation
	R3    []join.Key
	CondA join.Condition
	CondB join.Condition
}

// StageResult reports one 2-way stage.
type StageResult struct {
	// Scheme is the partitioning scheme the stage used ("CSIO", or "CI"
	// after a high-selectivity fallback).
	Scheme string
	// PlanDuration is the stage's statistics + histogram time.
	PlanDuration time.Duration
	// Exec carries the engine metrics.
	Exec *exec.Result
}

// Result reports the whole multi-way execution.
type Result struct {
	Stages []StageResult
	// Output is the final join cardinality |R1 ⋈ Mid ⋈ R3|.
	Output int64
	// Intermediate is the stage-1 output size (tuples shipped to stage 2).
	Intermediate int64
}

// MaxIntermediate caps the materialized stage-1 result to protect callers
// from accidentally Cartesian first stages; Execute fails beyond it.
const MaxIntermediate = 200_000_000

// Execute runs the chain join in-process with per-stage EWH planning.
// opts.J machines are used by both stages.
func Execute(q Query, opts core.Options, cfg exec.Config) (*Result, error) {
	return ExecuteOver(exec.Local{}, q, opts, cfg)
}

// PeerStage2Scheme is the statistics-free stage-2 scheme of the peer-shuffle
// path's no-stats modes: Hash for equality predicates, CI otherwise. Both
// are complete and duplicate-free without seeing a single intermediate tuple
// — the property that lets the stage-2 plan be built and broadcast BEFORE
// stage 1 runs. It remains the CSIO modes' fallback whenever statistics
// cannot produce a plan (an empty intermediate). Exported so tests and
// experiments can construct the bit-identical in-process reference.
func PeerStage2Scheme(cond join.Condition, j int) (partition.Scheme, error) {
	if _, ok := cond.(join.Equi); ok {
		return partition.NewHash(j, nil)
	}
	return partition.NewCI(j), nil
}

// Stage2Mode selects how the peer-shuffle path partitions stage 2 (the
// re-keyed intermediate against R3).
type Stage2Mode int

const (
	// Stage2Auto picks the content-sensitive CSIO plan via distributed
	// statistics on stage-aware runtimes — the scheme the paper's skew
	// results are about — and the coordinator-relay CSIO re-plan elsewhere.
	Stage2Auto Stage2Mode = iota
	// Stage2Hash is the content-insensitive hash plan, broadcast before
	// stage 1 runs; equality stage-2 predicates only.
	Stage2Hash
	// Stage2CI is the content-insensitive 1-Bucket plan, broadcast before
	// stage 1 runs; any predicate.
	Stage2CI
	// Stage2CSIO forces the distributed-statistics CSIO plan.
	Stage2CSIO
)

// String names the mode as the CLI flag spells it.
func (m Stage2Mode) String() string {
	switch m {
	case Stage2Auto:
		return "auto"
	case Stage2Hash:
		return "hash"
	case Stage2CI:
		return "ci"
	case Stage2CSIO:
		return "csio"
	}
	return fmt.Sprintf("Stage2Mode(%d)", int(m))
}

// ParseStage2Mode parses a -stage2-scheme flag value.
func ParseStage2Mode(s string) (Stage2Mode, error) {
	switch s {
	case "auto":
		return Stage2Auto, nil
	case "hash":
		return Stage2Hash, nil
	case "ci":
		return Stage2CI, nil
	case "csio":
		return Stage2CSIO, nil
	}
	return 0, fmt.Errorf("multiway: unknown stage-2 scheme %q (want auto, hash, ci or csio)", s)
}

// ResolveStage2 is the peer path's stage-2 selection logic: it returns the
// pre-broadcast scheme for the content-insensitive modes, or needStats for
// the content-sensitive ones (auto and csio), whose scheme only exists after
// the distributed statistics land. Hash is rejected for non-equality
// predicates — it would lose matches.
func ResolveStage2(mode Stage2Mode, cond join.Condition, j int) (scheme partition.Scheme, needStats bool, err error) {
	switch mode {
	case Stage2Auto, Stage2CSIO:
		return nil, true, nil
	case Stage2Hash:
		if _, ok := cond.(join.Equi); !ok {
			return nil, false, fmt.Errorf("multiway: hash stage-2 scheme requires an equality predicate, got %T", cond)
		}
		s, err := partition.NewHash(j, nil)
		return s, false, err
	case Stage2CI:
		return partition.NewCI(j), false, nil
	}
	return nil, false, fmt.Errorf("multiway: unknown stage-2 mode %v", mode)
}

// peerSeedDelta decorrelates the peer re-shuffle's routing streams from the
// engine seed without another knob; statsSeedDelta does the same for the
// workers' summary-sampling streams.
const (
	peerSeedDelta  = 0x7f4a7c15
	statsSeedDelta = 0x2545f491
)

// StatsSampleCap and StatsBuckets size the per-worker statistics summaries
// of the distributed CSIO stage-2 planning: each worker ships at most
// StatsSampleCap sampled keys plus a StatsBuckets-bucket equi-depth
// histogram of its local intermediate — a few KB per worker, independent of
// the intermediate size.
const (
	StatsSampleCap = 4096
	StatsBuckets   = 256
)

// encodeKeyPayload is the wire encoding of the intermediate tuples' payload
// (the Mid rows' B keys): 8 fixed-width little-endian bytes. Shipping the
// payload segment is deliberate even though pair emission reconstructs
// payloads coordinator-side from index pairs: in the paper's shared-nothing
// pipeline the workers own the materialized join output (a later stage
// re-shuffles worker→worker without the coordinator touching the data), so
// the distributed path keeps the data where the architecture needs it —
// and keeps the payload wire path exercised end to end. Pass nil instead
// of an encoder to trade that fidelity for ~60% fewer Mid-relation bytes.
func encodeKeyPayload(dst []byte, k join.Key) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(k))
}

// ExecuteOver runs the chain join through rt. Stage-aware transports
// (exec.StageRuntime, e.g. a netexec session) take the peer-shuffle path
// with the auto stage-2 mode — a genuine CSIO stage-2 plan built from
// distributed statistics, so the intermediate never transits the
// coordinator even for the content-sensitive schemes the paper evaluates
// under skew. Other transports take the coordinator-relay path
// (ExecuteOverRelay), which remains the tracked baseline.
func ExecuteOver(rt exec.Runtime, q Query, opts core.Options, cfg exec.Config) (*Result, error) {
	return ExecuteOverStage2(rt, q, opts, cfg, Stage2Auto)
}

// ExecuteOverStage2 is ExecuteOver with an explicit stage-2 partitioning
// mode for the peer-shuffle path. Non-auto modes require a stage-aware
// runtime — the relay path always re-plans CSIO itself.
func ExecuteOverStage2(rt exec.Runtime, q Query, opts core.Options, cfg exec.Config,
	mode Stage2Mode) (*Result, error) {

	if sr, ok := rt.(exec.StageRuntime); ok {
		return executePeer(sr, q, opts, cfg, mode)
	}
	if mode != Stage2Auto {
		return nil, fmt.Errorf("multiway: stage-2 mode %v requires a stage-aware runtime (%T relays through the coordinator)",
			mode, rt)
	}
	return ExecuteOverRelay(rt, q, opts, cfg)
}

// validate normalizes the query and options shared by both paths.
func validate(q Query, opts *core.Options) error {
	if err := q.Mid.Validate(); err != nil {
		return err
	}
	if !opts.Model.Valid() {
		opts.Model = cost.DefaultBand
	}
	if len(q.R1) == 0 || q.Mid.Rows() == 0 || len(q.R3) == 0 {
		return fmt.Errorf("multiway: empty relation (|R1|=%d |Mid|=%d |R3|=%d)",
			len(q.R1), q.Mid.Rows(), len(q.R3))
	}
	return nil
}

// midTuples re-keys the Mid relation on column A with column B as payload —
// the shape both stage-1 shuffles ship.
func midTuples(q Query) []exec.Tuple[join.Key] {
	ts := make([]exec.Tuple[join.Key], q.Mid.Rows())
	for i := range ts {
		ts[i] = exec.Tuple[join.Key]{Key: q.Mid.A[i], Payload: q.Mid.B[i]}
	}
	return ts
}

// executePeer is the direct worker→worker path: stage 1 runs exactly as the
// relay path (same plan, same shuffle, same per-worker blocks), but its
// matches stay on the workers, re-shuffled among them by a stage-2 plan the
// coordinator serialized and broadcast — up front for the content-
// insensitive modes, after the distributed statistics exchange for the CSIO
// modes (each worker summarizes its local matches, the coordinator merges
// the summaries and plans a genuine equi-weight histogram over the
// intermediate it never saw). The coordinator only ever sees pair counts
// and summaries; Output and the intermediate size are bit-identical to the
// relay and in-process paths (stage-2 per-worker placement differs — the
// plan is built from sampled rather than exhaustive statistics).
func executePeer(rt exec.StageRuntime, q Query, opts core.Options, cfg exec.Config,
	mode Stage2Mode) (*Result, error) {

	if err := validate(q, &opts); err != nil {
		return nil, err
	}
	// Each attempt is the complete two-stage pipeline for its fleet size:
	// stage-1 plan, fresh transfer token, fresh statistics, replanned stage 2
	// — so a retry after a worker death re-shuffles from the driver-retained
	// relations under plans sized to the survivors, and the dead worker's
	// in-flight transfers are already cancelled (the failing attempt's
	// cancelPlan broadcast) before the new token's traffic starts. Nothing
	// from a failed attempt escapes: the peer path returns only counts, and
	// those are read only on success.
	var res *Result
	err := exec.RunRetry(rt, opts.J, cfg.Retry, func(srt exec.Runtime, j int) error {
		sr, ok := srt.(exec.StageRuntime)
		if !ok {
			return fmt.Errorf("multiway: runtime %T lost stage awareness after recovery", srt)
		}
		o := opts
		o.J = j
		var aerr error
		res, aerr = peerAttempt(sr, q, o, cfg, mode)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// peerAttempt runs one complete peer-shuffle pipeline over opts.J workers.
func peerAttempt(rt exec.StageRuntime, q Query, opts core.Options, cfg exec.Config,
	mode Stage2Mode) (*Result, error) {

	plan1Start := time.Now()
	plan1, err := core.PlanCSIO(q.R1, q.Mid.A, q.CondA, opts)
	if err != nil {
		return nil, fmt.Errorf("multiway: stage 1 plan: %w", err)
	}
	plan1Dur := time.Since(plan1Start)

	plan2Start := time.Now()
	scheme2, needStats, err := ResolveStage2(mode, q.CondB, opts.J)
	if err != nil {
		return nil, err
	}
	var sp exec.StagePlan
	var plan2Dur time.Duration
	if needStats {
		sp = exec.StagePlan{
			Cond:            q.CondB,
			MaxIntermediate: MaxIntermediate,
			MaxWorkers:      opts.J,
			Stats: &exec.StatsSpec{Cap: StatsSampleCap, Buckets: StatsBuckets,
				Seed: cfg.Seed + statsSeedDelta, Adaptive: true},
			Replan: func(summaries []*stats.Summary) ([]byte, partition.Scheme, error) {
				t0 := time.Now()
				defer func() { plan2Dur = time.Since(t0) }()
				s2, err := replanStage2(summaries, q, opts)
				if err != nil {
					return nil, nil, err
				}
				artifact := planio.Artifact{Scheme: s2, Seed: cfg.Seed + peerSeedDelta}
				b, err := planio.Encode(&artifact)
				return b, s2, err
			},
		}
	} else {
		artifact := planio.Artifact{Scheme: scheme2, Seed: cfg.Seed + peerSeedDelta}
		planBytes, err := planio.Encode(&artifact)
		if err != nil {
			return nil, fmt.Errorf("multiway: stage 2 plan: %w", err)
		}
		sp = exec.StagePlan{Bytes: planBytes, Scheme: scheme2, Cond: q.CondB,
			MaxIntermediate: MaxIntermediate}
		plan2Dur = time.Since(plan2Start)
	}

	res1, res2, err := exec.RunStagesOver(rt, exec.WrapKeys(q.R1), midTuples(q), q.CondA,
		plan1.Scheme, sp, q.R3, opts.Model, cfg, nil, encodeKeyPayload)
	if err != nil {
		return nil, fmt.Errorf("multiway: peer pipeline: %w", err)
	}
	return &Result{
		Stages: []StageResult{
			{Scheme: plan1.Scheme.Name(), PlanDuration: plan1Dur, Exec: res1},
			{Scheme: res2.Scheme, PlanDuration: plan2Dur, Exec: res2},
		},
		Intermediate: res1.Output,
		Output:       res2.Output,
	}, nil
}

// replanStage2 is the coordinator half of the distributed statistics
// exchange: fold the per-worker summaries (in worker order — the merge is
// commutative but not exactly associative, so the fixed order keeps runs
// reproducible) and build the CSIO stage-2 plan against R3. The fallback
// rules, in order: an empty intermediate falls back to the statistics-free
// PeerStage2Scheme (there is nothing to balance), and a high-selectivity
// estimate falls back to CI inside PlanCSIOFromSummary exactly as the
// in-process planner does (§VI-E).
func replanStage2(summaries []*stats.Summary, q Query, opts core.Options) (partition.Scheme, error) {
	var merged *stats.Summary
	for i, s := range summaries {
		if merged == nil {
			merged = s
			continue
		}
		var err error
		if merged, err = stats.MergeSummaries(merged, s); err != nil {
			return nil, fmt.Errorf("multiway: merging worker %d statistics: %w", i, err)
		}
	}
	if merged == nil || merged.Count == 0 {
		return PeerStage2Scheme(q.CondB, opts.J)
	}
	opts2 := opts
	opts2.Seed = opts.Seed + 0x9e37
	plan2, err := core.PlanCSIOFromSummary(merged, q.R3, q.CondB, opts2)
	if err != nil {
		return nil, fmt.Errorf("multiway: stage 2 plan: %w", err)
	}
	return plan2.Scheme, nil
}

// ExecuteOverRelay runs the chain join with the coordinator-relay strategy
// on any runtime: stage 1 ships the Mid relation as key blocks plus a
// payload segment carrying each row's B key, the workers join and stream
// matched pairs back, and the re-keyed intermediate is re-planned with a
// fresh equi-weight histogram and joined on the same runtime. Planning
// (statistics, histograms) stays on the coordinator, exactly as the paper's
// coordinator builds the equi-weight histogram before each shuffle. Results
// are bit-identical across runtimes for a fixed cfg. It is the tracked
// baseline the peer-shuffle path is measured against.
func ExecuteOverRelay(rt exec.Runtime, q Query, opts core.Options, cfg exec.Config) (*Result, error) {
	if err := validate(q, &opts); err != nil {
		return nil, err
	}

	// Stage 1: R1 ⋈_A Mid, materializing the matched Mid rows' B keys. Each
	// retry attempt replans for its fleet, re-shuffles from the caller's
	// relations and resets the emission buffers — pairs a failed attempt
	// already streamed back are discarded wholesale, which is what keeps the
	// final intermediate exactly-once (the emit sink is attempt-local).
	var plan1Scheme partition.Scheme
	var plan1Dur time.Duration
	var perWorker [][]join.Key
	var res1 *exec.Result
	err := exec.RunRetry(rt, opts.J, cfg.Retry, func(srt exec.Runtime, j int) error {
		o := opts
		o.J = j
		plan1Start := time.Now()
		plan1, perr := core.PlanCSIO(q.R1, q.Mid.A, q.CondA, o)
		if perr != nil {
			return fmt.Errorf("multiway: stage 1 plan: %w", perr)
		}
		plan1Scheme = plan1.Scheme
		plan1Dur = time.Since(plan1Start)
		perWorker = make([][]join.Key, plan1.Scheme.Workers())
		var mu sync.Mutex
		overflow := false
		var aerr error
		res1, aerr = exec.RunTuplesOver(srt, exec.WrapKeys(q.R1), midTuples(q), q.CondA,
			plan1.Scheme, opts.Model, cfg, nil, encodeKeyPayload,
			func(w int, _ exec.Tuple[struct{}], b exec.Tuple[join.Key]) {
				perWorker[w] = append(perWorker[w], b.Payload)
				if len(perWorker[w]) == MaxIntermediate {
					mu.Lock()
					overflow = true
					mu.Unlock()
				}
			})
		if aerr != nil {
			return fmt.Errorf("multiway: stage 1: %w", aerr)
		}
		if overflow || res1.Output > MaxIntermediate {
			return fmt.Errorf("multiway: stage 1 produced %d tuples (cap %d); restructure the chain",
				res1.Output, MaxIntermediate)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	intermediate := make([]join.Key, 0, res1.Output)
	for _, pw := range perWorker {
		intermediate = append(intermediate, pw...)
	}

	out := &Result{
		Stages: []StageResult{{
			Scheme:       plan1Scheme.Name(),
			PlanDuration: plan1Dur,
			Exec:         res1,
		}},
		Intermediate: res1.Output,
	}
	if len(intermediate) == 0 {
		out.Stages = append(out.Stages, StageResult{Scheme: "none"})
		return out, nil
	}

	// Stage 2: intermediate ⋈_B R3 — a fresh equi-weight histogram over the
	// materialized result, which may be arbitrarily skewed regardless of the
	// base relations' distributions (the JPS cascade §IV-B warns about). The
	// intermediate is driver-retained, so a retry only re-plans and
	// re-shuffles this stage, not stage 1.
	opts2 := opts
	opts2.Seed = opts.Seed + 0x9e37
	var plan2Scheme partition.Scheme
	var plan2Dur time.Duration
	res2, err := exec.RunOverReplan(rt, intermediate, q.R3, q.CondB, opts.J,
		func(j int) (partition.Scheme, error) {
			t0 := time.Now()
			defer func() { plan2Dur += time.Since(t0) }()
			o := opts2
			o.J = j
			plan2, perr := core.PlanCSIO(intermediate, q.R3, q.CondB, o)
			if perr != nil {
				return nil, fmt.Errorf("multiway: stage 2 plan: %w", perr)
			}
			plan2Scheme = plan2.Scheme
			return plan2.Scheme, nil
		}, opts.Model, cfg)
	if err != nil {
		return nil, fmt.Errorf("multiway: stage 2: %w", err)
	}

	out.Stages = append(out.Stages, StageResult{
		Scheme:       plan2Scheme.Name(),
		PlanDuration: plan2Dur,
		Exec:         res2,
	})
	out.Output = res2.Output
	return out, nil
}

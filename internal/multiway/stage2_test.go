package multiway

import (
	"testing"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/join"
)

func TestParseStage2Mode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Stage2Mode
	}{
		{"auto", Stage2Auto}, {"hash", Stage2Hash}, {"ci", Stage2CI}, {"csio", Stage2CSIO},
	} {
		got, err := ParseStage2Mode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStage2Mode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	for _, bad := range []string{"", "CSIO", "hashx", "1bucket"} {
		if _, err := ParseStage2Mode(bad); err == nil {
			t.Errorf("ParseStage2Mode(%q) accepted", bad)
		}
	}
}

func TestResolveStage2Selection(t *testing.T) {
	equi, band := join.Condition(join.Equi{}), join.Condition(join.NewBand(2))
	cases := []struct {
		name      string
		mode      Stage2Mode
		cond      join.Condition
		wantName  string // "" when needStats or error
		needStats bool
		wantErr   bool
	}{
		{"auto is content-sensitive", Stage2Auto, equi, "", true, false},
		{"auto band too", Stage2Auto, band, "", true, false},
		{"csio forces stats", Stage2CSIO, band, "", true, false},
		{"hash on equality", Stage2Hash, equi, "Hash", false, false},
		{"hash rejects band", Stage2Hash, band, "", false, true},
		{"ci on equality", Stage2CI, equi, "CI", false, false},
		{"ci on band", Stage2CI, band, "CI", false, false},
	}
	for _, tc := range cases {
		scheme, needStats, err := ResolveStage2(tc.mode, tc.cond, 4)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: no error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if needStats != tc.needStats {
			t.Errorf("%s: needStats = %v, want %v", tc.name, needStats, tc.needStats)
		}
		if tc.needStats {
			if scheme != nil {
				t.Errorf("%s: stats mode returned a scheme %v", tc.name, scheme.Name())
			}
			continue
		}
		if scheme.Name() != tc.wantName {
			t.Errorf("%s: scheme %q, want %q", tc.name, scheme.Name(), tc.wantName)
		}
		if scheme.Workers() != 4 {
			t.Errorf("%s: %d workers, want 4", tc.name, scheme.Workers())
		}
	}
	if _, _, err := ResolveStage2(Stage2Mode(99), equi, 4); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestExecuteOverStage2RejectsModeOnRelayRuntime(t *testing.T) {
	// Explicit peer modes are meaningless on a runtime that can only relay
	// through the coordinator; auto falls back to the relay path.
	q := Query{
		R1:    []join.Key{1, 2, 3},
		Mid:   MidRelation{A: []join.Key{1, 2, 3}, B: []join.Key{4, 5, 6}},
		R3:    []join.Key{4, 5, 6},
		CondA: join.Equi{},
		CondB: join.Equi{},
	}
	opts := core.Options{J: 2, Seed: 1}
	if _, err := ExecuteOverStage2(exec.Local{}, q, opts, exec.Config{Seed: 2}, Stage2Hash); err == nil {
		t.Fatal("hash mode accepted on a relay-only runtime")
	}
	if _, err := ExecuteOverStage2(exec.Local{}, q, opts, exec.Config{Seed: 2}, Stage2Auto); err != nil {
		t.Fatalf("auto mode on a relay-only runtime: %v", err)
	}
}

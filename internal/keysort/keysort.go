// Package keysort sorts int64 join keys with an LSD radix sort specialized
// for the engine's hot paths. Comparison sorting is O(n log n) with branchy
// inner loops; counting-sort passes over the bytes that actually vary are
// O(n) with sequential access, which on real key distributions (small or
// clustered domains) leaves only two or three passes. Small inputs fall back
// to slices.Sort.
package keysort

import "slices"

// cutoff below which slices.Sort (pdqsort) wins: radix pays fixed histogram
// and scratch costs that only amortize on larger inputs.
const cutoff = 256

// signMask biases two's-complement int64 into unsigned order: flipping the
// sign bit makes uint64 comparison agree with int64 comparison.
const signMask = 1 << 63

// Digit returns the radix digit of k at the given bit shift under the same
// sign-bias transform the counting passes use: negative and positive keys
// order consistently across the whole byte range. Exported so localjoin's
// partitioned hash build shares digit-for-digit the partitioning this sort
// histograms — one radix scheme across sort and hash engines.
func Digit(k int64, shift uint) byte {
	return byte((uint64(k) ^ signMask) >> shift)
}

// Sort sorts a ascending in place.
func Sort(a []int64) {
	if len(a) < cutoff {
		slices.Sort(a)
		return
	}
	SortWithScratch(a, make([]int64, len(a)))
}

// SortWithScratch is Sort with a caller-provided scratch buffer of at least
// len(a), for loops that sort many slices and want one allocation.
func SortWithScratch(a, scratch []int64) {
	if len(a) < cutoff {
		slices.Sort(a)
		return
	}
	// One linear scan finds the bytes that differ between keys; constant
	// bytes (the common case for clustered key domains) need no pass.
	first := uint64(a[0]) ^ signMask
	var diff uint64
	for _, v := range a {
		diff |= (uint64(v) ^ signMask) ^ first
	}
	if diff == 0 {
		return // all keys equal
	}
	src, dst := a, scratch[:len(a)]
	for shift := uint(0); shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		var count [256]int
		for _, v := range src {
			count[Digit(v, shift)]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			b := Digit(v, shift)
			dst[count[b]] = v
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

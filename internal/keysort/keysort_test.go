package keysort_test

import (
	"math"
	"slices"
	"testing"

	"ewh/internal/keysort"
	"ewh/internal/stats"
)

func TestSortMatchesSlicesSort(t *testing.T) {
	rng := stats.NewRNG(1)
	cases := [][]int64{
		nil,
		{5},
		{3, 1, 2},
		{math.MaxInt64, math.MinInt64, 0, -1, 1},
	}
	// Random cases across sizes straddling the radix cutoff, with negatives
	// and duplicates.
	for _, n := range []int{keysort.Cutoff - 1, keysort.Cutoff, 1000, 10000} {
		c := make([]int64, n)
		for i := range c {
			c[i] = rng.Int64n(500) - 250
		}
		cases = append(cases, c)
		wide := make([]int64, n)
		for i := range wide {
			wide[i] = int64(rng.Uint64())
		}
		cases = append(cases, wide)
	}
	for ci, c := range cases {
		want := slices.Clone(c)
		slices.Sort(want)
		got := slices.Clone(c)
		keysort.Sort(got)
		if !slices.Equal(got, want) {
			t.Errorf("case %d: radix sort differs from slices.Sort", ci)
		}
	}
}

func TestSortAllEqual(t *testing.T) {
	a := make([]int64, 2*keysort.Cutoff)
	for i := range a {
		a[i] = 42
	}
	keysort.Sort(a)
	for _, v := range a {
		if v != 42 {
			t.Fatal("all-equal input modified")
		}
	}
}

func BenchmarkRadixSort(b *testing.B) {
	rng := stats.NewRNG(2)
	orig := make([]int64, 1<<17)
	for i := range orig {
		orig[i] = rng.Int64n(1 << 16)
	}
	buf := make([]int64, len(orig))
	scratch := make([]int64, len(orig))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, orig)
		keysort.SortWithScratch(buf, scratch)
	}
}

func BenchmarkSlicesSort(b *testing.B) {
	rng := stats.NewRNG(2)
	orig := make([]int64, 1<<17)
	for i := range orig {
		orig[i] = rng.Int64n(1 << 16)
	}
	buf := make([]int64, len(orig))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, orig)
		slices.Sort(buf)
	}
}

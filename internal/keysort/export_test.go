package keysort

// Cutoff exposes the radix/pdqsort crossover to the external test package
// (keysort_test imports stats, whose summary machinery transitively imports
// keysort — an in-package test would be an import cycle).
const Cutoff = cutoff

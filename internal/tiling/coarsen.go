// Package tiling implements the rectangle-tiling algorithms of §III:
// the coarsening stage (grid tiling over the sample matrix, [16]-style
// iterative 1D refinement with binary search, with the MonotonicCoarsening
// candidate-skip speedup) and the regionalization stage (BSP [10] and the
// paper's novel MonotonicBSP, plus the binary search over the maximum region
// weight δ that turns the dual problem into a J-region partitioning).
package tiling

import (
	"math/bits"
	"slices"

	"ewh/internal/cost"
	"ewh/internal/matrix"
)

// CoarsenOptions control the grid search.
type CoarsenOptions struct {
	// MaxIters bounds the row/column alternation rounds (default 3).
	MaxIters int
	// Probes bounds the binary-search iterations per 1D optimization
	// (default 40).
	Probes int
}

func (o *CoarsenOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 3
	}
	if o.Probes <= 0 {
		o.Probes = 40
	}
}

// CoarsenGrid chooses row and column cuts imposing an at-most nc×nc grid over
// the sample matrix, minimizing the maximum grid-cell weight (§III-B). The
// optimizer alternates 1D optimizations — given fixed column bands, choose
// row cuts by binary search over the cell-weight threshold with a greedy
// feasibility sweep — the classic recipe for MAX-WEIGHT-ID grid tiling [16].
// Monotonicity is exploited throughout: a sweep's weight updates touch only
// the bands intersecting each line's candidate span (MonotonicCoarsening).
//
// The returned cut vectors have at most nc+1 entries each and always start
// at 0 and end at sm.Rows / sm.Cols.
func CoarsenGrid(sm *matrix.Sample, nc int, model cost.Model, opts CoarsenOptions) (rowCuts, colCuts []int) {
	opts.defaults()
	if nc < 1 {
		nc = 1
	}
	rowCuts = evenCuts(sm.Rows, nc)
	colCuts = evenCuts(sm.Cols, nc)
	if sm.Rows <= nc && sm.Cols <= nc {
		return rowCuts, colCuts
	}

	best := gridMaxCellWeight(sm, rowCuts, colCuts, model)
	bestRows, bestCols := rowCuts, colCuts
	for it := 0; it < opts.MaxIters; it++ {
		rowCuts = optimizeDim(sm, colCuts, nc, model, opts.Probes, false)
		colCuts = optimizeDim(sm, rowCuts, nc, model, opts.Probes, true)
		cur := gridMaxCellWeight(sm, rowCuts, colCuts, model)
		if cur < best {
			best, bestRows, bestCols = cur, rowCuts, colCuts
		}
		if cur >= best*0.999 {
			break
		}
	}
	return bestRows, bestCols
}

// evenCuts splits [0, n) into at most k near-equal bands.
func evenCuts(n, k int) []int {
	if k > n {
		k = n
	}
	cuts := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		c := n * i / k
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// gridMaxCellWeight evaluates a full grid configuration.
func gridMaxCellWeight(sm *matrix.Sample, rowCuts, colCuts []int, model cost.Model) float64 {
	d := matrix.Coarsen(sm, rowCuts, colCuts)
	max := 0.0
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if !d.Candidate(i, j) {
				continue // non-candidate cells weigh 0 (§III-B)
			}
			if w := d.Weight(model, matrix.Rect{R0: i, C0: j, R1: i, C1: j}); w > max {
				max = w
			}
		}
	}
	return max
}

// optimizeDim chooses cuts along one dimension given fixed bands on the
// other: binary search the smallest threshold T for which the greedy sweep
// needs at most nc bands, then return that sweep's cuts.
func optimizeDim(sm *matrix.Sample, otherCuts []int, nc int, model cost.Model, probes int, transpose bool) []int {
	sw := newSweeper(sm, otherCuts, transpose)
	lo, hi := 0.0, sm.TotalWeight(model)+1
	for p := 0; p < probes && hi-lo > 1e-9*(hi+1); p++ {
		mid := (lo + hi) / 2
		if cuts := sw.sweep(model, mid, nc); cuts != nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	cuts := sw.sweep(model, hi, nc)
	if cuts == nil {
		cuts = []int{0, sw.n} // defensive: one band always fits below TotalWeight+1
	}
	return refineCuts(cuts, nc)
}

// refineCuts splits the longest bands at their midpoints until all nc bands
// are used. Subdividing a band can only shrink grid cells, so the sweep's
// max-cell-weight guarantee is preserved while the regionalization gains
// granularity (its regions are unions of grid cells).
func refineCuts(cuts []int, nc int) []int {
	n := cuts[len(cuts)-1]
	for len(cuts)-1 < nc && len(cuts)-1 < n {
		longest, width := -1, 1
		for i := 1; i < len(cuts); i++ {
			if w := cuts[i] - cuts[i-1]; w > width {
				longest, width = i, w
			}
		}
		if longest < 0 {
			break // all bands are single lines
		}
		mid := cuts[longest-1] + width/2
		cuts = append(cuts, 0)
		copy(cuts[longest+1:], cuts[longest:])
		cuts[longest] = mid
	}
	return cuts
}

// sweeper runs greedy 1D feasibility checks over swept lines (MS rows, or MS
// columns when transposed), accumulating output per fixed band and closing a
// band whenever the next line would push some grid cell over the threshold.
type sweeper struct {
	sm        *matrix.Sample
	transpose bool
	n         int       // number of swept lines
	other     []int     // fixed-dimension cuts
	otherIn   []float64 // input tuples per fixed band
	lineUnit  float64   // input tuples per swept line
	rangeMax  [][]float64

	// per-sweep state and scratch
	acc          []float64
	touched      []int
	contrib      []float64
	contribBands []int

	// transposed views (built lazily when transpose is set)
	colHitRows [][]int32
	colHitCnt  [][]int32
}

func newSweeper(sm *matrix.Sample, otherCuts []int, transpose bool) *sweeper {
	s := &sweeper{sm: sm, transpose: transpose, other: otherCuts}
	nb := len(otherCuts) - 1
	s.otherIn = make([]float64, nb)
	var otherUnit float64
	if transpose {
		s.n = sm.Cols
		s.lineUnit = sm.ColUnit
		otherUnit = sm.RowUnit
	} else {
		s.n = sm.Rows
		s.lineUnit = sm.RowUnit
		otherUnit = sm.ColUnit
	}
	for b := 0; b < nb; b++ {
		s.otherIn[b] = float64(otherCuts[b+1]-otherCuts[b]) * otherUnit
	}
	s.acc = make([]float64, nb)
	s.contrib = make([]float64, nb)
	s.rangeMax = buildRangeMax(s.otherIn)
	if transpose {
		s.colHitRows = make([][]int32, sm.Cols)
		s.colHitCnt = make([][]int32, sm.Cols)
		for r := 0; r < sm.Rows; r++ {
			cols, cnt := sm.RowHits(r)
			for k, c := range cols {
				s.colHitRows[c] = append(s.colHitRows[c], int32(r))
				s.colHitCnt[c] = append(s.colHitCnt[c], cnt[k])
			}
		}
	}
	return s
}

// buildRangeMax precomputes a sparse table for O(1) range-maximum queries.
func buildRangeMax(v []float64) [][]float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	levels := bits.Len(uint(n))
	t := make([][]float64, levels)
	t[0] = v
	for l := 1; l < levels; l++ {
		span := 1 << l
		t[l] = make([]float64, n-span+1)
		for i := 0; i+span <= n; i++ {
			a, b := t[l-1][i], t[l-1][i+span/2]
			if b > a {
				a = b
			}
			t[l][i] = a
		}
	}
	return t
}

// queryRangeMax returns max(v[lo..hi]).
func (s *sweeper) queryRangeMax(lo, hi int) float64 {
	if lo > hi {
		return 0
	}
	l := bits.Len(uint(hi-lo+1)) - 1
	a, b := s.rangeMax[l][lo], s.rangeMax[l][hi-(1<<l)+1]
	if b > a {
		a = b
	}
	return a
}

// bandOf maps a fixed-dimension MS index to its band.
func (s *sweeper) bandOf(c int) int {
	i, _ := slices.BinarySearch(s.other[1:], c+1)
	return i
}

// gather fills contrib/contribBands with line i's output per fixed band and
// returns the line's candidate span in fixed-dimension MS coordinates.
func (s *sweeper) gather(i int) (spanLo, spanHi int, hasSpan bool) {
	s.contribBands = s.contribBands[:0]
	addBand := func(b int, v float64) {
		if v == 0 {
			return
		}
		if s.contrib[b] == 0 {
			s.contribBands = append(s.contribBands, b)
		}
		s.contrib[b] += v
	}
	if !s.transpose {
		cols, cnt := s.sm.RowHits(i)
		if s.sm.Scale > 0 {
			for k, c := range cols {
				addBand(s.bandOf(int(c)), s.sm.Scale*float64(cnt[k]))
			}
		}
		if s.sm.RowEmpty(i) {
			return 0, -1, false
		}
		spanLo, spanHi = s.sm.CandLo[i], s.sm.CandHi[i]
	} else {
		if s.sm.Scale > 0 {
			for k, r := range s.colHitRows[i] {
				addBand(s.bandOf(int(r)), s.sm.Scale*float64(s.colHitCnt[i][k]))
			}
		}
		var ok bool
		spanLo, spanHi, ok = s.colCandRows(i)
		if !ok {
			return 0, -1, false
		}
	}
	if s.sm.UnitCand > 0 {
		b0, b1 := s.bandOf(spanLo), s.bandOf(spanHi)
		for b := b0; b <= b1; b++ {
			il := maxI(spanLo, s.other[b])
			ih := minI(spanHi, s.other[b+1]-1)
			if il <= ih {
				addBand(b, s.sm.UnitCand*float64(ih-il+1))
			}
		}
	}
	return spanLo, spanHi, true
}

// colCandRows returns the inclusive MS row range whose candidate spans
// contain column c; by monotonicity it is contiguous.
func (s *sweeper) colCandRows(c int) (int, int, bool) {
	sm := s.sm
	// First row with CandHi >= c (CandHi nondecreasing).
	r0, _ := slices.BinarySearch(sm.CandHi, c)
	// Last row with CandLo <= c (CandLo nondecreasing).
	r1p, _ := slices.BinarySearch(sm.CandLo, c+1)
	r1 := r1p - 1
	if r0 > r1 {
		return 0, -1, false
	}
	return r0, r1, true
}

func (s *sweeper) clearContrib() {
	for _, b := range s.contribBands {
		s.contrib[b] = 0
	}
}

// sweep greedily forms bands with max candidate-cell weight <= t; it returns
// the cut vector or nil when more than ncMax bands are needed or a single
// line already exceeds t.
func (s *sweeper) sweep(model cost.Model, t float64, ncMax int) []int {
	for _, b := range s.touched {
		s.acc[b] = 0
	}
	s.touched = s.touched[:0]
	cuts := []int{0}
	lines := 0
	maxFixed := 0.0      // max over touched bands of wi·otherIn + wo·acc
	curLo, curHi := 1, 0 // band candidate span (fixed coords), empty initially

	commit := func() float64 {
		m := maxFixed
		for _, b := range s.contribBands {
			if s.acc[b] == 0 {
				s.touched = append(s.touched, b)
			}
			s.acc[b] += s.contrib[b]
			v := model.Wi*s.otherIn[b] + model.Wo*s.acc[b]
			if v > m {
				m = v
			}
		}
		return m
	}
	closeBand := func(at int) {
		cuts = append(cuts, at)
		for _, b := range s.touched {
			s.acc[b] = 0
		}
		s.touched = s.touched[:0]
		lines = 0
		maxFixed = 0
		curLo, curHi = 1, 0
	}

	for i := 0; i < s.n; i++ {
		spanLo, spanHi, hasSpan := s.gather(i)
		// Trial weight if line i joins the current band.
		tryMax := maxFixed
		for _, b := range s.contribBands {
			v := model.Wi*s.otherIn[b] + model.Wo*(s.acc[b]+s.contrib[b])
			if v > tryMax {
				tryMax = v
			}
		}
		tLo, tHi := curLo, curHi
		if hasSpan {
			if tLo > tHi {
				tLo, tHi = spanLo, spanHi
			} else {
				tLo, tHi = minI(tLo, spanLo), maxI(tHi, spanHi)
			}
		}
		if tLo <= tHi {
			// Candidate cells with no accumulated output still weigh their
			// input; include the heaviest fixed band in the candidate range.
			floor := model.Wi * s.queryRangeMax(s.bandOf(tLo), s.bandOf(tHi))
			if floor > tryMax {
				tryMax = floor
			}
		}
		cellW := model.Wi*float64(lines+1)*s.lineUnit + tryMax
		if cellW > t && lines > 0 {
			closeBand(i)
			if len(cuts)-1 >= ncMax {
				s.clearContrib()
				return nil
			}
			// Recompute for a fresh band holding only line i.
			tryMax = 0
			for _, b := range s.contribBands {
				v := model.Wi*s.otherIn[b] + model.Wo*s.contrib[b]
				if v > tryMax {
					tryMax = v
				}
			}
			tLo, tHi = spanLo, spanHi
			if !hasSpan {
				tLo, tHi = 1, 0
			}
			if tLo <= tHi {
				floor := model.Wi * s.queryRangeMax(s.bandOf(tLo), s.bandOf(tHi))
				if floor > tryMax {
					tryMax = floor
				}
			}
			cellW = model.Wi*s.lineUnit + tryMax
		}
		if cellW > t {
			s.clearContrib()
			return nil
		}
		maxFixed = commit()
		lines++
		curLo, curHi = tLo, tHi
		s.clearContrib()
	}
	if lines > 0 {
		closeBand(s.n)
	}
	if len(cuts)-1 > ncMax {
		return nil
	}
	if cuts[len(cuts)-1] != s.n {
		cuts = append(cuts, s.n)
	}
	return cuts
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

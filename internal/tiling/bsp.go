package tiling

import (
	"ewh/internal/cost"
	"ewh/internal/matrix"
)

// Solver is a rectangle-tiling algorithm that, given a maximum region weight
// delta, covers all candidate cells of a Dense matrix with the minimum
// number of hierarchical rectangular regions (the DRTILE dual problem BSP
// solves, §III-C).
type Solver interface {
	// MinRegions returns the minimum number of regions needed so that every
	// region weighs at most delta, or a value > countCap as soon as the
	// minimum provably exceeds countCap (early exit for the binary search).
	MinRegions(delta float64, countCap int) int
	// Regions extracts the regions of the last MinRegions call.
	Regions() []matrix.Rect
	// Stats reports instrumentation from the last call.
	Stats() SolverStats
}

// SolverStats instruments a solve for the Table III ablation.
type SolverStats struct {
	// States is the number of distinct DP states (rectangles) evaluated.
	States int
	// SplitsTried is the number of splitter evaluations.
	SplitsTried int
}

// bspEntry is one memoized DP state.
type bspEntry struct {
	regions int
	// split encodes the chosen splitter: -1 = leaf (single region),
	// otherwise dir<<30 | pos with dir 0 = horizontal cut above row pos,
	// dir 1 = vertical cut left of column pos.
	split int32
}

const (
	splitLeaf = int32(-1)
	dirShift  = 30
	posMask   = (1 << dirShift) - 1
)

func encodeSplit(vertical bool, pos int) int32 {
	v := int32(pos)
	if vertical {
		v |= 1 << dirShift
	}
	return v
}

func decodeSplit(s int32) (vertical bool, pos int) {
	return s&(1<<dirShift) != 0, int(s & posMask)
}

// BSP is the baseline Binary Space Partition solver [10], [17], extended to
// join load balancing by shrinking every rectangle to its minimal candidate
// rectangle before weighing (Algorithm 1, line 3). As in the original
// algorithm, it memoizes on the unshrunk rectangle — its state space is all
// reachable rectangles, O(nc⁴) in the worst case — and it computes minimal
// candidate rectangles by scanning rows, without using monotonicity. This is
// the Table III baseline that MonotonicBSP improves on.
type BSP struct {
	d     *matrix.Dense
	model cost.Model

	delta    float64
	countCap int
	memo     map[uint64]bspEntry
	stats    SolverStats
}

// NewBSP returns a baseline BSP solver over the coarsened matrix.
func NewBSP(d *matrix.Dense, model cost.Model) *BSP {
	return &BSP{d: d, model: model}
}

// scanMinimalCandidateRect computes the candidate bounding box of r by
// scanning every row — the non-monotonic O(rows) method the baseline uses.
func scanMinimalCandidateRect(d *matrix.Dense, r matrix.Rect) (matrix.Rect, bool) {
	if r.Empty() {
		return matrix.Rect{}, false
	}
	out := matrix.Rect{R0: -1}
	for i := r.R0; i <= r.R1; i++ {
		lo, hi := d.CandLo[i], d.CandHi[i]
		if lo < r.C0 {
			lo = r.C0
		}
		if hi > r.C1 {
			hi = r.C1
		}
		if lo > hi {
			continue
		}
		if out.R0 < 0 {
			out.R0, out.C0, out.C1 = i, lo, hi
		} else {
			if lo < out.C0 {
				out.C0 = lo
			}
			if hi > out.C1 {
				out.C1 = hi
			}
		}
		out.R1 = i
	}
	if out.R0 < 0 {
		return matrix.Rect{}, false
	}
	return out, true
}

// MinRegions implements Solver.
func (s *BSP) MinRegions(delta float64, countCap int) int {
	s.delta = delta
	s.countCap = countCap
	s.memo = make(map[uint64]bspEntry)
	s.stats = SolverStats{}
	return s.solve(s.d.Full())
}

func (s *BSP) solve(r matrix.Rect) int {
	if r.Empty() {
		return 0
	}
	key := r.Key()
	if e, hit := s.memo[key]; hit {
		return e.regions
	}
	rm, ok := scanMinimalCandidateRect(s.d, r)
	if !ok {
		s.memo[key] = bspEntry{regions: 0, split: splitLeaf}
		return 0
	}
	s.stats.States++
	if s.d.Weight(s.model, rm) <= s.delta {
		s.memo[key] = bspEntry{regions: 1, split: splitLeaf}
		return 1
	}
	best := s.countCap + 1
	bestSplit := splitLeaf
	// Horizontal splits: cut above row p of the minimal rectangle.
	for p := rm.R0 + 1; p <= rm.R1; p++ {
		s.stats.SplitsTried++
		a := s.solve(matrix.Rect{R0: rm.R0, C0: rm.C0, R1: p - 1, C1: rm.C1})
		if a >= best {
			continue
		}
		b := s.solve(matrix.Rect{R0: p, C0: rm.C0, R1: rm.R1, C1: rm.C1})
		if a+b < best {
			best = a + b
			bestSplit = encodeSplit(false, p)
		}
	}
	// Vertical splits: cut left of column p.
	for p := rm.C0 + 1; p <= rm.C1; p++ {
		s.stats.SplitsTried++
		a := s.solve(matrix.Rect{R0: rm.R0, C0: rm.C0, R1: rm.R1, C1: p - 1})
		if a >= best {
			continue
		}
		b := s.solve(matrix.Rect{R0: rm.R0, C0: p, R1: rm.R1, C1: rm.C1})
		if a+b < best {
			best = a + b
			bestSplit = encodeSplit(true, p)
		}
	}
	s.memo[key] = bspEntry{regions: best, split: bestSplit}
	return best
}

// Regions implements Solver.
func (s *BSP) Regions() []matrix.Rect {
	var out []matrix.Rect
	s.extract(s.d.Full(), &out)
	return out
}

func (s *BSP) extract(r matrix.Rect, out *[]matrix.Rect) {
	if r.Empty() {
		return
	}
	e, hit := s.memo[r.Key()]
	if !hit || e.regions == 0 {
		return
	}
	rm, ok := scanMinimalCandidateRect(s.d, r)
	if !ok {
		return
	}
	if e.split == splitLeaf {
		*out = append(*out, rm)
		return
	}
	vertical, pos := decodeSplit(e.split)
	if vertical {
		s.extract(matrix.Rect{R0: rm.R0, C0: rm.C0, R1: rm.R1, C1: pos - 1}, out)
		s.extract(matrix.Rect{R0: rm.R0, C0: pos, R1: rm.R1, C1: rm.C1}, out)
	} else {
		s.extract(matrix.Rect{R0: rm.R0, C0: rm.C0, R1: pos - 1, C1: rm.C1}, out)
		s.extract(matrix.Rect{R0: pos, C0: rm.C0, R1: rm.R1, C1: rm.C1}, out)
	}
}

// Stats implements Solver.
func (s *BSP) Stats() SolverStats { return s.stats }

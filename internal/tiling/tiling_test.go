package tiling

import (
	"testing"

	"ewh/internal/cost"
	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

var testModel = cost.Model{Wi: 1, Wo: 0.2}

// buildMS creates a realistic sample matrix from random (optionally skewed)
// relations joined by a band condition.
func buildMS(t testing.TB, n, ns int, beta int64, so int, zipf float64, seed uint64) *matrix.Sample {
	t.Helper()
	r := stats.NewRNG(seed)
	r1 := make([]join.Key, n)
	r2 := make([]join.Key, n)
	var z *stats.Zipf
	if zipf > 0 {
		z = stats.NewZipf(int64(n), zipf)
	}
	for i := range r1 {
		if z != nil {
			r1[i] = z.Draw(r)
			r2[i] = z.Draw(r)
		} else {
			r1[i] = r.Int64n(int64(n))
			r2[i] = r.Int64n(int64(n))
		}
	}
	cond := join.NewBand(beta)
	rh, err := histogram.FromSample(r1, ns)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := histogram.FromSample(r2, ns)
	if err != nil {
		t.Fatal(err)
	}
	out := sample.StreamSample(r1, r2, cond, so, 4, r)
	sm, err := matrix.BuildSample(rh, ch, cond, out.Pairs, out.M, n, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestEvenCuts(t *testing.T) {
	cuts := evenCuts(10, 4)
	if cuts[0] != 0 || cuts[len(cuts)-1] != 10 {
		t.Fatalf("cuts %v must span [0,10]", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts %v not strictly increasing", cuts)
		}
	}
	if got := evenCuts(3, 8); len(got) != 4 {
		t.Fatalf("evenCuts(3,8) = %v, want 4 entries", got)
	}
}

func TestCoarsenGridValidCuts(t *testing.T) {
	sm := buildMS(t, 4000, 64, 3, 500, 0, 1)
	rowCuts, colCuts := CoarsenGrid(sm, 16, testModel, CoarsenOptions{})
	checkCuts := func(cuts []int, n int) {
		t.Helper()
		if cuts[0] != 0 || cuts[len(cuts)-1] != n {
			t.Fatalf("cuts %v must span [0,%d]", cuts, n)
		}
		if len(cuts)-1 > 16 {
			t.Fatalf("too many bands: %d", len(cuts)-1)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Fatalf("cuts %v not strictly increasing", cuts)
			}
		}
	}
	checkCuts(rowCuts, sm.Rows)
	checkCuts(colCuts, sm.Cols)
}

func TestCoarsenGridBeatsEvenCutsOnSkew(t *testing.T) {
	sm := buildMS(t, 6000, 96, 2, 800, 0.9, 2)
	even := gridMaxCellWeight(sm, evenCuts(sm.Rows, 12), evenCuts(sm.Cols, 12), testModel)
	rowCuts, colCuts := CoarsenGrid(sm, 12, testModel, CoarsenOptions{})
	opt := gridMaxCellWeight(sm, rowCuts, colCuts, testModel)
	if opt > even*1.05 {
		t.Fatalf("optimized max cell weight %v worse than even cuts %v", opt, even)
	}
}

func TestCoarsenGridSmallMatrixIdentity(t *testing.T) {
	sm := buildMS(t, 500, 8, 2, 100, 0, 3)
	rowCuts, colCuts := CoarsenGrid(sm, 16, testModel, CoarsenOptions{})
	if len(rowCuts)-1 != sm.Rows || len(colCuts)-1 != sm.Cols {
		t.Fatalf("small matrix should keep identity cuts, got %d/%d bands",
			len(rowCuts)-1, len(colCuts)-1)
	}
}

func TestSweepRespectsThreshold(t *testing.T) {
	sm := buildMS(t, 3000, 48, 3, 400, 0.5, 4)
	colCuts := evenCuts(sm.Cols, 8)
	sw := newSweeper(sm, colCuts, false)
	// Find a feasible threshold, then verify the resulting grid obeys it.
	tWeight := sm.TotalWeight(testModel) / 4
	cuts := sw.sweep(testModel, tWeight, 48)
	if cuts == nil {
		t.Skip("threshold infeasible for this seed")
	}
	d := matrix.Coarsen(sm, cuts, colCuts)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if !d.Candidate(i, j) {
				continue
			}
			w := d.Weight(testModel, matrix.Rect{R0: i, C0: j, R1: i, C1: j})
			if w > tWeight*1.0001 {
				t.Fatalf("cell (%d,%d) weight %v exceeds threshold %v", i, j, w, tWeight)
			}
		}
	}
}

func coarsenForTest(t testing.TB, sm *matrix.Sample, nc int) *matrix.Dense {
	t.Helper()
	rowCuts, colCuts := CoarsenGrid(sm, nc, testModel, CoarsenOptions{})
	return matrix.Coarsen(sm, rowCuts, colCuts)
}

func TestBSPAndMonotonicAgree(t *testing.T) {
	// Both solvers compute optimal hierarchical partitionings; their region
	// counts must agree for every delta.
	for seed := uint64(1); seed <= 5; seed++ {
		sm := buildMS(t, 1500, 24, 4, 300, 0.4, seed)
		d := coarsenForTest(t, sm, 10)
		total := d.TotalWeight(testModel)
		for _, frac := range []float64{0.15, 0.3, 0.5, 0.8, 1.0} {
			delta := total * frac
			b := NewBSP(d, testModel).MinRegions(delta, 1000)
			m := NewMonotonicBSP(d, testModel).MinRegions(delta, 1000)
			if b != m {
				t.Fatalf("seed %d delta %.0f: BSP=%d MonotonicBSP=%d", seed, delta, b, m)
			}
		}
	}
}

func TestMonotonicBSPFewerStates(t *testing.T) {
	sm := buildMS(t, 3000, 48, 3, 500, 0.4, 6)
	d := coarsenForTest(t, sm, 16)
	delta := d.TotalWeight(testModel) * 0.2
	b := NewBSP(d, testModel)
	m := NewMonotonicBSP(d, testModel)
	b.MinRegions(delta, 1000)
	m.MinRegions(delta, 1000)
	if m.Stats().States > b.Stats().States {
		t.Fatalf("MonotonicBSP states %d > BSP states %d", m.Stats().States, b.Stats().States)
	}
}

// coverageCheck verifies the partitioning invariants of the §II problem
// statement: every candidate cell covered by exactly one region; regions
// pairwise disjoint.
func coverageCheck(t *testing.T, d *matrix.Dense, regions []Region) {
	t.Helper()
	cover := make(map[[2]int]int)
	for _, reg := range regions {
		for i := reg.Rect.R0; i <= reg.Rect.R1; i++ {
			for j := reg.Rect.C0; j <= reg.Rect.C1; j++ {
				cover[[2]int{i, j}]++
			}
		}
	}
	for cell, n := range cover {
		if n > 1 {
			t.Fatalf("cell %v covered by %d regions", cell, n)
		}
	}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.Candidate(i, j) && cover[[2]int{i, j}] != 1 {
				t.Fatalf("candidate cell (%d,%d) covered %d times", i, j, cover[[2]int{i, j}])
			}
		}
	}
}

func TestRegionalizeInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		sm := buildMS(t, 2500, 40, 3, 400, 0.5, seed+10)
		d := coarsenForTest(t, sm, 16)
		for _, j := range []int{1, 3, 8} {
			regions, err := Regionalize(d, testModel, j, RegionalizeOptions{})
			if err != nil {
				t.Fatalf("seed %d j %d: %v", seed, j, err)
			}
			if len(regions) > j {
				t.Fatalf("seed %d: %d regions for j = %d", seed, len(regions), j)
			}
			coverageCheck(t, d, regions)
		}
	}
}

func TestRegionalizeBaselineMatchesMonotonic(t *testing.T) {
	sm := buildMS(t, 2000, 32, 3, 300, 0.3, 20)
	d := coarsenForTest(t, sm, 12)
	a, err := Regionalize(d, testModel, 6, RegionalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regionalize(d, testModel, 6, RegionalizeOptions{UseBaselineBSP: true})
	if err != nil {
		t.Fatal(err)
	}
	// Max weights agree within binary-search resolution.
	wa, wb := MaxWeight(a), MaxWeight(b)
	if wa > wb*1.01 || wb > wa*1.01 {
		t.Fatalf("monotonic max weight %v vs baseline %v", wa, wb)
	}
}

func TestRegionalizeBalances(t *testing.T) {
	// More machines must not increase the max region weight, and the
	// partitioning should beat the single-region weight substantially.
	sm := buildMS(t, 4000, 64, 3, 600, 0.4, 30)
	d := coarsenForTest(t, sm, 32)
	prev := d.TotalWeight(testModel)
	for _, j := range []int{2, 4, 8, 16} {
		regions, err := Regionalize(d, testModel, j, RegionalizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w := MaxWeight(regions)
		if w > prev*1.001 {
			t.Fatalf("j=%d max weight %v worse than j/2's %v", j, w, prev)
		}
		prev = w
	}
	// With 16 machines the max weight should be far below the total.
	if prev > d.TotalWeight(testModel)/3 {
		t.Fatalf("16-way partitioning max weight %v too close to total %v",
			prev, d.TotalWeight(testModel))
	}
}

func TestRegionalizeEmptyMatrix(t *testing.T) {
	// A matrix with no candidate cells yields no regions and no error.
	bounds := []join.Key{0, 10, 20}
	d := matrix.NewDense(2, 2,
		[]float64{0, 0, 0, 0},
		[]float64{5, 5}, []float64{5, 5},
		bounds, bounds,
		[]int{1, 1}, []int{0, 0}) // lo > hi everywhere: no candidates
	regions, err := Regionalize(d, testModel, 4, RegionalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 0 {
		t.Fatalf("empty matrix produced %d regions", len(regions))
	}
}

func TestRegionalizeDisjointRelations(t *testing.T) {
	// Disjoint relations still plan successfully: the edge-widened corner
	// cells (which absorb keys the sample missed) become the only
	// candidates, yielding a few tiny regions and zero real output.
	r1 := []join.Key{1, 2, 3, 4, 5, 6, 7, 8}
	r2 := []join.Key{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	rh, _ := histogram.FromSample(r1, 4)
	ch, _ := histogram.FromSample(r2, 4)
	sm, err := matrix.BuildSample(rh, ch, join.NewBand(1), nil, 0, 8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := matrix.Coarsen(sm, []int{0, 2, 4}, []int{0, 2, 4})
	regions, err := Regionalize(d, testModel, 4, RegionalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) > 4 {
		t.Fatalf("disjoint join produced %d regions for J=4", len(regions))
	}
	coverageCheck(t, d, regions)
}

func TestRegionalizeErrors(t *testing.T) {
	sm := buildMS(t, 500, 8, 1, 50, 0, 40)
	d := coarsenForTest(t, sm, 4)
	if _, err := Regionalize(d, testModel, 0, RegionalizeOptions{}); err == nil {
		t.Error("j=0 accepted")
	}
}

func TestRegionKeyRangesAligned(t *testing.T) {
	sm := buildMS(t, 2000, 32, 2, 300, 0, 50)
	d := coarsenForTest(t, sm, 16)
	regions, err := Regionalize(d, testModel, 8, RegionalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r.RowLo >= r.RowHi || r.ColLo >= r.ColHi {
			t.Fatalf("region %v has empty key range", r)
		}
		if r.RowLo != d.RowBounds[r.Rect.R0] || r.RowHi != d.RowBounds[r.Rect.R1+1] {
			t.Fatalf("region %v key range misaligned with bounds", r)
		}
	}
}

func TestMaxWeight(t *testing.T) {
	if MaxWeight(nil) != 0 {
		t.Error("MaxWeight(nil) != 0")
	}
	regions := []Region{{Weight: 3}, {Weight: 7}, {Weight: 5}}
	if MaxWeight(regions) != 7 {
		t.Error("MaxWeight wrong")
	}
}

func BenchmarkMonotonicBSP(b *testing.B) {
	sm := buildMS(b, 4000, 64, 3, 600, 0.4, 60)
	d := coarsenForTest(b, sm, 32)
	delta := d.TotalWeight(testModel) * 0.15
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMonotonicBSP(d, testModel).MinRegions(delta, 1000)
	}
}

func BenchmarkBaselineBSP(b *testing.B) {
	sm := buildMS(b, 4000, 64, 3, 600, 0.4, 60)
	d := coarsenForTest(b, sm, 32)
	delta := d.TotalWeight(testModel) * 0.15
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBSP(d, testModel).MinRegions(delta, 1000)
	}
}

func BenchmarkCoarsenGrid(b *testing.B) {
	sm := buildMS(b, 20000, 256, 3, 2000, 0.4, 70)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoarsenGrid(sm, 16, testModel, CoarsenOptions{})
	}
}

func TestRefineCuts(t *testing.T) {
	cuts := refineCuts([]int{0, 100}, 4)
	if len(cuts)-1 != 4 {
		t.Fatalf("refineCuts produced %d bands, want 4: %v", len(cuts)-1, cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not increasing: %v", cuts)
		}
	}
	// Already at capacity: unchanged.
	fixed := []int{0, 1, 2, 3}
	if got := refineCuts(fixed, 3); len(got) != 4 {
		t.Fatalf("full cuts modified: %v", got)
	}
	// Cannot exceed the line count.
	tiny := refineCuts([]int{0, 2}, 10)
	if len(tiny)-1 != 2 {
		t.Fatalf("2-line matrix got %d bands", len(tiny)-1)
	}
}

func TestCoarsenUsesAllBands(t *testing.T) {
	sm := buildMS(t, 4000, 128, 3, 600, 0.8, 99)
	rowCuts, colCuts := CoarsenGrid(sm, 16, testModel, CoarsenOptions{})
	if len(rowCuts)-1 != 16 || len(colCuts)-1 != 16 {
		t.Fatalf("grid %dx%d, want 16x16 (refinement should fill bands)",
			len(rowCuts)-1, len(colCuts)-1)
	}
}

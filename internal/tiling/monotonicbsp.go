package tiling

import (
	"ewh/internal/cost"
	"ewh/internal/matrix"
)

// MonotonicBSP is the paper's novel tiling algorithm (§III-C, Algorithm 2).
// It exploits the monotonic-join staircase twice:
//
//   - DP states are only minimal candidate rectangles — by Lemma 3.4 their
//     defining corners are candidate cells, so there are O(ncc²) of them
//     instead of the baseline's O(nc⁴) arbitrary rectangles;
//   - shrinking a split's sub-rectangle to its minimal candidate rectangle is
//     an O(log nc) monotone query instead of an O(nc) scan.
//
// This implementation realizes Algorithm 2 top-down with memoization: every
// rectangle is shrunk *before* the memo lookup, so exactly the minimal
// candidate rectangles become states, and sub-rectangles of a split are
// shrunk with Dense.MinimalCandidateRect's monotone binary searches. The
// result is identical to the baseline BSP's (both compute the optimal
// hierarchical partitioning for the given delta); only the complexity
// differs — O(nc³·log nc) here versus O(nc⁵) for the baseline, which the
// Table III benchmark measures.
type MonotonicBSP struct {
	d     *matrix.Dense
	model cost.Model

	delta    float64
	countCap int
	memo     map[uint64]bspEntry
	stats    SolverStats
	root     matrix.Rect
	rootOK   bool

	// splitCache memoizes, per minimal candidate rectangle, its shrunk
	// (childA, childB) pair for every splitter. The expansion is independent
	// of delta, so it is reused across the δ binary search's MinRegions
	// calls, saving the repeated monotone minimal-rect queries. Children are
	// stored as packed rect keys; an Empty child is encoded as emptyChild.
	splitCache map[uint64][]childPair
}

// childPair is one splitter's shrunk sub-rectangles plus its split encoding.
type childPair struct {
	a, b  uint64
	split int32
}

// emptyChild marks a split side with no candidate cells (coordinate 0xffff
// can never occur: nc fits comfortably below it).
const emptyChild = ^uint64(0)

// expand returns the delta-independent split expansion of rm, cached.
func (s *MonotonicBSP) expand(rm matrix.Rect) []childPair {
	key := rm.Key()
	if ps, ok := s.splitCache[key]; ok {
		return ps
	}
	nSplits := (rm.R1 - rm.R0) + (rm.C1 - rm.C0)
	ps := make([]childPair, 0, nSplits)
	addPair := func(a, b matrix.Rect, split int32) {
		pa, pb := emptyChild, emptyChild
		if am, ok := s.d.MinimalCandidateRect(a); ok {
			pa = am.Key()
		}
		if bm, ok := s.d.MinimalCandidateRect(b); ok {
			pb = bm.Key()
		}
		ps = append(ps, childPair{a: pa, b: pb, split: split})
	}
	for p := rm.R0 + 1; p <= rm.R1; p++ {
		addPair(
			matrix.Rect{R0: rm.R0, C0: rm.C0, R1: p - 1, C1: rm.C1},
			matrix.Rect{R0: p, C0: rm.C0, R1: rm.R1, C1: rm.C1},
			encodeSplit(false, p),
		)
	}
	for p := rm.C0 + 1; p <= rm.C1; p++ {
		addPair(
			matrix.Rect{R0: rm.R0, C0: rm.C0, R1: rm.R1, C1: p - 1},
			matrix.Rect{R0: rm.R0, C0: p, R1: rm.R1, C1: rm.C1},
			encodeSplit(true, p),
		)
	}
	s.splitCache[key] = ps
	return ps
}

// NewMonotonicBSP returns a MonotonicBSP solver over the coarsened matrix.
func NewMonotonicBSP(d *matrix.Dense, model cost.Model) *MonotonicBSP {
	return &MonotonicBSP{d: d, model: model, splitCache: make(map[uint64][]childPair)}
}

// MinRegions implements Solver.
func (s *MonotonicBSP) MinRegions(delta float64, countCap int) int {
	s.delta = delta
	s.countCap = countCap
	s.memo = make(map[uint64]bspEntry)
	s.stats = SolverStats{}
	root, ok := s.d.MinimalCandidateRect(s.d.Full())
	s.root, s.rootOK = root, ok
	if !ok {
		return 0
	}
	return s.solve(root)
}

// solve expects rm to already be a minimal candidate rectangle.
func (s *MonotonicBSP) solve(rm matrix.Rect) int {
	key := rm.Key()
	if e, hit := s.memo[key]; hit {
		return e.regions
	}
	s.stats.States++
	if s.d.Weight(s.model, rm) <= s.delta {
		s.memo[key] = bspEntry{regions: 1, split: splitLeaf}
		return 1
	}
	best := s.countCap + 1
	bestSplit := splitLeaf
	for _, pair := range s.expand(rm) {
		s.stats.SplitsTried++
		var ra int
		if pair.a != emptyChild {
			ra = s.solve(matrix.RectFromKey(pair.a))
		}
		if ra >= best {
			continue
		}
		var rb int
		if pair.b != emptyChild {
			rb = s.solve(matrix.RectFromKey(pair.b))
		}
		if ra+rb < best {
			best = ra + rb
			bestSplit = pair.split
		}
	}
	s.memo[key] = bspEntry{regions: best, split: bestSplit}
	return best
}

// Regions implements Solver.
func (s *MonotonicBSP) Regions() []matrix.Rect {
	if !s.rootOK {
		return nil
	}
	var out []matrix.Rect
	s.extract(s.root, &out)
	return out
}

func (s *MonotonicBSP) extract(rm matrix.Rect, out *[]matrix.Rect) {
	e := s.memo[rm.Key()]
	if e.split == splitLeaf {
		*out = append(*out, rm)
		return
	}
	vertical, pos := decodeSplit(e.split)
	var a, b matrix.Rect
	if vertical {
		a = matrix.Rect{R0: rm.R0, C0: rm.C0, R1: rm.R1, C1: pos - 1}
		b = matrix.Rect{R0: rm.R0, C0: pos, R1: rm.R1, C1: rm.C1}
	} else {
		a = matrix.Rect{R0: rm.R0, C0: rm.C0, R1: pos - 1, C1: rm.C1}
		b = matrix.Rect{R0: pos, C0: rm.C0, R1: rm.R1, C1: rm.C1}
	}
	if am, ok := s.d.MinimalCandidateRect(a); ok {
		s.extract(am, out)
	}
	if bm, ok := s.d.MinimalCandidateRect(b); ok {
		s.extract(bm, out)
	}
}

// Stats implements Solver.
func (s *MonotonicBSP) Stats() SolverStats { return s.stats }

package tiling

import (
	"fmt"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/matrix"
)

// Region is one bucket of the equi-weight histogram MH: a rectangle of
// coarsened-matrix cells assigned to one machine, with the derived join-key
// routing ranges and its modeled weight components.
type Region struct {
	// Rect is the region's cell rectangle in MC coordinates.
	Rect matrix.Rect
	// RowLo/RowHi and ColLo/ColHi are the half-open join-key ranges
	// [lo, hi) of R1 and R2 tuples routed to this region.
	RowLo, RowHi join.Key
	ColLo, ColHi join.Key
	// Input, Output and Weight are the modeled costs (§II).
	Input, Output, Weight float64
}

// ContainsRow reports whether an R1 tuple with key k routes to the region.
func (r Region) ContainsRow(k join.Key) bool { return r.RowLo <= k && k < r.RowHi }

// ContainsCol reports whether an R2 tuple with key k routes to the region.
func (r Region) ContainsCol(k join.Key) bool { return r.ColLo <= k && k < r.ColHi }

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("region[%d..%d]x[%d..%d] keys R1:[%d,%d) R2:[%d,%d) w=%.1f",
		r.Rect.R0, r.Rect.R1, r.Rect.C0, r.Rect.C1, r.RowLo, r.RowHi, r.ColLo, r.ColHi, r.Weight)
}

// RegionalizeOptions tune the binary search over the maximum region weight.
type RegionalizeOptions struct {
	// Probes bounds the δ binary-search iterations (default 40, giving a
	// relative resolution far below the scheme's sampling error).
	Probes int
	// UseBaselineBSP selects the O(nc⁵) baseline solver instead of
	// MonotonicBSP; both return identical partitionings (ablation knob).
	UseBaselineBSP bool
}

func (o *RegionalizeOptions) defaults() {
	if o.Probes <= 0 {
		o.Probes = 40
	}
}

// Regionalize builds the equi-weight histogram MH: at most j rectangular
// regions over the coarsened matrix minimizing the maximum region weight δ,
// via binary search over δ around the BSP dual (§III-C). It returns the
// regions with key ranges and weights filled in; an empty slice means the
// join produces no output (no candidate cells).
func Regionalize(d *matrix.Dense, model cost.Model, j int, opts RegionalizeOptions) ([]Region, error) {
	opts.defaults()
	if j < 1 {
		return nil, fmt.Errorf("tiling: j = %d < 1", j)
	}
	var solver Solver
	if opts.UseBaselineBSP {
		solver = NewBSP(d, model)
	} else {
		solver = NewMonotonicBSP(d, model)
	}

	// δ is bounded below by the heaviest single candidate cell and by the
	// total weight divided among j machines (no-replication bound), and
	// above by the whole matrix as one region. The optimum is usually within
	// a small factor of the lower bound (BSP is a 2-approximation of the
	// arbitrary-partitioning optimum), so bracket it by doubling before the
	// binary search instead of starting from the full total.
	lo := d.MaxCandCellWeight(model)
	if t := d.TotalWeight(model) / float64(j); t > lo {
		lo = t
	}
	total := d.TotalWeight(model)
	if total == 0 {
		return nil, nil // no candidates, empty join
	}
	hi := total
	if solver.MinRegions(lo, j) <= j {
		hi = lo
	} else {
		bracket := lo
		for p := 0; p < opts.Probes; p++ {
			bracket *= 2
			if bracket >= total {
				bracket = total
				break
			}
			if solver.MinRegions(bracket, j) <= j {
				break
			}
			lo = bracket
		}
		hi = bracket
		for p := 0; p < opts.Probes && hi-lo > 1e-3*hi; p++ {
			mid := lo + (hi-lo)/2
			if solver.MinRegions(mid, j) <= j {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
	n := solver.MinRegions(hi, j)
	if n > j {
		return nil, fmt.Errorf("tiling: solver needs %d regions at upper bound, j = %d", n, j)
	}
	rects := solver.Regions()
	regions := make([]Region, 0, len(rects))
	for _, r := range rects {
		regions = append(regions, makeRegion(d, model, r))
	}
	return regions, nil
}

func makeRegion(d *matrix.Dense, model cost.Model, r matrix.Rect) Region {
	in, out := d.Input(r), d.Output(r)
	return Region{
		Rect:   r,
		RowLo:  d.RowBounds[r.R0],
		RowHi:  d.RowBounds[r.R1+1],
		ColLo:  d.ColBounds[r.C0],
		ColHi:  d.ColBounds[r.C1+1],
		Input:  in,
		Output: out,
		Weight: model.Weight(in, out),
	}
}

// MaxWeight returns the maximum region weight of a partitioning — the
// quantity load balancing minimizes and Fig. 4h reports.
func MaxWeight(regions []Region) float64 {
	max := 0.0
	for _, r := range regions {
		if r.Weight > max {
			max = r.Weight
		}
	}
	return max
}

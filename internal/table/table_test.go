package table

import (
	"testing"

	"ewh/internal/join"
)

func buildTable(t *testing.T) *Table {
	t.Helper()
	tb := New("test")
	if err := tb.AddColumn("a", []int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("b", []int64{10, 20, 30, 40, 50}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAddColumnErrors(t *testing.T) {
	tb := buildTable(t)
	if err := tb.AddColumn("c", []int64{1}); err == nil {
		t.Error("mismatched length accepted")
	}
	if err := tb.AddColumn("a", []int64{1, 2, 3, 4, 5}); err == nil {
		t.Error("duplicate column accepted")
	}
	if tb.NumRows() != 5 || tb.Name() != "test" {
		t.Error("metadata wrong")
	}
}

func TestColumnAccess(t *testing.T) {
	tb := buildTable(t)
	if _, err := tb.Column("nope"); err == nil {
		t.Error("missing column accepted")
	}
	if got := tb.MustColumn("a"); got[2] != 3 {
		t.Error("column values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn on missing column did not panic")
		}
	}()
	tb.MustColumn("nope")
}

func TestFilter(t *testing.T) {
	tb := buildTable(t)
	f := tb.Filter(Between("a", 2, 4))
	if f.NumRows() != 3 {
		t.Fatalf("filtered rows %d, want 3", f.NumRows())
	}
	// Row alignment preserved across columns.
	a := f.MustColumn("a")
	b := f.MustColumn("b")
	for i := range a {
		if b[i] != a[i]*10 {
			t.Fatalf("row %d misaligned: a=%d b=%d", i, a[i], b[i])
		}
	}
}

func TestPredCombinators(t *testing.T) {
	tb := buildTable(t)
	f := tb.Filter(And(Eq("a", 3), Between("b", 0, 100)))
	if f.NumRows() != 1 || f.MustColumn("b")[0] != 30 {
		t.Fatalf("And/Eq filter wrong: %d rows", f.NumRows())
	}
	if tb.Filter(And(Eq("a", 3), Eq("b", 10))).NumRows() != 0 {
		t.Error("contradictory filter kept rows")
	}
}

func TestKeysProjection(t *testing.T) {
	tb := buildTable(t)
	keys, err := tb.Keys("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[4] != 50 {
		t.Fatal("projection wrong")
	}
	if _, err := tb.Keys("nope"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestEncodeKeys(t *testing.T) {
	tb := New("enc")
	if err := tb.AddColumn("p", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("s", []int64{3, 4}); err != nil {
		t.Fatal(err)
	}
	spec := join.CompositeSpec{SecondaryMax: 7, Beta: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	keys, err := tb.EncodeKeys(spec, "p", "s")
	if err != nil {
		t.Fatal(err)
	}
	if p, s := spec.Decode(keys[1]); p != 2 || s != 4 {
		t.Fatalf("encoded key decodes to (%d,%d)", p, s)
	}
	if _, err := tb.EncodeKeys(spec, "nope", "s"); err == nil {
		t.Error("missing primary accepted")
	}
	if _, err := tb.EncodeKeys(spec, "p", "nope"); err == nil {
		t.Error("missing secondary accepted")
	}
}

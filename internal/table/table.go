// Package table is a minimal columnar in-memory relation: int64 columns,
// materializing selections and key projections. It exists because the
// paper's joins are not over base relations (§IV-B): BEOCD applies
// order-priority and totalprice predicates before the join, and §IV-A's
// "Synergy" note materializes the filtered relation during the statistics
// scan so the join scans only surviving tuples. The workload generators
// build Tables and the harness filters them exactly as Appendix B's SQL
// does.
package table

import (
	"fmt"

	"ewh/internal/join"
)

// Table is a named collection of equal-length int64 columns.
type Table struct {
	name string
	cols map[string][]int64
	n    int
}

// New returns an empty table.
func New(name string) *Table {
	return &Table{name: name, cols: make(map[string][]int64)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.n }

// AddColumn installs a column; all columns must have equal length.
func (t *Table) AddColumn(name string, values []int64) error {
	if len(t.cols) > 0 && len(values) != t.n {
		return fmt.Errorf("table %s: column %s has %d rows, table has %d",
			t.name, name, len(values), t.n)
	}
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("table %s: duplicate column %s", t.name, name)
	}
	t.cols[name] = values
	t.n = len(values)
	return nil
}

// Column returns a column by name; callers must not mutate it.
func (t *Table) Column(name string) ([]int64, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %s", t.name, name)
	}
	return c, nil
}

// MustColumn is Column for statically known names.
func (t *Table) MustColumn(name string) []int64 {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Pred is a row predicate over named columns.
type Pred func(get func(col string) int64) bool

// Filter materializes the rows satisfying pred into a new table — the
// "materialize the filtered relation in the statistics scan" optimization.
func (t *Table) Filter(pred Pred) *Table {
	keep := make([]int, 0, t.n)
	names := make([]string, 0, len(t.cols))
	for name := range t.cols {
		names = append(names, name)
	}
	row := 0
	get := func(col string) int64 { return t.cols[col][row] }
	for row = 0; row < t.n; row++ {
		if pred(get) {
			keep = append(keep, row)
		}
	}
	out := New(t.name + "_filtered")
	for _, name := range names {
		src := t.cols[name]
		dst := make([]int64, len(keep))
		for i, r := range keep {
			dst[i] = src[r]
		}
		// AddColumn cannot fail: all columns share len(keep).
		_ = out.AddColumn(name, dst)
	}
	out.n = len(keep)
	return out
}

// Keys projects a column as join keys.
func (t *Table) Keys(col string) ([]join.Key, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	out := make([]join.Key, len(c))
	copy(out, c)
	return out, nil
}

// EncodeKeys projects a composite join key spec.Encode(primaryCol,
// secondaryCol) per row — the encoding step for equality+band joins.
func (t *Table) EncodeKeys(spec join.CompositeSpec, primaryCol, secondaryCol string) ([]join.Key, error) {
	p, err := t.Column(primaryCol)
	if err != nil {
		return nil, err
	}
	s, err := t.Column(secondaryCol)
	if err != nil {
		return nil, err
	}
	out := make([]join.Key, t.n)
	for i := range out {
		out[i] = spec.Encode(p[i], s[i])
	}
	return out, nil
}

// Between returns a predicate lo <= col <= hi.
func Between(col string, lo, hi int64) Pred {
	return func(get func(string) int64) bool {
		v := get(col)
		return lo <= v && v <= hi
	}
}

// Eq returns a predicate col == v.
func Eq(col string, v int64) Pred {
	return func(get func(string) int64) bool { return get(col) == v }
}

// And conjoins predicates.
func And(preds ...Pred) Pred {
	return func(get func(string) int64) bool {
		for _, p := range preds {
			if !p(get) {
				return false
			}
		}
		return true
	}
}

package stats_test

import (
	"slices"
	"testing"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/stats"
)

// buildSummary assembles a well-formed summary directly (the sample package
// owns the production builder; these tests exercise the merge algebra).
func buildSummary(t *testing.T, keys []join.Key, capacity, buckets int) *stats.Summary {
	t.Helper()
	if len(keys) == 0 {
		return &stats.Summary{Cap: capacity}
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	h, err := histogram.FromSorted(sorted, buckets)
	if err != nil {
		t.Fatal(err)
	}
	smp := sorted
	if len(smp) > capacity {
		// Deterministic evenly spaced subsample stands in for the uniform one.
		out := make([]join.Key, capacity)
		for i := range out {
			out[i] = sorted[(2*i+1)*len(sorted)/(2*capacity)]
		}
		smp = out
	}
	s := &stats.Summary{Count: int64(len(keys)), Cap: capacity,
		Keys: slices.Clone(smp), Bounds: slices.Clone(h.Boundaries())}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func randKeys(rng *stats.RNG, n int, domain int64) []join.Key {
	out := make([]join.Key, n)
	for i := range out {
		out[i] = rng.Int64n(domain) - domain/2
	}
	return out
}

func TestValidateRejectsMalformedSummaries(t *testing.T) {
	cases := map[string]*stats.Summary{
		"negative count":  {Count: -1, Cap: 4},
		"zero cap":        {Count: 0, Cap: 0},
		"over cap":        {Count: 9, Cap: 2, Keys: []join.Key{1, 2, 3}, Bounds: []join.Key{0, 9}},
		"over count":      {Count: 1, Cap: 8, Keys: []join.Key{1, 2}, Bounds: []join.Key{0, 9}},
		"unsorted sample": {Count: 4, Cap: 8, Keys: []join.Key{3, 1}, Bounds: []join.Key{0, 9}},
		"empty w/ data":   {Count: 0, Cap: 8, Keys: []join.Key{1}},
		"no sample":       {Count: 3, Cap: 8, Bounds: []join.Key{0, 9}},
		"one boundary":    {Count: 3, Cap: 8, Keys: []join.Key{1}, Bounds: []join.Key{0}},
		"flat boundaries": {Count: 3, Cap: 8, Keys: []join.Key{1}, Bounds: []join.Key{0, 0}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMergeSummariesCommutes(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		rng := stats.NewRNG(seed)
		a := buildSummary(t, randKeys(rng, int(rng.Int64n(3000)), 500), 64+rng.Intn(64), 8+rng.Intn(8))
		b := buildSummary(t, randKeys(rng, int(rng.Int64n(3000)), 500), 64+rng.Intn(64), 8+rng.Intn(8))
		ab, err := stats.MergeSummaries(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := stats.MergeSummaries(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if ab.Count != ba.Count || ab.Cap != ba.Cap ||
			!slices.Equal(ab.Keys, ba.Keys) || !slices.Equal(ab.Bounds, ba.Bounds) {
			t.Fatalf("seed %d: merge not commutative:\n%+v\n%+v", seed, ab, ba)
		}
		if err := ab.Validate(); err != nil {
			t.Fatalf("seed %d: merged summary invalid: %v", seed, err)
		}
	}
}

func TestMergeSummariesCountsAndCaps(t *testing.T) {
	rng := stats.NewRNG(3)
	a := buildSummary(t, randKeys(rng, 5000, 1000), 128, 16)
	b := buildSummary(t, randKeys(rng, 100, 1000), 64, 16)
	m, err := stats.MergeSummaries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 5100 {
		t.Fatalf("merged count %d, want 5100", m.Count)
	}
	if m.Cap != 128 {
		t.Fatalf("merged cap %d, want 128", m.Cap)
	}
	if len(m.Keys) > m.Cap {
		t.Fatalf("merged sample %d exceeds cap %d", len(m.Keys), m.Cap)
	}
	if !slices.IsSorted(m.Keys) {
		t.Fatal("merged sample not sorted")
	}
}

func TestMergeSummariesEmptySides(t *testing.T) {
	rng := stats.NewRNG(4)
	a := buildSummary(t, randKeys(rng, 500, 100), 64, 8)
	empty := buildSummary(t, nil, 32, 8)
	m, err := stats.MergeSummaries(a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != a.Count || !slices.Equal(m.Keys, a.Keys) || !slices.Equal(m.Bounds, a.Bounds) {
		t.Fatal("merging with an empty shard changed the summary")
	}
	both, err := stats.MergeSummaries(empty, empty)
	if err != nil {
		t.Fatal(err)
	}
	if both.Count != 0 || both.Keys != nil || both.Bounds != nil {
		t.Fatalf("empty merge produced data: %+v", both)
	}
}

func TestMergeSummariesSingleSlot(t *testing.T) {
	// The degenerate one-slot capacity keeps exactly one key, symmetrically.
	a := &stats.Summary{Count: 10, Cap: 1, Keys: []join.Key{5}, Bounds: []join.Key{0, 10}}
	b := &stats.Summary{Count: 3, Cap: 1, Keys: []join.Key{7}, Bounds: []join.Key{5, 9}}
	ab, err := stats.MergeSummaries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := stats.MergeSummaries(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Keys) != 1 || !slices.Equal(ab.Keys, ba.Keys) {
		t.Fatalf("one-slot merge asymmetric or oversized: %v vs %v", ab.Keys, ba.Keys)
	}
	if ab.Keys[0] != 5 {
		t.Fatalf("one-slot merge kept %d, want the heavier shard's 5", ab.Keys[0])
	}
}

package stats

import (
	"math"
	"slices"
)

// Zipf draws values in [0, N) with P(k) proportional to 1/(k+1)^s. It mirrors
// the Chaudhuri-Narasayya skewed TPC-H generator used in the paper (skew
// parameter z; z=0 is uniform, the paper's experiments use z=0.25).
//
// For domains up to cdfCap the exact CDF is precomputed and draws invert it
// with binary search. For larger domains draws invert the continuous Zipfian
// envelope x^-s, which matches the discrete distribution to within O(1/k)
// relative error per key — indistinguishable for workload generation, where
// only the skew shape matters.
type Zipf struct {
	n   int64
	s   float64
	cdf []float64 // exact CDF when n <= cdfCap, else nil
	t   float64   // total envelope mass when cdf == nil
}

const cdfCap = 1 << 20

// NewZipf returns a Zipf distribution over [0, n) with exponent s >= 0.
// It panics if n <= 0 or s < 0.
func NewZipf(n int64, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("stats: NewZipf called with s < 0")
	}
	z := &Zipf{n: n, s: s}
	if n <= cdfCap {
		cdf := make([]float64, n)
		sum := 0.0
		for k := int64(0); k < n; k++ {
			sum += math.Pow(float64(k+1), -s)
			cdf[k] = sum
		}
		for k := range cdf {
			cdf[k] /= sum
		}
		z.cdf = cdf
		return z
	}
	z.t = z.envelopeCDF(float64(n) + 1)
	return z
}

// envelopeCDF integrates x^-s over [1, x].
func (z *Zipf) envelopeCDF(x float64) float64 {
	if z.s == 1 {
		return math.Log(x)
	}
	return (math.Pow(x, 1-z.s) - 1) / (1 - z.s)
}

// envelopeInv inverts envelopeCDF.
func (z *Zipf) envelopeInv(p float64) float64 {
	if z.s == 1 {
		return math.Exp(p)
	}
	return math.Pow(p*(1-z.s)+1, 1/(1-z.s))
}

// Draw returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Draw(r *RNG) int64 {
	if z.cdf != nil {
		u := r.Float64()
		i, _ := slices.BinarySearch(z.cdf, u)
		k := int64(i)
		if k >= z.n {
			k = z.n - 1
		}
		return k
	}
	x := z.envelopeInv(r.Float64() * z.t)
	k := int64(math.Floor(x)) - 1
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Multiplicities returns, for the distribution's domain, the expected key
// frequency of count draws — a deterministic skewed histogram without
// sampling noise, used by tests and synthetic generators.
func (z *Zipf) Multiplicities(count int64) []int64 {
	if z.cdf == nil {
		panic("stats: Multiplicities requires n <= cdfCap")
	}
	out := make([]int64, z.n)
	prev := 0.0
	var assigned int64
	for k := int64(0); k < z.n; k++ {
		p := z.cdf[k] - prev
		prev = z.cdf[k]
		c := int64(math.Round(p * float64(count)))
		out[k] = c
		assigned += c
	}
	// Fold rounding drift into the heaviest key.
	out[0] += count - assigned
	if out[0] < 0 {
		out[0] = 0
	}
	return out
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestInt64nRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n16 uint16) bool {
		n := int64(n16%1000) + 1
		v := r.Int64n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	NewRNG(1).Int64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64UniformMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation value %d", v)
		}
		seen[v] = true
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := NewRNG(13)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("s=0 key %d count %d far from uniform %d", k, c, n/10)
		}
	}
}

func TestZipfSkewShape(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := NewRNG(17)
	counts := make([]int, 1000)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	// With s=1, P(0)/P(9) = 10; allow generous sampling slack.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("zipf(1) P(0)/P(9) ratio %v, want ~10", ratio)
	}
	if counts[0] <= counts[100] {
		t.Fatal("zipf head not heavier than tail")
	}
}

func TestZipfLargeDomainEnvelope(t *testing.T) {
	z := NewZipf(1<<22, 0.5) // beyond cdfCap: exercises envelope inversion
	r := NewRNG(19)
	var below, total int64
	for i := 0; i < 50000; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 1<<22 {
			t.Fatalf("draw out of range: %d", v)
		}
		if v < 1<<21 {
			below++
		}
		total++
	}
	// s=0.5 puts well over half the mass in the lower half of the domain.
	if float64(below)/float64(total) < 0.6 {
		t.Fatalf("envelope sampler not skewed: %d/%d below midpoint", below, total)
	}
}

func TestZipfMultiplicitiesSumAndShape(t *testing.T) {
	z := NewZipf(100, 0.25)
	m := z.Multiplicities(10000)
	var sum int64
	for _, c := range m {
		sum += c
	}
	if sum != 10000 {
		t.Fatalf("multiplicities sum %d, want 10000", sum)
	}
	if m[0] < m[99] {
		t.Fatal("multiplicities not decreasing head-to-tail")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkZipfDrawSmall(b *testing.B) {
	z := NewZipf(100000, 0.25)
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Draw(r)
	}
}

func BenchmarkZipfDrawLarge(b *testing.B) {
	z := NewZipf(1<<24, 0.25)
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Draw(r)
	}
}

package stats

import (
	"fmt"
	"slices"

	"ewh/internal/histogram"
	"ewh/internal/join"
)

// Summary is the mergeable statistics summary of one multiset of join keys —
// the unit of the distributed statistics collection: after stage 1 of a
// multiway pipeline each worker summarizes its LOCAL intermediate keys with
// one of these, ships it to the coordinator (planio carries the canonical
// binary encoding), and the coordinator merges the per-worker summaries into
// a global one that is statistically equivalent to summarizing the union —
// without a single intermediate tuple transiting the coordinator.
//
// A summary carries three things: the exact shard size (Count), a uniform
// without-replacement sample of the shard's keys (Keys, at most Cap of
// them, kept sorted — the canonical form), and the shard's equi-depth
// histogram boundaries over ALL its keys (Bounds), which preserve quantile
// accuracy the capped sample alone cannot.
type Summary struct {
	// Count is the exact number of keys summarized.
	Count int64
	// Cap is the sample capacity the summary was built with; len(Keys) is at
	// most min(Cap, Count).
	Cap int
	// Keys is a uniform random sample of the summarized keys, sorted
	// ascending (duplicates allowed — it samples a multiset).
	Keys []join.Key
	// Bounds holds the equi-depth histogram boundaries over the full shard
	// (len >= 2, strictly increasing); nil exactly when Count == 0.
	Bounds []join.Key
}

// Validate checks the canonical-form invariants the codec and the merge rely
// on.
func (s *Summary) Validate() error {
	if s.Count < 0 {
		return fmt.Errorf("stats: summary count %d < 0", s.Count)
	}
	if s.Cap < 1 {
		return fmt.Errorf("stats: summary capacity %d < 1", s.Cap)
	}
	if len(s.Keys) > s.Cap {
		return fmt.Errorf("stats: summary holds %d sampled keys, capacity %d", len(s.Keys), s.Cap)
	}
	if int64(len(s.Keys)) > s.Count {
		return fmt.Errorf("stats: summary holds %d sampled keys of %d counted", len(s.Keys), s.Count)
	}
	if !slices.IsSorted(s.Keys) {
		return fmt.Errorf("stats: summary sample not sorted")
	}
	if s.Count == 0 {
		if len(s.Keys) != 0 || len(s.Bounds) != 0 {
			return fmt.Errorf("stats: empty summary carries data")
		}
		return nil
	}
	if len(s.Keys) == 0 {
		return fmt.Errorf("stats: non-empty summary without a sample")
	}
	if len(s.Bounds) < 2 {
		return fmt.Errorf("stats: non-empty summary with %d histogram boundaries", len(s.Bounds))
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] <= s.Bounds[i-1] {
			return fmt.Errorf("stats: summary boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// systematicPick selects n evenly spaced elements from the sorted sample —
// the deterministic subsample MergeSummaries shrinks each side with. Evenly
// spaced positions in a sorted uniform sample cover the quantile space
// evenly, so the pick behaves like a (lower-variance) uniform subsample.
func systematicPick(keys []join.Key, n int) []join.Key {
	if n >= len(keys) {
		return slices.Clone(keys)
	}
	out := make([]join.Key, n)
	for i := range out {
		out[i] = keys[(2*i+1)*len(keys)/(2*n)]
	}
	return out
}

// mergeSorted merges two sorted key slices.
func mergeSorted(a, b []join.Key) []join.Key {
	out := make([]join.Key, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// MergeSummaries combines two summaries of DISJOINT shards into a summary of
// their union. Counts add; samples combine (subsampled proportionally to the
// shard counts when the union exceeds the merged capacity, via deterministic
// systematic picks); histogram boundaries merge through the weighted
// piecewise-uniform CDF (histogram.Merge). The merge is deterministic and
// commutative — MergeSummaries(a, b) and MergeSummaries(b, a) encode
// identically — which the planio fuzz harness enforces. It is not exactly
// associative (a fold may shed at most one sampled key per step), so
// coordinators should fold worker summaries in a fixed order for
// reproducibility.
func MergeSummaries(a, b *Summary) (*Summary, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	capacity := a.Cap
	if b.Cap > capacity {
		capacity = b.Cap
	}
	out := &Summary{Count: a.Count + b.Count, Cap: capacity}
	if a.Count == 0 && b.Count == 0 {
		return out, nil
	}
	if a.Count == 0 {
		out.Keys = slices.Clone(b.Keys)
		out.Bounds = slices.Clone(b.Bounds)
		return out, nil
	}
	if b.Count == 0 {
		out.Keys = slices.Clone(a.Keys)
		out.Bounds = slices.Clone(a.Bounds)
		return out, nil
	}

	switch {
	case len(a.Keys)+len(b.Keys) <= capacity:
		out.Keys = mergeSorted(a.Keys, b.Keys)
	case capacity < 2:
		// One slot: keep the heavier shard's pick; ties break to the smaller
		// key, so the choice stays symmetric under swapping a and b.
		pa := systematicPick(a.Keys, 1)[0]
		pb := systematicPick(b.Keys, 1)[0]
		k := pa
		if b.Count > a.Count || (b.Count == a.Count && pb < pa) {
			k = pb
		}
		out.Keys = []join.Key{k}
	default:
		// Proportional shares, floored — symmetric under swapping a and b
		// (ceil on one side would not be).
		na := int(int64(capacity) * a.Count / out.Count)
		nb := int(int64(capacity) * b.Count / out.Count)
		if na < 1 {
			na = 1
		}
		if nb < 1 {
			nb = 1
		}
		out.Keys = mergeSorted(systematicPick(a.Keys, na), systematicPick(b.Keys, nb))
	}
	// The clamps above only fire when a share floors to zero, which needs
	// capacity*share < 1 on that side; with capacity >= 2 the other side's
	// floor then absorbs the slack, so the merged sample respects Cap.

	ha, err := histogram.FromBounds(a.Bounds)
	if err != nil {
		return nil, err
	}
	hb, err := histogram.FromBounds(b.Bounds)
	if err != nil {
		return nil, err
	}
	ns := ha.Buckets()
	if hb.Buckets() > ns {
		ns = hb.Buckets()
	}
	merged, err := histogram.Merge(ha, a.Count, hb, b.Count, ns)
	if err != nil {
		return nil, err
	}
	out.Bounds = slices.Clone(merged.Boundaries())
	return out, nil
}

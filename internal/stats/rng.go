// Package stats provides deterministic pseudo-random number generation and
// the skewed key distributions used by the workload generators and samplers.
//
// Everything here is seedable and reproducible: the experiment harness relies
// on identical tuple streams across the CI, CSI and CSIO schemes so that
// differences in the measured work come from the partitioning alone.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random number generator based on
// splitmix64. It is not safe for concurrent use; create one per goroutine
// (Split derives independent streams).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. Use it to hand per-worker generators out of one seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n called with n <= 0")
	}
	// Lemire-style rejection-free-enough reduction; bias is negligible for
	// n << 2^64 and irrelevant for workload generation.
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	return int(r.Int64n(int64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero, which is
// required by the Efraimidis-Spirakis priority formula r^(1/w).
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

package netexec

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"ewh/internal/exec"
	"ewh/internal/faultnet"
	"ewh/internal/join"
	"ewh/internal/partition"
)

func TestFaultClassificationWorkerKill(t *testing.T) {
	// A worker dying under an established session classifies as a lost
	// connection on exactly that worker, retryable, and Survivors derives a
	// session over the rest.
	ws, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)
	r1 := randKeys(500, 250, 910)
	r2 := randKeys(500, 250, 911)
	scheme, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 1}); err != nil {
		t.Fatalf("healthy run: %v", err)
	}

	_ = ws[1].Close()
	_, err = exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 2})
	if err == nil {
		t.Fatal("job across a dead worker succeeded")
	}
	faults := Faults(err)
	if len(faults) != 1 {
		t.Fatalf("want 1 fault, got %d: %v", len(faults), err)
	}
	f := faults[0]
	if f.Kind != FaultConnLost && f.Kind != FaultTimeout {
		t.Fatalf("kind %v (%v), want connection lost", f.Kind, f)
	}
	if f.Worker != 1 || f.Addr != addrs[1] {
		t.Fatalf("fault names worker %d (%s), want 1 (%s)", f.Worker, f.Addr, addrs[1])
	}
	if !f.RetryableFault() || !exec.RetryableFault(err) {
		t.Fatalf("worker death not retryable: %v", err)
	}
	if !strings.Contains(err.Error(), addrs[1]) {
		t.Fatalf("error text lost the address: %v", err)
	}

	srt, n, serr := sess.Survivors()
	if serr != nil || n != 1 {
		t.Fatalf("Survivors: %d workers, %v", n, serr)
	}
	scheme1, err := partition.NewHash(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	local := exec.Run(r1, r2, join.Equi{}, scheme1, model, exec.Config{Seed: 3})
	got, err := exec.RunOver(srt, r1, r2, join.Equi{}, scheme1, model, exec.Config{Seed: 3})
	if err != nil {
		t.Fatalf("job on survivors: %v", err)
	}
	if got.Output != local.Output {
		t.Fatalf("survivor output %d, local %d", got.Output, local.Output)
	}
}

func TestFaultClassificationDialRefused(t *testing.T) {
	leakCheck(t)
	// A refused dial is a typed FaultDial carrying the address, not a bare
	// string.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	_, err = Dial([]string{addr})
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	var f *WorkerFault
	if !errors.As(err, &f) {
		t.Fatalf("no WorkerFault in %v", err)
	}
	if f.Kind != FaultDial || f.Addr != addr || !f.RetryableFault() {
		t.Fatalf("fault %+v, want retryable dial fault at %s", f, addr)
	}
	if !strings.Contains(err.Error(), "netexec: dial "+addr) {
		t.Fatalf("error text changed shape: %v", err)
	}
}

func TestWorkerFaultClassification(t *testing.T) {
	// Worker-side job error replies: a drain refusal is the one retryable
	// worker error; a reply naming a peer fault address indicts the peer.
	c := &sessConn{addr: "127.0.0.1:7000"}
	f := c.workerFault("job", 3, 0, &metrics{Err: "worker shutting down"})
	if f.Kind != FaultWorkerJob || !f.RetryableFault() {
		t.Fatalf("drain refusal: %+v", f)
	}
	f = c.workerFault("job", 3, 0, &metrics{Err: "stage-2 plan: bad artifact"})
	if f.Kind != FaultWorkerJob || f.RetryableFault() {
		t.Fatalf("deterministic worker error marked retryable: %+v", f)
	}
	f = c.workerFault("stage job", 4, 1, &metrics{
		Err: "transfer 9: peer 127.0.0.1:7001: connection refused", FaultAddr: "127.0.0.1:7001"})
	if f.Kind != FaultPeer || f.Addr != "127.0.0.1:7001" || !f.RetryableFault() {
		t.Fatalf("peer fault: %+v", f)
	}
	if !strings.Contains(f.Error(), "stage job 4 on worker 1") {
		t.Fatalf("error text changed shape: %v", f)
	}
}

func TestJobLivenessDeadline(t *testing.T) {
	leakCheck(t)
	// A worker that accepts the job and goes silent — the TCP peer stays
	// healthy, so only Timeouts.Job can detect it. The fake worker drains
	// everything it is sent and never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(io.Discard, conn)
				_ = conn.Close()
			}()
		}
	}()

	sess, err := DialWith([]string{ln.Addr().String()}, Timeouts{Job: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	r1 := randKeys(100, 50, 920)
	r2 := randKeys(100, 50, 921)
	scheme, err := partition.NewHash(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 4})
	if err == nil {
		t.Fatal("job against a silent worker succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("liveness deadline took %v", d)
	}
	var f *WorkerFault
	if !errors.As(err, &f) || f.Kind != FaultTimeout || !f.RetryableFault() {
		t.Fatalf("want retryable timeout fault, got %v", err)
	}
	// The unresponsive worker's connection is poisoned: no later job may
	// land on it.
	if _, n, serr := sess.Survivors(); serr == nil || n != 0 {
		t.Fatalf("silent worker still listed as survivor (%d, %v)", n, serr)
	}
}

func TestFailAfterJobs(t *testing.T) {
	// The scheduled-crash testing hook: the worker completes exactly n jobs,
	// then dies abruptly; the next job classifies as a transport fault and
	// recovery proceeds over the survivor.
	ws, addrs := startWorkerSet(t, 2)
	ws[1].FailAfterJobs(2)
	sess := dialSession(t, addrs)
	r1 := randKeys(400, 200, 930)
	r2 := randKeys(400, 200, 931)
	scheme, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model,
			exec.Config{Seed: uint64(i)}); err != nil {
			t.Fatalf("job %d before the scheduled failure: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 9})
		if err != nil || time.Now().After(deadline) {
			break
		}
		// The self-Close fires from a goroutine; one more job may slip in.
		time.Sleep(10 * time.Millisecond)
	}
	if err == nil {
		t.Fatal("worker never failed after its scheduled job count")
	}
	if !exec.RetryableFault(err) {
		t.Fatalf("scheduled crash not retryable: %v", err)
	}
	faults := Faults(err)
	if len(faults) != 1 || faults[0].Worker != 1 {
		t.Fatalf("fault attribution: %v", err)
	}
}

func TestDialContextCancelPromptly(t *testing.T) {
	leakCheck(t)
	// The satellite fix: a dial blocked in the kernel handshake (full accept
	// backlog, no dial timeout configured) must return promptly when its
	// context is cancelled. Backlog saturation needs an unaccepting listener
	// with a tiny queue, which takes raw syscalls.
	if runtime.GOOS != "linux" {
		t.Skip("backlog saturation is linux-specific")
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer syscall.Close(fd)
	sa := &syscall.SockaddrInet4{Addr: [4]byte{127, 0, 0, 1}}
	if err := syscall.Bind(fd, sa); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Listen(fd, 1); err != nil {
		t.Fatal(err)
	}
	bound, err := syscall.Getsockname(fd)
	if err != nil {
		t.Fatal(err)
	}
	port := bound.(*syscall.SockaddrInet4).Port
	addr := net.JoinHostPort("127.0.0.1", itoa(port))

	// Fill the queue until a short-deadline dial times out — from then on,
	// new connects hang in the handshake.
	var parked []net.Conn
	defer func() {
		for _, c := range parked {
			_ = c.Close()
		}
	}()
	saturated := false
	for i := 0; i < 64; i++ {
		c, err := net.DialTimeout("tcp", addr, 150*time.Millisecond)
		if err != nil {
			saturated = true
			break
		}
		parked = append(parked, c)
	}
	if !saturated {
		t.Skip("could not saturate the accept backlog on this kernel")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = DialContext(ctx, []string{addr})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial into a saturated backlog succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the chain, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled dial took %v to return", elapsed)
	}
	var f *WorkerFault
	if !errors.As(err, &f) || f.Kind != FaultDial {
		t.Fatalf("cancelled dial not classified as a dial fault: %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFaultnetFrameParity(t *testing.T) {
	// faultnet mirrors the wire constants because it must not import
	// netexec (netexec tests import faultnet); this is the lockstep check.
	pairs := []struct {
		name     string
		mine     byte
		mirrored byte
	}{
		{"handshake", frameHandshake, faultnet.FrameHandshake},
		{"v2 block", frameBlock, faultnet.FrameBlockV2},
		{"v2 eos", frameEOS, faultnet.FrameEOSV2},
		{"v2 metrics", frameMetrics, faultnet.FrameMetricsV2},
		{"open job", frameV3OpenJob, faultnet.FrameOpenJob},
		{"rel head", frameV3RelHead, faultnet.FrameRelHead},
		{"block", frameV3Block, faultnet.FrameBlock},
		{"pay", frameV3Pay, faultnet.FramePay},
		{"eos", frameV3EOS, faultnet.FrameEOS},
		{"pairs", frameV3Pairs, faultnet.FramePairs},
		{"metrics", frameV3Metrics, faultnet.FrameMetrics},
		{"abort", frameV3Abort, faultnet.FrameAbort},
		{"plan", frameV3Plan, faultnet.FramePlan},
		{"open peer job", frameV3OpenPeerJob, faultnet.FrameOpenPeerJob},
		{"plan cancel", frameV3PlanCancel, faultnet.FramePlanCancel},
		{"stats", frameV3Stats, faultnet.FrameStats},
		{"plan2", frameV3Plan2, faultnet.FramePlan2},
		{"chunk head", frameV3ChunkHead, faultnet.FrameChunkHead},
		{"chunk", frameV3Chunk, faultnet.FrameChunk},
		{"chunk tail", frameV3ChunkTail, faultnet.FrameChunkTail},
		{"peer bind", frameV3PeerBind, faultnet.FramePeerBind},
		{"stream open", frameV3StreamOpen, faultnet.FrameStreamOpen},
		{"stream base", frameV3StreamBase, faultnet.FrameStreamBase},
		{"stream base end", frameV3StreamBaseEnd, faultnet.FrameStreamBaseEnd},
		{"stream win", frameV3StreamWin, faultnet.FrameStreamWin},
		{"stream win end", frameV3StreamWinEnd, faultnet.FrameStreamWinEnd},
		{"stream rep", frameV3StreamRep, faultnet.FrameStreamRep},
		{"peer head", framePeerHead, faultnet.FramePeerHead},
		{"peer block", framePeerBlock, faultnet.FramePeerBlock},
		{"peer pay", framePeerPay, faultnet.FramePeerPay},
	}
	for _, p := range pairs {
		if p.mine != p.mirrored {
			t.Errorf("%s: netexec %d, faultnet %d", p.name, p.mine, p.mirrored)
		}
	}
	if protoVersion != faultnet.VersionOneShot || protoVersionSession != faultnet.VersionSession ||
		protoVersionPeer != faultnet.VersionPeer {
		t.Error("protocol version constants diverged")
	}
}

package netexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/localjoin"
	"ewh/internal/planio"
)

// This file is the worker side of the continuous-join stream protocol
// (frames 33-38): one long-lived numbered job per connection that joins an
// unbounded sequence of tuple windows against a static base relation. The
// read loop decodes stream frames into pooled buffers and hands them to a
// per-stream goroutine over a bounded channel (backpressure onto TCP,
// exactly like the insert-while-probe feeder); the goroutine maintains the
// base-side join structure, counts each window the moment its end frame
// lands, summarizes the window's keys and replies a frameV3StreamRep. A new
// epoch's base frames tear down the old structure and build the next —
// mid-stream replanning without restarting the job. The ordinary EOS /
// metrics pair closes the stream with aggregate totals.

// streamOpen opens a stream job (rides frameV3StreamOpen as gob).
type streamOpen struct {
	WorkerID int
	Cond     join.Spec
	// Engine is the coordinator's exec.JoinEngine selection, same contract
	// as jobOpen.Engine.
	Engine int
	// StatsCap/StatsBuckets/StatsSeed/StatsAdaptive size the per-window
	// summaries, same vocabulary as planSpec's stats fields.
	StatsCap      int
	StatsBuckets  int
	StatsSeed     uint64
	StatsAdaptive bool
}

// streamWinReply answers one window's end frame (rides frameV3StreamRep as
// gob). Summary is a planio-encoded stats.Summary, nil for an empty shard.
// A failed stream replies its error on every subsequent window so the
// coordinator's lockstep collect never hangs.
type streamWinReply struct {
	Window  uint32
	Epoch   uint32
	Input   int64
	Count   int64
	Summary []byte
	Err     string
	Code    int
}

// Stream event kinds, read-loop → stream goroutine.
const (
	evStreamBase = iota
	evStreamBaseEnd
	evStreamWin
	evStreamWinEnd
	evStreamEOS
	evStreamFail
)

type streamEvent struct {
	kind  int
	win   uint32
	epoch uint32
	keys  []join.Key // pooled; ownership transfers to the goroutine
	total int
	err   error
}

// streamFeedCap bounds the stream channel; see feedCap for the rationale.
const streamFeedCap = 8

// sessStream is one stream job's state. The read loop owns frame decode and
// tenant charging; everything else lives in the goroutine.
type sessStream struct {
	w        *Worker
	j        *sessJob
	bw       *bufio.Writer
	wmu      *sync.Mutex
	cs       *connState
	conn     net.Conn
	connDone <-chan struct{}

	workerID int
	cond     join.Condition
	engine   exec.JoinEngine // resolved for cond: EngineHash or EngineMerge
	st       exec.StatsSpec

	ch    chan streamEvent
	done  chan struct{}
	stopO sync.Once

	// charged tracks receive-buffer bytes reserved against the tenant:
	// charged by the read loop per chunk, credited by the goroutine when a
	// window retires or an epoch's base is replaced, and swept on exit.
	charged atomic.Int64

	// Goroutine state.
	failed error
	epoch  uint32
	sealed bool
	baseN  int
	build  *localjoin.Build // hash engine
	base   []join.Key       // merge engine; sorted at seal

	winOpen bool
	win     uint32
	winKeys []join.Key
	winHash int64 // hash engine: matches counted chunk-by-chunk

	totIn, totOut int64
	start         time.Time
	sawEOS        bool
}

func newSessStream(w *Worker, j *sessJob, so *streamOpen, cond join.Condition,
	bw *bufio.Writer, wmu *sync.Mutex, cs *connState, conn net.Conn,
	connDone <-chan struct{}) *sessStream {

	s := &sessStream{
		w: w, j: j, bw: bw, wmu: wmu, cs: cs, conn: conn, connDone: connDone,
		workerID: so.WorkerID,
		cond:     cond,
		engine:   w.effectiveEngine(so.Engine).ForCond(cond),
		st: exec.StatsSpec{Cap: so.StatsCap, Buckets: so.StatsBuckets,
			Seed: so.StatsSeed, Adaptive: so.StatsAdaptive},
		ch:    make(chan streamEvent, streamFeedCap),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	go s.run()
	return s
}

// feed hands one event to the goroutine. Read-loop side only.
func (s *sessStream) feed(ev streamEvent) { s.ch <- ev }

// stop terminates the goroutine from OUTSIDE it (connection teardown,
// abort): close the channel, wait, and sweep whatever tenant reservation
// the exit path did not credit. Idempotent. The EOS path never comes here —
// the goroutine finalizes itself after replying metrics.
func (s *sessStream) stop() {
	s.stopO.Do(func() { close(s.ch) })
	<-s.done
	s.sweep()
}

// sweep credits the tenant for every byte still reserved.
func (s *sessStream) sweep() {
	if n := s.charged.Swap(0); n > 0 {
		s.w.creditTenant(s.j.tenant, n)
	}
}

// charge reserves n receive-buffer bytes against the stream's tenant.
// Read-loop side.
func (s *sessStream) charge(n int64) error {
	if err := s.w.chargeTenant(s.j.tenant, n); err != nil {
		return err
	}
	s.charged.Add(n)
	return nil
}

// credit releases part of the reservation. Goroutine side.
func (s *sessStream) credit(n int64) {
	if n > 0 {
		s.charged.Add(-n)
		s.w.creditTenant(s.j.tenant, n)
	}
}

// fail poisons the stream: subsequent events recycle their buffers and
// window ends reply the error, so the coordinator's lockstep never hangs.
func (s *sessStream) fail(err error) {
	if s.failed == nil {
		s.failed = err
	}
}

// run is the stream goroutine.
func (s *sessStream) run() {
	defer close(s.done)
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "netexec: worker: recovered in stream job %d from %s: %v\n%s",
				s.j.id, s.conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	for ev := range s.ch {
		switch ev.kind {
		case evStreamFail:
			s.fail(ev.err)
		case evStreamBase:
			s.onBase(ev)
		case evStreamBaseEnd:
			s.onBaseEnd(ev)
		case evStreamWin:
			s.onWin(ev)
		case evStreamWinEnd:
			s.onWinEnd(ev)
		case evStreamEOS:
			s.onEOS()
			return
		}
	}
}

// resetBase drops the previous epoch's structure and reservation.
func (s *sessStream) resetBase() {
	s.credit(8 * int64(s.baseN))
	s.build, s.base, s.baseN, s.sealed = nil, nil, 0, false
}

func (s *sessStream) onBase(ev streamEvent) {
	defer exec.PutKeyBuffer(ev.keys)
	if s.failed != nil {
		s.credit(8 * int64(len(ev.keys)))
		return
	}
	if ev.epoch != s.epoch || s.sealed {
		if s.sealed && ev.epoch == s.epoch {
			s.fail(fmt.Errorf("stream base re-opened for sealed epoch %d", ev.epoch))
			s.credit(8 * int64(len(ev.keys)))
			return
		}
		// First frame of a new epoch: replanned base replaces the old one.
		s.resetBase()
		s.epoch = ev.epoch
	}
	switch s.engine {
	case exec.EngineHash:
		if s.build == nil {
			s.build = localjoin.NewBuild()
		}
		s.build.Insert(ev.keys)
	default:
		s.base = append(s.base, ev.keys...)
	}
	s.baseN += len(ev.keys)
	// The keys now live in the build (or the flat base): the reservation
	// stays until the epoch resets, covering that resident memory.
}

func (s *sessStream) onBaseEnd(ev streamEvent) {
	if s.failed != nil {
		return
	}
	if ev.epoch != s.epoch {
		if !s.sealed && s.baseN > 0 {
			s.fail(fmt.Errorf("stream base end for epoch %d amid epoch %d's chunks", ev.epoch, s.epoch))
			return
		}
		// A replanned base whose share for THIS worker is empty ships no
		// chunk frames, so the end frame alone opens (and seals) the epoch.
		s.resetBase()
		s.epoch = ev.epoch
	}
	switch {
	case s.sealed:
		s.fail(fmt.Errorf("stream base end for already-sealed epoch %d", ev.epoch))
	case ev.total != s.baseN:
		s.fail(fmt.Errorf("stream base received %d tuples, end declares %d", s.baseN, ev.total))
	default:
		release, err := s.w.admitJob(s.j.tenant, s.w.kill, s.connDone)
		if err != nil {
			s.fail(err)
			return
		}
		if s.engine == exec.EngineHash {
			if s.build == nil {
				s.build = localjoin.NewBuild()
			}
			s.build.Seal()
		} else {
			keysort.Sort(s.base)
		}
		release()
		s.sealed = true
	}
}

func (s *sessStream) onWin(ev streamEvent) {
	defer exec.PutKeyBuffer(ev.keys)
	if s.failed != nil {
		s.credit(8 * int64(len(ev.keys)))
		return
	}
	switch {
	case !s.sealed:
		s.fail(fmt.Errorf("stream window %d before any sealed base", ev.win))
	case ev.epoch != s.epoch:
		s.fail(fmt.Errorf("stream window %d routed for epoch %d, base is at %d",
			ev.win, ev.epoch, s.epoch))
	case s.winOpen && ev.win != s.win:
		s.fail(fmt.Errorf("stream window %d interleaves with open window %d", ev.win, s.win))
	default:
		if !s.winOpen {
			s.winOpen, s.win, s.winHash = true, ev.win, 0
		}
		if s.engine == exec.EngineHash {
			// Probe each chunk as it lands: the count overlaps the window's
			// remaining frames still on the wire.
			s.winHash += s.build.ProbeCount(ev.keys)
		}
		s.winKeys = append(s.winKeys, ev.keys...)
		return
	}
	s.credit(8 * int64(len(ev.keys)))
}

func (s *sessStream) onWinEnd(ev streamEvent) {
	r := streamWinReply{Window: ev.win, Epoch: ev.epoch}
	if s.failed == nil && !s.winOpen {
		// An empty window ships no chunk frames; its end frame both opens
		// and closes it.
		if !s.sealed {
			s.fail(fmt.Errorf("stream window %d before any sealed base", ev.win))
		} else if ev.epoch != s.epoch {
			s.fail(fmt.Errorf("stream window %d routed for epoch %d, base is at %d",
				ev.win, ev.epoch, s.epoch))
		} else {
			s.winOpen, s.win, s.winHash = true, ev.win, 0
		}
	}
	switch {
	case s.failed != nil:
	case ev.win != s.win || ev.epoch != s.epoch:
		s.fail(fmt.Errorf("stream window end (%d, epoch %d) does not match open window (%d, epoch %d)",
			ev.win, ev.epoch, s.win, s.epoch))
	case ev.total != len(s.winKeys):
		s.fail(fmt.Errorf("stream window %d received %d tuples, end declares %d",
			ev.win, len(s.winKeys), ev.total))
	default:
		release, err := s.w.admitJob(s.j.tenant, s.w.kill, s.connDone)
		if err != nil {
			s.fail(err)
			break
		}
		r.Input = int64(len(s.winKeys))
		if sum := exec.SummarizeWindow(s.winKeys, s.st, s.workerID, ev.win); sum != nil {
			enc, err := planio.EncodeSummary(sum)
			if err != nil {
				release()
				s.fail(fmt.Errorf("window summary: %w", err))
				break
			}
			r.Summary = enc
		}
		if s.engine == exec.EngineHash {
			r.Count = s.winHash
		} else {
			keysort.Sort(s.winKeys)
			r.Count = localjoin.CountSorted(s.winKeys, s.base, s.cond)
		}
		release()
		s.totIn += r.Input
		s.totOut += r.Count
	}
	if s.failed != nil {
		r.Err = s.failed.Error()
		r.Code = rejectCode(s.failed)
	}
	// Retire the window: the shard's receive bytes leave worker memory here.
	s.credit(8 * int64(len(s.winKeys)))
	s.winKeys = s.winKeys[:0]
	s.winOpen = false
	s.reply(frameV3StreamRep, r)
}

// onEOS replies the stream's aggregate metrics and finalizes: the EOS path
// owns its own cleanup because the read loop retired the job from its table
// before feeding the event (no teardown release will follow).
func (s *sessStream) onEOS() {
	s.sawEOS = true
	m := metrics{
		InputR1: s.totIn,
		InputR2: int64(s.baseN),
		Output:  s.totOut,
		Nanos:   time.Since(s.start).Nanoseconds(),
		Engine:  int(s.engine),
	}
	if s.failed != nil {
		m = metrics{Err: s.failed.Error(), Code: rejectCode(s.failed)}
	}
	s.reply(frameV3Metrics, m)
	s.sweep()
	if s.j.counted {
		s.w.endJob(s.cs)
	}
}

// reply writes one gob frame under the connection's write lock. A write
// failure poisons the stream; the read loop will observe the dead
// connection on its own.
func (s *sessStream) reply(typ byte, v any) {
	s.wmu.Lock()
	err := writeV3GobFrame(s.bw, typ, s.j.id, v)
	if err == nil {
		err = s.bw.Flush()
	}
	s.wmu.Unlock()
	if err != nil {
		s.fail(fmt.Errorf("stream reply: %w", err))
	}
}

// readStreamKeys decodes one stream chunk frame's sub-header and keys. The
// hdrLen distinguishes base frames (epoch, count) from window frames
// (window, epoch, count). Job-level failures drain the payload and poison
// the stream rather than killing the connection, mirroring readChunk.
func (j *sessJob) readStreamKeys(br *bufio.Reader, n, hdrLen int) (win, epoch uint32, keys []join.Key, err error) {
	if n < hdrLen {
		return 0, 0, nil, fmt.Errorf("stream frame length %d below sub-header size", n)
	}
	var h [streamWinHdrLen]byte
	if _, err := io.ReadFull(br, h[:hdrLen]); err != nil {
		return 0, 0, nil, err
	}
	var count int
	if hdrLen == streamWinHdrLen {
		win = binary.LittleEndian.Uint32(h[0:])
		epoch = binary.LittleEndian.Uint32(h[4:])
		count = int(binary.LittleEndian.Uint32(h[8:]))
	} else {
		epoch = binary.LittleEndian.Uint32(h[0:])
		count = int(binary.LittleEndian.Uint32(h[4:]))
	}
	drain := func(e *protoErr) (uint32, uint32, []join.Key, error) {
		if _, err := io.CopyN(io.Discard, br, int64(n-hdrLen)); err != nil {
			return 0, 0, nil, err
		}
		return 0, 0, nil, e
	}
	if n != hdrLen+8*count {
		return drain(protoErrf("stream frame length %d inconsistent with count %d", n, count))
	}
	if err := j.stream.charge(8 * int64(count)); err != nil {
		return drain(&protoErr{msg: err.Error(), cause: err})
	}
	buf := exec.GetKeyBuffer(count)
	if err := readKeysLE(br, buf); err != nil {
		exec.PutKeyBuffer(buf)
		return 0, 0, nil, err
	}
	return win, epoch, buf, nil
}

// failStream poisons the stream with a job-level error from the read loop.
func (j *sessJob) failStream(err error) {
	j.stream.feed(streamEvent{kind: evStreamFail, err: err})
}

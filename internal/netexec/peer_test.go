package netexec

import (
	"context"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/planio"
)

func encodeKeyLE8(dst []byte, k join.Key) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(k))
}

// stagePlanFor encodes a Hash stage-2 plan for j2 workers.
func stagePlanFor(t *testing.T, cond join.Condition, j2 int, seed uint64) exec.StagePlan {
	t.Helper()
	scheme, err := partition.NewHash(j2, nil)
	if err != nil {
		t.Fatal(err)
	}
	bytes, err := planio.Encode(&planio.Artifact{Scheme: scheme, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return exec.StagePlan{Bytes: bytes, Scheme: scheme, Cond: cond}
}

// tuplesWithPayloadKeys lifts keys into tuples whose payload is the stage-2
// key (here: the key itself, rotated), the shape a plan job re-shuffles.
func tuplesWithPayloadKeys(keys []join.Key) []exec.Tuple[join.Key] {
	ts := make([]exec.Tuple[join.Key], len(keys))
	for i, k := range keys {
		ts[i] = exec.Tuple[join.Key]{Key: k, Payload: k*3 + 1}
	}
	return ts
}

func TestPeerPipelineMatchesLocalReference(t *testing.T) {
	// End-to-end stage pipeline over loopback workers, checked against a
	// hand-composed in-process reference: stage 1's matches (the payload
	// keys of matched R2 tuples), re-shuffled by the content-deterministic
	// Hash plan, joined against R3.
	_, addrs := startWorkerSet(t, 4)
	sess := dialSession(t, addrs)

	r1 := randKeys(1200, 600, 200)
	r2 := randKeys(1000, 600, 201)
	r3 := randKeys(900, 2000, 202)
	scheme1, err := partition.NewHash(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := stagePlanFor(t, join.Equi{}, 4, 77)
	cfg := exec.Config{Seed: 11, Mappers: 2}
	model := cost.Model{Wi: 1, Wo: 0.2}

	res1, res2, err := exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r3, model, cfg, nil, encodeKeyLE8)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: materialize the stage-1 matches in-process in the same
	// deterministic order, then run the same Hash plan over them.
	var inter []join.Key
	perWorker := make([][]join.Key, scheme1.Workers())
	if _, err := exec.RunTuplesOver(exec.Local{}, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, model, cfg, nil, nil,
		func(w int, _ exec.Tuple[struct{}], b exec.Tuple[join.Key]) {
			perWorker[w] = append(perWorker[w], b.Payload)
		}); err != nil {
		t.Fatal(err)
	}
	for _, pw := range perWorker {
		inter = append(inter, pw...)
	}
	if int64(len(inter)) != res1.Output {
		t.Fatalf("stage 1 matched %d, reference %d", res1.Output, len(inter))
	}
	ref := exec.Run(inter, r3, join.Equi{}, sp.Scheme, model, cfg)
	if res2.Output != ref.Output {
		t.Fatalf("stage 2 output %d, reference %d", res2.Output, ref.Output)
	}
	if want := localjoin.NestedLoopCount(inter, r3, join.Equi{}); res2.Output != want {
		t.Fatalf("stage 2 output %d, ground truth %d", res2.Output, want)
	}
	for w := range ref.Workers {
		if res2.Workers[w] != ref.Workers[w] {
			t.Fatalf("stage 2 worker %d metrics differ: peer %+v reference %+v",
				w, res2.Workers[w], ref.Workers[w])
		}
	}
}

func TestPeerPipelineFailureNamesWorkerAndJob(t *testing.T) {
	// A malformed stage-1 payload (4 bytes instead of the 8-byte stage-2
	// key) fails the plan job on every worker; the aggregated error must
	// name each failing worker's address and the job.
	_, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)

	r1 := randKeys(200, 100, 210)
	r2 := randKeys(200, 100, 211)
	scheme1, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := stagePlanFor(t, join.Equi{}, 2, 5)
	enc4 := func(dst []byte, k join.Key) []byte {
		return binary.LittleEndian.AppendUint32(dst, uint32(k))
	}
	_, _, err = exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r1, cost.Model{Wi: 1, Wo: 0.2},
		exec.Config{Seed: 3, Mappers: 1}, nil, enc4)
	if err == nil {
		t.Fatal("malformed stage-2 keys did not fail the pipeline")
	}
	for _, addr := range addrs {
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("error does not name worker %s: %v", addr, err)
		}
	}
	if !strings.Contains(err.Error(), "stage job") || !strings.Contains(err.Error(), "8-byte") {
		t.Errorf("error does not name the stage job and cause: %v", err)
	}
}

func TestPeerDialFailureNamesPeerAddress(t *testing.T) {
	// Stage 1 runs on worker 0 only; the plan fans out to both workers, but
	// worker 1 is dead — the peer dial fails and the stage-1 job's error
	// must name the unreachable PEER address (not just the stage worker).
	ws, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)
	_ = ws[1].Close()

	r1 := randKeys(400, 50, 220)
	r2 := randKeys(400, 50, 221)
	scheme1, err := partition.NewHash(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := stagePlanFor(t, join.Equi{}, 2, 9)
	_, _, err = exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r1, cost.Model{Wi: 1, Wo: 0.2},
		exec.Config{Seed: 3, Mappers: 1}, nil, encodeKeyLE8)
	if err == nil {
		t.Fatal("unreachable peer did not fail the pipeline")
	}
	if !strings.Contains(err.Error(), "peer "+addrs[1]) {
		t.Errorf("error does not name the unreachable peer %s: %v", addrs[1], err)
	}
}

func TestPeerPipelineSurvivesShutdownAfterDrain(t *testing.T) {
	// After a completed pipeline, a graceful Shutdown must return promptly:
	// the kept-open peer-mesh connections may not wedge the drain.
	ws, addrs := startWorkerSet(t, 3)
	sess := dialSession(t, addrs)

	r1 := randKeys(600, 300, 230)
	r2 := randKeys(600, 300, 231)
	scheme1, err := partition.NewHash(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := stagePlanFor(t, join.Equi{}, 3, 13)
	if _, _, err := exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r1, cost.Model{Wi: 1, Wo: 0.2},
		exec.Config{Seed: 3, Mappers: 1}, nil, encodeKeyLE8); err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := w.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown after drained pipeline: %v", err)
		}
		cancel()
	}
}

func TestWorkerIOTimeoutFailsStalledTransfer(t *testing.T) {
	// A session peer that declares a frame payload and then stalls must be
	// disconnected by the worker's IO deadline instead of wedging the read
	// loop forever.
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.SetTimeouts(Timeouts{IO: 150 * time.Millisecond})
	go func() { _ = w.Serve() }()
	t.Cleanup(func() { _ = w.Close() })

	bw, conn := dialV3(t, w.Addr())
	sendOpenJob(t, bw, 1, false)
	// Declare a 64-byte gob payload for a second open and send nothing.
	if err := writeV3FrameHeader(bw, frameV3OpenJob, 2, 64); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("worker kept the stalled connection open")
	}
	if time.Now().After(deadline) {
		t.Fatal("worker did not enforce the IO deadline")
	}
}

func TestDialWithRejectsUnreachableWorker(t *testing.T) {
	// The dial timeout bounds connection establishment; an address nobody
	// listens on fails the session dial outright.
	_, err := DialWith([]string{"127.0.0.1:1"}, Timeouts{Dial: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

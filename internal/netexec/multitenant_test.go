package netexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/multiway"
	"ewh/internal/partition"
)

// startTenantWorkerSet starts n workers with admission control and tenant
// policies configured before Serve.
func startTenantWorkerSet(t *testing.T, n int, adm AdmissionConfig, policies map[string]TenantPolicy) ([]*Worker, []string) {
	t.Helper()
	leakCheck(t)
	ws := make([]*Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w.SetAdmission(adm)
		for tn, p := range policies {
			w.SetTenantPolicy(tn, p)
		}
		ws[i] = w
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}
	return ws, addrs
}

// TestSessionTypedQuotaRejection drives a budgeted tenant's over-sized join
// over real sockets and asserts the refusal surfaces as errors.Is ErrQuota,
// the reservation is credited back, and an unbudgeted tenant is unaffected.
func TestSessionTypedQuotaRejection(t *testing.T) {
	ws, addrs := startTenantWorkerSet(t, 1, AdmissionConfig{},
		map[string]TenantPolicy{"small": {MaxBytes: 1024}})
	r1 := randKeys(500, 250, 80) // 4000 key bytes, far over the 1KiB budget
	r2 := randKeys(500, 250, 81)
	scheme := partition.NewCI(1)

	small, err := DialTenant(context.Background(), "small", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	_, err = exec.RunOver(small, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 82})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("over-budget join: got %v, want ErrQuota", err)
	}
	if used := ws[0].tenants.usedBytes("small"); used != 0 {
		t.Fatalf("rejected job left %d bytes reserved", used)
	}
	// The same join under an unbudgeted tenant runs to the correct answer.
	free, err := DialTenant(context.Background(), "free", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	want := exec.Run(r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 82})
	got, err := exec.RunOver(free, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("output %d, want %d", got.Output, want.Output)
	}
}

// TestSessionTypedAdmissionRejection fills a worker's only execution slot
// (a pair-streaming job whose consumer stalls, so the worker blocks mid-send
// while holding the slot) and its one queue seat, then asserts the next job
// bounces immediately with errors.Is ErrAdmission — and that the queued job
// still completes once the slot frees.
func TestSessionTypedAdmissionRejection(t *testing.T) {
	ws, addrs := startTenantWorkerSet(t, 1,
		AdmissionConfig{MaxInFlight: 1, MaxQueue: 1}, nil)
	scheme := partition.NewCI(1)
	cond := join.NewBand(64) // dense domain: ~129 partners per key, a multi-MB pair stream
	r1 := randKeys(4000, 2000, 90)
	r2 := randKeys(4000, 2000, 91)
	t1, t2 := exec.WrapKeys(r1), exec.WrapKeys(r2)
	want := exec.Run(r1, r2, cond, scheme, model, exec.Config{Seed: 92})

	hog, err := DialTenant(context.Background(), "hog", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()

	// The hog's emit stalls on the first pair: its read loop stops draining,
	// the worker's pair stream backs up the socket, and the slot stays held
	// until the gate opens.
	gate := make(chan struct{})
	started := make(chan struct{})
	hogDone := make(chan error, 1)
	go func() {
		var streamed int64
		res, err := exec.RunTuplesOver(hog, t1, t2, cond, scheme, model,
			exec.Config{Seed: 92}, nil, nil,
			func(w int, a, b exec.Tuple[struct{}]) {
				if streamed == 0 {
					close(started)
					<-gate
				}
				streamed++
			})
		if err == nil && (streamed != want.Output || res.Output != want.Output) {
			err = fmt.Errorf("hog streamed %d pairs, result %d, want %d", streamed, res.Output, want.Output)
		}
		hogDone <- err
	}()
	<-started

	// Second tenant queues behind the held slot (the one queue seat)...
	q1, err := DialTenant(context.Background(), "queued", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer q1.Close()
	queuedDone := make(chan error, 1)
	go func() {
		_, err := exec.RunOver(q1, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 93})
		queuedDone <- err
	}()
	for ws[0].AdmissionStats().Waiting < 1 {
		time.Sleep(time.Millisecond)
	}

	// ...so a second job of the same tenant finds the queue full and is
	// refused with a typed rejection, without waiting.
	q2, err := DialTenant(context.Background(), "queued", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if _, err := exec.RunOver(q2, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 94}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("job over full queue: got %v, want ErrAdmission", err)
	}
	if s := ws[0].AdmissionStats(); s.Rejected != 1 {
		t.Fatalf("stats.Rejected = %d, want 1", s.Rejected)
	}

	close(gate)
	if err := <-hogDone; err != nil {
		t.Fatalf("hog job: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued job after slot freed: %v", err)
	}
}

// TestAnonymousSessionUnderAdmission checks the compatibility guarantee: a
// coordinator that sends no hello is the anonymous tenant and runs normally
// through an admission-controlled worker.
func TestAnonymousSessionUnderAdmission(t *testing.T) {
	ws, addrs := startTenantWorkerSet(t, 1, AdmissionConfig{MaxInFlight: 1}, nil)
	r1 := randKeys(1000, 500, 95)
	r2 := randKeys(1000, 500, 96)
	scheme := partition.NewCI(1)
	sess := dialSession(t, addrs)
	want := exec.Run(r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 97})
	got, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("output %d, want %d", got.Output, want.Output)
	}
	if s := ws[0].AdmissionStats(); s.Granted[""] == 0 {
		t.Fatalf("anonymous jobs not accounted under tenant \"\": %v", s.Granted)
	}
}

// TestPoolConcurrentSessionsBitIdentical is the multi-coordinator isolation
// check: two tenants' Sessions over the SAME admission-controlled fleet run
// interleaved jobs concurrently, and every job's full per-worker metric
// vector must be bit-identical to the serial in-process run — no crossed
// streams, no contamination from the neighbor's load.
func TestPoolConcurrentSessionsBitIdentical(t *testing.T) {
	_, addrs := startTenantWorkerSet(t, 4,
		AdmissionConfig{MaxInFlight: 2, MaxQueue: 64}, nil)
	pool, err := NewPool(addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	scheme := partition.NewCI(4)

	// Distinct workloads per tenant, precomputed expectations.
	type wl struct {
		r1, r2 []join.Key
		cfg    exec.Config
		want   *exec.Result
	}
	const jobs = 12
	build := func(seed uint64) []wl {
		out := make([]wl, jobs)
		for i := range out {
			s := seed + uint64(i)*10
			r1 := randKeys(1500, 700, s)
			r2 := randKeys(1500, 700, s+1)
			cfg := exec.Config{Seed: s + 2}
			out[i] = wl{r1, r2, cfg, exec.Run(r1, r2, join.Equi{}, scheme, model, cfg)}
		}
		return out
	}
	tenants := map[string][]wl{"alpha": build(1000), "beta": build(2000)}

	var wg sync.WaitGroup
	errs := make(chan error, 2*jobs)
	for tn, wls := range tenants {
		sess, err := pool.Session(context.Background(), tn)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		wg.Add(1)
		go func(tn string, sess *Session, wls []wl) {
			defer wg.Done()
			for i, w := range wls {
				var got *exec.Result
				var err error
				if i%3 == 2 {
					// Every third job goes through the pair-STREAMING path, so
					// both tenants' pairs frames interleave on the shared
					// workers; a crossed stream would corrupt the counts.
					// Emit fires concurrently from each worker conn's read
					// loop, hence the atomic.
					var streamed atomic.Int64
					got, err = exec.RunTuplesOver(sess, exec.WrapKeys(w.r1), exec.WrapKeys(w.r2),
						join.Equi{}, scheme, model, w.cfg, nil, nil,
						func(int, exec.Tuple[struct{}], exec.Tuple[struct{}]) { streamed.Add(1) })
					if err == nil && streamed.Load() != w.want.Output {
						errs <- fmt.Errorf("%s job %d: streamed %d pairs, want %d", tn, i, streamed.Load(), w.want.Output)
						return
					}
				} else {
					got, err = exec.RunOver(sess, w.r1, w.r2, join.Equi{}, scheme, model, w.cfg)
				}
				if err != nil {
					errs <- fmt.Errorf("%s job %d: %v", tn, i, err)
					return
				}
				for wi := range w.want.Workers {
					if got.Workers[wi] != w.want.Workers[wi] {
						errs <- fmt.Errorf("%s job %d worker %d: %+v, want %+v",
							tn, i, wi, got.Workers[wi], w.want.Workers[wi])
						return
					}
				}
				if got.Output != w.want.Output {
					errs <- fmt.Errorf("%s job %d: output %d, want %d", tn, i, got.Output, w.want.Output)
				}
			}
		}(tn, sess, wls)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := pool.OpenSessions(); len(n) != 2 {
		t.Fatalf("open sessions %v, want alpha and beta", n)
	}
}

// TestPoolConcurrentMultiwayPeerIsolated runs two tenants' multiway
// pipelines concurrently over the same admission-controlled fleet: stage-1
// intermediates re-shuffle worker→worker under per-coordinator peer tokens,
// so this is the cross-coordinator token-collision guarantee under real
// interleaving. Each pipeline must match its in-process run exactly with
// zero pairs relayed through either coordinator.
func TestPoolConcurrentMultiwayPeerIsolated(t *testing.T) {
	_, addrs := startTenantWorkerSet(t, 5,
		AdmissionConfig{MaxInFlight: 2, MaxQueue: 64}, nil)
	pool, err := NewPool(addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	build := func(seed uint64) (multiway.Query, core.Options, exec.Config) {
		q := multiway.Query{
			R1: randKeys(600, 150, seed+1),
			Mid: multiway.MidRelation{
				A: randKeys(600, 150, seed+2),
				B: randKeys(600, 150, seed+3),
			},
			R3:    randKeys(600, 150, seed+4),
			CondA: join.NewBand(1),
			CondB: join.Equi{},
		}
		return q, core.Options{J: 5, Model: model, Seed: seed + 5}, exec.Config{Seed: seed + 6}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, tn := range []string{"alpha", "beta"} {
		sess, err := pool.Session(context.Background(), tn)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		wg.Add(1)
		go func(tn string, sess *Session) {
			defer wg.Done()
			for round := uint64(0); round < 3; round++ {
				seed := round*100 + uint64(len(tn)) // distinct per tenant and round
				q, opts, cfg := build(seed)
				local, err := multiway.ExecuteOver(exec.Local{}, q, opts, cfg)
				if err != nil {
					errs <- fmt.Errorf("%s round %d local: %v", tn, round, err)
					return
				}
				dist, err := multiway.ExecuteOver(sess, q, opts, cfg)
				if err != nil {
					errs <- fmt.Errorf("%s round %d: %v", tn, round, err)
					return
				}
				if dist.Output != local.Output || dist.Intermediate != local.Intermediate {
					errs <- fmt.Errorf("%s round %d: out=%d mid=%d, want out=%d mid=%d",
						tn, round, dist.Output, dist.Intermediate, local.Output, local.Intermediate)
					return
				}
			}
			if n := sess.RelayedPairs(); n != 0 {
				errs <- fmt.Errorf("%s: %d pairs relayed through the coordinator", tn, n)
			}
		}(tn, sess)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package netexec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/stats"
)

// statsStagePlan builds a stats-deferred stage plan whose Replan runs
// onReplan (nil: build a Hash plan) over the decoded summaries.
func statsStagePlan(t *testing.T, cond join.Condition, j2 int, seed uint64,
	onReplan func(sums []*stats.Summary) ([]byte, partition.Scheme, error)) exec.StagePlan {
	t.Helper()
	return exec.StagePlan{
		Cond:       cond,
		MaxWorkers: j2,
		Stats:      &exec.StatsSpec{Cap: 512, Buckets: 32, Seed: seed},
		Replan: func(sums []*stats.Summary) ([]byte, partition.Scheme, error) {
			if onReplan != nil {
				return onReplan(sums)
			}
			scheme, err := partition.NewHash(j2, nil)
			if err != nil {
				return nil, nil, err
			}
			b, err := planio.Encode(&planio.Artifact{Scheme: scheme, Seed: seed})
			return b, scheme, err
		},
	}
}

func TestStatsStagePipelineMatchesReference(t *testing.T) {
	// A stats-deferred pipeline end to end: the workers' summaries must
	// account for exactly the stage-1 intermediate, and the join result must
	// match the pre-built-plan pipeline bit for bit (same Hash scheme, same
	// seeds — the statistics exchange must not perturb execution).
	_, addrs := startWorkerSet(t, 3)
	sess := dialSession(t, addrs)

	r1 := randKeys(1500, 700, 300)
	r2 := randKeys(1200, 700, 301)
	r3 := randKeys(1000, 2500, 302)
	scheme1, err := partition.NewHash(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exec.Config{Seed: 21, Mappers: 2}
	model := cost.Model{Wi: 1, Wo: 0.2}

	var sumTotal int64
	sp := statsStagePlan(t, join.Equi{}, 3, 77, func(sums []*stats.Summary) ([]byte, partition.Scheme, error) {
		for _, s := range sums {
			sumTotal += s.Count
		}
		scheme, err := partition.NewHash(3, nil)
		if err != nil {
			return nil, nil, err
		}
		b, err := planio.Encode(&planio.Artifact{Scheme: scheme, Seed: 77})
		return b, scheme, err
	})
	res1, res2, err := exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r3, model, cfg, nil, encodeKeyLE8)
	if err != nil {
		t.Fatal(err)
	}
	if sumTotal != res1.Output {
		t.Fatalf("summaries account for %d intermediate tuples, stage 1 matched %d", sumTotal, res1.Output)
	}

	ref1, ref2, err := exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, stagePlanFor(t, join.Equi{}, 3, 77), r3, model, cfg, nil, encodeKeyLE8)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Output != ref1.Output || res2.Output != ref2.Output {
		t.Fatalf("stats-deferred pipeline differs: (%d,%d) vs pre-built (%d,%d)",
			res1.Output, res2.Output, ref1.Output, ref2.Output)
	}
	for w := range ref2.Workers {
		if res2.Workers[w] != ref2.Workers[w] {
			t.Fatalf("stage 2 worker %d metrics differ: stats %+v pre-built %+v",
				w, res2.Workers[w], ref2.Workers[w])
		}
	}
}

func TestWorkerShutdownMidStatsCollection(t *testing.T) {
	// Shutdown while a worker is parked between shipping its summary and
	// receiving the replanned artifact: the drain must WAIT for the parked
	// job (it is in flight), the pipeline must complete normally once the
	// coordinator answers, and the shutdown must then finish. No goroutines
	// may leak across the whole exchange.
	baseline := runtime.NumGoroutine()
	ws, addrs := startWorkerSet(t, 2)
	// Stage-2 workers are the session's FIRST conns; dialing the to-be-
	// drained worker last keeps it stage-1-only, so the pipeline never needs
	// to open a NEW job on it (a draining worker politely refuses those —
	// its in-flight jobs are what the drain guarantees).
	sess := dialSession(t, []string{addrs[1], addrs[0]})

	r1 := randKeys(800, 400, 310)
	r2 := randKeys(800, 400, 311)
	r3 := randKeys(600, 1500, 312)
	scheme1, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exec.Config{Seed: 31, Mappers: 1}
	model := cost.Model{Wi: 1, Wo: 0.2}

	replanEntered := make(chan struct{})
	replanRelease := make(chan struct{})
	sp := statsStagePlan(t, join.Equi{}, 1, 99, func([]*stats.Summary) ([]byte, partition.Scheme, error) {
		close(replanEntered)
		<-replanRelease
		scheme, err := partition.NewHash(1, nil)
		if err != nil {
			return nil, nil, err
		}
		b, err := planio.Encode(&planio.Artifact{Scheme: scheme, Seed: 99})
		return b, scheme, err
	})

	pipelineDone := make(chan error, 1)
	go func() {
		_, _, err := exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
			join.Equi{}, scheme1, sp, r3, model, cfg, nil, encodeKeyLE8)
		pipelineDone <- err
	}()
	<-replanEntered // every worker has summarized and is parked awaiting PLAN2

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- ws[0].Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown completed while a stats job was parked: %v", err)
	case <-time.After(200 * time.Millisecond):
	}

	close(replanRelease)
	if err := <-pipelineDone; err != nil {
		t.Fatalf("pipeline across the draining worker: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown after the parked job drained: %v", err)
	}

	_ = sess.Close()
	for _, w := range ws {
		_ = w.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked after mid-stats shutdown: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

func TestStatsPipelineCapAbortsBeforeReplan(t *testing.T) {
	// The summaries carry exact match counts, so a blown MaxIntermediate
	// must abort BEFORE replanning — no plan is ever built and no
	// intermediate tuple moves worker→worker.
	_, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)

	r1 := randKeys(400, 100, 330)
	r2 := randKeys(400, 100, 331)
	scheme1, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	replanned := false
	sp := statsStagePlan(t, join.Equi{}, 2, 7, func([]*stats.Summary) ([]byte, partition.Scheme, error) {
		replanned = true
		return nil, nil, errors.New("must not be reached")
	})
	sp.MaxIntermediate = 1
	_, _, err = exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r1, cost.Model{Wi: 1, Wo: 0.2},
		exec.Config{Seed: 3, Mappers: 1}, nil, encodeKeyLE8)
	if err == nil || !strings.Contains(err.Error(), "pipeline cap") {
		t.Fatalf("blown pipeline cap not surfaced: %v", err)
	}
	if replanned {
		t.Fatal("replanning ran for a pipeline past its intermediate cap")
	}
}

func TestStatsReplanErrorCancelsAndTombstones(t *testing.T) {
	// A failed replanning must fail the pipeline with the cause, wake every
	// parked worker, and leave the transfer token tombstoned on the workers
	// (late or duplicate state for it is swallowed, not re-buffered). The
	// workers must then drain instantly.
	ws, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)

	r1 := randKeys(600, 300, 320)
	r2 := randKeys(600, 300, 321)
	scheme1, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("replanning exploded")
	sp := statsStagePlan(t, join.Equi{}, 2, 13, func([]*stats.Summary) ([]byte, partition.Scheme, error) {
		return nil, nil, boom
	})
	_, _, err = exec.RunStagesOver(sess, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r1, cost.Model{Wi: 1, Wo: 0.2},
		exec.Config{Seed: 3, Mappers: 1}, nil, encodeKeyLE8)
	if err == nil || !strings.Contains(err.Error(), "replanning exploded") {
		t.Fatalf("replan failure not surfaced: %v", err)
	}

	// The cancel broadcast tombstones the orphaned token on every worker.
	deadline := time.Now().Add(3 * time.Second)
	for _, w := range ws {
		for {
			w.peersMu.Lock()
			tombstoned := false
			for _, st := range w.peerStates {
				st.mu.Lock()
				if st.done && st.err != nil {
					tombstoned = true
				}
				st.mu.Unlock()
			}
			w.peersMu.Unlock()
			if tombstoned {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("cancelled transfer left no tombstone on a worker")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Nothing is parked anymore: the drain must be immediate.
	for _, w := range ws {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := w.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown after cancelled stats exchange: %v", err)
		}
		cancel()
	}
}

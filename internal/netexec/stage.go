package netexec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ewh/internal/exec"
	"ewh/internal/join"
)

// This file is the coordinator side of the stage-aware pipeline
// (exec.StageRuntime): stage 1 ships as ordinary session jobs carrying a
// PLAN frame (the planio-encoded stage-2 artifact plus the peer address
// map), the workers re-shuffle their matches directly to each other, and
// stage 2 opens as peer-fed jobs that only receive the driver-owned right
// relation from the coordinator. The intermediate's sole coordinator-side
// footprint is the per-sender count vectors riding the stage-1 metrics.
//
// A STATS-DEFERRED plan (content-sensitive stage-2 schemes) splits the
// stage-1 exchange in two: phase A opens the jobs with a statistics request
// instead of a plan, each worker joins, summarizes its local matches and
// ships the summary back in a STATS frame; the coordinator hands the
// summaries to the driver's Replan, which builds the real plan from the
// merged statistics, and phase B broadcasts it in a PLAN2 frame — only then
// do the workers route and stream to their peers. The summaries (a few KB
// each) are the only statistics that ever transit the coordinator.

// RunStages implements exec.StageRuntime over the persistent session.
func (s *Session) RunStages(first *exec.Job, next *exec.PlanJob,
	wm1, wm2 []exec.WorkerMetrics) (int64, error) {

	j1 := first.Workers
	if j1 > len(s.conns) {
		return 0, fmt.Errorf("netexec: stage pipeline needs %d workers, session has %d", j1, len(s.conns))
	}
	if first.Pairs != nil {
		return 0, fmt.Errorf("netexec: a stage pipeline's first job cannot stream pairs")
	}
	spec1, err := join.SpecOf(first.Cond)
	if err != nil {
		return 0, err
	}
	spec2, err := join.SpecOf(next.Cond)
	if err != nil {
		return 0, err
	}

	token := newPeerToken()
	id1 := s.ids.Add(1)
	id2 := s.ids.Add(1)
	counts := make([][]int64, j1)
	var j2 int
	var handlers2 []*jobHandler
	var stage1Done atomic.Bool
	var wg sync.WaitGroup
	if next.Replan != nil {
		j2, handlers2, err = s.runDeferredStage1(id1, id2, token, spec1, spec2, first, next,
			wm1, counts, &stage1Done)
		if err != nil {
			return 0, err
		}
	} else {
		j2 = next.Workers
		if j2 > len(s.conns) {
			return 0, fmt.Errorf("netexec: stage pipeline needs %d workers, session has %d",
				j2, len(s.conns))
		}
		peers := s.Addrs()[:j2]
		// Stage-overlapped dispatch: the stage-2 peer jobs open (counts
		// deferred) and stream their coordinator-owned right relation WHILE
		// stage 1 runs — the workers park on the transfer token they already
		// support, and only the late PEERBIND below waits for stage 1.
		handlers2 = make([]*jobHandler, j2)
		openErrs := make([]error, j2)
		var wg2 sync.WaitGroup
		for p := 0; p < j2; p++ {
			wg2.Add(1)
			go func(p int) {
				defer wg2.Done()
				handlers2[p], openErrs[p] = s.conns[p].openPeerJob(id2, p, spec2, token, next, &stage1Done)
			}(p)
		}
		errs := make([]error, j1)
		for w := 0; w < j1; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				self := -1
				if w < j2 {
					self = w
				}
				ps := planSpec{Token: token, Plan: next.Plan, Peers: peers, Self: self}
				counts[w], errs[w] = s.conns[w].runStageJob(id1, w, spec1, &ps, first, &wm1[w])
			}(w)
		}
		wg.Wait()
		stage1Done.Store(true)
		wg2.Wait()
		if err := errors.Join(append(errs, openErrs...)...); err != nil {
			// Some workers may already have streamed contributions to their
			// peers; tell every worker to discard the orphaned transfer. The
			// parked stage-2 jobs wake through the poisoned token, reply an
			// error nobody awaits, and are dropped by the read loops.
			s.abandonPeerJobs(token, id2, handlers2)
			return 0, err
		}
	}

	// Transpose the per-sender vectors into per-receiver expectations — the
	// only intermediate metadata the coordinator ever holds. The
	// intermediate SIZE is the stage-1 match total; the vectors carry the
	// routed transfer volume, which exceeds it under replicating schemes
	// (CI fans each tuple out to a full grid row).
	var intermediate int64
	for w := 0; w < j1; w++ {
		intermediate += wm1[w].Output
	}
	if next.MaxIntermediate > 0 && intermediate > next.MaxIntermediate {
		// Earliest point the total is known: the matches are materialized on
		// the workers, but stage 2's re-shuffle and join never run.
		s.cancelPlan(token)
		return 0, fmt.Errorf("netexec: stage 1 matched %d tuples, pipeline cap %d; restructure the chain",
			intermediate, next.MaxIntermediate)
	}
	expected := make([][]int64, j2)
	for p := 0; p < j2; p++ {
		expected[p] = make([]int64, j1)
	}
	for w, v := range counts {
		if len(v) != j2 {
			s.cancelPlan(token)
			return 0, fmt.Errorf("netexec: worker %d (%s) reported %d peer counts, plan has %d workers",
				w, s.conns[w].addr, len(v), j2)
		}
		for p, c := range v {
			expected[p][w] = c
		}
	}
	for p := 0; p < j2; p++ {
		var total int64
		for _, c := range expected[p] {
			total += c
		}
		if total > MaxRelationTuples {
			s.cancelPlan(token)
			return 0, fmt.Errorf("netexec: stage-2 worker %d would receive %d tuples, wire limit %d",
				p, total, MaxRelationTuples)
		}
	}

	// The peer jobs opened and received their right relation while stage 1
	// ran; the late PEERBIND delivers the per-sender expectations and the
	// reply carries the joined metrics.
	errs2 := make([]error, j2)
	for p := 0; p < j2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs2[p] = s.conns[p].finishPeerJob(id2, p, token, expected[p], handlers2[p], &wm2[p])
		}(p)
	}
	wg.Wait()
	if err := errors.Join(errs2...); err != nil {
		// A worker whose peer job never bound still holds its fully-delivered
		// contributions; cancel so they are released rather than buffered
		// until the worker restarts. Workers whose job consumed the transfer
		// just tombstone the token.
		s.cancelPlan(token)
		return 0, err
	}
	return intermediate, nil
}

// abandonPeerJobs tears down stage-2 peer jobs whose stage 1 failed: the
// cancel poisons the transfer token (waking the parked jobs into an error
// reply nobody awaits) and the deregistrations make the read loops drop
// those replies.
func (s *Session) abandonPeerJobs(token uint64, id2 uint32, handlers []*jobHandler) {
	s.cancelPlan(token)
	for p, h := range handlers {
		if h != nil {
			s.conns[p].deregister(id2)
		}
	}
}

// runDeferredStage1 runs a stats-deferred plan's stage 1: phase A collects
// every worker's statistics summary, the driver's Replan turns them into the
// real stage-2 plan, and phase B broadcasts it and collects the count
// vectors. The stage-2 worker count is only known after Replan, so the
// overlapped peer-job opens launch right then — concurrent with phase B,
// which is where the workers route and stream the intermediate. Returns the
// replanned worker count and the still-registered peer-job handlers.
func (s *Session) runDeferredStage1(id1, id2 uint32, token uint64, spec1, spec2 join.Spec,
	first *exec.Job, next *exec.PlanJob, wm1 []exec.WorkerMetrics, counts [][]int64,
	stage1Done *atomic.Bool) (int, []*jobHandler, error) {

	j1 := first.Workers
	if next.Stats == nil {
		return 0, nil, fmt.Errorf("netexec: stats-deferred plan without a statistics spec")
	}
	handlers := make([]*jobHandler, j1)
	sentPays := make([][2]int64, j1)
	sums := make([][]byte, j1)
	errs := make([]error, j1)
	var wg sync.WaitGroup
	for w := 0; w < j1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := planSpec{Token: token, WantStats: true, StatsCap: next.Stats.Cap,
				StatsBuckets: next.Stats.Buckets, StatsSeed: next.Stats.Seed,
				StatsAdaptive: next.Stats.Adaptive}
			sums[w], handlers[w], sentPays[w], errs[w] = s.conns[w].openStatsStageJob(id1, w, spec1, &ps, first)
		}(w)
	}
	wg.Wait()
	abandon := func(err error) (int, []*jobHandler, error) {
		// Wake the workers still holding their matches for a plan that will
		// never come; their (error) replies land after deregistration and
		// are dropped by the read loops.
		s.cancelPlan(token)
		for w, h := range handlers {
			if h != nil {
				s.conns[w].deregister(id1)
			}
		}
		return 0, nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return abandon(err)
	}

	// Replan also enforces the pipeline cap off the summaries' exact counts
	// (see exec.RunStagesOver), so a blown cap aborts HERE — before a single
	// intermediate tuple moves — rather than after the re-shuffle as on the
	// pre-built-plan path.
	plan, j2, err := next.Replan(sums)
	if err != nil {
		return abandon(fmt.Errorf("netexec: stage-2 replanning: %w", err))
	}
	if j2 < 1 || j2 > len(s.conns) {
		return abandon(fmt.Errorf("netexec: replanned stage needs %d workers, session has %d", j2, len(s.conns)))
	}
	if len(plan) == 0 {
		return abandon(fmt.Errorf("netexec: replanning produced an empty plan"))
	}

	peers := s.Addrs()[:j2]
	// Stage-overlapped dispatch, deferred flavor: the replanned worker count
	// just became known, so the stage-2 peer jobs open and receive their
	// right relation WHILE phase B routes and streams the intermediate.
	handlers2 := make([]*jobHandler, j2)
	openErrs := make([]error, j2)
	var wg2 sync.WaitGroup
	for p := 0; p < j2; p++ {
		wg2.Add(1)
		go func(p int) {
			defer wg2.Done()
			handlers2[p], openErrs[p] = s.conns[p].openPeerJob(id2, p, spec2, token, next, stage1Done)
		}(p)
	}
	for w := 0; w < j1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts[w], errs[w] = s.conns[w].finishStatsStageJob(id1, w, token, plan, peers,
				handlers[w], sentPays[w], &wm1[w])
		}(w)
	}
	wg.Wait()
	stage1Done.Store(true)
	wg2.Wait()
	if err := errors.Join(append(errs, openErrs...)...); err != nil {
		s.abandonPeerJobs(token, id2, handlers2)
		return 0, nil, err
	}
	return j2, handlers2, nil
}

// cancelPlan tells every session worker to discard buffered peer state — and
// wake any plan job still awaiting a PLAN2 — for an abandoned transfer.
// Best-effort: a worker we cannot reach will drop the state when its
// connection dies anyway. The broadcast goes to the whole session because an
// abandoned transfer's state may live on stage-1 senders (stats waiters,
// half-sent contributions) and stage-2 receivers alike.
func (s *Session) cancelPlan(token uint64) {
	for _, c := range s.conns {
		c.wmu.Lock()
		_ = writeV3GobFrame(c.bw, frameV3PlanCancel, 0, planCancel{Token: token})
		_ = c.bw.Flush()
		c.wmu.Unlock()
	}
}

// runStageJob runs one stage-1 sub-job: a plain session job plus the PLAN
// frame, whose reply carries the sender's per-receiver count vector.
func (c *sessConn) runStageJob(id uint32, workerID int, spec join.Spec, ps *planSpec,
	job *exec.Job, m *exec.WorkerMetrics) ([]int64, error) {

	const op = "stage job"
	h := &jobHandler{done: make(chan sessReply, 1)}
	if err := c.register(id, h); err != nil {
		return nil, c.connFault(op, id, workerID, err)
	}
	defer c.deregister(id)
	sentPay, err := c.sendJob(id, workerID, spec, ps, job)
	if err != nil {
		return nil, c.connFault(op, id, workerID, err)
	}
	r, ferr := c.awaitReply(op, id, workerID, h)
	if ferr != nil {
		return nil, ferr
	}
	return c.stageReply(op, id, workerID, r, sentPay, m)
}

// stageReply validates one stage-1 sub-job's terminal metrics and fills m.
// A reply whose metrics name a peer fault address is attributed to that PEER
// (the reporting worker is healthy; its transfer target died).
func (c *sessConn) stageReply(op string, id uint32, workerID int, r sessReply,
	sentPay [2]int64, m *exec.WorkerMetrics) ([]int64, error) {

	if r.err != nil {
		return nil, c.connFault(op, id, workerID, r.err)
	}
	if r.m.Err != "" {
		return nil, c.workerFault(op, id, workerID, r.m)
	}
	if r.m.PayBytes1 != sentPay[0] || r.m.PayBytes2 != sentPay[1] {
		return nil, c.protoFault(op, id, workerID,
			fmt.Errorf("worker decoded %d/%d payload bytes, coordinator sent %d/%d",
				r.m.PayBytes1, r.m.PayBytes2, sentPay[0], sentPay[1]))
	}
	c.sess.noteEngine(r.m.Engine)
	m.InputR1 = r.m.InputR1
	m.InputR2 = r.m.InputR2
	m.Output = r.m.Output
	return r.m.PeerCounts, nil
}

// openStatsStageJob runs phase A of a stats-deferred stage job: send the job
// with a statistics request and wait for the worker's summary. The handler
// stays registered for phase B; it is returned alongside the summary. A
// worker that replies metrics instead of a summary failed its join.
func (c *sessConn) openStatsStageJob(id uint32, workerID int, spec join.Spec, ps *planSpec,
	job *exec.Job) ([]byte, *jobHandler, [2]int64, error) {

	const op = "stats stage job"
	h := &jobHandler{done: make(chan sessReply, 1), stats: make(chan []byte, 1)}
	if err := c.register(id, h); err != nil {
		return nil, nil, [2]int64{}, c.connFault(op, id, workerID, err)
	}
	sentPay, err := c.sendJob(id, workerID, spec, ps, job)
	if err != nil {
		c.deregister(id)
		return nil, nil, [2]int64{}, c.connFault(op, id, workerID, err)
	}
	var deadline <-chan time.Time
	if c.timeouts.Job > 0 {
		t := time.NewTimer(c.timeouts.Job)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case sum := <-h.stats:
		return sum, h, sentPay, nil
	case r := <-h.done:
		c.deregister(id)
		if r.err != nil {
			return nil, nil, [2]int64{}, c.connFault(op, id, workerID, r.err)
		}
		if r.m.Err != "" {
			return nil, nil, [2]int64{}, c.workerFault(op, id, workerID, r.m)
		}
		return nil, nil, [2]int64{}, c.protoFault(op, id, workerID,
			fmt.Errorf("worker replied metrics before shipping its statistics summary"))
	case <-deadline:
		return nil, nil, [2]int64{}, c.livenessFault(op, id, workerID,
			fmt.Errorf("no statistics summary within liveness deadline %v", c.timeouts.Job))
	}
}

// finishStatsStageJob runs phase B: deliver the replanned artifact and peer
// map in a PLAN2 frame and wait for the job's terminal metrics (the count
// vector), exactly as a pre-built plan job's reply.
func (c *sessConn) finishStatsStageJob(id uint32, workerID int, token uint64, plan []byte,
	peers []string, h *jobHandler, sentPay [2]int64, m *exec.WorkerMetrics) ([]int64, error) {

	const op = "stats stage job"
	defer c.deregister(id)
	self := -1
	if workerID < len(peers) {
		self = workerID
	}
	ps := planSpec{Token: token, Plan: plan, Peers: peers, Self: self}
	c.wmu.Lock()
	err := writeV3GobFrame(c.bw, frameV3Plan2, id, ps)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return nil, c.connFault(op, id, workerID, err)
	}
	r, ferr := c.awaitReply(op, id, workerID, h)
	if ferr != nil {
		return nil, ferr
	}
	return c.stageReply(op, id, workerID, r, sentPay, m)
}

// openPeerJob opens one stage-2 sub-job in counts-deferred mode and streams
// the coordinator-owned right relation — all while stage 1 may still be
// running on the same connections. The returned handler stays registered;
// finishPeerJob (or abandonPeerJobs) takes it over once stage 1 settles.
func (c *sessConn) openPeerJob(id uint32, workerID int, spec join.Spec, token uint64,
	next *exec.PlanJob, stage1Done *atomic.Bool) (*jobHandler, error) {

	const op = "peer job"
	h := &jobHandler{done: make(chan sessReply, 1)}
	if err := c.register(id, h); err != nil {
		return nil, c.connFault(op, id, workerID, err)
	}
	po := peerJobOpen{WorkerID: workerID, Cond: spec, Token: token, CountsDeferred: true,
		Engine: int(next.Engine)}
	c.wmu.Lock()
	err := writeV3GobFrame(c.bw, frameV3OpenPeerJob, id, po)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.deregister(id)
		return nil, c.connFault(op, id, workerID, err)
	}
	if err := c.streamPeerRelation(id, workerID, next, stage1Done); err != nil {
		c.deregister(id)
		return nil, c.connFault(op, id, workerID, err)
	}
	return h, nil
}

// streamPeerRelation ships a counts-deferred peer job's right relation and
// EOS. R2.Wait() runs outside the write lock so stage-1 jobs sharing the
// connection keep sending while the relation still shuffles, and the chunked
// path re-acquires the lock per sub-block so this stream never monopolizes
// the connection.
func (c *sessConn) streamPeerRelation(id uint32, workerID int, next *exec.PlanJob,
	stage1Done *atomic.Bool) error {

	rd := next.R2.Wait()
	if !stage1Done.Load() {
		c.sess.overlapped.Add(1)
	}
	if rd.Chunks != nil {
		return c.streamChunkedPeerRelation(id, workerID, rd.Chunks)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.sendRelation(id, 2, rd, workerID); err != nil {
		_ = writeV3FrameHeader(c.bw, frameV3Abort, id, 0)
		_ = c.bw.Flush()
		return err
	}
	if err := writeV3FrameHeader(c.bw, frameV3EOS, id, 0); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *sessConn) streamChunkedPeerRelation(id uint32, workerID int, cs *exec.ChunkStream) error {
	drain := func(err error) error {
		for ch := range cs.Worker(workerID) {
			exec.PutKeyBuffer(ch.Keys)
		}
		return err
	}
	c.wmu.Lock()
	err := writeChunkHead(c.bw, id, 2, cs.Mappers())
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return drain(err)
	}
	total := 0
	for ch := range cs.Worker(workerID) {
		n := len(ch.Keys)
		if total+n > MaxRelationTuples {
			exec.PutKeyBuffer(ch.Keys)
			c.wmu.Lock()
			_ = writeV3FrameHeader(c.bw, frameV3Abort, id, 0)
			_ = c.bw.Flush()
			c.wmu.Unlock()
			return drain(fmt.Errorf("relation 2 holds over %d tuples, wire limit %d",
				total, MaxRelationTuples))
		}
		c.wmu.Lock()
		err := writeChunkKeys(c.bw, id, 2, ch.Mapper, ch.Keys)
		if err == nil {
			err = c.bw.Flush()
		}
		c.wmu.Unlock()
		exec.PutKeyBuffer(ch.Keys)
		if err != nil {
			return drain(err)
		}
		total += n
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err = writeChunkTail(c.bw, id, 2, total, 0)
	if err == nil {
		err = writeV3FrameHeader(c.bw, frameV3EOS, id, 0)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	return err
}

// finishPeerJob binds the per-sender counts to an opened peer job and waits
// for its terminal metrics. Only called once stage 1 settled, so the worker's
// parked job wakes as soon as its transfer completes against these counts.
func (c *sessConn) finishPeerJob(id uint32, workerID int, token uint64,
	senderCounts []int64, h *jobHandler, m *exec.WorkerMetrics) error {

	const op = "peer job"
	defer c.deregister(id)
	c.wmu.Lock()
	err := writeV3GobFrame(c.bw, frameV3PeerBind, 0, peerBind{Token: token, SenderCounts: senderCounts})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return c.connFault(op, id, workerID, err)
	}
	r, ferr := c.awaitReply(op, id, workerID, h)
	if ferr != nil {
		return ferr
	}
	if r.err != nil {
		return c.connFault(op, id, workerID, r.err)
	}
	if r.m.Err != "" {
		return c.workerFault(op, id, workerID, r.m)
	}
	var expect int64
	for _, sc := range senderCounts {
		expect += sc
	}
	if r.m.InputR1 != expect {
		return c.protoFault(op, id, workerID,
			fmt.Errorf("worker joined %d peer tuples, senders reported %d", r.m.InputR1, expect))
	}
	c.sess.noteEngine(r.m.Engine)
	m.InputR1 = r.m.InputR1
	m.InputR2 = r.m.InputR2
	m.Output = r.m.Output
	return nil
}

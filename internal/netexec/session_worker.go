package netexec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/planio"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// This file is the worker side of the v3 session protocol: one read loop
// per connection demultiplexes numbered jobs, each job decodes into
// exactly-sized pooled buffers exactly like a v2 one-shot, and the join
// runs in its own goroutine at the job's EOS so the read loop keeps
// draining the next job's frames while a previous join executes. Job-level
// protocol violations fail only that job (its remaining frames are read
// and discarded, then an error metrics frame replies); frame-level
// corruption is connection-fatal — framing is the only thing that lets the
// two sides stay in sync.

// sessRel is one relation of an in-flight session job.
type sessRel struct {
	declared bool
	n        int // declared tuple count
	keys     []join.Key
	pos      int
	hasPay   bool
	payBytes int // declared payload segment size
	pay      []byte
	off      []uint32 // payload offsets; off[i]..off[i+1] is tuple i
	payPos   int      // payload bytes received
	payTup   int      // tuples whose payload lengths arrived

	// Chunk-streamed decode (frameV3ChunkHead/Chunk/ChunkTail): the exact
	// count is only known at the tail, so sub-blocks accumulate as pooled
	// parts per mapper (arrival order — TCP preserves it) and assemble
	// mapper-major into keys when the tail's totals check out. pos doubles as
	// the running tuple count while streaming.
	streaming bool
	chunks    int            // mapper count the head declared
	parts     [][][]join.Key // parts[mapper] = ordered pooled sub-blocks
	// fed marks a relation whose chunks route to the job's insert-while-probe
	// feeder (see hashfeed.go) instead of accumulating parts: it never
	// materializes a flat block, so its tail skips assemble.
	fed bool
}

// assemble concatenates a chunk-streamed relation's parts mapper-major into
// one exactly-sized pooled block — byte-identical to the flat scatter's
// mapper-major per-worker layout, which is what keeps chunked runs
// crosscheckable against every other transport.
func (r *sessRel) assemble() {
	flat := exec.GetKeyBuffer(r.pos)
	pos := 0
	for _, parts := range r.parts {
		for _, p := range parts {
			copy(flat[pos:], p)
			pos += len(p)
			exec.PutKeyBuffer(p)
		}
	}
	r.parts = nil
	r.keys = flat
	r.n = r.pos
	r.streaming = false
}

// releaseParts recycles a still-streaming relation's accumulated sub-blocks.
func (r *sessRel) releaseParts() {
	for _, parts := range r.parts {
		for _, p := range parts {
			exec.PutKeyBuffer(p)
		}
	}
	r.parts = nil
}

// sessJob is one numbered job in flight on a session connection.
type sessJob struct {
	id        uint32
	workerID  int
	cond      join.Condition
	wantPairs bool
	counted   bool // beginJob admitted it (draining workers refuse)
	err       error
	rels      [2]sessRel

	// engine is the job's effective join-engine selection (the coordinator's
	// wire request resolved against the worker default; never a future
	// unknown value — see Worker.effectiveEngine).
	engine exec.JoinEngine
	// feed, when set, is the job's insert-while-probe feeder: a count-only
	// equality job whose relations arrive as CHUNK streams builds relation 1
	// incrementally (and probes relation 2) while later chunks are still on
	// the wire, instead of assembling flat blocks at the tails.
	feed *buildFeeder

	// w and tenant key the job's quota accounting; charged is the byte
	// reservation release() credits back (see tenant.go).
	w       *Worker
	tenant  string
	charged int64
	// releaseSlot returns the job's admission slot (idempotent); nil when the
	// job was never admitted (rejected at open, or no admission configured —
	// admitJob's noop covers the latter before it is stored here).
	releaseSlot func()

	// plan, when set, marks a stage-1 plan job: the join's matches are
	// materialized worker-side, re-shuffled by the broadcast plan and
	// streamed to peers instead of returning as pairs.
	plan *planSpec
	// peerFed marks a stage-2 job whose relation 1 arrives over the peer
	// mesh; peerSt is its bound transfer state and token its transfer id.
	// peerDeferred marks a counts-deferred (stage-overlapped) open: the
	// tenant charge for the assembled transfer happens at assembly, when the
	// size is first known.
	peerFed      bool
	peerDeferred bool
	peerSt       *peerJobState
	token        uint64

	// stream, when set, marks a long-lived continuous-join stream job (see
	// stream_worker.go): its frames feed a dedicated goroutine and the job
	// never reaches finishSessionJob.
	stream *sessStream
}

// fail records the job's first error; subsequent data frames for the job
// are drained and discarded.
func (j *sessJob) fail(err error) {
	if j.err == nil {
		j.err = err
	}
}

func (j *sessJob) release() {
	for i := range j.rels {
		r := &j.rels[i]
		if r.keys != nil {
			exec.PutKeyBuffer(r.keys)
			r.keys = nil
		}
		if r.pay != nil {
			putByteBuf(r.pay)
			r.pay = nil
		}
		r.releaseParts()
	}
	if j.feed != nil {
		// Every job exit path lands here, so the feeder goroutine (and any
		// buffers it parked) never outlives the job. stop is idempotent —
		// a finished job's feeder already stopped collecting its results.
		j.feed.stop()
	}
	if j.stream != nil {
		// Same contract for a stream job's goroutine: teardown and abort land
		// here (the EOS path finalizes itself and retires the job first).
		j.stream.stop()
	}
	if j.charged > 0 {
		j.w.creditTenant(j.tenant, j.charged)
		j.charged = 0
	}
}

// charge reserves n buffered bytes against the job's tenant budget; release
// credits the whole reservation back.
func (j *sessJob) charge(n int64) error {
	if err := j.w.chargeTenant(j.tenant, n); err != nil {
		return err
	}
	j.charged += n
	return nil
}

// rel resolves a relation tag from a frame; 1 and 2 are valid.
func (j *sessJob) rel(tag byte) (*sessRel, error) {
	if tag != 1 && tag != 2 {
		return nil, fmt.Errorf("unknown relation %d", tag)
	}
	return &j.rels[tag-1], nil
}

// plan2Waiter is one stats-deferred plan job parked between shipping its
// summary and receiving the replanned artifact. ch is buffered; a nil
// delivery means the transfer was cancelled.
type plan2Waiter struct {
	token uint64
	ch    chan *planSpec
}

// plan2Table routes PLAN2 and cancel frames to the connection's parked plan
// jobs. One table per session connection; entries are keyed by job id.
type plan2Table struct {
	mu sync.Mutex
	m  map[uint32]*plan2Waiter
}

func newPlan2Table() *plan2Table {
	return &plan2Table{m: make(map[uint32]*plan2Waiter)}
}

func (t *plan2Table) add(id uint32, token uint64) *plan2Waiter {
	wt := &plan2Waiter{token: token, ch: make(chan *planSpec, 1)}
	t.mu.Lock()
	t.m[id] = wt
	t.mu.Unlock()
	return wt
}

func (t *plan2Table) remove(id uint32) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}

// deliver hands a PLAN2 to the job parked under id; unknown ids are dropped
// (the job may have failed and replied already).
func (t *plan2Table) deliver(id uint32, ps *planSpec) {
	t.mu.Lock()
	wt := t.m[id]
	delete(t.m, id)
	t.mu.Unlock()
	if wt != nil {
		wt.ch <- ps
	}
}

// cancel wakes every waiter parked on the cancelled transfer token with a
// nil plan.
func (t *plan2Table) cancel(token uint64) {
	t.mu.Lock()
	var woken []*plan2Waiter
	for id, wt := range t.m {
		if wt.token == token {
			woken = append(woken, wt)
			delete(t.m, id)
		}
	}
	t.mu.Unlock()
	for _, wt := range woken {
		wt.ch <- nil
	}
}

// handleSession serves one v3 connection until the coordinator hangs up or
// the worker shuts down.
func (w *Worker) handleSession(br *bufio.Reader, conn net.Conn, cs *connState) {
	bw := bufio.NewWriterSize(conn, connBufSize)
	var wmu sync.Mutex // serializes reply frames across concurrent job joins
	pt := newPlan2Table()
	jobs := make(map[uint32]*sessJob)
	// tenant is the session's identity for admission and quota accounting,
	// declared by an optional HELLO before the first job; "" is anonymous.
	tenant := ""
	helloSeen := false
	sawJob := false
	// connDone aborts peer-fed jobs still waiting on transfers when the
	// coordinator hangs up — their reply has nowhere to go anyway.
	connDone := make(chan struct{})
	defer close(connDone)
	defer func() {
		// Connection gone with jobs still streaming in: nothing to reply to,
		// just recycle their buffers, give back their admission slots and
		// retire their drain accounting.
		for _, j := range jobs {
			j.release()
			if j.releaseSlot != nil {
				j.releaseSlot()
			}
			if j.counted {
				w.endJob(cs)
			}
		}
	}()

	for {
		disarmConn(conn)
		typ, id, n, err := readV3FrameHeader(br)
		if err != nil {
			return
		}
		armConn(conn)
		switch typ {
		case frameV3Hello:
			// Tenancy is declared once, before any job; a late or duplicate
			// hello (or an oversized tenant id) is connection-fatal — the
			// accounting key cannot change under in-flight jobs.
			if helloSeen || sawJob {
				return
			}
			var sh sessionHello
			if err := readGobPayload(br, n, &sh); err != nil {
				return
			}
			if len(sh.Tenant) > maxTenantLen {
				return
			}
			tenant = sh.Tenant
			helloSeen = true

		case frameV3OpenJob:
			if jobs[id] != nil {
				return // job number reuse is connection-fatal
			}
			sawJob = true
			j := &sessJob{id: id, w: w, tenant: tenant}
			jobs[id] = j
			j.counted = w.beginJob(cs)
			var jo jobOpen
			if err := readGobPayload(br, n, &jo); err != nil {
				return
			}
			if !j.counted {
				j.fail(fmt.Errorf("worker shutting down"))
				continue
			}
			cond, err := jo.Cond.Condition()
			if err != nil {
				j.fail(err)
				continue
			}
			j.cond = cond
			j.workerID = jo.WorkerID
			j.wantPairs = jo.WantPairs
			j.engine = w.effectiveEngine(jo.Engine)
			// Admission happens HERE, before the job's data frames are read:
			// an un-admitted job buffers nothing worker-side — its frames stay
			// in the kernel socket buffer, TCP backpressure stalls the
			// coordinator's (whole-job, contiguous) send, and a saturating
			// tenant is throttled to the rate the fair scheduler dispatches it.
			// Blocking this read loop is deadlock-free: sends are contiguous
			// per job on a connection, so every earlier job here is fully
			// received, and slot holders only ever do finite compute (plan jobs
			// release before their stats park; peer-fed jobs admit only after
			// their transfer assembled). A rejection fails just this job — its
			// frames drain via the j.err path and the reply carries the typed
			// code.
			releaseSlot, aerr := w.admitJob(tenant, w.kill, connDone)
			if aerr != nil {
				if errors.Is(aerr, errAdmitAbandoned) {
					return // worker killed: the connection is going down anyway
				}
				j.fail(aerr)
				continue
			}
			j.releaseSlot = releaseSlot

		case frameV3Plan:
			j := jobs[id]
			if j == nil {
				return // plan for an unopened job is connection-fatal
			}
			var ps planSpec
			if err := readGobPayload(br, n, &ps); err != nil {
				return
			}
			if j.err != nil {
				continue
			}
			switch {
			case j.plan != nil:
				j.fail(fmt.Errorf("job carries two plans"))
			case j.wantPairs:
				j.fail(fmt.Errorf("plan job cannot also stream pairs"))
			case j.peerFed:
				j.fail(fmt.Errorf("peer-fed job cannot carry a plan"))
			default:
				j.plan = &ps
			}

		case frameV3OpenPeerJob:
			if jobs[id] != nil {
				return
			}
			sawJob = true
			j := &sessJob{id: id, peerFed: true, w: w, tenant: tenant}
			jobs[id] = j
			j.counted = w.beginJob(cs)
			var po peerJobOpen
			if err := readGobPayload(br, n, &po); err != nil {
				return
			}
			if !j.counted {
				j.fail(fmt.Errorf("worker shutting down"))
				continue
			}
			cond, err := po.Cond.Condition()
			if err != nil {
				j.fail(err)
				continue
			}
			j.cond = cond
			j.workerID = po.WorkerID
			j.token = po.Token
			j.engine = w.effectiveEngine(po.Engine)
			if po.CountsDeferred {
				// Stage-overlapped open: the exact counts arrive in a late
				// PEERBIND once stage 1 finishes. Attach to (or create) the
				// transfer state unbound; the tenant charge moves to assembly,
				// where the transfer's size is first known. Pre-bind buffering
				// stays capped by the per-transfer declared-count ceiling.
				st := w.peerState(po.Token)
				if st == nil {
					j.fail(fmt.Errorf("transfer table full (%d tokens)", maxPeerStates))
					continue
				}
				j.peerDeferred = true
				j.peerSt = st
				continue
			}
			// The peer transfer's assembled block is buffered on this worker
			// on the tenant's behalf: charge it before binding allocates.
			var peerTuples int64
			for _, c := range po.SenderCounts {
				if c > 0 {
					peerTuples += c
				}
			}
			if err := j.charge(8 * peerTuples); err != nil {
				j.fail(err)
				continue
			}
			st, err := w.bindPeerJob(po.Token, po.SenderCounts)
			if err != nil {
				j.fail(err)
				continue
			}
			j.peerSt = st

		case frameV3Plan2:
			var ps planSpec
			if err := readGobPayload(br, n, &ps); err != nil {
				return
			}
			pt.deliver(id, &ps)

		case frameV3PeerBind:
			var pb peerBind
			if err := readGobPayload(br, n, &pb); err != nil {
				return
			}
			w.bindPeerCounts(pb.Token, pb.SenderCounts)

		case frameV3PlanCancel:
			var pc planCancel
			if err := readGobPayload(br, n, &pc); err != nil {
				return
			}
			// The tombstone dropPeerState leaves also covers a plan job that
			// has not parked yet: its wait checks the token's state right
			// after registering (see runPlanJob), so the cancel cannot be
			// lost to that race.
			w.dropPeerState(pc.Token)
			pt.cancel(pc.Token)

		case frameV3RelHead:
			j := jobs[id]
			if j == nil || n != relHeadLen {
				return
			}
			var h [relHeadLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			if j.err != nil {
				continue
			}
			r, err := j.rel(h[0])
			if err != nil {
				j.fail(err)
				continue
			}
			if j.peerFed && h[0] == 1 {
				j.fail(fmt.Errorf("relation 1 of a peer-fed job arrives from peers, not the coordinator"))
				continue
			}
			if r.declared {
				j.fail(fmt.Errorf("relation %d declared twice", h[0]))
				continue
			}
			count := int64(binary.LittleEndian.Uint32(h[2:]))
			payBytes := int64(binary.LittleEndian.Uint32(h[6:]))
			if count > MaxRelationTuples {
				j.fail(fmt.Errorf("relation count %d outside [0, %d]", count, MaxRelationTuples))
				continue
			}
			if payBytes > MaxRelationPayloadBytes {
				j.fail(fmt.Errorf("payload bytes %d outside [0, %d]", payBytes, MaxRelationPayloadBytes))
				continue
			}
			// Charge the tenant for the receive buffers BEFORE allocating
			// them: a rejected job buffers nothing (its data frames drain via
			// the j.err path), so an over-budget tenant degrades to typed
			// rejections instead of memory growth.
			if err := j.charge(8*count + payBytes); err != nil {
				j.fail(err)
				continue
			}
			r.declared = true
			r.n = int(count)
			r.keys = exec.GetKeyBuffer(r.n)
			if h[1]&relFlagPayload != 0 {
				r.hasPay = true
				r.payBytes = int(payBytes)
				r.pay = getByteBuf(r.payBytes)
				r.off = make([]uint32, r.n+1)
			}

		case frameV3Block:
			j := jobs[id]
			if j == nil {
				return
			}
			if j.err != nil {
				if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
					return
				}
				continue
			}
			if err := j.readBlock(br, n); err != nil {
				if _, ok := err.(*protoErr); ok {
					j.fail(err)
					continue
				}
				return // I/O failure: connection-fatal
			}

		case frameV3Pay:
			j := jobs[id]
			if j == nil {
				return
			}
			if j.err != nil {
				if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
					return
				}
				continue
			}
			if err := j.readPayBlock(br, n); err != nil {
				if _, ok := err.(*protoErr); ok {
					j.fail(err)
					continue
				}
				return
			}

		case frameV3ChunkHead:
			j := jobs[id]
			if j == nil || n != chunkHeadLen {
				return // malformed head (or unopened job) is connection-fatal
			}
			var h [chunkHeadLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			if j.err != nil {
				continue
			}
			r, err := j.rel(h[0])
			if err != nil {
				j.fail(err)
				continue
			}
			switch {
			case j.peerFed && h[0] == 1:
				j.fail(fmt.Errorf("relation 1 of a peer-fed job arrives from peers, not the coordinator"))
			case r.declared:
				j.fail(fmt.Errorf("relation %d declared twice", h[0]))
			case h[1] != 0:
				j.fail(fmt.Errorf("chunked relation %d declares flags %d (bare-key only)", h[0], h[1]))
			default:
				chunks := int64(binary.LittleEndian.Uint32(h[2:]))
				if chunks < 1 || chunks > maxRelationChunks {
					j.fail(fmt.Errorf("chunked relation %d declares %d mappers, limit %d",
						h[0], chunks, maxRelationChunks))
					continue
				}
				r.declared = true
				r.streaming = true
				r.chunks = int(chunks)
				// Insert-while-probe: a job whose effective engine resolves
				// to hash streams its chunks through a feeder goroutine
				// (hashfeed.go) instead of accumulating parts. A count-only
				// job builds relation 1 as chunks land and probes relation 2
				// against the sealed (or cache-shared) build chunk by chunk;
				// a pairs job absorbs both relations off the read loop and
				// pre-builds the PairTable at relation 2's tail, emitting the
				// stream at finish. Plan jobs need materialized
				// arrival-ordered payload blocks, so they keep the assemble
				// path.
				switch {
				case h[0] == 1 && j.plan == nil &&
					j.engine.ForCond(j.cond) == exec.EngineHash:
					j.feed = newBuildFeeder(w.buildCache, int(chunks), j.wantPairs)
					r.fed = true
				case h[0] == 2 && j.feed != nil:
					r.fed = true
				default:
					r.parts = make([][][]join.Key, chunks)
				}
			}

		case frameV3Chunk:
			j := jobs[id]
			if j == nil {
				return
			}
			if j.err != nil {
				if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
					return
				}
				continue
			}
			if err := j.readChunk(br, n); err != nil {
				if _, ok := err.(*protoErr); ok {
					j.fail(err)
					continue
				}
				return // I/O failure: connection-fatal
			}

		case frameV3ChunkTail:
			j := jobs[id]
			if j == nil || n != chunkTailLen {
				return
			}
			var h [chunkTailLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			if j.err != nil {
				continue
			}
			r, err := j.rel(h[0])
			if err != nil {
				j.fail(err)
				continue
			}
			count := int(binary.LittleEndian.Uint32(h[1:]))
			payBytes := int(binary.LittleEndian.Uint32(h[5:]))
			switch {
			case !r.streaming:
				j.fail(fmt.Errorf("tail for non-streaming relation %d", h[0]))
			case payBytes != 0:
				j.fail(fmt.Errorf("chunked relation %d tail declares %d payload bytes (bare-key only)",
					h[0], payBytes))
			case r.pos != count:
				j.fail(fmt.Errorf("chunked relation %d streamed %d tuples, tail declares %d",
					h[0], r.pos, count))
			case r.fed:
				// A fed relation never materializes: record completion (so
				// validateComplete passes) and tell the feeder — relation 1's
				// tail seals the build and unblocks probing.
				j.feed.feedTail(int(h[0]))
				r.streaming = false
				r.n = r.pos
			default:
				r.assemble()
			}

		case frameV3StreamOpen:
			if jobs[id] != nil {
				return // job number reuse is connection-fatal
			}
			sawJob = true
			j := &sessJob{id: id, w: w, tenant: tenant}
			jobs[id] = j
			j.counted = w.beginJob(cs)
			var so streamOpen
			if err := readGobPayload(br, n, &so); err != nil {
				return
			}
			cond, cerr := so.Cond.Condition()
			if cerr != nil {
				cond = join.Equi{} // placeholder; the stream is poisoned below
			}
			j.workerID = so.WorkerID
			// The stream goroutine is the job's only reply path, so it spawns
			// even for a job that is dead on arrival — the poison makes every
			// window reply (and the final metrics) carry the error. A stream
			// holds no admission slot: the goroutine acquires one around each
			// window's probe instead, so an idle stream never starves the
			// fair scheduler.
			j.stream = newSessStream(w, j, &so, cond, bw, &wmu, cs, conn, connDone)
			if !j.counted {
				j.failStream(fmt.Errorf("worker shutting down"))
			} else if cerr != nil {
				j.failStream(cerr)
			}

		case frameV3StreamBase, frameV3StreamWin:
			j := jobs[id]
			if j == nil || j.stream == nil {
				return // stream frame without a stream job is connection-fatal
			}
			hdrLen, kind := streamBaseHdrLen, evStreamBase
			if typ == frameV3StreamWin {
				hdrLen, kind = streamWinHdrLen, evStreamWin
			}
			win, epoch, keys, err := j.readStreamKeys(br, n, hdrLen)
			if err != nil {
				if pe, ok := err.(*protoErr); ok {
					j.failStream(pe)
					continue
				}
				return // I/O failure: connection-fatal
			}
			j.stream.feed(streamEvent{kind: kind, win: win, epoch: epoch, keys: keys})

		case frameV3StreamBaseEnd:
			j := jobs[id]
			if j == nil || j.stream == nil || n != streamBaseHdrLen {
				return
			}
			var h [streamBaseHdrLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			j.stream.feed(streamEvent{kind: evStreamBaseEnd,
				epoch: binary.LittleEndian.Uint32(h[0:]),
				total: int(binary.LittleEndian.Uint32(h[4:]))})

		case frameV3StreamWinEnd:
			j := jobs[id]
			if j == nil || j.stream == nil || n != streamWinHdrLen {
				return
			}
			var h [streamWinHdrLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			j.stream.feed(streamEvent{kind: evStreamWinEnd,
				win:   binary.LittleEndian.Uint32(h[0:]),
				epoch: binary.LittleEndian.Uint32(h[4:]),
				total: int(binary.LittleEndian.Uint32(h[8:]))})

		case frameV3EOS:
			j := jobs[id]
			if j == nil || n != 0 {
				return
			}
			delete(jobs, id)
			if j.stream != nil {
				// The goroutine replies the aggregate metrics and finalizes
				// its own accounting — the job already left the table, so no
				// teardown release will run for it.
				j.stream.feed(streamEvent{kind: evStreamEOS})
				continue
			}
			if j.feed != nil {
				// Chunks the feeder consumed before this frame decoded were
				// overlapped with the stream — the counter the coordinator's
				// BuildOverlappedChunks aggregates.
				j.feed.markEOS()
			}
			if j.peerFed {
				go w.finishPeerSessionJob(j, bw, &wmu, cs, conn, connDone)
			} else {
				go w.finishSessionJob(j, bw, &wmu, cs, conn, connDone, pt)
			}

		case frameV3Abort:
			// The coordinator abandoned the job mid-send (a validation
			// failure on its side): discard the partial state, reply with
			// nothing. An abort for an unknown job is ignored.
			if n != 0 {
				return
			}
			if j := jobs[id]; j != nil {
				delete(jobs, id)
				j.release()
				if j.releaseSlot != nil {
					j.releaseSlot()
				}
				if j.peerFed {
					w.dropPeerState(j.token)
				}
				if j.counted {
					w.endJob(cs)
				}
			}

		default:
			return // unknown frame type: connection-fatal
		}
	}
}

// protoErr marks a job-level protocol violation: the job fails with an
// error reply but the connection (and its framing) stays intact. cause, when
// set, preserves a typed underlying error (a quota rejection surfaced
// mid-stream) for rejectCode's errors.As walk.
type protoErr struct {
	msg   string
	cause error
}

func (e *protoErr) Error() string { return e.msg }

func (e *protoErr) Unwrap() error { return e.cause }

func protoErrf(format string, args ...any) *protoErr {
	return &protoErr{msg: fmt.Sprintf(format, args...)}
}

// readBlock decodes one v3 key block frame into the job's receive buffer.
// The frame's payload bytes are fully consumed even on a job-level error; a
// frame too short to even hold the sub-header is connection-fatal (the
// plain error propagates as one) — consuming past a frame's declared length
// would desynchronize every other job on the stream.
func (j *sessJob) readBlock(br *bufio.Reader, n int) error {
	if n < blockHeaderLen {
		return fmt.Errorf("block frame length %d below sub-header size", n)
	}
	var bh [blockHeaderLen]byte
	if _, err := io.ReadFull(br, bh[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(bh[1:]))
	// Drain what the FRAME header declared (not what the embedded count
	// implies): the frame length is the framing contract, so consuming
	// exactly n keeps the stream in sync for the connection's other jobs
	// even when the two disagree.
	drain := func(e *protoErr) error {
		if _, err := io.CopyN(io.Discard, br, int64(n-blockHeaderLen)); err != nil {
			return err
		}
		return e
	}
	if n != blockHeaderLen+8*count {
		return drain(protoErrf("block frame length %d inconsistent with count %d", n, count))
	}
	r, err := j.rel(bh[0])
	if err != nil {
		return drain(protoErrf("%s", err))
	}
	if !r.declared {
		return drain(protoErrf("block for undeclared relation %d", bh[0]))
	}
	if r.streaming {
		return drain(protoErrf("flat block for chunk-streaming relation %d", bh[0]))
	}
	if r.pos+count > r.n {
		return drain(protoErrf("relation %d overflows declared count %d", bh[0], r.n))
	}
	if err := readKeysLE(br, r.keys[r.pos:r.pos+count]); err != nil {
		return err
	}
	r.pos += count
	return nil
}

// readChunk decodes one pipelined sub-block frame into a pooled part buffer,
// appended to its mapper's arrival-ordered part list. Totals validate at the
// tail; the only mid-stream caps are the wire-wide relation ceiling and the
// tenant budget (charged chunk by chunk — a quota rejection drains the rest
// of the stream exactly like any other job-level failure).
func (j *sessJob) readChunk(br *bufio.Reader, n int) error {
	if n < chunkHeaderLen {
		return fmt.Errorf("chunk frame length %d below sub-header size", n)
	}
	var h [chunkHeaderLen]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(h[3:]))
	drain := func(e *protoErr) error {
		if _, err := io.CopyN(io.Discard, br, int64(n-chunkHeaderLen)); err != nil {
			return err
		}
		return e
	}
	if n != chunkHeaderLen+8*count {
		return drain(protoErrf("chunk frame length %d inconsistent with count %d", n, count))
	}
	r, err := j.rel(h[0])
	if err != nil {
		return drain(protoErrf("%s", err))
	}
	if !r.streaming {
		return drain(protoErrf("chunk for non-streaming relation %d", h[0]))
	}
	mapper := int(binary.LittleEndian.Uint16(h[1:]))
	if mapper >= r.chunks {
		return drain(protoErrf("chunk names mapper %d, head declared %d", mapper, r.chunks))
	}
	if int64(r.pos)+int64(count) > MaxRelationTuples {
		return drain(protoErrf("chunked relation %d exceeds %d tuples", h[0], MaxRelationTuples))
	}
	if err := j.charge(8 * int64(count)); err != nil {
		return drain(&protoErr{msg: err.Error(), cause: err})
	}
	buf := exec.GetKeyBuffer(count)
	if err := readKeysLE(br, buf); err != nil {
		exec.PutKeyBuffer(buf)
		return err
	}
	if r.fed {
		// Ownership transfers to the feeder, which recycles the buffer after
		// inserting (relation 1) or probing (relation 2). The tenant charge
		// above stays until release — a conservative reservation, since the
		// feeder frees the bytes long before the job retires.
		j.feed.feedChunk(int(h[0]), mapper, buf)
	} else {
		r.parts[mapper] = append(r.parts[mapper], buf)
	}
	r.pos += count
	return nil
}

// readPayBlock decodes one v3 payload frame: per-tuple lengths accumulate
// into the relation's offset table and the raw bytes land in the pooled
// flat buffer. Truncation, overflow and length/frame mismatches are
// job-level errors.
func (j *sessJob) readPayBlock(br *bufio.Reader, n int) error {
	if n < blockHeaderLen {
		return fmt.Errorf("payload frame length %d below sub-header size", n)
	}
	var bh [blockHeaderLen]byte
	if _, err := io.ReadFull(br, bh[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(bh[1:]))
	rest := n - blockHeaderLen
	drain := func(e *protoErr) error {
		if _, err := io.CopyN(io.Discard, br, int64(rest)); err != nil {
			return err
		}
		return e
	}
	if rest < 4*count {
		return drain(protoErrf("payload frame length %d too short for %d lengths", n, count))
	}
	r, err := j.rel(bh[0])
	if err != nil {
		return drain(protoErrf("%s", err))
	}
	if !r.declared || !r.hasPay {
		return drain(protoErrf("payload block for relation %d without a declared payload segment", bh[0]))
	}
	if r.payTup+count > r.n {
		return drain(protoErrf("relation %d payload tuples overflow declared count %d", bh[0], r.n))
	}
	// Pull the length vector through pooled scratch: one buffered read per
	// ~16k tuples instead of a 4-byte ReadFull per tuple.
	scratch := getScratch()
	total := 0
	for i := 0; i < count; {
		buf := *scratch
		c := len(buf) / 4
		if c > count-i {
			c = count - i
		}
		if _, err := io.ReadFull(br, buf[:4*c]); err != nil {
			putScratch(scratch)
			return err
		}
		rest -= 4 * c
		for k := 0; k < c; k++ {
			sz := int(binary.LittleEndian.Uint32(buf[4*k:]))
			if r.payPos+total+sz > r.payBytes {
				putScratch(scratch)
				return drain(protoErrf("relation %d payload overflows declared %d bytes", bh[0], r.payBytes))
			}
			total += sz
			r.off[r.payTup+1+i+k] = uint32(r.payPos + total)
		}
		i += c
	}
	putScratch(scratch)
	if rest != total {
		// The byte segment disagrees with the lengths: a truncated (or
		// padded) payload frame.
		e := protoErrf("relation %d payload frame carries %d bytes, lengths sum to %d (truncated frame)",
			bh[0], rest, total)
		return drain(e)
	}
	if _, err := io.ReadFull(br, r.pay[r.payPos:r.payPos+total]); err != nil {
		return err
	}
	r.payPos += total
	r.payTup += count
	return nil
}

// validateComplete checks a job's stream against its declarations at EOS.
func (j *sessJob) validateComplete() error {
	for i := range j.rels {
		r := &j.rels[i]
		if !r.declared {
			return fmt.Errorf("relation %d never declared", i+1)
		}
		if r.streaming {
			return fmt.Errorf("chunked relation %d never received its tail", i+1)
		}
		if r.pos != r.n {
			return fmt.Errorf("relation %d ended at %d tuples, head declared %d", i+1, r.pos, r.n)
		}
		if r.hasPay && (r.payPos != r.payBytes || r.payTup != r.n) {
			return fmt.Errorf("relation %d payload ended at %d bytes/%d tuples, head declared %d/%d",
				i+1, r.payPos, r.payTup, r.payBytes, r.n)
		}
	}
	return nil
}

// errPlanJobAbandoned marks a plan job whose stats wait ended with nothing
// to reply to (worker killed, coordinator hung up): the job exits silently,
// releasing its buffers, instead of writing a reply nobody reads.
var errPlanJobAbandoned = errors.New("plan job abandoned")

// finishSessionJob runs one drained job's join and replies. It runs in its
// own goroutine so the connection's read loop keeps consuming subsequent
// jobs; replies serialize on wmu.
func (w *Worker) finishSessionJob(j *sessJob, bw *bufio.Writer, wmu *sync.Mutex, cs *connState,
	conn net.Conn, connDone <-chan struct{}, pt *plan2Table) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "netexec: worker: recovered in session job %d from %s: %v\n%s",
				j.id, conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	defer j.release()
	// The admission slot was acquired at job open (see handleSession); a job
	// rejected there carries j.err and no slot.
	releaseSlot := j.releaseSlot
	if releaseSlot == nil {
		releaseSlot = func() {}
	}
	defer releaseSlot()
	if j.counted {
		defer w.endJob(cs)
	}
	reply := func(m metrics) {
		wmu.Lock()
		_ = writeV3GobFrame(bw, frameV3Metrics, j.id, m)
		_ = bw.Flush()
		wmu.Unlock()
	}
	if j.err == nil {
		j.err = j.validateComplete()
	}
	if j.err != nil {
		reply(metrics{Err: j.err.Error(), Code: rejectCode(j.err)})
		return
	}
	r1, r2 := &j.rels[0], &j.rels[1]
	if j.plan != nil {
		// Stage-1 plan job: join, materialize the matched stage-2 keys,
		// (for a stats-deferred plan: summarize them and await the
		// replanned artifact,) re-shuffle them by the plan and stream each
		// share straight to its peer. Only the count vector returns.
		start := time.Now()
		out, counts, err := w.runPlanJob(j, r1, r2, bw, wmu, connDone, pt, releaseSlot)
		if errors.Is(err, errPlanJobAbandoned) {
			return
		}
		if err != nil {
			m := metrics{Err: err.Error(), Code: rejectCode(err)}
			// A failed mesh transfer indicts the PEER, not this worker: lift
			// the address out of the error so the coordinator excludes the
			// right machine.
			var pf *peerFaultError
			if errors.As(err, &pf) {
				m.FaultAddr = pf.addr
			}
			reply(m)
			return
		}
		reply(metrics{
			InputR1:    int64(r1.n),
			InputR2:    int64(r2.n),
			Output:     out,
			Nanos:      time.Since(start).Nanoseconds(),
			PayBytes1:  int64(r1.payBytes),
			PayBytes2:  int64(r2.payBytes),
			PeerCounts: counts,
			Engine:     int(j.engine.ForCond(j.cond)),
		})
		return
	}
	start := time.Now()
	var out, overlapped int64
	switch {
	case j.wantPairs:
		// The pair join must not sort the blocks in place: indices refer to
		// arrival order on both sides of the wire. Chunks stream back as
		// they fill, interleaving with other jobs' replies at frame
		// granularity. The engines emit bit-identical streams (the hash
		// path's PairTable reproduces the merge argsort's partner order), so
		// the selection stays a pure performance knob here too.
		emit := func(chunk []exec.PairIdx) {
			wmu.Lock()
			_ = writePairsFrame(bw, j.id, chunk)
			wmu.Unlock()
		}
		if j.feed != nil {
			// Chunk-streamed hash pairs: the feeder absorbed relation 1's
			// parts and pre-built the table over relation 2 (or hands back a
			// flat relation 2 to index now); the emission itself shares
			// hashJoinPairs' streamer, so the pair stream — flush boundaries
			// included — is bit-identical to the flat path's.
			out, overlapped = j.feed.finishPairs(r2.keys, emit)
		} else {
			out = exec.JoinPairsEngine(j.engine, r1.keys, r2.keys, j.cond, emit)
		}
	case j.feed != nil:
		// Insert-while-probe: the feeder built (and for a chunked relation 2,
		// probed) while the stream was still arriving; collect its results.
		// A relation 2 that arrived flat probes the finished build here.
		build, count, ov, _ := j.feed.finish()
		out, overlapped = count, ov
		if r2.keys != nil {
			out += build.ProbeCount(r2.keys)
		}
	default:
		// Flat count-only job: the job owns its buffers outright, so the
		// merge engine sorts in place, as v2; the hash engine consults the
		// worker's shared build cache.
		out = w.countFlat(j.engine, r1.keys, r2.keys, j.cond)
	}
	reply(metrics{
		InputR1:         int64(r1.n),
		InputR2:         int64(r2.n),
		Output:          out,
		Nanos:           time.Since(start).Nanoseconds(),
		PayBytes1:       int64(r1.payBytes),
		PayBytes2:       int64(r2.payBytes),
		BuildOverlapped: overlapped,
		Engine:          int(j.engine.ForCond(j.cond)),
	})
}

// countFlat joins two fully materialized key blocks the job owns under its
// effective engine. The hash path shares builds through the worker's
// content-keyed cache — a second tenant joining against the same dimension
// relation probes the first tenant's sealed build instead of rebuilding —
// and mutates neither block; the merge path sorts both in place.
func (w *Worker) countFlat(e exec.JoinEngine, r1, r2 []join.Key, cond join.Condition) int64 {
	if e.ForCond(cond) != exec.EngineHash || len(r1) == 0 || len(r2) == 0 {
		return exec.CountOwned(e, r1, r2, cond)
	}
	key := localjoin.HashBuildKey(r1)
	b := w.buildCache.Get(key)
	if b == nil {
		b = localjoin.NewBuild()
		b.Insert(r1)
		b.Seal()
		b = w.buildCache.Add(key, b)
	}
	return b.ProbeCount(r2)
}

// runPlanJob executes a stage-1 plan job's join and peer re-shuffle: the
// matches materialize as the stage-2 keys decoded from relation 2's payload
// segment, the plan routes them (batch-routed through the shared exec
// shuffle, deterministic per sender), and each stage-2 worker's share
// streams directly to that peer over the mesh. A stats-deferred job
// interposes the statistics exchange between materializing and routing:
// summarize, ship the summary, park until the replanned artifact (or a
// cancel, a kill, or the coordinator hanging up) arrives. It returns the
// match count and the per-receiver count vector. Errors name the peer
// address.
func (w *Worker) runPlanJob(j *sessJob, r1, r2 *sessRel, bw *bufio.Writer, wmu *sync.Mutex,
	connDone <-chan struct{}, pt *plan2Table, releaseSlot func()) (int64, []int64, error) {

	ps := j.plan
	decodePlan := func() (*planio.Artifact, error) {
		art, err := planio.Decode(ps.Plan)
		if err != nil {
			return nil, fmt.Errorf("stage-2 plan: %w", err)
		}
		if j2 := art.Scheme.Workers(); j2 != len(ps.Peers) {
			return nil, fmt.Errorf("stage-2 plan routes to %d workers, address map has %d", j2, len(ps.Peers))
		}
		return art, nil
	}
	// A pre-built plan validates BEFORE the join, so a malformed broadcast
	// fails fast instead of after the whole stage-1 materialization; a
	// stats-deferred plan only exists after the exchange below.
	var art *planio.Artifact
	var err error
	if !ps.WantStats {
		if art, err = decodePlan(); err != nil {
			return 0, nil, err
		}
	}
	if !r2.hasPay || r2.payBytes != 8*r2.n {
		return 0, nil, fmt.Errorf("plan job needs 8-byte stage-2 keys as relation 2 payloads (%d bytes for %d tuples)",
			r2.payBytes, r2.n)
	}
	for i := 0; i < r2.n; i++ {
		if r2.off[i+1]-r2.off[i] != 8 {
			return 0, nil, fmt.Errorf("relation 2 tuple %d payload is %d bytes, want 8", i, r2.off[i+1]-r2.off[i])
		}
	}

	// Materialize in the deterministic pair order (R1 arrival order, partners
	// ascending by key then arrival) — the same order the relay path's
	// coordinator-side emission observes, so the two paths' intermediates are
	// tuple-for-tuple identical.
	inter := make([]join.Key, 0, r1.n)
	out := exec.JoinPairs(r1.keys, r2.keys, j.cond, func(chunk []exec.PairIdx) {
		for _, p := range chunk {
			inter = append(inter, join.Key(binary.LittleEndian.Uint64(r2.pay[r2.off[p.I2]:])))
		}
	})
	// Per-tenant intermediate quota: the stage-1 match materialization is the
	// one allocation the relation heads could not announce, so it is checked
	// against the tenant's budget the moment its size is known.
	if lim := w.tenantMaxIntermediate(j.tenant); lim > 0 && int64(len(inter)) > lim {
		return 0, nil, quotaErrf("tenant %q stage-1 intermediate holds %d tuples, budget %d",
			j.tenant, len(inter), lim)
	}
	sender := j.workerID

	if ps.WantStats {
		statsCap := ps.StatsCap
		if ps.StatsAdaptive {
			statsCap = sample.AdaptiveCap(len(inter), ps.StatsCap)
		}
		sum := sample.Summarize(inter, statsCap, ps.StatsBuckets,
			stats.NewRNG(statsSenderSeed(ps.StatsSeed, sender)))
		enc, err := planio.EncodeSummary(sum)
		if err != nil {
			return 0, nil, fmt.Errorf("statistics summary: %w", err)
		}
		// Park BEFORE the summary leaves, then honor any tombstone a racing
		// cancel may already have left: between those two steps every cancel
		// ordering either wakes the waiter or is visible in the token state.
		wt := pt.add(j.id, ps.Token)
		if w.peerTokenDead(ps.Token) {
			pt.remove(j.id)
			return 0, nil, fmt.Errorf("stage-2 statistics plan cancelled by coordinator")
		}
		wmu.Lock()
		werr := writeV3FrameHeader(bw, frameV3Stats, j.id, len(enc))
		if werr == nil {
			_, werr = bw.Write(enc)
		}
		if werr == nil {
			werr = bw.Flush()
		}
		wmu.Unlock()
		if werr != nil {
			pt.remove(j.id)
			return 0, nil, errPlanJobAbandoned // connection dead; nothing to reply to
		}
		// Release the execution slot across the park: the compute is done and
		// the wait is on the COORDINATOR (merging every worker's summary), so
		// holding a slot here could let one query's parked fleet starve the
		// jobs whose stats the coordinator is still waiting for. The release
		// is once-guarded, so the caller's deferred release stays a no-op; the
		// post-park re-shuffle runs unslotted (routing + socket writes, not
		// join compute).
		releaseSlot()
		select {
		case ps2 := <-wt.ch:
			if ps2 == nil {
				return 0, nil, fmt.Errorf("stage-2 statistics plan cancelled by coordinator")
			}
			ps.Plan, ps.Peers, ps.Self = ps2.Plan, ps2.Peers, ps2.Self
		case <-w.kill:
			pt.remove(j.id)
			return 0, nil, errPlanJobAbandoned
		case <-connDone:
			pt.remove(j.id)
			return 0, nil, errPlanJobAbandoned
		}
	}

	if art == nil {
		if art, err = decodePlan(); err != nil {
			return 0, nil, err
		}
	}
	j2 := art.Scheme.Workers()
	ks := exec.ShuffleKeys(inter, art.Scheme, 1,
		exec.Config{Seed: peerSenderSeed(art.Seed, sender), Mappers: 1})
	defer ks.Release()
	counts := make([]int64, j2)
	for p := 0; p < j2; p++ {
		blk := ks.Worker(p)
		counts[p] = int64(len(blk))
		if len(blk) == 0 {
			continue
		}
		if p == ps.Self {
			if err := w.deliverLocal(ps.Token, sender, blk); err != nil {
				return 0, nil, fmt.Errorf("transfer %d to self: %w", ps.Token, err)
			}
			continue
		}
		if err := w.sendToPeer(ps.Peers[p], ps.Token, sender, blk, nil); err != nil {
			return 0, nil, fmt.Errorf("transfer %d: %w", ps.Token,
				&peerFaultError{addr: ps.Peers[p], err: err})
		}
	}
	return out, counts, nil
}

// finishPeerSessionJob completes a stage-2 peer-fed job: relation 2 (the
// coordinator-streamed right relation) is validated as usual, relation 1 is
// the assembled peer transfer. The wait ends when the transfer completes,
// fails, the worker is killed, or the coordinator hangs up.
func (w *Worker) finishPeerSessionJob(j *sessJob, bw *bufio.Writer, wmu *sync.Mutex, cs *connState,
	conn net.Conn, connDone <-chan struct{}) {

	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "netexec: worker: recovered in peer job %d from %s: %v\n%s",
				j.id, conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	defer j.release()
	if j.counted {
		defer w.endJob(cs)
	}
	reply := func(m metrics) {
		wmu.Lock()
		_ = writeV3GobFrame(bw, frameV3Metrics, j.id, m)
		_ = bw.Flush()
		wmu.Unlock()
	}
	if j.err == nil {
		r2 := &j.rels[1]
		switch {
		case j.rels[0].declared:
			j.err = fmt.Errorf("relation 1 of a peer-fed job arrived from the coordinator")
		case !r2.declared:
			j.err = fmt.Errorf("relation 2 never declared")
		case r2.streaming:
			j.err = fmt.Errorf("chunked relation 2 never received its tail")
		case r2.pos != r2.n:
			j.err = fmt.Errorf("relation 2 ended at %d tuples, head declared %d", r2.pos, r2.n)
		case r2.hasPay && (r2.payPos != r2.payBytes || r2.payTup != r2.n):
			j.err = fmt.Errorf("relation 2 payload ended at %d bytes/%d tuples, head declared %d/%d",
				r2.payPos, r2.payTup, r2.payBytes, r2.n)
		}
	}
	if j.err != nil {
		if j.peerSt != nil {
			w.dropPeerState(j.token)
		}
		reply(metrics{Err: j.err.Error(), Code: rejectCode(j.err)})
		return
	}
	st := j.peerSt
	select {
	case <-st.ready:
	case <-w.kill:
		w.dropPeerState(j.token)
		return // abrupt close: the coordinator sees the broken connection
	case <-connDone:
		w.dropPeerState(j.token)
		return
	}
	// Admission: acquire only once the transfer is fully assembled — a
	// peer-fed job waiting in the admission queue must not hold a slot while
	// its relation 1 still depends on stage-1 jobs that may be queued behind
	// it on OTHER workers (the classic cross-worker pipeline deadlock).
	releaseSlot, aerr := w.admitJob(j.tenant, w.kill, connDone)
	if aerr != nil {
		w.dropPeerState(j.token)
		if errors.Is(aerr, errAdmitAbandoned) {
			return
		}
		reply(metrics{Err: aerr.Error(), Code: rejectCode(aerr)})
		return
	}
	defer releaseSlot()
	st.mu.Lock()
	flat, stErr := st.flat, st.err
	st.flat = nil // the job owns it now
	if st.flatPay != nil {
		// The session's peer-fed join is keys-only; an assembled payload
		// segment has no consumer here yet, so recycle it.
		putByteBuf(st.flatPay)
		st.flatPay, st.flatOff = nil, nil
	}
	st.mu.Unlock()
	w.finishPeerState(j.token)
	if stErr == nil && flat == nil {
		// Defensive: a ready state must either fail or carry the block;
		// losing it (e.g. a concurrent discard) must not join empty input.
		stErr = fmt.Errorf("transfer state discarded before the join")
	}
	if stErr != nil {
		reply(metrics{Err: fmt.Sprintf("peer transfer %d: %v", j.token, stErr)})
		return
	}
	if j.peerDeferred {
		// Counts-deferred open: the transfer's size is known only now; charge
		// the assembled block against the tenant budget (release credits it
		// back with the rest of the job's reservation).
		if err := j.charge(8 * int64(len(flat))); err != nil {
			exec.PutKeyBuffer(flat)
			reply(metrics{Err: err.Error(), Code: rejectCode(err)})
			return
		}
	}
	r2 := &j.rels[1]
	start := time.Now()
	// The job owns both blocks outright: count under the job's effective
	// engine (the peer open's per-job hint, resolved against the worker
	// default at open), uncached — a transfer's assembled block is job-unique,
	// so caching it would only churn the LRU.
	out := exec.CountOwned(j.engine, flat, r2.keys, j.cond)
	n1 := int64(len(flat))
	exec.PutKeyBuffer(flat)
	reply(metrics{
		InputR1:   n1,
		InputR2:   int64(r2.n),
		Output:    out,
		Nanos:     time.Since(start).Nanoseconds(),
		PayBytes1: 0,
		PayBytes2: int64(r2.payBytes),
		Engine:    int(j.engine.ForCond(j.cond)),
	})
}

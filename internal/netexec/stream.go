package netexec

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/planio"
)

// This file is the coordinator side of the continuous-join stream protocol:
// Session implements exec.StreamRuntime by opening the same numbered stream
// job on every worker connection and multiplexing per-window replies off
// the existing read loops. The driver (internal/streamjoin) routes windows,
// merges the per-worker summaries and decides when to replan; this layer
// only moves frames and classifies faults.

// streamRepCap bounds buffered per-connection window replies. The driver is
// lockstep (it collects every window it sends), so the steady state is one
// outstanding reply; the headroom absorbs pipelined sends. Overrunning it
// means the sender stopped collecting — that is a protocol breach, and the
// connection is failed rather than blocking the read loop under it.
const streamRepCap = 256

// streamConn is one worker connection's view of an open stream.
type streamConn struct {
	c   *sessConn
	h   *jobHandler
	rep chan streamWinReply
	err error // sticky: the stream is unusable on this connection
}

// Stream is an open continuous-join stream across the session's fleet; it
// implements exec.StreamHandle. Not safe for concurrent use — the driver is
// the single sender, matching the exec contract.
type Stream struct {
	sess   *Session
	id     uint32
	conns  []*streamConn
	closed bool
}

// OpenStream implements exec.StreamRuntime: it opens one stream sub-job per
// session connection. The open frames are flushed immediately so a dead
// worker surfaces here rather than at the first window.
func (s *Session) OpenStream(spec exec.StreamSpec) (exec.StreamHandle, error) {
	js, err := join.SpecOf(spec.Cond)
	if err != nil {
		return nil, err
	}
	id := s.ids.Add(1)
	st := &Stream{sess: s, id: id, conns: make([]*streamConn, 0, len(s.conns))}
	so := streamOpen{
		Cond:          js,
		Engine:        int(spec.Engine),
		StatsCap:      spec.Stats.Cap,
		StatsBuckets:  spec.Stats.Buckets,
		StatsSeed:     spec.Stats.Seed,
		StatsAdaptive: spec.Stats.Adaptive,
	}
	for w, c := range s.conns {
		sc := &streamConn{c: c, rep: make(chan streamWinReply, streamRepCap)}
		sc.h = &jobHandler{done: make(chan sessReply, 1)}
		rep, cc := sc.rep, c
		sc.h.onStream = func(r streamWinReply) {
			select {
			case rep <- r:
			default:
				cc.fail(fmt.Errorf("stream job %d reply overrun (%d buffered)", id, streamRepCap))
			}
		}
		if err := c.register(id, sc.h); err != nil {
			st.abandon()
			return nil, c.connFault("stream open", id, w, err)
		}
		so.WorkerID = w
		c.wmu.Lock()
		werr := writeV3GobFrame(c.bw, frameV3StreamOpen, id, so)
		if werr == nil {
			werr = c.bw.Flush()
		}
		c.wmu.Unlock()
		if werr != nil {
			c.deregister(id)
			st.abandon()
			return nil, c.connFault("stream open", id, w, werr)
		}
		st.conns = append(st.conns, sc)
	}
	return st, nil
}

// abandon aborts the sub-jobs opened so far (a half-open stream is useless).
func (st *Stream) abandon() {
	st.closed = true
	for _, sc := range st.conns {
		sc.c.deregister(st.id)
		sc.c.wmu.Lock()
		_ = writeV3FrameHeader(sc.c.bw, frameV3Abort, st.id, 0)
		_ = sc.c.bw.Flush()
		sc.c.wmu.Unlock()
	}
}

// Workers implements exec.StreamHandle.
func (st *Stream) Workers() int { return len(st.conns) }

func (st *Stream) checkShares(shares [][]join.Key) error {
	if st.closed {
		return errors.New("netexec: stream is closed")
	}
	if len(shares) != len(st.conns) {
		return fmt.Errorf("netexec: %d shares for %d workers", len(shares), len(st.conns))
	}
	return nil
}

// fanOut runs one send per connection concurrently — base re-ships are the
// bulk of a replan's cost, and the per-connection writers are independent.
func (st *Stream) fanOut(op string, send func(w int, sc *streamConn) error) error {
	errs := make([]error, len(st.conns))
	var wg sync.WaitGroup
	for w, sc := range st.conns {
		if sc.err != nil {
			errs[w] = sc.err
			continue
		}
		wg.Add(1)
		go func(w int, sc *streamConn) {
			defer wg.Done()
			if err := send(w, sc); err != nil {
				sc.err = sc.c.connFault(op, st.id, w, err)
				errs[w] = sc.err
			}
		}(w, sc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// SendBase implements exec.StreamHandle.
func (st *Stream) SendBase(epoch uint32, shares [][]join.Key) error {
	if err := st.checkShares(shares); err != nil {
		return err
	}
	return st.fanOut("stream base", func(w int, sc *streamConn) error {
		share := shares[w]
		sc.c.wmu.Lock()
		defer sc.c.wmu.Unlock()
		if err := writeStreamBaseKeys(sc.c.bw, st.id, epoch, share); err != nil {
			return err
		}
		if err := writeStreamBaseEnd(sc.c.bw, st.id, epoch, len(share)); err != nil {
			return err
		}
		return sc.c.bw.Flush()
	})
}

// SendWindow implements exec.StreamHandle.
func (st *Stream) SendWindow(window, epoch uint32, shares [][]join.Key) error {
	if err := st.checkShares(shares); err != nil {
		return err
	}
	return st.fanOut("stream window", func(w int, sc *streamConn) error {
		share := shares[w]
		sc.c.wmu.Lock()
		defer sc.c.wmu.Unlock()
		if err := writeStreamWinKeys(sc.c.bw, st.id, window, epoch, share); err != nil {
			return err
		}
		if err := writeStreamWinEnd(sc.c.bw, st.id, window, epoch, len(share)); err != nil {
			return err
		}
		return sc.c.bw.Flush()
	})
}

// Collect implements exec.StreamHandle: one reply per worker, in worker
// order. Replies for other (window, epoch) pairs — a window re-sent under a
// newer epoch leaves the old epoch's reply behind — are discarded.
func (st *Stream) Collect(window, epoch uint32) ([]exec.WindowReply, error) {
	out := make([]exec.WindowReply, len(st.conns))
	for w, sc := range st.conns {
		r, err := st.collectOne(w, sc, window, epoch)
		if err != nil {
			return nil, err
		}
		out[w] = r
	}
	return out, nil
}

func (st *Stream) collectOne(worker int, sc *streamConn, window, epoch uint32) (exec.WindowReply, error) {
	const op = "stream collect"
	if sc.err != nil {
		return exec.WindowReply{}, sc.err
	}
	var deadline <-chan time.Time
	if t := sc.c.timeouts.Job; t > 0 {
		timer := time.NewTimer(t)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		select {
		case r := <-sc.rep:
			if r.Err != "" {
				sc.err = sc.c.workerFault(op, st.id, worker, &metrics{Err: r.Err, Code: r.Code})
				return exec.WindowReply{}, sc.err
			}
			if r.Window != window || r.Epoch != epoch {
				continue // stale reply from a superseded send
			}
			wr := exec.WindowReply{Worker: worker, Window: r.Window, Epoch: r.Epoch,
				Input: r.Input, Count: r.Count}
			if len(r.Summary) > 0 {
				sum, err := planio.DecodeSummary(r.Summary)
				if err != nil {
					sc.err = sc.c.protoFault(op, st.id, worker, fmt.Errorf("window summary: %w", err))
					return exec.WindowReply{}, sc.err
				}
				wr.Summary = sum
			}
			return wr, nil
		case d := <-sc.h.done:
			// The stream retired before this window's reply: a connection
			// failure, or error metrics from a poisoned stream.
			switch {
			case d.err != nil:
				sc.err = sc.c.connFault(op, st.id, worker, d.err)
			case d.m.Err != "":
				sc.err = sc.c.workerFault(op, st.id, worker, d.m)
			default:
				sc.err = sc.c.protoFault(op, st.id, worker,
					errors.New("stream closed before the window's reply"))
			}
			return exec.WindowReply{}, sc.err
		case <-deadline:
			sc.err = sc.c.livenessFault(op, st.id, worker,
				fmt.Errorf("no window reply within liveness deadline %v", sc.c.timeouts.Job))
			return exec.WindowReply{}, sc.err
		}
	}
}

// Close implements exec.StreamHandle: EOS every live sub-job and await its
// aggregate metrics. Connections already broken are skipped — their pending
// entries were retired when they failed.
func (st *Stream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	var errs []error
	for w, sc := range st.conns {
		if sc.err != nil {
			errs = append(errs, sc.err)
			continue
		}
		sc.c.wmu.Lock()
		werr := writeV3FrameHeader(sc.c.bw, frameV3EOS, st.id, 0)
		if werr == nil {
			werr = sc.c.bw.Flush()
		}
		sc.c.wmu.Unlock()
		if werr != nil {
			errs = append(errs, sc.c.connFault("stream close", st.id, w, werr))
			continue
		}
		r, ferr := sc.c.awaitReply("stream close", st.id, w, sc.h)
		switch {
		case ferr != nil:
			errs = append(errs, ferr)
		case r.err != nil:
			errs = append(errs, sc.c.connFault("stream close", st.id, w, r.err))
		case r.m.Err != "":
			errs = append(errs, sc.c.workerFault("stream close", st.id, w, r.m))
		default:
			st.sess.noteEngine(r.m.Engine)
		}
	}
	return errors.Join(errs...)
}

package netexec

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the multi-tenant half of the worker: a shared fleet serves
// many coordinators at once, so each worker enforces (a) ADMISSION CONTROL —
// a bounded in-flight-join semaphore with a per-tenant bounded wait queue and
// a queue deadline, dispatched by weighted fair scheduling so no tenant
// starves under a heavy neighbor — and (b) PER-TENANT RESOURCE BUDGETS — the
// process-wide wire caps (MaxRelationTuples, MaxRelationPayloadBytes) become
// per-tenant byte and intermediate quotas, charged when a job's receive
// buffers are allocated and credited back when the job releases them.
//
// Tenancy is declared by the coordinator in a session HELLO frame
// (frameV3Hello) right after the protocol prelude; a session that sends no
// hello is the anonymous tenant "" — exactly the pre-multi-tenant behavior,
// so old coordinators keep working against new workers. Rejections are TYPED
// end to end: the worker replies a metrics frame carrying a machine-readable
// code, and the coordinator surfaces it as a WorkerFault matching
// errors.Is(err, ErrAdmission) / errors.Is(err, ErrQuota) — never retried by
// the fault-recovery layer (the worker is healthy; the tenant is over its
// budget or the fleet is saturated), never an OOM or a wedged worker.

// ErrAdmission marks a job the worker refused to run because admission
// control rejected it: the tenant's wait queue was full, or the job waited
// past the queue deadline without a free execution slot. The worker is
// healthy; callers should shed load or back off rather than retry hot.
var ErrAdmission = errors.New("admission rejected")

// ErrQuota marks a job that exceeded its tenant's resource budget (buffered
// relation bytes or stage-1 intermediate tuples). Deterministic for a given
// job size and concurrent tenant load; never retried by the recovery layer.
var ErrQuota = errors.New("tenant quota exceeded")

// Reply codes carried in the metrics frame so rejections stay typed across
// the wire (gob-compatible addition: absent on old wires, decoded as 0).
const (
	codeNone      = 0
	codeAdmission = 1
	codeQuota     = 2
)

// rejectError is a worker-side job failure that must reply with a typed
// rejection code instead of a plain error string.
type rejectError struct {
	code int
	msg  string
}

func (e *rejectError) Error() string { return e.msg }

func admissionErrf(format string, args ...any) *rejectError {
	return &rejectError{code: codeAdmission, msg: fmt.Sprintf(format, args...)}
}

func quotaErrf(format string, args ...any) *rejectError {
	return &rejectError{code: codeQuota, msg: fmt.Sprintf(format, args...)}
}

// rejectCode extracts the typed rejection code from a job error (codeNone
// for ordinary failures).
func rejectCode(err error) int {
	var re *rejectError
	if errors.As(err, &re) {
		return re.code
	}
	return codeNone
}

// sessionHello is the optional first frame of a v3 session, identifying the
// coordinator's tenant. Sent once, before any job; a second hello or a hello
// after a job opened is connection-fatal (tenancy cannot change mid-session).
type sessionHello struct {
	Tenant string
}

// maxTenantLen bounds the tenant id a hello may carry; an id is an
// accounting key, not a payload.
const maxTenantLen = 256

// AdmissionConfig bounds a worker's concurrent join execution. The zero
// value disables admission control entirely (every job runs immediately, the
// pre-multi-tenant behavior).
type AdmissionConfig struct {
	// MaxInFlight is the number of joins the worker executes concurrently.
	// A job that is fully received while all slots are busy waits in its
	// tenant's queue. <= 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds each tenant's wait queue; a job arriving with the
	// queue full is rejected immediately with ErrAdmission. <= 0 means
	// unbounded queues (deadline-only shedding).
	MaxQueue int
	// QueueDeadline bounds how long a queued job may wait for a slot before
	// it is rejected with ErrAdmission. 0 means queued jobs wait forever.
	QueueDeadline time.Duration
}

// TenantPolicy is one tenant's resource budget and scheduling weight on a
// worker. The zero value means "no budget, weight 1".
type TenantPolicy struct {
	// Weight is the tenant's share of the worker's execution slots under
	// contention: a weight-3 tenant is dispatched 3× as often as a weight-1
	// tenant when both are backlogged. <= 0 means 1.
	Weight int
	// MaxBytes bounds the relation bytes the tenant may have buffered on
	// this worker across all its in-flight and queued jobs (8 bytes per key
	// plus declared payload segments, and 8 bytes per peer-transferred
	// intermediate tuple). <= 0 means unlimited.
	MaxBytes int64
	// MaxIntermediate bounds the stage-1 match count a single plan job of
	// this tenant may materialize worker-side. <= 0 means unlimited.
	MaxIntermediate int64
}

// SetAdmission configures the worker's admission control. Call before Serve.
func (w *Worker) SetAdmission(cfg AdmissionConfig) {
	w.admit = newAdmitter(cfg, w.tenantWeight)
}

// SetTenantPolicy sets one tenant's budget and weight. Call before Serve.
func (w *Worker) SetTenantPolicy(tenant string, p TenantPolicy) {
	w.tenants.set(tenant, p)
}

// SetDefaultTenantPolicy sets the budget and weight applied to tenants
// without an explicit policy (including the anonymous tenant ""). Call
// before Serve.
func (w *Worker) SetDefaultTenantPolicy(p TenantPolicy) {
	w.tenants.setDefault(p)
}

// tenantWeight resolves a tenant's scheduling weight for the admitter.
func (w *Worker) tenantWeight(tenant string) float64 {
	p := w.tenants.policy(tenant)
	if p.Weight <= 0 {
		return 1
	}
	return float64(p.Weight)
}

// chargeTenant reserves n buffered bytes against the tenant's budget,
// failing with a typed quota rejection when the reservation would exceed it.
func (w *Worker) chargeTenant(tenant string, n int64) error {
	return w.tenants.charge(tenant, n)
}

// creditTenant returns n reserved bytes to the tenant's budget.
func (w *Worker) creditTenant(tenant string, n int64) {
	w.tenants.credit(tenant, n)
}

// tenantMaxIntermediate resolves the tenant's per-plan-job intermediate cap
// (0: unlimited).
func (w *Worker) tenantMaxIntermediate(tenant string) int64 {
	p := w.tenants.policy(tenant)
	if p.MaxIntermediate < 0 {
		return 0
	}
	return p.MaxIntermediate
}

// admitJob acquires one execution slot for the tenant, waiting in its fair
// queue under the configured bounds. The returned release is idempotent.
// kill/connDone abort the wait silently (errAdmitAbandoned): the worker died
// or the coordinator hung up, so there is nothing to reply to.
func (w *Worker) admitJob(tenant string, kill, connDone <-chan struct{}) (func(), error) {
	if w.admit == nil {
		return func() {}, nil
	}
	return w.admit.acquire(tenant, kill, connDone)
}

// tenantTable tracks per-tenant policies and live byte usage on a worker.
type tenantTable struct {
	mu       sync.Mutex
	def      TenantPolicy
	policies map[string]TenantPolicy
	used     map[string]int64
}

func newTenantTable() *tenantTable {
	return &tenantTable{policies: make(map[string]TenantPolicy), used: make(map[string]int64)}
}

func (t *tenantTable) set(tenant string, p TenantPolicy) {
	t.mu.Lock()
	t.policies[tenant] = p
	t.mu.Unlock()
}

func (t *tenantTable) setDefault(p TenantPolicy) {
	t.mu.Lock()
	t.def = p
	t.mu.Unlock()
}

func (t *tenantTable) policy(tenant string) TenantPolicy {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.policies[tenant]; ok {
		return p
	}
	return t.def
}

func (t *tenantTable) charge(tenant string, n int64) error {
	if n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.policies[tenant]
	if !ok {
		p = t.def
	}
	if p.MaxBytes > 0 && t.used[tenant]+n > p.MaxBytes {
		used := t.used[tenant]
		return quotaErrf("tenant %q would buffer %d bytes (%d in use), budget %d",
			tenant, used+n, used, p.MaxBytes)
	}
	t.used[tenant] += n
	return nil
}

func (t *tenantTable) credit(tenant string, n int64) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	t.used[tenant] -= n
	if t.used[tenant] <= 0 {
		delete(t.used, tenant)
	}
	t.mu.Unlock()
}

// usedBytes reports the tenant's live reservation (tests and introspection).
func (t *tenantTable) usedBytes(tenant string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used[tenant]
}

// errAdmitAbandoned marks an admission wait that ended because the worker
// was killed or the coordinator hung up: exit silently, nothing to reply to.
var errAdmitAbandoned = errors.New("admission wait abandoned")

// AdmissionStats is a worker admitter's cumulative picture, for tests and
// load-test introspection.
type AdmissionStats struct {
	// FastPath counts jobs admitted immediately (free slot, empty queues).
	FastPath int64
	// Dispatched counts jobs granted from the wait queues by the fair
	// scheduler.
	Dispatched int64
	// Rejected counts typed admission rejections (queue full or deadline).
	Rejected int64
	// Granted is per-tenant admitted jobs (fast path + dispatched).
	Granted map[string]int64
	// Waiting is the instantaneous queued-waiter count.
	Waiting int
}

// AdmissionStats snapshots the worker's admission counters (zero value when
// admission control is off).
func (w *Worker) AdmissionStats() AdmissionStats {
	if w.admit == nil {
		return AdmissionStats{}
	}
	return w.admit.stats()
}

// admitter is the worker's weighted-fair execution gate: MaxInFlight slots,
// one FIFO wait queue per tenant, dispatch by stride scheduling (each
// tenant's virtual pass advances by 1/weight per dispatched job, the queue
// with the minimum pass goes next), so backlogged tenants share slots in
// proportion to their weights regardless of arrival rates.
type admitter struct {
	cfg       AdmissionConfig
	weightFor func(string) float64

	mu         sync.Mutex
	running    int
	waiting    int     // total queued waiters across tenants
	virt       float64 // virtual time: pass of the most recent dispatch
	queues     map[string]*admitQueue
	fastPath   int64
	dispatched int64
	rejected   int64
	granted    map[string]int64
}

func (a *admitter) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AdmissionStats{
		FastPath:   a.fastPath,
		Dispatched: a.dispatched,
		Rejected:   a.rejected,
		Waiting:    a.waiting,
		Granted:    make(map[string]int64, len(a.granted)),
	}
	for t, n := range a.granted {
		s.Granted[t] = n
	}
	return s
}

// admitQueue is one tenant's wait queue plus its stride-scheduling state.
// pass persists across idle periods but is clamped up to the global virtual
// time on re-activation, so an idle tenant neither hoards credit nor is
// penalized for its absence.
type admitQueue struct {
	tenant  string
	pass    float64
	waiters []*admitWaiter
}

type admitWaiter struct {
	q     *admitQueue
	ch    chan error // buffered(1): grant (nil) or typed rejection
	timer *time.Timer
}

func newAdmitter(cfg AdmissionConfig, weightFor func(string) float64) *admitter {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	return &admitter{cfg: cfg, weightFor: weightFor,
		queues: make(map[string]*admitQueue), granted: make(map[string]int64)}
}

func (a *admitter) queue(tenant string) *admitQueue {
	q, ok := a.queues[tenant]
	if !ok {
		q = &admitQueue{tenant: tenant, pass: a.virt}
		a.queues[tenant] = q
	}
	return q
}

// chargeLocked advances the stride state for one dispatched job of q's
// tenant.
func (a *admitter) chargeLocked(q *admitQueue) {
	if q.pass < a.virt {
		q.pass = a.virt
	}
	a.virt = q.pass
	w := a.weightFor(q.tenant)
	if w <= 0 {
		w = 1
	}
	q.pass += 1 / w
}

// acquire blocks until the tenant is granted an execution slot, its queue
// overflows or its wait exceeds the deadline (typed ErrAdmission), or
// kill/connDone end the wait (errAdmitAbandoned). The returned release is
// idempotent and must be called exactly once per successful acquire.
func (a *admitter) acquire(tenant string, kill, connDone <-chan struct{}) (func(), error) {
	a.mu.Lock()
	// Fast path: a free slot and nobody queued ahead — fairness only
	// reorders CONTENDED dispatches, an uncontended worker runs everything
	// immediately.
	if a.running < a.cfg.MaxInFlight && a.waiting == 0 {
		q := a.queue(tenant)
		a.chargeLocked(q)
		a.running++
		a.fastPath++
		a.granted[tenant]++
		a.mu.Unlock()
		return a.releaseFunc(), nil
	}
	q := a.queue(tenant)
	if a.cfg.MaxQueue > 0 && len(q.waiters) >= a.cfg.MaxQueue {
		a.rejected++
		a.mu.Unlock()
		return nil, admissionErrf("tenant %q queue full (%d queued, limit %d)",
			tenant, a.cfg.MaxQueue, a.cfg.MaxQueue)
	}
	wt := &admitWaiter{q: q, ch: make(chan error, 1)}
	q.waiters = append(q.waiters, wt)
	a.waiting++
	if a.cfg.QueueDeadline > 0 {
		d := a.cfg.QueueDeadline
		wt.timer = time.AfterFunc(d, func() {
			a.expire(wt, d)
		})
	}
	a.mu.Unlock()

	select {
	case err := <-wt.ch:
		if err != nil {
			return nil, err
		}
		return a.releaseFunc(), nil
	case <-kill:
		a.abandon(wt)
		return nil, errAdmitAbandoned
	case <-connDone:
		a.abandon(wt)
		return nil, errAdmitAbandoned
	}
}

// releaseFunc returns the idempotent slot release for one granted job.
func (a *admitter) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.running--
			a.dispatchLocked()
			a.mu.Unlock()
		})
	}
}

// dispatchLocked fills free slots from the wait queues in weighted-fair
// order.
func (a *admitter) dispatchLocked() {
	for a.running < a.cfg.MaxInFlight && a.waiting > 0 {
		var best *admitQueue
		for _, q := range a.queues {
			if len(q.waiters) == 0 {
				continue
			}
			// An idle tenant's stale pass is clamped to the virtual time at
			// selection, so comparisons see its effective (re-activated) pass.
			if q.pass < a.virt {
				q.pass = a.virt
			}
			if best == nil || q.pass < best.pass ||
				(q.pass == best.pass && q.tenant < best.tenant) {
				best = q
			}
		}
		if best == nil {
			return
		}
		wt := best.waiters[0]
		best.waiters = best.waiters[1:]
		a.waiting--
		a.chargeLocked(best)
		a.running++
		a.dispatched++
		a.granted[best.tenant]++
		if wt.timer != nil {
			wt.timer.Stop()
		}
		wt.ch <- nil
	}
}

// expire rejects a waiter that outlived the queue deadline. A waiter already
// granted (removed from its queue) is left alone — Stop racing the timer is
// benign because grant/reject both go through queue membership under mu.
func (a *admitter) expire(wt *admitWaiter, d time.Duration) {
	a.mu.Lock()
	if !a.removeLocked(wt) {
		a.mu.Unlock()
		return
	}
	a.rejected++
	a.mu.Unlock()
	wt.ch <- admissionErrf("tenant %q job waited past queue deadline %v", wt.q.tenant, d)
}

// abandon removes a waiter whose session died mid-wait.
func (a *admitter) abandon(wt *admitWaiter) {
	a.mu.Lock()
	removed := a.removeLocked(wt)
	a.mu.Unlock()
	if !removed {
		// Lost the race against a grant: the slot was already assigned to this
		// (now dead) job; give it back.
		if err := <-wt.ch; err == nil {
			a.mu.Lock()
			a.running--
			a.dispatchLocked()
			a.mu.Unlock()
		}
	}
	if wt.timer != nil {
		wt.timer.Stop()
	}
}

// removeLocked detaches wt from its queue; false means it was already
// granted or rejected.
func (a *admitter) removeLocked(wt *admitWaiter) bool {
	for i, c := range wt.q.waiters {
		if c == wt {
			wt.q.waiters = append(wt.q.waiters[:i], wt.q.waiters[i+1:]...)
			a.waiting--
			return true
		}
	}
	return false
}

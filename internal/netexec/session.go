package netexec

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ewh/internal/exec"
	"ewh/internal/join"
)

// Session is the persistent-connection transport implementing exec.Runtime:
// Dial opens one connection per worker and handshakes once, then any number
// of numbered jobs multiplex over those connections — the dial cost is
// amortized across the whole session instead of paid per job as in Run.
// Jobs stream each relation as soon as its shuffle completes, so socket
// writes overlap the other relation's still-running scatter.
//
// A Session is safe for concurrent RunJob calls: frames of concurrent jobs
// interleave at job granularity on the send side (one job's frames are
// contiguous per connection) and at frame granularity on the reply side.
type Session struct {
	conns []*sessConn

	// ids and relayed are pointers so a derived survivor view (Survivors)
	// shares the parent's job-number space and pairs accounting: jobs issued
	// on either multiplex over the same connections without id collisions.
	ids *atomic.Uint32

	// relayed counts the matched index pairs workers streamed back through
	// this coordinator — the quantity the peer-shuffle path drives to zero
	// for multiway intermediates. Exposed for the crosscheck's
	// nothing-transits-the-coordinator assertion and the experiment tables.
	relayed *atomic.Int64

	// overlapped counts stage-2 peer sub-jobs whose right relation started
	// streaming BEFORE stage 1's metrics had landed — the observable the
	// stage-overlapped dispatch crosschecks assert on. Shared by survivor
	// views like ids/relayed.
	overlapped *atomic.Int64

	// buildOverlapped accumulates the workers' metrics.BuildOverlapped: the
	// CHUNK sub-blocks hash-engine jobs consumed before their EOS frames —
	// build/probe work that overlapped the streaming scatter. Shared by
	// survivor views like ids/relayed.
	buildOverlapped *atomic.Int64

	// engineUses tallies successful worker replies by the resolved local-join
	// engine they echoed (index = the wire engine value; 0 collects legacy
	// workers that report nothing). The audit that per-job engine selection —
	// including the peer-open hint — actually reached the workers. Shared by
	// survivor views like ids/relayed.
	engineUses *[3]atomic.Int64

	// tenant is the id this session declared in its HELLO frames — the key
	// workers use for admission queuing and quota accounting. "" (no hello
	// sent) is the anonymous tenant.
	tenant string

	// onClose, when set (by Pool), runs once when the session closes so the
	// issuing pool can drop it from its tracking table. Set before the
	// session escapes the dialing goroutine, never mutated after.
	onClose func()
}

// Dial connects to the workers and opens a session on each. The returned
// Session serves jobs needing up to len(addrs) workers; Close hangs up.
func Dial(addrs []string) (*Session, error) {
	return DialContextWith(context.Background(), addrs, Timeouts{})
}

// DialWith is Dial with explicit dial/IO deadlines: connection establishment
// is bounded by t.Dial and every in-flight frame transfer by t.IO, so a hung
// worker fails its jobs instead of wedging the whole session (see Timeouts).
func DialWith(addrs []string, t Timeouts) (*Session, error) {
	return DialContextWith(context.Background(), addrs, t)
}

// DialContext is Dial bounded by ctx: cancelling the context aborts a dial
// blocked in connection establishment (e.g. a full accept backlog, where no
// wall-clock timeout is configured) instead of leaving the caller stuck in
// the kernel handshake.
func DialContext(ctx context.Context, addrs []string) (*Session, error) {
	return DialContextWith(ctx, addrs, Timeouts{})
}

// DialContextWith combines DialContext and DialWith. The context bounds only
// session establishment, not the jobs that follow.
func DialContextWith(ctx context.Context, addrs []string, t Timeouts) (*Session, error) {
	return DialTenant(ctx, "", addrs, t)
}

// DialTenant is DialContextWith declaring a tenant identity: each session
// connection sends a HELLO frame naming the tenant right after the protocol
// prelude, and the workers key admission queuing and resource budgets by it.
// An empty tenant sends no hello (the anonymous tenant — byte-identical to
// the pre-multi-tenant wire).
func DialTenant(ctx context.Context, tenant string, addrs []string, t Timeouts) (*Session, error) {
	if len(tenant) > maxTenantLen {
		return nil, fmt.Errorf("netexec: tenant id %d bytes long, limit %d", len(tenant), maxTenantLen)
	}
	s := &Session{ids: new(atomic.Uint32), relayed: new(atomic.Int64),
		overlapped: new(atomic.Int64), buildOverlapped: new(atomic.Int64),
		engineUses: new([3]atomic.Int64), tenant: tenant}
	for _, addr := range addrs {
		c, err := dialSessConn(ctx, addr, t, s)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.conns = append(s.conns, c)
	}
	return s, nil
}

// Tenant reports the id this session declared at dial time ("" when
// anonymous).
func (s *Session) Tenant() string { return s.tenant }

// RelayedPairs reports the total matched index pairs this session's workers
// have streamed back to the coordinator since Dial.
func (s *Session) RelayedPairs() int64 { return s.relayed.Load() }

// OverlappedStage2 reports how many stage-2 peer sub-jobs started streaming
// their right relation while stage 1 was still running — the pipelining the
// stage-overlapped dispatch buys over the old open-after-stage-1 sequence.
func (s *Session) OverlappedStage2() int64 { return s.overlapped.Load() }

// BuildOverlappedChunks reports how many CHUNK sub-blocks this session's
// workers fed into their incremental hash builds (or probed) before the
// owning job's EOS had even been decoded — the join-side pipelining the
// insert-while-probe engine buys over join-after-assembly, mirroring
// OverlappedStage2 for the scatter/join boundary.
func (s *Session) BuildOverlappedChunks() int64 { return s.buildOverlapped.Load() }

// EngineUses reports how many successful sub-job replies resolved to engine
// e on the worker side since Dial — including peer-fed stage-2 jobs, whose
// selection travels in the peer open's engine hint. EngineUses(EngineAuto)
// counts legacy workers that echo no engine.
func (s *Session) EngineUses(e exec.JoinEngine) int64 {
	if e < 0 || int(e) >= len(s.engineUses) {
		return 0
	}
	return s.engineUses[e].Load()
}

// noteEngine tallies one successful reply's echoed engine, ignoring values
// outside the known range (a newer worker's engine family).
func (s *Session) noteEngine(e int) {
	if e >= 0 && e < len(s.engineUses) {
		s.engineUses[e].Add(1)
	}
}

// StreamsChunks implements exec.ChunkStreamer: the session consumes chunked
// relations, framing each routed sub-block onto the socket the moment a
// mapper emits it instead of waiting out the whole flat scatter.
func (s *Session) StreamsChunks() bool { return true }

// Workers returns the session's worker count.
func (s *Session) Workers() int { return len(s.conns) }

// Addrs returns the dialed worker addresses.
func (s *Session) Addrs() []string {
	out := make([]string, len(s.conns))
	for i, c := range s.conns {
		out[i] = c.addr
	}
	return out
}

// Label implements exec.Runtime.
func (s *Session) Label() string { return "@sess" }

// Close hangs up every worker connection and releases the session's reader
// goroutines. In-flight jobs fail.
func (s *Session) Close() error {
	var first error
	for _, c := range s.conns {
		if err := c.close(); err != nil && first == nil {
			first = err
		}
	}
	if s.onClose != nil {
		s.onClose()
	}
	return first
}

// RunJob implements exec.Runtime: the job fans out to one numbered sub-job
// per worker over the persistent connections. Worker failures are
// aggregated into one error naming each failed worker's address and the
// job number; every per-worker goroutine has returned by then, so a failed
// job leaks nothing.
func (s *Session) RunJob(job *exec.Job, wm []exec.WorkerMetrics) error {
	if job.Workers > len(s.conns) {
		return fmt.Errorf("netexec: job needs %d workers, session has %d", job.Workers, len(s.conns))
	}
	spec, err := join.SpecOf(job.Cond)
	if err != nil {
		return err
	}
	id := s.ids.Add(1)
	errs := make([]error, job.Workers)
	var wg sync.WaitGroup
	for w := 0; w < job.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = s.conns[w].runJob(id, w, spec, job, &wm[w])
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sessReply is the terminal state of one sub-job: the worker's metrics or
// the connection failure that ended it.
type sessReply struct {
	m   *metrics
	err error
}

// jobHandler routes one sub-job's reply frames. onPairs runs inline in the
// connection's read loop (one sub-job per worker per job, so pair delivery
// is sequential per worker); done and stats are buffered so the reader
// never blocks on a departed waiter (stats carries at most one summary per
// stage job).
type jobHandler struct {
	onPairs func([]exec.PairIdx)
	stats   chan []byte
	done    chan sessReply
	// onStream delivers a stream job's per-window replies (frameV3StreamRep);
	// like onPairs it runs inline in the read loop.
	onStream func(streamWinReply)
}

// sessConn is one persistent worker connection: a writer serialized by wmu
// and a reader goroutine demultiplexing reply frames to registered jobs.
type sessConn struct {
	addr     string
	conn     net.Conn
	sess     *Session // owning session (pairs accounting, fault attribution)
	timeouts Timeouts

	// down marks the worker excluded from future attempts: set when a
	// transport fault is classified against this connection, or when a peer
	// reports this worker's address as a failed transfer target.
	down atomic.Bool

	wmu sync.Mutex // serializes whole-job sends
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint32]*jobHandler
	err     error // sticky: set once the connection is unusable
}

func dialSessConn(ctx context.Context, addr string, t Timeouts, sess *Session) (*sessConn, error) {
	raw, err := dialTCP(ctx, addr, t)
	if err != nil {
		return nil, &WorkerFault{Kind: FaultDial, Worker: -1, Addr: addr, Err: err, retry: true}
	}
	conn := newTimedConn(raw, t.IO)
	c := &sessConn{
		addr:     addr,
		conn:     conn,
		sess:     sess,
		timeouts: t,
		bw:       bufio.NewWriterSize(conn, connBufSize),
		pending:  make(map[uint32]*jobHandler),
	}
	var prelude [len(protoMagic) + 2]byte
	copy(prelude[:], protoMagic[:])
	binary.LittleEndian.PutUint16(prelude[len(protoMagic):], protoVersionSession)
	if _, err := conn.Write(prelude[:]); err != nil {
		_ = conn.Close()
		return nil, &WorkerFault{Kind: FaultHandshake, Worker: -1, Addr: addr, Err: err, retry: true}
	}
	if sess != nil && sess.tenant != "" {
		// Declare tenancy before any job. The hello rides the shared buffered
		// writer and flushes immediately — the worker must know the tenant
		// before it sees the first job open.
		err := writeV3GobFrame(c.bw, frameV3Hello, 0, sessionHello{Tenant: sess.tenant})
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			_ = conn.Close()
			return nil, &WorkerFault{Kind: FaultHandshake, Worker: -1, Addr: addr, Err: err, retry: true}
		}
	}
	go c.readLoop()
	return c, nil
}

// failedErr reports the connection's sticky failure, or nil while usable.
func (c *sessConn) failedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *sessConn) close() error {
	c.fail(errors.New("session closed"))
	return c.conn.Close()
}

// fail marks the connection unusable and delivers the failure to every
// pending sub-job exactly once.
func (c *sessConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]*jobHandler)
	c.mu.Unlock()
	for _, h := range pending {
		h.done <- sessReply{err: err}
	}
}

// register installs a sub-job's handler; it fails fast on a dead
// connection.
func (c *sessConn) register(id uint32, h *jobHandler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.pending[id] = h
	return nil
}

func (c *sessConn) deregister(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// handler returns the registered handler for a job id, or nil.
func (c *sessConn) handler(id uint32) *jobHandler {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending[id]
}

// readLoop demultiplexes reply frames by job number until the connection
// dies. Pairs are delivered inline — the loop is the per-worker delivery
// order the runtime contract requires — and a metrics frame terminates its
// sub-job. The loop exits exactly when the connection fails or closes, so
// a Session never leaks its readers.
func (c *sessConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, connBufSize)
	for {
		disarmConn(c.conn)
		typ, id, n, err := readV3FrameHeader(br)
		if err != nil {
			c.fail(fmt.Errorf("connection lost: %w", err))
			return
		}
		armConn(c.conn)
		switch typ {
		case frameV3Pairs:
			pairs, err := readPairsPayload(br, n)
			if err != nil {
				c.fail(fmt.Errorf("pairs frame: %w", err))
				return
			}
			c.sess.relayed.Add(int64(len(pairs)))
			if h := c.handler(id); h != nil && h.onPairs != nil {
				h.onPairs(pairs)
			}
			putPairsBuf(pairs)
		case frameV3Stats:
			h := c.handler(id)
			if h == nil || h.stats == nil {
				// No consumer (abandoned job, late duplicate): drain without
				// buffering.
				if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
					c.fail(fmt.Errorf("stats frame: %w", err))
					return
				}
				continue
			}
			payload := make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				c.fail(fmt.Errorf("stats frame: %w", err))
				return
			}
			select {
			case h.stats <- payload:
			default: // a second summary for one job is dropped, not fatal
			}
		case frameV3StreamRep:
			var r streamWinReply
			if err := readGobPayload(br, n, &r); err != nil {
				c.fail(fmt.Errorf("stream reply frame: %w", err))
				return
			}
			if h := c.handler(id); h != nil && h.onStream != nil {
				h.onStream(r)
			}
		case frameV3Metrics:
			var m metrics
			if err := readGobPayload(br, n, &m); err != nil {
				c.fail(fmt.Errorf("metrics frame: %w", err))
				return
			}
			c.mu.Lock()
			h := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if h != nil {
				h.done <- sessReply{m: &m}
			}
		default:
			c.fail(fmt.Errorf("unexpected frame type %d from worker", typ))
			return
		}
	}
}

// awaitReply blocks until the sub-job's terminal reply, bounded by the
// session's per-job liveness deadline when one is configured. A worker that
// produces neither a reply nor a connection error within Timeouts.Job is
// declared dead: the deadline catches failure modes the IO deadline cannot —
// a worker that accepted the job and went silent without the TCP peer dying
// (the coordinator is idle at a frame boundary, so no read deadline is
// armed).
func (c *sessConn) awaitReply(op string, id uint32, workerID int, h *jobHandler) (sessReply, error) {
	if c.timeouts.Job <= 0 {
		return <-h.done, nil
	}
	t := time.NewTimer(c.timeouts.Job)
	defer t.Stop()
	select {
	case r := <-h.done:
		return r, nil
	case <-t.C:
		return sessReply{}, c.livenessFault(op, id, workerID,
			fmt.Errorf("no reply within liveness deadline %v", c.timeouts.Job))
	}
}

// runJob executes one sub-job on this connection: send the job's frames,
// then consume replies until the worker's metrics (pairs arrive via the
// read loop). Every failure is classified into a *WorkerFault naming the
// worker address and job number.
func (c *sessConn) runJob(id uint32, workerID int, spec join.Spec, job *exec.Job,
	m *exec.WorkerMetrics) error {

	const op = "job"
	h := &jobHandler{done: make(chan sessReply, 1)}
	if job.Pairs != nil {
		h.onPairs = func(pairs []exec.PairIdx) { job.Pairs(workerID, pairs) }
	}
	if err := c.register(id, h); err != nil {
		return c.connFault(op, id, workerID, err)
	}
	defer c.deregister(id)
	sentPay, err := c.sendJob(id, workerID, spec, nil, job)
	if err != nil {
		// The reader may deliver the underlying failure too; the buffered
		// done channel absorbs it.
		return c.connFault(op, id, workerID, err)
	}
	r, ferr := c.awaitReply(op, id, workerID, h)
	if ferr != nil {
		return ferr
	}
	if r.err != nil {
		return c.connFault(op, id, workerID, r.err)
	}
	if r.m.Err != "" {
		return c.workerFault(op, id, workerID, r.m)
	}
	// End-to-end payload assertion: the worker reports the payload bytes it
	// decoded; any disagreement with what this side streamed means wire
	// corruption that slipped past the worker's declaration checks.
	if r.m.PayBytes1 != sentPay[0] || r.m.PayBytes2 != sentPay[1] {
		return c.protoFault(op, id, workerID,
			fmt.Errorf("worker decoded %d/%d payload bytes, coordinator sent %d/%d",
				r.m.PayBytes1, r.m.PayBytes2, sentPay[0], sentPay[1]))
	}
	c.sess.buildOverlapped.Add(r.m.BuildOverlapped)
	c.sess.noteEngine(r.m.Engine)
	m.InputR1 = r.m.InputR1
	m.InputR2 = r.m.InputR2
	m.Output = r.m.Output
	return nil
}

// sendJob streams one sub-job's frames. The write lock spans the whole job
// so its frames are contiguous on the wire; each relation is fetched from
// its future right before sending, which is where the shuffle/socket
// overlap happens — relation 1's blocks go out (and flush) while relation
// 2 may still be scattering. A non-nil ps makes this a stage-1 plan job:
// the PLAN frame rides between the open and the relations. A job that
// cannot be completed (a coordinator-side validation failure) is abandoned
// with an abort frame so the worker discards its partial state instead of
// waiting forever for an EOS — validation errors surface at frame
// boundaries, so the connection's framing stays intact for subsequent
// jobs. (If the failure was the socket itself, the abort write fails too
// and the read loop retires everything.)
func (c *sessConn) sendJob(id uint32, workerID int, spec join.Spec, ps *planSpec,
	job *exec.Job) (sentPay [2]int64, err error) {

	c.wmu.Lock()
	defer c.wmu.Unlock()
	abort := func(err error) ([2]int64, error) {
		_ = writeV3FrameHeader(c.bw, frameV3Abort, id, 0)
		_ = c.bw.Flush()
		return [2]int64{}, err
	}
	jo := jobOpen{WorkerID: workerID, Cond: spec, WantPairs: job.Pairs != nil,
		Engine: int(job.Engine)}
	if err := writeV3GobFrame(c.bw, frameV3OpenJob, id, jo); err != nil {
		return abort(err)
	}
	if ps != nil {
		if err := writeV3GobFrame(c.bw, frameV3Plan, id, *ps); err != nil {
			return abort(err)
		}
	}
	pay1, err := c.sendRelation(id, 1, job.R1.Wait(), workerID)
	if err != nil {
		return abort(err)
	}
	if err := c.bw.Flush(); err != nil {
		return abort(err)
	}
	pay2, err := c.sendRelation(id, 2, job.R2.Wait(), workerID)
	if err != nil {
		return abort(err)
	}
	if err := writeV3FrameHeader(c.bw, frameV3EOS, id, 0); err != nil {
		return [2]int64{}, err
	}
	return [2]int64{pay1, pay2}, c.bw.Flush()
}

// sendRelation streams one relation's head, key blocks and (optional)
// payload blocks, returning the payload bytes shipped so runJob can assert
// the worker's decode count against them. Chunk-streamed relations take the
// pipelined path instead: sub-blocks frame out as mappers emit them.
func (c *sessConn) sendRelation(id uint32, rel int8, rd exec.RelData, workerID int) (int64, error) {
	if rd.Chunks != nil {
		return 0, c.sendRelationChunked(id, rel, rd.Chunks, workerID)
	}
	keys := rd.Keys.Worker(workerID)
	if len(keys) > MaxRelationTuples {
		return 0, fmt.Errorf("relation %d holds %d tuples, wire limit %d", rel, len(keys), MaxRelationTuples)
	}
	var pb exec.PayloadBlock
	hasPay := rd.Payloads != nil
	if hasPay {
		pb = rd.Payloads(workerID)
		if len(pb.Flat) > MaxRelationPayloadBytes {
			return 0, fmt.Errorf("relation %d payloads hold %d bytes, wire limit %d",
				rel, len(pb.Flat), MaxRelationPayloadBytes)
		}
		// A single tuple's payload must fit one payload frame: lengths and
		// bytes travel together, so an oversized tuple has no valid wire
		// encoding — catch it here (at a frame boundary, so the job aborts
		// cleanly) rather than emitting a frame the worker must treat as
		// connection-fatal.
		for i := 0; i+1 < len(pb.Off); i++ {
			if sz := pb.Off[i+1] - pb.Off[i]; int(sz) > maxPayFrameBytes {
				return 0, fmt.Errorf("relation %d tuple %d payload is %d bytes, per-tuple wire limit %d",
					rel, i, sz, maxPayFrameBytes)
			}
		}
	}
	if err := writeRelHead(c.bw, id, rel, len(keys), hasPay, len(pb.Flat)); err != nil {
		return 0, err
	}
	if err := writeKeyBlocksV3(c.bw, id, rel, keys); err != nil {
		return 0, err
	}
	if hasPay {
		if err := writePayloadBlocks(c.bw, id, rel, pb); err != nil {
			return 0, err
		}
	}
	return int64(len(pb.Flat)), nil
}

// sendRelationChunked pipelines one chunk-streamed relation: a head naming
// the mapper count, then every routed sub-block the moment the shuffle emits
// it (flushed per chunk so the worker decodes while later mappers still
// route), then a tail with the exact total. Every return path — success or
// failure — leaves this worker's channel drained, so a failed sub-job never
// wedges the producer's buffers (the stream's other consumers are
// independent; the driver's releaseRelData backstops relations never
// reached).
func (c *sessConn) sendRelationChunked(id uint32, rel int8, cs *exec.ChunkStream, workerID int) error {
	drain := func(err error) error {
		for ch := range cs.Worker(workerID) {
			exec.PutKeyBuffer(ch.Keys)
		}
		return err
	}
	if err := writeChunkHead(c.bw, id, rel, cs.Mappers()); err != nil {
		return drain(err)
	}
	total := 0
	for ch := range cs.Worker(workerID) {
		n := len(ch.Keys)
		if total+n > MaxRelationTuples {
			exec.PutKeyBuffer(ch.Keys)
			return drain(fmt.Errorf("relation %d holds over %d tuples, wire limit %d",
				rel, total, MaxRelationTuples))
		}
		err := writeChunkKeys(c.bw, id, rel, ch.Mapper, ch.Keys)
		exec.PutKeyBuffer(ch.Keys)
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			return drain(err)
		}
		total += n
	}
	return writeChunkTail(c.bw, id, rel, total, 0)
}

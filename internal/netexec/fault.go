package netexec

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"syscall"

	"ewh/internal/exec"
)

// This file is the failure-detection half of fault-tolerant execution: every
// per-worker per-job failure a session observes is classified into a typed
// WorkerFault instead of the flat string aggregation the first session
// protocol shipped with. The coordinator-side drivers (exec.RunRetry and the
// multiway retry loops) extract the faults from an aggregated error, decide
// retryability, and rebuild the plan over the session's survivors — see
// Session.Survivors and DESIGN.md's "Fault model & recovery".

// FaultKind classifies what broke between the coordinator and a worker.
type FaultKind uint8

const (
	// FaultUnknown covers coordinator-side validation failures (oversized
	// relations, payload-byte disagreement): deterministic, never retried.
	FaultUnknown FaultKind = iota
	// FaultDial is a failed connection establishment (refused, unreachable,
	// or past Timeouts.Dial).
	FaultDial
	// FaultHandshake is a failed or timed-out protocol prelude write on a
	// fresh connection.
	FaultHandshake
	// FaultTimeout is an expired progress deadline: a mid-frame read/write
	// past Timeouts.IO, or a sub-job exceeding the Timeouts.Job liveness
	// deadline. The connection is poisoned — a wedged worker is excluded,
	// not re-polled.
	FaultTimeout
	// FaultConnLost is an established connection dying under the session:
	// reset by peer, broken pipe, or an unexpected EOF.
	FaultConnLost
	// FaultWorkerJob is an explicit worker-side job error reply. Retryable
	// only when the worker refused the job because it is shutting down.
	FaultWorkerJob
	// FaultPeer is a worker-side failure caused by ANOTHER worker: a
	// peer-mesh transfer targeting it failed. Addr names the peer, which the
	// session marks down so recovery excludes the right machine.
	FaultPeer
	// FaultAdmission is a typed worker refusal under admission control: the
	// tenant's queue was full or the job waited past the queue deadline.
	// The worker is healthy and must NOT be excluded or retried hot —
	// errors.Is(fault, ErrAdmission) holds.
	FaultAdmission
	// FaultQuota is a typed per-tenant resource-budget rejection (buffered
	// bytes or intermediate cap). Deterministic for the offered load, never
	// retried — errors.Is(fault, ErrQuota) holds.
	FaultQuota
)

// String names the kind for error text and logs.
func (k FaultKind) String() string {
	switch k {
	case FaultDial:
		return "dial"
	case FaultHandshake:
		return "handshake"
	case FaultTimeout:
		return "timeout"
	case FaultConnLost:
		return "connection lost"
	case FaultWorkerJob:
		return "worker job error"
	case FaultPeer:
		return "peer fault"
	case FaultAdmission:
		return "admission rejected"
	case FaultQuota:
		return "quota exceeded"
	}
	return "unknown"
}

// WorkerFault is one classified per-worker per-job failure. It preserves the
// session protocol's established error text (address and job number in every
// message) while carrying the structure recovery needs: which worker, which
// job, what kind, and whether retrying over the survivors can help.
type WorkerFault struct {
	// Kind classifies the failure.
	Kind FaultKind
	// Worker is the failing sub-job's worker index within the job's fan-out
	// (-1 for dial-time faults, which precede any job).
	Worker int
	// Addr is the faulted worker's address — the PEER's address for
	// FaultPeer, where the reporting worker is healthy.
	Addr string
	// Job is the session job number (0 for dial-time faults).
	Job uint32
	// Err is the underlying cause.
	Err error

	// op is the coordinator operation ("job", "stage job", ...) the fault
	// interrupted; it keeps Error() byte-compatible with the pre-typed text.
	op string
	// retry caches the retryability decision made at classification time.
	retry bool
}

// Error implements error, reproducing the untyped messages' shape so error
// text stays stable: "netexec: job 3 on worker 1 (127.0.0.1:4242): ...".
func (f *WorkerFault) Error() string {
	switch {
	case f.Kind == FaultDial && f.op == "":
		return fmt.Sprintf("netexec: dial %s: %v", f.Addr, f.Err)
	case f.Kind == FaultHandshake && f.op == "":
		return fmt.Sprintf("netexec: session handshake to %s: %v", f.Addr, f.Err)
	}
	return fmt.Sprintf("netexec: %s %d on worker %d (%s): %v", f.op, f.Job, f.Worker, f.Addr, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *WorkerFault) Unwrap() error { return f.Err }

// RetryableFault reports whether excluding the faulted worker and retrying
// over the survivors can succeed — the interface exec.RetryableFault probes
// for, keeping the exec driver layer free of any netexec dependency.
// Transport faults (dial, handshake, timeout, lost connection, peer) are
// retryable; deterministic failures (validation, worker-side job errors other
// than a shutdown-drain refusal) are not.
func (f *WorkerFault) RetryableFault() bool { return f.retry }

// Faults extracts every WorkerFault from an error tree (errors.Join
// aggregates, fmt.Errorf wrappers). Order follows the tree walk, which for a
// job's aggregated error is worker order.
func Faults(err error) []*WorkerFault {
	var out []*WorkerFault
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if f, ok := e.(*WorkerFault); ok {
			out = append(out, f)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// classifyIOErr maps a transport-level error onto a fault kind. Anything
// that is recognizably a network/IO failure is a retryable transport fault;
// everything else (coordinator-side validation) stays FaultUnknown.
func classifyIOErr(err error) FaultKind {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return FaultTimeout
	}
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return FaultDial
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed):
		return FaultConnLost
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return FaultConnLost
	}
	return FaultUnknown
}

// retryableWorkerErr reports whether a worker-side job error reply is a
// transient refusal (the worker draining for shutdown) rather than a
// deterministic job failure.
func retryableWorkerErr(msg string) bool {
	return strings.Contains(msg, "worker shutting down")
}

// connFault classifies a connection-level failure of one sub-job on this
// connection and marks the worker down for Survivors.
func (c *sessConn) connFault(op string, id uint32, workerID int, err error) *WorkerFault {
	kind := classifyIOErr(err)
	retry := kind != FaultUnknown
	if retry {
		c.down.Store(true)
	}
	return &WorkerFault{Kind: kind, Worker: workerID, Addr: c.addr, Job: id, Err: err,
		op: op, retry: retry}
}

// livenessFault declares this connection's worker dead for exceeding the
// per-job liveness deadline: the connection is failed (delivering the fault
// to every pending sub-job) and closed, so a wedged worker cannot absorb
// further jobs.
func (c *sessConn) livenessFault(op string, id uint32, workerID int, err error) *WorkerFault {
	c.down.Store(true)
	c.fail(err)
	_ = c.conn.Close()
	return &WorkerFault{Kind: FaultTimeout, Worker: workerID, Addr: c.addr, Job: id, Err: err,
		op: op, retry: true}
}

// workerFault classifies an explicit worker-side job error reply. A reply
// naming a peer fault address indicts the PEER — the session marks that
// worker down so recovery excludes the machine that actually died. A reply
// carrying a rejection code becomes a typed admission/quota fault that
// matches ErrAdmission/ErrQuota via errors.Is and is never retried: the
// worker is healthy, the rejection is policy.
func (c *sessConn) workerFault(op string, id uint32, workerID int, m *metrics) *WorkerFault {
	switch m.Code {
	case codeAdmission:
		return &WorkerFault{Kind: FaultAdmission, Worker: workerID, Addr: c.addr, Job: id,
			Err: fmt.Errorf("%w: %s", ErrAdmission, m.Err), op: op}
	case codeQuota:
		return &WorkerFault{Kind: FaultQuota, Worker: workerID, Addr: c.addr, Job: id,
			Err: fmt.Errorf("%w: %s", ErrQuota, m.Err), op: op}
	}
	if m.FaultAddr != "" {
		if c.sess != nil {
			c.sess.markDown(m.FaultAddr)
		}
		return &WorkerFault{Kind: FaultPeer, Worker: workerID, Addr: m.FaultAddr, Job: id,
			Err: errors.New(m.Err), op: op, retry: true}
	}
	return &WorkerFault{Kind: FaultWorkerJob, Worker: workerID, Addr: c.addr, Job: id,
		Err: errors.New(m.Err), op: op, retry: retryableWorkerErr(m.Err)}
}

// peerFaultError marks a worker-side failure as caused by the named peer —
// a mesh transfer that could not reach its target. Its Error() is
// transparent (the text stays the wrapped error's), but finishSessionJob
// lifts the address into metrics.FaultAddr so the coordinator can mark the
// machine that actually died, not the healthy worker reporting it.
type peerFaultError struct {
	addr string
	err  error
}

func (e *peerFaultError) Error() string { return e.err.Error() }
func (e *peerFaultError) Unwrap() error { return e.err }

// protoFault wraps a coordinator-side validation failure (never retryable).
func (c *sessConn) protoFault(op string, id uint32, workerID int, err error) *WorkerFault {
	return &WorkerFault{Kind: FaultUnknown, Worker: workerID, Addr: c.addr, Job: id, Err: err, op: op}
}

// markDown marks the connection to addr (if this session holds one) as
// unusable for future attempts without waiting for its read loop to observe
// the death — how a peer-reported fault excludes a worker the coordinator
// has not yet heard fail directly.
func (s *Session) markDown(addr string) {
	for _, c := range s.conns {
		if c.addr == addr {
			c.down.Store(true)
		}
	}
}

// Survivors implements exec.FaultTolerantRuntime: it returns a session view
// over the workers still usable after the faults observed so far. The view
// shares the parent's connections, job-number counter and relayed-pairs
// accounting, so jobs on the derived and parent sessions multiplex safely;
// only the conn list shrinks — spare workers dialed beyond the plan width
// substitute for the dead automatically. With every worker healthy it
// returns the session itself. It fails when no worker survives.
func (s *Session) Survivors() (exec.Runtime, int, error) {
	live := make([]*sessConn, 0, len(s.conns))
	for _, c := range s.conns {
		if !c.down.Load() && c.failedErr() == nil {
			live = append(live, c)
		}
	}
	if len(live) == len(s.conns) {
		return s, len(s.conns), nil
	}
	if len(live) == 0 {
		return nil, 0, errors.New("netexec: no surviving workers")
	}
	d := &Session{conns: live, ids: s.ids, relayed: s.relayed,
		overlapped: s.overlapped, buildOverlapped: s.buildOverlapped,
		engineUses: s.engineUses, tenant: s.tenant}
	return d, len(live), nil
}

package netexec

import (
	"sync"
	"sync/atomic"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
)

// This file is the session worker's insert-while-probe feed: when a
// count-only equality job's relations arrive as CHUNK streams and the
// effective engine resolves to hash, the read loop hands each decoded
// sub-block to a per-job feeder goroutine instead of accumulating parts for
// assembly. Relation 1 chunks insert into the incremental build (and digest
// toward the relation's content key) while later chunks are still on the
// wire; at relation 1's tail the build seals — or is swapped for a cached
// build of identical content (see localjoin.BuildCache) — and relation 2
// chunks probe it the moment they decode, never materializing at all. The
// join finishes with the stream instead of starting after it.
//
// Ownership: a chunk buffer handed to feedChunk belongs to the feeder,
// which recycles it after insert/probe. The feeder terminates on every job
// exit path — EOS (results collected via finish), job failure, abort,
// connection teardown — through the idempotent stop(); sessJob.release()
// calls it, so no path leaks the goroutine or its pending buffers.

// feedEvent is one message to the feeder goroutine: a decoded chunk of
// relation rel (keys non-nil, feeder owns the buffer; mapper orders
// relation 1's content digest), or relation rel's tail marker (keys nil).
type feedEvent struct {
	rel    int
	mapper int
	keys   []join.Key
}

// feedCap bounds the feeder channel. Small on purpose: a full channel makes
// the read loop yield to the feeder (backpressure onto TCP, exactly like
// admission), which both bounds buffering and guarantees the feeder
// interleaves with the stream instead of running after it.
const feedCap = 8

// buildFeeder runs one fed job's incremental build/probe (count mode), or —
// for a pair-streaming job — absorbs both relations' chunks off the read
// loop and pre-builds the PairTable over relation 2 at its tail (pair mode),
// so the table construction overlaps the tail frames' decode and the
// connection's other jobs instead of starting after EOS. Pair EMISSION stays
// in the job's finish goroutine (finishPairs): a job that fails between the
// tail and EOS must reply an error without having streamed any pairs.
type buildFeeder struct {
	cache *localjoin.BuildCache
	ch    chan feedEvent
	done  chan struct{}
	stopO sync.Once

	// eosSeen is set by the read loop when it decodes the job's EOS; chunks
	// the feeder consumes before that count as overlapped work.
	eosSeen atomic.Bool

	// Feeder-goroutine state, read by others only after done closes.
	build      *localjoin.Build
	sealed     bool
	digests    [][]localjoin.ChunkDigest // per relation-1 mapper, arrival order
	pending    [][]join.Key              // rel-2 chunks arriving before rel 1 sealed
	count      int64                     // probe matches so far
	overlapped int64
	cacheHit   bool

	// Pair-mode state: both relations' pooled chunk buffers accumulate
	// per-mapper in arrival order (never materializing relation 1 flat — its
	// parts probe the table directly, mapper-major); relation 2 assembles at
	// its tail into r2flat and indexes into ptab.
	pairs  bool
	parts  [2][][][]join.Key // parts[rel-1][mapper] = ordered pooled sub-blocks
	r2flat []join.Key        // pooled; nil when relation 2 arrived flat (job-owned)
	ptab   *localjoin.PairTable
}

// newBuildFeeder starts the feeder for a job whose relation 1 streams in
// mappers chunk sub-streams. cache may be nil (no build sharing). wantPairs
// selects pair mode — chunk absorption plus PairTable pre-build — over the
// count mode's incremental build/probe.
func newBuildFeeder(cache *localjoin.BuildCache, mappers int, wantPairs bool) *buildFeeder {
	f := &buildFeeder{
		cache: cache,
		ch:    make(chan feedEvent, feedCap),
		done:  make(chan struct{}),
		pairs: wantPairs,
	}
	if wantPairs {
		f.parts[0] = make([][][]join.Key, 0, mappers)
	} else {
		f.build = localjoin.NewBuild()
		f.digests = make([][]localjoin.ChunkDigest, mappers)
	}
	go f.run()
	return f
}

// feedChunk hands the feeder one decoded chunk, transferring buffer
// ownership. Read-loop side only; never called after stop or markEOS.
func (f *buildFeeder) feedChunk(rel, mapper int, keys []join.Key) {
	f.ch <- feedEvent{rel: rel, mapper: mapper, keys: keys}
}

// feedTail marks relation rel's stream complete (its CHUNK tail decoded).
func (f *buildFeeder) feedTail(rel int) {
	f.ch <- feedEvent{rel: rel}
}

// markEOS records that the job's EOS frame was decoded: chunks processed
// from here on no longer count as overlapped.
func (f *buildFeeder) markEOS() { f.eosSeen.Store(true) }

// run is the feeder goroutine: drain events until the channel closes.
func (f *buildFeeder) run() {
	defer close(f.done)
	if f.pairs {
		f.runPairs()
		return
	}
	for ev := range f.ch {
		switch {
		case ev.keys != nil && ev.rel == 1:
			if !f.eosSeen.Load() {
				f.overlapped++
			}
			f.digests[ev.mapper] = append(f.digests[ev.mapper], localjoin.DigestKeys(ev.keys))
			f.build.Insert(ev.keys)
			exec.PutKeyBuffer(ev.keys)
		case ev.keys != nil: // rel 2 probe chunk
			if !f.sealed {
				// Defensive: the coordinator streams relation 1 fully before
				// relation 2, but the protocol does not forbid interleaving —
				// park the chunk and probe it at seal time.
				f.pending = append(f.pending, ev.keys)
				continue
			}
			if !f.eosSeen.Load() {
				f.overlapped++
			}
			f.count += f.build.ProbeCount(ev.keys)
			exec.PutKeyBuffer(ev.keys)
		case ev.rel == 1:
			f.seal()
		default: // rel 2 tail: nothing to do, totals validated by the read loop
		}
	}
}

// runPairs is the feeder loop's pair mode: chunks of either relation park
// per-mapper in arrival order (moving the copy-and-assemble work that used
// to block the read loop into this goroutine), and relation 2's tail
// assembles its flat block and builds the PairTable — overlapping the
// remaining frames' decode. Relation 1 is never flattened: finishPairs
// probes its parts mapper-major, which IS its arrival order.
func (f *buildFeeder) runPairs() {
	for ev := range f.ch {
		switch {
		case ev.keys != nil:
			if !f.eosSeen.Load() {
				f.overlapped++
			}
			f.addPart(ev.rel, ev.mapper, ev.keys)
		case ev.rel == 2:
			f.sealPairs()
		default: // rel-1 tail: nothing to finalize until the table exists
		}
	}
}

// addPart parks one pooled chunk buffer under its relation and mapper,
// growing the mapper table on demand (relation 2's mapper count is declared
// on its own chunk head, which the feeder never sees).
func (f *buildFeeder) addPart(rel, mapper int, keys []join.Key) {
	ps := f.parts[rel-1]
	for len(ps) <= mapper {
		ps = append(ps, nil)
	}
	ps[mapper] = append(ps[mapper], keys)
	f.parts[rel-1] = ps
}

// sealPairs assembles relation 2 mapper-major into one pooled flat block —
// the same layout sessRel.assemble produces, so arrival indices match every
// other transport — and builds the PairTable over it.
func (f *buildFeeder) sealPairs() {
	total := 0
	for _, ps := range f.parts[1] {
		for _, p := range ps {
			total += len(p)
		}
	}
	if total == 0 {
		return // empty relation 2: no table, finishPairs emits nothing
	}
	flat := exec.GetKeyBuffer(total)
	pos := 0
	for _, ps := range f.parts[1] {
		for _, p := range ps {
			copy(flat[pos:], p)
			pos += len(p)
			exec.PutKeyBuffer(p)
		}
	}
	f.parts[1] = nil
	f.r2flat = flat
	f.ptab = localjoin.NewPairTable(flat)
}

// seal finishes the build side: combine the per-chunk digests in canonical
// mapper-major order into the relation's content key, consult the cache —
// a hit swaps in the shared sealed build of identical content, a miss
// publishes this one — and flush any parked probe chunks.
func (f *buildFeeder) seal() {
	if f.sealed {
		return
	}
	var flat []localjoin.ChunkDigest
	for _, ds := range f.digests {
		flat = append(flat, ds...)
	}
	key := localjoin.CombineDigests(flat)
	if cached := f.cache.Get(key); cached != nil {
		// Identical content already indexed by an earlier job: probe the
		// shared immutable build and drop this one. The wasted inserts were
		// overlapped with the wire anyway.
		f.build = cached
		f.cacheHit = true
	} else {
		f.build.Seal()
		f.build = f.cache.Add(key, f.build)
	}
	f.sealed = true
	for _, keys := range f.pending {
		f.count += f.build.ProbeCount(keys)
		exec.PutKeyBuffer(keys)
	}
	f.pending = nil
}

// halt closes the event channel (no feed calls may follow — callers stop
// feeding on the same code paths that call this) and waits for the feeder
// goroutine, leaving its accumulated state readable. Idempotent.
func (f *buildFeeder) halt() {
	f.stopO.Do(func() { close(f.ch) })
	<-f.done
}

// stop terminates the feeder and recycles every buffer it still holds —
// parked probe chunks, pair-mode parts, the assembled relation-2 block.
// Every job exit path lands here (via sessJob.release); after finishPairs
// consumed the pair-mode state the release loops see nil. Idempotent; safe
// after finish.
func (f *buildFeeder) stop() {
	f.halt()
	for _, keys := range f.pending {
		exec.PutKeyBuffer(keys)
	}
	f.pending = nil
	for rel := range f.parts {
		for _, ps := range f.parts[rel] {
			for _, p := range ps {
				exec.PutKeyBuffer(p)
			}
		}
		f.parts[rel] = nil
	}
	if f.r2flat != nil {
		exec.PutKeyBuffer(f.r2flat)
		f.r2flat, f.ptab = nil, nil
	}
}

// finish stops the feeder and returns its results. The build is sealed even
// if relation 1's tail never arrived (callers only read results after
// validateComplete passed, but a sealed build keeps the error paths safe).
func (f *buildFeeder) finish() (build *localjoin.Build, count, overlapped int64, cacheHit bool) {
	f.stop()
	if !f.sealed {
		f.build.Seal()
		f.sealed = true
	}
	return f.build, f.count, f.overlapped, f.cacheHit
}

// finishPairs completes a pair-mode feeder: relation 1's parked parts probe
// the PairTable mapper-major (their arrival order, so indices match every
// other transport) and the pair chunks stream through emit. Runs in the
// job's finish goroutine only after validateComplete passed — a failed job
// never emits pairs. r2 supplies the flat relation-2 block for the mixed
// case (chunked relation 1, flat relation 2), where the feeder never saw
// relation 2; a table pre-built at the chunk tail wins. Returns the pair
// count and the overlapped-chunk tally.
func (f *buildFeeder) finishPairs(r2 []join.Key, emit func([]exec.PairIdx)) (int64, int64) {
	f.halt()
	defer f.stop() // recycles the parts and the assembled block probed below
	t := f.ptab
	if t == nil {
		n1 := 0
		for _, ps := range f.parts[0] {
			for _, p := range ps {
				n1 += len(p)
			}
		}
		if n1 == 0 || len(r2) == 0 {
			return 0, f.overlapped // empty side: no table, no flush (as hashJoinPairs)
		}
		t = localjoin.NewPairTable(r2)
	}
	s := exec.NewPairStreamer(t, emit)
	for _, ps := range f.parts[0] {
		for _, p := range ps {
			s.Probe(p)
		}
	}
	return s.Finish(), f.overlapped
}

package netexec

import (
	"sync"
	"sync/atomic"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
)

// This file is the session worker's insert-while-probe feed: when a
// count-only equality job's relations arrive as CHUNK streams and the
// effective engine resolves to hash, the read loop hands each decoded
// sub-block to a per-job feeder goroutine instead of accumulating parts for
// assembly. Relation 1 chunks insert into the incremental build (and digest
// toward the relation's content key) while later chunks are still on the
// wire; at relation 1's tail the build seals — or is swapped for a cached
// build of identical content (see localjoin.BuildCache) — and relation 2
// chunks probe it the moment they decode, never materializing at all. The
// join finishes with the stream instead of starting after it.
//
// Ownership: a chunk buffer handed to feedChunk belongs to the feeder,
// which recycles it after insert/probe. The feeder terminates on every job
// exit path — EOS (results collected via finish), job failure, abort,
// connection teardown — through the idempotent stop(); sessJob.release()
// calls it, so no path leaks the goroutine or its pending buffers.

// feedEvent is one message to the feeder goroutine: a decoded chunk of
// relation rel (keys non-nil, feeder owns the buffer; mapper orders
// relation 1's content digest), or relation rel's tail marker (keys nil).
type feedEvent struct {
	rel    int
	mapper int
	keys   []join.Key
}

// feedCap bounds the feeder channel. Small on purpose: a full channel makes
// the read loop yield to the feeder (backpressure onto TCP, exactly like
// admission), which both bounds buffering and guarantees the feeder
// interleaves with the stream instead of running after it.
const feedCap = 8

// buildFeeder runs one fed job's incremental build/probe.
type buildFeeder struct {
	cache *localjoin.BuildCache
	ch    chan feedEvent
	done  chan struct{}
	stopO sync.Once

	// eosSeen is set by the read loop when it decodes the job's EOS; chunks
	// the feeder consumes before that count as overlapped work.
	eosSeen atomic.Bool

	// Feeder-goroutine state, read by others only after done closes.
	build      *localjoin.Build
	sealed     bool
	digests    [][]localjoin.ChunkDigest // per relation-1 mapper, arrival order
	pending    [][]join.Key              // rel-2 chunks arriving before rel 1 sealed
	count      int64                     // probe matches so far
	overlapped int64
	cacheHit   bool
}

// newBuildFeeder starts the feeder for a job whose relation 1 streams in
// mappers chunk sub-streams. cache may be nil (no build sharing).
func newBuildFeeder(cache *localjoin.BuildCache, mappers int) *buildFeeder {
	f := &buildFeeder{
		cache:   cache,
		ch:      make(chan feedEvent, feedCap),
		done:    make(chan struct{}),
		build:   localjoin.NewBuild(),
		digests: make([][]localjoin.ChunkDigest, mappers),
	}
	go f.run()
	return f
}

// feedChunk hands the feeder one decoded chunk, transferring buffer
// ownership. Read-loop side only; never called after stop or markEOS.
func (f *buildFeeder) feedChunk(rel, mapper int, keys []join.Key) {
	f.ch <- feedEvent{rel: rel, mapper: mapper, keys: keys}
}

// feedTail marks relation rel's stream complete (its CHUNK tail decoded).
func (f *buildFeeder) feedTail(rel int) {
	f.ch <- feedEvent{rel: rel}
}

// markEOS records that the job's EOS frame was decoded: chunks processed
// from here on no longer count as overlapped.
func (f *buildFeeder) markEOS() { f.eosSeen.Store(true) }

// run is the feeder goroutine: drain events until the channel closes.
func (f *buildFeeder) run() {
	defer close(f.done)
	for ev := range f.ch {
		switch {
		case ev.keys != nil && ev.rel == 1:
			if !f.eosSeen.Load() {
				f.overlapped++
			}
			f.digests[ev.mapper] = append(f.digests[ev.mapper], localjoin.DigestKeys(ev.keys))
			f.build.Insert(ev.keys)
			exec.PutKeyBuffer(ev.keys)
		case ev.keys != nil: // rel 2 probe chunk
			if !f.sealed {
				// Defensive: the coordinator streams relation 1 fully before
				// relation 2, but the protocol does not forbid interleaving —
				// park the chunk and probe it at seal time.
				f.pending = append(f.pending, ev.keys)
				continue
			}
			if !f.eosSeen.Load() {
				f.overlapped++
			}
			f.count += f.build.ProbeCount(ev.keys)
			exec.PutKeyBuffer(ev.keys)
		case ev.rel == 1:
			f.seal()
		default: // rel 2 tail: nothing to do, totals validated by the read loop
		}
	}
}

// seal finishes the build side: combine the per-chunk digests in canonical
// mapper-major order into the relation's content key, consult the cache —
// a hit swaps in the shared sealed build of identical content, a miss
// publishes this one — and flush any parked probe chunks.
func (f *buildFeeder) seal() {
	if f.sealed {
		return
	}
	var flat []localjoin.ChunkDigest
	for _, ds := range f.digests {
		flat = append(flat, ds...)
	}
	key := localjoin.CombineDigests(flat)
	if cached := f.cache.Get(key); cached != nil {
		// Identical content already indexed by an earlier job: probe the
		// shared immutable build and drop this one. The wasted inserts were
		// overlapped with the wire anyway.
		f.build = cached
		f.cacheHit = true
	} else {
		f.build.Seal()
		f.build = f.cache.Add(key, f.build)
	}
	f.sealed = true
	for _, keys := range f.pending {
		f.count += f.build.ProbeCount(keys)
		exec.PutKeyBuffer(keys)
	}
	f.pending = nil
}

// stop terminates the feeder and waits for it: close the event channel (no
// feed calls may follow — callers stop feeding on the same code paths that
// call this) and drop any parked buffers. Idempotent; safe after finish.
func (f *buildFeeder) stop() {
	f.stopO.Do(func() { close(f.ch) })
	<-f.done
	for _, keys := range f.pending {
		exec.PutKeyBuffer(keys)
	}
	f.pending = nil
}

// finish stops the feeder and returns its results. The build is sealed even
// if relation 1's tail never arrived (callers only read results after
// validateComplete passed, but a sealed build keeps the error paths safe).
func (f *buildFeeder) finish() (build *localjoin.Build, count, overlapped int64, cacheHit bool) {
	f.stop()
	if !f.sealed {
		f.build.Seal()
		f.sealed = true
	}
	return f.build, f.count, f.overlapped, f.cacheHit
}

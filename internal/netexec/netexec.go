// Package netexec runs the shared-nothing join over real TCP workers: a
// coordinator batch-routes both relations once with the engine's two-pass
// zero-copy shuffle and streams each worker one contiguous, length-prefixed
// binary key block per relation (plus an optional payload segment); each
// worker decodes into exactly-sized pooled flat buffers, joins in place (or
// streams matched index pairs back) and reports its metrics. It is the
// process-distributed counterpart of internal/exec's goroutine engine — same
// partitioning schemes, same shuffle, same metrics — demonstrating that
// nothing in the EWH design depends on shared memory.
//
// The production transport is the v3 session protocol (Dial/Session,
// implementing exec.Runtime): one persistent connection per worker with
// numbered jobs multiplexed over it, so N jobs cost one dial per worker.
// The v2 one-shot path (Run, one dial per worker per job) is retained as
// the tracked per-job-dial baseline, and the v1 gob protocol (RunGob) as
// the wire-format baseline; workers sniff each connection's opening bytes
// and serve all three, and the benchmark suite keeps the paths honest
// against each other. See wire.go for the framing and DESIGN.md for the
// session protocol and its versioning rules.
package netexec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"sync/atomic"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// handshake opens a job on a worker. N1/N2 carry the exact per-relation
// tuple counts the coordinator's shuffle computed, so the worker allocates
// its receive buffers exactly once at exactly the right size (v2 only; the
// v1 gob path ignores them and grows buffers batch by batch).
type handshake struct {
	WorkerID int
	Cond     join.Spec
	Wi, Wo   float64
	N1, N2   int64
}

// batch carries a chunk of routed tuples on the v1 gob path; Rel is 1 or 2.
type batch struct {
	Rel  int8
	Keys []join.Key
	// EOS marks the end of the job's tuple stream.
	EOS bool
}

// metrics is the worker's report. PayBytes1/PayBytes2 report the payload
// segment bytes received per relation (v3 session jobs only), so the
// coordinator can assert the payload path end to end. PeerCounts, present
// only on stage-1 plan jobs, is the sender's per-receiver routed tuple
// counts — the ONLY thing about the re-shuffled intermediate the
// coordinator ever receives.
type metrics struct {
	InputR1, InputR2     int64
	Output               int64
	Nanos                int64
	PayBytes1, PayBytes2 int64
	PeerCounts           []int64
	Err                  string

	// FaultAddr names the PEER whose failure caused Err, when the job died
	// streaming its matches to another worker rather than locally — the
	// coordinator marks that address down instead of this (healthy) worker's.
	// Gob-compatible addition: absent on old wires, decoded as "".
	FaultAddr string

	// Code types the failure in Err for machine handling: codeAdmission or
	// codeQuota mark multi-tenant policy rejections the coordinator must
	// surface as ErrAdmission/ErrQuota rather than worker faults.
	// Gob-compatible addition: absent on old wires, decoded as 0.
	Code int

	// BuildOverlapped counts the CHUNK sub-blocks this job's hash engine
	// consumed (inserted or probed) BEFORE the read loop decoded the job's
	// EOS — the observable proving the build/probe work overlapped the
	// still-streaming scatter instead of waiting out assembly (the local
	// analog of OverlappedStage2). Gob-compatible addition: decoded as 0 on
	// old wires and on merge-engine jobs.
	BuildOverlapped int64

	// Engine echoes the RESOLVED local-join engine that served the job (1
	// merge, 2 hash) so the coordinator can audit its selection end to end —
	// the observable that pins per-job engine hints on peer opens actually
	// reaching the worker. Gob-compatible addition: decoded as 0 (unreported)
	// from workers predating the field.
	Engine int
}

// jobOpen opens one numbered job on a v3 session connection. Counts travel
// separately in per-relation head frames, so a job can start streaming its
// first relation before the second one's shuffle has finished. Engine is
// the coordinator's exec.JoinEngine selection; gob decodes it as 0
// (EngineAuto) from coordinators predating the field.
type jobOpen struct {
	WorkerID  int
	Cond      join.Spec
	WantPairs bool
	Engine    int
}

// planSpec rides a frameV3Plan alongside a stage-1 job: the job's matches
// feed the broadcast plan instead of streaming back as pairs. Plan is a
// planio-encoded artifact (scheme + routing seed); Peers is the stage-2
// worker address map; Self is this worker's own index in Peers (-1 when it
// hosts no stage-2 worker), so self-contributions move in memory instead of
// over a socket.
//
// A STATS-DEFERRED plan job sets WantStats and leaves Plan/Peers empty: the
// worker joins, summarizes its matches (StatsCap/StatsBuckets/StatsSeed size
// the summary; the per-sender sampling stream derives from StatsSeed and the
// worker id), ships the summary in a frameV3Stats and waits for a
// frameV3Plan2 carrying a second planSpec with the real Plan, Peers and
// Self before routing. The same struct rides both frames.
type planSpec struct {
	Token uint64
	Plan  []byte
	Peers []string
	Self  int

	WantStats    bool
	StatsCap     int
	StatsBuckets int
	StatsSeed    uint64
	// StatsAdaptive lets the worker shrink its sample cap below StatsCap
	// when its local match count is small (sample.AdaptiveCap); StatsCap
	// stays the hard ceiling.
	StatsAdaptive bool
}

// peerJobOpen opens a stage-2 job whose relation 1 arrives from peer workers
// rather than from the coordinator. SenderCounts[s] is the exact tuple count
// sender s routed to this worker (reported by the stage-1 metrics), so the
// receiver assembles a deterministic sender-ordered block and knows exactly
// when the peer transfer is complete.
//
// CountsDeferred is the stage-overlapped variant: the coordinator opens the
// job (and streams the right relation) WHILE stage 1 still runs, before any
// count exists. SenderCounts is empty; the exact counts follow in a
// frameV3PeerBind once every stage-1 metrics frame has landed, and the
// worker parks on the transfer token exactly as it already does for slow
// peer transfers. Pre-bind buffering stays capped by the per-transfer
// declared-count ceiling; the tenant charge for the assembled block moves to
// assembly time, where its size is first known.
type peerJobOpen struct {
	WorkerID       int
	Cond           join.Spec
	Token          uint64
	SenderCounts   []int64
	CountsDeferred bool

	// Engine is the coordinator's exec.JoinEngine selection for the stage-2
	// local join, same contract as jobOpen.Engine. Gob-compatible addition:
	// decoded as 0 (EngineAuto) from coordinators predating the field, which
	// resolves to the worker's configured default — the old behavior.
	Engine int
}

// peerBind delivers a counts-deferred peer job's exact per-sender counts.
// It is keyed by transfer token rather than job id: the job's EOS retired
// the id from the connection's demux table long before stage 1 finished.
type peerBind struct {
	Token        uint64
	SenderCounts []int64
}

// planCancel discards a worker's buffered peer state for an abandoned plan
// (the coordinator failed the pipeline between broadcasting the plan and
// opening the stage-2 jobs).
type planCancel struct {
	Token uint64
}

// BatchSize is the number of keys per shipped batch on the v1 gob path.
const BatchSize = 8192

// MaxRelationTuples bounds the per-relation count a v2 handshake may
// declare (1G keys = 8 GiB). The worker allocates receive buffers from the
// declared counts before any data arrives, so without this cap one
// malformed or hostile connection could OOM the whole worker process.
const MaxRelationTuples = 1 << 30

// connBufSize sizes the per-connection buffered reader/writer.
const connBufSize = 64 << 10

// Worker is a join worker server. One-shot connections (v1 gob, v2 binary)
// process a single job each; v3 session connections stay open and serve
// numbered jobs until the coordinator hangs up. The connection's opening
// bytes select the protocol. Close kills the worker abruptly (listener and
// every live connection); Shutdown drains in-flight jobs first.
type Worker struct {
	ln     net.Listener
	closed chan struct{}
	kill   chan struct{} // closed by Close: abandon peer waits immediately

	timeouts Timeouts // set before Serve; see SetTimeouts

	mu       sync.Mutex
	conns    map[*connState]struct{}
	draining bool           // no new jobs; set by Shutdown AND Close
	killed   bool           // connections must not be served at all; set by Close
	jobs     sync.WaitGroup // in-flight jobs across all connections

	// Peer mesh: outbound connections this worker dialed to stream its
	// stage-1 matches to peers (lazily dialed, persistent), and inbound
	// transfer state keyed by token (see peer.go). cancelRing records the
	// most recently cancelled tokens so a cancellation survives even when
	// the token table is full of live transfers and cannot hold a
	// tombstone (guarded by peersMu; cancelNext is the next write slot).
	peersMu    sync.Mutex
	peers      map[string]*peerConn
	peerStates map[uint64]*peerJobState
	cancelRing [256]uint64
	cancelNext uint64

	// failAfter > 0 schedules an abrupt self-Close after that many completed
	// jobs (see FailAfterJobs); jobsDone counts completions toward it and
	// failFired makes the kill fire exactly once.
	failAfter atomic.Int64
	jobsDone  atomic.Int64
	failFired atomic.Bool

	// Multi-tenant policy (see tenant.go): admit gates concurrent join
	// execution with weighted-fair queuing (nil: disabled), tenants tracks
	// per-tenant budgets and live byte usage.
	admit   *admitter
	tenants *tenantTable

	// joinEngine is the worker-side default local-join engine, applied when
	// a job opens with EngineAuto; a job's explicit merge/hash selection
	// wins. Set before Serve (see SetJoinEngine).
	joinEngine exec.JoinEngine
	// buildCache shares sealed hash builds between jobs indexing the same
	// relation content — across sessions and tenants, since a sealed build
	// is immutable and content-addressed (see localjoin.BuildCache). Nil
	// disables caching.
	buildCache *localjoin.BuildCache
}

// connState tracks one accepted connection for shutdown: active counts the
// connection's in-flight jobs (one for the whole lifetime of a v1/v2
// connection, per open job for v3 sessions). peer marks inbound peer-mesh
// connections, which Shutdown must keep open until the job drain completes —
// an in-flight stage-2 job may still be receiving tuples over them;
// classified flips once the protocol sniff has run, so the drain never
// closes a connection it cannot yet tell apart from a peer transfer.
type connState struct {
	conn       net.Conn
	active     int // guarded by Worker.mu
	peer       bool
	classified bool
}

// ListenWorker starts a worker on addr ("127.0.0.1:0" picks a free port).
// Serve must be called to accept jobs.
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netexec: listen %s: %w", addr, err)
	}
	return ListenWorkerOn(ln), nil
}

// ListenWorkerOn starts a worker on an already-bound listener — the seam the
// fault-injection harness uses to interpose a faultnet wrapper between the
// wire and the worker without the worker knowing.
func ListenWorkerOn(ln net.Listener) *Worker {
	return &Worker{
		ln:         ln,
		closed:     make(chan struct{}),
		kill:       make(chan struct{}),
		conns:      make(map[*connState]struct{}),
		peers:      make(map[string]*peerConn),
		peerStates: make(map[uint64]*peerJobState),
		tenants:    newTenantTable(),
		buildCache: localjoin.NewBuildCache(DefaultBuildCacheBytes),
	}
}

// DefaultBuildCacheBytes is the worker's default build-side cache budget.
// The cache holds sealed hash-engine builds (content-addressed, shared
// across sessions and tenants); its tables live outside the per-tenant byte
// budgets, bounded globally by this cap instead.
const DefaultBuildCacheBytes = 64 << 20

// SetBuildCacheBytes resizes the worker's build-side cache budget; <= 0
// disables caching entirely. Call before Serve.
func (w *Worker) SetBuildCacheBytes(n int64) {
	w.buildCache = localjoin.NewBuildCache(n)
}

// BuildCacheStats snapshots the worker's build-cache counters — the
// cache-hit observability the multi-tenant load harness reports.
func (w *Worker) BuildCacheStats() localjoin.BuildCacheStats {
	return w.buildCache.Stats()
}

// SetJoinEngine sets the worker-side default local-join engine, applied to
// jobs that open with exec.EngineAuto; a job's explicit merge/hash
// selection always wins. Engines are count- and pair-identical, so this is
// a fleet performance knob, not a correctness one. Call before Serve.
func (w *Worker) SetJoinEngine(e exec.JoinEngine) { w.joinEngine = e }

// effectiveEngine resolves a job's wire engine selection against the
// worker default.
func (w *Worker) effectiveEngine(wire int) exec.JoinEngine {
	e := exec.JoinEngine(wire)
	if e != exec.EngineMerge && e != exec.EngineHash {
		e = exec.EngineAuto // unknown future values degrade to auto
	}
	if e == exec.EngineAuto {
		e = w.joinEngine
	}
	return e
}

// FailAfterJobs schedules the worker to kill itself (abrupt Close, as a
// crash would) after completing n jobs — a build-tag-free testing hook the
// load-test harness and ewhworker's -fail-after flag use to take workers
// down on a deterministic schedule. Zero or negative disables the hook.
// Call before Serve.
func (w *Worker) FailAfterJobs(n int) {
	w.failAfter.Store(int64(n))
}

// Addr returns the worker's bound address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetTimeouts configures the worker's dial and IO deadlines (peer dials,
// per-operation reads/writes on session and peer connections). Call before
// Serve; the zero value disables deadlines.
func (w *Worker) SetTimeouts(t Timeouts) { w.timeouts = t }

// Close stops the worker abruptly: the listener and every live connection
// are closed, killing in-flight jobs (their coordinators see the broken
// connection). A connection accepted concurrently with Close is closed by
// its own handler via the killed flag, so none survives. Use Shutdown for
// a graceful drain.
func (w *Worker) Close() error {
	err := w.stopAccepting()
	w.mu.Lock()
	w.draining = true
	if !w.killed {
		w.killed = true
		close(w.kill) // abandon any job waiting on peer transfers
	}
	for cs := range w.conns {
		_ = cs.conn.Close()
	}
	w.mu.Unlock()
	w.closePeers()
	return err
}

// closePeers hangs up the worker's outbound peer-mesh connections.
func (w *Worker) closePeers() {
	w.peersMu.Lock()
	peers := w.peers
	w.peers = make(map[string]*peerConn)
	w.peersMu.Unlock()
	for _, pc := range peers {
		pc.close()
	}
}

// stopAccepting closes the listener exactly once.
func (w *Worker) stopAccepting() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case <-w.closed:
		return nil
	default:
	}
	close(w.closed)
	return w.ln.Close()
}

// Shutdown stops the worker gracefully: it closes the listener, lets every
// in-flight job finish and reply, then closes the remaining connections
// (idle session connections close immediately — there is no job to drain
// on them). New jobs arriving on live sessions during the drain are
// refused with an error reply. If ctx expires first, the remaining
// connections are closed abruptly and ctx's error is returned.
func (w *Worker) Shutdown(ctx context.Context) error {
	_ = w.stopAccepting()
	w.mu.Lock()
	w.draining = true
	for cs := range w.conns {
		// Peer-mesh connections are never "idle" in the job sense: an
		// in-flight stage-2 job may still be receiving tuples over them, so
		// they only close once the drain completes — and an unclassified
		// connection (accepted, prelude not yet parsed) might BE one, so it
		// is spared too. The drain itself also covers this worker's OUTBOUND
		// peer transfers — a stage-1 plan job streams its contributions to
		// peers before it replies, so jobs.Wait returning means every
		// outbound transfer has flushed.
		if cs.active == 0 && cs.classified && !cs.peer {
			_ = cs.conn.Close()
		}
	}
	w.mu.Unlock()

	done := make(chan struct{})
	go func() {
		w.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		w.mu.Lock()
		for cs := range w.conns {
			_ = cs.conn.Close()
		}
		w.mu.Unlock()
		w.closePeers()
		return ctx.Err()
	}
	// Every job replied; busy connections closed themselves as their last
	// job ended (see endJob), so only post-drain stragglers (and the kept-
	// open peer connections) remain.
	w.mu.Lock()
	for cs := range w.conns {
		_ = cs.conn.Close()
	}
	w.mu.Unlock()
	w.closePeers()
	return nil
}

// classify records the outcome of a connection's protocol sniff for the
// shutdown logic.
func (w *Worker) classify(cs *connState, peer bool) {
	w.mu.Lock()
	cs.classified = true
	cs.peer = peer
	w.mu.Unlock()
}

// beginJob registers an in-flight job on cs. It refuses (returns false)
// when the worker is draining.
func (w *Worker) beginJob(cs *connState) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return false
	}
	cs.active++
	w.jobs.Add(1)
	return true
}

// endJob retires an in-flight job; the connection closes itself when the
// worker is draining and this was its last job. When a FailAfterJobs
// schedule is armed and this completion reaches it, the worker kills itself
// abruptly — from a goroutine, since Close waits on nothing but must not
// run under the caller's locks.
func (w *Worker) endJob(cs *connState) {
	w.mu.Lock()
	cs.active--
	closeNow := w.draining && cs.active == 0
	w.mu.Unlock()
	w.jobs.Done()
	if closeNow {
		_ = cs.conn.Close()
	}
	if n := w.failAfter.Load(); n > 0 && w.jobsDone.Add(1) >= n &&
		w.failFired.CompareAndSwap(false, true) {
		go func() { _ = w.Close() }()
	}
}

// Serve accepts and processes jobs until Close or Shutdown. It returns nil
// after either.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return nil
			default:
				return fmt.Errorf("netexec: accept: %w", err)
			}
		}
		go w.handle(conn)
	}
}

// handle sniffs the protocol: magic-opening connections carry a version
// that selects the v2 one-shot or v3 session handler, anything else is
// treated as a v1 gob stream. A panic while serving one connection must not
// take down the worker process (and every other in-flight job with it), so
// it is contained here; the coordinator sees the closed connection as a
// job failure.
func (w *Worker) handle(conn net.Conn) {
	cs := &connState{conn: conn}
	w.mu.Lock()
	// killed (the Close path) rejects outright — a connection that registers
	// after the flag flipped was accepted concurrently, so Close's iteration
	// missed it. A DRAINING worker still serves new connections: job opens
	// are refused politely by beginJob, but peer-mesh dials must get through
	// — a sender's in-flight stage-1 job may need to deliver its
	// contribution to this worker for the drain to complete at all.
	if w.killed {
		w.mu.Unlock()
		_ = conn.Close()
		return
	}
	w.conns[cs] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.conns, cs)
		w.mu.Unlock()
	}()

	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "netexec: worker: recovered serving %s: %v\n%s",
				conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	tc := newTimedConn(conn, w.timeouts.IO)
	br := bufio.NewReaderSize(tc, connBufSize)
	head, err := br.Peek(len(protoMagic))
	if err == nil && bytes.Equal(head, protoMagic[:]) {
		var prelude [len(protoMagic) + 2]byte
		if _, err := io.ReadFull(br, prelude[:]); err != nil {
			return
		}
		switch v := binary.LittleEndian.Uint16(prelude[len(protoMagic):]); v {
		case protoVersion:
			w.classify(cs, false)
			w.handleBinary(br, conn, cs)
		case protoVersionSession:
			w.classify(cs, false)
			w.handleSession(br, tc, cs)
		case protoVersionPeer:
			w.classify(cs, true)
			w.handlePeer(br, tc)
		default:
			bw := bufio.NewWriterSize(conn, 512)
			_ = writeGobFrame(bw, frameMetrics, metrics{
				Err: fmt.Sprintf("protocol version %d, worker speaks %d, %d and %d",
					v, protoVersion, protoVersionSession, protoVersionPeer)})
			_ = bw.Flush()
		}
		return
	}
	w.classify(cs, false)
	w.handleGob(br, conn, cs)
}

// handleBinary serves one v2 job (the prelude was already consumed by the
// protocol sniff): handshake, exactly-sized pooled receive buffers, block
// decode, in-place local join, metrics frame.
func (w *Worker) handleBinary(br *bufio.Reader, conn net.Conn, cs *connState) {
	if !w.beginJob(cs) {
		bw := bufio.NewWriterSize(conn, 512)
		_ = writeGobFrame(bw, frameMetrics, metrics{Err: "worker shutting down"})
		_ = bw.Flush()
		return
	}
	defer w.endJob(cs)
	bw := bufio.NewWriterSize(conn, connBufSize)
	fail := func(err error) {
		_ = writeGobFrame(bw, frameMetrics, metrics{Err: err.Error()})
		_ = bw.Flush()
		// Drain what the coordinator is still streaming before the deferred
		// close: closing with unread data in the receive buffer sends RST,
		// which would destroy the queued error frame before the coordinator
		// reads it. Bounded by a deadline so a wedged peer can't pin the
		// goroutine.
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		_, _ = io.Copy(io.Discard, br)
	}

	var hs handshake
	if err := readGobFrame(br, frameHandshake, &hs); err != nil {
		fail(fmt.Errorf("handshake: %w", err))
		return
	}
	cond, err := hs.Cond.Condition()
	if err != nil {
		fail(err)
		return
	}
	if hs.N1 < 0 || hs.N2 < 0 || hs.N1 > MaxRelationTuples || hs.N2 > MaxRelationTuples {
		fail(fmt.Errorf("relation counts %d/%d outside [0, %d]", hs.N1, hs.N2, MaxRelationTuples))
		return
	}
	r1 := exec.GetKeyBuffer(int(hs.N1))
	r2 := exec.GetKeyBuffer(int(hs.N2))
	defer func() {
		exec.PutKeyBuffer(r1)
		exec.PutKeyBuffer(r2)
	}()
	var pos1, pos2 int
stream:
	for {
		typ, n, err := readFrameHeader(br)
		if err != nil {
			fail(fmt.Errorf("frame: %w", err))
			return
		}
		switch typ {
		case frameBlock:
			if err := readKeyBlock(br, n, r1, r2, &pos1, &pos2); err != nil {
				fail(fmt.Errorf("block: %w", err))
				return
			}
		case frameEOS:
			break stream
		default:
			fail(fmt.Errorf("unexpected frame type %d mid-stream", typ))
			return
		}
	}
	if pos1 != len(r1) || pos2 != len(r2) {
		fail(fmt.Errorf("stream ended at %d/%d tuples, handshake declared %d/%d",
			pos1, pos2, len(r1), len(r2)))
		return
	}
	start := time.Now()
	// The worker owns the pooled buffers outright, so the join sorts them in
	// place — no defensive clones on the remote hot path either.
	out := localjoin.AutoCountOwned(r1, r2, cond)
	_ = writeGobFrame(bw, frameMetrics, metrics{
		InputR1: hs.N1,
		InputR2: hs.N2,
		Output:  out,
		Nanos:   time.Since(start).Nanoseconds(),
	})
	_ = bw.Flush()
}

// handleGob serves one v1 job (the seed protocol): gob handshake, gob tuple
// batches appended into growing buffers, local join, gob metrics.
func (w *Worker) handleGob(br *bufio.Reader, conn net.Conn, cs *connState) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)

	fail := func(err error) {
		_ = enc.Encode(metrics{Err: err.Error()})
	}
	if !w.beginJob(cs) {
		fail(fmt.Errorf("worker shutting down"))
		return
	}
	defer w.endJob(cs)

	var hs handshake
	if err := dec.Decode(&hs); err != nil {
		fail(fmt.Errorf("handshake: %w", err))
		return
	}
	cond, err := hs.Cond.Condition()
	if err != nil {
		fail(err)
		return
	}
	var r1, r2 []join.Key
	for {
		var b batch
		if err := dec.Decode(&b); err != nil {
			fail(fmt.Errorf("batch: %w", err))
			return
		}
		if b.EOS {
			break
		}
		switch b.Rel {
		case 1:
			r1 = append(r1, b.Keys...)
		case 2:
			r2 = append(r2, b.Keys...)
		default:
			fail(fmt.Errorf("batch for unknown relation %d", b.Rel))
			return
		}
	}
	start := time.Now()
	out := localjoin.AutoCount(r1, r2, cond)
	_ = enc.Encode(metrics{
		InputR1: int64(len(r1)),
		InputR2: int64(len(r2)),
		Output:  out,
		Nanos:   time.Since(start).Nanoseconds(),
	})
}

// Run shuffles the relations to the remote workers with the v2 binary
// protocol and returns the aggregated result. The routing happens once on
// the coordinator via the engine's batch-routed two-pass shuffle
// (exec.ShufflePair, honoring cfg.Seed and cfg.Mappers), so each worker's
// blocks are read straight out of contiguous flat memory; with the same cfg
// the per-worker tuple sets are identical to an in-process exec.Run. The
// scheme must not need more workers than addrs provides; extra addresses
// stay idle.
func Run(addrs []string, r1, r2 []join.Key, cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg exec.Config) (*exec.Result, error) {

	j := scheme.Workers()
	if j > len(addrs) {
		return nil, fmt.Errorf("netexec: scheme needs %d workers, only %d addresses", j, len(addrs))
	}
	spec, err := join.SpecOf(cond)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	s1, s2 := exec.ShufflePair(r1, r2, scheme, cfg)
	res := &exec.Result{Scheme: scheme.Name() + "@net", Workers: make([]exec.WorkerMetrics, j)}
	errs := make([]error, j)
	var wg sync.WaitGroup
	for wID := 0; wID < j; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			m, err := runWorkerJob(addrs[wID], wID, spec, model, s1.Worker(wID), s2.Worker(wID))
			if err != nil {
				errs[wID] = err
				return
			}
			recordWorker(&res.Workers[wID], m, model)
		}(wID)
	}
	wg.Wait()
	s1.Release()
	s2.Release()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	aggregate(res, start, cfg.BytesPerTuple)
	return res, nil
}

// runWorkerJob ships one worker's relations over a v2 connection.
func runWorkerJob(addr string, workerID int, spec join.Spec, model cost.Model,
	r1, r2 []join.Key) (*metrics, error) {

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netexec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, connBufSize)

	var prelude [len(protoMagic) + 2]byte
	copy(prelude[:], protoMagic[:])
	binary.LittleEndian.PutUint16(prelude[len(protoMagic):], protoVersion)
	if _, err := bw.Write(prelude[:]); err != nil {
		return nil, fmt.Errorf("netexec: prelude to %s: %w", addr, err)
	}
	hs := handshake{WorkerID: workerID, Cond: spec, Wi: model.Wi, Wo: model.Wo,
		N1: int64(len(r1)), N2: int64(len(r2))}
	if err := writeGobFrame(bw, frameHandshake, hs); err != nil {
		return nil, fmt.Errorf("netexec: handshake to %s: %w", addr, err)
	}
	if err := writeKeyBlocks(bw, 1, r1); err != nil {
		return nil, fmt.Errorf("netexec: send to %s: %w", addr, err)
	}
	if err := writeKeyBlocks(bw, 2, r2); err != nil {
		return nil, fmt.Errorf("netexec: send to %s: %w", addr, err)
	}
	if err := writeFrameHeader(bw, frameEOS, 0); err != nil {
		return nil, fmt.Errorf("netexec: eos to %s: %w", addr, err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("netexec: flush to %s: %w", addr, err)
	}
	var m metrics
	if err := readGobFrame(bufio.NewReaderSize(conn, 512), frameMetrics, &m); err != nil {
		return nil, fmt.Errorf("netexec: metrics from %s: %w", addr, err)
	}
	if m.Err != "" {
		return nil, fmt.Errorf("netexec: worker %s: %s", addr, m.Err)
	}
	return &m, nil
}

// RunGob is the v1 baseline: tuples are routed one at a time on the
// coordinator into per-worker append buffers and shipped as gob-encoded
// batches. It is retained (and served by the same workers) as the
// measured-against baseline for the binary protocol in the benchmark suite,
// and as the compatibility path for per-tuple Scheme implementations outside
// internal/partition. Only cfg.Seed and cfg.BytesPerTuple are honored — the
// v1 path has no mapper parallelism.
func RunGob(addrs []string, r1, r2 []join.Key, cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg exec.Config) (*exec.Result, error) {

	j := scheme.Workers()
	if j > len(addrs) {
		return nil, fmt.Errorf("netexec: scheme needs %d workers, only %d addresses", j, len(addrs))
	}
	spec, err := join.SpecOf(cond)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Route locally into per-worker buffers (the mapper side), one tuple at
	// a time.
	perWorker1 := make([][]join.Key, j)
	perWorker2 := make([][]join.Key, j)
	rng := stats.NewRNG(cfg.Seed)
	var buf []int
	for _, k := range r1 {
		buf = scheme.RouteR1(k, rng, buf[:0])
		for _, w := range buf {
			perWorker1[w] = append(perWorker1[w], k)
		}
	}
	for _, k := range r2 {
		buf = scheme.RouteR2(k, rng, buf[:0])
		for _, w := range buf {
			perWorker2[w] = append(perWorker2[w], k)
		}
	}

	res := &exec.Result{Scheme: scheme.Name() + "@gob", Workers: make([]exec.WorkerMetrics, j)}
	errs := make([]error, j)
	var wg sync.WaitGroup
	for wID := 0; wID < j; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			m, err := runWorkerJobGob(addrs[wID], wID, spec, model, perWorker1[wID], perWorker2[wID])
			if err != nil {
				errs[wID] = err
				return
			}
			recordWorker(&res.Workers[wID], m, model)
		}(wID)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	aggregate(res, start, cfg.BytesPerTuple)
	return res, nil
}

func runWorkerJobGob(addr string, workerID int, spec join.Spec, model cost.Model,
	r1, r2 []join.Key) (*metrics, error) {

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netexec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(handshake{WorkerID: workerID, Cond: spec, Wi: model.Wi, Wo: model.Wo}); err != nil {
		return nil, fmt.Errorf("netexec: handshake to %s: %w", addr, err)
	}
	send := func(rel int8, keys []join.Key) error {
		for off := 0; off < len(keys); off += BatchSize {
			end := off + BatchSize
			if end > len(keys) {
				end = len(keys)
			}
			if err := enc.Encode(batch{Rel: rel, Keys: keys[off:end]}); err != nil {
				return fmt.Errorf("netexec: send to %s: %w", addr, err)
			}
		}
		return nil
	}
	if err := send(1, r1); err != nil {
		return nil, err
	}
	if err := send(2, r2); err != nil {
		return nil, err
	}
	if err := enc.Encode(batch{EOS: true}); err != nil {
		return nil, fmt.Errorf("netexec: eos to %s: %w", addr, err)
	}
	var m metrics
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("netexec: metrics from %s: %w", addr, err)
	}
	if m.Err != "" {
		return nil, fmt.Errorf("netexec: worker %s: %s", addr, m.Err)
	}
	return &m, nil
}

// recordWorker folds one worker's reply into the result slot.
func recordWorker(wm *exec.WorkerMetrics, m *metrics, model cost.Model) {
	wm.InputR1 = m.InputR1
	wm.InputR2 = m.InputR2
	wm.Output = m.Output
	wm.Work = model.Weight(float64(m.InputR1+m.InputR2), float64(m.Output))
}

// aggregate computes the run-level metrics from the per-worker slots.
// bytesPerTuple falls back to exec's shared default so the two engines
// report the same memory metric for the same configuration.
func aggregate(res *exec.Result, start time.Time, bytesPerTuple int) {
	if bytesPerTuple <= 0 {
		bytesPerTuple = exec.DefaultBytesPerTuple
	}
	for _, m := range res.Workers {
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * int64(bytesPerTuple)
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
}

// Package netexec runs the shared-nothing join over real TCP workers: a
// coordinator shuffles tuple batches to worker servers (gob-encoded
// streams), each worker joins the tuples it received with the local join
// algorithm and reports its metrics back. It is the process-distributed
// counterpart of internal/exec's goroutine engine — same partitioning
// schemes, same metrics — demonstrating that nothing in the EWH design
// depends on shared memory.
//
// Protocol (one TCP connection per worker per job):
//
//	coordinator → worker: handshake{workerID, condition spec, cost model}
//	coordinator → worker: batch{relation, keys}...   (streamed)
//	coordinator → worker: end-of-stream
//	worker → coordinator: metrics{inputR1, inputR2, output, nanos}
package netexec

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// handshake opens a job on a worker.
type handshake struct {
	WorkerID int
	Cond     join.Spec
	Wi, Wo   float64
}

// batch carries a chunk of routed tuples; Rel is 1 or 2.
type batch struct {
	Rel  int8
	Keys []join.Key
	// EOS marks the end of the job's tuple stream.
	EOS bool
}

// metrics is the worker's report.
type metrics struct {
	InputR1, InputR2 int64
	Output           int64
	Nanos            int64
	Err              string
}

// BatchSize is the number of keys per shipped batch.
const BatchSize = 8192

// Worker is a join worker server. Each accepted connection processes one
// job: it buffers the streamed tuples, runs the local join at end-of-stream
// and replies with its metrics.
type Worker struct {
	ln     net.Listener
	closed chan struct{}
}

// ListenWorker starts a worker on addr ("127.0.0.1:0" picks a free port).
// Serve must be called to accept jobs.
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netexec: listen %s: %w", addr, err)
	}
	return &Worker{ln: ln, closed: make(chan struct{})}, nil
}

// Addr returns the worker's bound address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops accepting jobs.
func (w *Worker) Close() error {
	close(w.closed)
	return w.ln.Close()
}

// Serve accepts and processes jobs until Close. It returns nil after Close.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return nil
			default:
				return fmt.Errorf("netexec: accept: %w", err)
			}
		}
		go w.handle(conn)
	}
}

func (w *Worker) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	fail := func(err error) {
		_ = enc.Encode(metrics{Err: err.Error()})
	}

	var hs handshake
	if err := dec.Decode(&hs); err != nil {
		fail(fmt.Errorf("handshake: %w", err))
		return
	}
	cond, err := hs.Cond.Condition()
	if err != nil {
		fail(err)
		return
	}
	var r1, r2 []join.Key
	for {
		var b batch
		if err := dec.Decode(&b); err != nil {
			fail(fmt.Errorf("batch: %w", err))
			return
		}
		if b.EOS {
			break
		}
		switch b.Rel {
		case 1:
			r1 = append(r1, b.Keys...)
		case 2:
			r2 = append(r2, b.Keys...)
		default:
			fail(fmt.Errorf("batch for unknown relation %d", b.Rel))
			return
		}
	}
	start := time.Now()
	out := localjoin.AutoCount(r1, r2, cond)
	_ = enc.Encode(metrics{
		InputR1: int64(len(r1)),
		InputR2: int64(len(r2)),
		Output:  out,
		Nanos:   time.Since(start).Nanoseconds(),
	})
}

// Run shuffles the relations to the remote workers according to the scheme
// and returns the aggregated result. The scheme must not need more workers
// than addrs provides; extra addresses stay idle.
func Run(addrs []string, r1, r2 []join.Key, cond join.Condition,
	scheme partition.Scheme, model cost.Model, seed uint64) (*exec.Result, error) {

	j := scheme.Workers()
	if j > len(addrs) {
		return nil, fmt.Errorf("netexec: scheme needs %d workers, only %d addresses", j, len(addrs))
	}
	spec, err := join.SpecOf(cond)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Route locally into per-worker buffers (the mapper side).
	perWorker1 := make([][]join.Key, j)
	perWorker2 := make([][]join.Key, j)
	rng := stats.NewRNG(seed)
	var buf []int
	for _, k := range r1 {
		buf = scheme.RouteR1(k, rng, buf[:0])
		for _, w := range buf {
			perWorker1[w] = append(perWorker1[w], k)
		}
	}
	for _, k := range r2 {
		buf = scheme.RouteR2(k, rng, buf[:0])
		for _, w := range buf {
			perWorker2[w] = append(perWorker2[w], k)
		}
	}

	// Stream each worker's tuples and gather metrics concurrently.
	res := &exec.Result{Scheme: scheme.Name() + "@net", Workers: make([]exec.WorkerMetrics, j)}
	errs := make([]error, j)
	var wg sync.WaitGroup
	for wID := 0; wID < j; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			m, err := runWorkerJob(addrs[wID], wID, spec, model, perWorker1[wID], perWorker2[wID])
			if err != nil {
				errs[wID] = err
				return
			}
			wm := &res.Workers[wID]
			wm.InputR1 = m.InputR1
			wm.InputR2 = m.InputR2
			wm.Output = m.Output
			wm.Work = model.Weight(float64(m.InputR1+m.InputR2), float64(m.Output))
		}(wID)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for _, m := range res.Workers {
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * 16
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
	return res, nil
}

func runWorkerJob(addr string, workerID int, spec join.Spec, model cost.Model,
	r1, r2 []join.Key) (*metrics, error) {

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netexec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(handshake{WorkerID: workerID, Cond: spec, Wi: model.Wi, Wo: model.Wo}); err != nil {
		return nil, fmt.Errorf("netexec: handshake to %s: %w", addr, err)
	}
	send := func(rel int8, keys []join.Key) error {
		for off := 0; off < len(keys); off += BatchSize {
			end := off + BatchSize
			if end > len(keys) {
				end = len(keys)
			}
			if err := enc.Encode(batch{Rel: rel, Keys: keys[off:end]}); err != nil {
				return fmt.Errorf("netexec: send to %s: %w", addr, err)
			}
		}
		return nil
	}
	if err := send(1, r1); err != nil {
		return nil, err
	}
	if err := send(2, r2); err != nil {
		return nil, err
	}
	if err := enc.Encode(batch{EOS: true}); err != nil {
		return nil, fmt.Errorf("netexec: eos to %s: %w", addr, err)
	}
	var m metrics
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("netexec: metrics from %s: %w", addr, err)
	}
	if m.Err != "" {
		return nil, fmt.Errorf("netexec: worker %s: %s", addr, m.Err)
	}
	return &m, nil
}

package netexec

import (
	"net"
	"reflect"
	"testing"
	"time"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/faultnet"
	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/localjoin"
	"ewh/internal/stats"
	"ewh/internal/streamjoin"
)

func streamUniformKeys(rng *stats.RNG, n int, lo, span int64) []join.Key {
	ks := make([]join.Key, n)
	for i := range ks {
		ks[i] = join.Key(lo + rng.Int64n(span))
	}
	return ks
}

// streamFlipWorkload is the skew-flip stream the replanning experiments run:
// two windows uniform over the wide keyspace, then the distribution
// collapses into a narrow range for the rest of the stream.
func streamFlipWorkload() (base []join.Key, windows [][]join.Key) {
	rng := stats.NewRNG(61)
	base = streamUniformKeys(rng, 20000, 0, 400_000)
	for i := 0; i < 2; i++ {
		windows = append(windows, streamUniformKeys(rng, 2000, 0, 400_000))
	}
	for i := 0; i < 10; i++ {
		windows = append(windows, streamUniformKeys(rng, 2000, 0, 10_000))
	}
	return base, windows
}

func streamRefCount(windows [][]join.Key, base []join.Key, cond join.Condition) int64 {
	var all []join.Key
	for _, w := range windows {
		all = append(all, w...)
	}
	keysort.Sort(all)
	b := append([]join.Key(nil), base...)
	keysort.Sort(b)
	return localjoin.CountSorted(all, b, cond)
}

func streamFlipConfig(freeze bool) streamjoin.Config {
	return streamjoin.Config{
		Opts:       core.Options{J: 4, Model: model, Seed: 5},
		Exec:       exec.Config{Seed: 6},
		Stats:      exec.StatsSpec{Cap: 512, Buckets: 32, Seed: 7},
		FreezePlan: freeze,
	}
}

// TestStreamContinuousJoinWireCrosscheck is the tentpole's acceptance test:
// a continuous run over live worker processes whose mid-stream distribution
// flip triggers a replan, with the final count bit-identical to the one-shot
// reference join over the concatenated windows, zero pairs relayed through
// the coordinator, a modeled makespan win over the frozen plan — and the
// whole per-window accounting bit-identical to the in-process reference
// runtime, which pins that the wire transport computes the same shards,
// summaries and drifts as the local one.
func TestStreamContinuousJoinWireCrosscheck(t *testing.T) {
	base, windows := streamFlipWorkload()
	cond := join.NewBand(25)
	want := streamRefCount(windows, base, cond)
	if want == 0 {
		t.Fatal("degenerate workload: reference count is 0")
	}

	_, addrs := startWorkerSet(t, 4)
	sess := dialSession(t, addrs)

	before := sess.RelayedPairs()
	live, err := streamjoin.Run(sess, base, windows, cond, streamFlipConfig(false))
	if err != nil {
		t.Fatalf("replanning run: %v", err)
	}
	frozen, err := streamjoin.Run(sess, base, windows, cond, streamFlipConfig(true))
	if err != nil {
		t.Fatalf("frozen run: %v", err)
	}

	if live.Replans < 1 {
		t.Fatal("distribution flip fired no replan")
	}
	if live.Total != want || frozen.Total != want {
		t.Fatalf("totals diverge: live %d frozen %d reference %d", live.Total, frozen.Total, want)
	}
	if live.Makespan >= frozen.Makespan {
		t.Fatalf("replanning did not pay: modeled makespan %.0f (replan) vs %.0f (frozen)",
			live.Makespan, frozen.Makespan)
	}
	if relayed := sess.RelayedPairs() - before; relayed != 0 {
		t.Fatalf("%d pairs transited the coordinator during the stream", relayed)
	}

	local, err := streamjoin.Run(exec.LocalStreamRuntime{Workers: 4}, base, windows, cond, streamFlipConfig(false))
	if err != nil {
		t.Fatalf("local reference run: %v", err)
	}
	if !reflect.DeepEqual(live, local) {
		t.Fatalf("wire and local runs diverge:\nwire:  %+v\nlocal: %+v", live, local)
	}
}

// TestStreamWorkerDeathAfterReplanRecovers is the fault scenario: a worker
// dies mid-window while the stream is running under a drift-replanned epoch.
// The driver must derive the survivor fleet, replan over it, re-send the
// base and the failed window under a fresh epoch, and finish with a count
// bit-identical to the fault-free reference — with zero pairs relayed.
func TestStreamWorkerDeathAfterReplanRecovers(t *testing.T) {
	leakCheck(t)
	base, windows := streamFlipWorkload()
	cond := join.NewBand(25)
	want := streamRefCount(windows, base, cond)

	const fleet, victim = 4, 2
	var victimW *Worker
	kill := func() {
		if victimW != nil {
			_ = victimW.Close()
		}
	}
	// Window-end frames arrive once per window regardless of shard sizes, so
	// the 4th one is window index 3 — the first full window AFTER the drift
	// replan at window 2 cut the stream over to epoch 2.
	script := faultnet.NewScript(faultnet.Rule{
		Dir: faultnet.In, Frame: faultnet.FrameStreamWinEnd, N: 4,
		Action: faultnet.ActHook, Fn: kill,
	})

	addrs := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		var w *Worker
		if i == victim {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			w = ListenWorkerOn(faultnet.Wrap(ln, script))
			victimW = w
		} else {
			var err error
			w, err = ListenWorker("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}

	sess, err := DialWith(addrs, Timeouts{Dial: 2 * time.Second, Job: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	before := sess.RelayedPairs()
	res, err := streamjoin.Run(sess, base, windows, cond, streamFlipConfig(false))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !script.Fired() {
		t.Fatal("fault never injected; the run proves nothing")
	}
	if res.Faults != 1 {
		t.Fatalf("recovered from %d faults, want 1", res.Faults)
	}
	if res.Replans < 1 {
		t.Fatal("the drift replan never fired before the fault")
	}
	if res.Total != want {
		t.Fatalf("recovered total %d, fault-free reference %d", res.Total, want)
	}
	if relayed := sess.RelayedPairs() - before; relayed != 0 {
		t.Fatalf("%d pairs transited the coordinator during recovery", relayed)
	}
	if _, n, serr := sess.Survivors(); serr != nil || n != fleet-1 {
		t.Fatalf("survivors after recovery: %d (%v), want %d", n, serr, fleet-1)
	}
	if last := res.Windows[len(res.Windows)-1]; last.Epoch < 3 {
		t.Fatalf("final window at epoch %d; recovery never opened a fresh epoch", last.Epoch)
	}
}

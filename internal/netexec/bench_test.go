package netexec

import (
	"encoding/binary"
	"testing"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// startBenchWorkers mirrors startWorkers for benchmarks.
func startBenchWorkers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		b.Cleanup(func() { _ = w.Close() })
	}
	return addrs
}

// The shuffle-isolating benchmark pair: R2 is empty, so the workers' local
// join is a no-op and the wall time is the wire path — routing, encode,
// ship, decode. The acceptance bar for the v2 protocol is ≥2× over the gob
// baseline here.

// runFn abstracts the transport under test; makeRun-style setup (e.g.
// dialing a session) happens before the timer starts.
type runFn func(addrs []string, r1, r2 []join.Key, cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg exec.Config) (*exec.Result, error)

// sessionRun dials a persistent session to addrs (untimed setup) and
// returns a runFn dispatching numbered jobs over it — each timed iteration
// is one job on the already-open connections.
func sessionRun(b *testing.B, addrs []string) runFn {
	b.Helper()
	sess, err := Dial(addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = sess.Close() })
	return func(addrs []string, r1, r2 []join.Key, cond join.Condition,
		scheme partition.Scheme, model cost.Model, cfg exec.Config) (*exec.Result, error) {
		return exec.RunOver(sess, r1, r2, cond, scheme, model, cfg)
	}
}

func benchShuffle(b *testing.B, makeRun func(b *testing.B, addrs []string) runFn) {
	const n = 200000
	r1 := randKeys(n, n, 1)
	hash, err := partition.NewHash(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	addrs := startBenchWorkers(b, 4)
	run := makeRun(b, addrs)
	cfg := exec.Config{Seed: 2, Mappers: 4}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(addrs, r1, nil, join.Equi{}, hash, model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.NetworkTuples != n {
			b.Fatalf("shipped %d tuples, want %d", res.NetworkTuples, n)
		}
	}
}

// perJobRun adapts the one-shot transports (Run, RunGob) to the setup
// signature.
func perJobRun(fn runFn) func(*testing.B, []string) runFn {
	return func(*testing.B, []string) runFn { return fn }
}

func BenchmarkLoopbackShuffleBinary(b *testing.B) { benchShuffle(b, perJobRun(Run)) }
func BenchmarkLoopbackShuffleGob(b *testing.B)    { benchShuffle(b, perJobRun(RunGob)) }

// BenchmarkLoopbackShuffleSession is the persistent-session counterpart of
// the per-job-dial binary shuffle: the session is dialed once outside the
// timed loop, so each iteration is one numbered job over the already-open
// connections — the dial/teardown per job that Run pays is amortized away.
func BenchmarkLoopbackShuffleSession(b *testing.B) { benchShuffle(b, sessionRun) }

// BenchmarkLoopbackPayloadSession times the payload wire path in isolation:
// R1 ships 200k tuples each carrying an 8-byte payload segment against an
// empty R2, so the wall time is route, encode (keys + payloads), ship,
// decode into pooled flat buffers.
func BenchmarkLoopbackPayloadSession(b *testing.B) {
	const n = 200000
	keys := randKeys(n, n, 7)
	r1 := make([]exec.Tuple[join.Key], n)
	for i, k := range keys {
		r1[i] = exec.Tuple[join.Key]{Key: k, Payload: k * 3}
	}
	var r2 []exec.Tuple[join.Key]
	hash, err := partition.NewHash(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	addrs := startBenchWorkers(b, 4)
	sess, err := Dial(addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = sess.Close() })
	enc := func(dst []byte, p join.Key) []byte {
		return binary.LittleEndian.AppendUint64(dst, uint64(p))
	}
	cfg := exec.Config{Seed: 8, Mappers: 4}
	b.SetBytes(16 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec.RunTuplesOver(sess, r1, r2, join.Equi{}, hash, model, cfg,
			enc, enc, func(int, exec.Tuple[join.Key], exec.Tuple[join.Key]) {})
		if err != nil {
			b.Fatal(err)
		}
		if res.NetworkTuples != n {
			b.Fatalf("shipped %d tuples, want %d", res.NetworkTuples, n)
		}
	}
}

// The end-to-end pair: a full band join over the wire, dominated by
// shuffle + local join together.

func benchBandJoin(b *testing.B, makeRun func(b *testing.B, addrs []string) runFn) {
	const n = 100000
	r1 := randKeys(n, n, 3)
	r2 := randKeys(n, n, 4)
	cond := join.NewBand(2)
	ci := partition.NewCI(4)
	addrs := startBenchWorkers(b, 4)
	run := makeRun(b, addrs)
	cfg := exec.Config{Seed: 5, Mappers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(addrs, r1, r2, cond, ci, model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackBandJoinBinary(b *testing.B)  { benchBandJoin(b, perJobRun(Run)) }
func BenchmarkLoopbackBandJoinGob(b *testing.B)     { benchBandJoin(b, perJobRun(RunGob)) }
func BenchmarkLoopbackBandJoinSession(b *testing.B) { benchBandJoin(b, sessionRun) }

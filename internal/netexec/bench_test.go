package netexec

import (
	"testing"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// startBenchWorkers mirrors startWorkers for benchmarks.
func startBenchWorkers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		b.Cleanup(func() { _ = w.Close() })
	}
	return addrs
}

// The shuffle-isolating benchmark pair: R2 is empty, so the workers' local
// join is a no-op and the wall time is the wire path — routing, encode,
// ship, decode. The acceptance bar for the v2 protocol is ≥2× over the gob
// baseline here.

func benchShuffle(b *testing.B, run func(addrs []string, r1, r2 []join.Key,
	cond join.Condition, scheme partition.Scheme, model cost.Model,
	cfg exec.Config) (*exec.Result, error)) {

	const n = 200000
	r1 := randKeys(n, n, 1)
	hash, err := partition.NewHash(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	addrs := startBenchWorkers(b, 4)
	cfg := exec.Config{Seed: 2, Mappers: 4}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(addrs, r1, nil, join.Equi{}, hash, model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.NetworkTuples != n {
			b.Fatalf("shipped %d tuples, want %d", res.NetworkTuples, n)
		}
	}
}

func BenchmarkLoopbackShuffleBinary(b *testing.B) { benchShuffle(b, Run) }
func BenchmarkLoopbackShuffleGob(b *testing.B)    { benchShuffle(b, RunGob) }

// The end-to-end pair: a full band join over the wire, dominated by
// shuffle + local join together.

func benchBandJoin(b *testing.B, run func(addrs []string, r1, r2 []join.Key,
	cond join.Condition, scheme partition.Scheme, model cost.Model,
	cfg exec.Config) (*exec.Result, error)) {

	const n = 100000
	r1 := randKeys(n, n, 3)
	r2 := randKeys(n, n, 4)
	cond := join.NewBand(2)
	ci := partition.NewCI(4)
	addrs := startBenchWorkers(b, 4)
	cfg := exec.Config{Seed: 5, Mappers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(addrs, r1, r2, cond, ci, model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackBandJoinBinary(b *testing.B) { benchBandJoin(b, Run) }
func BenchmarkLoopbackBandJoinGob(b *testing.B)    { benchBandJoin(b, RunGob) }

package netexec

import (
	"context"
	"testing"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/workload"
)

// zipfKeys draws the Zipf-skewed workloads the hash-engine tests use.
func zipfKeys(n int, domain int64, z float64, seed uint64) []join.Key {
	return workload.Zipfian(n, domain, z, seed)
}

// TestSessionHashJoinOverlap is the insert-while-probe crosscheck: an equi
// count job over the chunked session scatter must produce the exact Local
// answer AND prove the worker started building before the job's tail frames
// decoded — BuildOverlappedChunks, the hash-side mirror of OverlappedStage2.
func TestSessionHashJoinOverlap(t *testing.T) {
	_, addrs := startWorkerSet(t, 3)
	r1 := zipfKeys(30000, 4000, 0.8, 130)
	r2 := zipfKeys(30000, 4000, 0.8, 131)
	scheme := partition.NewCI(3)
	// Mappers fixed well above the feeder channel capacity: with ~2×Mappers
	// chunk frames per worker the read loop must block on a full feed channel
	// before it can decode EOS, so overlap is structural, not a scheduling
	// accident.
	cfg := exec.Config{Seed: 132, Mappers: 12}

	want := exec.Run(r1, r2, join.Equi{}, scheme, model, cfg)

	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("session output %d, want %d", got.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n <= 0 {
		t.Fatalf("BuildOverlappedChunks = %d, want > 0: build never overlapped the stream", n)
	}
	if sess.RelayedPairs() != 0 {
		t.Fatalf("count job relayed %d pairs", sess.RelayedPairs())
	}

	// The other two selections crosscheck against the same answer; forcing
	// merge must bypass the feeder entirely.
	for _, e := range []exec.JoinEngine{exec.EngineHash, exec.EngineMerge} {
		cfg := cfg
		cfg.Engine = e
		res, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want.Output {
			t.Fatalf("engine %v: output %d, want %d", e, res.Output, want.Output)
		}
	}
	before := sess.BuildOverlappedChunks()
	cfgMerge := cfg
	cfgMerge.Engine = exec.EngineMerge
	if _, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfgMerge); err != nil {
		t.Fatal(err)
	}
	if after := sess.BuildOverlappedChunks(); after != before {
		t.Fatalf("merge-engine job advanced the overlap counter (%d -> %d)", before, after)
	}
}

// TestSessionHashJoinBandFallsBack pins engine resolution across the wire: a
// band job under an explicit hash request runs the merge sweep (exact
// answer, no feeder) instead of failing or mis-counting.
func TestSessionHashJoinBandFallsBack(t *testing.T) {
	_, addrs := startWorkerSet(t, 2)
	r1 := zipfKeys(5000, 1000, 0.8, 140)
	r2 := zipfKeys(5000, 1000, 0.8, 141)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 142, Engine: exec.EngineHash, Mappers: 4}
	cond := join.NewBand(2)

	want := exec.Run(r1, r2, cond, scheme, model, cfg)
	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := exec.RunOver(sess, r1, r2, cond, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("band under hash request: output %d, want %d", got.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n != 0 {
		t.Fatalf("band job overlapped %d chunks through the hash feeder", n)
	}
}

// TestPoolBuildCacheHit is the shared-build acceptance test: two tenants of
// one pool join different probe relations against the SAME build-side
// relation; the second tenant's jobs must hit the first tenant's cached
// builds (identical content, identical chunk structure under the shared
// seed) and both answers stay bit-exact. leakCheck (in startWorkerSet) pins
// that no feeder goroutine outlives its job.
func TestPoolBuildCacheHit(t *testing.T) {
	ws, addrs := startWorkerSet(t, 2)
	dim := zipfKeys(20000, 3000, 0.7, 150) // shared build side
	probeA := zipfKeys(8000, 3000, 0.7, 151)
	probeB := zipfKeys(8000, 3000, 0.7, 152)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 153, Mappers: 8}

	pool, err := NewPool(addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	run := func(tenant string, probe []join.Key) int64 {
		t.Helper()
		s, err := pool.Session(context.Background(), tenant)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.RunOver(s, dim, probe, join.Equi{}, scheme, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}

	gotA := run("alpha", probeA)
	gotB := run("beta", probeB)
	// A repeat of tenant alpha's exact job must also hit and agree.
	if again := run("alpha", probeA); again != gotA {
		t.Fatalf("cache-hit rerun output %d, want %d", again, gotA)
	}

	wantA := exec.Run(dim, probeA, join.Equi{}, scheme, model, cfg).Output
	wantB := exec.Run(dim, probeB, join.Equi{}, scheme, model, cfg).Output
	if gotA != wantA || gotB != wantB {
		t.Fatalf("outputs (%d, %d), want (%d, %d)", gotA, gotB, wantA, wantB)
	}

	var hits, misses int64
	for _, w := range ws {
		st := w.BuildCacheStats()
		hits += st.Hits
		misses += st.Misses
		if st.Bytes <= 0 || st.Entries <= 0 {
			t.Errorf("worker %s cache holds %d entries / %d bytes after hash jobs",
				w.Addr(), st.Entries, st.Bytes)
		}
	}
	// Three jobs per worker over identical build content: the first misses,
	// the other two share its build.
	if hits <= 0 {
		t.Fatalf("no build-cache hits across the fleet (hits=%d misses=%d)", hits, misses)
	}
	if st := (localjoin.BuildCacheStats{Hits: hits, Misses: misses}); st.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f below the 2-of-3 sharing expectation (hits=%d misses=%d)",
			st.HitRate(), hits, misses)
	}
}

// TestWorkerEngineDefault pins the worker-side knob: a fleet set to
// EngineMerge runs auto-opened equi jobs on the merge path (no overlap), and
// the coordinator's explicit hash request overrides it.
func TestWorkerEngineDefault(t *testing.T) {
	ws, addrs := startWorkerSet(t, 2)
	for _, w := range ws {
		w.SetJoinEngine(exec.EngineMerge)
	}
	r1 := zipfKeys(20000, 3000, 0.8, 160)
	r2 := zipfKeys(20000, 3000, 0.8, 161)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 162, Mappers: 12}
	want := exec.Run(r1, r2, join.Equi{}, scheme, model, cfg)

	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.Output {
		t.Fatalf("merge-default output %d, want %d", res.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n != 0 {
		t.Fatalf("merge-default fleet overlapped %d chunks", n)
	}
	cfg.Engine = exec.EngineHash
	res, err = exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.Output {
		t.Fatalf("explicit-hash output %d, want %d", res.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n <= 0 {
		t.Fatal("explicit hash request did not override the merge fleet default")
	}
}

package netexec

import (
	"context"
	"testing"

	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/workload"
)

// zipfKeys draws the Zipf-skewed workloads the hash-engine tests use.
func zipfKeys(n int, domain int64, z float64, seed uint64) []join.Key {
	return workload.Zipfian(n, domain, z, seed)
}

// TestSessionHashJoinOverlap is the insert-while-probe crosscheck: an equi
// count job over the chunked session scatter must produce the exact Local
// answer AND prove the worker started building before the job's tail frames
// decoded — BuildOverlappedChunks, the hash-side mirror of OverlappedStage2.
func TestSessionHashJoinOverlap(t *testing.T) {
	_, addrs := startWorkerSet(t, 3)
	r1 := zipfKeys(30000, 4000, 0.8, 130)
	r2 := zipfKeys(30000, 4000, 0.8, 131)
	scheme := partition.NewCI(3)
	// Mappers fixed well above the feeder channel capacity: with ~2×Mappers
	// chunk frames per worker the read loop must block on a full feed channel
	// before it can decode EOS, so overlap is structural, not a scheduling
	// accident.
	cfg := exec.Config{Seed: 132, Mappers: 12}

	want := exec.Run(r1, r2, join.Equi{}, scheme, model, cfg)

	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("session output %d, want %d", got.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n <= 0 {
		t.Fatalf("BuildOverlappedChunks = %d, want > 0: build never overlapped the stream", n)
	}
	if sess.RelayedPairs() != 0 {
		t.Fatalf("count job relayed %d pairs", sess.RelayedPairs())
	}

	// The other two selections crosscheck against the same answer; forcing
	// merge must bypass the feeder entirely.
	for _, e := range []exec.JoinEngine{exec.EngineHash, exec.EngineMerge} {
		cfg := cfg
		cfg.Engine = e
		res, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want.Output {
			t.Fatalf("engine %v: output %d, want %d", e, res.Output, want.Output)
		}
	}
	before := sess.BuildOverlappedChunks()
	cfgMerge := cfg
	cfgMerge.Engine = exec.EngineMerge
	if _, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfgMerge); err != nil {
		t.Fatal(err)
	}
	if after := sess.BuildOverlappedChunks(); after != before {
		t.Fatalf("merge-engine job advanced the overlap counter (%d -> %d)", before, after)
	}
}

// TestSessionHashJoinBandFallsBack pins engine resolution across the wire: a
// band job under an explicit hash request runs the merge sweep (exact
// answer, no feeder) instead of failing or mis-counting.
func TestSessionHashJoinBandFallsBack(t *testing.T) {
	_, addrs := startWorkerSet(t, 2)
	r1 := zipfKeys(5000, 1000, 0.8, 140)
	r2 := zipfKeys(5000, 1000, 0.8, 141)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 142, Engine: exec.EngineHash, Mappers: 4}
	cond := join.NewBand(2)

	want := exec.Run(r1, r2, cond, scheme, model, cfg)
	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := exec.RunOver(sess, r1, r2, cond, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("band under hash request: output %d, want %d", got.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n != 0 {
		t.Fatalf("band job overlapped %d chunks through the hash feeder", n)
	}
}

// TestPoolBuildCacheHit is the shared-build acceptance test: two tenants of
// one pool join different probe relations against the SAME build-side
// relation; the second tenant's jobs must hit the first tenant's cached
// builds (identical content, identical chunk structure under the shared
// seed) and both answers stay bit-exact. leakCheck (in startWorkerSet) pins
// that no feeder goroutine outlives its job.
func TestPoolBuildCacheHit(t *testing.T) {
	ws, addrs := startWorkerSet(t, 2)
	dim := zipfKeys(20000, 3000, 0.7, 150) // shared build side
	probeA := zipfKeys(8000, 3000, 0.7, 151)
	probeB := zipfKeys(8000, 3000, 0.7, 152)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 153, Mappers: 8}

	pool, err := NewPool(addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	run := func(tenant string, probe []join.Key) int64 {
		t.Helper()
		s, err := pool.Session(context.Background(), tenant)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.RunOver(s, dim, probe, join.Equi{}, scheme, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}

	gotA := run("alpha", probeA)
	gotB := run("beta", probeB)
	// A repeat of tenant alpha's exact job must also hit and agree.
	if again := run("alpha", probeA); again != gotA {
		t.Fatalf("cache-hit rerun output %d, want %d", again, gotA)
	}

	wantA := exec.Run(dim, probeA, join.Equi{}, scheme, model, cfg).Output
	wantB := exec.Run(dim, probeB, join.Equi{}, scheme, model, cfg).Output
	if gotA != wantA || gotB != wantB {
		t.Fatalf("outputs (%d, %d), want (%d, %d)", gotA, gotB, wantA, wantB)
	}

	var hits, misses int64
	for _, w := range ws {
		st := w.BuildCacheStats()
		hits += st.Hits
		misses += st.Misses
		if st.Bytes <= 0 || st.Entries <= 0 {
			t.Errorf("worker %s cache holds %d entries / %d bytes after hash jobs",
				w.Addr(), st.Entries, st.Bytes)
		}
	}
	// Three jobs per worker over identical build content: the first misses,
	// the other two share its build.
	if hits <= 0 {
		t.Fatalf("no build-cache hits across the fleet (hits=%d misses=%d)", hits, misses)
	}
	if st := (localjoin.BuildCacheStats{Hits: hits, Misses: misses}); st.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f below the 2-of-3 sharing expectation (hits=%d misses=%d)",
			st.HitRate(), hits, misses)
	}
}

// TestWorkerEngineDefault pins the worker-side knob: a fleet set to
// EngineMerge runs auto-opened equi jobs on the merge path (no overlap), and
// the coordinator's explicit hash request overrides it.
func TestWorkerEngineDefault(t *testing.T) {
	ws, addrs := startWorkerSet(t, 2)
	for _, w := range ws {
		w.SetJoinEngine(exec.EngineMerge)
	}
	r1 := zipfKeys(20000, 3000, 0.8, 160)
	r2 := zipfKeys(20000, 3000, 0.8, 161)
	scheme := partition.NewCI(2)
	cfg := exec.Config{Seed: 162, Mappers: 12}
	want := exec.Run(r1, r2, join.Equi{}, scheme, model, cfg)

	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.Output {
		t.Fatalf("merge-default output %d, want %d", res.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n != 0 {
		t.Fatalf("merge-default fleet overlapped %d chunks", n)
	}
	cfg.Engine = exec.EngineHash
	res, err = exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.Output {
		t.Fatalf("explicit-hash output %d, want %d", res.Output, want.Output)
	}
	if n := sess.BuildOverlappedChunks(); n <= 0 {
		t.Fatal("explicit hash request did not override the merge fleet default")
	}
}

// TestChunkStreamedPairsBitIdentical pins the pair-capable feeder: an equi
// pairs job whose relations arrive as CHUNK streams must emit the pair
// stream bit-identically to the flat path — same pairs, same order, same
// flush (frame) boundaries — while absorbing its chunks through the feeder
// instead of assembling on the read loop.
func TestChunkStreamedPairsBitIdentical(t *testing.T) {
	_, addrs := startWorkerSet(t, 2)
	sess, err := DialTenant(context.Background(), "", addrs, Timeouts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	r1 := zipfKeys(30000, 4000, 0.8, 170)
	r2 := zipfKeys(30000, 4000, 0.8, 171)
	scheme := partition.NewCI(2)
	// Mappers above feedCap so the feeder must interleave with the stream;
	// the zipf output volume forces several pairChunk flushes per worker.
	cfg := exec.Config{Seed: 172, Mappers: 12, Engine: exec.EngineHash}

	run := func(chunked bool) [][][]exec.PairIdx {
		chunks := make([][][]exec.PairIdx, scheme.Workers())
		job := &exec.Job{Cond: join.Equi{}, Workers: scheme.Workers(), Engine: cfg.Engine,
			// Distinct workers write distinct slice elements; per-worker
			// delivery is sequential, so no locking is needed.
			Pairs: func(w int, chunk []exec.PairIdx) {
				chunks[w] = append(chunks[w], append([]exec.PairIdx(nil), chunk...))
			}}
		if chunked {
			cs1, cs2 := exec.ShufflePairChunked(r1, r2, scheme, cfg)
			job.R1 = exec.ResolvedRelFuture(exec.RelData{Chunks: cs1})
			job.R2 = exec.ResolvedRelFuture(exec.RelData{Chunks: cs2})
		} else {
			s1, s2 := exec.ShufflePair(r1, r2, scheme, cfg)
			defer s1.Release()
			defer s2.Release()
			job.R1 = exec.ResolvedRelFuture(exec.RelData{Keys: s1})
			job.R2 = exec.ResolvedRelFuture(exec.RelData{Keys: s2})
		}
		wm := make([]exec.WorkerMetrics, scheme.Workers())
		if err := sess.RunJob(job, wm); err != nil {
			t.Fatal(err)
		}
		return chunks
	}

	flat := run(false)
	before := sess.BuildOverlappedChunks()
	streamed := run(true)
	if got := sess.BuildOverlappedChunks() - before; got <= 0 {
		t.Fatalf("chunk-streamed pairs job fed %d chunks through the feeder", got)
	}
	for w := range flat {
		if len(flat[w]) < 2 {
			t.Fatalf("worker %d emitted %d flush chunks; need several to pin boundaries", w, len(flat[w]))
		}
		if len(streamed[w]) != len(flat[w]) {
			t.Fatalf("worker %d: %d flush chunks streamed, flat path emitted %d",
				w, len(streamed[w]), len(flat[w]))
		}
		for c := range flat[w] {
			if len(streamed[w][c]) != len(flat[w][c]) {
				t.Fatalf("worker %d chunk %d: %d pairs streamed, flat %d — flush boundary moved",
					w, c, len(streamed[w][c]), len(flat[w][c]))
			}
			for i := range flat[w][c] {
				if streamed[w][c][i] != flat[w][c][i] {
					t.Fatalf("worker %d chunk %d pair %d: streamed %+v, flat %+v",
						w, c, i, streamed[w][c][i], flat[w][c][i])
				}
			}
		}
	}
}

// TestPeerStageJobsHonorCoordinatorEngine pins the engine hint on the peer
// open frame. Stage-2 jobs are opened by PEER workers (frameV3OpenPeerJob),
// not the coordinator, so before the hint existed they silently resolved the
// WORKER's default engine no matter what the coordinator asked for. A
// merge-default fleet driven with an explicit coordinator `hash` must now
// resolve every sub-job — the peer-fed stage-2 jobs included — to hash,
// while an absent hint (EngineAuto on the wire, what an old coordinator
// sends) keeps the worker-default behavior.
func TestPeerStageJobsHonorCoordinatorEngine(t *testing.T) {
	ws, addrs := startWorkerSet(t, 3)
	for _, w := range ws {
		w.SetJoinEngine(exec.EngineMerge)
	}
	r1 := randKeys(1200, 600, 240)
	r2 := randKeys(1000, 600, 241)
	r3 := randKeys(900, 2000, 242)
	scheme1, err := partition.NewHash(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := stagePlanFor(t, join.Equi{}, 3, 91)

	// Coordinator-selected hash: stage 1 fans out scheme1.Workers() plan
	// jobs, the plan fans out sp.Scheme.Workers() peer-opened stage-2 jobs,
	// and every one of them must report the hash engine back.
	sessHash := dialSession(t, addrs)
	cfgHash := exec.Config{Seed: 17, Mappers: 2, Engine: exec.EngineHash}
	res1h, res2h, err := exec.RunStagesOver(sessHash, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r3, model, cfgHash, nil, encodeKeyLE8)
	if err != nil {
		t.Fatal(err)
	}
	if n := sessHash.EngineUses(exec.EngineMerge); n != 0 {
		t.Fatalf("%d sub-jobs fell back to the worker merge default under coordinator hash", n)
	}
	want := int64(scheme1.Workers() + sp.Scheme.Workers())
	if got := sessHash.EngineUses(exec.EngineHash); got != want {
		t.Fatalf("EngineUses(hash) = %d, want %d (stage-1 + peer stage-2 sub-jobs)", got, want)
	}

	// No coordinator selection: the hint decodes as EngineAuto and the merge
	// fleet default wins everywhere — the behavior old coordinators keep.
	sessAuto := dialSession(t, addrs)
	cfgAuto := exec.Config{Seed: 17, Mappers: 2}
	res1a, res2a, err := exec.RunStagesOver(sessAuto, exec.WrapKeys(r1), tuplesWithPayloadKeys(r2),
		join.Equi{}, scheme1, sp, r3, model, cfgAuto, nil, encodeKeyLE8)
	if err != nil {
		t.Fatal(err)
	}
	if n := sessAuto.EngineUses(exec.EngineHash); n != 0 {
		t.Fatalf("%d sub-jobs ran hash although the coordinator never asked for it", n)
	}
	if got := sessAuto.EngineUses(exec.EngineMerge); got != want {
		t.Fatalf("EngineUses(merge) = %d, want %d with no coordinator selection", got, want)
	}

	// Engine selection must not perturb the answer.
	if res1h.Output != res1a.Output || res2h.Output != res2a.Output {
		t.Fatalf("engine selection changed outputs: hash (%d,%d) vs default (%d,%d)",
			res1h.Output, res2h.Output, res1a.Output, res2a.Output)
	}
}

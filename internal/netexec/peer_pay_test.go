package netexec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"ewh/internal/join"
)

// startPeerTarget starts one worker to receive mesh contributions.
func startPeerTarget(t *testing.T) *Worker {
	t.Helper()
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = w.Serve() }()
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// meshSend streams one contribution to the worker over a real TCP mesh
// connection, as a remote stage-1 sender would.
func meshSend(t *testing.T, w *Worker, token uint64, sender int, keys []join.Key, pays [][]byte) *peerConn {
	t.Helper()
	pc := &peerConn{addr: w.Addr()}
	if err := pc.sendContribution(Timeouts{}, token, sender, keys, pays); err != nil {
		t.Fatalf("sender %d: %v", sender, err)
	}
	return pc
}

// awaitTransfer binds the transfer and waits for assembly.
func awaitTransfer(t *testing.T, w *Worker, token uint64, counts []int64) *peerJobState {
	t.Helper()
	st, err := w.bindPeerJob(token, counts)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	select {
	case <-st.ready:
	case <-time.After(10 * time.Second):
		t.Fatal("transfer never assembled")
	}
	return st
}

// TestPeerPayloadRoundTrip streams two payload-bearing contributions over
// real TCP and checks the assembled block: keys sender-major, one payload per
// tuple, offsets consistent — including empty payloads.
func TestPeerPayloadRoundTrip(t *testing.T) {
	w := startPeerTarget(t)
	token := newPeerToken()

	mk := func(sender, n int) ([]join.Key, [][]byte) {
		keys := make([]join.Key, n)
		pays := make([][]byte, n)
		for i := range keys {
			keys[i] = join.Key(1000*sender + i)
			if i%7 == 3 {
				pays[i] = []byte{} // empty payloads must survive the trip
			} else {
				pays[i] = []byte(strings.Repeat(fmt.Sprintf("s%d-%d|", sender, i), i%5+1))
			}
		}
		return keys, pays
	}
	k0, p0 := mk(0, 257)
	k1, p1 := mk(1, 64)
	pc0 := meshSend(t, w, token, 0, k0, p0)
	defer pc0.close()
	pc1 := meshSend(t, w, token, 1, k1, p1)
	defer pc1.close()

	st := awaitTransfer(t, w, token, []int64{int64(len(k0)), int64(len(k1))})
	st.mu.Lock()
	flat, flatPay, flatOff, stErr := st.flat, st.flatPay, st.flatOff, st.err
	st.flat, st.flatPay, st.flatOff = nil, nil, nil
	st.mu.Unlock()
	w.finishPeerState(token)
	if stErr != nil {
		t.Fatalf("transfer failed: %v", stErr)
	}

	wantKeys := append(append([]join.Key{}, k0...), k1...)
	wantPays := append(append([][]byte{}, p0...), p1...)
	if len(flat) != len(wantKeys) {
		t.Fatalf("assembled %d keys, want %d", len(flat), len(wantKeys))
	}
	for i, k := range wantKeys {
		if flat[i] != k {
			t.Fatalf("key %d = %d, want %d", i, flat[i], k)
		}
	}
	if len(flatOff) != len(wantKeys)+1 || flatOff[0] != 0 {
		t.Fatalf("offset vector has %d entries, want %d starting at 0", len(flatOff), len(wantKeys)+1)
	}
	for i, p := range wantPays {
		got := flatPay[flatOff[i]:flatOff[i+1]]
		if !bytes.Equal(got, p) {
			t.Fatalf("payload %d = %q, want %q", i, got, p)
		}
	}
}

// TestPeerPayloadMixedPresence checks that a transfer where only some
// senders attach payloads fails instead of assembling a block with holes.
func TestPeerPayloadMixedPresence(t *testing.T) {
	w := startPeerTarget(t)
	token := newPeerToken()

	keys := []join.Key{1, 2, 3}
	pays := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	pc0 := meshSend(t, w, token, 0, keys, pays)
	defer pc0.close()
	pc1 := meshSend(t, w, token, 1, keys, nil) // keys-only
	defer pc1.close()

	st := awaitTransfer(t, w, token, []int64{3, 3})
	st.mu.Lock()
	stErr := st.err
	st.mu.Unlock()
	if stErr == nil || !strings.Contains(stErr.Error(), "payloads from") {
		t.Fatalf("mixed-presence transfer err = %v, want all-or-none failure", stErr)
	}
	w.dropPeerState(token)
}

// TestPeerPayloadKeysOnlyUnchanged pins the compatibility path: a transfer
// with no payload frames assembles with a nil payload segment.
func TestPeerPayloadKeysOnlyUnchanged(t *testing.T) {
	w := startPeerTarget(t)
	token := newPeerToken()

	keys := []join.Key{7, 8, 9}
	pc := meshSend(t, w, token, 0, keys, nil)
	defer pc.close()

	st := awaitTransfer(t, w, token, []int64{3})
	st.mu.Lock()
	flatPay, flatOff, stErr := st.flatPay, st.flatOff, st.err
	st.mu.Unlock()
	if stErr != nil {
		t.Fatalf("transfer failed: %v", stErr)
	}
	if flatPay != nil || flatOff != nil {
		t.Fatalf("keys-only transfer assembled a payload segment (%d bytes, %d offsets)",
			len(flatPay), len(flatOff))
	}
	w.dropPeerState(token)
}

package netexec

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"ewh/internal/exec"
	"ewh/internal/join"
)

// This file is the worker→worker peer mesh of the stage-aware pipeline: a
// stage-1 worker that executed a plan job re-shuffles its matches by the
// broadcast plan and streams each stage-2 worker's share DIRECTLY to that
// peer, over a lazily-dialed persistent connection to the peer's regular
// listener (protoVersionPeer selects this handler). The receiving side
// buffers contributions keyed by a coordinator-issued 64-bit token; when the
// coordinator opens the matching stage-2 job it names the exact per-sender
// counts, so the receiver assembles one deterministic sender-ordered flat
// block and knows precisely when the transfer is complete. The intermediate
// relation therefore never transits the coordinator — it only ever sees the
// count vectors riding the stage-1 metrics.

// peerTokens makes transfer tokens unique across coordinators sharing a
// worker pool: a process-random base plus a counter.
var (
	peerTokenBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0x9e3779b97f4a7c15 // deterministic fallback; collisions still need equal counters
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	peerTokenCtr atomic.Uint64
)

// newPeerToken never returns 0: zero marks an unused cancelRing slot, so a
// zero token's cancellation could be missed under token-table pressure.
func newPeerToken() uint64 {
	if t := peerTokenBase + peerTokenCtr.Add(1); t != 0 {
		return t
	}
	return peerTokenBase + peerTokenCtr.Add(1)
}

// peerSenderSeed derives sender s's deterministic routing stream from the
// artifact seed: every holder of the plan can reproduce any sender's routing
// decisions, which is what makes the assembled stage-2 blocks deterministic.
func peerSenderSeed(artifactSeed uint64, sender int) uint64 {
	return artifactSeed + 0x9e3779b97f4a7c15*uint64(sender+1)
}

// statsSenderSeed derives sender s's deterministic summary-sampling stream
// from the broadcast statistics seed, decorrelated from the routing streams.
func statsSenderSeed(statsSeed uint64, sender int) uint64 {
	return statsSeed + 0x517cc1b727220a95*uint64(sender+1)
}

// peerTokenDead reports whether a transfer token is already cancelled or
// failed — what lets a stats-deferred plan job honor a cancel that raced
// ahead of its parking. Both cancellation records are consulted: the token
// table's tombstone and the bounded cancellation ring, which survives even
// when the table is wedged full of live transfers. (The ring can wrap under
// extreme cancel pressure; the park's kill/hang-up wake-ups bound the
// residual wait.)
func (w *Worker) peerTokenDead(token uint64) bool {
	w.peersMu.Lock()
	st := w.peerStates[token]
	ringHit := false
	for _, tok := range w.cancelRing {
		// Zero marks an unused ring slot; a genuine zero token still has its
		// tombstone in the table.
		if tok == token && token != 0 {
			ringHit = true
			break
		}
	}
	w.peersMu.Unlock()
	if ringHit {
		return true
	}
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done && st.err != nil
}

// ---------- sender side ----------

// peerConn is one outbound peer-mesh connection, dialed lazily on first use
// and kept open for the worker's lifetime. mu serializes whole contributions
// so one sender's frames for one transfer are contiguous on the wire; err is
// sticky — a dead peer fails fast on every later send.
type peerConn struct {
	addr string

	mu     sync.Mutex
	conn   net.Conn
	bw     *bufio.Writer
	err    error
	dialed bool
}

// peerFor returns the (possibly not yet dialed) mesh connection to addr.
func (w *Worker) peerFor(addr string) *peerConn {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	pc := w.peers[addr]
	if pc == nil {
		pc = &peerConn{addr: addr}
		w.peers[addr] = pc
	}
	return pc
}

// sendToPeer streams one contribution to addr, and on failure retires the
// dead connection from the mesh so the NEXT plan job redials a fresh one —
// the current job still fails (its contribution may be half-sent), but a
// transiently unreachable peer doesn't poison the link forever. pays, when
// non-nil, attaches one variable-length payload per key (see
// writeContribution).
func (w *Worker) sendToPeer(addr string, token uint64, sender int, keys []join.Key, pays [][]byte) error {
	pc := w.peerFor(addr)
	err := pc.sendContribution(w.timeouts, token, sender, keys, pays)
	if err != nil {
		w.peersMu.Lock()
		if w.peers[addr] == pc {
			delete(w.peers, addr)
		}
		w.peersMu.Unlock()
	}
	return err
}

// sendContribution streams one transfer contribution (head + optional
// payload frames + key blocks) to the peer, dialing on first use. Errors
// name the peer address.
func (pc *peerConn) sendContribution(t Timeouts, token uint64, sender int, keys []join.Key, pays [][]byte) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return fmt.Errorf("peer %s: %w", pc.addr, pc.err)
	}
	if !pc.dialed {
		conn, err := dialTCP(context.Background(), pc.addr, t)
		if err != nil {
			pc.err = err
			return fmt.Errorf("peer %s: %w", pc.addr, err)
		}
		pc.dialed = true
		pc.conn = newTimedConn(conn, t.IO)
		pc.bw = bufio.NewWriterSize(pc.conn, connBufSize)
		var prelude [len(protoMagic) + 2]byte
		copy(prelude[:], protoMagic[:])
		binary.LittleEndian.PutUint16(prelude[len(protoMagic):], protoVersionPeer)
		if _, err := pc.bw.Write(prelude[:]); err != nil {
			pc.fail(err)
			return fmt.Errorf("peer %s: %w", pc.addr, err)
		}
	}
	if err := pc.writeContribution(token, sender, keys, pays); err != nil {
		pc.fail(err)
		return fmt.Errorf("peer %s: %w", pc.addr, err)
	}
	return nil
}

// fail marks the connection dead (mu held).
func (pc *peerConn) fail(err error) {
	if pc.err == nil {
		pc.err = err
	}
	if pc.conn != nil {
		_ = pc.conn.Close()
	}
}

func (pc *peerConn) close() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.fail(fmt.Errorf("worker closed"))
}

// writeContribution frames one sender's share of a transfer: the head
// declares the key count, then — when pays is non-nil — the payload frames,
// then the key blocks. The payload frames MUST precede the key blocks: the
// receiver treats a contribution as complete the moment its last key lands,
// so payloads trailing the keys could race the transfer's assembly. pays
// attaches one variable-length byte string per key (it must match keys in
// length); a single payload may not exceed maxPayFrameBytes, since a tuple's
// length and bytes travel in the same frame.
func (pc *peerConn) writeContribution(token uint64, sender int, keys []join.Key, pays [][]byte) error {
	if pays != nil && len(pays) != len(keys) {
		return fmt.Errorf("contribution carries %d payloads for %d keys", len(pays), len(keys))
	}
	if err := writeFrameHeader(pc.bw, framePeerHead, peerHeadLen); err != nil {
		return err
	}
	var h [peerHeadLen]byte
	binary.LittleEndian.PutUint64(h[:], token)
	binary.LittleEndian.PutUint32(h[8:], uint32(sender))
	binary.LittleEndian.PutUint32(h[12:], uint32(len(keys)))
	if _, err := pc.bw.Write(h[:]); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	if err := pc.writePayFrames(h, pays, buf); err != nil {
		return err
	}
	for len(keys) > 0 {
		n := len(keys)
		if n > maxPeerBlockKeys {
			n = maxPeerBlockKeys
		}
		if err := writeFrameHeader(pc.bw, framePeerBlock, peerBlockHeaderLen+8*n); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(h[12:], uint32(n))
		if _, err := pc.bw.Write(h[:]); err != nil {
			return err
		}
		if err := writeKeysLE(pc.bw, keys[:n], buf); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return pc.bw.Flush()
}

// writePayFrames streams a contribution's payloads as framePeerPay frames,
// batching tuples so no frame's byte segment exceeds maxPayFrameBytes. h
// already carries the token and sender; its count field is rewritten per
// frame. buf is the caller's scratch for staging the length vectors.
func (pc *peerConn) writePayFrames(h [peerHeadLen]byte, pays [][]byte, buf []byte) error {
	for lo := 0; lo < len(pays); {
		hi, frameBytes := lo, 0
		for hi < len(pays) && hi-lo < maxPeerBlockKeys {
			sz := len(pays[hi])
			if sz > maxPayFrameBytes {
				return fmt.Errorf("payload %d holds %d bytes, per-tuple limit %d", hi, sz, maxPayFrameBytes)
			}
			if frameBytes > 0 && frameBytes+sz > maxPayFrameBytes {
				break
			}
			frameBytes += sz
			hi++
		}
		count := hi - lo
		if err := writeFrameHeader(pc.bw, framePeerPay, peerHeadLen+4*count+frameBytes); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(h[12:], uint32(count))
		if _, err := pc.bw.Write(h[:]); err != nil {
			return err
		}
		for i := lo; i < hi; {
			c := len(buf) / 4
			if c > hi-i {
				c = hi - i
			}
			chunk := buf[:4*c]
			for k := 0; k < c; k++ {
				binary.LittleEndian.PutUint32(chunk[4*k:], uint32(len(pays[i+k])))
			}
			if _, err := pc.bw.Write(chunk); err != nil {
				return err
			}
			i += c
		}
		for _, p := range pays[lo:hi] {
			if _, err := pc.bw.Write(p); err != nil {
				return err
			}
		}
		lo = hi
	}
	return nil
}

// ---------- receiver side ----------

// peerContrib is one sender's (possibly still streaming) share of a
// transfer. keys is pooled and exactly declared-sized. reading marks a
// block decode in progress OUTSIDE the state lock: while set, the reader
// goroutine owns keys — a concurrent failure must not recycle the buffer
// (releaseLocked skips it; the reader releases it when it observes the
// poisoned state).
type peerContrib struct {
	declared int
	keys     []join.Key
	pos      int
	reading  bool

	// Optional payload segment: senders ship payload frames BEFORE the key
	// blocks (see writeContribution), so by the time the last key lands the
	// payloads are already here. hasPay latches on the first payload frame;
	// pay/off accumulate the bytes and running offsets (off[0] == 0, one more
	// entry per tuple); payTup counts the tuples whose lengths have landed.
	hasPay bool
	pay    []byte // pooled (byteBufPool)
	off    []uint32
	payTup int
}

// peerJobState accumulates one transfer's contributions until the matching
// stage-2 job binds it with the coordinator's expected per-sender counts;
// once every expected contribution is complete, the state assembles the
// deterministic sender-ordered flat block and signals ready.
type peerJobState struct {
	mu       sync.Mutex
	contrib  map[int]*peerContrib
	declared int64   // sum of contribution declarations (pre-bind buffering cap)
	expected []int64 // nil until the stage-2 job binds
	err      error
	done     bool
	ready    chan struct{} // closed once assembled or failed
	flat     []join.Key    // pooled; valid when done && err == nil

	// Assembled payload segment, sender-major like flat: present exactly when
	// the transfer's contributions carried payloads (all-or-none across
	// senders). flatOff has len(flat)+1 running offsets; flatPay is pooled.
	flatPay []byte
	flatOff []uint32
}

func newPeerJobState() *peerJobState {
	return &peerJobState{contrib: make(map[int]*peerContrib), ready: make(chan struct{})}
}

// failLocked poisons the state; waiters observe err after ready closes.
func (st *peerJobState) failLocked(err error) {
	if st.done {
		return
	}
	st.done = true
	st.err = err
	st.releaseLocked()
	close(st.ready)
}

func (st *peerJobState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failLocked(err)
}

func (st *peerJobState) releaseLocked() {
	for s, c := range st.contrib {
		// A buffer mid-decode belongs to its reader goroutine; it observes
		// st.done after the read and recycles the buffer itself.
		if c.keys != nil && !c.reading {
			exec.PutKeyBuffer(c.keys)
			c.keys = nil
		}
		// Payload buffers are only ever touched under st.mu, so unlike keys
		// they are always safe to recycle here.
		if c.pay != nil {
			putByteBuf(c.pay)
			c.pay, c.off = nil, nil
		}
		delete(st.contrib, s)
	}
	if st.flat != nil {
		exec.PutKeyBuffer(st.flat)
		st.flat = nil
	}
	if st.flatPay != nil {
		putByteBuf(st.flatPay)
		st.flatPay, st.flatOff = nil, nil
	}
}

// checkReadyLocked assembles the flat block once the state is bound and
// every expected contribution is complete. Contributions the coordinator
// did not announce are protocol errors.
func (st *peerJobState) checkReadyLocked() {
	if st.done || st.expected == nil {
		return
	}
	total := 0
	active, withPay, payBytes := 0, 0, 0
	for s, exp := range st.expected {
		c := st.contrib[s]
		if exp == 0 {
			if c != nil {
				st.failLocked(fmt.Errorf("sender %d contributed %d tuples, coordinator announced none", s, c.declared))
			}
			continue
		}
		if c == nil || int64(c.declared) != exp {
			if c != nil && int64(c.declared) != exp {
				st.failLocked(fmt.Errorf("sender %d declared %d tuples, coordinator announced %d", s, c.declared, exp))
			}
			return // still waiting (or just failed)
		}
		if c.pos != c.declared {
			return // still streaming
		}
		if c.hasPay && c.payTup != c.declared {
			// Defensive: senders ship payloads before keys, so a complete key
			// stream implies complete payloads — unless the sender is broken.
			st.failLocked(fmt.Errorf("sender %d shipped payloads for %d of %d tuples", s, c.payTup, c.declared))
			return
		}
		total += c.declared
		active++
		if c.hasPay {
			withPay++
			payBytes += len(c.pay)
		}
	}
	for s := range st.contrib {
		if s < 0 || s >= len(st.expected) {
			st.failLocked(fmt.Errorf("contribution from unannounced sender %d", s))
			return
		}
	}
	// The payload segment is all-or-none across senders: the assembled block
	// either carries one payload per tuple or none at all.
	if withPay != 0 && withPay != active {
		st.failLocked(fmt.Errorf("payloads from %d of %d contributing senders", withPay, active))
		return
	}
	if payBytes > MaxRelationPayloadBytes {
		st.failLocked(fmt.Errorf("transfer payloads hold %d bytes, relation limit %d", payBytes, MaxRelationPayloadBytes))
		return
	}
	// Complete: assemble in sender order, so the stage-2 block is fully
	// deterministic no matter how the contributions' arrivals interleaved.
	flat := exec.GetKeyBuffer(total)
	var flatPay []byte
	var flatOff []uint32
	if withPay > 0 {
		flatPay = getByteBuf(payBytes)
		flatOff = make([]uint32, 1, total+1)
	}
	pos, payPos := 0, 0
	for s, exp := range st.expected {
		if exp == 0 {
			continue
		}
		c := st.contrib[s]
		copy(flat[pos:], c.keys)
		pos += c.declared
		exec.PutKeyBuffer(c.keys)
		c.keys = nil
		if withPay > 0 {
			copy(flatPay[payPos:], c.pay)
			for i := 1; i < len(c.off); i++ {
				flatOff = append(flatOff, uint32(payPos)+c.off[i])
			}
			payPos += len(c.pay)
		}
		if c.pay != nil {
			putByteBuf(c.pay)
			c.pay, c.off = nil, nil
		}
		delete(st.contrib, s)
	}
	st.flat = flat
	st.flatPay, st.flatOff = flatPay, flatOff
	st.done = true
	close(st.ready)
}

// maxPeerStates bounds the distinct transfer tokens a worker will track at
// once; together with the per-state declared-count cap it bounds what an
// unauthenticated peer connection can make the worker buffer. (The mesh, like
// the session protocol, trusts its cluster network — TLS + auth is ROADMAP.)
const maxPeerStates = 1 << 12

// peerState returns (creating if needed) the transfer state for token; it
// returns nil when the token table is full of live transfers. A full table
// first evicts finished states (tombstones of cancelled or failed
// transfers, which hold no buffers) so long-lived workers can't wedge on
// accumulated cancellations — the worst an evicted tombstone costs is one
// late straggler contribution re-buffering up to the per-transfer cap.
func (w *Worker) peerState(token uint64) *peerJobState {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	st := w.peerStates[token]
	if st == nil {
		if !w.evictFinishedLocked() {
			return nil
		}
		st = newPeerJobState()
		w.peerStates[token] = st
	}
	return st
}

// evictFinishedLocked makes room in the token table (peersMu held): when
// full, it sweeps out FAILED states — the only evictable kind: they hold no
// buffers by invariant (failLocked released them), while an assembled state
// still in the table has a stage-2 job about to consume it. Reports whether
// the table has room afterwards.
func (w *Worker) evictFinishedLocked() bool {
	if len(w.peerStates) < maxPeerStates {
		return true
	}
	for tok, old := range w.peerStates {
		old.mu.Lock()
		evict := old.done && old.err != nil
		old.mu.Unlock()
		if evict {
			delete(w.peerStates, tok)
		}
	}
	return len(w.peerStates) < maxPeerStates
}

// bindPeerJob attaches a stage-2 job to its transfer state with the
// coordinator-announced per-sender counts.
func (w *Worker) bindPeerJob(token uint64, senderCounts []int64) (*peerJobState, error) {
	var total int64
	for s, c := range senderCounts {
		if c < 0 || c > MaxRelationTuples {
			return nil, fmt.Errorf("sender %d count %d outside [0, %d]", s, c, MaxRelationTuples)
		}
		total += c
	}
	if total > MaxRelationTuples {
		return nil, fmt.Errorf("peer transfer of %d tuples exceeds relation limit %d", total, MaxRelationTuples)
	}
	st := w.peerState(token)
	if st == nil {
		return nil, fmt.Errorf("transfer table full (%d tokens)", maxPeerStates)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.expected != nil {
		return nil, fmt.Errorf("transfer token %d already bound", token)
	}
	st.expected = senderCounts
	st.checkReadyLocked()
	return st, nil
}

// bindPeerCounts is the late-bind half of a counts-deferred peer job: a
// frameV3PeerBind delivers the exact per-sender counts after stage 1
// finished, with the stage-2 job already parked on the transfer's ready
// channel. It mirrors bindPeerJob's validations, but with no job context to
// fail it POISONS the state instead — the parked job observes the error
// through its ready wake-up and replies it. A token with no tracked state is
// ignored (the job failed at open and already replied; the coordinator's
// await surfaces that reply first).
func (w *Worker) bindPeerCounts(token uint64, senderCounts []int64) {
	w.peersMu.Lock()
	st := w.peerStates[token]
	w.peersMu.Unlock()
	if st == nil {
		return
	}
	var total int64
	var bad error
	for s, c := range senderCounts {
		if c < 0 || c > MaxRelationTuples {
			bad = fmt.Errorf("late bind names sender %d count %d outside [0, %d]", s, c, MaxRelationTuples)
			break
		}
		total += c
	}
	if bad == nil && total > MaxRelationTuples {
		bad = fmt.Errorf("late bind of %d tuples exceeds relation limit %d", total, MaxRelationTuples)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case bad != nil:
		st.failLocked(bad)
	case st.expected != nil:
		st.failLocked(fmt.Errorf("transfer token %d already bound", token))
	default:
		st.expected = senderCounts
		st.checkReadyLocked()
	}
}

// dropPeerState discards the transfer state for token. An in-flight state
// is poisoned and RETAINED as a tombstone (creating one if the token was
// never seen): contributions may still be streaming in when a cancel
// arrives, and a tombstone makes their frames swallow without buffering
// instead of re-creating fresh state that nothing would ever reap — a
// poisoned state holds no buffers, so a tombstone costs ~100 bytes, bounded
// by maxPeerStates. A state that already ASSEMBLED (its job was aborted or
// its session died before consuming the block) releases its flat buffer and
// is removed outright — every announced contribution arrived, so no
// stragglers can revive the token. finishPeerState removes states whose job
// consumed them.
func (w *Worker) dropPeerState(token uint64) {
	w.peersMu.Lock()
	// Record the cancellation in the bounded ring FIRST: a stats-parked plan
	// job consults it (peerTokenDead) to honor a cancel that raced ahead of
	// its parking, and unlike the tombstone below the ring cannot be
	// squeezed out by a full table of live transfers.
	w.cancelRing[w.cancelNext%uint64(len(w.cancelRing))] = token
	w.cancelNext++
	st := w.peerStates[token]
	if st == nil && w.evictFinishedLocked() {
		st = newPeerJobState()
		w.peerStates[token] = st
	}
	w.peersMu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	assembled := st.done && st.flat != nil
	if assembled {
		exec.PutKeyBuffer(st.flat)
		st.flat = nil
		if st.flatPay != nil {
			putByteBuf(st.flatPay)
			st.flatPay, st.flatOff = nil, nil
		}
	} else {
		st.failLocked(fmt.Errorf("transfer cancelled"))
	}
	st.mu.Unlock()
	if assembled {
		w.finishPeerState(token)
	}
}

// finishPeerState removes the completed state after its job consumed flat.
func (w *Worker) finishPeerState(token uint64) {
	w.peersMu.Lock()
	delete(w.peerStates, token)
	w.peersMu.Unlock()
}

// deliverLocal is the self-contribution path: a worker that hosts both the
// sending stage-1 job and the receiving stage-2 worker moves the block in
// memory. The keys are copied — the caller's shuffle buffer is recycled.
func (w *Worker) deliverLocal(token uint64, sender int, keys []join.Key) error {
	st := w.peerState(token)
	if st == nil {
		return fmt.Errorf("transfer table full (%d tokens)", maxPeerStates)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return st.err
	}
	if st.contrib[sender] != nil {
		err := fmt.Errorf("duplicate local contribution from sender %d", sender)
		st.failLocked(err)
		return err
	}
	st.declared += int64(len(keys))
	c := &peerContrib{declared: len(keys), keys: exec.GetKeyBuffer(len(keys)), pos: len(keys)}
	copy(c.keys, keys)
	st.contrib[sender] = c
	st.checkReadyLocked()
	return nil
}

// handlePeer serves one inbound peer-mesh connection until the sender hangs
// up. Frame-level corruption is connection-fatal; a connection dying with
// contributions still streaming fails their transfers (and thereby the
// stage-2 jobs bound to them) with an error naming the sender address.
func (w *Worker) handlePeer(br *bufio.Reader, conn net.Conn) {
	type inflightKey struct {
		token  uint64
		sender int
	}
	inflight := make(map[inflightKey]*peerJobState)
	defer func() {
		for k, st := range inflight {
			st.fail(fmt.Errorf("peer connection from %s died mid-transfer (sender %d)", conn.RemoteAddr(), k.sender))
		}
	}()

	fatal := func(err error) {
		for k, st := range inflight {
			st.fail(fmt.Errorf("peer transfer from %s (sender %d): %v", conn.RemoteAddr(), k.sender, err))
		}
		inflight = nil
	}

	for {
		typ, n, err := readFrameHeader(br)
		if err != nil {
			return
		}
		armConn(conn)
		switch typ {
		case framePeerHead:
			if n != peerHeadLen {
				fatal(fmt.Errorf("head frame length %d", n))
				return
			}
			var h [peerHeadLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			token := binary.LittleEndian.Uint64(h[:])
			sender := int(binary.LittleEndian.Uint32(h[8:]))
			count := int64(binary.LittleEndian.Uint32(h[12:]))
			if sender >= maxPeerSenders || count > MaxRelationTuples {
				fatal(fmt.Errorf("head declares sender %d count %d", sender, count))
				return
			}
			st := w.peerState(token)
			if st == nil {
				fatal(fmt.Errorf("transfer table full (%d tokens)", maxPeerStates))
				return
			}
			st.mu.Lock()
			switch {
			case st.done:
				// Poisoned or cancelled transfer: swallow the contribution's
				// frames (they carry their own counts) without buffering.
			case st.contrib[sender] != nil:
				st.failLocked(fmt.Errorf("duplicate contribution from sender %d via %s", sender, conn.RemoteAddr()))
			case st.expected != nil && (sender >= len(st.expected) || st.expected[sender] != count):
				st.failLocked(fmt.Errorf("sender %d via %s declared %d tuples, coordinator announced %s",
					sender, conn.RemoteAddr(), count, expectedStr(st.expected, sender)))
			case st.declared+count > MaxRelationTuples:
				// Pre-bind buffering cap: one transfer may never declare more
				// than a relation is allowed to hold, bound or not.
				st.failLocked(fmt.Errorf("transfer declarations exceed %d tuples at sender %d via %s",
					MaxRelationTuples, sender, conn.RemoteAddr()))
			default:
				st.declared += count
				c := &peerContrib{declared: int(count), keys: exec.GetKeyBuffer(int(count))}
				st.contrib[sender] = c
				if count > 0 {
					inflight[inflightKey{token, sender}] = st
				} else {
					st.checkReadyLocked()
				}
			}
			st.mu.Unlock()

		case framePeerBlock:
			if n < peerBlockHeaderLen {
				fatal(fmt.Errorf("block frame length %d below sub-header size", n))
				return
			}
			var h [peerBlockHeaderLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			token := binary.LittleEndian.Uint64(h[:])
			sender := int(binary.LittleEndian.Uint32(h[8:]))
			count := int(binary.LittleEndian.Uint32(h[12:]))
			if n != peerBlockHeaderLen+8*count {
				fatal(fmt.Errorf("block frame length %d inconsistent with count %d", n, count))
				return
			}
			st := w.peerState(token)
			if st == nil {
				fatal(fmt.Errorf("block for untracked transfer (table full)"))
				return
			}
			st.mu.Lock()
			c := st.contrib[sender]
			var dst []join.Key
			switch {
			case st.done || c == nil:
				// Swallowing a poisoned transfer's frames keeps the stream in
				// sync (c == nil after done released the contribution).
			case c.pos+count > c.declared:
				st.failLocked(fmt.Errorf("sender %d via %s overflows declared %d tuples", sender, conn.RemoteAddr(), c.declared))
				delete(inflight, inflightKey{token, sender})
			default:
				dst = c.keys[c.pos : c.pos+count]
				c.reading = true // the decode below runs outside st.mu
			}
			st.mu.Unlock()
			if dst == nil {
				if _, err := io.CopyN(io.Discard, br, int64(8*count)); err != nil {
					return
				}
				break
			}
			readErr := readKeysLE(br, dst)
			st.mu.Lock()
			c.reading = false
			if st.done {
				// The transfer failed while we were decoding; the buffer's
				// release was deferred to us (see releaseLocked).
				if c.keys != nil {
					exec.PutKeyBuffer(c.keys)
					c.keys = nil
				}
				delete(inflight, inflightKey{token, sender})
			} else if readErr == nil {
				c.pos += count
				if c.pos == c.declared {
					delete(inflight, inflightKey{token, sender})
					st.checkReadyLocked()
				}
			}
			st.mu.Unlock()
			if readErr != nil {
				return
			}

		case framePeerPay:
			if n < peerHeadLen {
				fatal(fmt.Errorf("payload frame length %d below sub-header size", n))
				return
			}
			var h [peerHeadLen]byte
			if _, err := io.ReadFull(br, h[:]); err != nil {
				return
			}
			token := binary.LittleEndian.Uint64(h[:])
			sender := int(binary.LittleEndian.Uint32(h[8:]))
			count := int(binary.LittleEndian.Uint32(h[12:]))
			if count < 1 || count > maxPeerBlockKeys || n < peerHeadLen+4*count {
				fatal(fmt.Errorf("payload frame length %d inconsistent with count %d", n, count))
				return
			}
			// The whole frame body stages through a pooled buffer OUTSIDE the
			// state lock — unlike key blocks there is no pre-sized destination
			// to decode into (payload lengths arrive with their bytes), so the
			// reading-flag dance is unnecessary.
			body := getByteBuf(n - peerHeadLen)
			if _, err := io.ReadFull(br, body); err != nil {
				putByteBuf(body)
				return
			}
			lens, bytes := body[:4*count], body[4*count:]
			tot, badLen := 0, false
			for i := 0; i < count; i++ {
				l := int(binary.LittleEndian.Uint32(lens[4*i:]))
				if l > maxPayFrameBytes {
					badLen = true
					break
				}
				tot += l
			}
			if badLen || tot != len(bytes) {
				putByteBuf(body)
				fatal(fmt.Errorf("payload frame length %d inconsistent with its length vector", n))
				return
			}
			st := w.peerState(token)
			if st == nil {
				putByteBuf(body)
				fatal(fmt.Errorf("payload for untracked transfer (table full)"))
				return
			}
			st.mu.Lock()
			c := st.contrib[sender]
			switch {
			case st.done || c == nil:
				// Swallow a poisoned or unheaded transfer's payloads.
			case c.pos > 0:
				st.failLocked(fmt.Errorf("sender %d via %s shipped payloads after key blocks began", sender, conn.RemoteAddr()))
				delete(inflight, inflightKey{token, sender})
			case c.payTup+count > c.declared:
				st.failLocked(fmt.Errorf("sender %d via %s overflows declared %d payloads", sender, conn.RemoteAddr(), c.declared))
				delete(inflight, inflightKey{token, sender})
			case len(c.pay)+tot > MaxRelationPayloadBytes:
				st.failLocked(fmt.Errorf("sender %d via %s exceeds %d payload bytes", sender, conn.RemoteAddr(), MaxRelationPayloadBytes))
				delete(inflight, inflightKey{token, sender})
			default:
				if !c.hasPay {
					c.hasPay = true
					c.pay = getByteBuf(0)
					c.off = make([]uint32, 1, c.declared+1)
				}
				c.pay = append(c.pay, bytes...)
				for i := 0; i < count; i++ {
					l := binary.LittleEndian.Uint32(lens[4*i:])
					c.off = append(c.off, c.off[len(c.off)-1]+l)
				}
				c.payTup += count
			}
			st.mu.Unlock()
			putByteBuf(body)

		default:
			fatal(fmt.Errorf("unknown peer frame type %d", typ))
			return
		}
		disarmConn(conn)
	}
}

func expectedStr(expected []int64, sender int) string {
	if sender >= len(expected) {
		return fmt.Sprintf("only %d senders", len(expected))
	}
	return fmt.Sprintf("%d", expected[sender])
}

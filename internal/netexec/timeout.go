package netexec

import (
	"context"
	"net"
	"sync/atomic"
	"time"
)

// Timeouts bounds a connection's blocking operations so one hung peer fails
// a job (or a connection) instead of wedging the whole session. Dial bounds
// connection establishment (sessions and the worker peer mesh); IO is a
// per-operation progress deadline: every write, and every read that is part
// of an in-flight frame payload, must make progress within IO. Reads at
// frame boundaries are exempt — an idle persistent connection is legitimate
// — so the deadline measures stalled transfers, not quiet sessions (and not
// long-running worker joins, which produce no traffic while computing).
//
// Job is a per-sub-job liveness deadline: the total wall time from a
// sub-job's dispatch to its terminal reply. It catches the failure mode the
// other two cannot — a worker that accepted a job and went silent while its
// TCP connection stays healthy — at the cost of bounding legitimate
// computation, so it should be sized to the slowest expected job, not the
// slowest expected frame. A worker exceeding it is declared dead and its
// connection poisoned (see WorkerFault/FaultTimeout).
//
// The zero value disables all deadlines.
type Timeouts struct {
	Dial time.Duration
	IO   time.Duration
	Job  time.Duration
}

// dialTCP connects with the configured dial timeout (unbounded when zero),
// honoring ctx cancellation even while blocked in the kernel handshake —
// net.Dialer.DialContext aborts the in-flight connect when ctx ends, where
// the old net.DialTimeout path ignored the caller entirely.
func dialTCP(ctx context.Context, addr string, t Timeouts) (net.Conn, error) {
	d := net.Dialer{Timeout: t.Dial}
	return d.DialContext(ctx, "tcp", addr)
}

// timedConn wraps a connection with Timeouts.IO semantics: writes always
// refresh a write deadline (writes only happen while actively sending), and
// reads refresh a read deadline only while armed — the read loops arm
// around frame payloads and disarm at frame boundaries. Each Read/Write
// gets a fresh deadline, so the timeout bounds the maximum stall between
// progress, not the total transfer time. With io == 0 it is a passthrough.
type timedConn struct {
	net.Conn
	io    time.Duration
	armed atomic.Bool
}

func newTimedConn(c net.Conn, io time.Duration) *timedConn {
	return &timedConn{Conn: c, io: io}
}

func (c *timedConn) Read(p []byte) (int, error) {
	if c.io > 0 && c.armed.Load() {
		_ = c.Conn.SetReadDeadline(time.Now().Add(c.io))
	}
	return c.Conn.Read(p)
}

func (c *timedConn) Write(p []byte) (int, error) {
	if c.io > 0 {
		_ = c.Conn.SetWriteDeadline(time.Now().Add(c.io))
	}
	return c.Conn.Write(p)
}

// arm makes subsequent reads deadline-bounded (mid-frame).
func (c *timedConn) arm() {
	if c.io > 0 {
		c.armed.Store(true)
	}
}

// disarm returns reads to unbounded blocking (frame boundary) and clears
// any pending deadline so a buffered partial read can't fire it later.
func (c *timedConn) disarm() {
	if c.io > 0 {
		c.armed.Store(false)
		_ = c.Conn.SetReadDeadline(time.Time{})
	}
}

// armConn arms c when it is deadline-capable (a *timedConn with IO set).
func armConn(c net.Conn) {
	if tc, ok := c.(*timedConn); ok {
		tc.arm()
	}
}

// disarmConn is armConn's counterpart.
func disarmConn(c net.Conn) {
	if tc, ok := c.(*timedConn); ok {
		tc.disarm()
	}
}

package netexec

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
)

// leakCheck snapshots the goroutine count and asserts at cleanup — after
// every later-registered cleanup (worker closes, session hangups) has run —
// that the test's goroutines have exited. The +2 allowance absorbs runtime
// helpers; the poll absorbs teardown races (a read loop observing its
// closed connection). Every session/peer/fault test gets this via the
// startWorkerSet/dialSession helpers, so no recovery path can leak parked
// readers unnoticed.
func leakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= baseline+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: baseline %d, now %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
	})
}

// startWorkerSet starts n workers and returns them with their addresses.
func startWorkerSet(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	leakCheck(t)
	ws := make([]*Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}
	return ws, addrs
}

func dialSession(t *testing.T, addrs []string) *Session {
	t.Helper()
	sess, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

func TestSessionMatchesLocalAcrossJobs(t *testing.T) {
	r1 := randKeys(3000, 1500, 70)
	r2 := randKeys(3000, 1500, 71)
	cond := join.NewBand(2)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 4, Model: model, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startWorkerSet(t, plan.Scheme.Workers())
	sess := dialSession(t, addrs)

	// N numbered jobs over the same dialed connections — the amortization
	// the session protocol exists for.
	for jobN := 0; jobN < 3; jobN++ {
		cfg := exec.Config{Seed: 73 + uint64(jobN)}
		local := exec.Run(r1, r2, cond, plan.Scheme, model, cfg)
		net, err := exec.RunOver(sess, r1, r2, cond, plan.Scheme, model, cfg)
		if err != nil {
			t.Fatalf("job %d: %v", jobN, err)
		}
		if net.Output != local.Output || net.NetworkTuples != local.NetworkTuples ||
			net.MaxWork != local.MaxWork || net.TotalWork != local.TotalWork {
			t.Fatalf("job %d: aggregates differ: sess %v local %v", jobN, net, local)
		}
		for w := range local.Workers {
			if net.Workers[w] != local.Workers[w] {
				t.Fatalf("job %d worker %d: sess %+v local %+v", jobN, w, net.Workers[w], local.Workers[w])
			}
		}
		if !strings.HasSuffix(net.Scheme, "@sess") {
			t.Fatalf("scheme label %q", net.Scheme)
		}
	}
}

func TestSessionTuplesPayloadRoundTrip(t *testing.T) {
	// Payload-carrying relations over the wire: matched pairs (and therefore
	// emitted payloads) must be identical to the in-process engine, pair for
	// pair, since both transports join the same shuffled blocks.
	const n = 2000
	r1 := make([]exec.Tuple[join.Key], n)
	r2 := make([]exec.Tuple[join.Key], n)
	keys1 := randKeys(n, 800, 80)
	keys2 := randKeys(n, 800, 81)
	for i := range r1 {
		r1[i] = exec.Tuple[join.Key]{Key: keys1[i], Payload: keys1[i] * 3}
		r2[i] = exec.Tuple[join.Key]{Key: keys2[i], Payload: keys2[i] * 7}
	}
	cond := join.NewBand(1)
	plan, err := core.PlanCSIO(keys1, keys2, cond, core.Options{J: 4, Model: model, Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startWorkerSet(t, plan.Scheme.Workers())
	sess := dialSession(t, addrs)
	enc := func(dst []byte, p join.Key) []byte {
		return binary.LittleEndian.AppendUint64(dst, uint64(p))
	}

	type pair struct {
		w    int
		a, b exec.Tuple[join.Key]
	}
	collect := func(rt exec.Runtime, e1, e2 exec.PayloadEncoder[join.Key]) ([]pair, *exec.Result) {
		perWorker := make([][]pair, plan.Scheme.Workers())
		res, err := exec.RunTuplesOver(rt, r1, r2, cond, plan.Scheme, model,
			exec.Config{Seed: 83}, e1, e2,
			func(w int, a, b exec.Tuple[join.Key]) {
				perWorker[w] = append(perWorker[w], pair{w, a, b})
			})
		if err != nil {
			t.Fatal(err)
		}
		var all []pair
		for _, pw := range perWorker {
			all = append(all, pw...)
		}
		return all, res
	}
	localPairs, localRes := collect(exec.Local{}, nil, nil)
	sessPairs, sessRes := collect(sess, enc, enc)

	if want := localjoin.NestedLoopCount(keys1, keys2, cond); localRes.Output != want {
		t.Fatalf("local output %d, ground truth %d", localRes.Output, want)
	}
	if sessRes.Output != localRes.Output || sessRes.NetworkTuples != localRes.NetworkTuples {
		t.Fatalf("aggregates differ: sess %v local %v", sessRes, localRes)
	}
	if len(sessPairs) != len(localPairs) {
		t.Fatalf("pair counts differ: sess %d local %d", len(sessPairs), len(localPairs))
	}
	for i := range localPairs {
		if sessPairs[i] != localPairs[i] {
			t.Fatalf("pair %d differs: sess %+v local %+v", i, sessPairs[i], localPairs[i])
		}
	}
	for w := range localRes.Workers {
		if sessRes.Workers[w] != localRes.Workers[w] {
			t.Fatalf("worker %d metrics differ: sess %+v local %+v",
				w, sessRes.Workers[w], localRes.Workers[w])
		}
	}
}

func TestSessionWorkerDiesBetweenJobsAndRedial(t *testing.T) {
	r1 := randKeys(500, 300, 90)
	r2 := randKeys(500, 300, 91)
	cond := join.Equi{}
	scheme := partition.NewCI(2)
	ws, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)
	cfg := exec.Config{Seed: 92}

	if _, err := exec.RunOver(sess, r1, r2, cond, scheme, model, cfg); err != nil {
		t.Fatal(err)
	}
	// Kill worker 1 between jobs: the next job must fail with one error
	// naming the worker's address and the job number, not hang.
	_ = ws[1].Close()
	_, err := exec.RunOver(sess, r1, r2, cond, scheme, model, cfg)
	if err == nil {
		t.Fatal("job against a dead worker succeeded")
	}
	if !strings.Contains(err.Error(), addrs[1]) {
		t.Fatalf("error %q does not name the dead worker %s", err, addrs[1])
	}
	if !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("error %q does not name the job", err)
	}

	// Restart a worker and redial: a fresh session works.
	w2, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = w2.Serve() }()
	t.Cleanup(func() { _ = w2.Close() })
	sess2 := dialSession(t, []string{addrs[0], w2.Addr()})
	want := localjoin.NestedLoopCount(r1, r2, cond)
	res, err := exec.RunOver(sess2, r1, r2, cond, scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want {
		t.Fatalf("redialed output %d, want %d", res.Output, want)
	}
}

func TestSessionConcurrentJobs(t *testing.T) {
	r1 := randKeys(800, 500, 95)
	r2 := randKeys(800, 500, 96)
	cond := join.NewBand(1)
	scheme := partition.NewCI(2)
	_, addrs := startWorkerSet(t, 2)
	sess := dialSession(t, addrs)
	want := localjoin.NestedLoopCount(r1, r2, cond)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed uint64) {
			res, err := exec.RunOver(sess, r1, r2, cond, scheme, model, exec.Config{Seed: seed})
			if err == nil && res.Output != want {
				err = fmt.Errorf("output %d, want %d", res.Output, want)
			}
			done <- err
		}(uint64(100 + i))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// dialV3 opens a raw session connection for protocol-level fault injection.
func dialV3(t *testing.T, addr string) (*bufio.Writer, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	bw := bufio.NewWriter(conn)
	var prelude [6]byte
	copy(prelude[:], protoMagic[:])
	binary.LittleEndian.PutUint16(prelude[4:], protoVersionSession)
	if _, err := bw.Write(prelude[:]); err != nil {
		t.Fatal(err)
	}
	return bw, conn
}

// readV3ErrMetrics reads reply frames until the job's metrics and returns
// its error string.
func readV3ErrMetrics(t *testing.T, conn net.Conn, wantJob uint32) string {
	t.Helper()
	br := bufio.NewReader(conn)
	for {
		typ, job, n, err := readV3FrameHeader(br)
		if err != nil {
			t.Fatalf("reading reply: %v", err)
		}
		if typ != frameV3Metrics {
			t.Fatalf("unexpected reply frame %d", typ)
		}
		if job != wantJob {
			t.Fatalf("reply for job %d, want %d", job, wantJob)
		}
		var m metrics
		if err := readGobPayload(br, n, &m); err != nil {
			t.Fatal(err)
		}
		return m.Err
	}
}

func sendOpenJob(t *testing.T, bw *bufio.Writer, id uint32, wantPairs bool) {
	t.Helper()
	spec, err := join.SpecOf(join.Equi{})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeV3GobFrame(bw, frameV3OpenJob, id, jobOpen{Cond: spec, WantPairs: wantPairs}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTruncatedPayloadFrame(t *testing.T) {
	_, addrs := startWorkerSet(t, 1)
	bw, conn := dialV3(t, addrs[0])
	sendOpenJob(t, bw, 1, true)
	// R1: one tuple, declares 8 payload bytes; the payload frame's lengths
	// sum to 8 but only 4 bytes follow.
	if err := writeRelHead(bw, 1, 1, 1, true, 8); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 1, 1, []join.Key{42}); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3Pay, 1, blockHeaderLen+4+4); err != nil {
		t.Fatal(err)
	}
	var bh [blockHeaderLen]byte
	bh[0] = 1
	binary.LittleEndian.PutUint32(bh[1:], 1)
	if _, err := bw.Write(bh[:]); err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 8) // claims 8 bytes…
	if _, err := bw.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write([]byte{1, 2, 3, 4}); err != nil { // …ships 4
		t.Fatal(err)
	}
	if err := writeRelHead(bw, 1, 2, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	msg := readV3ErrMetrics(t, conn, 1)
	if !strings.Contains(msg, "truncated") {
		t.Fatalf("truncated payload frame accepted: %q", msg)
	}
}

func TestSessionPayloadDeclarationEnforced(t *testing.T) {
	_, addrs := startWorkerSet(t, 1)

	// Payload stream shorter than the head declared.
	bw, conn := dialV3(t, addrs[0])
	sendOpenJob(t, bw, 1, true)
	if err := writeRelHead(bw, 1, 1, 1, true, 16); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 1, 1, []join.Key{7}); err != nil {
		t.Fatal(err)
	}
	if err := writeRelHead(bw, 1, 2, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readV3ErrMetrics(t, conn, 1); !strings.Contains(msg, "declared") {
		t.Fatalf("missing payload stream accepted: %q", msg)
	}

	// Payload block for a relation that declared none.
	bw, conn = dialV3(t, addrs[0])
	sendOpenJob(t, bw, 1, true)
	if err := writeRelHead(bw, 1, 1, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 1, 1, []join.Key{7}); err != nil {
		t.Fatal(err)
	}
	if err := writePayloadBlocks(bw, 1, 1, exec.PayloadBlock{Flat: []byte{9}, Off: []uint32{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := writeRelHead(bw, 1, 2, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readV3ErrMetrics(t, conn, 1); !strings.Contains(msg, "payload") {
		t.Fatalf("undeclared payload block accepted: %q", msg)
	}
}

func TestSessionBlockLengthMismatchKeepsStreamInSync(t *testing.T) {
	// A block frame whose header length disagrees with its embedded count
	// fails the job, but the worker must consume exactly the frame-declared
	// bytes — the next job on the same connection still works.
	_, addrs := startWorkerSet(t, 1)
	bw, conn := dialV3(t, addrs[0])
	sendOpenJob(t, bw, 1, false)
	if err := writeRelHead(bw, 1, 1, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	// Frame declares 5 + 16 payload bytes but the embedded count says 1 key
	// (5 + 8): the extra 8 bytes must be drained as frame payload.
	if err := writeV3FrameHeader(bw, frameV3Block, 1, blockHeaderLen+16); err != nil {
		t.Fatal(err)
	}
	var bh [blockHeaderLen]byte
	bh[0] = 1
	binary.LittleEndian.PutUint32(bh[1:], 1)
	if _, err := bw.Write(bh[:]); err != nil {
		t.Fatal(err)
	}
	var keys [16]byte
	if _, err := bw.Write(keys[:]); err != nil {
		t.Fatal(err)
	}
	if err := writeRelHead(bw, 1, 2, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readV3ErrMetrics(t, conn, 1); !strings.Contains(msg, "inconsistent") {
		t.Fatalf("mismatched block frame accepted: %q", msg)
	}

	// Same connection, next job: framing survived the bad frame.
	sendOpenJob(t, bw, 2, false)
	if err := writeRelHead(bw, 2, 1, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 2, 1, []join.Key{5}); err != nil {
		t.Fatal(err)
	}
	if err := writeRelHead(bw, 2, 2, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 2, 2, []join.Key{5}); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readV3ErrMetrics(t, conn, 2); msg != "" {
		t.Fatalf("follow-up job failed after drained bad frame: %q", msg)
	}
}

func TestWorkerShutdownDrainsInFlightJob(t *testing.T) {
	ws, addrs := startWorkerSet(t, 1)
	w := ws[0]

	// Open a session job and stall before EOS, then shut down: Shutdown
	// must wait for the job, the worker must still reply, and the listener
	// must refuse new connections.
	bw, conn := dialV3(t, addrs[0])
	sendOpenJob(t, bw, 1, false)
	if err := writeRelHead(bw, 1, 1, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 1, 1, []join.Key{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to register the in-flight job.
	time.Sleep(50 * time.Millisecond)

	var shutdownDone atomic.Bool
	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := w.Shutdown(ctx)
		shutdownDone.Store(true)
		shutErr <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if shutdownDone.Load() {
		t.Fatal("Shutdown returned while a job was still in flight")
	}
	// Finish the job; the drain completes and the reply still arrives.
	if err := writeRelHead(bw, 1, 2, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocksV3(bw, 1, 2, []join.Key{2}); err != nil {
		t.Fatal(err)
	}
	if err := writeV3FrameHeader(bw, frameV3EOS, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readV3ErrMetrics(t, conn, 1); msg != "" {
		t.Fatalf("drained job failed: %q", msg)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := Dial([]string{addrs[0]}); err == nil {
		t.Fatal("worker accepted a connection after Shutdown")
	}
}

func TestWorkerShutdownRefusesNewJobs(t *testing.T) {
	ws, addrs := startWorkerSet(t, 1)
	sess := dialSession(t, addrs)
	r1 := randKeys(100, 50, 110)
	scheme := partition.NewCI(1)
	if _, err := exec.RunOver(sess, r1, r1, join.Equi{}, scheme, model, exec.Config{Seed: 111}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws[0].Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The session's connection was closed by the drain; a new job fails
	// cleanly rather than hanging.
	if _, err := exec.RunOver(sess, r1, r1, join.Equi{}, scheme, model, exec.Config{Seed: 112}); err == nil {
		t.Fatal("job accepted after worker shutdown")
	}
}

func TestSessionAbortsOversizedPayloadJobCleanly(t *testing.T) {
	// A per-tuple payload beyond the frame limit is a coordinator-side
	// validation failure: the job must fail with a descriptive error AND be
	// aborted on the worker — the session stays usable and the worker's
	// drain accounting is not stuck on the orphan (Shutdown completes).
	ws, addrs := startWorkerSet(t, 1)
	sess := dialSession(t, addrs)

	keyShuffleOf := func(keys []join.Key) *exec.KeyShuffle {
		s1, _ := exec.ShufflePair(keys, nil, partition.NewCI(1), exec.Config{Seed: 1})
		return s1
	}
	oversized := exec.RelData{
		Keys: keyShuffleOf([]join.Key{7}),
		Payloads: func(int) exec.PayloadBlock {
			return exec.PayloadBlock{
				Flat: make([]byte, maxPayFrameBytes+1),
				Off:  []uint32{0, maxPayFrameBytes + 1},
			}
		},
	}
	job := &exec.Job{
		Cond:    join.Equi{},
		Workers: 1,
		R1:      exec.ResolvedRelFuture(oversized),
		R2:      exec.ResolvedRelFuture(exec.RelData{Keys: keyShuffleOf(nil)}),
	}
	err := sess.RunJob(job, make([]exec.WorkerMetrics, 1))
	if err == nil {
		t.Fatal("oversized per-tuple payload accepted")
	}
	if !strings.Contains(err.Error(), "per-tuple wire limit") {
		t.Fatalf("error %q does not name the per-tuple limit", err)
	}

	// The session (and the worker's job accounting) survived the abort.
	r1 := randKeys(200, 100, 130)
	res, err := exec.RunOver(sess, r1, r1, join.Equi{}, partition.NewCI(1), model,
		exec.Config{Seed: 131})
	if err != nil {
		t.Fatalf("session unusable after aborted job: %v", err)
	}
	if want := localjoin.NestedLoopCount(r1, r1, join.Equi{}); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws[0].Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown stuck on aborted job's accounting: %v", err)
	}
}

func TestSessionErrorAggregationNamesAllFailures(t *testing.T) {
	r1 := randKeys(2000, 1000, 120)
	r2 := randKeys(2000, 1000, 121)
	scheme := partition.NewCI(4)
	baseline := runtime.NumGoroutine()
	ws, addrs := startWorkerSet(t, 4)
	sess := dialSession(t, addrs)
	if _, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 122}); err != nil {
		t.Fatal(err)
	}
	_ = ws[1].Close()
	_ = ws[3].Close()
	_, err := exec.RunOver(sess, r1, r2, join.Equi{}, scheme, model, exec.Config{Seed: 123})
	if err == nil {
		t.Fatal("job with two dead workers succeeded")
	}
	for _, addr := range []string{addrs[1], addrs[3]} {
		if !strings.Contains(err.Error(), addr) {
			t.Fatalf("aggregated error %q does not name failed worker %s", err, addr)
		}
	}
	for _, addr := range []string{addrs[0], addrs[2]} {
		if strings.Contains(err.Error(), addr) {
			t.Fatalf("aggregated error %q names healthy worker %s", err, addr)
		}
	}

	// A failed job must not leak the session's goroutines: after tearing
	// everything down, the count settles back to (roughly) the baseline.
	_ = sess.Close()
	for _, w := range ws {
		_ = w.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after session failure: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

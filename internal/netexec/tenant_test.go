package netexec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmitterHogCapped is the discriminating fairness test: a hog tenant
// with 16 continuously-backlogged goroutines competes with 8 single-goroutine
// tenants for ONE execution slot. Per-tenant fair queues must cap the hog
// near one tenant's share (1/9 ≈ 11%); any arrival-order (FIFO) dispatch
// would hand it ~16/24 ≈ 67%. The 25% ceiling is loose enough for scheduler
// noise and strict enough that no throughput-proportional policy passes.
func TestAdmitterHogCapped(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlight: 1}, func(string) float64 { return 1 })
	var stop atomic.Bool
	counts := make(map[string]*atomic.Int64)
	var wg sync.WaitGroup
	run := func(tenant string, n int) {
		c := &atomic.Int64{}
		counts[tenant] = c
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				never := make(chan struct{})
				for !stop.Load() {
					rel, err := a.acquire(tenant, never, never)
					if err != nil {
						t.Error(err)
						return
					}
					c.Add(1)
					rel()
				}
			}()
		}
	}
	run("hog", 16)
	for i := 0; i < 8; i++ {
		run(fmt.Sprintf("tenant-%d", i), 1)
	}
	// Warm up past the spawn transient (goroutines start staggered, and the
	// early arrivals monopolize the uncontended fast path), then measure a
	// steady-state window.
	time.Sleep(100 * time.Millisecond)
	for _, c := range counts {
		c.Store(0)
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	var total int64
	for _, c := range counts {
		total += c.Load()
	}
	hogShare := float64(counts["hog"].Load()) / float64(total)
	s := a.stats()
	t.Logf("hog share %.1f%% of %d grants (fastpath %d dispatched %d)", 100*hogShare, total, s.FastPath, s.Dispatched)
	if hogShare > 0.25 {
		t.Fatalf("hog took %.0f%% of grants; fair queues should cap it near 11%%", 100*hogShare)
	}
	// And no regular tenant starved: each is owed ~1/9 of the slot.
	fair := float64(total) / 9
	for tn, c := range counts {
		if tn == "hog" {
			continue
		}
		if got := float64(c.Load()); got < fair/2 {
			t.Errorf("%s got %.0f grants, below half its fair share %.0f", tn, got, fair)
		}
	}
}

// TestAdmitterWeightedDispatch checks stride scheduling exactly: with
// backlogged tenants at weights 1, 2 and 4 draining through one slot, every
// window of 7 consecutive grants contains them in 1:2:4 proportion.
func TestAdmitterWeightedDispatch(t *testing.T) {
	weights := map[string]float64{"a": 1, "b": 2, "c": 4}
	a := newAdmitter(AdmissionConfig{MaxInFlight: 1}, func(tn string) float64 { return weights[tn] })
	never := make(chan struct{})

	// Hold the only slot while the backlog builds, so the first release
	// dispatches against fully-populated queues.
	hold, err := a.acquire("hold", never, never)
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 20
	order := make(chan string) // unbuffered: grants record in dispatch order
	var wg sync.WaitGroup
	for tn := range weights {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				rel, err := a.acquire(tn, never, never)
				if err != nil {
					t.Error(err)
					return
				}
				order <- tn
				rel()
			}(tn)
		}
	}
	for a.stats().Waiting < 3*perTenant {
		time.Sleep(time.Millisecond)
	}
	hold()

	counts := map[string]int{}
	for i := 0; i < 28; i++ { // four full 7-grant stride windows
		counts[<-order]++
	}
	if counts["a"] != 4 || counts["b"] != 8 || counts["c"] != 16 {
		t.Fatalf("28 grants split %v; want a:4 b:8 c:16 (1:2:4 weights)", counts)
	}
	go func() { // drain the rest so wg completes
		for range order {
		}
	}()
	wg.Wait()
	close(order)
}

// TestAdmitterQueueFull checks the bounded-queue rejection: with the slot
// held and MaxQueue waiters already queued, the next acquire is refused
// immediately with a typed admission code.
func TestAdmitterQueueFull(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlight: 1, MaxQueue: 2}, func(string) float64 { return 1 })
	never := make(chan struct{})
	hold, err := a.acquire("t", never, never)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.acquire("t", never, never)
			if err != nil {
				t.Error(err)
				return
			}
			rel()
		}()
	}
	for a.stats().Waiting < 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.acquire("t", never, never); rejectCode(err) != codeAdmission {
		t.Fatalf("acquire over full queue: got %v, want typed admission rejection", err)
	}
	if s := a.stats(); s.Rejected != 1 {
		t.Fatalf("stats.Rejected = %d, want 1", s.Rejected)
	}
	hold()
	wg.Wait()
}

// TestAdmitterQueueDeadline checks that a queued job the scheduler cannot
// place before the deadline is rejected with a typed admission code, and that
// the slot holder is unaffected.
func TestAdmitterQueueDeadline(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlight: 1, QueueDeadline: 30 * time.Millisecond},
		func(string) float64 { return 1 })
	never := make(chan struct{})
	hold, err := a.acquire("t", never, never)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.acquire("t", never, never); rejectCode(err) != codeAdmission {
		t.Fatalf("expired wait: got %v, want typed admission rejection", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("rejected after %v, before the 30ms deadline", d)
	}
	hold()
	// The freed slot must still be grantable.
	rel, err := a.acquire("t", never, never)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestAdmitterAbandon checks that a waiter whose connection dies mid-wait is
// detached without consuming a slot or wedging dispatch.
func TestAdmitterAbandon(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlight: 1}, func(string) float64 { return 1 })
	never := make(chan struct{})
	hold, err := a.acquire("t", never, never)
	if err != nil {
		t.Fatal(err)
	}
	connDone := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire("t", never, connDone)
		errc <- err
	}()
	for a.stats().Waiting < 1 {
		time.Sleep(time.Millisecond)
	}
	close(connDone)
	if err := <-errc; err != errAdmitAbandoned {
		t.Fatalf("abandoned wait: got %v, want errAdmitAbandoned", err)
	}
	hold()
	rel, err := a.acquire("t", never, never)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestTenantTableBudget checks byte charging: reservations accumulate, a
// charge past MaxBytes is a typed quota rejection without mutating usage, and
// credits restore headroom.
func TestTenantTableBudget(t *testing.T) {
	tb := newTenantTable()
	tb.set("t", TenantPolicy{MaxBytes: 100})
	if err := tb.charge("t", 60); err != nil {
		t.Fatal(err)
	}
	if err := tb.charge("t", 50); rejectCode(err) != codeQuota {
		t.Fatalf("over-budget charge: got %v, want typed quota rejection", err)
	}
	if got := tb.usedBytes("t"); got != 60 {
		t.Fatalf("failed charge mutated usage: %d, want 60", got)
	}
	tb.credit("t", 20)
	if err := tb.charge("t", 50); err != nil {
		t.Fatalf("charge after credit: %v", err)
	}
	tb.credit("t", 90)
	if got := tb.usedBytes("t"); got != 0 {
		t.Fatalf("usage after full credit: %d, want 0", got)
	}
	// Unbudgeted tenants (default policy zero) are never rejected.
	if err := tb.charge("other", 1<<40); err != nil {
		t.Fatal(err)
	}
}

// TestTenantWeightsFlag covers the fleet-config helper: flag-syntax parsing,
// rendering, and Apply installing weights that the admitter's weight
// resolver observes, budgets carried from the base policy.
func TestTenantWeightsFlag(t *testing.T) {
	tw := TenantWeights{}
	for _, s := range []string{"etl=3", "dash=1", "etl=4"} {
		if err := tw.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if got := tw.String(); got != "dash=1,etl=4" {
		t.Fatalf("String() = %q, want last-entry-wins sorted rendering", got)
	}
	for _, bad := range []string{"", "noequals", "=3", "x=", "x=0", "x=-1", "x=zz"} {
		if err := tw.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}

	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tw.Apply(w, TenantPolicy{MaxBytes: 512})
	if got := w.tenantWeight("etl"); got != 4 {
		t.Fatalf("applied weight for etl = %v, want 4", got)
	}
	if got := w.tenantWeight("unnamed"); got != 1 {
		t.Fatalf("unconfigured tenant weight = %v, want default 1", got)
	}
	if p := w.tenants.policy("etl"); p.MaxBytes != 512 {
		t.Fatalf("weighted tenant lost base budget: MaxBytes = %d, want 512", p.MaxBytes)
	}
}

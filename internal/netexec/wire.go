package netexec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"ewh/internal/join"
)

// Wire protocol v2 ("EWHB"): length-prefixed binary framing with a versioned
// handshake. All integers are little-endian. One TCP connection carries one
// job:
//
//	coordinator → worker: magic "EWHB" | uint16 version
//	coordinator → worker: frame(handshake)   gob payload, carries exact counts
//	coordinator → worker: frame(block)...    one contiguous key block per
//	                                         (relation); [rel u8][count u32][count×8 key bytes]
//	coordinator → worker: frame(eos)
//	worker → coordinator: frame(metrics)     gob payload
//
// Every frame is [type u8][payloadLen u32][payload]. The control plane
// (handshake, metrics — once per job) rides gob inside its frame for
// flexibility; the data plane (key blocks) is raw fixed-width binary so the
// coordinator encodes straight out of the shuffle's contiguous per-worker
// slices and the worker decodes straight into an exactly-sized flat buffer
// whose size the handshake announced. The v1 protocol (a bare gob stream,
// tuple-batch-at-a-time) is still accepted by workers — the first bytes of a
// connection distinguish the two — and remains exercised as the benchmark
// baseline (RunGob).
const (
	protoVersion = 2

	frameHandshake = 1
	frameBlock     = 2
	frameEOS       = 3
	frameMetrics   = 4

	// blockHeaderLen is [rel u8][count u32].
	blockHeaderLen = 5
	// maxBlockKeys caps one block frame (128 MiB of keys); a larger
	// per-worker relation is split into consecutive blocks.
	maxBlockKeys = 1 << 24
	// maxFramePayload bounds what a worker will buffer for one control
	// frame; data frames are bounded by maxBlockKeys instead.
	maxFramePayload = blockHeaderLen + 8*maxBlockKeys
)

// protoMagic opens every v2 connection. The v1 gob stream can never start
// with these bytes: gob messages open with a small varint length whose first
// byte is far below 'E'.
var protoMagic = [4]byte{'E', 'W', 'H', 'B'}

// scratchPool recycles the chunk buffers the key codec stages through.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 64<<10); return &b },
}

func getScratch() *[]byte  { return scratchPool.Get().(*[]byte) }
func putScratch(b *[]byte) { scratchPool.Put(b) }

func writeFrameHeader(w io.Writer, typ byte, payloadLen int) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(payloadLen))
	_, err := w.Write(hdr[:])
	return err
}

func readFrameHeader(r io.Reader) (typ byte, payloadLen int, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, 0, fmt.Errorf("frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	return hdr[0], int(n), nil
}

// writeGobFrame sends a control frame whose payload is the gob encoding of v.
func writeGobFrame(w io.Writer, typ byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	if err := writeFrameHeader(w, typ, buf.Len()); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readGobFrame reads one frame, requires it to have the given type, and gob
// decodes its payload into v.
func readGobFrame(r io.Reader, wantTyp byte, v any) error {
	typ, n, err := readFrameHeader(r)
	if err != nil {
		return err
	}
	if typ != wantTyp {
		return fmt.Errorf("frame type %d, want %d", typ, wantTyp)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// writeKeyBlocks streams one relation's contiguous per-worker key slice as
// block frames (one block unless the slice exceeds maxBlockKeys). Keys are
// staged through a pooled scratch buffer in fixed-width little-endian, so
// the cost per key is one PutUint64 — no per-batch slice headers, no
// reflection.
func writeKeyBlocks(w *bufio.Writer, rel int8, keys []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for len(keys) > 0 {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeFrameHeader(w, frameBlock, blockHeaderLen+8*n); err != nil {
			return err
		}
		var bh [blockHeaderLen]byte
		bh[0] = byte(rel)
		binary.LittleEndian.PutUint32(bh[1:], uint32(n))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		block := keys[:n]
		for len(block) > 0 {
			c := len(buf) / 8
			if c > len(block) {
				c = len(block)
			}
			chunk := buf[:8*c]
			for i, k := range block[:c] {
				binary.LittleEndian.PutUint64(chunk[8*i:], uint64(k))
			}
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			block = block[c:]
		}
		keys = keys[n:]
	}
	return nil
}

// readKeyBlock decodes one block frame's payload (already past the frame
// header; payloadLen bytes follow) and appends its keys into dst starting at
// *pos, which it advances. dst is the exactly-sized flat buffer the
// handshake's counts allocated; overflowing it is a protocol error.
func readKeyBlock(r io.Reader, payloadLen int, rel1, rel2 []join.Key, pos1, pos2 *int) error {
	var bh [blockHeaderLen]byte
	if _, err := io.ReadFull(r, bh[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(bh[1:]))
	if payloadLen != blockHeaderLen+8*count {
		return fmt.Errorf("block frame length %d inconsistent with count %d", payloadLen, count)
	}
	var dst []join.Key
	var pos *int
	switch bh[0] {
	case 1:
		dst, pos = rel1, pos1
	case 2:
		dst, pos = rel2, pos2
	default:
		return fmt.Errorf("block for unknown relation %d", bh[0])
	}
	if *pos+count > len(dst) {
		return fmt.Errorf("relation %d overflows declared count %d", bh[0], len(dst))
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	out := dst[*pos : *pos+count]
	for len(out) > 0 {
		c := len(buf) / 8
		if c > len(out) {
			c = len(out)
		}
		chunk := buf[:8*c]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return err
		}
		for i := range out[:c] {
			out[i] = join.Key(binary.LittleEndian.Uint64(chunk[8*i:]))
		}
		out = out[c:]
	}
	*pos += count
	return nil
}

package netexec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"ewh/internal/exec"
	"ewh/internal/join"
)

// Wire protocol v2 ("EWHB"): length-prefixed binary framing with a versioned
// handshake. All integers are little-endian. One TCP connection carries one
// job:
//
//	coordinator → worker: magic "EWHB" | uint16 version
//	coordinator → worker: frame(handshake)   gob payload, carries exact counts
//	coordinator → worker: frame(block)...    one contiguous key block per
//	                                         (relation); [rel u8][count u32][count×8 key bytes]
//	coordinator → worker: frame(eos)
//	worker → coordinator: frame(metrics)     gob payload
//
// Every frame is [type u8][payloadLen u32][payload]. The control plane
// (handshake, metrics — once per job) rides gob inside its frame for
// flexibility; the data plane (key blocks) is raw fixed-width binary so the
// coordinator encodes straight out of the shuffle's contiguous per-worker
// slices and the worker decodes straight into an exactly-sized flat buffer
// whose size the handshake announced. The v1 protocol (a bare gob stream,
// tuple-batch-at-a-time) is still accepted by workers — the first bytes of a
// connection distinguish the two — and remains exercised as the benchmark
// baseline (RunGob).
const (
	protoVersion = 2
	// protoVersionSession is the v3 persistent-session protocol: the same
	// magic opens the connection, after which numbered jobs multiplex over
	// it until either side closes. See session.go and the "Session
	// protocol" section of DESIGN.md.
	protoVersionSession = 3
	// protoVersionPeer opens a worker→worker peer-transfer connection on the
	// same listener: one sender streams stage-1 match contributions to one
	// receiver, identified by 64-bit transfer tokens (see peer.go and the
	// "Peer shuffle" section of DESIGN.md).
	protoVersionPeer = 4

	frameHandshake = 1
	frameBlock     = 2
	frameEOS       = 3
	frameMetrics   = 4

	// v3 session frames. Every v3 frame header carries a job number, so
	// one connection interleaves many jobs' frames; 10+ keeps the two
	// protocols' type spaces visibly disjoint.
	frameV3OpenJob = 10 // coord→worker gob jobOpen
	frameV3RelHead = 11 // coord→worker [rel u8][flags u8][count u32][payBytes u32]
	frameV3Block   = 12 // coord→worker [rel u8][count u32][count×8 LE keys]
	frameV3Pay     = 13 // coord→worker [rel u8][count u32][count×4 LE lens][bytes]
	frameV3EOS     = 14 // coord→worker job data complete; worker joins
	frameV3Pairs   = 15 // worker→coord [count u32][count×(i1 u32, i2 u32)]
	frameV3Metrics = 16 // worker→coord gob metrics (terminates the job)
	frameV3Abort   = 17 // coord→worker job abandoned; discard its state, no reply

	// PLAN/PEER frames (stage-aware pipelines): the coordinator broadcasts a
	// serialized stage-2 plan alongside a stage-1 job, each worker
	// re-shuffles its own matches straight to peer workers, and the
	// coordinator only ever sees pair counts.
	frameV3Plan        = 18 // coord→worker gob planSpec: this job's matches feed the plan
	frameV3OpenPeerJob = 19 // coord→worker gob peerJobOpen: job whose relation 1 arrives from peers
	frameV3PlanCancel  = 20 // coord→worker gob planCancel: discard buffered peer state for a token

	// STATS/PLAN2 frames (stats-deferred plans): a plan job whose planSpec
	// requests statistics joins as usual, summarizes its matches, ships the
	// summary to the coordinator and holds its re-shuffle until the
	// coordinator replans from the merged summaries and answers with the
	// real artifact. Only the summaries — never the intermediate — transit
	// the coordinator.
	frameV3Stats = 21 // worker→coord raw planio-encoded statistics summary
	frameV3Plan2 = 22 // coord→worker gob planSpec: the replanned stage-2 artifact + peer map

	// HELLO frame (multi-tenant sessions): an optional gob sessionHello sent
	// once, immediately after the v3 prelude and before any job, declaring
	// the coordinator's tenant id for worker-side admission control and
	// quota accounting. A session that opens jobs without a hello is the
	// anonymous tenant "" — byte-identical to the pre-multi-tenant protocol,
	// so old coordinators interoperate with new workers and vice versa (a
	// hello's job field is 0 and old workers never receive one).
	frameV3Hello = 23 // coord→worker gob sessionHello

	// CHUNK frames (pipelined relation streaming): instead of waiting for the
	// whole relation's scatter and announcing exact counts up front
	// (frameV3RelHead), the coordinator declares only the mapper count and
	// streams each mapper's routed sub-block the moment routing fills it. Any
	// number of chunk frames may carry one mapper's sub-block (an oversized
	// sub-block splits at the frame cap); the TAIL is the terminator, carrying
	// exact totals the coordinator only knows at the end, and the worker
	// validates its running counts against them.
	frameV3ChunkHead = 25 // coord→worker [rel u8][flags u8][chunks u32]
	frameV3Chunk     = 26 // coord→worker [rel u8][mapper u16][count u32][count×8 LE keys]
	frameV3ChunkTail = 27 // coord→worker [rel u8][count u32][payBytes u32] — exact totals

	// PEERBIND frame (stage-overlapped dispatch): a peer-fed job opened with
	// CountsDeferred learns its exact per-sender counts only after stage 1
	// finishes; the coordinator then sends this frame carrying gob peerBind.
	// It is keyed by transfer token, not job id, because the job's EOS has
	// already retired the id from the demux table by the time the bind lands.
	frameV3PeerBind = 28 // coord→worker gob peerBind: late exact sender counts

	// STREAM frames (continuous joins): a long-lived stream job joins an
	// unbounded sequence of tuple windows against a static base relation.
	// The open frame pins the condition and engine; base frames ship the
	// static side routed under the active plan (re-shipped whole on every
	// replan, tagged with a new epoch); window frames append one window's
	// routed shard and its end frame triggers the worker's probe + summary
	// reply. All frames ride the session connection's FIFO, which is the
	// drain/cutover contract: windows sent before a new epoch's base are
	// processed under the old plan, windows after it under the new one.
	// The stream closes via the ordinary frameV3EOS / frameV3Metrics pair.
	frameV3StreamOpen    = 33 // coord→worker gob streamOpen
	frameV3StreamBase    = 34 // coord→worker [epoch u32][count u32][count×8 LE keys]
	frameV3StreamBaseEnd = 35 // coord→worker [epoch u32][total u32]
	frameV3StreamWin     = 36 // coord→worker [window u32][epoch u32][count u32][count×8 LE keys]
	frameV3StreamWinEnd  = 37 // coord→worker [window u32][epoch u32][total u32]
	frameV3StreamRep     = 38 // worker→coord gob streamWinReply

	// Peer-mesh frames (worker→worker connections, protoVersionPeer). They
	// use the v2-style [type u8][len u32] framing; the 64-bit transfer token
	// rides in each payload, so peer transfers are immune to session job-id
	// collisions across coordinators.
	framePeerHead  = 30 // [token u64][sender u32][count u32] — declares one sender's contribution
	framePeerBlock = 31 // [token u64][sender u32][count u32][count×8 LE keys]
	framePeerPay   = 32 // [token u64][sender u32][count u32][count×4 LE lens][bytes]

	// relFlagPayload marks a relation head that declares a payload segment.
	relFlagPayload = 1

	// blockHeaderLen is [rel u8][count u32].
	blockHeaderLen = 5
	// chunkHeadLen is [rel u8][flags u8][chunks u32].
	chunkHeadLen = 6
	// chunkHeaderLen is frameV3Chunk's sub-header: [rel u8][mapper u16][count u32].
	chunkHeaderLen = 7
	// chunkTailLen is [rel u8][count u32][payBytes u32].
	chunkTailLen = 9
	// streamBaseHdrLen is frameV3StreamBase's sub-header [epoch u32][count u32];
	// frameV3StreamBaseEnd reuses the layout with the exact total in the
	// count slot.
	streamBaseHdrLen = 8
	// streamWinHdrLen is frameV3StreamWin's sub-header
	// [window u32][epoch u32][count u32]; frameV3StreamWinEnd reuses the
	// layout with the exact total in the count slot.
	streamWinHdrLen = 12
	// maxRelationChunks bounds the chunk count a chunk head may declare; it
	// is the mapper count, which no sane coordinator sets anywhere near this.
	maxRelationChunks = 1 << 16
	// relHeadLen is [rel u8][flags u8][count u32][payBytes u32].
	relHeadLen = 10
	// maxBlockKeys caps one block frame (128 MiB of keys); a larger
	// per-worker relation is split into consecutive blocks.
	maxBlockKeys = 1 << 24
	// maxPayFrameBytes caps one payload frame's byte segment (64 MiB); a
	// larger per-worker payload block is split into consecutive frames.
	// A SINGLE tuple's payload must fit one frame (lengths and bytes
	// travel together), so this is also the per-tuple payload ceiling —
	// enforced on the coordinator before any frame is written.
	maxPayFrameBytes = 1 << 26
	// maxFramePayload bounds what a worker will buffer for one control
	// frame; data frames are bounded by maxBlockKeys instead.
	maxFramePayload = blockHeaderLen + 8*maxBlockKeys

	// peerHeadLen is framePeerHead's payload: [token u64][sender u32][count u32].
	peerHeadLen = 16
	// peerBlockHeaderLen is framePeerBlock's sub-header before the keys.
	peerBlockHeaderLen = 16
	// maxPeerBlockKeys caps one peer block frame (8 MiB of keys); larger
	// contributions split into consecutive frames.
	maxPeerBlockKeys = 1 << 20
	// maxPeerSenders bounds the sender ids a peer transfer may name before
	// the receiver knows the real sender count from its stage-2 job open.
	maxPeerSenders = 1 << 12
)

// MaxRelationPayloadBytes bounds the payload bytes one relation head may
// declare (1 GiB). Like MaxRelationTuples, the worker allocates the receive
// buffer from the declared size before any data arrives, so the cap is what
// keeps a malformed coordinator from OOMing the worker process.
const MaxRelationPayloadBytes = 1 << 30

// protoMagic opens every v2 connection. The v1 gob stream can never start
// with these bytes: gob messages open with a small varint length whose first
// byte is far below 'E'.
var protoMagic = [4]byte{'E', 'W', 'H', 'B'}

// scratchPool recycles the chunk buffers the key codec stages through.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 64<<10); return &b },
}

func getScratch() *[]byte  { return scratchPool.Get().(*[]byte) }
func putScratch(b *[]byte) { scratchPool.Put(b) }

func writeFrameHeader(w io.Writer, typ byte, payloadLen int) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(payloadLen))
	_, err := w.Write(hdr[:])
	return err
}

func readFrameHeader(r io.Reader) (typ byte, payloadLen int, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, 0, fmt.Errorf("frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	return hdr[0], int(n), nil
}

// writeGobFrame sends a control frame whose payload is the gob encoding of v.
func writeGobFrame(w io.Writer, typ byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	if err := writeFrameHeader(w, typ, buf.Len()); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readGobFrame reads one frame, requires it to have the given type, and gob
// decodes its payload into v.
func readGobFrame(r io.Reader, wantTyp byte, v any) error {
	typ, n, err := readFrameHeader(r)
	if err != nil {
		return err
	}
	if typ != wantTyp {
		return fmt.Errorf("frame type %d, want %d", typ, wantTyp)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// writeKeyBlocks streams one relation's contiguous per-worker key slice as
// block frames (one block unless the slice exceeds maxBlockKeys). Keys are
// staged through a pooled scratch buffer in fixed-width little-endian, so
// the cost per key is one PutUint64 — no per-batch slice headers, no
// reflection.
func writeKeyBlocks(w *bufio.Writer, rel int8, keys []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for len(keys) > 0 {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeFrameHeader(w, frameBlock, blockHeaderLen+8*n); err != nil {
			return err
		}
		var bh [blockHeaderLen]byte
		bh[0] = byte(rel)
		binary.LittleEndian.PutUint32(bh[1:], uint32(n))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if err := writeKeysLE(w, keys[:n], buf); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// v3FrameHeaderLen is [type u8][job u32][payloadLen u32].
const v3FrameHeaderLen = 9

func writeV3FrameHeader(w io.Writer, typ byte, job uint32, payloadLen int) error {
	var hdr [v3FrameHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], job)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(payloadLen))
	_, err := w.Write(hdr[:])
	return err
}

func readV3FrameHeader(r io.Reader) (typ byte, job uint32, payloadLen int, err error) {
	var hdr [v3FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[5:])
	if n > maxFramePayload {
		return 0, 0, 0, fmt.Errorf("frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	return hdr[0], binary.LittleEndian.Uint32(hdr[1:]), int(n), nil
}

// writeV3GobFrame sends a session frame whose payload is the gob encoding
// of v.
func writeV3GobFrame(w io.Writer, typ byte, job uint32, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	if err := writeV3FrameHeader(w, typ, job, buf.Len()); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readGobPayload decodes n payload bytes (already past a frame header) into v.
func readGobPayload(r io.Reader, n int, v any) error {
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// writeRelHead announces one relation of a session job: its exact tuple
// count and, when the relation carries payloads, the exact total payload
// byte size — the worker allocates both receive buffers from these before
// any data frame arrives.
func writeRelHead(w io.Writer, job uint32, rel int8, count int, hasPay bool, payBytes int) error {
	if err := writeV3FrameHeader(w, frameV3RelHead, job, relHeadLen); err != nil {
		return err
	}
	var h [relHeadLen]byte
	h[0] = byte(rel)
	if hasPay {
		h[1] = relFlagPayload
	}
	binary.LittleEndian.PutUint32(h[2:], uint32(count))
	binary.LittleEndian.PutUint32(h[6:], uint32(payBytes))
	_, err := w.Write(h[:])
	return err
}

// writeKeyBlocksV3 is writeKeyBlocks with the session frame header: one
// relation's contiguous per-worker key slice as v3 block frames.
func writeKeyBlocksV3(w *bufio.Writer, job uint32, rel int8, keys []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for len(keys) > 0 {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeV3FrameHeader(w, frameV3Block, job, blockHeaderLen+8*n); err != nil {
			return err
		}
		var bh [blockHeaderLen]byte
		bh[0] = byte(rel)
		binary.LittleEndian.PutUint32(bh[1:], uint32(n))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if err := writeKeysLE(w, keys[:n], buf); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// readKeysLE decodes len(dst) little-endian keys from r into dst, staged
// through a pooled scratch buffer — the inverse of writeKeysLE, shared by
// every key-block decode path (one-shot, session, peer mesh).
func readKeysLE(r io.Reader, dst []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for len(dst) > 0 {
		c := len(buf) / 8
		if c > len(dst) {
			c = len(dst)
		}
		chunk := buf[:8*c]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return err
		}
		for i := range dst[:c] {
			dst[i] = join.Key(binary.LittleEndian.Uint64(chunk[8*i:]))
		}
		dst = dst[c:]
	}
	return nil
}

// writeKeysLE streams keys fixed-width little-endian, staged through buf.
func writeKeysLE(w io.Writer, block []join.Key, buf []byte) error {
	for len(block) > 0 {
		c := len(buf) / 8
		if c > len(block) {
			c = len(block)
		}
		chunk := buf[:8*c]
		for i, k := range block[:c] {
			binary.LittleEndian.PutUint64(chunk[8*i:], uint64(k))
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		block = block[c:]
	}
	return nil
}

// writePayloadBlocks streams one worker's encoded payload block as v3
// payload frames: per-tuple u32 lengths followed by the raw bytes, split so
// no frame exceeds maxPayFrameBytes of payload data. An empty block (zero
// tuples) writes nothing — the relation head already declared zero.
func writePayloadBlocks(w *bufio.Writer, job uint32, rel int8, pb exec.PayloadBlock) error {
	tuples := len(pb.Off) - 1
	for lo := 0; lo < tuples; {
		hi := lo
		frameBytes := 0
		for hi < tuples && hi-lo < maxBlockKeys {
			sz := int(pb.Off[hi+1] - pb.Off[hi])
			if frameBytes > 0 && frameBytes+sz > maxPayFrameBytes {
				break
			}
			frameBytes += sz
			hi++
		}
		count := hi - lo
		if err := writeV3FrameHeader(w, frameV3Pay, job, blockHeaderLen+4*count+frameBytes); err != nil {
			return err
		}
		var bh [blockHeaderLen]byte
		bh[0] = byte(rel)
		binary.LittleEndian.PutUint32(bh[1:], uint32(count))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		// Stage the length vector through pooled scratch: one buffered Write
		// per ~16k tuples instead of one per tuple, identical wire bytes.
		scratch := getScratch()
		buf := *scratch
		for i := lo; i < hi; {
			c := len(buf) / 4
			if c > hi-i {
				c = hi - i
			}
			chunk := buf[:4*c]
			for k := 0; k < c; k++ {
				binary.LittleEndian.PutUint32(chunk[4*k:], pb.Off[i+k+1]-pb.Off[i+k])
			}
			if _, err := w.Write(chunk); err != nil {
				putScratch(scratch)
				return err
			}
			i += c
		}
		putScratch(scratch)
		if _, err := w.Write(pb.Flat[pb.Off[lo]:pb.Off[hi]]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// writePairsFrame ships one chunk of matched index pairs back to the
// coordinator, staged through a pooled scratch buffer.
func writePairsFrame(w *bufio.Writer, job uint32, pairs []exec.PairIdx) error {
	if err := writeV3FrameHeader(w, frameV3Pairs, job, 4+8*len(pairs)); err != nil {
		return err
	}
	var ch [4]byte
	binary.LittleEndian.PutUint32(ch[:], uint32(len(pairs)))
	if _, err := w.Write(ch[:]); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for len(pairs) > 0 {
		c := len(buf) / 8
		if c > len(pairs) {
			c = len(pairs)
		}
		chunk := buf[:8*c]
		for i, p := range pairs[:c] {
			binary.LittleEndian.PutUint32(chunk[8*i:], p.I1)
			binary.LittleEndian.PutUint32(chunk[8*i+4:], p.I2)
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		pairs = pairs[c:]
	}
	return nil
}

// writeChunkHead declares a chunked relation routed by `chunks` mappers;
// chunk frames follow in any interleaving (empty sub-blocks are skipped),
// then a tail with exact totals terminates the relation. Chunked relations
// are bare-key only, so flags is always 0 for now and the worker rejects
// anything else.
func writeChunkHead(w io.Writer, job uint32, rel int8, chunks int) error {
	if err := writeV3FrameHeader(w, frameV3ChunkHead, job, chunkHeadLen); err != nil {
		return err
	}
	var h [chunkHeadLen]byte
	h[0] = byte(rel)
	binary.LittleEndian.PutUint32(h[2:], uint32(chunks))
	_, err := w.Write(h[:])
	return err
}

// writeChunkFrame streams one mapper's routed sub-block (or a split of one)
// for one worker; callers split oversized sub-blocks via writeChunkKeys.
func writeChunkFrame(w *bufio.Writer, job uint32, rel int8, mapper int, keys []join.Key) error {
	if len(keys) > maxBlockKeys {
		return fmt.Errorf("chunk of %d keys exceeds frame limit %d", len(keys), maxBlockKeys)
	}
	if err := writeV3FrameHeader(w, frameV3Chunk, job, chunkHeaderLen+8*len(keys)); err != nil {
		return err
	}
	var h [chunkHeaderLen]byte
	h[0] = byte(rel)
	binary.LittleEndian.PutUint16(h[1:], uint16(mapper))
	binary.LittleEndian.PutUint32(h[3:], uint32(len(keys)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	return writeKeysLE(w, keys, *scratch)
}

// writeChunkKeys frames one mapper's sub-block, splitting at the per-frame
// key cap: consecutive frames with the same mapper id reassemble in arrival
// order on the worker (TCP preserves intra-connection order).
func writeChunkKeys(w *bufio.Writer, job uint32, rel int8, mapper int, keys []join.Key) error {
	for {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeChunkFrame(w, job, rel, mapper, keys[:n]); err != nil {
			return err
		}
		keys = keys[n:]
		if len(keys) == 0 {
			return nil
		}
	}
}

// writeChunkTail closes a chunked relation with its exact totals; the worker
// cross-checks them against the running counts the chunks accumulated.
func writeChunkTail(w io.Writer, job uint32, rel int8, count, payBytes int) error {
	if err := writeV3FrameHeader(w, frameV3ChunkTail, job, chunkTailLen); err != nil {
		return err
	}
	var h [chunkTailLen]byte
	h[0] = byte(rel)
	binary.LittleEndian.PutUint32(h[1:], uint32(count))
	binary.LittleEndian.PutUint32(h[5:], uint32(payBytes))
	_, err := w.Write(h[:])
	return err
}

// writeStreamBaseKeys ships one epoch's base shard for one worker, split at
// the per-frame key cap; consecutive frames append in arrival order. An
// empty shard writes no frames — the end frame's total says it all.
func writeStreamBaseKeys(w *bufio.Writer, job, epoch uint32, keys []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	for len(keys) > 0 {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeV3FrameHeader(w, frameV3StreamBase, job, streamBaseHdrLen+8*n); err != nil {
			return err
		}
		var h [streamBaseHdrLen]byte
		binary.LittleEndian.PutUint32(h[0:], epoch)
		binary.LittleEndian.PutUint32(h[4:], uint32(n))
		if _, err := w.Write(h[:]); err != nil {
			return err
		}
		if err := writeKeysLE(w, keys[:n], *scratch); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// writeStreamBaseEnd seals one epoch's base with its exact total; the worker
// cross-checks it and (re)builds its join-side structure.
func writeStreamBaseEnd(w *bufio.Writer, job, epoch uint32, total int) error {
	if err := writeV3FrameHeader(w, frameV3StreamBaseEnd, job, streamBaseHdrLen); err != nil {
		return err
	}
	var h [streamBaseHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:], epoch)
	binary.LittleEndian.PutUint32(h[4:], uint32(total))
	_, err := w.Write(h[:])
	return err
}

// writeStreamWinKeys ships one window's shard for one worker, split at the
// per-frame key cap. The epoch names the plan the shard was routed under;
// the worker rejects a window whose epoch does not match its sealed base.
func writeStreamWinKeys(w *bufio.Writer, job, window, epoch uint32, keys []join.Key) error {
	scratch := getScratch()
	defer putScratch(scratch)
	for len(keys) > 0 {
		n := len(keys)
		if n > maxBlockKeys {
			n = maxBlockKeys
		}
		if err := writeV3FrameHeader(w, frameV3StreamWin, job, streamWinHdrLen+8*n); err != nil {
			return err
		}
		var h [streamWinHdrLen]byte
		binary.LittleEndian.PutUint32(h[0:], window)
		binary.LittleEndian.PutUint32(h[4:], epoch)
		binary.LittleEndian.PutUint32(h[8:], uint32(n))
		if _, err := w.Write(h[:]); err != nil {
			return err
		}
		if err := writeKeysLE(w, keys[:n], *scratch); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// writeStreamWinEnd closes one window's shard with its exact total; the
// worker cross-checks, probes the window against the sealed base, and
// replies with a frameV3StreamRep.
func writeStreamWinEnd(w *bufio.Writer, job, window, epoch uint32, total int) error {
	if err := writeV3FrameHeader(w, frameV3StreamWinEnd, job, streamWinHdrLen); err != nil {
		return err
	}
	var h [streamWinHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:], window)
	binary.LittleEndian.PutUint32(h[4:], epoch)
	binary.LittleEndian.PutUint32(h[8:], uint32(total))
	_, err := w.Write(h[:])
	return err
}

// pairsBufPool recycles the coordinator's pairs receive chunks: the
// Job.Pairs contract says a chunk is only valid for the duration of the
// call, so the read loop returns each buffer right after delivery.
var pairsBufPool = sync.Pool{} // stores *[]exec.PairIdx

func getPairsBuf(n int) []exec.PairIdx {
	if v := pairsBufPool.Get(); v != nil {
		b := *v.(*[]exec.PairIdx)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]exec.PairIdx, n)
}

func putPairsBuf(b []exec.PairIdx) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	pairsBufPool.Put(&b)
}

// readPairsPayload decodes one pairs frame's payload (already past the
// frame header; n bytes follow) into a pooled chunk; the caller returns it
// with putPairsBuf once delivered.
func readPairsPayload(r io.Reader, n int) ([]exec.PairIdx, error) {
	var ch [4]byte
	if _, err := io.ReadFull(r, ch[:]); err != nil {
		return nil, err
	}
	count := int(binary.LittleEndian.Uint32(ch[:]))
	if n != 4+8*count {
		return nil, fmt.Errorf("pairs frame length %d inconsistent with count %d", n, count)
	}
	out := getPairsBuf(count)
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	for pos := 0; pos < count; {
		c := len(buf) / 8
		if c > count-pos {
			c = count - pos
		}
		chunk := buf[:8*c]
		if _, err := io.ReadFull(r, chunk); err != nil {
			putPairsBuf(out)
			return nil, err
		}
		for i := 0; i < c; i++ {
			out[pos+i] = exec.PairIdx{
				I1: binary.LittleEndian.Uint32(chunk[8*i:]),
				I2: binary.LittleEndian.Uint32(chunk[8*i+4:]),
			}
		}
		pos += c
	}
	return out, nil
}

// byteBufPool recycles the workers' flat payload receive buffers.
var byteBufPool = sync.Pool{} // stores *[]byte

func getByteBuf(n int) []byte {
	if v := byteBufPool.Get(); v != nil {
		b := *v.(*[]byte)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putByteBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	byteBufPool.Put(&b)
}

// readKeyBlock decodes one block frame's payload (already past the frame
// header; payloadLen bytes follow) and appends its keys into dst starting at
// *pos, which it advances. dst is the exactly-sized flat buffer the
// handshake's counts allocated; overflowing it is a protocol error.
func readKeyBlock(r io.Reader, payloadLen int, rel1, rel2 []join.Key, pos1, pos2 *int) error {
	var bh [blockHeaderLen]byte
	if _, err := io.ReadFull(r, bh[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(bh[1:]))
	if payloadLen != blockHeaderLen+8*count {
		return fmt.Errorf("block frame length %d inconsistent with count %d", payloadLen, count)
	}
	var dst []join.Key
	var pos *int
	switch bh[0] {
	case 1:
		dst, pos = rel1, pos1
	case 2:
		dst, pos = rel2, pos2
	default:
		return fmt.Errorf("block for unknown relation %d", bh[0])
	}
	if *pos+count > len(dst) {
		return fmt.Errorf("relation %d overflows declared count %d", bh[0], len(dst))
	}
	if err := readKeysLE(r, dst[*pos:*pos+count]); err != nil {
		return err
	}
	*pos += count
	return nil
}

package netexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Pool is the coordinator-side handle on a SHARED worker fleet: one fixed
// set of worker addresses that any number of concurrent coordinators draw
// sessions from, each under its own tenant identity. The pool itself holds
// no connections — every Session dials its own persistent per-worker
// connections (the v3 protocol multiplexes that tenant's jobs over them) —
// but it is the bookkeeping point: it validates fleet capacity, tracks the
// sessions it issued so Close can hang up a whole service at once, and
// counts per-tenant sessions for introspection.
//
// Worker-side policy (admission control, fair scheduling, quotas) lives in
// the fleet's Worker processes (SetAdmission, SetTenantPolicy); the pool is
// deliberately thin because the workers must enforce policy against EVERY
// coordinator, including ones that bypass any coordinator-side layer.
type Pool struct {
	addrs []string
	t     Timeouts

	mu     sync.Mutex
	open   map[*Session]string // session → tenant
	closed bool
}

// NewPool wraps a worker fleet's addresses as a shared pool. The timeouts
// apply to every session dialed through it.
func NewPool(addrs []string, t Timeouts) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netexec: pool needs at least one worker address")
	}
	return &Pool{
		addrs: append([]string(nil), addrs...),
		t:     t,
		open:  make(map[*Session]string),
	}, nil
}

// Workers returns the fleet size.
func (p *Pool) Workers() int { return len(p.addrs) }

// Addrs returns a copy of the fleet's addresses.
func (p *Pool) Addrs() []string { return append([]string(nil), p.addrs...) }

// Session dials a new tenant session over the whole fleet. The session is
// tracked until its Close (or the pool's).
func (p *Pool) Session(ctx context.Context, tenant string) (*Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("netexec: pool closed")
	}
	p.mu.Unlock()
	s, err := DialTenant(ctx, tenant, p.addrs, p.t)
	if err != nil {
		return nil, fmt.Errorf("netexec: pool session for tenant %q: %w", tenant, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = s.Close()
		return nil, errors.New("netexec: pool closed")
	}
	p.open[s] = tenant
	s.onClose = func() { p.forget(s) }
	p.mu.Unlock()
	return s, nil
}

// forget drops a closed session from the tracking table.
func (p *Pool) forget(s *Session) {
	p.mu.Lock()
	delete(p.open, s)
	p.mu.Unlock()
}

// OpenSessions reports the live session count per tenant.
func (p *Pool) OpenSessions() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.open))
	for _, tenant := range p.open {
		out[tenant]++
	}
	return out
}

// TenantWeights is the fleet-configuration form of weighted tenants: a
// repeatable "name=weight" mapping that Apply installs on a worker as
// per-tenant policies. It implements flag.Value, so a worker CLI and any
// fleet tooling share one syntax. The pool itself deliberately holds no
// policy — the workers must enforce fairness against EVERY coordinator,
// including ones that bypass a pool — which is why this helper configures
// Worker processes rather than sessions.
type TenantWeights map[string]int

// String renders the mapping in flag syntax, tenants sorted.
func (tw TenantWeights) String() string {
	if len(tw) == 0 {
		return ""
	}
	parts := make([]string, 0, len(tw))
	for name, wgt := range tw {
		parts = append(parts, fmt.Sprintf("%s=%d", name, wgt))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set parses one "name=weight" entry (weight a positive integer); repeated
// flags accumulate, the last entry per tenant winning.
func (tw TenantWeights) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("tenant weight %q: want name=weight", s)
	}
	if len(name) > maxTenantLen {
		return fmt.Errorf("tenant weight %q: name exceeds %d bytes", s, maxTenantLen)
	}
	wgt, err := strconv.Atoi(val)
	if err != nil || wgt < 1 {
		return fmt.Errorf("tenant weight %q: want a positive integer weight", s)
	}
	tw[name] = wgt
	return nil
}

// Apply installs the weights on a worker as per-tenant policies, carrying
// base's budgets so a weighted tenant keeps the fleet's default quotas.
// Call before Serve, like SetTenantPolicy.
func (tw TenantWeights) Apply(w *Worker, base TenantPolicy) {
	for name, wgt := range tw {
		p := base
		p.Weight = wgt
		w.SetTenantPolicy(name, p)
	}
}

// Close hangs up every session still open through the pool and refuses new
// ones. Worker processes are not touched — they belong to the fleet, not to
// any one coordinator.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	open := make([]*Session, 0, len(p.open))
	for s := range p.open {
		open = append(open, s)
	}
	p.open = make(map[*Session]string)
	p.mu.Unlock()
	var first error
	for _, s := range open {
		// forget() on the session's own Close is harmless now — the tracking
		// table was already reset above.
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

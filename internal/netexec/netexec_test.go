package netexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/stats"
)

var model = cost.Model{Wi: 1, Wo: 0.2}

func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}
	return addrs
}

func randKeys(n int, domain int64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(domain)
	}
	return out
}

func TestNetRunMatchesLocal(t *testing.T) {
	r1 := randKeys(3000, 1500, 1)
	r2 := randKeys(3000, 1500, 2)
	cond := join.NewBand(2)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 4, Model: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, plan.Scheme.Workers())

	netRes, err := Run(addrs, r1, r2, cond, plan.Scheme, model, exec.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	localRes := exec.Run(r1, r2, cond, plan.Scheme, model, exec.Config{Seed: 4})
	if netRes.Output != localRes.Output {
		t.Fatalf("net output %d != local %d", netRes.Output, localRes.Output)
	}
	if want := localjoin.NestedLoopCount(r1, r2, cond); netRes.Output != want {
		t.Fatalf("net output %d != ground truth %d", netRes.Output, want)
	}
	if netRes.NetworkTuples != localRes.NetworkTuples {
		t.Fatalf("net shipped %d != local %d", netRes.NetworkTuples, localRes.NetworkTuples)
	}
	if !strings.HasSuffix(netRes.Scheme, "@net") {
		t.Errorf("scheme label %q", netRes.Scheme)
	}
}

func TestNetRunCIScheme(t *testing.T) {
	// The randomized CI scheme also works over the wire (routing happens on
	// the coordinator, so the random choices are made once).
	r1 := randKeys(1000, 800, 5)
	r2 := randKeys(1000, 800, 6)
	cond := join.Equi{}
	plan, err := core.PlanCI(core.Options{J: 4, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 4)
	res, err := Run(addrs, r1, r2, cond, plan.Scheme, model, exec.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := localjoin.NestedLoopCount(r1, r2, cond); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

func TestNetRunTooFewWorkers(t *testing.T) {
	plan, err := core.PlanCI(core.Options{J: 8, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2)
	if _, err := Run(addrs, nil, nil, join.Equi{}, plan.Scheme, model, exec.Config{Seed: 1}); err == nil {
		t.Fatal("scheme wider than worker pool accepted")
	}
}

func TestNetRunDialFailure(t *testing.T) {
	plan, err := core.PlanCI(core.Options{J: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run([]string{"127.0.0.1:1"}, []join.Key{1}, []join.Key{1},
		join.Equi{}, plan.Scheme, model, exec.Config{Seed: 1})
	if err == nil {
		t.Fatal("dead worker address accepted")
	}
}

func TestNetRunUnsupportedCondition(t *testing.T) {
	plan, err := core.PlanCI(core.Options{J: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 1)
	_, err = Run(addrs, []join.Key{1}, []join.Key{1}, badCond{}, plan.Scheme, model, exec.Config{Seed: 1})
	if err == nil {
		t.Fatal("unspecable condition accepted")
	}
}

type badCond struct{}

func (badCond) Matches(a, b join.Key) bool               { return a == b }
func (badCond) JoinableRange(a join.Key) (x, y join.Key) { return a, a }
func (badCond) String() string                           { return "bad" }

func TestSpecRoundTrip(t *testing.T) {
	conds := []join.Condition{
		join.NewBand(0), join.NewBand(7), join.Equi{},
		join.Inequality{Op: join.Less}, join.Inequality{Op: join.GreaterEq},
		join.Shifted{Inner: join.NewBand(2), Scale: 10, Offset: -3},
	}
	for _, c := range conds {
		spec, err := join.SpecOf(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		back, err := spec.Condition()
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		for a := join.Key(-20); a <= 20; a += 3 {
			for b := join.Key(-20); b <= 20; b += 3 {
				if c.Matches(a, b) != back.Matches(a, b) {
					t.Fatalf("%v: round-tripped condition disagrees at (%d,%d)", c, a, b)
				}
			}
		}
	}
	if _, err := join.SpecOf(badCond{}); err == nil {
		t.Error("foreign condition specced")
	}
	if _, err := (join.Spec{Kind: "nope"}).Condition(); err == nil {
		t.Error("bad spec kind accepted")
	}
	if _, err := (join.Spec{Kind: "shifted"}).Condition(); err == nil {
		t.Error("shifted spec without inner accepted")
	}
}

func TestNetRunSkewedCSIO(t *testing.T) {
	r := stats.NewRNG(8)
	z := stats.NewZipf(600, 0.9)
	r1 := make([]join.Key, 2000)
	r2 := make([]join.Key, 2000)
	for i := range r1 {
		r1[i] = z.Draw(r)
		r2[i] = z.Draw(r)
	}
	cond := join.NewBand(1)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 6, Model: model, Seed: 9, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, plan.Scheme.Workers())
	res, err := Run(addrs, r1, r2, cond, plan.Scheme, model, exec.Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if want := localjoin.NestedLoopCount(r1, r2, cond); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

func TestNetRunConcurrentJobs(t *testing.T) {
	// One worker pool serves two jobs concurrently (each job is one
	// connection; the worker handles connections independently).
	r1 := randKeys(800, 500, 20)
	r2 := randKeys(800, 500, 21)
	cond := join.NewBand(1)
	plan, err := core.PlanCI(core.Options{J: 2, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2)
	want := localjoin.NestedLoopCount(r1, r2, cond)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			res, err := Run(addrs, r1, r2, cond, plan.Scheme, model, exec.Config{Seed: seed})
			if err == nil && res.Output != want {
				err = fmt.Errorf("output %d, want %d", res.Output, want)
			}
			done <- err
		}(uint64(30 + i))
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunGobMatchesBinary(t *testing.T) {
	// The same worker pool serves both wire protocols (sniffed per
	// connection), and the v1 gob baseline must agree with the v2 binary
	// path on every aggregate for a deterministic scheme.
	r1 := randKeys(4000, 2000, 40)
	r2 := randKeys(4000, 2000, 41)
	cond := join.NewBand(2)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 4, Model: model, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, plan.Scheme.Workers())
	cfg := exec.Config{Seed: 43}
	bin, err := Run(addrs, r1, r2, cond, plan.Scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gobRes, err := RunGob(addrs, r1, r2, cond, plan.Scheme, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Output != gobRes.Output || bin.NetworkTuples != gobRes.NetworkTuples {
		t.Fatalf("binary (out=%d net=%d) != gob (out=%d net=%d)",
			bin.Output, bin.NetworkTuples, gobRes.Output, gobRes.NetworkTuples)
	}
	for w := range bin.Workers {
		if bin.Workers[w] != gobRes.Workers[w] {
			t.Fatalf("worker %d metrics differ: binary %+v, gob %+v",
				w, bin.Workers[w], gobRes.Workers[w])
		}
	}
	if !strings.HasSuffix(bin.Scheme, "@net") || !strings.HasSuffix(gobRes.Scheme, "@gob") {
		t.Errorf("scheme labels %q / %q", bin.Scheme, gobRes.Scheme)
	}
	if want := localjoin.NestedLoopCount(r1, r2, cond); bin.Output != want {
		t.Fatalf("output %d, want ground truth %d", bin.Output, want)
	}
}

// dialV2 opens a raw v2 connection for protocol-level fault injection.
func dialV2(t *testing.T, addr string, version uint16) (*bufio.Writer, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	bw := bufio.NewWriter(conn)
	var prelude [6]byte
	copy(prelude[:], protoMagic[:])
	binary.LittleEndian.PutUint16(prelude[4:], version)
	if _, err := bw.Write(prelude[:]); err != nil {
		t.Fatal(err)
	}
	return bw, conn
}

func readErrMetrics(t *testing.T, conn net.Conn) string {
	t.Helper()
	var m metrics
	if err := readGobFrame(bufio.NewReader(conn), frameMetrics, &m); err != nil {
		t.Fatalf("reading metrics reply: %v", err)
	}
	return m.Err
}

func TestVersionMismatchRejected(t *testing.T) {
	addrs := startWorkers(t, 1)
	bw, conn := dialV2(t, addrs[0], protoVersion+7)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readErrMetrics(t, conn); !strings.Contains(msg, "version") {
		t.Fatalf("error %q does not mention the version", msg)
	}
}

func TestDeclaredCountEnforced(t *testing.T) {
	spec, err := join.SpecOf(join.Equi{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 1)

	// EOS before the declared tuples arrived.
	bw, conn := dialV2(t, addrs[0], protoVersion)
	hs := handshake{Cond: spec, N1: 5, N2: 0}
	if err := writeGobFrame(bw, frameHandshake, hs); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameHeader(bw, frameEOS, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readErrMetrics(t, conn); !strings.Contains(msg, "declared") {
		t.Fatalf("truncated stream accepted: %q", msg)
	}

	// More tuples than declared.
	bw, conn = dialV2(t, addrs[0], protoVersion)
	hs = handshake{Cond: spec, N1: 1, N2: 0}
	if err := writeGobFrame(bw, frameHandshake, hs); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocks(bw, 1, []join.Key{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readErrMetrics(t, conn); !strings.Contains(msg, "overflow") {
		t.Fatalf("overflowing block accepted: %q", msg)
	}
}

func TestUnknownRelationRejected(t *testing.T) {
	spec, err := join.SpecOf(join.Equi{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 1)
	bw, conn := dialV2(t, addrs[0], protoVersion)
	if err := writeGobFrame(bw, frameHandshake, handshake{Cond: spec, N1: 1, N2: 1}); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocks(bw, 3, []join.Key{9}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := readErrMetrics(t, conn); !strings.Contains(msg, "relation") {
		t.Fatalf("block for relation 3 accepted: %q", msg)
	}
}

func TestMultiBlockRelation(t *testing.T) {
	// A relation larger than one block frame still reassembles exactly:
	// exercise the split path by writing two explicit blocks for R1.
	spec, err := join.SpecOf(join.NewBand(1))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 1)
	bw, conn := dialV2(t, addrs[0], protoVersion)
	r1 := randKeys(1000, 400, 60)
	r2 := randKeys(1000, 400, 61)
	if err := writeGobFrame(bw, frameHandshake,
		handshake{Cond: spec, N1: int64(len(r1)), N2: int64(len(r2))}); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocks(bw, 1, r1[:300]); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocks(bw, 1, r1[300:]); err != nil {
		t.Fatal(err)
	}
	if err := writeKeyBlocks(bw, 2, r2); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameHeader(bw, frameEOS, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var m metrics
	if err := readGobFrame(bufio.NewReader(conn), frameMetrics, &m); err != nil {
		t.Fatal(err)
	}
	if m.Err != "" {
		t.Fatal(m.Err)
	}
	cond := join.NewBand(1)
	if want := localjoin.NestedLoopCount(r1, r2, cond); m.Output != want {
		t.Fatalf("output %d, want %d", m.Output, want)
	}
}

func TestWorkerCloseStopsServe(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- w.Serve() }()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after Close, want nil", err)
	}
}

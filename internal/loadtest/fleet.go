package loadtest

import (
	"context"
	"time"

	"ewh/internal/netexec"
)

// Fleet is a locally-spawned shared worker fleet: real TCP listeners on
// loopback, one Worker process-equivalent each, with a common admission and
// tenant-policy configuration. It is what cmd/ewhload and the loadtest
// suite drive when no external -workers fleet is given.
type Fleet struct {
	Workers []*netexec.Worker
	Addrs   []string
}

// FleetConfig configures every worker of a spawned fleet identically —
// admission control and tenant budgets are per-worker state, so a uniform
// fleet is the service configuration one deployment would roll out.
type FleetConfig struct {
	Workers   int
	Admission netexec.AdmissionConfig
	Default   netexec.TenantPolicy
	// PerTenant overrides the default policy for specific tenants (e.g. a
	// tight MaxBytes budget for the quota probe's tenant).
	PerTenant map[string]netexec.TenantPolicy
	Timeouts  netexec.Timeouts
}

// SpawnFleet starts the fleet on loopback; Close (or Shutdown) releases it.
func SpawnFleet(cfg FleetConfig) (*Fleet, error) {
	f := &Fleet{}
	for i := 0; i < cfg.Workers; i++ {
		w, err := netexec.ListenWorker("127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		w.SetTimeouts(cfg.Timeouts)
		if cfg.Admission.MaxInFlight > 0 {
			w.SetAdmission(cfg.Admission)
		}
		w.SetDefaultTenantPolicy(cfg.Default)
		for tenant, p := range cfg.PerTenant {
			w.SetTenantPolicy(tenant, p)
		}
		go func() { _ = w.Serve() }()
		f.Workers = append(f.Workers, w)
		f.Addrs = append(f.Addrs, w.Addr())
	}
	return f, nil
}

// Close kills every worker abruptly.
func (f *Fleet) Close() {
	for _, w := range f.Workers {
		_ = w.Close()
	}
}

// Shutdown drains every worker gracefully, bounded by d.
func (f *Fleet) Shutdown(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var first error
	for _, w := range f.Workers {
		if err := w.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Package loadtest drives the multi-tenant service shape end to end:
// many concurrent coordinator goroutines, each its own tenant session,
// running thousands of small joins over ONE shared socket-level worker
// fleet with admission control and per-tenant budgets enforced
// worker-side. It measures throughput and latency percentiles, counts
// typed rejections, spot-checks outputs bit-identical against the
// in-process engine, and (optionally) runs a fairness phase — a hog
// tenant saturating the pool while modest tenants assert their fair
// share — and a quota probe asserting budget violations surface as typed
// ErrQuota rejections, never as memory growth or a wedged worker.
//
// cmd/ewhload is the CLI wrapper CI runs; the package is a library so
// tests can drive the same phases in-process.
package loadtest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/workload"
)

// Config shapes one load-test run against an already-listening fleet.
type Config struct {
	// Addrs is the shared worker fleet every tenant's session dials.
	Addrs []string
	// Tenants is the number of concurrent tenant coordinators.
	Tenants int
	// JobsPerTenant is each tenant's job count in the throughput phase.
	JobsPerTenant int
	// Concurrency is each tenant's concurrent in-flight jobs (>= 1).
	Concurrency int
	// Rows per relation per join (small joins; the load is in the count).
	Rows int
	// DistinctWorkloads cycles jobs through this many distinct input pairs
	// (expected outputs are precomputed per pair on the in-process engine).
	DistinctWorkloads int
	// SpotCheckEvery deep-compares every Nth job's per-worker metrics
	// against the in-process run (0: outputs only).
	SpotCheckEvery int
	// Seed derives every workload deterministically.
	Seed uint64
	// Timeouts apply to every tenant session.
	Timeouts netexec.Timeouts

	// FairnessWindow > 0 runs the fairness phase for this wall duration:
	// a hog tenant holding HogSessions sessions and the regular tenants
	// (one deep-pipelined session each) drive jobs through ONE shared
	// worker's execution slot (1-worker scheme), and per-tenant completions
	// in the window are compared against the equal-weight fair share. The
	// phase asserts the system-level floor — no tenant starves below half
	// its fair share while the hog saturates the pool; the admitter-level
	// dispatch policy itself is pinned by netexec's unit tests. Meaningful
	// only when the fleet runs MaxInFlight 1, so the slot is contended.
	FairnessWindow time.Duration
	// HogSessions is the hog tenant's session count (default: 2×Tenants).
	// Sessions, not pipeline depth, are the hog's aggression: each
	// connection contributes at most one admission waiter at a time (job
	// sends are contiguous per connection), so staggered sessions keep the
	// hog's queue at the contended worker permanently non-empty.
	HogSessions int
	// FairnessConcurrency is each regular tenant's in-flight job count in
	// the fairness phase (default 12): a deep pipeline keeps a standing
	// backlog of pre-sent jobs in the socket so the worker re-queues the
	// tenant the instant a grant frees its read loop.
	FairnessConcurrency int
	// FairnessRows sizes the fairness phase's relations (default: Rows):
	// large enough that each job's slot hold sustains admission contention,
	// small enough that the coordinator-side turnaround stays cheap.
	FairnessRows int

	// QuotaTenant, when non-empty, runs the quota probe: a session under
	// this tenant (whose worker-side MaxBytes budget the fleet configured
	// tight) submits an over-budget join and must observe a typed ErrQuota.
	QuotaTenant string
	// QuotaRows sizes the probe's relations (default: 4×Rows).
	QuotaRows int
}

func (c *Config) defaults() {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.Rows <= 0 {
		c.Rows = 2000
	}
	if c.DistinctWorkloads <= 0 {
		c.DistinctWorkloads = 8
	}
	if c.HogSessions <= 0 {
		c.HogSessions = 2 * c.Tenants
	}
	if c.FairnessConcurrency <= 0 {
		c.FairnessConcurrency = 12
	}
	if c.FairnessRows <= 0 {
		c.FairnessRows = c.Rows
	}
	if c.QuotaRows <= 0 {
		c.QuotaRows = 4 * c.Rows
	}
}

// TenantResult is one tenant's throughput-phase outcome.
type TenantResult struct {
	Tenant    string
	Completed int64
	Rejected  int64
	P50Ms     float64
	P99Ms     float64
	MaxMs     float64
}

// FairnessReport is the fairness phase's outcome. FairShare is the
// per-tenant completion count a perfectly fair pool would give each of the
// Tenants+1 equal-weight tenants (hog included); MinShareRatio is the
// slowest regular tenant's completions over that share.
type FairnessReport struct {
	WindowMs      float64
	HogSessions   int
	HogCompleted  int64
	Normal        []int64
	FairShare     float64
	MinShareRatio float64
}

// QuotaReport is the quota probe's outcome.
type QuotaReport struct {
	TypedRejection bool
	Err            string
}

// Report is the full run's outcome. Failures counts jobs that ended in
// anything other than success or a typed admission rejection — any nonzero
// value is a policy violation, as is any Mismatches.
type Report struct {
	Workers       int             `json:"workers"`
	Tenants       int             `json:"tenants"`
	JobsPerTenant int             `json:"jobs_per_tenant"`
	Completed     int64           `json:"completed"`
	Rejected      int64           `json:"rejected"`
	Mismatches    int64           `json:"mismatches"`
	Failures      int64           `json:"failures"`
	WallMs        float64         `json:"wall_ms"`
	JobsPerSec    float64         `json:"jobs_per_sec"`
	P50Ms         float64         `json:"p50_ms"`
	P99Ms         float64         `json:"p99_ms"`
	PerTenant     []TenantResult  `json:"per_tenant"`
	Fairness      *FairnessReport `json:"fairness,omitempty"`
	Quota         *QuotaReport    `json:"quota,omitempty"`
	Errors        []string        `json:"errors,omitempty"`
}

// Violations summarizes why a run is a policy failure ("" when clean).
func (r *Report) Violations() string {
	var v []string
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d output mismatches", r.Mismatches))
	}
	if r.Failures > 0 {
		v = append(v, fmt.Sprintf("%d untyped job failures", r.Failures))
	}
	if r.Completed == 0 {
		v = append(v, "no job completed")
	}
	if r.Fairness != nil && r.Fairness.MinShareRatio < 0.5 {
		v = append(v, fmt.Sprintf("slowest tenant at %.0f%% of fair share (floor 50%%)",
			100*r.Fairness.MinShareRatio))
	}
	if r.Quota != nil && !r.Quota.TypedRejection {
		v = append(v, "quota probe did not observe a typed ErrQuota rejection")
	}
	if len(v) == 0 {
		return ""
	}
	return fmt.Sprint(v)
}

// workloadSet is the precomputed job inputs and their expected in-process
// results, shared by every tenant (inputs are read-only under the shuffle).
type workloadSet struct {
	r1, r2   [][]join.Key
	expected []*exec.Result
	cond     join.Condition
	scheme   partition.Scheme
	seed     uint64
}

func buildWorkloads(cfg *Config, rows, workers int, seedOff uint64, cond join.Condition) *workloadSet {
	ws := &workloadSet{
		cond:   cond,
		scheme: partition.NewCI(workers),
		seed:   cfg.Seed + seedOff + 1000,
	}
	for k := 0; k < cfg.DistinctWorkloads; k++ {
		r1 := workload.Zipfian(rows, int64(rows), 0.5, cfg.Seed+seedOff+uint64(2*k))
		r2 := workload.Zipfian(rows, int64(rows), 0.5, cfg.Seed+seedOff+uint64(2*k+1))
		ws.r1 = append(ws.r1, r1)
		ws.r2 = append(ws.r2, r2)
		ws.expected = append(ws.expected,
			exec.Run(r1, r2, ws.cond, ws.scheme, cost.DefaultBand, exec.Config{Seed: ws.seed}))
	}
	return ws
}

// runOne executes workload k over the session and classifies the outcome.
// deep additionally compares the per-worker metric vectors — with the same
// Config the session's per-worker blocks are bit-identical to the
// in-process engine's, so any divergence is a crossed stream.
func (ws *workloadSet) runOne(sess *netexec.Session, k int, deep bool) (mismatch bool, err error) {
	res, err := exec.RunOver(sess, ws.r1[k], ws.r2[k], ws.cond, ws.scheme,
		cost.DefaultBand, exec.Config{Seed: ws.seed})
	if err != nil {
		return false, err
	}
	want := ws.expected[k]
	if res.Output != want.Output {
		return true, nil
	}
	if deep {
		for w := range want.Workers {
			a, b := res.Workers[w], want.Workers[w]
			if a.InputR1 != b.InputR1 || a.InputR2 != b.InputR2 || a.Output != b.Output {
				return true, nil
			}
		}
	}
	return false, nil
}

// Run executes the configured phases against the fleet and reports. The
// returned error covers harness-level failures only (sessions that cannot
// dial); policy violations land in the Report.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("loadtest: no worker addresses")
	}
	ws := buildWorkloads(&cfg, cfg.Rows, len(cfg.Addrs), 0, join.Equi{})
	pool, err := netexec.NewPool(cfg.Addrs, cfg.Timeouts)
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	rep := &Report{Workers: len(cfg.Addrs), Tenants: cfg.Tenants, JobsPerTenant: cfg.JobsPerTenant}
	if err := runThroughput(&cfg, ws, pool, rep); err != nil {
		return nil, err
	}
	if cfg.FairnessWindow > 0 {
		// A 1-worker scheme funnels every fairness job through ONE worker's
		// admitter, so per-tenant completions reflect that worker's admission
		// behavior rather than shuffle spread across the fleet.
		fairWS := buildWorkloads(&cfg, cfg.FairnessRows, 1, 500, join.Equi{})
		if err := runFairness(&cfg, fairWS, pool, rep); err != nil {
			return nil, err
		}
	}
	if cfg.QuotaTenant != "" {
		if err := runQuotaProbe(&cfg, pool, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// tenantName is the stable id of tenant i.
func tenantName(i int) string { return fmt.Sprintf("tenant-%02d", i) }

// runThroughput is the main phase: every tenant runs its jobs at bounded
// concurrency, latencies and rejections recorded per tenant.
func runThroughput(cfg *Config, ws *workloadSet, pool *netexec.Pool, rep *Report) error {
	type tenantState struct {
		sess      *netexec.Session
		completed atomic.Int64
		rejected  atomic.Int64
		mu        sync.Mutex
		lat       []time.Duration
	}
	states := make([]*tenantState, cfg.Tenants)
	for i := range states {
		sess, err := pool.Session(context.Background(), tenantName(i))
		if err != nil {
			return fmt.Errorf("loadtest: tenant %d session: %w", i, err)
		}
		states[i] = &tenantState{sess: sess}
	}
	defer func() {
		for _, st := range states {
			_ = st.sess.Close()
		}
	}()

	var mismatches, failures atomic.Int64
	errCh := make(chan string, 64)
	start := time.Now()
	var wg sync.WaitGroup
	for ti, st := range states {
		next := new(atomic.Int64)
		for c := 0; c < cfg.Concurrency; c++ {
			wg.Add(1)
			go func(ti int, st *tenantState) {
				defer wg.Done()
				for {
					jobIdx := int(next.Add(1)) - 1
					if jobIdx >= cfg.JobsPerTenant {
						return
					}
					k := (ti + jobIdx) % cfg.DistinctWorkloads
					deep := cfg.SpotCheckEvery > 0 && jobIdx%cfg.SpotCheckEvery == 0
					t0 := time.Now()
					mismatch, err := ws.runOne(st.sess, k, deep)
					d := time.Since(t0)
					switch {
					case err == nil && !mismatch:
						st.completed.Add(1)
						st.mu.Lock()
						st.lat = append(st.lat, d)
						st.mu.Unlock()
					case err == nil && mismatch:
						mismatches.Add(1)
					case errors.Is(err, netexec.ErrAdmission):
						st.rejected.Add(1)
					default:
						failures.Add(1)
						select {
						case errCh <- fmt.Sprintf("tenant %d job %d: %v", ti, jobIdx, err):
						default:
						}
					}
				}
			}(ti, st)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for e := range errCh {
		if len(rep.Errors) < 16 {
			rep.Errors = append(rep.Errors, e)
		}
	}

	var all []time.Duration
	for i, st := range states {
		st.mu.Lock()
		lat := st.lat
		st.mu.Unlock()
		p50, p99, max := percentiles(lat)
		rep.PerTenant = append(rep.PerTenant, TenantResult{
			Tenant:    tenantName(i),
			Completed: st.completed.Load(),
			Rejected:  st.rejected.Load(),
			P50Ms:     ms(p50), P99Ms: ms(p99), MaxMs: ms(max),
		})
		rep.Completed += st.completed.Load()
		rep.Rejected += st.rejected.Load()
		all = append(all, lat...)
	}
	rep.Mismatches = mismatches.Load()
	rep.Failures = failures.Load()
	rep.WallMs = ms(wall)
	if wall > 0 {
		rep.JobsPerSec = float64(rep.Completed) / wall.Seconds()
	}
	p50, p99, _ := percentiles(all)
	rep.P50Ms, rep.P99Ms = ms(p50), ms(p99)
	return nil
}

// runFairness pits a hog tenant holding HogSessions concurrent sessions
// against the regular tenants (one deep-pipelined session each), all
// contending for one shared worker's execution slot, and records each
// tenant's completions within the window. The assertion downstream is the
// system-level floor from the acceptance criteria — the slowest regular
// tenant keeps at least half its fair share while the hog saturates the
// pool. It is deliberately NOT a scheduler-policy discriminator: on a
// small host the coordinators and workers share CPU, so end-to-end shares
// blend scheduling with runtime effects; the dispatch policy itself
// (weighted fair, hog capped at one tenant's share) is pinned
// deterministically by the admitter unit tests in netexec.
func runFairness(cfg *Config, ws *workloadSet, pool *netexec.Pool, rep *Report) error {
	stopAt := time.Now().Add(cfg.FairnessWindow)
	stopped := func() bool { return time.Now().After(stopAt) }

	// runSessions opens `sessions` sessions under one tenant identity, each
	// driving `concurrency` in-flight jobs until the window closes.
	runSessions := func(tenant string, sessions, concurrency int, completed *atomic.Int64) (func(), error) {
		var open []*netexec.Session
		var wg sync.WaitGroup
		cleanup := func() {
			wg.Wait()
			for _, s := range open {
				_ = s.Close()
			}
		}
		for si := 0; si < sessions; si++ {
			sess, err := pool.Session(context.Background(), tenant)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("loadtest: fairness session %s: %w", tenant, err)
			}
			open = append(open, sess)
			for c := 0; c < concurrency; c++ {
				wg.Add(1)
				go func(sess *netexec.Session, c int) {
					defer wg.Done()
					for i := 0; !stopped(); i++ {
						k := (c + i) % cfg.DistinctWorkloads
						if mismatch, err := ws.runOne(sess, k, false); err == nil && !mismatch {
							completed.Add(1)
						}
						// Admission rejections and mismatches are counted by the
						// throughput phase; here only the completion rate matters.
					}
				}(sess, c)
			}
		}
		return cleanup, nil
	}

	var hog atomic.Int64
	normals := make([]atomic.Int64, cfg.Tenants)
	var waits []func()
	// The hog's aggression is its SESSION count: staggered across
	// HogSessions connections its queue at the contended worker never
	// empties, even at pipeline depth 1 — more depth would only burn
	// coordinator CPU this harness shares with the tenants under test. The
	// normals need the opposite: one session pipelining FairnessConcurrency
	// jobs deep, so a standing backlog of pre-sent jobs sits in the socket
	// and the worker re-queues the tenant the instant a grant frees its read
	// loop. Both sides genuinely demand more than their fair share for the
	// whole window, which is what makes the achieved shares a test of the
	// admitter's dispatch policy rather than of request timing.
	hogWait, err := runSessions("hog", cfg.HogSessions, 1, &hog)
	if err != nil {
		return err
	}
	waits = append(waits, hogWait)
	for i := 0; i < cfg.Tenants; i++ {
		w, err := runSessions(tenantName(i), 1, cfg.FairnessConcurrency, &normals[i])
		if err != nil {
			for _, wait := range waits {
				wait()
			}
			return err
		}
		waits = append(waits, w)
	}
	for _, wait := range waits {
		wait()
	}

	fr := &FairnessReport{
		WindowMs:     ms(cfg.FairnessWindow),
		HogSessions:  cfg.HogSessions,
		HogCompleted: hog.Load(),
	}
	total := fr.HogCompleted
	for i := range normals {
		n := normals[i].Load()
		fr.Normal = append(fr.Normal, n)
		total += n
	}
	// Every tenant (hog included) has weight 1, so the fair share is an
	// equal split across Tenants+1.
	fr.FairShare = float64(total) / float64(cfg.Tenants+1)
	minN := fr.Normal[0]
	for _, n := range fr.Normal[1:] {
		if n < minN {
			minN = n
		}
	}
	if fr.FairShare > 0 {
		fr.MinShareRatio = float64(minN) / fr.FairShare
	}
	rep.Fairness = fr
	return nil
}

// runQuotaProbe submits one join sized over the probe tenant's worker-side
// byte budget and records whether the refusal was a typed ErrQuota.
func runQuotaProbe(cfg *Config, pool *netexec.Pool, rep *Report) error {
	sess, err := pool.Session(context.Background(), cfg.QuotaTenant)
	if err != nil {
		return fmt.Errorf("loadtest: quota session: %w", err)
	}
	defer sess.Close()
	r1 := workload.Zipfian(cfg.QuotaRows, int64(cfg.QuotaRows), 0.5, cfg.Seed+9001)
	r2 := workload.Zipfian(cfg.QuotaRows, int64(cfg.QuotaRows), 0.5, cfg.Seed+9002)
	_, err = exec.RunOver(sess, r1, r2, join.Equi{}, partition.NewCI(len(cfg.Addrs)),
		cost.DefaultBand, exec.Config{Seed: cfg.Seed + 9003})
	q := &QuotaReport{}
	switch {
	case err == nil:
		q.Err = "over-budget job succeeded (budget not enforced)"
	case errors.Is(err, netexec.ErrQuota):
		q.TypedRejection = true
	default:
		q.Err = err.Error()
	}
	rep.Quota = q
	return nil
}

func percentiles(lat []time.Duration) (p50, p99, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99), s[len(s)-1]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

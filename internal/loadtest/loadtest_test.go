package loadtest

import (
	"testing"
	"time"

	"ewh/internal/netexec"
)

// TestShortProfile drives every phase of the harness in-process against a
// spawned 2-worker fleet: throughput with spot checks, the fairness window,
// and the quota probe. Assertions stick to the deterministic policy
// guarantees (no mismatches, no untyped failures, typed quota rejection,
// fairness accounting populated); the fairness FLOOR is asserted by the CI
// load-test job, whose wall window is long enough to be statistically stable.
func TestShortProfile(t *testing.T) {
	fleet, err := SpawnFleet(FleetConfig{
		Workers:   2,
		Admission: netexec.AdmissionConfig{MaxInFlight: 1, MaxQueue: 64, QueueDeadline: 10 * time.Second},
		PerTenant: map[string]netexec.TenantPolicy{"quota-probe": {MaxBytes: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	rep, err := Run(Config{
		Addrs:          fleet.Addrs,
		Tenants:        3,
		JobsPerTenant:  10,
		Concurrency:    2,
		Rows:           400,
		SpotCheckEvery: 3,
		Seed:           7,
		FairnessWindow: 400 * time.Millisecond,
		QuotaTenant:    "quota-probe",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 || rep.Failures != 0 {
		t.Fatalf("policy violations: %d mismatches, %d failures (%v)",
			rep.Mismatches, rep.Failures, rep.Errors)
	}
	if rep.Completed != 30 {
		t.Fatalf("completed %d of 30 jobs", rep.Completed)
	}
	if rep.Quota == nil || !rep.Quota.TypedRejection {
		t.Fatalf("quota probe: %+v", rep.Quota)
	}
	f := rep.Fairness
	if f == nil || len(f.Normal) != 3 || f.HogCompleted == 0 {
		t.Fatalf("fairness report: %+v", f)
	}
	t.Logf("fairness in %0.fms window: hog %d, normals %v, min share %.0f%%",
		f.WindowMs, f.HogCompleted, f.Normal, 100*f.MinShareRatio)

	if err := fleet.Shutdown(20 * time.Second); err != nil {
		t.Fatalf("fleet shutdown: %v", err)
	}
}

// Package sample implements the statistics-collection machinery of §IV:
// Bernoulli input sampling, Efraimidis-Spirakis weighted reservoir sampling,
// and the parallel Stream-Sample algorithm that produces a uniform random
// sample of the *join output* without executing the join. Stream-Sample also
// yields the exact output size m = Σ d2(t1.A), which the sample matrix needs
// to scale cell frequencies (§III-A).
package sample

import (
	"ewh/internal/join"
	"ewh/internal/stats"
)

// Bernoulli returns an independent sample of keys where each key is kept
// with probability rate (clamped to [0,1]). The expected sample size is
// rate·len(keys); the paper uses rate qi = si/n for the input sample [19].
func Bernoulli(keys []join.Key, rate float64, rng *stats.RNG) []join.Key {
	if rate <= 0 {
		return nil
	}
	if rate >= 1 {
		out := make([]join.Key, len(keys))
		copy(out, keys)
		return out
	}
	out := make([]join.Key, 0, int(rate*float64(len(keys)))+16)
	for _, k := range keys {
		if rng.Float64() < rate {
			out = append(out, k)
		}
	}
	return out
}

// FixedSize returns a uniform random sample of exactly min(size, len(keys))
// keys without replacement, via reservoir sampling (Algorithm R). The input
// is not modified.
func FixedSize(keys []join.Key, size int, rng *stats.RNG) []join.Key {
	if size <= 0 {
		return nil
	}
	if size >= len(keys) {
		out := make([]join.Key, len(keys))
		copy(out, keys)
		return out
	}
	out := make([]join.Key, size)
	copy(out, keys[:size])
	for i := size; i < len(keys); i++ {
		j := rng.Int64n(int64(i) + 1)
		if j < int64(size) {
			out[j] = keys[i]
		}
	}
	return out
}

package sample

import (
	"sort"

	"ewh/internal/join"
)

// KeyMultiset is d2equi from §IV-A: the sorted distinct join keys of a
// relation with their multiplicities and prefix sums. It answers
// "how many R2 tuples are joinable with key k" (d2) and "select the u-th
// joinable R2 key" in O(log n), which Stream-Sample uses to weight the R1
// sample and to draw uniform output partners.
type KeyMultiset struct {
	keys   []join.Key
	prefix []int64 // prefix[i] = total multiplicity of keys[0..i-1]; len = len(keys)+1
}

// BuildMultiset constructs the multiset from a relation's keys. The input is
// copied; construction is O(n log n).
func BuildMultiset(keys []join.Key) *KeyMultiset {
	sorted := make([]join.Key, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m := &KeyMultiset{}
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		m.keys = append(m.keys, sorted[i])
		i = j
	}
	m.prefix = make([]int64, len(m.keys)+1)
	ki := 0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		m.prefix[ki+1] = m.prefix[ki] + int64(j-i)
		ki++
		i = j
	}
	return m
}

// Total returns the total multiplicity (the relation size).
func (m *KeyMultiset) Total() int64 { return m.prefix[len(m.keys)] }

// Distinct returns the number of distinct keys.
func (m *KeyMultiset) Distinct() int { return len(m.keys) }

// RangeCount returns the total multiplicity of keys in the inclusive range
// [lo, hi]. For a condition c, RangeCount(c.JoinableRange(k)) is exactly
// d2(k), the joinable-set size of k.
func (m *KeyMultiset) RangeCount(lo, hi join.Key) int64 {
	if lo > hi {
		return 0
	}
	i := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= lo })
	j := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] > hi })
	return m.prefix[j] - m.prefix[i]
}

// Select returns the u-th key (0-based, ordered, counting multiplicity) among
// keys >= lo. The caller guarantees 0 <= u < RangeCount(lo, hi) for the hi it
// has in mind; Select only needs the lower bound.
func (m *KeyMultiset) Select(lo join.Key, u int64) join.Key {
	i := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= lo })
	target := m.prefix[i] + u
	// First j with prefix[j+1] > target.
	j := sort.Search(len(m.keys), func(j int) bool { return m.prefix[j+1] > target })
	return m.keys[j]
}

// D2 returns the joinable-set size of the R1 key k under condition c.
func (m *KeyMultiset) D2(c join.Condition, k join.Key) int64 {
	lo, hi := c.JoinableRange(k)
	return m.RangeCount(lo, hi)
}

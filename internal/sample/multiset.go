package sample

import (
	"slices"

	"ewh/internal/join"
	"ewh/internal/keysort"
)

// KeyMultiset is d2equi from §IV-A: the sorted distinct join keys of a
// relation with their multiplicities and prefix sums. It answers
// "how many R2 tuples are joinable with key k" (d2) and "select the u-th
// joinable R2 key" in O(log n), which Stream-Sample uses to weight the R1
// sample and to draw uniform output partners.
type KeyMultiset struct {
	keys   []join.Key
	prefix []int64 // prefix[i] = total multiplicity of keys[0..i-1]; len = len(keys)+1
}

// BuildMultiset constructs the multiset from a relation's keys. The input is
// copied and radix-sorted (keysort), then the run-length groups are folded
// into keys and prefix sums in a single pass over preallocated storage — a
// handful of allocations regardless of the number of distinct keys.
func BuildMultiset(keys []join.Key) *KeyMultiset {
	sorted := slices.Clone(keys)
	keysort.Sort(sorted)
	ks := make([]join.Key, 0, len(sorted))
	prefix := make([]int64, 1, len(sorted)+1)
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		ks = append(ks, sorted[i])
		prefix = append(prefix, prefix[len(prefix)-1]+int64(j-i))
		i = j
	}
	return &KeyMultiset{keys: ks, prefix: prefix}
}

// Total returns the total multiplicity (the relation size).
func (m *KeyMultiset) Total() int64 { return m.prefix[len(m.keys)] }

// Distinct returns the number of distinct keys.
func (m *KeyMultiset) Distinct() int { return len(m.keys) }

// RangeCount returns the total multiplicity of keys in the inclusive range
// [lo, hi]. For a condition c, RangeCount(c.JoinableRange(k)) is exactly
// d2(k), the joinable-set size of k.
func (m *KeyMultiset) RangeCount(lo, hi join.Key) int64 {
	if lo > hi {
		return 0
	}
	i, _ := slices.BinarySearch(m.keys, lo)
	j, found := slices.BinarySearch(m.keys, hi) // keys are distinct
	if found {
		j++
	}
	return m.prefix[j] - m.prefix[i]
}

// Select returns the u-th key (0-based, ordered, counting multiplicity) among
// keys >= lo. The caller guarantees 0 <= u < RangeCount(lo, hi) for the hi it
// has in mind; Select only needs the lower bound.
func (m *KeyMultiset) Select(lo join.Key, u int64) join.Key {
	i, _ := slices.BinarySearch(m.keys, lo)
	target := m.prefix[i] + u
	// First j with prefix[j+1] > target (prefix is strictly increasing).
	j, _ := slices.BinarySearch(m.prefix[1:], target+1)
	return m.keys[j]
}

// D2 returns the joinable-set size of the R1 key k under condition c.
func (m *KeyMultiset) D2(c join.Condition, k join.Key) int64 {
	lo, hi := c.JoinableRange(k)
	return m.RangeCount(lo, hi)
}

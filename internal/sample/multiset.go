package sample

import (
	"slices"

	"ewh/internal/join"
	"ewh/internal/keysort"
)

// KeyMultiset is d2equi from §IV-A: the sorted distinct join keys of a
// relation with their multiplicities and prefix sums. It answers
// "how many R2 tuples are joinable with key k" (d2) and "select the u-th
// joinable R2 key" in O(log n), which Stream-Sample uses to weight the R1
// sample and to draw uniform output partners.
type KeyMultiset struct {
	keys   []join.Key
	prefix []int64 // prefix[i] = total multiplicity of keys[0..i-1]; len = len(keys)+1
}

// BuildMultiset constructs the multiset from a relation's keys. The input is
// copied and radix-sorted (keysort), then the run-length groups are folded
// into keys and prefix sums in a single pass over preallocated storage — a
// handful of allocations regardless of the number of distinct keys.
func BuildMultiset(keys []join.Key) *KeyMultiset {
	sorted := slices.Clone(keys)
	keysort.Sort(sorted)
	ks := make([]join.Key, 0, len(sorted))
	prefix := make([]int64, 1, len(sorted)+1)
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		ks = append(ks, sorted[i])
		prefix = append(prefix, prefix[len(prefix)-1]+int64(j-i))
		i = j
	}
	return &KeyMultiset{keys: ks, prefix: prefix}
}

// Total returns the total multiplicity (the relation size).
func (m *KeyMultiset) Total() int64 { return m.prefix[len(m.keys)] }

// Distinct returns the number of distinct keys.
func (m *KeyMultiset) Distinct() int { return len(m.keys) }

// lowerBound returns the first index i with m.keys[i] >= k.
func (m *KeyMultiset) lowerBound(k join.Key) int {
	keys := m.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopUpper returns the first index j >= i in the sorted slice a with
// a[j] > target, galloping forward from i. Joinable ranges are narrow
// relative to the key domain, so when i is the range's lower bound the
// answer is almost always within a few slots — the gallop touches O(log d)
// cache lines instead of a full-width binary search's O(log n).
func gallopUpper[T interface{ ~int64 }](a []T, i int, target T) int {
	n := len(a)
	if i >= n || a[i] > target {
		return i
	}
	step := 1
	lo, hi := i, i+1
	for hi < n && a[hi] <= target {
		lo = hi
		step <<= 1
		hi = i + step
	}
	if hi > n {
		hi = n
	}
	// Invariant: a[lo] <= target, and (hi == n or a[hi] > target).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// RangeCount returns the total multiplicity of keys in the inclusive range
// [lo, hi]. For a condition c, RangeCount(c.JoinableRange(k)) is exactly
// d2(k), the joinable-set size of k.
func (m *KeyMultiset) RangeCount(lo, hi join.Key) int64 {
	if lo > hi {
		return 0
	}
	i := m.lowerBound(lo)
	j := gallopUpper(m.keys, i, hi)
	return m.prefix[j] - m.prefix[i]
}

// Select returns the u-th key (0-based, ordered, counting multiplicity) among
// keys >= lo. The caller guarantees 0 <= u < RangeCount(lo, hi) for the hi it
// has in mind; Select only needs the lower bound.
func (m *KeyMultiset) Select(lo join.Key, u int64) join.Key {
	return m.SelectAt(int32(m.lowerBound(lo)), u)
}

// SelectAt is Select with the joinable range's lower-bound index already
// known — the handle D2At hands out so repeated draws for the same key skip
// the key search entirely.
func (m *KeyMultiset) SelectAt(at int32, u int64) join.Key {
	i := int(at)
	target := m.prefix[i] + u
	// First j with prefix[j+1] > target (prefix is strictly increasing);
	// u < d2 keeps the answer inside the joinable range, so gallop from i.
	j := gallopUpper(m.prefix, i+1, target) - 1
	return m.keys[j]
}

// D2 returns the joinable-set size of the R1 key k under condition c.
func (m *KeyMultiset) D2(c join.Condition, k join.Key) int64 {
	lo, hi := c.JoinableRange(k)
	return m.RangeCount(lo, hi)
}

// D2At returns d2(k) together with the lower-bound index of k's joinable
// range, for callers that will draw partners for k later (SelectAt) or that
// scan the same keys twice (Stream-Sample's weight and materialize passes
// cache these instead of re-searching).
func (m *KeyMultiset) D2At(c join.Condition, k join.Key) (int64, int32) {
	lo, hi := c.JoinableRange(k)
	if lo > hi {
		return 0, 0
	}
	i := m.lowerBound(lo)
	j := gallopUpper(m.keys, i, hi)
	return m.prefix[j] - m.prefix[i], int32(i)
}

package sample

import (
	"container/heap"
	"math"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// WeightedItem is a key with its sampling weight and the Efraimidis-Spirakis
// priority assigned when it entered a reservoir.
type WeightedItem struct {
	Key      join.Key
	Weight   float64
	priority float64
}

// Reservoir is a one-pass weighted sampler without replacement of fixed
// capacity, following Efraimidis & Spirakis [24]: each item gets priority
// u^(1/w) with u ~ U(0,1), and the k items with the largest priorities form
// the sample. Reservoirs built on different shards merge losslessly, which
// is what makes the parallel Stream-Sample's step 2 possible (§IV-A).
//
// Reservoir is not safe for concurrent use; use one per goroutine and Merge.
type Reservoir struct {
	capacity int
	items    prioHeap // min-heap on priority: root is the eviction candidate
	rng      *stats.RNG
}

// NewReservoir returns a weighted reservoir holding at most capacity items.
// It panics if capacity <= 0.
func NewReservoir(capacity int, rng *stats.RNG) *Reservoir {
	if capacity <= 0 {
		panic("sample: NewReservoir capacity <= 0")
	}
	return &Reservoir{capacity: capacity, rng: rng}
}

// Add offers a key with the given weight. Items with weight <= 0 are never
// sampled (they correspond to tuples with empty joinable sets, which cannot
// contribute output).
func (r *Reservoir) Add(key join.Key, weight float64) {
	if weight <= 0 {
		return
	}
	p := math.Pow(r.rng.Float64Open(), 1/weight)
	r.offer(WeightedItem{Key: key, Weight: weight, priority: p})
}

func (r *Reservoir) offer(it WeightedItem) {
	if r.items.Len() < r.capacity {
		heap.Push(&r.items, it)
		return
	}
	if it.priority > r.items[0].priority {
		r.items[0] = it
		heap.Fix(&r.items, 0)
	}
}

// Merge folds other's items into r, preserving the without-replacement
// semantics: priorities assigned at Add time travel with the items, so the
// merged reservoir holds the global top-capacity priorities.
func (r *Reservoir) Merge(other *Reservoir) {
	for _, it := range other.items {
		r.offer(it)
	}
}

// Len returns the number of items currently held.
func (r *Reservoir) Len() int { return r.items.Len() }

// Items returns the sampled items in unspecified order.
func (r *Reservoir) Items() []WeightedItem {
	out := make([]WeightedItem, len(r.items))
	copy(out, r.items)
	return out
}

type prioHeap []WeightedItem

func (h prioHeap) Len() int            { return len(h) }
func (h prioHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(WeightedItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

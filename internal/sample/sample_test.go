package sample

import (
	"math"
	"testing"
	"testing/quick"

	"ewh/internal/join"
	"ewh/internal/stats"
)

func seqKeys(n int) []join.Key {
	out := make([]join.Key, n)
	for i := range out {
		out[i] = join.Key(i)
	}
	return out
}

func TestBernoulliRate(t *testing.T) {
	r := stats.NewRNG(1)
	keys := seqKeys(100000)
	s := Bernoulli(keys, 0.1, r)
	if len(s) < 9000 || len(s) > 11000 {
		t.Fatalf("rate 0.1 sample size %d, want ~10000", len(s))
	}
	if Bernoulli(keys, 0, r) != nil {
		t.Error("rate 0 should return nil")
	}
	if got := Bernoulli(keys, 1.5, r); len(got) != len(keys) {
		t.Error("rate >= 1 should return everything")
	}
}

func TestFixedSize(t *testing.T) {
	r := stats.NewRNG(2)
	keys := seqKeys(1000)
	s := FixedSize(keys, 100, r)
	if len(s) != 100 {
		t.Fatalf("got %d keys, want 100", len(s))
	}
	seen := map[join.Key]int{}
	for _, k := range s {
		seen[k]++
		if seen[k] > 1 {
			t.Fatal("without-replacement sample repeated a position-unique key")
		}
	}
	if got := FixedSize(keys, 2000, r); len(got) != 1000 {
		t.Error("oversized request should return all keys")
	}
	if FixedSize(keys, 0, r) != nil {
		t.Error("size 0 should return nil")
	}
}

func TestFixedSizeUniformity(t *testing.T) {
	// Each key should appear with probability size/n.
	r := stats.NewRNG(3)
	counts := make([]int, 20)
	const trials = 20000
	keys := seqKeys(20)
	for i := 0; i < trials; i++ {
		for _, k := range FixedSize(keys, 5, r) {
			counts[k]++
		}
	}
	want := trials * 5 / 20
	for k, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/5 {
			t.Errorf("key %d sampled %d times, want ~%d", k, c, want)
		}
	}
}

func TestReservoirBasics(t *testing.T) {
	r := stats.NewRNG(4)
	res := NewReservoir(5, r)
	for i := 0; i < 100; i++ {
		res.Add(join.Key(i), 1)
	}
	if res.Len() != 5 {
		t.Fatalf("reservoir holds %d, want 5", res.Len())
	}
	res.Add(999, 0) // zero weight must be ignored
	for _, it := range res.Items() {
		if it.Key == 999 {
			t.Fatal("zero-weight item sampled")
		}
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(0, stats.NewRNG(1))
}

func TestReservoirWeightBias(t *testing.T) {
	// Key 0 has weight 10, keys 1..10 weight 1; P(0 in sample of 1) ≈ 10/20.
	r := stats.NewRNG(5)
	hits := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		res := NewReservoir(1, r)
		res.Add(0, 10)
		for k := 1; k <= 10; k++ {
			res.Add(join.Key(k), 1)
		}
		if res.Items()[0].Key == 0 {
			hits++
		}
	}
	p := float64(hits) / trials
	if p < 0.42 || p > 0.58 {
		t.Fatalf("heavy key sampled with p=%v, want ~0.5", p)
	}
}

func TestReservoirMergeEquivalence(t *testing.T) {
	// Merging shard reservoirs must keep exactly the global top-k priorities.
	r := stats.NewRNG(6)
	whole := NewReservoir(8, r)
	a := NewReservoir(8, stats.NewRNG(100))
	b := NewReservoir(8, stats.NewRNG(200))
	_ = whole
	for i := 0; i < 50; i++ {
		a.Add(join.Key(i), float64(i+1))
	}
	for i := 50; i < 100; i++ {
		b.Add(join.Key(i), float64(i+1))
	}
	// Collect all items, find the true top-8 by priority.
	all := append(a.Items(), b.Items()...)
	a.Merge(b)
	if a.Len() != 8 {
		t.Fatalf("merged reservoir holds %d, want 8", a.Len())
	}
	merged := a.Items()
	// Every merged item's priority must be >= every dropped item's priority.
	minMerged := math.Inf(1)
	for _, it := range merged {
		if it.priority < minMerged {
			minMerged = it.priority
		}
	}
	inMerged := map[join.Key]bool{}
	for _, it := range merged {
		inMerged[it.Key] = true
	}
	for _, it := range all {
		if !inMerged[it.Key] && it.priority > minMerged {
			t.Fatalf("dropped item with priority %v > min merged %v", it.priority, minMerged)
		}
	}
}

func TestMultisetCounts(t *testing.T) {
	m := BuildMultiset([]join.Key{5, 3, 5, 1, 5, 3})
	if m.Total() != 6 {
		t.Fatalf("total %d, want 6", m.Total())
	}
	if m.Distinct() != 3 {
		t.Fatalf("distinct %d, want 3", m.Distinct())
	}
	cases := []struct {
		lo, hi join.Key
		want   int64
	}{
		{1, 5, 6}, {3, 5, 5}, {4, 10, 3}, {6, 10, 0}, {5, 1, 0}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := m.RangeCount(c.lo, c.hi); got != c.want {
			t.Errorf("RangeCount(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestMultisetSelect(t *testing.T) {
	m := BuildMultiset([]join.Key{1, 3, 3, 7})
	wants := []join.Key{1, 3, 3, 7}
	for u, want := range wants {
		if got := m.Select(1, int64(u)); got != want {
			t.Errorf("Select(1,%d) = %d, want %d", u, got, want)
		}
	}
	if got := m.Select(3, 2); got != 7 {
		t.Errorf("Select(3,2) = %d, want 7", got)
	}
}

func TestMultisetD2MatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(7)
	keys := make([]join.Key, 500)
	for i := range keys {
		keys[i] = r.Int64n(100)
	}
	m := BuildMultiset(keys)
	cond := join.NewBand(3)
	f := func(k8 int8) bool {
		k := join.Key(k8)
		var brute int64
		for _, k2 := range keys {
			if cond.Matches(k, k2) {
				brute++
			}
		}
		return m.D2(cond, k) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// exactOutputSize is the nested-loop ground truth.
func exactOutputSize(r1, r2 []join.Key, cond join.Condition) int64 {
	var m int64
	for _, a := range r1 {
		for _, b := range r2 {
			if cond.Matches(a, b) {
				m++
			}
		}
	}
	return m
}

func TestStreamSampleExactM(t *testing.T) {
	r := stats.NewRNG(8)
	r1 := make([]join.Key, 300)
	r2 := make([]join.Key, 400)
	for i := range r1 {
		r1[i] = r.Int64n(200)
	}
	for i := range r2 {
		r2[i] = r.Int64n(200)
	}
	for _, cond := range []join.Condition{join.NewBand(2), join.Equi{}, join.Inequality{Op: join.LessEq}} {
		s := StreamSample(r1, r2, cond, 100, 4, stats.NewRNG(9))
		want := exactOutputSize(r1, r2, cond)
		if s.M != want {
			t.Errorf("%v: M = %d, want %d", cond, s.M, want)
		}
		if want > 0 && len(s.Pairs) != 100 {
			t.Errorf("%v: %d pairs, want 100", cond, len(s.Pairs))
		}
		for _, p := range s.Pairs {
			if !cond.Matches(p[0], p[1]) {
				t.Errorf("%v: sampled non-matching pair %v", cond, p)
			}
		}
	}
}

func TestStreamSampleEmptyCases(t *testing.T) {
	r := stats.NewRNG(10)
	if s := StreamSample(nil, []join.Key{1}, join.Equi{}, 10, 2, r); s.M != 0 || len(s.Pairs) != 0 {
		t.Error("empty r1 should give empty sample")
	}
	// Disjoint ranges: zero output.
	s := StreamSample([]join.Key{1, 2}, []join.Key{100, 200}, join.NewBand(1), 10, 2, r)
	if s.M != 0 || len(s.Pairs) != 0 {
		t.Errorf("disjoint join gave M=%d pairs=%d", s.M, len(s.Pairs))
	}
	// so = 0: M still computed.
	s = StreamSample([]join.Key{1, 2}, []join.Key{1, 2}, join.Equi{}, 0, 2, r)
	if s.M != 2 || len(s.Pairs) != 0 {
		t.Errorf("so=0 gave M=%d pairs=%d", s.M, len(s.Pairs))
	}
}

func TestStreamSampleUniformity(t *testing.T) {
	// Join with known output: R1 = {0 (x1), 10 (x3)}, R2 = {0 (x2), 10 (x1)},
	// equi-join output = 1*2 + 3*1 = 5 tuples. Pair (0,0) holds 2/5 of the
	// output; over many samples its frequency must approach 2/5.
	r1 := []join.Key{0, 10, 10, 10}
	r2 := []join.Key{0, 0, 10}
	rng := stats.NewRNG(11)
	var zeroZero, total int
	for trial := 0; trial < 300; trial++ {
		s := StreamSample(r1, r2, join.Equi{}, 50, 3, rng)
		for _, p := range s.Pairs {
			total++
			if p[0] == 0 && p[1] == 0 {
				zeroZero++
			}
		}
	}
	got := float64(zeroZero) / float64(total)
	if math.Abs(got-0.4) > 0.05 {
		t.Fatalf("pair (0,0) frequency %v, want ~0.4", got)
	}
}

func TestStreamSampleParallelConsistency(t *testing.T) {
	// M must not depend on the worker count.
	r := stats.NewRNG(12)
	r1 := make([]join.Key, 1000)
	r2 := make([]join.Key, 1000)
	for i := range r1 {
		r1[i] = r.Int64n(500)
		r2[i] = r.Int64n(500)
	}
	cond := join.NewBand(4)
	var first int64 = -1
	for _, workers := range []int{1, 2, 7, 16} {
		s := StreamSample(r1, r2, cond, 64, workers, stats.NewRNG(13))
		if first < 0 {
			first = s.M
		} else if s.M != first {
			t.Fatalf("workers=%d gave M=%d, earlier %d", workers, s.M, first)
		}
		if len(s.Pairs) != 64 {
			t.Fatalf("workers=%d gave %d pairs", workers, len(s.Pairs))
		}
	}
}

func TestOutputSize(t *testing.T) {
	r := stats.NewRNG(14)
	r1 := make([]join.Key, 200)
	r2 := make([]join.Key, 300)
	for i := range r1 {
		r1[i] = r.Int64n(100)
	}
	for i := range r2 {
		r2[i] = r.Int64n(100)
	}
	cond := join.NewBand(1)
	if got, want := OutputSize(r1, r2, cond, 4), exactOutputSize(r1, r2, cond); got != want {
		t.Fatalf("OutputSize = %d, want %d", got, want)
	}
	if OutputSize(nil, r2, cond, 4) != 0 {
		t.Error("empty r1 should give 0")
	}
}

func BenchmarkStreamSample(b *testing.B) {
	r := stats.NewRNG(15)
	r1 := make([]join.Key, 100000)
	r2 := make([]join.Key, 100000)
	for i := range r1 {
		r1[i] = r.Int64n(50000)
		r2[i] = r.Int64n(50000)
	}
	cond := join.NewBand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StreamSample(r1, r2, cond, 1000, 8, stats.NewRNG(uint64(i)))
	}
}

func TestStreamSampleReservoirExactM(t *testing.T) {
	r := stats.NewRNG(20)
	r1 := make([]join.Key, 400)
	r2 := make([]join.Key, 400)
	for i := range r1 {
		r1[i] = r.Int64n(200)
		r2[i] = r.Int64n(200)
	}
	cond := join.NewBand(2)
	s := StreamSampleReservoir(r1, r2, cond, 80, 4, stats.NewRNG(21))
	if want := exactOutputSize(r1, r2, cond); s.M != want {
		t.Fatalf("reservoir variant M = %d, want %d", s.M, want)
	}
	if len(s.Pairs) != 80 {
		t.Fatalf("%d pairs, want 80", len(s.Pairs))
	}
	for _, p := range s.Pairs {
		if !cond.Matches(p[0], p[1]) {
			t.Fatalf("non-matching pair %v", p)
		}
	}
}

func TestStreamSampleReservoirEmpty(t *testing.T) {
	r := stats.NewRNG(22)
	if s := StreamSampleReservoir(nil, []join.Key{1}, join.Equi{}, 5, 2, r); s.M != 0 {
		t.Error("empty r1 gave M != 0")
	}
	s := StreamSampleReservoir([]join.Key{1}, []join.Key{100}, join.NewBand(1), 5, 2, r)
	if s.M != 0 || len(s.Pairs) != 0 {
		t.Error("disjoint join gave pairs")
	}
}

func TestStreamSampleVariantsAgreeInDistribution(t *testing.T) {
	// Both estimators must put roughly the same mass on a heavy region of
	// the output space.
	r := stats.NewRNG(23)
	var r1, r2 []join.Key
	// 30% of tuples in a dense head [0,20), rest spread over [1000, 5000).
	for i := 0; i < 600; i++ {
		if i%10 < 3 {
			r1 = append(r1, r.Int64n(20))
			r2 = append(r2, r.Int64n(20))
		} else {
			r1 = append(r1, 1000+r.Int64n(4000))
			r2 = append(r2, 1000+r.Int64n(4000))
		}
	}
	cond := join.NewBand(3)
	headShare := func(pairs [][2]join.Key) float64 {
		head := 0
		for _, p := range pairs {
			if p[0] < 20 {
				head++
			}
		}
		return float64(head) / float64(len(pairs))
	}
	var exactShare, resShare float64
	const trials = 30
	for i := uint64(0); i < trials; i++ {
		exactShare += headShare(StreamSample(r1, r2, cond, 300, 4, stats.NewRNG(100+i)).Pairs)
		resShare += headShare(StreamSampleReservoir(r1, r2, cond, 300, 4, stats.NewRNG(200+i)).Pairs)
	}
	exactShare /= trials
	resShare /= trials
	if diff := exactShare - resShare; diff > 0.05 || diff < -0.05 {
		t.Fatalf("estimators disagree: exact head share %.3f vs reservoir %.3f", exactShare, resShare)
	}
}

package sample

import (
	"sync"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// StreamSampleReservoir is the one-pass variant of the parallel
// Stream-Sample, following §IV-A's description literally: each shard feeds
// an Efraimidis-Spirakis weighted reservoir (priority u^(1/d2(t.A))), the
// per-shard Max-Heap reservoirs merge into a single without-replacement
// sample S1, and S1 is converted to a with-replacement sample by re-drawing
// proportionally to weight [8]. Partner keys are then drawn uniformly from
// each sampled tuple's joinable multiset.
//
// Compared to StreamSample (exact WR via weight positions, two passes over
// R1), this trades a small WOR→WR approximation for a single pass over R1 —
// the trade the paper makes; both estimators agree in distribution for
// so ≪ m. Exposed for the sampling ablation and for streaming callers that
// cannot do two passes.
func StreamSampleReservoir(r1, r2 []join.Key, cond join.Condition, so, workers int, rng *stats.RNG) *OutputSample {
	if workers < 1 {
		workers = 1
	}
	m2 := BuildMultiset(r2)
	n := len(r1)
	if n == 0 {
		return &OutputSample{}
	}
	if workers > n {
		workers = n
	}

	// One parallel pass: per-shard reservoirs plus per-shard weight totals
	// (the weight sum is free in the same pass and yields the exact m).
	type shardRes struct {
		res *Reservoir
		sum int64
	}
	shards := make([]shardRes, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w].res = NewReservoir(maxIntSample(so, 1), rng.Split())
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(n, workers, w)
			for _, k := range r1[lo:hi] {
				d2 := m2.D2(cond, k)
				shards[w].sum += d2
				shards[w].res.Add(k, float64(d2))
			}
		}(w)
	}
	wg.Wait()

	merged := shards[0].res
	var m int64 = shards[0].sum
	for w := 1; w < workers; w++ {
		merged.Merge(shards[w].res)
		m += shards[w].sum
	}
	out := &OutputSample{M: m}
	if m == 0 || so <= 0 {
		return out
	}

	// WOR → WR: redraw so items from the merged sample proportionally to
	// weight (cumulative inversion).
	items := merged.Items()
	cum := make([]float64, len(items)+1)
	for i, it := range items {
		cum[i+1] = cum[i] + it.Weight
	}
	total := cum[len(items)]
	out.Pairs = make([][2]join.Key, 0, so)
	for i := 0; i < so; i++ {
		u := rng.Float64() * total
		// Binary search the cumulative weights.
		lo, hi := 0, len(items)
		for lo < hi-1 {
			mid := (lo + hi) / 2
			if cum[mid] <= u {
				lo = mid
			} else {
				hi = mid
			}
		}
		k := items[lo].Key
		jLo, _ := cond.JoinableRange(k)
		d2 := int64(items[lo].Weight)
		if d2 < 1 {
			d2 = 1
		}
		out.Pairs = append(out.Pairs, [2]join.Key{k, m2.Select(jLo, rng.Int64n(d2))})
	}
	return out
}

func maxIntSample(a, b int) int {
	if a > b {
		return a
	}
	return b
}

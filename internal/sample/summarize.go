package sample

import (
	"slices"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/stats"
)

// AdaptiveCap sizes a summary's sample cap from the shard it summarizes:
// n/16, clamped to [64, cap]. A small shard stops inflating its summary with
// sample slots it cannot fill informatively (the full equi-depth histogram
// already carries its distribution), while a large shard keeps the full
// configured resolution. The result never exceeds cap, so merge capacity
// invariants are unchanged; it is a pure function of the shard SIZE, so
// summaries stay deterministic and reproducible.
func AdaptiveCap(n, cap int) int {
	c := n / 16
	if c < 64 {
		c = 64
	}
	if c > cap {
		c = cap
	}
	return c
}

// Summarize builds the mergeable statistics summary of one shard of keys —
// the worker side of distributed statistics collection: an exact count, a
// uniform without-replacement sample of at most cap keys (sorted, the
// canonical form), and a buckets-bucket equi-depth histogram over the FULL
// shard, which keeps quantile accuracy the capped sample cannot. The result
// is deterministic for a given rng seed, so a re-run reproduces the same
// summary bit for bit.
func Summarize(keys []join.Key, cap, buckets int, rng *stats.RNG) *stats.Summary {
	if cap < 1 {
		cap = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	if len(keys) == 0 {
		return &stats.Summary{Cap: cap}
	}
	sorted := slices.Clone(keys)
	keysort.Sort(sorted)
	h, err := histogram.FromSorted(sorted, buckets)
	if err != nil {
		// Unreachable for non-empty input; keep the summary well-formed.
		return &stats.Summary{Cap: cap}
	}
	// Reservoir sampling is order-oblivious, so drawing from the sorted clone
	// is still uniform — and saves a second copy of the shard.
	smp := FixedSize(sorted, cap, rng)
	keysort.Sort(smp)
	return &stats.Summary{
		Count:  int64(len(keys)),
		Cap:    cap,
		Keys:   smp,
		Bounds: slices.Clone(h.Boundaries()),
	}
}

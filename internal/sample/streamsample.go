package sample

import (
	"slices"
	"sync"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// OutputSample is a uniform random sample of the join output, with
// replacement, plus the exact output size m computed as a by-product
// (m = Σ_{t1∈R1} d2(t1.A), §IV-A "Parameters").
type OutputSample struct {
	// Pairs holds the join-key pairs (R1 key, R2 key) of the sampled output
	// tuples. Output samples carry only join keys (§IV-A item 2).
	Pairs [][2]join.Key
	// M is the exact join output size.
	M int64
}

// StreamSample draws a uniform random sample of size so (with replacement)
// from the output of r1 ⋈_cond r2 without executing the join, extending
// Chaudhuri et al.'s Stream-Sample [8] from equi-joins to monotonic joins
// and parallelizing it over the given number of workers:
//
//  1. Build d2equi (sorted R2 key multiplicities) — one scan of R2.
//  2. Shard R1; per shard, sum d2(t1.A) = |joinable set of t1| to obtain the
//     exact output size M and per-shard weight offsets.
//  3. Draw so positions uniformly in [0, M); each shard materializes the
//     positions landing in its weight span (weighted WR sampling of R1,
//     exact, one more scan).
//  4. For each sampled t1, draw a partner R2 key uniformly from its joinable
//     multiset via d2equi prefix sums.
//
// The result is an exact uniform WR sample of the output (each output tuple
// equi-probable), which joining uniform input samples cannot provide [8].
func StreamSample(r1, r2 []join.Key, cond join.Condition, so, workers int, rng *stats.RNG) *OutputSample {
	m2 := BuildMultiset(r2)
	return StreamSampleWith(r1, m2, cond, so, workers, rng)
}

// StreamSampleWith is StreamSample over a prebuilt R2 multiset. Callers that
// hold only a SAMPLE of R1 (the distributed statistics planner) get a sample
// of r1sample ⋈ R2 with its exact size M — an approximately uniform output
// sample of the full join when r1sample is itself uniform, with M scaling by
// the sampling fraction.
func StreamSampleWith(r1 []join.Key, m2 *KeyMultiset, cond join.Condition, so, workers int, rng *stats.RNG) *OutputSample {
	if workers < 1 {
		workers = 1
	}
	return streamSampleWithMultiset(r1, m2, cond, so, workers, rng)
}

func streamSampleWithMultiset(r1 []join.Key, m2 *KeyMultiset, cond join.Condition, so, workers int, rng *stats.RNG) *OutputSample {
	n := len(r1)
	if workers > n && n > 0 {
		workers = n
	}
	if n == 0 {
		return &OutputSample{}
	}

	// Step 2: per-shard total weights. Each element's d2 and its joinable
	// range's lower-bound index are cached so the materialize pass (step 3)
	// and the partner draws (step 4) never repeat the multiset searches —
	// the searches dominate the planner's profile, and the cached values are
	// exactly what the second scan would recompute, so the sample is
	// bit-identical to the two-scan formulation.
	shardW := make([]int64, workers)
	d2s := make([]int64, n)
	ats := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(n, workers, w)
			var sum int64
			for i, k := range r1[lo:hi] {
				d2, at := m2.D2At(cond, k)
				d2s[lo+i], ats[lo+i] = d2, at
				sum += d2
			}
			shardW[w] = sum
		}(w)
	}
	wg.Wait()

	offsets := make([]int64, workers+1)
	for w := 0; w < workers; w++ {
		offsets[w+1] = offsets[w] + shardW[w]
	}
	m := offsets[workers]
	out := &OutputSample{M: m}
	if m == 0 || so <= 0 {
		return out
	}

	// Step 3: sorted uniform positions in [0, m), dispatched to shards.
	positions := make([]int64, so)
	for i := range positions {
		positions[i] = rng.Int64n(m)
	}
	slices.Sort(positions)

	pairShards := make([][][2]join.Key, workers)
	rngs := make([]*stats.RNG, workers)
	for w := 0; w < workers; w++ {
		rngs[w] = rng.Split()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(n, workers, w)
			// Positions addressed to this shard.
			pLo, _ := slices.BinarySearch(positions, offsets[w])
			pHi, _ := slices.BinarySearch(positions, offsets[w+1])
			if pLo == pHi {
				return
			}
			local := positions[pLo:pHi]
			pairs := make([][2]join.Key, 0, len(local))
			cum := offsets[w]
			pi := 0
			for i, k := range r1[lo:hi] {
				d2 := d2s[lo+i]
				if d2 == 0 {
					continue
				}
				next := cum + d2
				for pi < len(local) && local[pi] < next {
					// Step 4: uniform partner from the joinable multiset.
					u := rngs[w].Int64n(d2)
					pairs = append(pairs, [2]join.Key{k, m2.SelectAt(ats[lo+i], u)})
					pi++
				}
				cum = next
				if pi == len(local) {
					break
				}
			}
			pairShards[w] = pairs
		}(w)
	}
	wg.Wait()

	for _, p := range pairShards {
		out.Pairs = append(out.Pairs, p...)
	}
	return out
}

// OutputSize computes only m = Σ d2(t1.A), the exact join output size, in
// parallel. It is what the planner uses when it needs m without a sample.
func OutputSize(r1, r2 []join.Key, cond join.Condition, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	m2 := BuildMultiset(r2)
	n := len(r1)
	if n == 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	sums := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(n, workers, w)
			var sum int64
			for _, k := range r1[lo:hi] {
				sum += m2.D2(cond, k)
			}
			sums[w] = sum
		}(w)
	}
	wg.Wait()
	var m int64
	for _, s := range sums {
		m += s
	}
	return m
}

// shardBounds splits [0, n) into `workers` near-equal contiguous shards and
// returns the w-th shard's bounds.
func shardBounds(n, workers, w int) (lo, hi int) {
	lo = n * w / workers
	hi = n * (w + 1) / workers
	return lo, hi
}

package sample

import (
	"math"
	"slices"
	"testing"

	"ewh/internal/join"
	"ewh/internal/stats"
)

func TestSummarizeCanonicalAndDeterministic(t *testing.T) {
	rng := stats.NewRNG(11)
	keys := make([]join.Key, 5000)
	for i := range keys {
		keys[i] = rng.Int64n(700)
	}
	s1 := Summarize(keys, 256, 32, stats.NewRNG(99))
	s2 := Summarize(keys, 256, 32, stats.NewRNG(99))
	if err := s1.Validate(); err != nil {
		t.Fatal(err)
	}
	if s1.Count != 5000 || s1.Cap != 256 || len(s1.Keys) != 256 {
		t.Fatalf("summary shape: count=%d cap=%d sample=%d", s1.Count, s1.Cap, len(s1.Keys))
	}
	if !slices.Equal(s1.Keys, s2.Keys) || !slices.Equal(s1.Bounds, s2.Bounds) {
		t.Fatal("summarize not deterministic for a fixed seed")
	}
	// Different seeds draw different samples but identical histograms (the
	// histogram scans the full shard, no randomness).
	s3 := Summarize(keys, 256, 32, stats.NewRNG(100))
	if slices.Equal(s1.Keys, s3.Keys) {
		t.Fatal("distinct seeds drew identical samples")
	}
	if !slices.Equal(s1.Bounds, s3.Bounds) {
		t.Fatal("histogram boundaries depend on the sampling seed")
	}
}

func TestSummarizeSmallAndEmptyShards(t *testing.T) {
	empty := Summarize(nil, 64, 8, stats.NewRNG(1))
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 || empty.Keys != nil || empty.Bounds != nil {
		t.Fatalf("empty shard summary carries data: %+v", empty)
	}
	small := Summarize([]join.Key{9, 3, 3}, 64, 8, stats.NewRNG(1))
	if small.Count != 3 || !slices.Equal(small.Keys, []join.Key{3, 3, 9}) {
		t.Fatalf("small shard not fully enumerated: %+v", small)
	}
}

func TestSummarizeTopOfKeyDomain(t *testing.T) {
	// Keys at MaxInt64 must not wrap the histogram's exclusive top boundary
	// into an invalid (non-increasing) bounds slice — the summary codec
	// validates and would otherwise fail the whole pipeline on legal keys.
	keys := make([]join.Key, 100)
	for i := range keys {
		keys[i] = math.MaxInt64
	}
	keys[99] = 5
	s := Summarize(keys, 4096, 256, stats.NewRNG(3))
	if err := s.Validate(); err != nil {
		t.Fatalf("top-of-domain summary invalid: %v", err)
	}
	all := Summarize(keys[:99], 8, 4, stats.NewRNG(4)) // every key MaxInt64
	if err := all.Validate(); err != nil {
		t.Fatalf("all-MaxInt64 summary invalid: %v", err)
	}
}

func TestSummarizeFeedsStreamSampleExactly(t *testing.T) {
	// When the cap covers the whole shard, Stream-Sample over the summary's
	// keys reproduces the exact output size m the full relation would give.
	rng := stats.NewRNG(5)
	r1 := make([]join.Key, 800)
	r2 := make([]join.Key, 600)
	for i := range r1 {
		r1[i] = rng.Int64n(300)
	}
	for i := range r2 {
		r2[i] = rng.Int64n(300)
	}
	sum := Summarize(r1, len(r1), 16, stats.NewRNG(2))
	m2 := BuildMultiset(r2)
	cond := join.NewBand(2)
	got := StreamSampleWith(sum.Keys, m2, cond, 0, 2, stats.NewRNG(3)).M
	want := OutputSize(r1, r2, cond, 2)
	if got != want {
		t.Fatalf("summary-fed m = %d, exact m = %d", got, want)
	}
}

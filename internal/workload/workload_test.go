package workload

import (
	"testing"

	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

func TestXShape(t *testing.T) {
	keys := X(600, stats.NewRNG(1))
	if len(keys) != 3000 {
		t.Fatalf("X(600) has %d keys, want 3000", len(keys))
	}
	var dense, sparse int
	for _, k := range keys {
		if k <= 100 {
			dense++
		} else if k >= 2*2400 {
			sparse++
		} else {
			t.Fatalf("key %d outside both segments", k)
		}
	}
	if dense != 600 || sparse != 2400 {
		t.Fatalf("segments %d/%d, want 600/2400", dense, sparse)
	}
}

func TestXTinyInput(t *testing.T) {
	if got := X(1, stats.NewRNG(2)); len(got) != 30 {
		t.Fatalf("X clamps x to 6, got %d keys", len(got))
	}
}

// rhoOI computes output/(total input), Table IV's ρoi.
func rhoOI(r1, r2 []join.Key, cond join.Condition) float64 {
	m := sample.OutputSize(r1, r2, cond, 4)
	return float64(m) / float64(len(r1)+len(r2))
}

func TestBCBRhoMatchesPaperShape(t *testing.T) {
	// Table IV: BCB-1 ρoi=1.81, BCB-3 ρoi=4.23, BCB-8 ρoi=10.27. The
	// generator is calibrated to ≈0.7·(2β+1); allow ±35% sampling slack.
	for _, c := range []struct {
		beta int64
		want float64
	}{{1, 1.81}, {3, 4.23}, {8, 10.27}} {
		r1, r2, cond := BCB(6000, c.beta, 3)
		got := rhoOI(r1, r2, cond)
		if got < c.want*0.65 || got > c.want*1.35 {
			t.Errorf("BCB-%d ρoi = %.2f, want ≈%.2f", c.beta, got, c.want)
		}
	}
}

func TestBICDRhoMatchesPaperShape(t *testing.T) {
	r1, r2, cond := BICD(20000, 0.25, 4)
	got := rhoOI(r1, r2, cond)
	// Table IV: ρoi = 0.62.
	if got < 0.4 || got > 0.9 {
		t.Errorf("BICD ρoi = %.2f, want ≈0.62", got)
	}
}

func TestBEOCDRhoMatchesPaperShape(t *testing.T) {
	r1, r2, cond, err := BEOCD(BEOCDConfig{N: 20000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := rhoOI(r1, r2, cond)
	// Table IV: ρoi = 54.35; Zipf skew concentrates custkeys, raising m.
	if got < 25 || got > 120 {
		t.Errorf("BEOCD ρoi = %.2f, want tens", got)
	}
}

func TestBEOCDSemantics(t *testing.T) {
	// The composite-encoded band must equal the explicit
	// equality+priority-band predicate.
	spec := join.CompositeSpec{SecondaryMax: PrioMax - 1, Beta: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	r1, r2, cond, err := BEOCD(BEOCDConfig{N: 400}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var direct int64
	for _, a := range r1 {
		c1, p1 := spec.Decode(a)
		for _, b := range r2 {
			c2, p2 := spec.Decode(b)
			d := p1 - p2
			if d < 0 {
				d = -d
			}
			if c1 == c2 && d <= 2 {
				direct++
			}
		}
	}
	if got := localjoin.NestedLoopCount(r1, r2, cond); got != direct {
		t.Fatalf("encoded join %d, direct predicate %d", got, direct)
	}
}

func TestBEOCDErrors(t *testing.T) {
	if _, _, _, err := BEOCD(BEOCDConfig{N: 0}, 1); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestGenOrdersSkew(t *testing.T) {
	o := GenOrders(50000, 1.0, stats.NewRNG(7))
	counts := map[join.Key]int{}
	for _, c := range o.CustKey {
		counts[c]++
	}
	if counts[0] <= counts[100]*2 {
		t.Errorf("custkey 0 count %d not skewed vs key 100 count %d", counts[0], counts[100])
	}
	for _, p := range o.Priority {
		if p < 0 || p >= PrioMax {
			t.Fatalf("priority %d out of range", p)
		}
	}
	for _, k := range o.OrderKey {
		if k < 0 || k >= 4*50000 {
			t.Fatalf("orderkey %d out of range", k)
		}
	}
}

func TestUniformAndZipfian(t *testing.T) {
	u := Uniform(1000, 100, 8)
	if len(u) != 1000 {
		t.Fatal("wrong size")
	}
	for _, k := range u {
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of domain", k)
		}
	}
	z := Zipfian(1000, 100, 0.5, 9)
	if len(z) != 1000 {
		t.Fatal("wrong size")
	}
	// Deterministic for equal seeds.
	z2 := Zipfian(1000, 100, 0.5, 9)
	for i := range z {
		if z[i] != z2[i] {
			t.Fatal("Zipfian not deterministic")
		}
	}
}

// Package workload generates the paper's evaluation datasets (§VI-A) at a
// configurable scale: the synthetic X dataset behind the BCB band-join
// family and a TPC-H-like ORDERS analogue with Zipf(z) skew behind BICD and
// BEOCD. The generators are calibrated so the output/input ratios ρoi match
// Table IV's values at any scale (see DESIGN.md, substitutions).
package workload

import (
	"fmt"

	"ewh/internal/join"
	"ewh/internal/stats"
	"ewh/internal/table"
)

// X generates one relation of the X dataset: two independently generated
// segments in proportion 20/80. The first segment has x tuples with keys
// uniform in [0, x/6] — a dense stripe producing almost all the output; the
// second has y = 4x tuples with keys uniform in [2y, 6y] — a sparse bulk.
// Joining two X relations with a band condition yields
// m ≈ 7x·(2β+1) output tuples, so ρoi = m/(2·5x) ≈ 0.7·(2β+1), matching
// Table IV's BCB-β row shapes (e.g. β=1 → ρoi ≈ 1.8).
func X(x int, rng *stats.RNG) []join.Key {
	if x < 6 {
		x = 6
	}
	y := 4 * x
	keys := make([]join.Key, 0, 5*x)
	for i := 0; i < x; i++ {
		keys = append(keys, rng.Int64n(int64(x/6)+1))
	}
	for i := 0; i < y; i++ {
		keys = append(keys, 2*int64(y)+rng.Int64n(4*int64(y)))
	}
	return keys
}

// XPair generates both X relations independently (the paper: "the segments
// from different relations are independently generated").
func XPair(x int, seed uint64) (r1, r2 []join.Key) {
	rng := stats.NewRNG(seed)
	return X(x, rng.Split()), X(x, rng.Split())
}

// Orders is a scaled TPC-H ORDERS analogue. Orderkey is uniform over a
// domain 4× the row count (TPC-H orderkeys are sparse); custkey is
// Zipf(z)-distributed over a domain of rows/10 — z=0.25 reproduces the
// paper's moderate redistribution skew. Priority is uniform in [0, PrioMax).
type Orders struct {
	OrderKey []join.Key
	CustKey  []join.Key
	Priority []int64
}

// PrioMax is the number of distinct ship priorities.
const PrioMax = 8

// GenOrders generates n rows with skew parameter z.
func GenOrders(n int, z float64, rng *stats.RNG) *Orders {
	custDomain := int64(n/10) + 1
	zipf := stats.NewZipf(custDomain, z)
	o := &Orders{
		OrderKey: make([]join.Key, n),
		CustKey:  make([]join.Key, n),
		Priority: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		o.OrderKey[i] = rng.Int64n(4 * int64(n))
		o.CustKey[i] = zipf.Draw(rng)
		o.Priority[i] = rng.Int64n(PrioMax)
	}
	return o
}

// BICD builds the Table IV input for the band-join
// ABS(O1.orderkey - 10*O2.custkey) <= 2: R1 carries orderkeys and R2 carries
// custkeys pre-scaled by 10 (the Shifted transform applied at load time).
// With orderkey density 1/4 each R2 tuple matches ≈ 5/4 keys, giving
// ρoi ≈ 0.62 as in the paper.
func BICD(n int, z float64, seed uint64) (r1, r2 []join.Key, cond join.Condition) {
	rng := stats.NewRNG(seed)
	o1 := GenOrders(n, z, rng.Split())
	o2 := GenOrders(n, z, rng.Split())
	r2 = make([]join.Key, n)
	for i, c := range o2.CustKey {
		r2[i] = 10 * c
	}
	return o1.OrderKey, r2, join.NewBand(2)
}

// BCB builds the Table IV input for the X-dataset band-join of width beta.
// x is the dense-segment size; each relation has 5x tuples.
func BCB(x int, beta int64, seed uint64) (r1, r2 []join.Key, cond join.Condition) {
	r1, r2 = XPair(x, seed)
	return r1, r2, join.NewBand(beta)
}

// BEOCDConfig scales the output-cost-dominated equi+band join. The paper's
// run has ρoi ≈ 54: with custkey domain n/CustDivisor and priorities banded
// by ±2 (≈53% of priority pairs match), each surviving tuple finds
// ≈ 0.53·n/(n/CustDivisor) ≈ 0.53·CustDivisor partners.
type BEOCDConfig struct {
	// N is the target per-relation row count *after* the selection
	// predicates; the generator sizes the base ORDERS tables so the filters
	// keep approximately N rows.
	N int
	// CustDivisor sets the custkey domain to N/CustDivisor (default 200,
	// calibrated to ρoi ≈ 54 as in Table IV).
	CustDivisor int
	// Z is the custkey Zipf skew (default 0.25).
	Z float64
	// Gamma is the totalprice lower bound of Appendix B's BETWEEN predicate
	// (default 120000; the paper raises γ with the scale factor to keep ρoi
	// stable).
	Gamma int64
}

func (c *BEOCDConfig) defaults() {
	if c.CustDivisor <= 0 {
		c.CustDivisor = 200
	}
	if c.Z == 0 {
		c.Z = 0.25
	}
	if c.Gamma == 0 {
		c.Gamma = 120000
	}
}

// Appendix-B literals for the ORDERS analogue.
const (
	prioNotSpecified = 4 // "4-NOT SPECIFIED"
	prioUrgent       = 1 // "1-URGENT"
	orderPrioCount   = 5
	totalPriceMax    = 400000
	totalPriceCap    = 360000 // the BETWEEN upper bound
)

// GenOrdersTable generates a full ORDERS analogue with the columns BEOCD
// filters and joins on: custkey (Zipf z over custDomain), shippriority
// (uniform [0, PrioMax)), orderpriority (uniform 1..5) and totalprice
// (uniform [0, 400000)).
func GenOrdersTable(n int, z float64, custDomain int64, rng *stats.RNG) *table.Table {
	zipf := stats.NewZipf(custDomain, z)
	cust := make([]int64, n)
	ship := make([]int64, n)
	oprio := make([]int64, n)
	price := make([]int64, n)
	for i := 0; i < n; i++ {
		cust[i] = zipf.Draw(rng)
		ship[i] = rng.Int64n(PrioMax)
		oprio[i] = 1 + rng.Int64n(orderPrioCount)
		price[i] = rng.Int64n(totalPriceMax)
	}
	t := table.New("orders")
	for _, c := range []struct {
		name string
		vals []int64
	}{
		{"custkey", cust}, {"shippriority", ship},
		{"orderpriority", oprio}, {"totalprice", price},
	} {
		if err := t.AddColumn(c.name, c.vals); err != nil {
			panic(err) // fresh table, equal lengths: cannot happen
		}
	}
	return t
}

// BEOCD builds Appendix B's output-cost-dominated query:
//
//	SELECT * FROM ORDERS O1, ORDERS O2
//	WHERE O1.custkey = O2.custkey
//	  AND ABS(O1.shippriority - O2.shippriority) <= 2
//	  AND O1.orderpriority = '4-NOT SPECIFIED'
//	  AND O2.orderpriority = '1-URGENT'
//	  AND O1.totalprice BETWEEN γ AND 360000
//	  AND O2.totalprice BETWEEN γ AND 360000
//
// The selection predicates run first and the surviving relations are
// materialized (§IV-A "Synergy"); the equality+band join predicate is
// encoded onto one monotonic key (join.CompositeSpec; see DESIGN.md for why
// the encoding is exact). It returns the encoded filtered relations and the
// equivalent band condition.
func BEOCD(cfg BEOCDConfig, seed uint64) (r1, r2 []join.Key, cond join.Condition, err error) {
	cfg.defaults()
	if cfg.N < 1 {
		return nil, nil, nil, fmt.Errorf("workload: BEOCD N = %d < 1", cfg.N)
	}
	spec := join.CompositeSpec{SecondaryMax: PrioMax - 1, Beta: 2}
	if err := spec.Validate(); err != nil {
		return nil, nil, nil, err
	}
	// Size the base tables so the filters keep ≈ N rows: the orderpriority
	// equality keeps 1/5, the price BETWEEN keeps (cap-γ)/max.
	keep := (1.0 / orderPrioCount) * float64(totalPriceCap-cfg.Gamma) / totalPriceMax
	if keep <= 0 {
		return nil, nil, nil, fmt.Errorf("workload: gamma %d leaves an empty BETWEEN range", cfg.Gamma)
	}
	base := int(float64(cfg.N)/keep) + 1
	custDomain := int64(cfg.N/cfg.CustDivisor) + 1

	rng := stats.NewRNG(seed)
	gen := func(r *stats.RNG, wantPrio int64) ([]join.Key, error) {
		t := GenOrdersTable(base, cfg.Z, custDomain, r)
		f := t.Filter(table.And(
			table.Eq("orderpriority", wantPrio),
			table.Between("totalprice", cfg.Gamma, totalPriceCap),
		))
		return f.EncodeKeys(spec, "custkey", "shippriority")
	}
	if r1, err = gen(rng.Split(), prioNotSpecified); err != nil {
		return nil, nil, nil, err
	}
	if r2, err = gen(rng.Split(), prioUrgent); err != nil {
		return nil, nil, nil, err
	}
	return r1, r2, spec.Condition(), nil
}

// Uniform generates n keys uniform over [0, domain) — the plain workload for
// tests and the quickstart example.
func Uniform(n int, domain int64, seed uint64) []join.Key {
	rng := stats.NewRNG(seed)
	keys := make([]join.Key, n)
	for i := range keys {
		keys[i] = rng.Int64n(domain)
	}
	return keys
}

// Zipfian generates n keys with Zipf(z) skew over [0, domain).
func Zipfian(n int, domain int64, z float64, seed uint64) []join.Key {
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(domain, z)
	keys := make([]join.Key, n)
	for i := range keys {
		keys[i] = zipf.Draw(rng)
	}
	return keys
}

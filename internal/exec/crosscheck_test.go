package exec

import (
	"fmt"
	"runtime"
	"testing"

	"ewh/internal/core"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// TestCrossCheckRunAgainstNestedLoop is the randomized harness for the
// batch-routed engine: across every condition type (Equi, Band, Inequality,
// Composite), every applicable scheme, and Mappers ∈ {1, 4, GOMAXPROCS}, the
// engine's Output must equal the nested-loop ground truth exactly, and a
// scheme's NetworkTuples must not depend on the mapper count (routing
// decisions are per tuple, so shard boundaries must be invisible).
func TestCrossCheckRunAgainstNestedLoop(t *testing.T) {
	mapperCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for seed := uint64(200); seed < 206; seed++ {
		rng := stats.NewRNG(seed)
		n1 := 300 + int(rng.Int64n(1200))
		n2 := 300 + int(rng.Int64n(1200))
		domain := 100 + rng.Int64n(900)

		r1 := randKeys(n1, domain, seed+1)
		r2 := randKeys(n2, domain, seed+2)

		comp := join.CompositeSpec{SecondaryMax: 20, Beta: 2}
		if err := comp.Validate(); err != nil {
			t.Fatal(err)
		}
		c1 := make([]join.Key, n1)
		c2 := make([]join.Key, n2)
		for i := range c1 {
			c1[i] = comp.Encode(rng.Int64n(50), rng.Int64n(21))
		}
		for i := range c2 {
			c2[i] = comp.Encode(rng.Int64n(50), rng.Int64n(21))
		}

		cases := []struct {
			name     string
			cond     join.Condition
			s1, s2   []join.Key
			regioned bool // CSIO/CSI apply (not the inequality join)
		}{
			{"equi", join.Equi{}, r1, r2, true},
			{"band", join.NewBand(3), r1, r2, true},
			{"inequality", join.Inequality{Op: join.LessEq}, r1, r2, false},
			{"composite", comp.Condition(), c1, c2, true},
		}

		for _, tc := range cases {
			want := localjoin.NestedLoopCount(tc.s1, tc.s2, tc.cond)
			if got := localjoin.Count(tc.s1, tc.s2, tc.cond); got != want {
				t.Errorf("seed %d %s: merge-sweep Count = %d, nested loop = %d",
					seed, tc.name, got, want)
			}

			opts := core.Options{J: 6, Model: model, Seed: seed + 3}
			schemes := []partition.Scheme{}
			if ci, err := core.PlanCI(opts); err == nil {
				schemes = append(schemes, ci.Scheme)
			} else {
				t.Fatal(err)
			}
			if bcast, err := partition.NewBroadcast(5); err == nil {
				schemes = append(schemes, bcast)
			}
			if _, isEqui := tc.cond.(join.Equi); isEqui {
				if h, err := partition.NewHash(7, nil); err == nil {
					schemes = append(schemes, h)
				}
			}
			if tc.regioned {
				csio, err := core.PlanCSIO(tc.s1, tc.s2, tc.cond, opts)
				if err != nil {
					t.Fatalf("seed %d %s: PlanCSIO: %v", seed, tc.name, err)
				}
				csi, err := core.PlanCSI(tc.s1, tc.s2, tc.cond, 64, opts)
				if err != nil {
					t.Fatalf("seed %d %s: PlanCSI: %v", seed, tc.name, err)
				}
				schemes = append(schemes, csio.Scheme, csi.Scheme)
			}

			for _, s := range schemes {
				var firstNet int64 = -1
				for _, mappers := range mapperCounts {
					res := Run(tc.s1, tc.s2, tc.cond, s, model,
						Config{Seed: seed + 4, Mappers: mappers})
					id := fmt.Sprintf("seed %d %s/%s mappers=%d", seed, tc.name, s.Name(), mappers)
					if res.Output != want {
						t.Errorf("%s: output %d, want %d", id, res.Output, want)
					}
					if firstNet < 0 {
						firstNet = res.NetworkTuples
					} else if res.NetworkTuples != firstNet {
						t.Errorf("%s: network tuples %d differ from mappers=%d run's %d",
							id, res.NetworkTuples, mapperCounts[0], firstNet)
					}
				}
			}
		}
	}
}

// TestCrossCheckRunTuples drives the payload-carrying path the same way: the
// emitted pair multiset must match the nested-loop ground truth for every
// mapper count.
func TestCrossCheckRunTuples(t *testing.T) {
	r1 := randKeys(600, 300, 90)
	r2 := randKeys(500, 300, 91)
	cond := join.NewBand(2)
	want := localjoin.NestedLoopCount(r1, r2, cond)
	ci, err := core.PlanCI(core.Options{J: 6, Model: model, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	for _, mappers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		// emit runs concurrently across workers but never concurrently for
		// the same workerID, so accumulation must be per worker.
		perWorker := make([]map[[2]join.Key]int64, ci.Scheme.Workers())
		for w := range perWorker {
			perWorker[w] = map[[2]join.Key]int64{}
		}
		res := RunTuples(WrapKeys(r1), WrapKeys(r2), cond, ci.Scheme, model,
			Config{Seed: 93, Mappers: mappers},
			func(w int, a Tuple[struct{}], b Tuple[struct{}]) {
				perWorker[w][[2]join.Key{a.Key, b.Key}]++
			})
		pairs := map[[2]join.Key]int64{}
		for _, m := range perWorker {
			for p, n := range m {
				pairs[p] += n
			}
		}
		if res.Output != want {
			t.Errorf("mappers=%d: output %d, want %d", mappers, res.Output, want)
		}
		var emitted int64
		for p, n := range pairs {
			if !cond.Matches(p[0], p[1]) {
				t.Errorf("mappers=%d: emitted non-matching pair %v", mappers, p)
			}
			emitted += n
		}
		if emitted != want {
			t.Errorf("mappers=%d: emitted %d pairs, want %d", mappers, emitted, want)
		}
	}
}

// Package exec is the in-memory shared-nothing execution substrate standing
// in for the paper's Squall-on-Storm cluster (see DESIGN.md, substitutions).
// Mappers shuffle the input relations to J reducer workers according to a
// partitioning scheme; each worker joins the tuples it received with a local
// join algorithm. The engine records exactly the quantities the paper's
// evaluation is about: per-worker input received and output produced, the
// modeled makespan max_r w(r), cluster memory and network consumption, and
// the wall-clock execution time.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
)

// Config tunes an engine run.
type Config struct {
	// Mappers is the shuffle parallelism; 0 means GOMAXPROCS.
	Mappers int
	// Seed drives the randomized schemes' routing.
	Seed uint64
	// BytesPerTuple models tuple width for the memory metric (default 16:
	// an 8-byte key plus minimal payload/bookkeeping, as the statistics
	// tuples in the paper carry only join keys).
	BytesPerTuple int
}

// DefaultBytesPerTuple is the modeled tuple width when Config leaves
// BytesPerTuple zero — shared with netexec so both engines report the same
// memory metric for the same configuration.
const DefaultBytesPerTuple = 16

func (c *Config) defaults() {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.BytesPerTuple <= 0 {
		c.BytesPerTuple = DefaultBytesPerTuple
	}
}

// WorkerMetrics records one reducer's work.
type WorkerMetrics struct {
	InputR1, InputR2 int64 // tuples received from each relation
	Output           int64 // output tuples produced
	Work             float64
}

// Input returns the worker's total received tuples.
func (w WorkerMetrics) Input() int64 { return w.InputR1 + w.InputR2 }

// Result summarizes a join execution.
type Result struct {
	Scheme  string
	Workers []WorkerMetrics

	// Output is the total number of output tuples (exactly once per match).
	Output int64
	// NetworkTuples is the total tuples shuffled mapper→reducer; replication
	// makes this exceed the input size for CI.
	NetworkTuples int64
	// MemoryBytes is the cluster-wide reducer-side memory: every received
	// tuple is materialized for the local join.
	MemoryBytes int64
	// MaxWork and TotalWork are the modeled per-worker weights
	// w = wi·input + wo·output; MaxWork is the makespan the paper's load
	// balancing minimizes.
	MaxWork, TotalWork float64
	// WallTime is the measured end-to-end shuffle+join duration.
	WallTime time.Duration
}

// MaxInput returns the largest per-worker input, the RS metric.
func (r *Result) MaxInput() int64 {
	var m int64
	for _, w := range r.Workers {
		if w.Input() > m {
			m = w.Input()
		}
	}
	return m
}

// MaxOutput returns the largest per-worker output, the JPS metric.
func (r *Result) MaxOutput() int64 {
	var m int64
	for _, w := range r.Workers {
		if w.Output > m {
			m = w.Output
		}
	}
	return m
}

// String implements fmt.Stringer with a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: J=%d out=%d net=%d mem=%dMB maxWork=%.0f wall=%v",
		r.Scheme, len(r.Workers), r.Output, r.NetworkTuples,
		r.MemoryBytes>>20, r.MaxWork, r.WallTime.Round(time.Millisecond))
}

// Run shuffles r1 and r2 to the scheme's workers and executes the join.
//
// The shuffle is two-pass: each mapper batch-routes its shard once, recording
// receiver lists and per-worker counts, then scatters tuples into one
// exactly-sized flat buffer per relation (see shuffleRelation). The reduce
// phase therefore receives contiguous per-worker slices it owns outright —
// no concatenation copies — and sorts them in place (in parallel, one worker
// per goroutine) for the merge-sweep local join.
func Run(r1, r2 []join.Key, cond join.Condition, scheme partition.Scheme,
	model cost.Model, cfg Config) *Result {

	cfg.defaults()
	start := time.Now()
	j := scheme.Workers()
	s1, s2 := shufflePair(r1, r1, r2, r2, scheme, cfg, GetKeyBuffer, GetKeyBuffer)

	// Reduce phase: each worker joins its contiguous slices locally.
	res := &Result{Scheme: scheme.Name(), Workers: make([]WorkerMetrics, j)}
	var rwg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < j; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			in1, in2 := s1.worker(w), s2.worker(w)
			out := localjoin.AutoCountOwned(in1, in2, cond)
			m := &res.Workers[w]
			m.InputR1 = int64(len(in1))
			m.InputR2 = int64(len(in2))
			m.Output = out
			m.Work = model.Weight(float64(m.Input()), float64(out))
		}(w)
	}
	rwg.Wait()
	PutKeyBuffer(s1.flat)
	PutKeyBuffer(s2.flat)

	for _, m := range res.Workers {
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * int64(cfg.BytesPerTuple)
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
	return res
}

func shard(n, parts, i int) (lo, hi int) {
	return n * i / parts, n * (i + 1) / parts
}

// Package exec is the in-memory shared-nothing execution substrate standing
// in for the paper's Squall-on-Storm cluster (see DESIGN.md, substitutions).
// Mappers shuffle the input relations to J reducer workers according to a
// partitioning scheme; each worker joins the tuples it received with a local
// join algorithm. The engine records exactly the quantities the paper's
// evaluation is about: per-worker input received and output produced, the
// modeled makespan max_r w(r), cluster memory and network consumption, and
// the wall-clock execution time.
package exec

import (
	"fmt"
	"runtime"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// Config tunes an engine run.
type Config struct {
	// Mappers is the shuffle parallelism; 0 means GOMAXPROCS.
	Mappers int
	// Seed drives the randomized schemes' routing.
	Seed uint64
	// BytesPerTuple models tuple width for the memory metric (default 16:
	// an 8-byte key plus minimal payload/bookkeeping, as the statistics
	// tuples in the paper carry only join keys).
	BytesPerTuple int
	// Retry bounds fault recovery on fault-tolerant runtimes (see RunRetry);
	// the zero value disables retries entirely.
	Retry RetryPolicy
	// Engine selects the local-join engine (EngineAuto picks per condition).
	// Counts and pair streams are identical across engines; the session
	// transport forwards the selection to its workers on the wire.
	Engine JoinEngine
}

// DefaultBytesPerTuple is the modeled tuple width when Config leaves
// BytesPerTuple zero — shared with netexec so both engines report the same
// memory metric for the same configuration.
const DefaultBytesPerTuple = 16

func (c *Config) defaults() {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.BytesPerTuple <= 0 {
		c.BytesPerTuple = DefaultBytesPerTuple
	}
}

// WorkerMetrics records one reducer's work.
type WorkerMetrics struct {
	InputR1, InputR2 int64 // tuples received from each relation
	Output           int64 // output tuples produced
	Work             float64
}

// Input returns the worker's total received tuples.
func (w WorkerMetrics) Input() int64 { return w.InputR1 + w.InputR2 }

// Result summarizes a join execution.
type Result struct {
	Scheme  string
	Workers []WorkerMetrics

	// Output is the total number of output tuples (exactly once per match).
	Output int64
	// NetworkTuples is the total tuples shuffled mapper→reducer; replication
	// makes this exceed the input size for CI.
	NetworkTuples int64
	// MemoryBytes is the cluster-wide reducer-side memory: every received
	// tuple is materialized for the local join.
	MemoryBytes int64
	// MaxWork and TotalWork are the modeled per-worker weights
	// w = wi·input + wo·output; MaxWork is the makespan the paper's load
	// balancing minimizes.
	MaxWork, TotalWork float64
	// WallTime is the measured end-to-end shuffle+join duration.
	WallTime time.Duration
}

// MaxInput returns the largest per-worker input, the RS metric.
func (r *Result) MaxInput() int64 {
	var m int64
	for _, w := range r.Workers {
		if w.Input() > m {
			m = w.Input()
		}
	}
	return m
}

// MaxOutput returns the largest per-worker output, the JPS metric.
func (r *Result) MaxOutput() int64 {
	var m int64
	for _, w := range r.Workers {
		if w.Output > m {
			m = w.Output
		}
	}
	return m
}

// String implements fmt.Stringer with a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: J=%d out=%d net=%d mem=%dMB maxWork=%.0f wall=%v",
		r.Scheme, len(r.Workers), r.Output, r.NetworkTuples,
		r.MemoryBytes>>20, r.MaxWork, r.WallTime.Round(time.Millisecond))
}

// Run shuffles r1 and r2 to the scheme's workers and executes the join
// in-process. It is RunOver with the Local runtime: the shuffle is the
// two-pass batch-routed scatter into exactly-sized flat buffers (see
// shuffleRelation) and each worker is a goroutine sorting its contiguous
// slices in place for the merge-sweep local join.
func Run(r1, r2 []join.Key, cond join.Condition, scheme partition.Scheme,
	model cost.Model, cfg Config) *Result {

	res, _ := RunOver(Local{}, r1, r2, cond, scheme, model, cfg) // Local never errors
	return res
}

// RunOver shuffles r1 and r2 once and executes the join through rt — the
// transport-agnostic entry point behind Run (rt = Local) and the
// distributed engines (rt = netexec.Session). Each relation is handed to
// the runtime the moment its scatter completes, so a wire transport
// overlaps its socket writes with the other relation's still-running
// shuffle. With the same cfg the per-worker blocks, and therefore every
// per-worker metric, are identical across transports.
func RunOver(rt Runtime, r1, r2 []join.Key, cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg Config) (*Result, error) {

	cfg.defaults()
	start := time.Now()
	j := scheme.Workers()
	f1, f2 := newRelFuture(), newRelFuture()
	job := &Job{Cond: cond, Workers: j, R1: f1, R2: f2, Engine: cfg.Engine}
	if streamsChunksFor(rt, job) {
		// Chunk-consuming transports skip the flat scatter entirely: both
		// relations resolve immediately as chunk streams and the transport
		// frames sub-blocks onto sockets (or, for Local's hash engine, into
		// the incremental build) as the mappers emit them.
		cs1, cs2 := ShufflePairChunked(r1, r2, scheme, cfg)
		f1.resolve(RelData{Chunks: cs1})
		f2.resolve(RelData{Chunks: cs2})
	} else {
		shufflePairAsync(r1, r1, r2, r2, scheme, cfg, GetKeyBuffer, GetKeyBuffer,
			func(s shuffled[join.Key]) { f1.resolve(RelData{Keys: &KeyShuffle{s}}) },
			func(s shuffled[join.Key]) { f2.resolve(RelData{Keys: &KeyShuffle{s}}) })
	}

	res := &Result{Scheme: scheme.Name() + rt.Label(), Workers: make([]WorkerMetrics, j)}
	err := rt.RunJob(job, res.Workers)
	releaseRelData(f1.Wait())
	releaseRelData(f2.Wait())
	if err != nil {
		return nil, err
	}
	finishResult(res, model, start, cfg.BytesPerTuple)
	return res, nil
}

// releaseRelData recycles whichever representation the relation resolved to.
// For chunk streams this drains whatever the transport left unconsumed — a
// no-op after clean runs, the leak stopper after failed ones (the producer
// never blocks, so the drain always terminates).
func releaseRelData(d RelData) {
	if d.Keys != nil {
		d.Keys.Release()
	}
	if d.Chunks != nil {
		d.Chunks.Drain()
	}
}

// finishResult derives the modeled per-worker Work and the run-level
// aggregates from the filled input/output counts — shared by every driver
// so all transports report identical metrics for identical blocks.
func finishResult(res *Result, model cost.Model, start time.Time, bytesPerTuple int) {
	for i := range res.Workers {
		m := &res.Workers[i]
		m.Work = model.Weight(float64(m.Input()), float64(m.Output))
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * int64(bytesPerTuple)
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
}

func shard(n, parts, i int) (lo, hi int) {
	return n * i / parts, n * (i + 1) / parts
}

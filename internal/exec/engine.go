package exec

import (
	"fmt"

	"ewh/internal/join"
	"ewh/internal/localjoin"
)

// JoinEngine selects the local-join engine workers run over their shuffled
// blocks. The engines are count- and pair-identical by construction (the
// crosscheck suites pin it), so the choice is purely a performance knob —
// and EngineAuto picks per condition: the partitioned hash engine for
// pure-equality predicates, the merge sweep for everything with a joinable
// window.
type JoinEngine int

const (
	// EngineAuto picks per condition: hash for EquiLike, merge otherwise.
	EngineAuto JoinEngine = iota
	// EngineMerge forces the sort + merge-sweep engine for every condition.
	EngineMerge
	// EngineHash requests the partitioned radix-hash engine; conditions it
	// cannot serve (band/inequality windows span hash partitions) fall back
	// to merge rather than failing — the selection is a hint, not a schema.
	EngineHash
)

// String implements fmt.Stringer with the -join-engine flag vocabulary.
func (e JoinEngine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineMerge:
		return "merge"
	case EngineHash:
		return "hash"
	}
	return fmt.Sprintf("JoinEngine(%d)", int(e))
}

// ParseJoinEngine parses the -join-engine flag vocabulary (auto|merge|hash).
func ParseJoinEngine(s string) (JoinEngine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "merge":
		return EngineMerge, nil
	case "hash":
		return EngineHash, nil
	}
	return EngineAuto, fmt.Errorf("exec: unknown join engine %q (auto|merge|hash)", s)
}

// ForCond resolves the engine that actually runs for cond: EngineHash or
// EngineMerge, never EngineAuto. The hash engine serves only pure-equality
// conditions; every other request resolves to merge.
func (e JoinEngine) ForCond(cond join.Condition) JoinEngine {
	if e != EngineMerge && localjoin.EquiLike(cond) {
		return EngineHash
	}
	return EngineMerge
}

// CountOwned runs a count-only join under the selected engine over blocks
// the caller owns outright: the merge engine sorts both IN PLACE, the hash
// engine builds over r1 and probes r2 without mutating either. Shared by
// the in-process workers, the session workers' flat path and the peer-fed
// stage-2 path, so every transport counts through identical code.
func CountOwned(e JoinEngine, r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	if e.ForCond(cond) == EngineHash {
		return localjoin.EngineCount(r1, r2)
	}
	return localjoin.MergeCountOwned(r1, r2, cond)
}

// JoinPairsEngine is JoinPairs under an engine selection: identical pair
// stream (R1 arrival order, partners ascending by key then arrival index),
// identical return count, different index structure. The hash path serves
// resolved-hash jobs via the deterministic PairTable ordering layer; all
// other selections run the merge argsort path.
func JoinPairsEngine(e JoinEngine, r1, r2 []join.Key, cond join.Condition,
	flush func([]PairIdx)) int64 {

	if e.ForCond(cond) == EngineHash {
		return hashJoinPairs(r1, r2, flush)
	}
	return JoinPairs(r1, r2, cond, flush)
}

// hashJoinPairs emits the equi-join pair stream through a PairTable over
// R2. For a pure-equality condition every partner of an R1 tuple shares its
// key, so JoinPairs' "(key, arrival index) ascending" partner order is the
// table group's arrival-ascending index list — bit-identical streams, no
// sort. Flush chunking matches JoinPairs (pairChunk cap, pooled buffer).
func hashJoinPairs(r1, r2 []join.Key, flush func([]PairIdx)) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	s := NewPairStreamer(localjoin.NewPairTable(r2), flush)
	s.Probe(r1)
	return s.Finish()
}

// PairStreamer is the hash engine's pair emission decomposed for streaming
// transports: relation 1 arrives as successive arrival-ordered slices
// (Probe), probed against a PairTable built over the complete relation 2.
// Because hashJoinPairs itself runs on a PairStreamer with a single Probe
// call, a chunked relation 1 produces the bit-identical pair stream —
// including the pairChunk flush boundaries, which the one pooled buffer
// carries across Probe calls — by construction, not by parallel maintenance.
type PairStreamer struct {
	t     *localjoin.PairTable
	flush func([]PairIdx)
	buf   []PairIdx
	base  uint32 // relation-1 tuples consumed by earlier Probe calls
	out   int64
}

// NewPairStreamer wraps a sealed PairTable over relation 2 and the flush
// sink the pair chunks stream to.
func NewPairStreamer(t *localjoin.PairTable, flush func([]PairIdx)) *PairStreamer {
	return &PairStreamer{t: t, flush: flush, buf: getPairBuf()}
}

// Probe emits the partners of the next relation-1 slice, continuing the
// global arrival-order indexing from the previous call.
func (s *PairStreamer) Probe(r1 []join.Key) {
	for i1, k := range r1 {
		for _, i2 := range s.t.Partners(k) {
			s.buf = append(s.buf, PairIdx{I1: s.base + uint32(i1), I2: i2})
			s.out++
			if len(s.buf) == pairChunk {
				s.flush(s.buf)
				s.buf = s.buf[:0]
			}
		}
	}
	s.base += uint32(len(r1))
}

// Finish flushes the final partial chunk, recycles the buffer and returns
// the total pair count. The streamer is dead afterwards.
func (s *PairStreamer) Finish() int64 {
	if len(s.buf) > 0 {
		s.flush(s.buf)
	}
	putPairBuf(s.buf)
	s.buf = nil
	return s.out
}

package exec

import (
	"fmt"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// This file is the driver half of fault-tolerant execution. The transport
// (netexec) classifies per-worker failures into typed faults and can derive
// a runtime over its surviving workers; this layer decides WHEN to retry —
// only on faults the transport marked retryable, only within the configured
// attempt budget, with bounded exponential backoff — and hands each attempt
// a freshly built plan sized to the shrunken fleet. The driver never learns
// transport specifics: retryability travels through a tiny interface probe
// and survivor derivation through FaultTolerantRuntime, so exec keeps zero
// dependency on netexec.

// RetryPolicy bounds fault recovery: at most MaxAttempts total attempts
// (the first run included), sleeping BaseDelay·2^n capped at MaxDelay
// between them. The zero value disables retries (a single attempt).
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// Enabled reports whether the policy allows any retry at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Delay returns the backoff before attempt n+2 (n counts completed failed
// attempts, from 0). Defaults: 50ms base doubling up to 2s.
func (p RetryPolicy) Delay(n int) time.Duration {
	base, max := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// FaultTolerantRuntime is a Runtime that can report which of its workers
// survive the faults observed so far and serve further jobs over just those.
// netexec.Session implements it; Local trivially does not (in-process
// workers don't fail independently).
type FaultTolerantRuntime interface {
	Runtime
	// Survivors returns a runtime view over the still-usable workers and
	// their count. With no faults observed it returns the receiver itself;
	// it errors when no worker survives.
	Survivors() (Runtime, int, error)
}

// RetryableFault reports whether err contains at least one fault the
// transport marked retryable (a dead or excluded worker) and none it marked
// fatal-deterministic is the sole cause. The probe is structural — any error
// in the tree exposing RetryableFault() bool participates — so exec needs no
// knowledge of the transport's fault taxonomy. An error with no classified
// fault at all is not retryable: it is a driver or validation failure that
// would recur identically.
func RetryableFault(err error) bool {
	some := false
	var walk func(error) bool // reports whether the subtree is all-retryable
	walk = func(e error) bool {
		if e == nil {
			return true
		}
		if f, ok := e.(interface{ RetryableFault() bool }); ok {
			if !f.RetryableFault() {
				return false
			}
			some = true
			return true
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				if !walk(c) {
					return false
				}
			}
			return true
		case interface{ Unwrap() error }:
			return walk(u.Unwrap())
		}
		// A leaf with no classification: not a worker fault. Retrying can
		// still help iff some sibling IS a retryable fault — but a plain
		// driver error must not be masked, so treat unclassified leaves as
		// neutral only when they are wrapper-less aggregation artifacts.
		return false
	}
	ok := walk(err)
	return ok && some
}

// RunRetry drives attempt to success under the policy: each call receives
// the runtime to use and the worker count it may plan for. On a retryable
// fault it derives the survivor runtime, shrinks the worker budget to the
// survivors, backs off and re-attempts; anything else (success, a
// deterministic failure, attempts exhausted, no survivors) returns
// immediately. The attempt callback owns replanning and re-shuffling for
// its fleet size — RunRetry only sequences the loop.
func RunRetry(rt Runtime, workers int, p RetryPolicy,
	attempt func(rt Runtime, workers int) error) error {

	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	var err error
	for n := 0; n < max; n++ {
		if err = attempt(rt, workers); err == nil {
			return nil
		}
		if n == max-1 || !RetryableFault(err) {
			return err
		}
		ft, ok := rt.(FaultTolerantRuntime)
		if !ok {
			return err
		}
		srt, n2, serr := ft.Survivors()
		if serr != nil {
			return fmt.Errorf("%w (recovery impossible: %v)", err, serr)
		}
		rt = srt
		if n2 < workers {
			workers = n2
		}
		time.Sleep(p.Delay(n))
	}
	return err
}

// RunOverReplan is RunOver with recovery: on a retryable worker fault it
// rebuilds the scheme for the surviving fleet via plan, re-shuffles both
// relations from the caller's (driver-retained) slices and re-runs the job.
// Per-attempt work is exactly one RunOver — the input slices are never
// mutated, so every attempt sees identical input.
func RunOverReplan(rt Runtime, r1, r2 []join.Key, cond join.Condition,
	workers int, plan func(j int) (partition.Scheme, error),
	model cost.Model, cfg Config) (*Result, error) {

	var res *Result
	err := RunRetry(rt, workers, cfg.Retry, func(rt Runtime, j int) error {
		scheme, perr := plan(j)
		if perr != nil {
			return fmt.Errorf("exec: replanning for %d workers: %w", j, perr)
		}
		var aerr error
		res, aerr = RunOver(rt, r1, r2, cond, scheme, model, cfg)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

package exec_test

// The netexec side of the cross-check harness lives in an external test
// package: netexec imports exec, so the loopback comparison cannot sit in
// package exec itself. It drives the same scheme × condition × mapper-count
// grid as crosscheck_test.go and requires the distributed run to be
// BIT-IDENTICAL to the in-process engine — same per-worker input and output
// counts, same aggregates — since both sides now share exec.ShufflePair.

import (
	"fmt"
	"runtime"
	"testing"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

var netModel = cost.Model{Wi: 1, Wo: 0.2}

func netRandKeys(n int, domain int64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(domain)
	}
	return out
}

func startLoopbackWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := netexec.ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}
	return addrs
}

func TestCrossCheckNetexecAgainstExec(t *testing.T) {
	const maxWorkers = 8
	addrs := startLoopbackWorkers(t, maxWorkers)
	mapperCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for seed := uint64(300); seed < 303; seed++ {
		rng := stats.NewRNG(seed)
		n1 := 300 + int(rng.Int64n(900))
		n2 := 300 + int(rng.Int64n(900))
		domain := 100 + rng.Int64n(700)
		r1 := netRandKeys(n1, domain, seed+1)
		r2 := netRandKeys(n2, domain, seed+2)

		cases := []struct {
			name     string
			cond     join.Condition
			regioned bool
		}{
			{"equi", join.Equi{}, true},
			{"band", join.NewBand(3), true},
			{"inequality", join.Inequality{Op: join.LessEq}, false},
		}
		for _, tc := range cases {
			want := localjoin.NestedLoopCount(r1, r2, tc.cond)

			opts := core.Options{J: 6, Model: netModel, Seed: seed + 3}
			schemes := []partition.Scheme{}
			if ci, err := core.PlanCI(opts); err == nil {
				schemes = append(schemes, ci.Scheme)
			} else {
				t.Fatal(err)
			}
			if bcast, err := partition.NewBroadcast(5); err == nil {
				schemes = append(schemes, bcast)
			}
			if _, isEqui := tc.cond.(join.Equi); isEqui {
				if h, err := partition.NewHash(7, nil); err == nil {
					schemes = append(schemes, h)
				}
			}
			if tc.regioned {
				csio, err := core.PlanCSIO(r1, r2, tc.cond, opts)
				if err != nil {
					t.Fatalf("seed %d %s: PlanCSIO: %v", seed, tc.name, err)
				}
				csi, err := core.PlanCSI(r1, r2, tc.cond, 64, opts)
				if err != nil {
					t.Fatalf("seed %d %s: PlanCSI: %v", seed, tc.name, err)
				}
				schemes = append(schemes, csio.Scheme, csi.Scheme)
			}

			for _, s := range schemes {
				if s.Workers() > maxWorkers {
					t.Fatalf("scheme %s wants %d workers, pool has %d", s.Name(), s.Workers(), maxWorkers)
				}
				for _, mappers := range mapperCounts {
					cfg := exec.Config{Seed: seed + 4, Mappers: mappers}
					local := exec.Run(r1, r2, tc.cond, s, netModel, cfg)
					net, err := netexec.Run(addrs, r1, r2, tc.cond, s, netModel, cfg)
					id := fmt.Sprintf("seed %d %s/%s mappers=%d", seed, tc.name, s.Name(), mappers)
					if err != nil {
						t.Fatalf("%s: netexec: %v", id, err)
					}
					if net.Output != want {
						t.Errorf("%s: net output %d, want ground truth %d", id, net.Output, want)
					}
					if net.Output != local.Output || net.NetworkTuples != local.NetworkTuples ||
						net.MaxWork != local.MaxWork || net.TotalWork != local.TotalWork {
						t.Errorf("%s: aggregates differ: net(out=%d net=%d max=%v total=%v) local(out=%d net=%d max=%v total=%v)",
							id, net.Output, net.NetworkTuples, net.MaxWork, net.TotalWork,
							local.Output, local.NetworkTuples, local.MaxWork, local.TotalWork)
					}
					for w := range local.Workers {
						if net.Workers[w] != local.Workers[w] {
							t.Errorf("%s: worker %d metrics differ: net %+v, local %+v",
								id, w, net.Workers[w], local.Workers[w])
						}
					}
				}
			}
		}
	}
}

package exec

import (
	"testing"

	"ewh/internal/join"
	"ewh/internal/partition"
)

// BenchmarkShuffle isolates the shuffle phase of the engine: R2 is empty, so
// every local join early-returns and wall time and allocations are dominated
// by routing R1's tuples into per-worker buffers and handing them to the
// reduce phase. Mappers is pinned so numbers are comparable across machines.
func BenchmarkShuffle(b *testing.B) {
	const n1 = 1 << 21
	r1 := randKeys(n1, 1<<30, 50)
	var r2 []join.Key
	scheme, err := partition.NewHash(8, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(r1, r2, join.Equi{}, scheme, model, Config{Seed: 51, Mappers: 4})
		if res.Output != 0 {
			b.Fatalf("expected empty join, got %d", res.Output)
		}
	}
}

// BenchmarkShuffleCI measures the replicating shuffle: CI routes every R1
// tuple to a full grid row, stressing the variable fan-out path.
func BenchmarkShuffleCI(b *testing.B) {
	const n1 = 1 << 19
	r1 := randKeys(n1, 1<<40, 52)
	var r2 []join.Key
	scheme := partition.NewCI(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(r1, r2, join.NewBand(1), scheme, model, Config{Seed: 53, Mappers: 4})
		if res.Output != 0 {
			b.Fatalf("expected empty join, got %d", res.Output)
		}
	}
}

// BenchmarkRunTuples measures the payload-carrying engine end to end: with
// the flat tuple buffers and key projections pooled, steady-state runs
// should allocate nothing proportional to the input.
func BenchmarkRunTuples(b *testing.B) {
	const n = 1 << 19
	keys1 := randKeys(n, 1<<20, 54)
	keys2 := randKeys(n, 1<<20, 55)
	r1 := make([]Tuple[int64], n)
	r2 := make([]Tuple[int64], n)
	for i := 0; i < n; i++ {
		r1[i] = Tuple[int64]{Key: keys1[i], Payload: int64(i)}
		r2[i] = Tuple[int64]{Key: keys2[i], Payload: int64(-i)}
	}
	scheme, err := partition.NewHash(8, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTuples(r1, r2, join.Equi{}, scheme, model, Config{Seed: 56, Mappers: 4}, nil)
	}
}

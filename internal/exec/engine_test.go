package exec

import (
	"fmt"
	"testing"

	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
)

func TestParseJoinEngine(t *testing.T) {
	for s, want := range map[string]JoinEngine{
		"": EngineAuto, "auto": EngineAuto, "merge": EngineMerge, "hash": EngineHash,
	} {
		got, err := ParseJoinEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseJoinEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("%v: empty String()", got)
		}
	}
	if _, err := ParseJoinEngine("nested-loop"); err == nil {
		t.Error("unknown engine parsed without error")
	}
}

func TestForCondResolution(t *testing.T) {
	equi, band := join.Equi{}, join.NewBand(3)
	cases := []struct {
		e    JoinEngine
		cond join.Condition
		want JoinEngine
	}{
		{EngineAuto, equi, EngineHash},
		{EngineAuto, join.NewBand(0), EngineHash},
		{EngineAuto, band, EngineMerge},
		{EngineHash, equi, EngineHash},
		{EngineHash, band, EngineMerge}, // hash cannot serve a window: falls back
		{EngineMerge, equi, EngineMerge},
		{EngineMerge, band, EngineMerge},
	}
	for _, c := range cases {
		if got := c.e.ForCond(c.cond); got != c.want {
			t.Errorf("%v.ForCond(%v) = %v, want %v", c.e, c.cond, got, c.want)
		}
	}
}

func TestCountOwnedEnginesAgree(t *testing.T) {
	for _, cond := range []join.Condition{join.Equi{}, join.NewBand(0), join.NewBand(2)} {
		r1 := zipfKeys(2000, 300, 0.8, 100)
		r2 := zipfKeys(1500, 300, 0.8, 101)
		want := localjoin.NestedLoopCount(r1, r2, cond)
		for _, e := range []JoinEngine{EngineAuto, EngineMerge, EngineHash} {
			// CountOwned may sort in place: give each engine its own copies.
			c1 := append([]join.Key(nil), r1...)
			c2 := append([]join.Key(nil), r2...)
			if got := CountOwned(e, c1, c2, cond); got != want {
				t.Errorf("%v / %v: CountOwned = %d, want %d", e, cond, got, want)
			}
		}
	}
}

// collectPairs gathers a pair stream with its flush-chunk boundaries, which
// the bit-identity contract covers too (same pairChunk granularity).
func collectPairs(run func(flush func([]PairIdx)) int64) (pairs []PairIdx, cuts []int, n int64) {
	n = run(func(chunk []PairIdx) {
		pairs = append(pairs, chunk...)
		cuts = append(cuts, len(pairs))
	})
	return
}

// TestJoinPairsEngineBitIdentical pins the tentpole ordering contract: the
// hash engine's pair stream — order, content, count, and even flush chunk
// boundaries — is byte-for-byte the merge argsort path's.
func TestJoinPairsEngineBitIdentical(t *testing.T) {
	shapes := []struct {
		name   string
		r1, r2 []join.Key
	}{
		{"uniform", randKeys(3000, 500, 110), randKeys(2500, 500, 111)},
		{"dup-heavy", randKeys(4000, 40, 112), randKeys(3000, 40, 113)},
		{"zipf", zipfKeys(3000, 1000, 1.0, 114), zipfKeys(3000, 1000, 1.0, 115)},
		{"all-equal", make([]join.Key, 300), make([]join.Key, 250)},
		{"empty", nil, randKeys(10, 5, 116)},
	}
	for _, sh := range shapes {
		for _, cond := range []join.Condition{join.Equi{}, join.NewBand(0)} {
			wantPairs, wantCuts, wantN := collectPairs(func(f func([]PairIdx)) int64 {
				return JoinPairs(sh.r1, sh.r2, cond, f)
			})
			gotPairs, gotCuts, gotN := collectPairs(func(f func([]PairIdx)) int64 {
				return JoinPairsEngine(EngineHash, sh.r1, sh.r2, cond, f)
			})
			if gotN != wantN || len(gotPairs) != len(wantPairs) {
				t.Fatalf("%s/%v: hash stream %d pairs (n=%d), merge %d (n=%d)",
					sh.name, cond, len(gotPairs), gotN, len(wantPairs), wantN)
			}
			for i := range wantPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Fatalf("%s/%v: pair %d = %v, want %v", sh.name, cond, i, gotPairs[i], wantPairs[i])
				}
			}
			if fmt.Sprint(gotCuts) != fmt.Sprint(wantCuts) {
				t.Fatalf("%s/%v: flush boundaries %v, want %v", sh.name, cond, gotCuts, wantCuts)
			}
		}
	}
}

// TestRunEngineSelection crosschecks the full Local pipeline under every
// engine selection: identical exact counts for equi (where hash actually
// runs, including the chunk-streamed insert-while-probe path that an
// explicit EngineHash enables on Local) and band (where hash falls back).
func TestRunEngineSelection(t *testing.T) {
	r1 := zipfKeys(20000, 5000, 0.9, 120)
	r2 := zipfKeys(20000, 5000, 0.9, 121)
	for _, cond := range []join.Condition{join.Equi{}, join.NewBand(0), join.NewBand(2)} {
		want := localjoin.NestedLoopCount(r1, r2, cond)
		for _, j := range []int{1, 4, 7} {
			scheme := partition.NewCI(j)
			for _, e := range []JoinEngine{EngineAuto, EngineMerge, EngineHash} {
				res := Run(r1, r2, cond, scheme, model, Config{Seed: 13, Engine: e, Mappers: 6})
				if res.Output != want {
					t.Errorf("%v / J=%d / %v: output %d, want %d", cond, j, e, res.Output, want)
				}
			}
		}
	}
}

// TestLocalStreamsChunksGate pins when Local consumes the chunked scatter:
// only an explicit hash selection on a count-only job that hash can serve —
// auto keeps the flat path, pairs and band always do.
func TestLocalStreamsChunksGate(t *testing.T) {
	mk := func(e JoinEngine, cond join.Condition, pairs bool) *Job {
		j := &Job{Cond: cond, Workers: 2, Engine: e}
		if pairs {
			j.Pairs = func(int, []PairIdx) {}
		}
		return j
	}
	cases := []struct {
		job  *Job
		want bool
	}{
		{mk(EngineHash, join.Equi{}, false), true},
		{mk(EngineHash, join.NewBand(0), false), true},
		{mk(EngineHash, join.NewBand(2), false), false},
		{mk(EngineHash, join.Equi{}, true), false},
		{mk(EngineAuto, join.Equi{}, false), false},
		{mk(EngineMerge, join.Equi{}, false), false},
	}
	for _, c := range cases {
		if got := streamsChunksFor(Local{}, c.job); got != c.want {
			t.Errorf("engine %v cond %v pairs %v: streams = %v, want %v",
				c.job.Engine, c.job.Cond, c.job.Pairs != nil, got, c.want)
		}
	}
}

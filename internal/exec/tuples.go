package exec

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// Tuple carries a routing join key and an opaque payload — the engine's
// richer tuple model for pipelines that must materialize join results (e.g.
// the multi-way join of §IV-B, where the output of one join feeds the next
// operator over the network).
type Tuple[P any] struct {
	Key     join.Key
	Payload P
}

// Keys projects the routing keys of a tuple slice.
func Keys[P any](ts []Tuple[P]) []join.Key {
	out := make([]join.Key, len(ts))
	keysInto(out, ts)
	return out
}

// keysInto projects routing keys into a caller-owned (typically pooled)
// buffer; dst must have length len(ts).
func keysInto[P any](dst []join.Key, ts []Tuple[P]) {
	for i, t := range ts {
		dst[i] = t.Key
	}
}

// WrapKeys lifts bare keys into payload-less tuples.
func WrapKeys(keys []join.Key) []Tuple[struct{}] {
	out := make([]Tuple[struct{}], len(keys))
	for i, k := range keys {
		out[i].Key = k
	}
	return out
}

// RunTuples shuffles payload-carrying relations to the scheme's workers and
// joins them locally, invoking emit once per matching pair. emit is called
// concurrently from different workers but never concurrently for the same
// workerID, so per-worker accumulation needs no locking. The returned Result
// carries the same metrics as Run.
func RunTuples[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2], cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg Config,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) *Result {

	cfg.defaults()
	start := time.Now()
	j := scheme.Workers()
	// Project routing keys into pooled buffers; the shuffle's flat tuple
	// buffers come from the per-type tuple pool, so steady-state RunTuples
	// allocates nothing proportional to the input.
	k1 := GetKeyBuffer(len(r1))
	keysInto(k1, r1)
	k2 := GetKeyBuffer(len(r2))
	keysInto(k2, r2)
	s1, s2 := shufflePair(r1, k1, r2, k2, scheme, cfg,
		getTupleSlice[P1], getTupleSlice[P2])
	PutKeyBuffer(k1)
	PutKeyBuffer(k2)

	res := &Result{Scheme: scheme.Name(), Workers: make([]WorkerMetrics, j)}
	var rwg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < j; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			in1, in2 := s1.worker(w), s2.worker(w)
			out := joinTuplesLocal(in1, in2, cond, w, emit)
			m := &res.Workers[w]
			m.InputR1 = int64(len(in1))
			m.InputR2 = int64(len(in2))
			m.Output = out
			m.Work = model.Weight(float64(m.Input()), float64(out))
		}(w)
	}
	rwg.Wait()
	// emit receives tuples by value, so the flat buffers are dead here and
	// can recycle; the put clears nothing — getTupleSlice clears the tail a
	// shorter future job would otherwise leak.
	putTupleSlice(s1.flat)
	putTupleSlice(s2.flat)

	for _, m := range res.Workers {
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * int64(cfg.BytesPerTuple)
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
	return res
}

// joinTuplesLocal is the sort-based monotonic local join over tuples. The
// worker owns its shuffled slices, so the R2 side is sorted in place (by key;
// slices.SortFunc, no reflection) rather than copied; R1 stays in arrival
// order so emit sees pairs in R1 order with R2 partners ascending.
func joinTuplesLocal[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2],
	cond join.Condition, workerID int, emit func(int, Tuple[P1], Tuple[P2])) int64 {

	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	slices.SortFunc(r2, func(a, b Tuple[P2]) int { return cmp.Compare(a.Key, b.Key) })
	var out int64
	for _, a := range r1 {
		lo, hi := cond.JoinableRange(a.Key)
		i, _ := slices.BinarySearchFunc(r2, lo,
			func(t Tuple[P2], k join.Key) int { return cmp.Compare(t.Key, k) })
		for ; i < len(r2) && r2[i].Key <= hi; i++ {
			out++
			if emit != nil {
				emit(workerID, a, r2[i])
			}
		}
	}
	return out
}

package exec

import (
	"sort"
	"sync"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// Tuple carries a routing join key and an opaque payload — the engine's
// richer tuple model for pipelines that must materialize join results (e.g.
// the multi-way join of §IV-B, where the output of one join feeds the next
// operator over the network).
type Tuple[P any] struct {
	Key     join.Key
	Payload P
}

// Keys projects the routing keys of a tuple slice.
func Keys[P any](ts []Tuple[P]) []join.Key {
	out := make([]join.Key, len(ts))
	for i, t := range ts {
		out[i] = t.Key
	}
	return out
}

// WrapKeys lifts bare keys into payload-less tuples.
func WrapKeys(keys []join.Key) []Tuple[struct{}] {
	out := make([]Tuple[struct{}], len(keys))
	for i, k := range keys {
		out[i].Key = k
	}
	return out
}

// RunTuples shuffles payload-carrying relations to the scheme's workers and
// joins them locally, invoking emit once per matching pair. emit is called
// concurrently from different workers but never concurrently for the same
// workerID, so per-worker accumulation needs no locking. The returned Result
// carries the same metrics as Run.
func RunTuples[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2], cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg Config,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) *Result {

	cfg.defaults()
	start := time.Now()
	j := scheme.Workers()

	type shardOut struct {
		perWorker1 [][]Tuple[P1]
		perWorker2 [][]Tuple[P2]
	}
	mappers := cfg.Mappers
	outs := make([]shardOut, mappers)
	var wg sync.WaitGroup
	master := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, mappers)
	for i := range rngs {
		rngs[i] = master.Split()
	}
	for mi := 0; mi < mappers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			o := &outs[mi]
			o.perWorker1 = make([][]Tuple[P1], j)
			o.perWorker2 = make([][]Tuple[P2], j)
			rng := rngs[mi]
			var buf []int
			lo, hi := shard(len(r1), mappers, mi)
			for _, t := range r1[lo:hi] {
				buf = scheme.RouteR1(t.Key, rng, buf[:0])
				for _, w := range buf {
					o.perWorker1[w] = append(o.perWorker1[w], t)
				}
			}
			lo, hi = shard(len(r2), mappers, mi)
			for _, t := range r2[lo:hi] {
				buf = scheme.RouteR2(t.Key, rng, buf[:0])
				for _, w := range buf {
					o.perWorker2[w] = append(o.perWorker2[w], t)
				}
			}
		}(mi)
	}
	wg.Wait()

	res := &Result{Scheme: scheme.Name(), Workers: make([]WorkerMetrics, j)}
	var rwg sync.WaitGroup
	sem := make(chan struct{}, cfg.Mappers)
	for w := 0; w < j; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var in1 []Tuple[P1]
			var in2 []Tuple[P2]
			for mi := range outs {
				in1 = append(in1, outs[mi].perWorker1[w]...)
				in2 = append(in2, outs[mi].perWorker2[w]...)
			}
			out := joinTuplesLocal(in1, in2, cond, w, emit)
			m := &res.Workers[w]
			m.InputR1 = int64(len(in1))
			m.InputR2 = int64(len(in2))
			m.Output = out
			m.Work = model.Weight(float64(m.Input()), float64(out))
		}(w)
	}
	rwg.Wait()

	for _, m := range res.Workers {
		res.Output += m.Output
		res.NetworkTuples += m.Input()
		res.MemoryBytes += m.Input() * int64(cfg.BytesPerTuple)
		res.TotalWork += m.Work
		if m.Work > res.MaxWork {
			res.MaxWork = m.Work
		}
	}
	res.WallTime = time.Since(start)
	return res
}

// joinTuplesLocal is the sort-based monotonic local join over tuples.
func joinTuplesLocal[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2],
	cond join.Condition, workerID int, emit func(int, Tuple[P1], Tuple[P2])) int64 {

	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	sorted := make([]Tuple[P2], len(r2))
	copy(sorted, r2)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var out int64
	for _, a := range r1 {
		lo, hi := cond.JoinableRange(a.Key)
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Key >= lo })
		for ; i < len(sorted) && sorted[i].Key <= hi; i++ {
			out++
			if emit != nil {
				emit(workerID, a, sorted[i])
			}
		}
	}
	return out
}

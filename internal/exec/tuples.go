package exec

import (
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// Tuple carries a routing join key and an opaque payload — the engine's
// richer tuple model for pipelines that must materialize join results (e.g.
// the multi-way join of §IV-B, where the output of one join feeds the next
// operator over the network).
type Tuple[P any] struct {
	Key     join.Key
	Payload P
}

// Keys projects the routing keys of a tuple slice.
func Keys[P any](ts []Tuple[P]) []join.Key {
	out := make([]join.Key, len(ts))
	keysInto(out, ts)
	return out
}

// keysInto projects routing keys into a caller-owned (typically pooled)
// buffer; dst must have length len(ts).
func keysInto[P any](dst []join.Key, ts []Tuple[P]) {
	for i, t := range ts {
		dst[i] = t.Key
	}
}

// WrapKeys lifts bare keys into payload-less tuples.
func WrapKeys(keys []join.Key) []Tuple[struct{}] {
	out := make([]Tuple[struct{}], len(keys))
	for i, k := range keys {
		out[i].Key = k
	}
	return out
}

// RunTuples shuffles payload-carrying relations to the scheme's workers and
// joins them locally, invoking emit once per matching pair. emit is called
// concurrently from different workers but never concurrently for the same
// workerID, so per-worker accumulation needs no locking. The returned Result
// carries the same metrics as Run. It is RunTuplesOver with the Local
// runtime (payload encoders are only consulted by wire transports).
func RunTuples[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2], cond join.Condition,
	scheme partition.Scheme, model cost.Model, cfg Config,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) *Result {

	res, _ := RunTuplesOver(Local{}, r1, r2, cond, scheme, model, cfg, nil, nil, emit)
	return res
}

// RunTuplesOver executes a payload-carrying join through rt. The tuples are
// shuffled exactly once (flat pooled buffers, as Run's key path); the
// runtime joins the projected key blocks and streams back matched index
// pairs, which this driver maps onto the shuffled tuple blocks to invoke
// emit — so emission is identical no matter where the join ran. For wire
// transports, enc1/enc2 encode each relation's payloads into the job's
// per-worker payload blocks (a nil encoder ships that relation as bare
// keys); the Local runtime never calls them.
//
// emit is called concurrently from different workers but never concurrently
// for the same workerID. Pair order per worker is deterministic: R1 arrival
// order, partners ascending by (key, arrival index).
func RunTuplesOver[P1, P2 any](rt Runtime, r1 []Tuple[P1], r2 []Tuple[P2],
	cond join.Condition, scheme partition.Scheme, model cost.Model, cfg Config,
	enc1 PayloadEncoder[P1], enc2 PayloadEncoder[P2],
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) (*Result, error) {

	cfg.defaults()
	start := time.Now()
	j := scheme.Workers()
	// Project routing keys into pooled buffers; the shuffle's flat tuple
	// buffers come from the per-type tuple pool, so steady-state runs
	// allocate nothing proportional to the input.
	k1 := GetKeyBuffer(len(r1))
	keysInto(k1, r1)
	k2 := GetKeyBuffer(len(r2))
	keysInto(k2, r2)

	var s1 shuffled[Tuple[P1]]
	var s2 shuffled[Tuple[P2]]
	f1, f2 := newRelFuture(), newRelFuture()
	// The resolve callbacks publish s1/s2 before closing the future, so any
	// goroutine that Waited the future (every runtime does before
	// dispatching, and Pairs callers run after dispatch) sees the blocks.
	shufflePairAsync(r1, k1, r2, k2, scheme, cfg, getTupleSlice[P1], getTupleSlice[P2],
		func(s shuffled[Tuple[P1]]) { s1 = s; f1.resolve(tupleRelData(s, enc1)) },
		func(s shuffled[Tuple[P2]]) { s2 = s; f2.resolve(tupleRelData(s, enc2)) })

	job := &Job{Cond: cond, Workers: j, R1: f1, R2: f2, Engine: cfg.Engine}
	if emit != nil {
		// A nil emit leaves Pairs nil too: the job runs count-only on every
		// transport (in-place merge-sweep locally, no pairs traffic on a
		// wire) instead of enumerating matches nobody will see.
		job.Pairs = func(w int, chunk []PairIdx) {
			// The future waits are free after resolution and give this
			// goroutine an explicit acquire edge on the s1/s2 writes —
			// pair delivery paths (e.g. a session's socket read loop) must
			// not rely on transitive ordering through the transport.
			f1.Wait()
			f2.Wait()
			b1, b2 := s1.worker(w), s2.worker(w)
			for _, p := range chunk {
				emit(w, b1[p.I1], b2[p.I2])
			}
		}
	}
	res := &Result{Scheme: scheme.Name() + rt.Label(), Workers: make([]WorkerMetrics, j)}
	err := rt.RunJob(job, res.Workers)

	// Wait for both shuffles before recycling anything: a transport that
	// errored early may return while a scatter is still reading k1/k2.
	f1.Wait().Keys.Release()
	f2.Wait().Keys.Release()
	PutKeyBuffer(k1)
	PutKeyBuffer(k2)
	// emit receives tuples by value, so the flat buffers are dead here and
	// can recycle; the put clears nothing — getTupleSlice clears the tail a
	// shorter future job would otherwise leak.
	putTupleSlice(s1.flat)
	putTupleSlice(s2.flat)
	if err != nil {
		return nil, err
	}
	finishResult(res, model, start, cfg.BytesPerTuple)
	return res, nil
}

// tupleRelData adapts one shuffled tuple relation for the runtime layer: the
// key blocks are a pooled flat projection sharing the shuffle's offsets, and
// the payload closure — only invoked by wire transports — encodes one
// worker's payloads into a length-indexed flat block.
func tupleRelData[P any](s shuffled[Tuple[P]], enc PayloadEncoder[P]) RelData {
	kflat := GetKeyBuffer(len(s.flat))
	keysInto(kflat, s.flat)
	rd := RelData{Keys: &KeyShuffle{shuffled[join.Key]{flat: kflat, off: s.off}}}
	if enc != nil {
		rd.Payloads = func(w int) PayloadBlock {
			ts := s.worker(w)
			off := make([]uint32, len(ts)+1)
			var flat []byte
			for i := range ts {
				flat = enc(flat, ts[i].Payload)
				off[i+1] = uint32(len(flat))
			}
			return PayloadBlock{Flat: flat, Off: off}
		}
	}
	return rd
}

package exec

import (
	"sync/atomic"
	"testing"

	"ewh/internal/core"
	"ewh/internal/join"
	"ewh/internal/localjoin"
)

func TestRunTuplesMatchesRun(t *testing.T) {
	r1 := randKeys(1200, 600, 50)
	r2 := randKeys(1000, 600, 51)
	cond := join.NewBand(2)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 4, Model: model, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	plain := Run(r1, r2, cond, plan.Scheme, model, Config{Seed: 53})
	var emitted int64
	tup := RunTuples(WrapKeys(r1), WrapKeys(r2), cond, plan.Scheme, model, Config{Seed: 53},
		func(w int, a, b Tuple[struct{}]) {
			atomic.AddInt64(&emitted, 1)
			if !cond.Matches(a.Key, b.Key) {
				t.Errorf("emitted non-matching pair (%d,%d)", a.Key, b.Key)
			}
		})
	if tup.Output != plain.Output {
		t.Fatalf("tuple engine output %d, key engine %d", tup.Output, plain.Output)
	}
	if emitted != tup.Output {
		t.Fatalf("emitted %d pairs, output %d", emitted, tup.Output)
	}
	if tup.NetworkTuples != plain.NetworkTuples {
		t.Fatalf("network %d vs %d", tup.NetworkTuples, plain.NetworkTuples)
	}
}

func TestRunTuplesPayloadsSurvive(t *testing.T) {
	// Payload values must travel with the tuple through the shuffle.
	r1 := make([]Tuple[string], 100)
	r2 := make([]Tuple[int], 100)
	for i := range r1 {
		r1[i] = Tuple[string]{Key: join.Key(i), Payload: "left"}
		r2[i] = Tuple[int]{Key: join.Key(i), Payload: i * 10}
	}
	plan, err := core.PlanCI(core.Options{J: 3, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	var bad int64
	res := RunTuples(r1, r2, join.Equi{}, plan.Scheme, model, Config{Seed: 54},
		func(w int, a Tuple[string], b Tuple[int]) {
			if a.Payload != "left" || b.Payload != int(b.Key)*10 {
				atomic.AddInt64(&bad, 1)
			}
		})
	if res.Output != 100 {
		t.Fatalf("output %d, want 100", res.Output)
	}
	if bad != 0 {
		t.Fatalf("%d pairs had corrupted payloads", bad)
	}
}

func TestRunTuplesNilEmit(t *testing.T) {
	r1 := WrapKeys(randKeys(500, 300, 55))
	r2 := WrapKeys(randKeys(500, 300, 56))
	plan, _ := core.PlanCI(core.Options{J: 2, Model: model})
	res := RunTuples(r1, r2, join.NewBand(1), plan.Scheme, model, Config{Seed: 57}, nil)
	want := localjoin.NestedLoopCount(Keys(r1), Keys(r2), join.NewBand(1))
	if res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

func TestKeysAndWrapKeys(t *testing.T) {
	keys := []join.Key{3, 1, 4}
	ts := WrapKeys(keys)
	back := Keys(ts)
	for i := range keys {
		if back[i] != keys[i] {
			t.Fatal("round trip failed")
		}
	}
}

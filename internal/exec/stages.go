package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/stats"
)

// This file is the stage-aware half of the runtime layer: instead of the
// driver materializing one stage's output and re-shuffling it itself (the
// coordinator-relay pattern), the driver hands the transport a PLAN — a
// serializable partitioning artifact — plus relation futures, and the
// transport decides where the intermediate lives and how it moves. Over
// netexec this is the direct worker→worker re-shuffle: each worker routes
// its own stage-1 matches by the broadcast plan and streams them straight to
// peer workers, so the intermediate never transits the driver.
//
// The plan comes in two flavors. A PRE-BUILT plan (content-insensitive
// schemes) is broadcast with stage 1. A STATS-DEFERRED plan serves the
// content-sensitive schemes the paper is about: the transport has every
// stage-1 worker summarize its local matches (Stats sizes the summaries),
// collects the summaries, calls Replan to build the real plan from the
// merged statistics, and only then broadcasts it — the intermediate still
// never transits the driver, only its statistics summaries do.

// StatsSpec sizes the per-worker statistics summaries of a stats-deferred
// stage plan (see sample.Summarize).
type StatsSpec struct {
	// Cap bounds each worker's uniform key sample.
	Cap int
	// Buckets is each worker's local equi-depth histogram resolution.
	Buckets int
	// Seed is the base summary-sampling seed; workers derive deterministic
	// per-sender streams from it.
	Seed uint64
	// Adaptive lets each worker shrink its sample below Cap when its local
	// match count is small (see sample.AdaptiveCap): a worker holding a few
	// thousand matches ships a few hundred sample keys instead of the full
	// Cap, trimming summary bytes and merge work without losing resolution
	// where it matters. Cap remains the hard ceiling either way.
	Adaptive bool
}

// PlanJob hands a transport a downstream join stage as a plan rather than
// pre-routed blocks. The stage's left relation is the upstream stage's
// materialized matches, already living wherever the transport put them; the
// right relation is still shuffled by the driver (it owns that base data).
type PlanJob struct {
	// Plan is the planio-encoded artifact (scheme + routing seed) every
	// executor of the stage shares. The transport ships it opaquely; workers
	// decode it and route with bit-identical decisions. Nil when the plan is
	// stats-deferred (Replan != nil).
	Plan []byte
	// Workers is the decoded scheme's worker count (the driver holds the
	// decoded scheme too; transports must not need to decode Plan to size
	// their dispatch). Zero when the plan is stats-deferred — the count is
	// Replan's to decide.
	Workers int
	// Cond is the stage's join predicate.
	Cond join.Condition
	// R2 resolves to the stage's driver-shuffled right relation. For a
	// stats-deferred plan it resolves only after Replan returns (the driver
	// cannot shuffle before it knows the scheme), so transports must not
	// Wait on it before replanning completes.
	R2 *RelFuture
	// MaxIntermediate, when positive, fails the pipeline before the stage
	// dispatches if the upstream stage matched more tuples — the earliest
	// point the total is known on a transport whose driver never sees the
	// intermediate.
	MaxIntermediate int64
	// Engine is the coordinator's local-join engine selection for the stage,
	// forwarded by wire transports so a peer-fed stage-2 job resolves the
	// same engine a coordinator-fed job would (Config.Engine end to end).
	Engine JoinEngine

	// Stats, non-nil exactly when the plan is stats-deferred, sizes the
	// per-worker summaries of the stage-1 matches.
	Stats *StatsSpec
	// Replan, non-nil exactly when the plan is stats-deferred, receives the
	// per-sender encoded summaries (index = stage-1 worker id, each a
	// planio summary) once every stage-1 join has completed, and returns the
	// encoded stage-2 plan plus its worker count. The transport must call it
	// at most once, synchronously, between collecting the summaries and
	// broadcasting the plan.
	Replan func(summaries [][]byte) (plan []byte, workers int, err error)
}

// StageRuntime is an optional Runtime extension implemented by transports
// that can re-shuffle one job's materialized matches directly between their
// workers. The first job's second relation must carry, as its payload
// encoding, the 8-byte little-endian stage-2 routing key of each tuple: a
// stage-1 match (t1, t2) materializes as the bare key decoded from t2's
// payload, which is exactly how the multiway pipeline re-keys its
// intermediate on the next join attribute.
type StageRuntime interface {
	Runtime
	// RunStages executes first (count-only; first.Pairs must be nil), routes
	// each worker's matches by next.Plan to the stage-2 workers, joins them
	// against next.R2 and fills wm1/wm2. wm1 has length first.Workers; wm2
	// has length next.Workers for a pre-built plan, and for a stats-deferred
	// plan it is an upper bound the transport fills up to the worker count
	// Replan returns. It returns the total intermediate size — the only
	// thing about the intermediate the driver ever sees.
	RunStages(first *Job, next *PlanJob, wm1, wm2 []WorkerMetrics) (intermediate int64, err error)
}

// StagePlan describes the downstream stage to RunStagesOver. A pre-built
// plan sets Bytes (the encoded artifact) and Scheme (its decode); a
// stats-deferred plan leaves both nil and sets Stats, MaxWorkers and Replan
// instead. MaxIntermediate (when positive) caps the stage-1 match total
// before stage 2 dispatches.
type StagePlan struct {
	Bytes           []byte
	Scheme          partition.Scheme
	Cond            join.Condition
	MaxIntermediate int64

	// Stats-deferred planning:

	// Stats sizes the per-worker summaries.
	Stats *StatsSpec
	// MaxWorkers bounds the replanned scheme's worker count (the driver's J;
	// it sizes the stage-2 metrics before the scheme exists).
	MaxWorkers int
	// Replan builds the stage-2 plan from the per-sender statistics
	// summaries (index = stage-1 worker, already decoded and validated by
	// the driver layer): it returns the encoded artifact and its decoded
	// scheme (workers <= MaxWorkers). Called at most once, after every
	// stage-1 worker has summarized its matches and before the plan
	// broadcasts — so no intermediate tuple has moved yet.
	Replan func(summaries []*stats.Summary) (plan []byte, scheme partition.Scheme, err error)
}

// stage2SeedDelta decorrelates the driver's right-relation shuffle from the
// first stage's shuffle streams without a second Config knob.
const stage2SeedDelta = 0x51ed270

// RunStagesOver executes a two-stage pipeline through a stage-aware
// transport: stage 1 joins r1 ⋈ r2 under scheme (shuffled once by the
// driver, payload segments carrying each r2 tuple's stage-2 routing key),
// the transport re-shuffles the matches by sp's plan without them ever
// returning to the driver, and stage 2 joins them against r3 (driver-
// shuffled on the R2 side, seed cfg.Seed+stage2SeedDelta). For a
// stats-deferred sp the r3 shuffle starts the moment Replan resolves the
// scheme. enc2 must encode exactly the 8-byte little-endian stage-2 key
// (see StageRuntime); enc1 may be nil. Both stages' Results carry the usual
// per-worker metrics; stage 1's Output is the intermediate size.
func RunStagesOver[P1, P2 any](rt StageRuntime, r1 []Tuple[P1], r2 []Tuple[P2],
	cond join.Condition, scheme partition.Scheme, sp StagePlan, r3 []join.Key,
	model cost.Model, cfg Config, enc1 PayloadEncoder[P1], enc2 PayloadEncoder[P2],
) (stage1, stage2 *Result, err error) {

	if enc2 == nil {
		return nil, nil, fmt.Errorf("exec: stage pipeline needs a stage-2 key encoder for relation 2")
	}
	deferred := sp.Replan != nil
	j2cap := 0
	switch {
	case deferred:
		if sp.Scheme != nil || len(sp.Bytes) != 0 {
			return nil, nil, fmt.Errorf("exec: stats-deferred stage plan cannot also carry a pre-built plan")
		}
		if sp.Stats == nil || sp.Stats.Cap < 1 || sp.Stats.Buckets < 1 {
			return nil, nil, fmt.Errorf("exec: stats-deferred stage plan needs a statistics spec")
		}
		if sp.MaxWorkers < 1 {
			return nil, nil, fmt.Errorf("exec: stats-deferred stage plan needs a worker bound")
		}
		j2cap = sp.MaxWorkers
	case sp.Scheme == nil || len(sp.Bytes) == 0:
		return nil, nil, fmt.Errorf("exec: stage pipeline without an encoded stage-2 plan")
	default:
		j2cap = sp.Scheme.Workers()
	}
	cfg.defaults()
	start := time.Now()
	j1 := scheme.Workers()

	k1 := GetKeyBuffer(len(r1))
	keysInto(k1, r1)
	k2 := GetKeyBuffer(len(r2))
	keysInto(k2, r2)
	var s1 shuffled[Tuple[P1]]
	var s2 shuffled[Tuple[P2]]
	f1, f2 := newRelFuture(), newRelFuture()
	shufflePairAsync(r1, k1, r2, k2, scheme, cfg, getTupleSlice[P1], getTupleSlice[P2],
		func(s shuffled[Tuple[P1]]) { s1 = s; f1.resolve(tupleRelData(s, enc1)) },
		func(s shuffled[Tuple[P2]]) { s2 = s; f2.resolve(tupleRelData(s, enc2)) })

	// The right relation of stage 2 shuffles concurrently with stage 1's
	// relations once its scheme is known — immediately for a pre-built plan,
	// at replan time for a stats-deferred one; the transport waits on its
	// future only when stage 2 opens.
	cfg3 := cfg
	cfg3.Seed = cfg.Seed + stage2SeedDelta
	f3 := newRelFuture()
	var r3Started atomic.Bool
	startR3 := func(s partition.Scheme) {
		r3Started.Store(true)
		if streamsChunks(rt) {
			// Chunk-consuming transports get r3 as a stream: the first routed
			// sub-blocks hit stage-2 sockets while later mappers still route —
			// and, for pre-built plans, while stage 1 is still running.
			f3.resolve(RelData{Chunks: ShuffleKeysChunked(r3, s, 2, cfg3)})
			return
		}
		go func() {
			ks := ShuffleKeys(r3, s, 2, cfg3)
			f3.resolve(RelData{Keys: ks})
		}()
	}

	scheme2 := sp.Scheme
	// A stats-deferred PlanJob carries Workers == 0: the count is Replan's
	// to decide.
	j2known := j2cap
	if deferred {
		j2known = 0
	}
	next := &PlanJob{Plan: sp.Bytes, Workers: j2known, Cond: sp.Cond, R2: f3,
		MaxIntermediate: sp.MaxIntermediate, Stats: sp.Stats, Engine: cfg.Engine}
	if deferred {
		next.Replan = func(encoded [][]byte) ([]byte, int, error) {
			// The driver layer owns the summary codec: decode once, enforce
			// the pipeline cap off the exact counts — BEFORE the plan exists,
			// so a blown cap never moves a single intermediate tuple — and
			// hand the typed summaries to the planner.
			summaries := make([]*stats.Summary, len(encoded))
			var total int64
			for w, enc := range encoded {
				s, err := planio.DecodeSummary(enc)
				if err != nil {
					return nil, 0, fmt.Errorf("exec: stage-1 worker %d statistics summary: %w", w, err)
				}
				summaries[w] = s
				total += s.Count
			}
			if sp.MaxIntermediate > 0 && total > sp.MaxIntermediate {
				return nil, 0, fmt.Errorf("exec: stage 1 matched %d tuples, pipeline cap %d; restructure the chain",
					total, sp.MaxIntermediate)
			}
			plan, s, err := sp.Replan(summaries)
			if err != nil {
				return nil, 0, err
			}
			if s == nil || len(plan) == 0 {
				return nil, 0, fmt.Errorf("exec: replan returned an empty stage-2 plan")
			}
			if s.Workers() > sp.MaxWorkers {
				return nil, 0, fmt.Errorf("exec: replanned scheme routes to %d workers, pipeline bound %d",
					s.Workers(), sp.MaxWorkers)
			}
			scheme2 = s
			startR3(s)
			return plan, s.Workers(), nil
		}
	} else {
		startR3(sp.Scheme)
	}

	first := &Job{Cond: cond, Workers: j1, R1: f1, R2: f2, Engine: cfg.Engine}
	res1 := &Result{Scheme: scheme.Name() + rt.Label(), Workers: make([]WorkerMetrics, j1)}
	res2 := &Result{Workers: make([]WorkerMetrics, j2cap)}
	inter, err := rt.RunStages(first, next, res1.Workers, res2.Workers)

	f1.Wait().Keys.Release()
	f2.Wait().Keys.Release()
	// A failure before replanning leaves the r3 shuffle unstarted; resolve
	// the future empty so nothing downstream can block on it.
	if !r3Started.Load() {
		f3.resolve(RelData{})
	}
	releaseRelData(f3.Wait())
	PutKeyBuffer(k1)
	PutKeyBuffer(k2)
	putTupleSlice(s1.flat)
	putTupleSlice(s2.flat)
	if err != nil {
		return nil, nil, err
	}
	if scheme2 == nil {
		return nil, nil, fmt.Errorf("exec: transport completed a stats-deferred pipeline without replanning")
	}
	res2.Workers = res2.Workers[:scheme2.Workers()]
	res2.Scheme = scheme2.Name() + "@peer"
	finishResult(res1, model, start, cfg.BytesPerTuple)
	finishResult(res2, model, start, cfg.BytesPerTuple)
	if inter != res1.Output {
		return nil, nil, fmt.Errorf("exec: transport re-shuffled %d intermediate tuples, stage 1 matched %d",
			inter, res1.Output)
	}
	return res1, res2, nil
}

package exec

import (
	"fmt"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

// This file is the stage-aware half of the runtime layer: instead of the
// driver materializing one stage's output and re-shuffling it itself (the
// coordinator-relay pattern), the driver hands the transport a PLAN — a
// serializable partitioning artifact — plus relation futures, and the
// transport decides where the intermediate lives and how it moves. Over
// netexec this is the direct worker→worker re-shuffle: each worker routes
// its own stage-1 matches by the broadcast plan and streams them straight to
// peer workers, so the intermediate never transits the driver.

// PlanJob hands a transport a downstream join stage as a plan rather than
// pre-routed blocks. The stage's left relation is the upstream stage's
// materialized matches, already living wherever the transport put them; the
// right relation is still shuffled by the driver (it owns that base data).
type PlanJob struct {
	// Plan is the planio-encoded artifact (scheme + routing seed) every
	// executor of the stage shares. The transport ships it opaquely; workers
	// decode it and route with bit-identical decisions.
	Plan []byte
	// Workers is the decoded scheme's worker count (the driver holds the
	// decoded scheme too; transports must not need to decode Plan to size
	// their dispatch).
	Workers int
	// Cond is the stage's join predicate.
	Cond join.Condition
	// R2 resolves to the stage's driver-shuffled right relation.
	R2 *RelFuture
	// MaxIntermediate, when positive, fails the pipeline before the stage
	// dispatches if the upstream stage matched more tuples — the earliest
	// point the total is known on a transport whose driver never sees the
	// intermediate.
	MaxIntermediate int64
}

// StageRuntime is an optional Runtime extension implemented by transports
// that can re-shuffle one job's materialized matches directly between their
// workers. The first job's second relation must carry, as its payload
// encoding, the 8-byte little-endian stage-2 routing key of each tuple: a
// stage-1 match (t1, t2) materializes as the bare key decoded from t2's
// payload, which is exactly how the multiway pipeline re-keys its
// intermediate on the next join attribute.
type StageRuntime interface {
	Runtime
	// RunStages executes first (count-only; first.Pairs must be nil), routes
	// each worker's matches by next.Plan to the stage-2 workers, joins them
	// against next.R2 and fills wm1/wm2 (lengths first.Workers and
	// next.Workers). It returns the total intermediate size — the only thing
	// about the intermediate the driver ever sees.
	RunStages(first *Job, next *PlanJob, wm1, wm2 []WorkerMetrics) (intermediate int64, err error)
}

// StagePlan describes the downstream stage to RunStagesOver: the encoded
// artifact the transport broadcasts and the decoded scheme the driver sizes
// results with. Scheme must be the decode of Bytes. MaxIntermediate (when
// positive) caps the stage-1 match total before stage 2 dispatches.
type StagePlan struct {
	Bytes           []byte
	Scheme          partition.Scheme
	Cond            join.Condition
	MaxIntermediate int64
}

// stage2SeedDelta decorrelates the driver's right-relation shuffle from the
// first stage's shuffle streams without a second Config knob.
const stage2SeedDelta = 0x51ed270

// RunStagesOver executes a two-stage pipeline through a stage-aware
// transport: stage 1 joins r1 ⋈ r2 under scheme (shuffled once by the
// driver, payload segments carrying each r2 tuple's stage-2 routing key),
// the transport re-shuffles the matches by sp's plan without them ever
// returning to the driver, and stage 2 joins them against r3 (driver-
// shuffled on the R2 side, seed cfg.Seed+stage2SeedDelta). enc2 must encode
// exactly the 8-byte little-endian stage-2 key (see StageRuntime); enc1 may
// be nil. Both stages' Results carry the usual per-worker metrics; stage 1's
// Output is the intermediate size.
func RunStagesOver[P1, P2 any](rt StageRuntime, r1 []Tuple[P1], r2 []Tuple[P2],
	cond join.Condition, scheme partition.Scheme, sp StagePlan, r3 []join.Key,
	model cost.Model, cfg Config, enc1 PayloadEncoder[P1], enc2 PayloadEncoder[P2],
) (stage1, stage2 *Result, err error) {

	if enc2 == nil {
		return nil, nil, fmt.Errorf("exec: stage pipeline needs a stage-2 key encoder for relation 2")
	}
	if sp.Scheme == nil || len(sp.Bytes) == 0 {
		return nil, nil, fmt.Errorf("exec: stage pipeline without an encoded stage-2 plan")
	}
	cfg.defaults()
	start := time.Now()
	j1 := scheme.Workers()
	j2 := sp.Scheme.Workers()

	k1 := GetKeyBuffer(len(r1))
	keysInto(k1, r1)
	k2 := GetKeyBuffer(len(r2))
	keysInto(k2, r2)
	var s1 shuffled[Tuple[P1]]
	var s2 shuffled[Tuple[P2]]
	f1, f2 := newRelFuture(), newRelFuture()
	shufflePairAsync(r1, k1, r2, k2, scheme, cfg, getTupleSlice[P1], getTupleSlice[P2],
		func(s shuffled[Tuple[P1]]) { s1 = s; f1.resolve(tupleRelData(s, enc1)) },
		func(s shuffled[Tuple[P2]]) { s2 = s; f2.resolve(tupleRelData(s, enc2)) })

	// The right relation of stage 2 shuffles concurrently with stage 1's
	// relations; the transport waits on its future only when stage 2 opens.
	cfg3 := cfg
	cfg3.Seed = cfg.Seed + stage2SeedDelta
	f3 := newRelFuture()
	go func() {
		ks := ShuffleKeys(r3, sp.Scheme, 2, cfg3)
		f3.resolve(RelData{Keys: ks})
	}()

	first := &Job{Cond: cond, Workers: j1, R1: f1, R2: f2}
	next := &PlanJob{Plan: sp.Bytes, Workers: j2, Cond: sp.Cond, R2: f3,
		MaxIntermediate: sp.MaxIntermediate}
	res1 := &Result{Scheme: scheme.Name() + rt.Label(), Workers: make([]WorkerMetrics, j1)}
	res2 := &Result{Scheme: sp.Scheme.Name() + "@peer", Workers: make([]WorkerMetrics, j2)}
	inter, err := rt.RunStages(first, next, res1.Workers, res2.Workers)

	f1.Wait().Keys.Release()
	f2.Wait().Keys.Release()
	f3.Wait().Keys.Release()
	PutKeyBuffer(k1)
	PutKeyBuffer(k2)
	putTupleSlice(s1.flat)
	putTupleSlice(s2.flat)
	if err != nil {
		return nil, nil, err
	}
	finishResult(res1, model, start, cfg.BytesPerTuple)
	finishResult(res2, model, start, cfg.BytesPerTuple)
	if inter != res1.Output {
		return nil, nil, fmt.Errorf("exec: transport re-shuffled %d intermediate tuples, stage 1 matched %d",
			inter, res1.Output)
	}
	return res1, res2, nil
}

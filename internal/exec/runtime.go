package exec

import (
	"cmp"
	"runtime"
	"slices"
	"sync"

	"ewh/internal/join"
	"ewh/internal/localjoin"
)

// This file is the transport-agnostic runtime layer: the in-process engine
// and the networked engine are two transports behind one execution API. A
// driver (RunOver, RunTuplesOver) plans and shuffles exactly once, wraps the
// shuffled relations in a Job and hands it to a Runtime; the Runtime only
// decides WHERE each worker's join happens — goroutines in this process
// (Local) or remote worker processes behind persistent connections
// (netexec.Session). Because every transport consumes the same shuffled
// blocks and runs the same pair join, results are bit-identical across
// transports for a fixed Config.

// Runtime executes planned join jobs over some transport.
type Runtime interface {
	// Label is appended to the scheme name in Results ("" for in-process,
	// "@sess" for the persistent-session network transport).
	Label() string
	// RunJob dispatches one job and fills wm[w].InputR1/InputR2/Output for
	// each of the job's workers (wm has length job.Workers). The driver
	// derives the modeled Work afterwards, so transports never see the cost
	// model. RunJob must call job.Pairs — when set — sequentially per
	// worker, though different workers may proceed concurrently.
	RunJob(job *Job, wm []WorkerMetrics) error
}

// PairIdx is one matched pair of a join, as indices into the worker's
// arrival-order R1 and R2 blocks. Indices (not payloads) cross transport
// boundaries: with a deterministic shuffle both sides of the wire hold
// identical blocks, so an index pair reconstructs the exact tuple pair.
type PairIdx struct{ I1, I2 uint32 }

// PayloadBlock is one worker's encoded payload segment: tuple i's bytes are
// Flat[Off[i]:Off[i+1]]. Off has length tuples+1 with Off[0] == 0.
type PayloadBlock struct {
	Flat []byte
	Off  []uint32
}

// PayloadEncoder appends the wire encoding of one payload to dst. A nil
// encoder means the relation ships as bare keys (no payload segment).
type PayloadEncoder[P any] func(dst []byte, p P) []byte

// RelData is one shuffled relation as a Runtime consumes it.
type RelData struct {
	// Keys holds the per-worker contiguous key blocks. Nil when the relation
	// streams as chunks instead (Chunks non-nil).
	Keys *KeyShuffle
	// Payloads, when non-nil, returns worker w's encoded payload block.
	// Only wire transports call it — in-process emission reads the original
	// tuple buffers — so the encoding cost is paid exactly when bytes
	// actually cross a socket.
	Payloads func(w int) PayloadBlock
	// Chunks, when non-nil (and Keys nil), streams the relation's routed
	// sub-blocks as mappers finish, so a transport frames bytes onto sockets
	// before the whole relation has scattered. Only handed to runtimes that
	// declare chunk support (ChunkStreamer); drivers fall back to the flat
	// shuffle otherwise. Chunked relations are always bare-key.
	Chunks *ChunkStream
}

// RelFuture hands a Runtime one relation as soon as its shuffle completes.
// Wait blocks until the relation's scatter has finished; a wire transport
// that starts streaming R1 the moment it resolves overlaps its socket
// writes with R2's still-running shuffle.
type RelFuture struct {
	done chan struct{}
	data RelData
}

func newRelFuture() *RelFuture { return &RelFuture{done: make(chan struct{})} }

func (f *RelFuture) resolve(d RelData) {
	f.data = d
	close(f.done)
}

// Wait blocks until the relation's shuffle completed and returns it. Safe
// for concurrent callers.
func (f *RelFuture) Wait() RelData {
	<-f.done
	return f.data
}

// ResolvedRelFuture wraps an already-materialized relation for direct Job
// construction — custom transports and protocol tests that bypass the
// drivers' shuffle.
func ResolvedRelFuture(d RelData) *RelFuture {
	f := newRelFuture()
	f.resolve(d)
	return f
}

// ChunkStreamer is an optional Runtime extension: a transport that returns
// true consumes RelData.Chunks relations (framing each routed sub-block the
// moment it arrives) and the drivers hand it chunk streams for bare-key
// relations instead of waiting out the flat scatter. The in-process runtime
// does not implement it — a local join gains nothing from chunking and the
// flat buffer feeds the reduce directly.
type ChunkStreamer interface {
	StreamsChunks() bool
}

// streamsChunks reports whether rt opted into chunked relations.
func streamsChunks(rt Runtime) bool {
	cs, ok := rt.(ChunkStreamer)
	return ok && cs.StreamsChunks()
}

// JobChunkStreamer is the job-aware refinement of ChunkStreamer: a runtime
// whose chunk appetite depends on the job (Local consumes chunks only when
// the job resolves to the incremental hash engine) implements this; blanket
// streamers keep the plain interface.
type JobChunkStreamer interface {
	StreamsChunksFor(job *Job) bool
}

// streamsChunksFor reports whether rt wants this job's relations chunked,
// preferring the job-aware interface when implemented.
func streamsChunksFor(rt Runtime, job *Job) bool {
	if jcs, ok := rt.(JobChunkStreamer); ok {
		return jcs.StreamsChunksFor(job)
	}
	return streamsChunks(rt)
}

// Job is one planned join handed to a Runtime: the predicate, the (still
// shuffling) relations, and an optional pair sink.
type Job struct {
	// Cond is the join predicate. Wire transports re-encode it with
	// join.SpecOf and fail for condition types without a wire spec;
	// in-process transports evaluate it directly, so exec.Run keeps working
	// for user-defined conditions.
	Cond join.Condition
	// Workers is the number of reducer workers (scheme.Workers()).
	Workers int
	// R1, R2 resolve to the shuffled relations.
	R1, R2 *RelFuture
	// Pairs, when non-nil, receives worker w's matched pairs in chunks, in
	// deterministic order (R1 arrival order, ties in R2 by key then arrival
	// index). Calls for the same worker are sequential; the chunk is only
	// valid for the duration of the call. When nil the job is count-only
	// and workers may sort their blocks in place.
	Pairs func(worker int, chunk []PairIdx)
	// Engine selects the local-join engine (from Config.Engine); transports
	// forward it to wherever the join runs. Counts and pair streams are
	// engine-independent.
	Engine JoinEngine
}

// pairChunk is the flush granularity of JoinPairs: bounded buffering on
// every transport (32k pairs, 256 KiB) instead of materializing a
// potentially output-skewed worker's whole pair set.
const pairChunk = 1 << 15

var pairBufPool sync.Pool // stores *[]PairIdx

func getPairBuf() []PairIdx {
	if v := pairBufPool.Get(); v != nil {
		return (*v.(*[]PairIdx))[:0]
	}
	return make([]PairIdx, 0, pairChunk)
}

func putPairBuf(b []PairIdx) {
	b = b[:0]
	pairBufPool.Put(&b)
}

// JoinPairs streams the matched index pairs of a monotonic join with both
// relations in arrival order, calling flush with successive chunks (each at
// most pairChunk long, reused between calls). Pairs come in R1 arrival
// order; a tuple's R2 partners ascend by key with ties broken by arrival
// index, so every transport — the in-process Local runtime and a remote
// netexec worker joining the identical shuffled blocks — produces the
// byte-identical pair stream. Neither input slice is mutated. Returns the
// total match count.
func JoinPairs(r1, r2 []join.Key, cond join.Condition, flush func([]PairIdx)) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	// Argsort R2 by (key, index) instead of sorting it in place: the blocks
	// may be shared with the driver's emission path, and the stable order is
	// what makes the pair stream deterministic.
	ord := getTupleSlice[uint32](len(r2))
	for i, k := range r2 {
		ord[i] = Tuple[uint32]{Key: k, Payload: uint32(i)}
	}
	sortKeyIdx(ord)
	buf := getPairBuf()
	var out int64
	for i1, k := range r1 {
		lo, hi := cond.JoinableRange(k)
		i := searchKey(ord, lo)
		for ; i < len(ord) && ord[i].Key <= hi; i++ {
			buf = append(buf, PairIdx{I1: uint32(i1), I2: ord[i].Payload})
			out++
			if len(buf) == pairChunk {
				flush(buf)
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		flush(buf)
	}
	putPairBuf(buf)
	putTupleSlice(ord)
	return out
}

// sortKeyIdx orders an argsort buffer by (key, arrival index) — the stable
// order JoinPairs' determinism rests on (slices.SortFunc alone is unstable).
func sortKeyIdx(ts []Tuple[uint32]) {
	slices.SortFunc(ts, func(a, b Tuple[uint32]) int {
		if c := cmp.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return cmp.Compare(a.Payload, b.Payload)
	})
}

// searchKey returns the first position in the (key, index)-sorted buffer
// whose key is >= k.
func searchKey(ts []Tuple[uint32], k join.Key) int {
	i, _ := slices.BinarySearchFunc(ts, k,
		func(t Tuple[uint32], k join.Key) int { return cmp.Compare(t.Key, k) })
	return i
}

// Local is the in-process runtime: each worker is a goroutine joining its
// shuffled blocks, bounded by GOMAXPROCS.
type Local struct{}

// Label implements Runtime; in-process results carry the bare scheme name.
func (Local) Label() string { return "" }

// StreamsChunksFor implements JobChunkStreamer: Local consumes chunked
// relations exactly when the job explicitly selects the hash engine for a
// count-only equality join — the workers then feed each routed sub-block
// into the incremental build as the mappers emit it, overlapping build work
// with the still-running scatter. Every other job keeps the flat scatter;
// a local merge join gains nothing from chunking.
func (Local) StreamsChunksFor(job *Job) bool {
	return job.Engine == EngineHash && job.Pairs == nil &&
		job.Engine.ForCond(job.Cond) == EngineHash
}

// RunJob implements Runtime. Count-only jobs run the selected engine over
// the (owned) key blocks — merge sorts in place, hash builds and probes;
// chunk-streamed jobs feed arriving sub-blocks straight into the
// incremental hash build. Pair jobs run the deterministic index-pair join.
// Local never returns an error.
func (Local) RunJob(job *Job, wm []WorkerMetrics) error {
	r1 := job.R1.Wait()
	r2 := job.R2.Wait()
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < job.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m := &wm[w]
			if r1.Chunks != nil {
				m.InputR1, m.InputR2, m.Output = localStreamCount(
					r1.Chunks.Worker(w), r2.Chunks.Worker(w))
				return
			}
			in1, in2 := r1.Keys.Worker(w), r2.Keys.Worker(w)
			var out int64
			if job.Pairs == nil {
				out = CountOwned(job.Engine, in1, in2, job.Cond)
			} else {
				out = JoinPairsEngine(job.Engine, in1, in2, job.Cond, func(chunk []PairIdx) {
					job.Pairs(w, chunk)
				})
			}
			m.InputR1 = int64(len(in1))
			m.InputR2 = int64(len(in2))
			m.Output = out
		}(w)
	}
	wg.Wait()
	return nil
}

// localStreamCount is one in-process worker's incremental hash join over
// chunk streams: every R1 sub-block inserts into the build the moment a
// mapper routes it (overlapping the scatter still running for later
// mappers), then R2 sub-blocks probe as they arrive. The per-worker stream
// buffers are sized so producers never block, which is what makes draining
// R1 before R2 deadlock-free.
func localStreamCount(c1, c2 <-chan KeyChunk) (n1, n2, out int64) {
	b := localjoin.NewBuild()
	for ch := range c1 {
		b.Insert(ch.Keys)
		n1 += int64(len(ch.Keys))
		PutKeyBuffer(ch.Keys)
	}
	b.Seal()
	for ch := range c2 {
		out += b.ProbeCount(ch.Keys)
		n2 += int64(len(ch.Keys))
		PutKeyBuffer(ch.Keys)
	}
	return n1, n2, out
}

package exec

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
)

func TestRetryPolicyDelay(t *testing.T) {
	var p RetryPolicy // zero value: 50ms base, 2s cap
	want := []time.Duration{50, 100, 200, 400, 800, 1600, 2000, 2000}
	for n, w := range want {
		if d := p.Delay(n); d != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", n, d, w*time.Millisecond)
		}
	}
	p = RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	if d := p.Delay(0); d != 10*time.Millisecond {
		t.Errorf("custom Delay(0) = %v", d)
	}
	if d := p.Delay(3); d != 25*time.Millisecond {
		t.Errorf("custom Delay(3) = %v, want cap", d)
	}
	if (RetryPolicy{}).Enabled() || !(RetryPolicy{MaxAttempts: 2}).Enabled() {
		t.Error("Enabled threshold wrong")
	}
}

// fakeFault implements the structural retryability probe exec relies on.
type fakeFault struct {
	msg   string
	retry bool
}

func (f *fakeFault) Error() string        { return f.msg }
func (f *fakeFault) RetryableFault() bool { return f.retry }

func TestRetryableFault(t *testing.T) {
	retryable := &fakeFault{msg: "worker 1 died", retry: true}
	fatal := &fakeFault{msg: "bad plan on worker 0", retry: false}
	plain := errors.New("validation: j must be positive")

	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain driver error", plain, false},
		{"single retryable", retryable, true},
		{"single fatal", fatal, false},
		{"wrapped retryable", fmt.Errorf("stage 1: %w", retryable), true},
		{"joined all retryable", errors.Join(retryable, &fakeFault{msg: "x", retry: true}), true},
		{"joined mixed", errors.Join(retryable, fatal), false},
		{"joined with plain", errors.Join(retryable, plain), false},
		{"deeply wrapped", fmt.Errorf("a: %w", fmt.Errorf("b: %w", retryable)), true},
	}
	for _, c := range cases {
		if got := RetryableFault(c.err); got != c.want {
			t.Errorf("%s: RetryableFault = %v, want %v", c.name, got, c.want)
		}
	}
}

// fakeFTR scripts a FaultTolerantRuntime: errs[i] is what attempt i returns,
// and each Survivors call drops one worker.
type fakeFTR struct {
	workers   int
	attempts  int
	errs      []error
	survCalls int
	survErr   error
}

func (f *fakeFTR) Label() string { return "fake" }

func (f *fakeFTR) RunJob(job *Job, m []WorkerMetrics) error { return nil }

func (f *fakeFTR) Survivors() (Runtime, int, error) {
	f.survCalls++
	if f.survErr != nil {
		return nil, 0, f.survErr
	}
	f.workers--
	return f, f.workers, nil
}

func (f *fakeFTR) next() error {
	i := f.attempts
	f.attempts++
	if i < len(f.errs) {
		return f.errs[i]
	}
	return nil
}

func TestRunRetrySucceedsAfterFault(t *testing.T) {
	ftr := &fakeFTR{workers: 3, errs: []error{&fakeFault{msg: "w2 died", retry: true}}}
	var sizes []int
	err := RunRetry(ftr, 3, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(rt Runtime, j int) error {
			sizes = append(sizes, j)
			return ftr.next()
		})
	if err != nil {
		t.Fatalf("RunRetry: %v", err)
	}
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("attempt fleet sizes %v, want [3 2]", sizes)
	}
	if ftr.survCalls != 1 {
		t.Fatalf("Survivors called %d times", ftr.survCalls)
	}
}

func TestRunRetryStopsOnFatal(t *testing.T) {
	fatal := &fakeFault{msg: "deterministic", retry: false}
	ftr := &fakeFTR{workers: 3, errs: []error{fatal, nil}}
	err := RunRetry(ftr, 3, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		func(rt Runtime, j int) error { return ftr.next() })
	if !errors.Is(err, fatal) {
		t.Fatalf("fatal fault not returned verbatim: %v", err)
	}
	if ftr.attempts != 1 {
		t.Fatalf("retried a non-retryable fault (%d attempts)", ftr.attempts)
	}
}

func TestRunRetryExhaustsBudget(t *testing.T) {
	f := &fakeFault{msg: "flaky", retry: true}
	ftr := &fakeFTR{workers: 10, errs: []error{f, f, f, f, f}}
	err := RunRetry(ftr, 10, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(rt Runtime, j int) error { return ftr.next() })
	if !errors.Is(err, f) {
		t.Fatalf("want last fault after exhaustion, got %v", err)
	}
	if ftr.attempts != 3 {
		t.Fatalf("%d attempts, want exactly MaxAttempts", ftr.attempts)
	}
}

func TestRunRetryNoSurvivors(t *testing.T) {
	f := &fakeFault{msg: "everyone died", retry: true}
	ftr := &fakeFTR{workers: 1, errs: []error{f},
		survErr: errors.New("no surviving workers")}
	err := RunRetry(ftr, 1, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(rt Runtime, j int) error { return ftr.next() })
	if !errors.Is(err, f) {
		t.Fatalf("original fault lost: %v", err)
	}
	if ftr.attempts != 1 {
		t.Fatalf("retried with no survivors (%d attempts)", ftr.attempts)
	}
}

func TestRunRetryPlainRuntimeNoRetry(t *testing.T) {
	// A runtime without Survivors (e.g. Local) gets exactly one attempt even
	// for retryable faults.
	calls := 0
	err := RunRetry(Local{}, 2, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(rt Runtime, j int) error {
			calls++
			return &fakeFault{msg: "x", retry: true}
		})
	if err == nil || calls != 1 {
		t.Fatalf("plain runtime: %d calls, err %v", calls, err)
	}
}

func TestRunOverReplanMatchesRun(t *testing.T) {
	// Against Local (no faults possible) RunOverReplan is RunOver: its
	// single attempt must reproduce the in-process result exactly.
	r1 := make([]join.Key, 0, 600)
	r2 := make([]join.Key, 0, 600)
	for i := 0; i < 600; i++ {
		r1 = append(r1, join.Key(uint64(i%149)))
		r2 = append(r2, join.Key(uint64(i%131)))
	}
	model := cost.Model{Wi: 1, Wo: 0.2}
	cfg := Config{Seed: 7, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}}
	scheme, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Run(r1, r2, join.Equi{}, scheme, model, cfg)
	got, err := RunOverReplan(Local{}, r1, r2, join.Equi{}, 2,
		func(j int) (partition.Scheme, error) { return partition.NewHash(j, nil) },
		model, cfg)
	if err != nil {
		t.Fatalf("RunOverReplan: %v", err)
	}
	if got.Output != want.Output {
		t.Fatalf("output %d, want %d", got.Output, want.Output)
	}
}

func TestRunOverReplanPlanError(t *testing.T) {
	planErr := errors.New("stats unavailable")
	_, err := RunOverReplan(Local{}, nil, nil, join.Equi{}, 2,
		func(j int) (partition.Scheme, error) { return nil, planErr },
		cost.Model{Wi: 1}, Config{})
	if !errors.Is(err, planErr) {
		t.Fatalf("plan error lost: %v", err)
	}
}

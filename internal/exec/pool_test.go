package exec

import (
	"testing"

	"ewh/internal/join"
)

func TestClearTailDropsStalePayloads(t *testing.T) {
	// A pooled tuple buffer longer than the next job needs must not keep the
	// previous job's payload pointers reachable through its capacity tail.
	big := make([]Tuple[*int], 8)
	for i := range big {
		v := i
		big[i] = Tuple[*int]{Key: join.Key(i), Payload: &v}
	}
	small := clearTail(big[:3])
	if len(small) != 3 {
		t.Fatalf("length %d, want 3", len(small))
	}
	for i := 0; i < 3; i++ {
		if small[i].Payload == nil {
			t.Fatalf("live prefix slot %d was cleared", i)
		}
	}
	tail := big[3:8]
	for i, tu := range tail {
		if tu.Payload != nil || tu.Key != 0 {
			t.Fatalf("tail slot %d retains stale tuple %+v", 3+i, tu)
		}
	}
}

func TestTupleSlicePoolRoundTrip(t *testing.T) {
	// Whatever the pool hands back must have the requested length and a
	// cleared capacity tail, whether it was recycled or freshly made.
	for i := 0; i < 4; i++ {
		s := getTupleSlice[string](100)
		if len(s) != 100 {
			t.Fatalf("length %d, want 100", len(s))
		}
		for j := range s {
			s[j] = Tuple[string]{Key: join.Key(j), Payload: "x"}
		}
		putTupleSlice(s)
		smaller := getTupleSlice[string](10)
		if len(smaller) != 10 {
			t.Fatalf("length %d, want 10", len(smaller))
		}
		full := smaller[:cap(smaller)]
		for j := len(smaller); j < len(full); j++ {
			if full[j].Payload != "" {
				t.Fatalf("capacity slot %d retains stale payload %q", j, full[j].Payload)
			}
		}
		putTupleSlice(smaller)
	}
}

func TestKeyBufferPoolRoundTrip(t *testing.T) {
	s := GetKeyBuffer(64)
	if len(s) != 64 {
		t.Fatalf("length %d, want 64", len(s))
	}
	PutKeyBuffer(s)
	PutKeyBuffer(nil) // zero-cap buffers must be a no-op, not a pool entry
	s2 := GetKeyBuffer(16)
	if len(s2) != 16 {
		t.Fatalf("length %d, want 16", len(s2))
	}
}

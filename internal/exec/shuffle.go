package exec

import (
	"sync"

	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// routeFn batch-routes a shard of keys into b
// (partition.RouteBatchR1/R2 curried over a scheme).
type routeFn func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch)

// shuffled is one relation after the shuffle: worker w's tuples are the
// contiguous slice flat[off[w]:off[w+1]]. The whole relation lives in a
// single exactly-sized allocation, so the reduce phase reads (and may sort in
// place) per-worker slices with zero concatenation copies.
type shuffled[T any] struct {
	flat []T
	off  []int // len j+1
}

func (s *shuffled[T]) worker(w int) []T { return s.flat[s.off[w]:s.off[w+1]] }

// shuffleRelation routes items to j workers with a two-pass shuffle across
// mappers parallel shards. keys[i] is the routing key of items[i]; for bare
// key relations the two slices alias. Pass 1 batch-routes each shard exactly
// once, recording the receiver lists compactly (with per-worker counts
// tallied inside the routing loop); a barrier then computes exact
// per-(mapper, worker) write offsets; pass 2 replays the recorded routes and
// scatters items into disjoint ranges of one flat buffer. Recording routes
// instead of re-routing keeps randomized schemes deterministic and pays the
// routing cost once.
//
// batches provides per-mapper routing storage (reused across relations and,
// via the pool, across runs); alloc provides the flat buffer and may return
// unzeroed pooled memory — the scatter overwrites every slot.
func shuffleRelation[T any](items []T, keys []join.Key, j, mappers int,
	rngs []*stats.RNG, batches []partition.RouteBatch, route routeFn,
	alloc func(n int) []T) shuffled[T] {

	var wg sync.WaitGroup
	for mi := 0; mi < mappers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			lo, hi := shard(len(keys), mappers, mi)
			b := &batches[mi]
			b.Reset(j, hi-lo) // exact Routes capacity for fan-out-1 schemes
			route(keys[lo:hi], rngs[mi], b)
		}(mi)
	}
	wg.Wait()

	out := shuffled[T]{off: make([]int, j+1)}
	for w := 0; w < j; w++ {
		total := 0
		for mi := 0; mi < mappers; mi++ {
			total += batches[mi].Counts[w]
		}
		out.off[w+1] = out.off[w] + total
	}
	out.flat = alloc(out.off[j])

	// pos[mi*j+w] is mapper mi's next write index inside worker w's range;
	// mappers write disjoint ranges, so pass 2 needs no synchronization.
	pos := make([]int, mappers*j)
	for w := 0; w < j; w++ {
		c := out.off[w]
		for mi := 0; mi < mappers; mi++ {
			pos[mi*j+w] = c
			c += batches[mi].Counts[w]
		}
	}
	for mi := 0; mi < mappers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			lo, _ := shard(len(keys), mappers, mi)
			scatter(out.flat, pos[mi*j:(mi+1)*j], items[lo:], &batches[mi])
		}(mi)
	}
	wg.Wait()
	return out
}

// scatter places one mapper's shard into the flat buffer following the
// routes recorded in pass 1. p is the mapper's per-worker write cursor set;
// items is the shard (indexed from 0).
func scatter[T any](flat []T, p []int, items []T, b *partition.RouteBatch) {
	routes := b.Routes
	switch {
	case b.Fanout == 1:
		// One receiver per key: routes[i] pairs with items[i] directly. The
		// reslice pins len(items) == len(routes) so the items access needs no
		// bounds check inside the loop.
		items = items[:len(routes)]
		for ti, w := range routes {
			idx := p[w]
			flat[idx] = items[ti]
			p[w] = idx + 1
		}
	case b.Fanout > 1:
		f := b.Fanout
		for ri, ti := 0, 0; ri < len(routes); ri, ti = ri+f, ti+1 {
			item := items[ti]
			for _, w := range routes[ri : ri+f] {
				flat[p[w]] = item
				p[w]++
			}
		}
	default:
		ri := 0
		for ti, n := range b.Lens {
			item := items[ti]
			for _, w := range routes[ri : ri+int(n)] {
				flat[p[w]] = item
				p[w]++
			}
			ri += int(n)
		}
	}
}

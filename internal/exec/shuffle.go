package exec

import (
	"sync"

	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// routeFn batch-routes a shard of keys into b
// (partition.RouteBatchR1/R2 curried over a scheme).
type routeFn func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch)

// shuffled is one relation after the shuffle: worker w's tuples are the
// contiguous slice flat[off[w]:off[w+1]]. The whole relation lives in a
// single exactly-sized allocation, so the reduce phase reads (and may sort in
// place) per-worker slices with zero concatenation copies.
type shuffled[T any] struct {
	flat []T
	off  []int // len j+1
}

func (s *shuffled[T]) worker(w int) []T { return s.flat[s.off[w]:s.off[w+1]] }

// shuffleRelation routes items to j workers with a two-pass shuffle across
// mappers parallel shards. keys[i] is the routing key of items[i]; for bare
// key relations the two slices alias. Pass 1 batch-routes each shard exactly
// once, recording the receiver lists compactly (with per-worker counts
// tallied inside the routing loop); a barrier then computes exact
// per-(mapper, worker) write offsets; pass 2 replays the recorded routes and
// scatters items into disjoint ranges of one flat buffer. Recording routes
// instead of re-routing keeps randomized schemes deterministic and pays the
// routing cost once.
//
// batches provides per-mapper routing storage (reused across relations and,
// via the pool, across runs); alloc provides the flat buffer and may return
// unzeroed pooled memory — the scatter overwrites every slot.
func shuffleRelation[T any](items []T, keys []join.Key, j, mappers int,
	rngs []*stats.RNG, batches []partition.RouteBatch, route routeFn,
	alloc func(n int) []T) shuffled[T] {

	var wg sync.WaitGroup
	for mi := 0; mi < mappers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			lo, hi := shard(len(keys), mappers, mi)
			b := &batches[mi]
			b.Reset(j, hi-lo) // exact Routes capacity for fan-out-1 schemes
			route(keys[lo:hi], rngs[mi], b)
		}(mi)
	}
	wg.Wait()

	out := shuffled[T]{off: make([]int, j+1)}
	for w := 0; w < j; w++ {
		total := 0
		for mi := 0; mi < mappers; mi++ {
			total += batches[mi].Counts[w]
		}
		out.off[w+1] = out.off[w] + total
	}
	out.flat = alloc(out.off[j])

	// pos[mi*j+w] is mapper mi's next write index inside worker w's range;
	// mappers write disjoint ranges, so pass 2 needs no synchronization.
	pos := make([]int, mappers*j)
	for w := 0; w < j; w++ {
		c := out.off[w]
		for mi := 0; mi < mappers; mi++ {
			pos[mi*j+w] = c
			c += batches[mi].Counts[w]
		}
	}
	for mi := 0; mi < mappers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			lo, _ := shard(len(keys), mappers, mi)
			scatter(out.flat, pos[mi*j:(mi+1)*j], items[lo:], &batches[mi])
		}(mi)
	}
	wg.Wait()
	return out
}

// shufflePair runs the shuffle phase for both relations of a join — the
// exact phase Run performs before its reduce — with the two relations
// shuffled CONCURRENTLY: their routing and scatter passes are independent
// (separate batch storage, separate RNG streams split deterministically from
// cfg.Seed), so on multi-core runners relation 2's routing overlaps relation
// 1's scatter instead of waiting for it. keys1[i] is the routing key of
// items1[i] (aliasing for bare-key relations); alloc provides the flat
// buffers, typically from the pools.
func shufflePair[T1, T2 any](items1 []T1, keys1 []join.Key, items2 []T2, keys2 []join.Key,
	scheme partition.Scheme, cfg Config,
	alloc1 func(int) []T1, alloc2 func(int) []T2) (shuffled[T1], shuffled[T2]) {

	var s1 shuffled[T1]
	var s2 shuffled[T2]
	var wg sync.WaitGroup
	wg.Add(2)
	shufflePairAsync(items1, keys1, items2, keys2, scheme, cfg, alloc1, alloc2,
		func(s shuffled[T1]) { s1 = s; wg.Done() },
		func(s shuffled[T2]) { s2 = s; wg.Done() })
	wg.Wait()
	return s1, s2
}

// shufflePairAsync is shufflePair's streaming form: it returns immediately
// and calls done1/done2 (from the shuffling goroutines) the moment each
// relation's scatter completes, so a consumer can start draining relation
// 1 — e.g. writing its worker blocks onto sockets — while relation 2 is
// still routing. The callbacks must be cheap or hand off to another
// goroutine; per-mapper batch storage is recycled after both complete.
func shufflePairAsync[T1, T2 any](items1 []T1, keys1 []join.Key, items2 []T2, keys2 []join.Key,
	scheme partition.Scheme, cfg Config,
	alloc1 func(int) []T1, alloc2 func(int) []T2,
	done1 func(shuffled[T1]), done2 func(shuffled[T2])) {

	j := scheme.Workers()
	mappers := cfg.Mappers
	master := stats.NewRNG(cfg.Seed)
	rngs1 := make([]*stats.RNG, mappers)
	for i := range rngs1 {
		rngs1[i] = master.Split()
	}
	rngs2 := make([]*stats.RNG, mappers)
	for i := range rngs2 {
		rngs2[i] = master.Split()
	}
	route1 := func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
		partition.RouteBatchR1(scheme, keys, rng, b)
	}
	route2 := func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
		partition.RouteBatchR2(scheme, keys, rng, b)
	}
	b1, b2 := getBatches(mappers), getBatches(mappers)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		done1(shuffleRelation(items1, keys1, j, mappers, rngs1, b1, route1, alloc1))
	}()
	go func() {
		defer wg.Done()
		done2(shuffleRelation(items2, keys2, j, mappers, rngs2, b2, route2, alloc2))
	}()
	go func() {
		wg.Wait()
		putBatches(b1)
		putBatches(b2)
	}()
}

// KeyShuffle is the exported view of one shuffled bare-key relation: worker
// w's tuples are the contiguous slice Worker(w) of a single exactly-sized
// flat allocation, so a consumer (the reduce phase, or netexec's coordinator
// streaming blocks onto sockets) reads per-worker data with zero
// concatenation copies. Obtain pairs with ShufflePair; call Release when the
// data has been consumed to recycle the flat buffer.
type KeyShuffle struct {
	s shuffled[join.Key]
}

// Workers returns the number of per-worker slices.
func (k *KeyShuffle) Workers() int { return len(k.s.off) - 1 }

// Worker returns worker w's contiguous tuple block. The slice aliases the
// shuffle's flat buffer: it is valid until Release and may be sorted in
// place by an owning consumer.
func (k *KeyShuffle) Worker(w int) []join.Key { return k.s.worker(w) }

// Total returns the total routed tuple count across workers (the relation's
// network-tuple contribution; replication makes it exceed the input size).
func (k *KeyShuffle) Total() int { return k.s.off[len(k.s.off)-1] }

// Release recycles the flat buffer. No Worker slice may be used afterwards.
func (k *KeyShuffle) Release() {
	PutKeyBuffer(k.s.flat)
	k.s = shuffled[join.Key]{}
}

// ShufflePair routes both relations of a join to scheme's workers with the
// engine's two-pass zero-copy shuffle and returns the per-worker blocks.
// This is Run's shuffle phase made reusable: netexec's coordinator uses it
// to batch-route each relation once and then stream worker blocks over the
// wire. Deterministic for a fixed cfg.Seed and cfg.Mappers.
func ShufflePair(r1, r2 []join.Key, scheme partition.Scheme, cfg Config) (*KeyShuffle, *KeyShuffle) {
	cfg.defaults()
	s1, s2 := shufflePair(r1, r1, r2, r2, scheme, cfg, GetKeyBuffer, GetKeyBuffer)
	return &KeyShuffle{s1}, &KeyShuffle{s2}
}

// ShuffleKeys routes one bare-key relation to scheme's workers on the given
// side (rel 1 routes with RouteBatchR1, rel 2 with RouteBatchR2) — the
// single-relation form of ShufflePair. It is what a peer worker uses to
// re-shuffle its stage-1 matches by a broadcast plan (rel 1, Mappers 1 so
// the routing is identical on any worker), and what the stage driver uses to
// scatter a later stage's right relation. Deterministic for a fixed cfg.
func ShuffleKeys(keys []join.Key, scheme partition.Scheme, rel int, cfg Config) *KeyShuffle {
	cfg.defaults()
	j := scheme.Workers()
	master := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, cfg.Mappers)
	for i := range rngs {
		rngs[i] = master.Split()
	}
	route := func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
		partition.RouteBatchR1(scheme, keys, rng, b)
	}
	if rel == 2 {
		route = func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
			partition.RouteBatchR2(scheme, keys, rng, b)
		}
	}
	batches := getBatches(cfg.Mappers)
	s := shuffleRelation(keys, keys, j, cfg.Mappers, rngs, batches, route, GetKeyBuffer)
	putBatches(batches)
	return &KeyShuffle{s}
}

// KeyChunk is one mapper's routed sub-block for one worker: the tuples
// mapper Mapper routed to that worker, in route-emission order. Keys is a
// pooled buffer owned by the receiver (return with PutKeyBuffer once
// consumed). Concatenating one worker's chunks in ascending Mapper order
// reproduces, byte for byte, the worker's contiguous slice of the flat
// two-pass shuffle — which is what keeps chunk-streaming transports
// bit-identical to the in-process engine.
type KeyChunk struct {
	Mapper int
	Keys   []join.Key
}

// ChunkStream delivers one relation's routed sub-blocks per worker as the
// mappers finish routing, instead of after a whole-relation scatter barrier.
// Each worker's channel carries at most one chunk per mapper (empty
// sub-blocks are skipped) and is closed once every mapper has contributed,
// so `for c := range cs.Worker(w)` terminates. The channels are buffered to
// the mapper count: the producer NEVER blocks on a slow or absent consumer,
// which is what makes every error path drainable without deadlock.
type ChunkStream struct {
	workers int
	mappers int
	ch      []chan KeyChunk
}

func newChunkStream(workers, mappers int) *ChunkStream {
	cs := &ChunkStream{workers: workers, mappers: mappers, ch: make([]chan KeyChunk, workers)}
	for w := range cs.ch {
		cs.ch[w] = make(chan KeyChunk, mappers)
	}
	return cs
}

// Workers returns the receiver-side parallelism (the scheme's worker count).
func (cs *ChunkStream) Workers() int { return cs.workers }

// Mappers returns the producer-side parallelism — the maximum number of
// chunks any worker's channel will deliver.
func (cs *ChunkStream) Mappers() int { return cs.mappers }

// Worker returns worker w's chunk channel. The consumer owns each received
// chunk's buffer.
func (cs *ChunkStream) Worker(w int) <-chan KeyChunk { return cs.ch[w] }

// Drain consumes and recycles every undelivered chunk — the cleanup path
// when a consumer abandons the stream partway. Safe to call concurrently
// with (or after) normal consumption: each chunk is received exactly once,
// whoever gets it.
func (cs *ChunkStream) Drain() {
	for w := 0; w < cs.workers; w++ {
		for c := range cs.ch[w] {
			PutKeyBuffer(c.Keys)
		}
	}
}

// ShuffleKeysChunked routes one bare-key relation exactly as ShuffleKeys
// (identical RNG streams, identical routes) but skips the global flat
// scatter: each mapper scatters its shard locally into per-worker
// exact-sized pooled buffers the moment its routing pass completes, and
// emits them on the stream. A transport that frames chunks onto sockets as
// they arrive overlaps the relation's scatter with its own writes — the
// whole-relation barrier the two-pass shuffle imposes is gone, at the same
// total scatter cost.
func ShuffleKeysChunked(keys []join.Key, scheme partition.Scheme, rel int, cfg Config) *ChunkStream {
	cfg.defaults()
	master := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, cfg.Mappers)
	for i := range rngs {
		rngs[i] = master.Split()
	}
	return chunkedRelation(keys, scheme, rel, cfg, rngs)
}

// chunkScatter is scatter against per-worker local buffers instead of
// disjoint ranges of one flat buffer: the same route replay, the same
// emission order per worker, so a worker's chunks concatenate to exactly
// what the flat scatter would have put in its range.
func chunkScatter(bufs [][]join.Key, p []int, items []join.Key, b *partition.RouteBatch) {
	routes := b.Routes
	switch {
	case b.Fanout == 1:
		items = items[:len(routes)]
		for ti, w := range routes {
			bufs[w][p[w]] = items[ti]
			p[w]++
		}
	case b.Fanout > 1:
		f := b.Fanout
		for ri, ti := 0, 0; ri < len(routes); ri, ti = ri+f, ti+1 {
			item := items[ti]
			for _, w := range routes[ri : ri+f] {
				bufs[w][p[w]] = item
				p[w]++
			}
		}
	default:
		ri := 0
		for ti, n := range b.Lens {
			item := items[ti]
			for _, w := range routes[ri : ri+int(n)] {
				bufs[w][p[w]] = item
				p[w]++
			}
			ri += int(n)
		}
	}
}

// ShufflePairChunked is ShufflePair's streaming form for chunk-consuming
// transports: both relations route with the SAME deterministic RNG streams
// as shufflePairAsync (all relation-1 mapper streams split before relation
// 2's), but each resolves to a ChunkStream instead of a flat KeyShuffle.
func ShufflePairChunked(r1, r2 []join.Key, scheme partition.Scheme, cfg Config) (*ChunkStream, *ChunkStream) {
	cfg.defaults()
	master := stats.NewRNG(cfg.Seed)
	rngs1 := make([]*stats.RNG, cfg.Mappers)
	for i := range rngs1 {
		rngs1[i] = master.Split()
	}
	rngs2 := make([]*stats.RNG, cfg.Mappers)
	for i := range rngs2 {
		rngs2[i] = master.Split()
	}
	cs1 := chunkedRelation(r1, scheme, 1, cfg, rngs1)
	cs2 := chunkedRelation(r2, scheme, 2, cfg, rngs2)
	return cs1, cs2
}

// chunkedRelation is ShuffleKeysChunked's core with caller-supplied RNG
// streams (so paired relations split from one master, matching the flat
// pair shuffle).
func chunkedRelation(keys []join.Key, scheme partition.Scheme, rel int, cfg Config, rngs []*stats.RNG) *ChunkStream {
	j := scheme.Workers()
	route := func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
		partition.RouteBatchR1(scheme, keys, rng, b)
	}
	if rel == 2 {
		route = func(keys []join.Key, rng *stats.RNG, b *partition.RouteBatch) {
			partition.RouteBatchR2(scheme, keys, rng, b)
		}
	}
	cs := newChunkStream(j, cfg.Mappers)
	go func() {
		batches := getBatches(cfg.Mappers)
		var wg sync.WaitGroup
		for mi := 0; mi < cfg.Mappers; mi++ {
			wg.Add(1)
			go func(mi int) {
				defer wg.Done()
				lo, hi := shard(len(keys), cfg.Mappers, mi)
				b := &batches[mi]
				b.Reset(j, hi-lo)
				route(keys[lo:hi], rngs[mi], b)
				bufs := make([][]join.Key, j)
				for w := 0; w < j; w++ {
					if b.Counts[w] > 0 {
						bufs[w] = GetKeyBuffer(b.Counts[w])
					}
				}
				chunkScatter(bufs, make([]int, j), keys[lo:hi], b)
				for w := 0; w < j; w++ {
					if bufs[w] != nil {
						cs.ch[w] <- KeyChunk{Mapper: mi, Keys: bufs[w]}
					}
				}
			}(mi)
		}
		wg.Wait()
		putBatches(batches)
		for w := 0; w < j; w++ {
			close(cs.ch[w])
		}
	}()
	return cs
}

// scatter places one mapper's shard into the flat buffer following the
// routes recorded in pass 1. p is the mapper's per-worker write cursor set;
// items is the shard (indexed from 0).
func scatter[T any](flat []T, p []int, items []T, b *partition.RouteBatch) {
	routes := b.Routes
	switch {
	case b.Fanout == 1:
		// One receiver per key: routes[i] pairs with items[i] directly. The
		// reslice pins len(items) == len(routes) so the items access needs no
		// bounds check inside the loop.
		items = items[:len(routes)]
		for ti, w := range routes {
			idx := p[w]
			flat[idx] = items[ti]
			p[w] = idx + 1
		}
	case b.Fanout > 1:
		f := b.Fanout
		for ri, ti := 0, 0; ri < len(routes); ri, ti = ri+f, ti+1 {
			item := items[ti]
			for _, w := range routes[ri : ri+f] {
				flat[p[w]] = item
				p[w]++
			}
		}
	default:
		ri := 0
		for ti, n := range b.Lens {
			item := items[ti]
			for _, w := range routes[ri : ri+int(n)] {
				flat[p[w]] = item
				p[w]++
			}
			ri += int(n)
		}
	}
}

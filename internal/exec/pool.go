package exec

import (
	"reflect"
	"sync"

	"ewh/internal/join"
	"ewh/internal/partition"
)

// The engine's big transient buffers — the flat shuffled relations and each
// mapper's recorded routes — live only between a Run's shuffle and the end of
// its reduce phase, so they are recycled across calls. A pooled buffer is
// returned unzeroed: the shuffle overwrites every slot (the offsets cover the
// buffer exactly), which is what lets the hot path skip the 10s-of-MB memclr
// a fresh make would pay. That is safe for key buffers because join.Key is a
// pointer-free int64; pooled tuple buffers, whose payloads may carry
// pointers, additionally clear the capacity tail beyond the requested length
// (see getTupleSlice) so a shorter job cannot keep a longer job's payloads
// reachable past GC.

var keySlicePool sync.Pool // stores *[]join.Key

// GetKeyBuffer returns a pooled []join.Key of length n. The contents are
// unzeroed — callers must overwrite every slot (the engine's scatter does;
// netexec's decode fills it from the wire). Release with PutKeyBuffer.
func GetKeyBuffer(n int) []join.Key {
	if v := keySlicePool.Get(); v != nil {
		s := *v.(*[]join.Key)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]join.Key, n)
}

// PutKeyBuffer recycles a buffer obtained from GetKeyBuffer. The caller must
// not retain any slice of it.
func PutKeyBuffer(s []join.Key) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	keySlicePool.Put(&s)
}

var batchPool sync.Pool // stores *[]partition.RouteBatch

func getBatches(mappers int) []partition.RouteBatch {
	if v := batchPool.Get(); v != nil {
		b := *v.(*[]partition.RouteBatch)
		if cap(b) >= mappers {
			return b[:mappers]
		}
	}
	return make([]partition.RouteBatch, mappers)
}

func putBatches(b []partition.RouteBatch) {
	batchPool.Put(&b)
}

// tuplePools holds one sync.Pool per concrete Tuple[P] type (keyed by
// reflect.Type), so RunTuples' flat shuffle buffers are recycled like the
// bare-key path's. A package-level generic pool is not expressible directly;
// the one reflect lookup per relation per run is noise next to the shuffle.
var tuplePools sync.Map // reflect.Type -> *sync.Pool (stores *[]Tuple[P])

func tuplePoolFor[P any]() *sync.Pool {
	t := reflect.TypeFor[Tuple[P]]()
	if p, ok := tuplePools.Load(t); ok {
		return p.(*sync.Pool)
	}
	p, _ := tuplePools.LoadOrStore(t, &sync.Pool{})
	return p.(*sync.Pool)
}

// getTupleSlice returns a pooled []Tuple[P] of length n. Slots [0:n] are
// unzeroed (the scatter overwrites them); the capacity tail [n:cap] is
// cleared so stale payload pointers from a longer previous job don't stay
// reachable through the pooled backing array.
func getTupleSlice[P any](n int) []Tuple[P] {
	pool := tuplePoolFor[P]()
	if v := pool.Get(); v != nil {
		s := *v.(*[]Tuple[P])
		if cap(s) >= n {
			return clearTail(s[:n])
		}
	}
	return make([]Tuple[P], n)
}

// clearTail zeroes s[len(s):cap(s)]. The live prefix is left untouched: it is
// either about to be overwritten (scatter) or owned by the caller.
func clearTail[T any](s []T) []T {
	full := s[:cap(s)]
	clear(full[len(s):])
	return s
}

// putTupleSlice recycles a buffer obtained from getTupleSlice. The caller
// must not retain any slice of it.
func putTupleSlice[P any](s []Tuple[P]) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	tuplePoolFor[P]().Put(&s)
}

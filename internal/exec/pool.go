package exec

import (
	"sync"

	"ewh/internal/join"
	"ewh/internal/partition"
)

// The engine's big transient buffers — the flat shuffled relations and each
// mapper's recorded routes — live only between a Run's shuffle and the end of
// its reduce phase, so they are recycled across calls. A pooled buffer is
// returned unzeroed: the shuffle overwrites every slot (the offsets cover the
// buffer exactly), which is what lets the hot path skip the 10s-of-MB memclr
// a fresh make would pay.

var keySlicePool sync.Pool // stores *[]join.Key

func getKeySlice(n int) []join.Key {
	if v := keySlicePool.Get(); v != nil {
		s := *v.(*[]join.Key)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]join.Key, n)
}

func putKeySlice(s []join.Key) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	keySlicePool.Put(&s)
}

var batchPool sync.Pool // stores *[]partition.RouteBatch

func getBatches(mappers int) []partition.RouteBatch {
	if v := batchPool.Get(); v != nil {
		b := *v.(*[]partition.RouteBatch)
		if cap(b) >= mappers {
			return b[:mappers]
		}
	}
	return make([]partition.RouteBatch, mappers)
}

func putBatches(b []partition.RouteBatch) {
	batchPool.Put(&b)
}

package exec_test

// Cross-check harness for the persistent-session transport: the distributed
// RunTuplesOver and the multiway pipeline must be BIT-IDENTICAL to the
// in-process engine — same per-worker metrics, same aggregates, and the
// same emitted pair sequence per worker — across schemes, payload shapes
// and mapper counts, since every transport consumes the same shuffled
// blocks and runs the same deterministic pair join.

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/stats"
	"ewh/internal/workload"
)

func dialLoopbackSession(t *testing.T, n int) *netexec.Session {
	t.Helper()
	sess, err := netexec.Dial(startLoopbackWorkers(t, n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

func encodeKeyLE(dst []byte, k join.Key) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(k))
}

type emittedPair struct {
	a, b exec.Tuple[join.Key]
}

func TestCrossCheckSessionTuples(t *testing.T) {
	const maxWorkers = 8
	sess := dialLoopbackSession(t, maxWorkers)
	mapperCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for seed := uint64(400); seed < 402; seed++ {
		rng := stats.NewRNG(seed)
		n1 := 300 + int(rng.Int64n(700))
		n2 := 300 + int(rng.Int64n(700))
		domain := 100 + rng.Int64n(500)
		k1 := netRandKeys(n1, domain, seed+1)
		k2 := netRandKeys(n2, domain, seed+2)
		r1 := make([]exec.Tuple[join.Key], n1)
		for i, k := range k1 {
			r1[i] = exec.Tuple[join.Key]{Key: k, Payload: k * 5}
		}
		r2 := make([]exec.Tuple[join.Key], n2)
		for i, k := range k2 {
			r2[i] = exec.Tuple[join.Key]{Key: k, Payload: k * 9}
		}
		cond := join.NewBand(2)
		want := localjoin.NestedLoopCount(k1, k2, cond)

		opts := core.Options{J: 6, Model: netModel, Seed: seed + 3}
		schemes := []partition.Scheme{partition.NewCI(4)}
		if csio, err := core.PlanCSIO(k1, k2, cond, opts); err == nil {
			schemes = append(schemes, csio.Scheme)
		} else {
			t.Fatal(err)
		}
		if bcast, err := partition.NewBroadcast(5); err == nil {
			schemes = append(schemes, bcast)
		}

		for _, s := range schemes {
			for _, mappers := range mapperCounts {
				id := fmt.Sprintf("seed %d %s mappers=%d", seed, s.Name(), mappers)
				cfg := exec.Config{Seed: seed + 4, Mappers: mappers}
				run := func(rt exec.Runtime, e1, e2 exec.PayloadEncoder[join.Key]) ([][]emittedPair, *exec.Result) {
					perWorker := make([][]emittedPair, s.Workers())
					res, err := exec.RunTuplesOver(rt, r1, r2, cond, s, netModel, cfg, e1, e2,
						func(w int, a, b exec.Tuple[join.Key]) {
							perWorker[w] = append(perWorker[w], emittedPair{a, b})
						})
					if err != nil {
						t.Fatalf("%s: %v", id, err)
					}
					return perWorker, res
				}
				localPairs, localRes := run(exec.Local{}, nil, nil)
				sessPairs, sessRes := run(sess, encodeKeyLE, encodeKeyLE)

				if localRes.Output != want {
					t.Fatalf("%s: local output %d, ground truth %d", id, localRes.Output, want)
				}
				if sessRes.Output != localRes.Output || sessRes.NetworkTuples != localRes.NetworkTuples ||
					sessRes.MaxWork != localRes.MaxWork || sessRes.TotalWork != localRes.TotalWork {
					t.Errorf("%s: aggregates differ: sess %v local %v", id, sessRes, localRes)
				}
				for w := range localRes.Workers {
					if sessRes.Workers[w] != localRes.Workers[w] {
						t.Errorf("%s: worker %d metrics differ: sess %+v local %+v",
							id, w, sessRes.Workers[w], localRes.Workers[w])
					}
					if len(sessPairs[w]) != len(localPairs[w]) {
						t.Fatalf("%s: worker %d pair counts differ: sess %d local %d",
							id, w, len(sessPairs[w]), len(localPairs[w]))
					}
					for i := range localPairs[w] {
						if sessPairs[w][i] != localPairs[w][i] {
							t.Fatalf("%s: worker %d pair %d differs: sess %+v local %+v",
								id, w, i, sessPairs[w][i], localPairs[w][i])
						}
					}
				}
			}
		}
	}
}

func TestCrossCheckSessionRunOverSchemes(t *testing.T) {
	// The bare-key session path against exec.Run and against the one-shot
	// netexec.Run: all three transports must agree on every metric.
	const maxWorkers = 8
	addrs := startLoopbackWorkers(t, maxWorkers)
	sess, err := netexec.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	for seed := uint64(500); seed < 502; seed++ {
		rng := stats.NewRNG(seed)
		domain := 100 + rng.Int64n(500)
		r1 := netRandKeys(400+int(rng.Int64n(600)), domain, seed+1)
		r2 := netRandKeys(400+int(rng.Int64n(600)), domain, seed+2)
		for _, cond := range []join.Condition{join.Equi{}, join.NewBand(3), join.Inequality{Op: join.LessEq}} {
			opts := core.Options{J: 6, Model: netModel, Seed: seed + 3}
			ci, err := core.PlanCI(opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, mappers := range []int{1, 4} {
				cfg := exec.Config{Seed: seed + 4, Mappers: mappers}
				id := fmt.Sprintf("seed %d %v mappers=%d", seed, cond, mappers)
				local := exec.Run(r1, r2, cond, ci.Scheme, netModel, cfg)
				oneShot, err := netexec.Run(addrs, r1, r2, cond, ci.Scheme, netModel, cfg)
				if err != nil {
					t.Fatalf("%s: one-shot: %v", id, err)
				}
				sessRes, err := exec.RunOver(sess, r1, r2, cond, ci.Scheme, netModel, cfg)
				if err != nil {
					t.Fatalf("%s: session: %v", id, err)
				}
				for w := range local.Workers {
					if sessRes.Workers[w] != local.Workers[w] || oneShot.Workers[w] != local.Workers[w] {
						t.Errorf("%s: worker %d metrics differ: sess %+v oneshot %+v local %+v",
							id, w, sessRes.Workers[w], oneShot.Workers[w], local.Workers[w])
					}
				}
				if sessRes.Output != local.Output || sessRes.NetworkTuples != local.NetworkTuples {
					t.Errorf("%s: aggregates differ: sess %v local %v", id, sessRes, local)
				}
			}
		}
	}
}

func TestCrossCheckSessionMultiway(t *testing.T) {
	// The coordinator-relay path (the tracked baseline): bit-identical to
	// the in-process engine including every per-worker metric, because both
	// re-plan stage 2 with CSIO over the identical materialized intermediate.
	const maxWorkers = 8
	sess := dialLoopbackSession(t, maxWorkers)

	for seed := uint64(600); seed < 603; seed++ {
		rng := stats.NewRNG(seed)
		n := 400 + int(rng.Int64n(600))
		domain := 80 + rng.Int64n(300)
		q := multiway.Query{
			R1: netRandKeys(n, domain, seed+1),
			Mid: multiway.MidRelation{
				A: netRandKeys(n, domain, seed+2),
				B: netRandKeys(n, domain, seed+3),
			},
			R3:    netRandKeys(n, domain, seed+4),
			CondA: join.NewBand(1),
			CondB: join.Equi{},
		}
		opts := core.Options{J: 5, Model: netModel, Seed: seed + 5}
		for _, mappers := range []int{1, 4} {
			cfg := exec.Config{Seed: seed + 6, Mappers: mappers}
			id := fmt.Sprintf("seed %d mappers=%d", seed, mappers)
			local, err := multiway.ExecuteOver(exec.Local{}, q, opts, cfg)
			if err != nil {
				t.Fatalf("%s: local: %v", id, err)
			}
			dist, err := multiway.ExecuteOverRelay(sess, q, opts, cfg)
			if err != nil {
				t.Fatalf("%s: session: %v", id, err)
			}
			if dist.Output != local.Output || dist.Intermediate != local.Intermediate {
				t.Fatalf("%s: results differ: sess (out=%d mid=%d) local (out=%d mid=%d)",
					id, dist.Output, dist.Intermediate, local.Output, local.Intermediate)
			}
			if len(dist.Stages) != len(local.Stages) {
				t.Fatalf("%s: stage counts differ", id)
			}
			for si := range local.Stages {
				le, de := local.Stages[si].Exec, dist.Stages[si].Exec
				if (le == nil) != (de == nil) {
					t.Fatalf("%s: stage %d presence differs", id, si)
				}
				if le == nil {
					continue
				}
				for w := range le.Workers {
					if de.Workers[w] != le.Workers[w] {
						t.Errorf("%s: stage %d worker %d metrics differ: sess %+v local %+v",
							id, si, w, de.Workers[w], le.Workers[w])
					}
				}
			}
		}
	}
}

func TestCrossCheckSessionMultiwayPeerCSIO(t *testing.T) {
	// The content-sensitive peer path: the stage-2 plan is a genuine CSIO
	// equi-weight histogram built from DISTRIBUTED statistics — each worker
	// summarizes its local intermediate, only the summaries reach the
	// coordinator. On a skewed (Zipf) workload, across seeds and worker
	// counts: (1) zero pairs transit the coordinator; (2) Output and
	// Intermediate are bit-identical to the coordinator-relay baseline AND
	// the in-process engine; (3) stage-1 per-worker metrics are
	// bit-identical to in-process (same plan, same shuffle); (4) the
	// replanned stage-2 scheme really is the content-sensitive one (no
	// silent fallback on this workload).
	const maxWorkers = 8
	sess := dialLoopbackSession(t, maxWorkers)

	for seed := uint64(900); seed < 903; seed++ {
		rng := stats.NewRNG(seed)
		n := 500 + int(rng.Int64n(500))
		domain := int64(200 + rng.Int64n(400))
		for _, workers := range []int{2, 4} {
			for _, condB := range []join.Condition{join.Equi{}, join.NewBand(2)} {
				q := multiway.Query{
					R1: workload.Zipfian(n, domain, 0.9, seed+1),
					Mid: multiway.MidRelation{
						A: workload.Zipfian(n, domain, 0.9, seed+2),
						B: workload.Zipfian(n, domain, 1.1, seed+3),
					},
					R3:    workload.Zipfian(n, domain, 0.9, seed+4),
					CondA: join.NewBand(1),
					CondB: condB,
				}
				opts := core.Options{J: workers, Model: netModel, Seed: seed + 5}
				cfg := exec.Config{Seed: seed + 6, Mappers: 2}
				id := fmt.Sprintf("seed %d J=%d condB %v", seed, workers, condB)

				local, err := multiway.Execute(q, opts, cfg)
				if err != nil {
					t.Fatalf("%s: local: %v", id, err)
				}
				before := sess.RelayedPairs()
				peer, err := multiway.ExecuteOverStage2(sess, q, opts, cfg, multiway.Stage2CSIO)
				if err != nil {
					t.Fatalf("%s: csio peer: %v", id, err)
				}
				if relayed := sess.RelayedPairs() - before; relayed != 0 {
					t.Fatalf("%s: %d intermediate pairs transited the coordinator on the CSIO-peer path",
						id, relayed)
				}
				relay, err := multiway.ExecuteOverRelay(sess, q, opts, cfg)
				if err != nil {
					t.Fatalf("%s: relay: %v", id, err)
				}

				for what, got := range map[string]*multiway.Result{"relay": relay, "local": local} {
					if peer.Output != got.Output || peer.Intermediate != got.Intermediate {
						t.Fatalf("%s: results differ: csio-peer (out=%d mid=%d) %s (out=%d mid=%d)",
							id, peer.Output, peer.Intermediate, what, got.Output, got.Intermediate)
					}
				}
				l1, p1 := local.Stages[0].Exec, peer.Stages[0].Exec
				for w := range l1.Workers {
					if p1.Workers[w] != l1.Workers[w] {
						t.Errorf("%s: stage 1 worker %d metrics differ: peer %+v local %+v",
							id, w, p1.Workers[w], l1.Workers[w])
					}
				}
				if s2 := peer.Stages[1].Exec.Scheme; s2 != "CSIO@peer" {
					t.Errorf("%s: stage 2 ran %q, want the distributed-statistics CSIO plan", id, s2)
				}
				// The CSIO plan may regionalize to fewer than J workers; the
				// intermediate must still be fully accounted for. Only an
				// undercount is assertable: region schemes legitimately
				// REPLICATE a tuple to every region whose row range holds
				// its key (and the CI fallback to a full grid row), so the
				// delivered total may exceed the match count. Duplicate
				// delivery of one contribution is excluded separately by
				// the peer protocol's exact per-sender count binding.
				var in1 int64
				for _, w := range peer.Stages[1].Exec.Workers {
					in1 += w.InputR1
				}
				if in1 < peer.Intermediate {
					t.Errorf("%s: stage-2 workers received %d intermediate tuples, stage 1 matched %d",
						id, in1, peer.Intermediate)
				}
			}
		}
	}
}

// localIntermediate reproduces the multiway stage-1 materialization
// in-process: the matched Mid rows' B keys, concatenated over workers in
// worker order — the deterministic sequence the peer path's senders hold.
func localIntermediate(t *testing.T, q multiway.Query, opts core.Options, cfg exec.Config) []join.Key {
	t.Helper()
	plan1, err := core.PlanCSIO(q.R1, q.Mid.A, q.CondA, opts)
	if err != nil {
		t.Fatal(err)
	}
	mid := make([]exec.Tuple[join.Key], len(q.Mid.A))
	for i := range mid {
		mid[i] = exec.Tuple[join.Key]{Key: q.Mid.A[i], Payload: q.Mid.B[i]}
	}
	perWorker := make([][]join.Key, plan1.Scheme.Workers())
	if _, err := exec.RunTuplesOver(exec.Local{}, exec.WrapKeys(q.R1), mid, q.CondA,
		plan1.Scheme, netModel, cfg, nil, nil,
		func(w int, _ exec.Tuple[struct{}], b exec.Tuple[join.Key]) {
			perWorker[w] = append(perWorker[w], b.Payload)
		}); err != nil {
		t.Fatal(err)
	}
	var inter []join.Key
	for _, pw := range perWorker {
		inter = append(inter, pw...)
	}
	return inter
}

func TestCrossCheckSessionMultiwayPeer(t *testing.T) {
	// The peer-shuffle path in its content-insensitive modes (the stage-2
	// plan broadcast BEFORE stage 1 runs): stage-1 intermediates re-shuffle
	// directly worker→worker. Asserted here: (1) not a single matched pair
	// transits the coordinator (the session's relayed-pairs counter stays
	// flat), while the relay path moves the whole intermediate through it;
	// (2) Output and Intermediate are bit-identical to the in-process
	// engine; (3) stage-1 per-worker metrics are bit-identical to
	// in-process; (4) for an equality stage-2 predicate the peer-assembled
	// stage-2 blocks yield per-worker metrics bit-identical to an
	// in-process run of the same content-deterministic Hash plan over the
	// relay's intermediate. (The CSIO distributed-statistics mode has its
	// own crosscheck below.)
	const maxWorkers = 8
	sess := dialLoopbackSession(t, maxWorkers)

	for seed := uint64(700); seed < 703; seed++ {
		rng := stats.NewRNG(seed)
		n := 400 + int(rng.Int64n(600))
		domain := 80 + rng.Int64n(300)
		for _, condB := range []join.Condition{join.Equi{}, join.NewBand(2)} {
			q := multiway.Query{
				R1: netRandKeys(n, domain, seed+1),
				Mid: multiway.MidRelation{
					A: netRandKeys(n, domain, seed+2),
					B: netRandKeys(n, domain, seed+3),
				},
				R3:    netRandKeys(n, domain, seed+4),
				CondA: join.NewBand(1),
				CondB: condB,
			}
			opts := core.Options{J: 5, Model: netModel, Seed: seed + 5}
			for _, mappers := range []int{1, 4} {
				cfg := exec.Config{Seed: seed + 6, Mappers: mappers}
				id := fmt.Sprintf("seed %d condB %v mappers=%d", seed, condB, mappers)

				local, err := multiway.Execute(q, opts, cfg)
				if err != nil {
					t.Fatalf("%s: local: %v", id, err)
				}
				mode := multiway.Stage2CI
				if _, isEqui := condB.(join.Equi); isEqui {
					mode = multiway.Stage2Hash
				}
				before := sess.RelayedPairs()
				peer, err := multiway.ExecuteOverStage2(sess, q, opts, cfg, mode)
				if err != nil {
					t.Fatalf("%s: peer: %v", id, err)
				}
				if relayed := sess.RelayedPairs() - before; relayed != 0 {
					t.Fatalf("%s: %d intermediate pairs transited the coordinator on the peer path",
						id, relayed)
				}
				if peer.Output != local.Output || peer.Intermediate != local.Intermediate {
					t.Fatalf("%s: results differ: peer (out=%d mid=%d) local (out=%d mid=%d)",
						id, peer.Output, peer.Intermediate, local.Output, local.Intermediate)
				}
				// Stage 1 is the identical shuffle and join on both paths.
				l1, p1 := local.Stages[0].Exec, peer.Stages[0].Exec
				for w := range l1.Workers {
					if p1.Workers[w] != l1.Workers[w] {
						t.Errorf("%s: stage 1 worker %d metrics differ: peer %+v local %+v",
							id, w, p1.Workers[w], l1.Workers[w])
					}
				}
				// The relay path moves every intermediate tuple through the
				// coordinator as a matched pair; the delta is the tracked
				// baseline the peer path eliminates.
				relayBefore := sess.RelayedPairs()
				if _, err := multiway.ExecuteOverRelay(sess, q, opts, cfg); err != nil {
					t.Fatalf("%s: relay: %v", id, err)
				}
				if relayed := sess.RelayedPairs() - relayBefore; relayed < local.Intermediate {
					t.Errorf("%s: relay path relayed %d pairs, expected at least the %d intermediates",
						id, relayed, local.Intermediate)
				}

				// Pair-for-pair stage-2 check for the content-deterministic
				// Hash plan: same intermediate multiset per worker ⇒ same
				// per-worker inputs, outputs and modeled work.
				if _, isEqui := condB.(join.Equi); !isEqui {
					continue
				}
				scheme2, err := multiway.PeerStage2Scheme(condB, opts.J)
				if err != nil {
					t.Fatal(err)
				}
				inter := localIntermediate(t, q, opts, cfg)
				ref := exec.Run(inter, q.R3, condB, scheme2, netModel, cfg)
				p2 := peer.Stages[1].Exec
				if len(ref.Workers) != len(p2.Workers) {
					t.Fatalf("%s: stage 2 worker counts differ: ref %d peer %d",
						id, len(ref.Workers), len(p2.Workers))
				}
				for w := range ref.Workers {
					if p2.Workers[w] != ref.Workers[w] {
						t.Errorf("%s: stage 2 worker %d metrics differ: peer %+v reference %+v",
							id, w, p2.Workers[w], ref.Workers[w])
					}
				}
			}
		}
	}
}

func TestCrossCheckOverlappedStage2(t *testing.T) {
	// Stage-overlapped dispatch: the coordinator opens the stage-2 peer jobs
	// and streams their right relation WHILE stage 1 is still running — the
	// exact peer counts bind late over PEERBIND once stage 1 settles. Across
	// worker counts, seeds and both the pre-built Hash plan and the
	// stats-deferred Auto replan: the session's overlap counter must move
	// (the pipelining actually engaged, it is not a silent fallback to the
	// sequential open), the output must stay pair-identical to the
	// in-process engine, and not one pair may transit the coordinator.
	for _, workers := range []int{2, 4} {
		sess := dialLoopbackSession(t, workers)
		for seed := uint64(1100); seed < 1103; seed++ {
			rng := stats.NewRNG(seed)
			n := 500 + int(rng.Int64n(500))
			domain := int64(200 + rng.Int64n(400))
			q := multiway.Query{
				R1: workload.Zipfian(n, domain, 0.9, seed+1),
				Mid: multiway.MidRelation{
					A: workload.Zipfian(n, domain, 0.9, seed+2),
					B: workload.Zipfian(n, domain, 1.1, seed+3),
				},
				R3:    workload.Zipfian(n, domain, 0.9, seed+4),
				CondA: join.NewBand(1),
				CondB: join.Equi{},
			}
			opts := core.Options{J: workers, Model: netModel, Seed: seed + 5}
			cfg := exec.Config{Seed: seed + 6, Mappers: 2}

			local, err := multiway.Execute(q, opts, cfg)
			if err != nil {
				t.Fatalf("J=%d seed %d: local: %v", workers, seed, err)
			}
			for _, mode := range []multiway.Stage2Mode{multiway.Stage2Hash, multiway.Stage2Auto} {
				id := fmt.Sprintf("J=%d seed %d mode=%v", workers, seed, mode)
				relayedBefore := sess.RelayedPairs()
				overlapBefore := sess.OverlappedStage2()
				res, err := multiway.ExecuteOverStage2(sess, q, opts, cfg, mode)
				if err != nil {
					t.Fatalf("%s: %v", id, err)
				}
				if res.Output != local.Output || res.Intermediate != local.Intermediate {
					t.Fatalf("%s: results differ: peer (out=%d mid=%d) local (out=%d mid=%d)",
						id, res.Output, res.Intermediate, local.Output, local.Intermediate)
				}
				if relayed := sess.RelayedPairs() - relayedBefore; relayed != 0 {
					t.Fatalf("%s: %d pairs transited the coordinator", id, relayed)
				}
				if d := sess.OverlappedStage2() - overlapBefore; d <= 0 {
					t.Errorf("%s: no stage-2 stream overlapped stage 1 (counter moved %d)", id, d)
				}
			}
		}
	}
}

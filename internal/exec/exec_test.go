package exec

import (
	"testing"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

var model = cost.Model{Wi: 1, Wo: 0.2}

func randKeys(n int, domain int64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(domain)
	}
	return out
}

func zipfKeys(n int, domain int64, z float64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	zf := stats.NewZipf(domain, z)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = zf.Draw(r)
	}
	return out
}

// TestExactOutputAllSchemes is the central correctness property: for every
// scheme, the engine's total output must equal the nested-loop ground truth
// exactly — result completeness with no duplicates (§II problem statement).
func TestExactOutputAllSchemes(t *testing.T) {
	r1 := randKeys(1500, 800, 1)
	r2 := randKeys(1200, 800, 2)
	conds := []join.Condition{join.NewBand(0), join.NewBand(3), join.Inequality{Op: join.LessEq}}
	for _, cond := range conds {
		want := localjoin.NestedLoopCount(r1, r2, cond)
		opts := core.Options{J: 6, Model: model, Seed: 7}

		ci, err := core.PlanCI(opts)
		if err != nil {
			t.Fatal(err)
		}
		schemes := []partition.Scheme{ci.Scheme}

		if _, isIneq := cond.(join.Inequality); !isIneq {
			// CSI and CSIO target low-selectivity monotonic joins; the
			// inequality join (half the Cartesian product) only runs on CI.
			csio, err := core.PlanCSIO(r1, r2, cond, opts)
			if err != nil {
				t.Fatalf("%v: PlanCSIO: %v", cond, err)
			}
			csi, err := core.PlanCSI(r1, r2, cond, 64, opts)
			if err != nil {
				t.Fatalf("%v: PlanCSI: %v", cond, err)
			}
			schemes = append(schemes, csio.Scheme, csi.Scheme)
		}

		for _, s := range schemes {
			res := Run(r1, r2, cond, s, model, Config{Seed: 11})
			if res.Output != want {
				t.Errorf("%v / %s: output %d, want %d", cond, s.Name(), res.Output, want)
			}
		}
	}
}

func TestExactOutputUnderSkew(t *testing.T) {
	r1 := zipfKeys(2000, 500, 1.0, 3)
	r2 := zipfKeys(2000, 500, 1.0, 4)
	cond := join.NewBand(2)
	want := localjoin.NestedLoopCount(r1, r2, cond)
	opts := core.Options{J: 8, Model: model, Seed: 5}
	csio, err := core.PlanCSIO(r1, r2, cond, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(r1, r2, cond, csio.Scheme, model, Config{Seed: 6})
	if res.Output != want {
		t.Fatalf("skewed CSIO output %d, want %d", res.Output, want)
	}
}

func TestMetricsConsistency(t *testing.T) {
	r1 := randKeys(1000, 400, 10)
	r2 := randKeys(1000, 400, 11)
	cond := join.NewBand(1)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 4, Model: model, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(r1, r2, cond, plan.Scheme, model, Config{Seed: 13, BytesPerTuple: 16})
	var sumIn, sumOut int64
	var maxWork float64
	for _, w := range res.Workers {
		sumIn += w.Input()
		sumOut += w.Output
		if w.Work > maxWork {
			maxWork = w.Work
		}
	}
	if sumIn != res.NetworkTuples {
		t.Errorf("network %d != sum of inputs %d", res.NetworkTuples, sumIn)
	}
	if sumOut != res.Output {
		t.Errorf("output %d != sum %d", res.Output, sumOut)
	}
	if maxWork != res.MaxWork {
		t.Errorf("MaxWork %v != computed %v", res.MaxWork, maxWork)
	}
	if res.MemoryBytes != sumIn*16 {
		t.Errorf("memory %d != %d", res.MemoryBytes, sumIn*16)
	}
	if res.MaxInput() <= 0 || res.MaxOutput() < 0 {
		t.Error("max metrics not populated")
	}
}

func TestCIReplicationShowsInNetwork(t *testing.T) {
	// CI must ship strictly more tuples than the region schemes on a
	// low-selectivity join.
	r1 := randKeys(3000, 3000, 20)
	r2 := randKeys(3000, 3000, 21)
	cond := join.NewBand(2)
	opts := core.Options{J: 16, Model: model, Seed: 22}
	ci, _ := core.PlanCI(opts)
	csio, err := core.PlanCSIO(r1, r2, cond, opts)
	if err != nil {
		t.Fatal(err)
	}
	resCI := Run(r1, r2, cond, ci.Scheme, model, Config{Seed: 23})
	resCSIO := Run(r1, r2, cond, csio.Scheme, model, Config{Seed: 23})
	if resCI.NetworkTuples <= resCSIO.NetworkTuples {
		t.Fatalf("CI network %d not above CSIO %d", resCI.NetworkTuples, resCSIO.NetworkTuples)
	}
	// CI's replication factor is rows+cols = 8 for a 4x4 grid over 6000 tuples.
	rows, cols := ci.Scheme.(*partition.CI).Grid()
	wantNet := int64(len(r1)*cols + len(r2)*rows)
	if resCI.NetworkTuples != wantNet {
		t.Fatalf("CI network %d, want %d", resCI.NetworkTuples, wantNet)
	}
}

func TestEngineConfigDefaults(t *testing.T) {
	r1 := randKeys(100, 50, 30)
	r2 := randKeys(100, 50, 31)
	ci, _ := core.PlanCI(core.Options{J: 2, Model: model})
	res := Run(r1, r2, join.Equi{}, ci.Scheme, model, Config{})
	if res.WallTime <= 0 {
		t.Error("wall time not measured")
	}
	if len(res.Workers) != ci.Scheme.Workers() {
		t.Error("worker metrics length mismatch")
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkRunCSIOBand(b *testing.B) {
	r1 := randKeys(200000, 200000, 40)
	r2 := randKeys(200000, 200000, 41)
	cond := join.NewBand(2)
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: 8, Model: model, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(r1, r2, cond, plan.Scheme, model, Config{Seed: 43})
	}
}

// TestExactOutputRandomConfigs fuzzes the full pipeline: random sizes, band
// widths, machine counts and skew; CSIO must always produce the exact join.
func TestExactOutputRandomConfigs(t *testing.T) {
	for seed := uint64(100); seed < 112; seed++ {
		r := stats.NewRNG(seed)
		n1 := 200 + int(r.Int64n(1500))
		n2 := 200 + int(r.Int64n(1500))
		domain := 50 + r.Int64n(2000)
		beta := r.Int64n(5)
		j := 1 + int(r.Int64n(12))
		z := float64(r.Int64n(3)) * 0.4
		var r1, r2 []join.Key
		if z > 0 {
			r1 = zipfKeys(n1, domain, z, seed+1)
			r2 = zipfKeys(n2, domain, z, seed+2)
		} else {
			r1 = randKeys(n1, domain, seed+1)
			r2 = randKeys(n2, domain, seed+2)
		}
		cond := join.NewBand(beta)
		want := localjoin.NestedLoopCount(r1, r2, cond)
		plan, err := core.PlanCSIO(r1, r2, cond, core.Options{
			J: j, Model: model, Seed: seed + 3, DisableFallback: true,
		})
		if err != nil {
			t.Fatalf("seed %d (n1=%d n2=%d beta=%d j=%d): %v", seed, n1, n2, beta, j, err)
		}
		res := Run(r1, r2, cond, plan.Scheme, model, Config{Seed: seed + 4})
		if res.Output != want {
			t.Errorf("seed %d (n1=%d n2=%d domain=%d beta=%d j=%d z=%.1f): output %d, want %d",
				seed, n1, n2, domain, beta, j, z, res.Output, want)
		}
	}
}

func TestRunMoreWorkersThanTuples(t *testing.T) {
	r1 := randKeys(5, 10, 60)
	r2 := randKeys(5, 10, 61)
	plan, err := core.PlanCSIO(r1, r2, join.Equi{}, core.Options{J: 16, Model: model, Seed: 62, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(r1, r2, join.Equi{}, plan.Scheme, model, Config{Seed: 63})
	if want := localjoin.NestedLoopCount(r1, r2, join.Equi{}); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

func TestRunDeterministicWithFixedMappers(t *testing.T) {
	// With a fixed mapper count and seed, even the randomized CI scheme
	// produces identical shuffles and metrics.
	r1 := randKeys(2000, 1000, 70)
	r2 := randKeys(2000, 1000, 71)
	cond := join.NewBand(1)
	plan, err := core.PlanCI(core.Options{J: 4, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 72, Mappers: 3}
	a := Run(r1, r2, cond, plan.Scheme, model, cfg)
	b := Run(r1, r2, cond, plan.Scheme, model, cfg)
	for i := range a.Workers {
		if a.Workers[i] != b.Workers[i] {
			// Work is derived; compare the counts that drive it.
			t.Fatalf("worker %d metrics differ across identical runs", i)
		}
	}
	if a.Output != b.Output || a.NetworkTuples != b.NetworkTuples {
		t.Fatal("aggregate metrics differ across identical runs")
	}
}

func TestExactOutputHashAndBroadcast(t *testing.T) {
	// One sharp heavy hitter: 30% of R1 is key 7.
	r1 := randKeys(2000, 300, 80)
	for i := 0; i < 600; i++ {
		r1[i] = 7
	}
	r2 := randKeys(1500, 300, 81)
	want := localjoin.NestedLoopCount(r1, r2, join.Equi{})

	heavy := partition.DetectHeavyKeys(r1, 0.1)
	if len(heavy) != 1 || heavy[0] != 7 {
		t.Fatalf("heavy keys %v, want [7]", heavy)
	}
	plain, err := partition.NewHash(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	prpd, err := partition.NewHash(6, heavy)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := partition.NewBroadcast(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []partition.Scheme{plain, prpd, bcast} {
		res := Run(r1, r2, join.Equi{}, s, model, Config{Seed: 82})
		if res.Output != want {
			t.Errorf("%s: output %d, want %d", s.Name(), res.Output, want)
		}
	}
	// PRPD must beat plain hash on max input under the heavy hitter.
	resPlain := Run(r1, r2, join.Equi{}, plain, model, Config{Seed: 83})
	resPRPD := Run(r1, r2, join.Equi{}, prpd, model, Config{Seed: 83})
	if len(heavy) > 0 && resPRPD.MaxInput() >= resPlain.MaxInput() {
		t.Errorf("PRPD max input %d not below plain hash %d (heavy=%v)",
			resPRPD.MaxInput(), resPlain.MaxInput(), heavy)
	}
}

func TestBroadcastWorksForBandJoins(t *testing.T) {
	// Broadcast is condition-agnostic, unlike Hash.
	r1 := randKeys(800, 500, 84)
	r2 := randKeys(300, 500, 85)
	cond := join.NewBand(3)
	b, err := partition.NewBroadcast(4)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(r1, r2, cond, b, model, Config{Seed: 86})
	if want := localjoin.NestedLoopCount(r1, r2, cond); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

package exec

import (
	"fmt"

	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/localjoin"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// This file is the runtime surface for CONTINUOUS joins: a long-lived
// stream job that joins an unbounded sequence of tuple windows against a
// static base relation. The caller (see internal/streamjoin) routes each
// window under the currently active plan and ships the per-worker shards;
// workers keep a join-side structure over the base, count each window's
// matches the moment its last shard frame lands, and return a mergeable
// statistics summary of the window alongside the count — the raw material
// for drift detection and mid-stream replanning. Replans are expressed as a
// new EPOCH: the base re-ships routed under the new plan, and every later
// window carries the new epoch tag. In-flight windows drain under the old
// epoch; the transport's per-worker FIFO is the cutover contract.

// StreamSpec opens a continuous windowed join.
type StreamSpec struct {
	// Cond is the join condition; windows are relation 1, the base is
	// relation 2 (the orientation band conditions care about).
	Cond join.Condition
	// Engine selects the local-join engine, same contract as Job.Engine.
	Engine JoinEngine
	// Stats sizes the per-worker window summaries drift detection consumes.
	Stats StatsSpec
}

// WindowReply is one worker's result for one window at one epoch.
type WindowReply struct {
	Worker int
	Window uint32
	Epoch  uint32
	// Input is the window-shard tuple count this worker received.
	Input int64
	// Count is the shard's match count against the worker's base shard.
	Count int64
	// Summary summarizes the window shard's keys; nil for an empty shard.
	Summary *stats.Summary
}

// StreamHandle is one open continuous-join stream across a worker fleet.
// Calls are not safe for concurrent use; the driver is the single sender.
type StreamHandle interface {
	// Workers reports the fleet width every shares slice must match.
	Workers() int
	// SendBase ships (or on a replan, re-ships) the base relation routed
	// under epoch's plan: shares[w] is worker w's shard. Workers rebuild
	// their join-side structure; windows sent before this call still count
	// against the previous epoch's base.
	SendBase(epoch uint32, shares [][]join.Key) error
	// SendWindow appends one window routed under epoch's plan.
	SendWindow(window, epoch uint32, shares [][]join.Key) error
	// Collect blocks until every worker has replied for (window, epoch) and
	// returns the replies in worker order. Replies for the same window under
	// an older epoch (a window re-sent after a fault) are discarded.
	Collect(window, epoch uint32) ([]WindowReply, error)
	// Close retires the stream job on every worker.
	Close() error
}

// StreamRuntime is implemented by runtimes that can host long-lived
// continuous-join stream jobs.
type StreamRuntime interface {
	Runtime
	OpenStream(spec StreamSpec) (StreamHandle, error)
}

// StreamSummarySeed derives the deterministic sampling stream for one
// worker's summary of one window, decorrelated across both axes. Every
// StreamRuntime implementation must use it so a window re-summarized after
// a fault (same shard content, same worker id) reproduces bit-identically.
func StreamSummarySeed(seed uint64, worker int, window uint32) uint64 {
	return seed + 0x9e3779b97f4a7c15*uint64(worker+1) + 0x517cc1b727220a95*uint64(window+1)
}

// SummarizeWindow builds one worker's summary of its window shard under the
// stream's stats spec — the shared implementation behind every
// StreamRuntime, so in-process and wire transports produce bit-identical
// summaries. Returns nil for an empty shard.
func SummarizeWindow(keys []join.Key, sp StatsSpec, worker int, window uint32) *stats.Summary {
	if len(keys) == 0 {
		return nil
	}
	cap := sp.Cap
	if sp.Adaptive {
		cap = sample.AdaptiveCap(len(keys), sp.Cap)
	}
	return sample.Summarize(keys, cap, sp.Buckets,
		stats.NewRNG(StreamSummarySeed(sp.Seed, worker, window)))
}

// LocalStreamRuntime hosts stream jobs in-process: one state slot per
// simulated worker, windows counted synchronously at SendWindow. It is the
// reference implementation the wire transport crosschecks against.
type LocalStreamRuntime struct {
	Local
	// Workers is the simulated fleet width.
	Workers int
}

// OpenStream implements StreamRuntime.
func (l LocalStreamRuntime) OpenStream(spec StreamSpec) (StreamHandle, error) {
	if l.Workers < 1 {
		return nil, fmt.Errorf("exec: local stream needs at least 1 worker, have %d", l.Workers)
	}
	return &localStream{
		spec:    spec,
		engine:  spec.Engine.ForCond(spec.Cond),
		shards:  make([]localShard, l.Workers),
		replies: make(map[uint64][]WindowReply),
	}, nil
}

// localShard is one simulated worker's stream state.
type localShard struct {
	build *localjoin.Build // hash engine: sealed build over the base shard
	base  []join.Key       // merge engine: base shard, sorted at SendBase
}

type localStream struct {
	spec    StreamSpec
	engine  JoinEngine
	epoch   uint32
	sealed  bool
	shards  []localShard
	replies map[uint64][]WindowReply
	closed  bool
}

func winKey(window, epoch uint32) uint64 { return uint64(epoch)<<32 | uint64(window) }

func (s *localStream) Workers() int { return len(s.shards) }

func (s *localStream) check(shares [][]join.Key) error {
	if s.closed {
		return fmt.Errorf("exec: stream is closed")
	}
	if len(shares) != len(s.shards) {
		return fmt.Errorf("exec: %d shares for %d workers", len(shares), len(s.shards))
	}
	return nil
}

func (s *localStream) SendBase(epoch uint32, shares [][]join.Key) error {
	if err := s.check(shares); err != nil {
		return err
	}
	s.epoch = epoch
	s.sealed = true
	for w := range s.shards {
		sh := &s.shards[w]
		*sh = localShard{}
		if s.engine == EngineHash {
			sh.build = localjoin.NewBuild()
			sh.build.Insert(shares[w])
			sh.build.Seal()
		} else {
			sh.base = append([]join.Key(nil), shares[w]...)
			keysort.Sort(sh.base)
		}
	}
	return nil
}

func (s *localStream) SendWindow(window, epoch uint32, shares [][]join.Key) error {
	if err := s.check(shares); err != nil {
		return err
	}
	if !s.sealed || epoch != s.epoch {
		return fmt.Errorf("exec: window %d sent for epoch %d, base is at %d", window, epoch, s.epoch)
	}
	rs := make([]WindowReply, len(s.shards))
	for w := range s.shards {
		keys := shares[w]
		r := WindowReply{Worker: w, Window: window, Epoch: epoch, Input: int64(len(keys))}
		r.Summary = SummarizeWindow(keys, s.spec.Stats, w, window)
		if s.engine == EngineHash {
			r.Count = s.shards[w].build.ProbeCount(keys)
		} else {
			sorted := append([]join.Key(nil), keys...)
			keysort.Sort(sorted)
			r.Count = localjoin.CountSorted(sorted, s.shards[w].base, s.spec.Cond)
		}
		rs[w] = r
	}
	s.replies[winKey(window, epoch)] = rs
	return nil
}

func (s *localStream) Collect(window, epoch uint32) ([]WindowReply, error) {
	rs, ok := s.replies[winKey(window, epoch)]
	if !ok {
		return nil, fmt.Errorf("exec: window %d epoch %d was never sent", window, epoch)
	}
	delete(s.replies, winKey(window, epoch))
	return rs, nil
}

func (s *localStream) Close() error {
	s.closed = true
	s.shards = nil
	s.replies = nil
	return nil
}

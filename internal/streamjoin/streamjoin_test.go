package streamjoin

import (
	"testing"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/localjoin"
	"ewh/internal/stats"
)

func uniformKeys(rng *stats.RNG, n int, lo, span int64) []join.Key {
	ks := make([]join.Key, n)
	for i := range ks {
		ks[i] = join.Key(lo + rng.Int64n(span))
	}
	return ks
}

// refCount is the one-shot reference: sort the concatenated windows, sort
// the base, count with the shared kernel.
func refCount(windows [][]join.Key, base []join.Key, cond join.Condition) int64 {
	var all []join.Key
	for _, w := range windows {
		all = append(all, w...)
	}
	keysort.Sort(all)
	b := append([]join.Key(nil), base...)
	keysort.Sort(b)
	return localjoin.CountSorted(all, b, cond)
}

// flipWorkload builds the skew-flip stream: a few windows uniform over the
// wide keyspace, then the distribution collapses into a narrow range. The
// initial plan spreads the wide range over the fleet; after the flip, every
// tuple lands in the few regions covering the narrow range.
func flipWorkload(t *testing.T) (base []join.Key, windows [][]join.Key) {
	t.Helper()
	rng := stats.NewRNG(41)
	base = uniformKeys(rng, 40000, 0, 1_000_000)
	for i := 0; i < 3; i++ {
		windows = append(windows, uniformKeys(rng, 3000, 0, 1_000_000))
	}
	// The flip phase must be sustained: a replan pays a base re-ship up
	// front and earns it back window by window.
	for i := 0; i < 16; i++ {
		windows = append(windows, uniformKeys(rng, 3000, 0, 20_000))
	}
	return base, windows
}

func flipConfig(freeze bool) Config {
	return Config{
		Opts:       core.Options{J: 4, Seed: 7},
		Exec:       exec.Config{Seed: 11},
		Stats:      exec.StatsSpec{Cap: 512, Buckets: 32, Seed: 9},
		FreezePlan: freeze,
	}
}

// TestRunDetectsFlipAndReplans is the crosscheck on the reference runtime: a
// mid-stream distribution flip fires at least one replan, the total matches
// the one-shot reference join bit-for-bit in both arms, and the replanning
// arm's modeled makespan beats the frozen plan's.
func TestRunDetectsFlipAndReplans(t *testing.T) {
	base, windows := flipWorkload(t)
	cond := join.NewBand(50)
	want := refCount(windows, base, cond)
	if want == 0 {
		t.Fatal("degenerate workload: reference count is 0")
	}

	rt := exec.LocalStreamRuntime{Workers: 4}
	live, err := Run(rt, base, windows, cond, flipConfig(false))
	if err != nil {
		t.Fatalf("replanning run: %v", err)
	}
	frozen, err := Run(rt, base, windows, cond, flipConfig(true))
	if err != nil {
		t.Fatalf("frozen run: %v", err)
	}

	if live.Replans < 1 {
		t.Fatalf("distribution flip fired no replan; drifts: %v", drifts(live))
	}
	if frozen.Replans != 0 {
		t.Fatalf("frozen plan replanned %d times", frozen.Replans)
	}
	if live.Total != want || frozen.Total != want {
		t.Fatalf("totals diverge: live %d frozen %d reference %d", live.Total, frozen.Total, want)
	}
	if live.Makespan >= frozen.Makespan {
		t.Fatalf("replanning did not pay: modeled makespan %.0f (replan) vs %.0f (frozen)",
			live.Makespan, frozen.Makespan)
	}
	if len(live.Windows) != len(windows) || len(frozen.Windows) != len(windows) {
		t.Fatalf("window stats: %d and %d for %d windows", len(live.Windows), len(frozen.Windows), len(windows))
	}
	if live.Faults != 0 || frozen.Faults != 0 {
		t.Fatalf("phantom faults: %d and %d", live.Faults, frozen.Faults)
	}
}

func drifts(r *Result) []float64 {
	out := make([]float64, len(r.Windows))
	for i, w := range r.Windows {
		out[i] = w.Drift
	}
	return out
}

// TestRunEpochsAdvanceAtReplanBoundaries pins the epoch bookkeeping: every
// window before the first replan runs at epoch 1, the window after a
// replanned one runs at the next epoch, and epochs never move otherwise.
func TestRunEpochsAdvanceAtReplanBoundaries(t *testing.T) {
	base, windows := flipWorkload(t)
	cond := join.NewBand(50)
	res, err := Run(exec.LocalStreamRuntime{Workers: 4}, base, windows, cond, flipConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[0].Epoch != 1 {
		t.Fatalf("first window at epoch %d, want 1", res.Windows[0].Epoch)
	}
	for i := 1; i < len(res.Windows); i++ {
		prev, cur := res.Windows[i-1], res.Windows[i]
		want := prev.Epoch
		if prev.Replanned {
			want++
		}
		if cur.Epoch != want {
			t.Fatalf("window %d at epoch %d, want %d (prev replanned=%v)",
				i, cur.Epoch, want, prev.Replanned)
		}
	}
	if last := res.Windows[len(res.Windows)-1]; last.Replanned {
		t.Fatal("final window replanned: a plan with no window left to use")
	}
}

// TestRunUniformStreamNeverReplans: with no distribution movement, sampling
// noise alone must stay under the default threshold.
func TestRunUniformStreamNeverReplans(t *testing.T) {
	rng := stats.NewRNG(43)
	base := uniformKeys(rng, 20000, 0, 500_000)
	var windows [][]join.Key
	for i := 0; i < 6; i++ {
		windows = append(windows, uniformKeys(rng, 2000, 0, 500_000))
	}
	cond := join.NewBand(25)
	res, err := Run(exec.LocalStreamRuntime{Workers: 4}, base, windows, cond, flipConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 {
		t.Fatalf("uniform stream replanned %d times; drifts: %v", res.Replans, drifts(res))
	}
	if want := refCount(windows, base, cond); res.Total != want {
		t.Fatalf("total %d, reference %d", res.Total, want)
	}
}

// TestRunEquiHashEngine runs the hash engine over an equi join, including an
// empty window mid-stream.
func TestRunEquiHashEngine(t *testing.T) {
	rng := stats.NewRNG(47)
	base := uniformKeys(rng, 10000, 0, 5000)
	windows := [][]join.Key{
		uniformKeys(rng, 1500, 0, 5000),
		nil, // an idle tick: no tuples arrived this window
		uniformKeys(rng, 1500, 0, 5000),
	}
	cfg := flipConfig(false)
	cfg.Opts.J = 3
	cfg.Exec.Engine = exec.EngineHash
	res, err := Run(exec.LocalStreamRuntime{Workers: 3}, base, windows, join.Equi{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := refCount(windows, base, join.Equi{}); res.Total != want {
		t.Fatalf("total %d, reference %d", res.Total, want)
	}
	if res.Windows[1].Count != 0 || res.Windows[1].Input != 0 || res.Windows[1].Drift != 0 {
		t.Fatalf("empty window accounted %+v", res.Windows[1])
	}
}

// TestRunValidation pins the argument contract.
func TestRunValidation(t *testing.T) {
	rng := stats.NewRNG(53)
	base := uniformKeys(rng, 100, 0, 1000)
	win := uniformKeys(rng, 100, 0, 1000)
	cfg := flipConfig(false)
	cases := []struct {
		name    string
		rt      exec.Runtime
		base    []join.Key
		windows [][]join.Key
	}{
		{"non-stream runtime", exec.Local{}, base, [][]join.Key{win}},
		{"no windows", exec.LocalStreamRuntime{Workers: 2}, base, nil},
		{"empty first window", exec.LocalStreamRuntime{Workers: 2}, base, [][]join.Key{nil, win}},
		{"empty base", exec.LocalStreamRuntime{Workers: 2}, nil, [][]join.Key{win}},
	}
	for _, c := range cases {
		if _, err := Run(c.rt, c.base, c.windows, join.Equi{}, cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// Package streamjoin drives continuous windowed joins with drift-triggered
// mid-stream replanning. The driver owns an unbounded sequence of tuple
// windows and a static base relation; it opens a stream job on an
// exec.StreamRuntime, routes each window under the currently active plan,
// and inspects the merged per-worker summaries that come back with every
// window's counts. When a window's key distribution departs the
// distribution the active plan was built for by more than a drift threshold
// (Kolmogorov distance between the equi-depth CDFs), the driver replans from
// that window's summary and re-ships the base relation under the new scheme
// as a fresh EPOCH — live repartitioning without restarting the stream.
// In-flight windows drain under the old plan; the transport's per-worker
// FIFO is the cutover contract.
//
// Counts are plan-independent — every partition scheme counts each matching
// pair exactly once — so the stream total is bit-identical whether the run
// replans zero times, five times, or recovers from worker faults mid-way.
// That invariant is what the crosscheck tests pin.
package streamjoin

import (
	"errors"
	"fmt"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// DefaultDriftThreshold is the replanning trigger when Config leaves
// DriftThreshold zero: a Kolmogorov distance of 0.15 between the active
// plan's reference CDF and a window's merged-summary CDF. Small enough to
// catch a genuine distribution flip (which drives the distance toward 1),
// large enough that sampling noise between same-distribution windows —
// empirically well under 0.1 at the default summary sizes — never fires.
const DefaultDriftThreshold = 0.15

// DefaultPlanHorizon is the window count a plan amortizes over when Config
// leaves Horizon zero (see Config.Horizon).
const DefaultPlanHorizon = 8

// Default per-worker window summary sizing when Config.Stats leaves the
// fields zero. The sample package would clamp zero values to 1, which makes
// a drift metric blind; these give the drift CDFs real resolution at a few
// KB per summary.
const (
	DefaultStatsCap     = 1024
	DefaultStatsBuckets = 64
)

// Config tunes a continuous-join run.
type Config struct {
	// Opts are the planner options. J defaults to the stream's fleet width;
	// after a fault it is re-derived from the survivor fleet.
	Opts core.Options
	// Exec configures routing (mapper parallelism, scheme seed) and the
	// local-join engine forwarded to workers.
	Exec exec.Config
	// Stats sizes the per-worker window summaries drift detection consumes;
	// zero Cap/Buckets select DefaultStatsCap/DefaultStatsBuckets.
	Stats exec.StatsSpec
	// DriftThreshold is the replanning trigger; <= 0 selects
	// DefaultDriftThreshold.
	DriftThreshold float64
	// Horizon is the number of upcoming windows one plan is expected to
	// serve; <= 0 selects DefaultPlanHorizon. The planner balances total
	// weight per worker, and a stream pays the base's input cost once per
	// epoch but the window side's on every window — so the driver scales
	// the window distribution's count by Horizon before planning. Without
	// it a large base dominates the balance and the planner happily parks
	// the whole window stream on one worker.
	Horizon int
	// FreezePlan disables drift-triggered replanning: the stream runs every
	// window under the plan built for the first one. The control arm of the
	// replanning experiments; faults still replan (a dead worker's shards
	// must move somewhere).
	FreezePlan bool
}

// WindowStat is one window's accounting.
type WindowStat struct {
	// Window is the window's index in the input sequence.
	Window int
	// Epoch is the plan epoch the window was (finally) counted under.
	Epoch uint32
	// Input is the fleet-wide shipped tuple count — at least the window's
	// size, more under replicating schemes. Count is the match total.
	Input int
	Count int64
	// Drift is the Kolmogorov distance between this window's merged summary
	// and the active plan's reference distribution (0 for the plan's own
	// anchor window and for empty windows).
	Drift float64
	// Replanned reports that this window's drift fired a replan; the new
	// plan takes effect from the next window.
	Replanned bool
	// Makespan is the window's modeled makespan: the maximum over workers of
	// the cost model's weight of (shard input, shard matches).
	Makespan float64
}

// Result is a finished continuous-join run.
type Result struct {
	// Windows holds per-window accounting in input order.
	Windows []WindowStat
	// Total is the stream's match total — bit-identical across plans,
	// replans and fault recoveries.
	Total int64
	// Replans counts drift-triggered replans (fault recoveries excluded).
	Replans int
	// Faults counts worker faults recovered from.
	Faults int
	// Makespan is the modeled end-to-end makespan: the per-window maxima
	// summed (the driver is lockstep, so windows serialize at the collect
	// barrier) plus every epoch's base-ship cost. Replanning pays base
	// re-ships to buy smaller per-window maxima; this is the quantity the
	// skew-flip experiment compares across the two arms.
	Makespan float64
}

// runState is one Run invocation's mutable state.
type runState struct {
	rt      exec.Runtime
	h       exec.StreamHandle
	spec    exec.StreamSpec
	cfg     Config
	model   cost.Model
	base    []join.Key
	windows [][]join.Key

	plan  *core.Plan
	epoch uint32
	// ref is the active plan's reference distribution. It is (re)anchored
	// from the FIRST window collected under each plan — summary versus
	// summary, so drift measures distribution movement, not estimator
	// mismatch — and nil until that window lands.
	ref *histogram.EquiDepth

	res Result
}

// Run executes a continuous join of windows against base on rt, which must
// implement exec.StreamRuntime. Windows are relation 1 of cond, the base is
// relation 2. The first window must be non-empty (the initial plan is built
// from it). Worker faults are recovered by replanning over the survivor
// fleet and re-sending the failed window under a new epoch, bounded by the
// initial fleet width.
func Run(rt exec.Runtime, base []join.Key, windows [][]join.Key, cond join.Condition, cfg Config) (*Result, error) {
	srt, ok := rt.(exec.StreamRuntime)
	if !ok {
		return nil, fmt.Errorf("streamjoin: runtime %T cannot host stream jobs", rt)
	}
	if len(windows) == 0 {
		return nil, errors.New("streamjoin: need at least one window")
	}
	if len(windows[0]) == 0 {
		return nil, errors.New("streamjoin: the first window must be non-empty (it seeds the plan)")
	}
	if len(base) == 0 {
		return nil, errors.New("streamjoin: empty base relation")
	}
	if cfg.Stats.Cap <= 0 {
		cfg.Stats.Cap = DefaultStatsCap
	}
	if cfg.Stats.Buckets <= 0 {
		cfg.Stats.Buckets = DefaultStatsBuckets
	}
	st := &runState{
		rt:      rt,
		spec:    exec.StreamSpec{Cond: cond, Engine: cfg.Exec.Engine, Stats: cfg.Stats},
		cfg:     cfg,
		base:    base,
		windows: windows,
	}
	st.model = cfg.Opts.Model
	if !st.model.Valid() {
		st.model = cost.DefaultBand
	}
	h, err := srt.OpenStream(st.spec)
	if err != nil {
		return nil, err
	}
	st.h = h
	defer func() { _ = st.h.Close() }()
	if st.cfg.Opts.J <= 0 {
		st.cfg.Opts.J = h.Workers()
	}
	if err := st.openEpoch(windows[0], nil); err != nil {
		return nil, err
	}
	maxFaults := h.Workers()
	for i := 0; i < len(windows); {
		err := st.window(i)
		if err == nil {
			i++
			continue
		}
		if !exec.RetryableFault(err) || st.res.Faults >= maxFaults {
			return nil, err
		}
		if rerr := st.recover(i, err); rerr != nil {
			return nil, rerr
		}
	}
	if err := st.h.Close(); err != nil {
		return nil, err
	}
	st.h = noopHandle{}
	out := st.res
	return &out, nil
}

// openEpoch plans the next epoch — from exact window keys (initial plan and
// fault recovery, summarized coordinator-side) or from a drifted window's
// merged summary — and ships the base relation routed under it. The window
// distribution's count is scaled by the plan horizon so the planner weighs
// the stream's amortized window traffic against the base's one-time ship.
// The reference distribution resets; the first window collected under the
// new plan re-anchors it.
func (st *runState) openEpoch(planKeys []join.Key, sum *stats.Summary) error {
	if sum == nil {
		sum = sample.Summarize(planKeys, st.cfg.Stats.Cap, st.cfg.Stats.Buckets,
			stats.NewRNG(st.cfg.Stats.Seed))
	}
	horizon := st.cfg.Horizon
	if horizon <= 0 {
		horizon = DefaultPlanHorizon
	}
	// Scaling Count (sample and bounds untouched) scales the planner's R1
	// input weight AND its output estimate — Stream-Sample extrapolates m by
	// Count/len(Keys) — exactly as horizon windows of this distribution
	// would.
	amortized := *sum
	amortized.Count *= int64(horizon)
	plan, err := core.PlanCSIOFromSummary(&amortized, st.base, st.spec.Cond, st.cfg.Opts)
	if err != nil {
		return fmt.Errorf("streamjoin: plan epoch %d: %w", st.epoch+1, err)
	}
	st.plan = plan
	st.epoch++
	st.ref = nil
	shares, release, err := st.route(st.base, 2)
	if err != nil {
		return err
	}
	// Base (re)ships are input-only work; they are the price a replan pays.
	max := 0.0
	for _, sh := range shares {
		if w := st.model.Weight(float64(len(sh)), 0); w > max {
			max = w
		}
	}
	st.res.Makespan += max
	err = st.h.SendBase(st.epoch, shares)
	release()
	return err
}

// route shuffles keys under the active plan's scheme and pads the shares out
// to the fleet width: a plan over J workers on a wider fleet leaves the
// extra workers with empty shards, keeping the lockstep collect uniform.
func (st *runState) route(keys []join.Key, rel int) ([][]join.Key, func(), error) {
	fleet := st.h.Workers()
	sw := st.plan.Scheme.Workers()
	if sw > fleet {
		return nil, nil, fmt.Errorf("streamjoin: plan wants %d workers, fleet has %d", sw, fleet)
	}
	ks := exec.ShuffleKeys(keys, st.plan.Scheme, rel, st.cfg.Exec)
	shares := make([][]join.Key, fleet)
	for w := 0; w < sw; w++ {
		shares[w] = ks.Worker(w)
	}
	return shares, ks.Release, nil
}

// window sends windows[i] under the active epoch, collects the fleet's
// replies, accounts the result and replans if the window drifted.
func (st *runState) window(i int) error {
	keys := st.windows[i]
	shares, release, err := st.route(keys, 1)
	if err != nil {
		return err
	}
	err = st.h.SendWindow(uint32(i), st.epoch, shares)
	release()
	if err != nil {
		return err
	}
	replies, err := st.h.Collect(uint32(i), st.epoch)
	if err != nil {
		return err
	}
	stat := WindowStat{Window: i, Epoch: st.epoch}
	var in int64
	var merged *stats.Summary
	for _, r := range replies {
		in += r.Input
		stat.Count += r.Count
		if w := st.model.Weight(float64(r.Input), float64(r.Count)); w > stat.Makespan {
			stat.Makespan = w
		}
		// Fold in worker order: MergeSummaries is commutative but not
		// exactly associative, so a fixed fold order keeps runs reproducible.
		if r.Summary == nil {
			continue
		}
		if merged == nil {
			merged = r.Summary
			continue
		}
		if merged, err = stats.MergeSummaries(merged, r.Summary); err != nil {
			return fmt.Errorf("streamjoin: window %d summaries: %w", i, err)
		}
	}
	// Replicating schemes ship some tuples to several regions, so the fleet
	// may see MORE than the window's tuples — but never fewer.
	if in < int64(len(keys)) {
		return fmt.Errorf("streamjoin: window %d holds %d tuples, workers saw only %d", i, len(keys), in)
	}
	stat.Input = int(in)
	if merged != nil && merged.Count > 0 {
		if st.ref == nil {
			// First window under this plan anchors the reference.
			ref, err := histogram.FromBounds(merged.Bounds)
			if err != nil {
				return fmt.Errorf("streamjoin: window %d reference: %w", i, err)
			}
			st.ref = ref
		} else {
			h, err := histogram.FromBounds(merged.Bounds)
			if err != nil {
				return fmt.Errorf("streamjoin: window %d histogram: %w", i, err)
			}
			stat.Drift = histogram.Drift(st.ref, h)
		}
	}
	thr := st.cfg.DriftThreshold
	if thr <= 0 {
		thr = DefaultDriftThreshold
	}
	replan := !st.cfg.FreezePlan && stat.Drift > thr && i+1 < len(st.windows)
	if replan {
		if err := st.openEpoch(nil, merged); err != nil {
			return err
		}
		stat.Replanned = true
		st.res.Replans++
	}
	st.res.Windows = append(st.res.Windows, stat)
	st.res.Total += stat.Count
	st.res.Makespan += stat.Makespan
	return nil
}

// recover handles a retryable fault at window i: derive the survivor fleet,
// reopen the stream on it, replan from the window's own keys (the driver
// holds them — no summary round-trip needed) and re-ship the base under a
// fresh epoch. The failed window re-runs under the new plan; any stale reply
// it produced under the old epoch is discarded by Collect's epoch filter.
func (st *runState) recover(i int, cause error) error {
	ft, ok := st.rt.(exec.FaultTolerantRuntime)
	if !ok {
		return cause
	}
	surv, n, err := ft.Survivors()
	if err != nil {
		return errors.Join(cause, err)
	}
	srt, ok := surv.(exec.StreamRuntime)
	if !ok {
		return errors.Join(cause, fmt.Errorf("streamjoin: survivor runtime %T cannot host stream jobs", surv))
	}
	_ = st.h.Close() // best-effort: the fleet it spans is partly dead
	h, err := srt.OpenStream(st.spec)
	if err != nil {
		return errors.Join(cause, err)
	}
	st.rt, st.h = surv, h
	st.cfg.Opts.J = n
	st.res.Faults++
	planKeys := st.windows[i]
	if len(planKeys) == 0 {
		planKeys = st.windows[0]
	}
	if err := st.openEpoch(planKeys, nil); err != nil {
		return errors.Join(cause, err)
	}
	return nil
}

// noopHandle replaces a cleanly closed stream so the deferred close in Run
// does not double-close it.
type noopHandle struct{}

func (noopHandle) Workers() int                        { return 0 }
func (noopHandle) SendBase(uint32, [][]join.Key) error { return errors.New("stream is closed") }
func (noopHandle) SendWindow(_, _ uint32, _ [][]join.Key) error {
	return errors.New("stream is closed")
}
func (noopHandle) Collect(_, _ uint32) ([]exec.WindowReply, error) {
	return nil, errors.New("stream is closed")
}
func (noopHandle) Close() error { return nil }

package faultnet

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// v3Frame encodes a session frame: [type u8][job u32][len u32] + payload.
func v3Frame(typ byte, job uint32, payload []byte) []byte {
	b := make([]byte, 9+len(payload))
	b[0] = typ
	binary.LittleEndian.PutUint32(b[1:5], job)
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(payload)))
	copy(b[9:], payload)
	return b
}

// v4Frame encodes a peer frame: [type u8][len u32] + payload.
func v4Frame(typ byte, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	b[0] = typ
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(payload)))
	copy(b[5:], payload)
	return b
}

func prelude(version uint16) []byte {
	b := []byte{'E', 'W', 'H', 'B', 0, 0}
	binary.LittleEndian.PutUint16(b[4:6], version)
	return b
}

func pipeConn(t *testing.T, script *Script) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	fc := newConn(a, script)
	t.Cleanup(func() { _ = fc.Close(); _ = b.Close() })
	return fc, b
}

func TestScriptCountingAndFired(t *testing.T) {
	s := NewScript(
		Rule{Dir: In, Frame: FrameBlock, N: 2, Action: ActClose},
		Rule{Dir: Out, Frame: FrameAny, Action: ActClose},
	)
	if s.Fired() {
		t.Fatal("fresh script reports fired")
	}
	if s.match(In, FrameBlock) != nil {
		t.Fatal("rule fired on the 1st match with N=2")
	}
	if s.match(In, FramePay) != nil {
		t.Fatal("rule matched the wrong frame type")
	}
	if s.match(Out, FrameBlock) == nil {
		t.Fatal("FrameAny rule did not match")
	}
	r := s.match(In, FrameBlock)
	if r == nil {
		t.Fatal("rule did not fire on its 2nd match")
	}
	if !s.Fired() {
		t.Fatal("all rules fired but Fired() is false")
	}
	if s.match(In, FrameBlock) != nil {
		t.Fatal("single-shot rule fired twice")
	}
	var nilScript *Script
	if !nilScript.Fired() || nilScript.match(In, FrameAny) != nil {
		t.Fatal("nil script must be a transparent tap")
	}
}

func TestTrackerFiresAtExactV3Frame(t *testing.T) {
	// The inbound tracker must fire on the 2nd Block frame even when the
	// stream arrives one byte at a time, and must leave the 1st frame (and
	// everything before the fatal header) delivered.
	s := NewScript(Rule{Dir: In, Frame: FrameBlock, N: 2, Action: ActClose})
	fc, _ := pipeConn(t, s)

	var stream []byte
	stream = append(stream, prelude(VersionSession)...)
	stream = append(stream, v3Frame(FrameOpenJob, 1, []byte("open-payload"))...)
	stream = append(stream, v3Frame(FrameBlock, 1, make([]byte, 64))...)
	stream = append(stream, v3Frame(FramePay, 1, []byte{1, 2, 3})...)
	cut := len(stream)
	stream = append(stream, v3Frame(FrameBlock, 1, make([]byte, 32))...)
	stream = append(stream, v3Frame(FrameEOS, 1, nil)...)

	var ferr error
	fed := 0
	for i := range stream {
		if ferr = fc.rt.feed(stream[i : i+1]); ferr != nil {
			break
		}
		fed++
	}
	if ferr == nil {
		t.Fatal("rule never fired")
	}
	if !errors.Is(ferr, errInjected) {
		t.Fatalf("feed returned %v, want the injected fault", ferr)
	}
	// The fatal byte is the last byte of the 2nd Block frame's header.
	if want := cut + 9 - 1; fed != want {
		t.Fatalf("fault fired after %d bytes, want %d (2nd block header)", fed, want)
	}
	if !s.Fired() {
		t.Fatal("script not marked fired")
	}
	select {
	case <-fc.closed:
	default:
		t.Fatal("ActClose did not close the connection")
	}
}

func TestTrackerV4PeerHeaders(t *testing.T) {
	// v4 peer links use 5-byte headers; the tracker must follow them (a
	// 9-byte parse would misframe and fire on garbage).
	s := NewScript(Rule{Dir: In, Frame: FramePeerBlock, N: 3, Action: ActClose})
	fc, _ := pipeConn(t, s)
	var stream []byte
	stream = append(stream, prelude(VersionPeer)...)
	stream = append(stream, v4Frame(FramePeerHead, make([]byte, 20))...)
	for i := 0; i < 3; i++ {
		stream = append(stream, v4Frame(FramePeerBlock, make([]byte, 8*7))...)
	}
	var ferr error
	for i := range stream {
		if ferr = fc.rt.feed(stream[i : i+1]); ferr != nil {
			break
		}
	}
	if ferr == nil || !s.Fired() {
		t.Fatalf("peer rule did not fire (err %v)", ferr)
	}
}

func TestTrackerOpaqueOnUnknownMagic(t *testing.T) {
	s := NewScript(Rule{Dir: In, Frame: FrameAny, Action: ActClose})
	fc, _ := pipeConn(t, s)
	junk := append([]byte("NOPE\x00\x00"), make([]byte, 256)...)
	if err := fc.rt.feed(junk); err != nil {
		t.Fatalf("opaque traffic faulted: %v", err)
	}
	if fc.rt.state != stateOpaque {
		t.Fatalf("state %d, want opaque", fc.rt.state)
	}
	if s.Fired() {
		t.Fatal("rule fired on unframed traffic")
	}
}

func TestOutboundTrackerAdoptsInboundVersion(t *testing.T) {
	// The prelude travels inbound only; the outbound tracker must pick up
	// the sniffed version and then parse replies with the right header size.
	s := NewScript(Rule{Dir: Out, Frame: FrameMetrics, Action: ActClose})
	fc, _ := pipeConn(t, s)
	if err := fc.rt.feed(prelude(VersionSession)); err != nil {
		t.Fatal(err)
	}
	var out []byte
	out = append(out, v3Frame(FrameStats, 1, make([]byte, 40))...)
	out = append(out, v3Frame(FrameMetrics, 1, make([]byte, 10))...)
	var ferr error
	for i := range out {
		if ferr = fc.wt.feed(out[i : i+1]); ferr != nil {
			break
		}
	}
	if ferr == nil || !s.Fired() {
		t.Fatalf("outbound rule did not fire (err %v)", ferr)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	// ActStall wedges the matching read until the connection is closed —
	// and Close must win even while the stall holds the read path.
	s := NewScript(Rule{Dir: In, Frame: FrameOpenJob, Action: ActStall})
	fc, peer := pipeConn(t, s)

	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 512)
		for {
			if _, err := fc.Read(buf); err != nil {
				got <- err
				return
			}
		}
	}()
	go func() {
		_, _ = peer.Write(prelude(VersionSession))
		_, _ = peer.Write(v3Frame(FrameOpenJob, 1, []byte("job")))
	}()

	select {
	case err := <-got:
		t.Fatalf("read returned %v before Close released the stall", err)
	case <-time.After(100 * time.Millisecond):
	}
	_ = fc.Close()
	select {
	case err := <-got:
		if !errors.Is(err, errInjected) {
			t.Fatalf("stalled read returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled read")
	}
}

func TestHookLetsTrafficContinue(t *testing.T) {
	fired := make(chan struct{})
	s := NewScript(Rule{Dir: In, Frame: FrameBlock, Action: ActHook,
		Fn: func() { close(fired) }})
	fc, _ := pipeConn(t, s)
	var stream []byte
	stream = append(stream, prelude(VersionSession)...)
	stream = append(stream, v3Frame(FrameBlock, 1, make([]byte, 16))...)
	stream = append(stream, v3Frame(FrameEOS, 1, nil)...)
	if err := fc.rt.feed(stream); err != nil {
		t.Fatalf("hook aborted delivery: %v", err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("hook never ran")
	}
}

func TestWrappedListenerEndToEnd(t *testing.T) {
	// Black-box: a scripted listener kills the connection at the 1st EOS the
	// endpoint receives; bytes up to the fatal frame flow through intact.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScript(Rule{Dir: In, Frame: FrameEOS, Action: ActClose})
	wl := Wrap(ln, s)
	defer wl.Close()

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := wl.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer c.Close()
		n, err := io.Copy(io.Discard, c)
		done <- result{n: int(n), err: err}
	}()

	c, err := net.Dial("tcp", wl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var head []byte
	head = append(head, prelude(VersionSession)...)
	head = append(head, v3Frame(FrameOpenJob, 7, make([]byte, 100))...)
	if _, err := c.Write(head); err != nil {
		t.Fatalf("pre-fault write: %v", err)
	}
	// The EOS ships separately so the fatal frame cannot be coalesced into
	// the healthy chunk (a fired rule suppresses its whole chunk).
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Write(v3Frame(FrameEOS, 7, nil)); err != nil {
		// The injected close races the write; either outcome is fine.
		t.Logf("write after injection: %v", err)
	}

	r := <-done
	if r.err == nil || !errors.Is(r.err, errInjected) {
		t.Fatalf("endpoint read ended with %v, want injected fault", r.err)
	}
	if r.n < len(head) {
		t.Fatalf("endpoint saw %d of the %d pre-fault bytes", r.n, len(head))
	}
	if !s.Fired() {
		t.Fatal("script did not fire")
	}
}

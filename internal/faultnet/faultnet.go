// Package faultnet injects deterministic network faults into the netexec
// wire protocols for testing recovery paths. It wraps a worker's
// net.Listener so every accepted connection passes through a scriptable
// frame-aware tap: the tap sniffs the 6-byte protocol prelude, follows the
// framing of whichever protocol version the connection speaks (v3 sessions,
// v2 one-shots, v4 peer mesh; anything else is opaque), counts matching
// frames per rule and fires each rule's action exactly once at a precise
// frame boundary — kill after the N-th block, reset on the first stats
// frame, stall mid-transfer, or run an arbitrary hook (e.g. Close a victim
// worker at a stage boundary). Faults are therefore reproducible: the same
// script against the same workload fails at the same frame every run,
// which is what lets the crosscheck assert recovered output bit-identical
// to a fault-free reference instead of sampling failure windows
// probabilistically.
//
// A Script is shared by every connection its listener accepts: rule
// counters are global across connections, so "the first inbound peer block,
// whichever connection carries it" is expressible.
package faultnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Mirror of the netexec wire protocol, kept in lockstep by a parity test in
// netexec (the constants are unexported there; faultnet must stay
// import-free of netexec so netexec tests can import faultnet).
const (
	// FrameAny matches every frame regardless of type.
	FrameAny byte = 0

	// v2 one-shot frames.
	FrameHandshake byte = 1
	FrameBlockV2   byte = 2
	FrameEOSV2     byte = 3
	FrameMetricsV2 byte = 4

	// v3 session frames.
	FrameOpenJob     byte = 10
	FrameRelHead     byte = 11
	FrameBlock       byte = 12
	FramePay         byte = 13
	FrameEOS         byte = 14
	FramePairs       byte = 15
	FrameMetrics     byte = 16
	FrameAbort       byte = 17
	FramePlan        byte = 18
	FrameOpenPeerJob byte = 19
	FramePlanCancel  byte = 20
	FrameStats       byte = 21
	FramePlan2       byte = 22

	// v3 chunked-relation scatter frames (sub-block streaming).
	FrameChunkHead byte = 25
	FrameChunk     byte = 26
	FrameChunkTail byte = 27
	// v3 late peer-count bind (stage-overlapped dispatch).
	FramePeerBind byte = 28

	// v3 continuous-join stream frames.
	FrameStreamOpen    byte = 33
	FrameStreamBase    byte = 34
	FrameStreamBaseEnd byte = 35
	FrameStreamWin     byte = 36
	FrameStreamWinEnd  byte = 37
	FrameStreamRep     byte = 38

	// v4 peer-mesh frames.
	FramePeerHead  byte = 30
	FramePeerBlock byte = 31
	FramePeerPay   byte = 32
)

// Protocol versions as they appear in the wire prelude.
const (
	VersionOneShot = 2
	VersionSession = 3
	VersionPeer    = 4
)

// Dir selects which byte stream a rule watches, relative to the wrapped
// endpoint (the worker, for a wrapped listener).
type Dir int

const (
	// In matches frames the endpoint receives (coordinator→worker opens,
	// blocks, plans; peer→worker contributions).
	In Dir = iota
	// Out matches frames the endpoint sends (worker→coordinator stats,
	// pairs, metrics).
	Out
)

func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// Action is what a rule does when it fires.
type Action int

const (
	// ActClose closes the connection (both sides observe a lost
	// connection).
	ActClose Action = iota
	// ActReset closes with SO_LINGER=0, surfacing ECONNRESET at the peer
	// where the transport supports it (falls back to a plain close).
	ActReset
	// ActStall blocks the matching I/O operation until the connection is
	// closed — a wedged-but-alive peer, the failure mode deadlines exist
	// for.
	ActStall
	// ActHook runs Fn in its own goroutine and lets the traffic continue —
	// the drop-worker-at-stage-boundary primitive (Fn closes a Worker).
	ActHook
)

func (a Action) String() string {
	switch a {
	case ActClose:
		return "close"
	case ActReset:
		return "reset"
	case ActStall:
		return "stall"
	case ActHook:
		return "hook"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule fires once, at the N-th frame matching (Dir, Frame) across all of
// the script's connections.
type Rule struct {
	// Dir is the watched direction, relative to the wrapped endpoint.
	Dir Dir
	// Frame is the frame type to match; FrameAny matches all frames.
	Frame byte
	// N fires the rule on the N-th match (1-based); 0 means the first.
	N int
	// Action is the fault to inject.
	Action Action
	// Fn is the hook for ActHook; ignored otherwise.
	Fn func()
}

// errInjected is what a faulted operation returns to its endpoint.
var errInjected = errors.New("faultnet: injected fault")

// scriptRule is a Rule plus its firing state.
type scriptRule struct {
	Rule
	seen  int
	fired bool
}

// Script holds the rules for one fault scenario. One Script serves every
// connection of the listener it wraps; counters span connections.
type Script struct {
	mu    sync.Mutex
	rules []*scriptRule
}

// NewScript builds a script from rules. A nil or empty script is a
// transparent tap.
func NewScript(rules ...Rule) *Script {
	s := &Script{}
	for _, r := range rules {
		if r.N < 1 {
			r.N = 1
		}
		s.rules = append(s.rules, &scriptRule{Rule: r})
	}
	return s
}

// Fired reports whether every rule has fired — the crosscheck's assertion
// that the scenario actually injected its fault rather than passing
// vacuously.
func (s *Script) Fired() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if !r.fired {
			return false
		}
	}
	return true
}

// match records one observed frame and returns the rule to fire now, if
// any. At most one rule fires per frame (scripts wanting compound faults
// use ActHook).
func (s *Script) match(dir Dir, frame byte) *scriptRule {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if r.fired || r.Dir != dir || (r.Frame != FrameAny && r.Frame != frame) {
			continue
		}
		r.seen++
		if r.seen >= r.N {
			r.fired = true
			return r
		}
	}
	return nil
}

// Listener wraps a net.Listener so every accepted connection is tapped by
// the script.
type Listener struct {
	net.Listener
	script *Script
}

// Wrap taps ln with script. Hand the result to netexec.ListenWorkerOn.
func Wrap(ln net.Listener, script *Script) *Listener {
	return &Listener{Listener: ln, script: script}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newConn(c, l.script), nil
}

// Conn is one tapped connection: a streaming frame parser per direction
// feeds the script, and fired rules act on the underlying connection.
type Conn struct {
	net.Conn
	script *Script

	closed    chan struct{}
	closeOnce sync.Once

	// version is the sniffed protocol version, shared by both directions:
	// the prelude travels inbound only, but the endpoint's replies use the
	// same protocol. 0 = not yet known.
	version atomic.Uint32

	rmu sync.Mutex
	rt  tracker
	wmu sync.Mutex
	wt  tracker
}

func newConn(c net.Conn, script *Script) *Conn {
	fc := &Conn{Conn: c, script: script, closed: make(chan struct{})}
	fc.rt = tracker{conn: fc, dir: In, state: statePrelude}
	fc.wt = tracker{conn: fc, dir: Out, state: stateAwaitVersion}
	return fc
}

// Close implements net.Conn and also releases any stalled operations.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// reset closes the connection so the peer sees an RST where possible.
func (c *Conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// stall blocks until the connection is closed, then reports the injected
// fault.
func (c *Conn) stall() error {
	<-c.closed
	return errInjected
}

// apply executes a fired rule against the connection. It returns a non-nil
// error when the current I/O operation must abort instead of delivering
// its bytes.
func (c *Conn) apply(r *scriptRule) error {
	switch r.Action {
	case ActClose:
		_ = c.Close()
		return errInjected
	case ActReset:
		c.reset()
		return errInjected
	case ActStall:
		return c.stall()
	case ActHook:
		if r.Fn != nil {
			go r.Fn()
		}
		return nil
	}
	return nil
}

// Read taps the inbound stream: bytes are parsed for frame boundaries
// BEFORE delivery, so a rule firing on a frame kills the connection with
// that frame (and the rest of the chunk) undelivered — a mid-stream death,
// exactly as a crashed sender would leave the wire.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rmu.Lock()
		ferr := c.rt.feed(p[:n])
		c.rmu.Unlock()
		if ferr != nil {
			return 0, ferr
		}
	}
	return n, err
}

// Write taps the outbound stream symmetrically: a rule firing on an
// outbound frame suppresses the whole chunk.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	ferr := c.wt.feed(p)
	c.wmu.Unlock()
	if ferr != nil {
		return 0, ferr
	}
	return c.Conn.Write(p)
}

// tracker states.
const (
	statePrelude      = iota // collecting the 6-byte magic+version prelude
	stateAwaitVersion        // outbound: waiting for the inbound prelude's verdict
	stateHeader              // collecting a frame header
	statePayload             // skipping payload bytes
	stateOpaque              // unframed traffic (v1 gob, unknown magic)
)

// preludeLen is magic "EWHB" + u16 version.
const preludeLen = 6

var wireMagic = [4]byte{'E', 'W', 'H', 'B'}

// tracker is a one-direction streaming frame parser. It accumulates just
// enough bytes (prelude or header) to know each frame's type and length,
// reports every frame start to the script, and skips payloads without
// copying.
type tracker struct {
	conn  *Conn
	dir   Dir
	state int
	buf   [preludeLen + 3]byte // prelude (6) or header (≤9) accumulator
	have  int
	skip  int // payload bytes left to skip
}

// headerLen returns the frame header length for the connection's protocol
// version: v3 sessions carry [type u8][job u32][len u32], v2 one-shots and
// v4 peer links carry [type u8][len u32].
func (t *tracker) headerLen() int {
	if t.conn.version.Load() == VersionSession {
		return 9
	}
	return 5
}

// feed advances the parser over one chunk. A non-nil return aborts the
// endpoint's I/O operation (the fired rule killed or stalled the
// connection).
func (t *tracker) feed(p []byte) error {
	for len(p) > 0 {
		switch t.state {
		case stateOpaque:
			return nil
		case stateAwaitVersion:
			// The endpoint is writing. Replies only ever follow inbound
			// traffic, so the inbound prelude has been parsed by now; an
			// unknown version means unframed traffic either way.
			switch t.conn.version.Load() {
			case VersionSession, VersionOneShot, VersionPeer:
				t.state = stateHeader
			default:
				t.state = stateOpaque
				return nil
			}
		case statePrelude:
			n := copy(t.buf[t.have:preludeLen], p)
			t.have += n
			p = p[n:]
			if t.have < preludeLen {
				return nil
			}
			t.have = 0
			if [4]byte(t.buf[:4]) != wireMagic {
				t.state = stateOpaque
				return nil
			}
			v := binary.LittleEndian.Uint16(t.buf[4:6])
			switch v {
			case VersionSession, VersionOneShot, VersionPeer:
				t.conn.version.Store(uint32(v))
				t.state = stateHeader
			default:
				t.state = stateOpaque
				return nil
			}
		case stateHeader:
			hl := t.headerLen()
			n := copy(t.buf[t.have:hl], p)
			t.have += n
			p = p[n:]
			if t.have < hl {
				return nil
			}
			t.have = 0
			typ := t.buf[0]
			t.skip = int(binary.LittleEndian.Uint32(t.buf[hl-4 : hl]))
			t.state = statePayload
			if r := t.conn.script.match(t.dir, typ); r != nil {
				if err := t.conn.apply(r); err != nil {
					return err
				}
			}
		case statePayload:
			if t.skip > len(p) {
				t.skip -= len(p)
				return nil
			}
			p = p[t.skip:]
			t.skip = 0
			t.state = stateHeader
		}
	}
	return nil
}

package faultnet_test

// The fault-recovery crosscheck: kill one worker at each pipeline boundary
// — stage-1 open, mid-scatter, after its statistics summary, stage-2 open,
// mid-peer-transfer — and assert the session recovers onto the survivors
// with output BIT-IDENTICAL to a fault-free in-process run. Determinism is
// what makes this assertable: every retry attempt replans from scratch for
// its fleet size with the same seeds, so a recovered J=3 run and a
// never-faulted J=3 run are the same computation. The fleet carries one
// spare worker beyond opts.J, so the survivor count never drops below the
// planned width and the reference stays valid across the kill.

import (
	"net"
	"runtime"
	"testing"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/faultnet"
	"ewh/internal/join"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/workload"
)

var ckModel = cost.Model{Wi: 1, Wo: 0.2}

func ckLeakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= baseline+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: baseline %d, now %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
	})
}

// netListenTCP binds a loopback listener for the victim's faultnet tap.
func netListenTCP() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestRecoveryBitIdenticalAcrossBoundaries(t *testing.T) {
	const (
		fleet  = 4 // opts.J participants + one spare for recovery
		victim = 1 // inside the first J conns, so it works before it dies
		j      = 3
	)
	q := multiway.Query{
		R1: workload.Zipfian(1000, 300, 0.9, 11),
		Mid: multiway.MidRelation{
			A: workload.Zipfian(1000, 300, 0.9, 12),
			B: workload.Zipfian(1000, 300, 1.1, 13),
		},
		R3:    workload.Zipfian(1000, 300, 0.9, 14),
		CondA: join.NewBand(1),
		CondB: join.Equi{},
	}
	opts := core.Options{J: j, Model: ckModel, Seed: 7}
	cfg := exec.Config{Seed: 42, Mappers: 2,
		Retry: exec.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 50 * time.Millisecond}}

	// The fault-free in-process reference every recovered run must match.
	local, err := multiway.Execute(q, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	scenarios := []struct {
		name string
		mode multiway.Stage2Mode
		rule func(kill func()) faultnet.Rule
	}{
		{"stage1-open", multiway.Stage2CSIO, func(kill func()) faultnet.Rule {
			// The worker dies the instant its first stage-1 job arrives.
			return faultnet.Rule{Dir: faultnet.In, Frame: faultnet.FrameOpenJob,
				Action: faultnet.ActHook, Fn: kill}
		}},
		{"mid-scatter", multiway.Stage2Hash, func(func()) faultnet.Rule {
			// The coordinator link dies while the second relation's block is
			// in flight; the worker itself stays up (an excluded, not dead,
			// worker — recovery must route around it all the same).
			return faultnet.Rule{Dir: faultnet.In, Frame: faultnet.FrameBlock,
				N: 2, Action: faultnet.ActClose}
		}},
		{"post-stats", multiway.Stage2CSIO, func(kill func()) faultnet.Rule {
			// The worker ships its statistics summary, then dies before the
			// replanned PLAN2 can reach it.
			return faultnet.Rule{Dir: faultnet.Out, Frame: faultnet.FrameStats,
				Action: faultnet.ActHook, Fn: kill}
		}},
		{"stage2-open", multiway.Stage2Hash, func(func()) faultnet.Rule {
			// The session link resets exactly as the peer-fed stage-2 job
			// opens.
			return faultnet.Rule{Dir: faultnet.In, Frame: faultnet.FrameOpenPeerJob,
				Action: faultnet.ActReset}
		}},
		{"mid-peer-transfer", multiway.Stage2Hash, func(kill func()) faultnet.Rule {
			// The worker dies while a peer contribution is streaming into it.
			return faultnet.Rule{Dir: faultnet.In, Frame: faultnet.FramePeerBlock,
				Action: faultnet.ActHook, Fn: kill}
		}},
		{"chunk-boundary", multiway.Stage2Hash, func(kill func()) faultnet.Rule {
			// The worker dies at a sub-block chunk boundary: it has decoded
			// the first mapper's chunk of a streamed relation but the second
			// chunk and the exact-count tail never arrive, so recovery must
			// discard the half-streamed relation and replan onto survivors.
			return faultnet.Rule{Dir: faultnet.In, Frame: faultnet.FrameChunk,
				N: 2, Action: faultnet.ActHook, Fn: kill}
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ckLeakCheck(t)
			var victimW *netexec.Worker
			kill := func() {
				if victimW != nil {
					_ = victimW.Close()
				}
			}
			script := faultnet.NewScript(sc.rule(kill))

			addrs := make([]string, fleet)
			for i := 0; i < fleet; i++ {
				var w *netexec.Worker
				if i == victim {
					ln, err := netListenTCP()
					if err != nil {
						t.Fatal(err)
					}
					w = netexec.ListenWorkerOn(faultnet.Wrap(ln, script))
					victimW = w
				} else {
					var err error
					w, err = netexec.ListenWorker("127.0.0.1:0")
					if err != nil {
						t.Fatal(err)
					}
				}
				addrs[i] = w.Addr()
				go func() { _ = w.Serve() }()
				t.Cleanup(func() { _ = w.Close() })
			}

			sess, err := netexec.DialWith(addrs, netexec.Timeouts{
				Dial: 2 * time.Second, Job: 10 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = sess.Close() })

			before := sess.RelayedPairs()
			res, err := multiway.ExecuteOverStage2(sess, q, opts, cfg, sc.mode)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if !script.Fired() {
				t.Fatal("fault never injected; the run proves nothing")
			}
			if res.Output != local.Output || res.Intermediate != local.Intermediate {
				t.Fatalf("recovered run diverged: got (out=%d mid=%d), fault-free (out=%d mid=%d)",
					res.Output, res.Intermediate, local.Output, local.Intermediate)
			}
			if relayed := sess.RelayedPairs() - before; relayed != 0 {
				t.Fatalf("%d pairs transited the coordinator during recovery", relayed)
			}
			if _, n, serr := sess.Survivors(); serr != nil || n != fleet-1 {
				t.Fatalf("survivors after recovery: %d (%v), want %d", n, serr, fleet-1)
			}
		})
	}
}

func TestRecoveryFromStalledWorker(t *testing.T) {
	// ActStall against the liveness deadline: the victim wedges (alive TCP
	// peer, no progress) on its first stage-1 job; only Timeouts.Job can
	// unstick the coordinator, and recovery must then finish on the
	// survivors with the reference output.
	ckLeakCheck(t)
	q := multiway.Query{
		R1: workload.Zipfian(600, 200, 0.9, 21),
		Mid: multiway.MidRelation{
			A: workload.Zipfian(600, 200, 0.9, 22),
			B: workload.Zipfian(600, 200, 1.1, 23),
		},
		R3:    workload.Zipfian(600, 200, 0.9, 24),
		CondA: join.NewBand(1),
		CondB: join.Equi{},
	}
	opts := core.Options{J: 2, Model: ckModel, Seed: 5}
	cfg := exec.Config{Seed: 6, Mappers: 2,
		Retry: exec.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 50 * time.Millisecond}}
	local, err := multiway.Execute(q, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	script := faultnet.NewScript(faultnet.Rule{
		Dir: faultnet.In, Frame: faultnet.FrameOpenJob, Action: faultnet.ActStall})
	addrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		var w *netexec.Worker
		if i == 1 {
			ln, err := netListenTCP()
			if err != nil {
				t.Fatal(err)
			}
			w = netexec.ListenWorkerOn(faultnet.Wrap(ln, script))
		} else {
			var err error
			w, err = netexec.ListenWorker("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
		}
		addrs[i] = w.Addr()
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
	}
	sess, err := netexec.DialWith(addrs, netexec.Timeouts{Job: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	res, err := multiway.ExecuteOverStage2(sess, q, opts, cfg, multiway.Stage2Hash)
	if err != nil {
		t.Fatalf("recovery from stall failed: %v", err)
	}
	if !script.Fired() {
		t.Fatal("stall never injected")
	}
	if res.Output != local.Output || res.Intermediate != local.Intermediate {
		t.Fatalf("recovered run diverged: got (out=%d mid=%d), fault-free (out=%d mid=%d)",
			res.Output, res.Intermediate, local.Output, local.Intermediate)
	}
}

// Package cost implements the paper's linear cost model (§VI-A):
//
//	w(r) = ci(r) + co(r) = wi·input(r) + wo·output(r)
//
// where input(r) is the number of input tuples a machine receives for region
// r (the region's semi-perimeter in join-matrix terms) and output(r) the
// number of output tuples it produces. The weights wi and wo are fitted by
// ordinary least squares on benchmark runs, mirroring the paper's regression
// ("wi = 1 and wo = 0.2 for band-joins, wi = 1 and wo = 0.3 for combinations
// of equi- and band-joins").
package cost

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the per-tuple processing costs.
type Model struct {
	Wi float64 // cost of processing one input tuple (receive + join)
	Wo float64 // cost of processing one output tuple (post-process/forward)
}

// DefaultBand is the paper's fitted model for band-joins.
var DefaultBand = Model{Wi: 1, Wo: 0.2}

// DefaultEquiBand is the paper's fitted model for combined equi+band joins.
var DefaultEquiBand = Model{Wi: 1, Wo: 0.3}

// Weight returns wi·input + wo·output.
func (m Model) Weight(input, output float64) float64 {
	return m.Wi*input + m.Wo*output
}

// Valid reports whether the model has usable non-negative weights with at
// least one positive term.
func (m Model) Valid() bool {
	return m.Wi >= 0 && m.Wo >= 0 && (m.Wi > 0 || m.Wo > 0) &&
		!math.IsNaN(m.Wi) && !math.IsNaN(m.Wo) && !math.IsInf(m.Wi, 0) && !math.IsInf(m.Wo, 0)
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("w(r) = %.3g·input + %.3g·output", m.Wi, m.Wo)
}

// Run is one calibration observation: a machine processed Input input tuples
// and Output output tuples in Seconds wall-clock seconds.
type Run struct {
	Input   float64
	Output  float64
	Seconds float64
}

// ErrSingular is returned by Calibrate when the observations do not determine
// the two weights (fewer than two runs, or all runs collinear).
var ErrSingular = errors.New("cost: calibration system is singular; vary the input/output mix across runs")

// Calibrate fits (wi, wo) by least squares through the origin:
// minimize Σ (wi·in + wo·out - sec)². Negative fitted weights are clamped to
// zero (a realistic cost is non-negative); the result is rescaled so wi = 1
// when wi > 0, matching the paper's normalized reporting.
func Calibrate(runs []Run) (Model, error) {
	var sII, sIO, sOO, sIS, sOS float64
	for _, r := range runs {
		sII += r.Input * r.Input
		sIO += r.Input * r.Output
		sOO += r.Output * r.Output
		sIS += r.Input * r.Seconds
		sOS += r.Output * r.Seconds
	}
	det := sII*sOO - sIO*sIO
	if len(runs) < 2 || math.Abs(det) < 1e-9*(sII*sOO+1) {
		return Model{}, ErrSingular
	}
	wi := (sIS*sOO - sOS*sIO) / det
	wo := (sOS*sII - sIS*sIO) / det
	if wi < 0 {
		wi = 0
	}
	if wo < 0 {
		wo = 0
	}
	m := Model{Wi: wi, Wo: wo}
	if !m.Valid() {
		return Model{}, ErrSingular
	}
	if m.Wi > 0 {
		m.Wo /= m.Wi
		m.Wi = 1
	}
	return m, nil
}

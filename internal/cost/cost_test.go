package cost

import (
	"math"
	"testing"
	"testing/quick"

	"ewh/internal/stats"
)

func TestWeight(t *testing.T) {
	m := Model{Wi: 1, Wo: 0.2}
	if got := m.Weight(10, 50); got != 20 {
		t.Fatalf("Weight(10,50) = %v, want 20", got)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		m    Model
		want bool
	}{
		{Model{1, 0.2}, true},
		{Model{0, 1}, true},
		{Model{0, 0}, false},
		{Model{-1, 1}, false},
		{Model{math.NaN(), 1}, false},
		{Model{math.Inf(1), 1}, false},
	}
	for _, c := range cases {
		if got := c.m.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestCalibrateRecoversWeights(t *testing.T) {
	// Synthesize runs from a known model plus small noise; Calibrate must
	// recover the wo/wi ratio.
	truth := Model{Wi: 1, Wo: 0.25}
	r := stats.NewRNG(1)
	var runs []Run
	for i := 0; i < 50; i++ {
		in := 1000 + r.Float64()*9000
		out := 500 + r.Float64()*20000
		sec := truth.Weight(in, out) * (1 + (r.Float64()-0.5)*0.02)
		runs = append(runs, Run{Input: in, Output: out, Seconds: sec})
	}
	m, err := Calibrate(runs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Wi != 1 {
		t.Fatalf("wi = %v, want normalized 1", m.Wi)
	}
	if math.Abs(m.Wo-0.25) > 0.02 {
		t.Fatalf("wo = %v, want ~0.25", m.Wo)
	}
}

func TestCalibrateSingular(t *testing.T) {
	if _, err := Calibrate(nil); err != ErrSingular {
		t.Errorf("nil runs: err = %v, want ErrSingular", err)
	}
	if _, err := Calibrate([]Run{{1, 1, 1}}); err != ErrSingular {
		t.Errorf("one run: err = %v, want ErrSingular", err)
	}
	// Collinear observations: output always 2x input.
	runs := []Run{{1, 2, 1}, {2, 4, 2}, {3, 6, 3}}
	if _, err := Calibrate(runs); err != ErrSingular {
		t.Errorf("collinear runs: err = %v, want ErrSingular", err)
	}
}

func TestCalibrateClampsNegative(t *testing.T) {
	// Pure-output cost: fitted wi should clamp at 0, not go negative.
	r := stats.NewRNG(2)
	var runs []Run
	for i := 0; i < 30; i++ {
		in := 1000 + r.Float64()*1000
		out := r.Float64() * 50000
		runs = append(runs, Run{Input: in, Output: out, Seconds: 0.5 * out})
	}
	m, err := Calibrate(runs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Wi < 0 || m.Wo <= 0 {
		t.Fatalf("got %+v, want wi >= 0, wo > 0", m)
	}
}

func TestWeightMonotoneProperty(t *testing.T) {
	// More work never costs less.
	m := DefaultBand
	f := func(a, b, da, db uint16) bool {
		in, out := float64(a), float64(b)
		return m.Weight(in+float64(da), out+float64(db)) >= m.Weight(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package bench

import (
	"fmt"
	"io"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/partition"
)

// WorkStealing quantifies §V's argument against work-stealing for joins:
// stealing needs many more partitions than machines (each machine pulls a
// new one when idle), but "increasing the number of partitions inherently
// increases replication" — splitting a partition duplicates the opposite
// relation's tuples on both halves. The experiment plans K·J partitions for
// K ∈ {1, 2, 4, 8}, schedules them onto J machines with the greedy pull
// order (LPT — what an idle-steals-next runtime converges to), and reports
// shipped tuples versus the resulting makespan.
//
// Two partitioners are measured: over a generic full-coverage grid (CI
// replication = rows+cols grows with √(KJ), §V's "inherently increases
// replication"), and over EWH regions (near-diagonal band-join tilings pay
// almost no extra replication while the makespan barely improves — the
// equi-weight histogram already equalized the pieces, so stealing has
// nothing left to win).
func WorkStealing(w io.Writer, cfg Config) error {
	cfg.Defaults()
	spec, err := MakeJoin("BCB-3", cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Work-stealing granularity (§V), BCB-3, J=%d machines\n", cfg.J)
	fmt.Fprintf(w, "%-10s %10s %14s | %14s %14s %12s\n",
		"partitions", "regions", "CI shipped", "CSIO shipped", "max machine", "vs K=1")
	var base float64
	for _, k := range []int{1, 2, 4, 8} {
		ciScheme := partition.NewCI(k * cfg.J)
		rows, cols := ciScheme.Grid()
		ciShipped := int64(len(spec.R1))*int64(cols) + int64(len(spec.R2))*int64(rows)
		opts := core.Options{J: k * cfg.J, Model: spec.Model, Seed: cfg.Seed + 1}
		plan, err := core.PlanCSIO(spec.R1, spec.R2, spec.Cond, opts)
		if err != nil {
			return err
		}
		res := exec.Run(spec.R1, spec.R2, spec.Cond, plan.Scheme, spec.Model, exec.Config{Seed: cfg.Seed + 2})
		// Pull-scheduling of the measured region works onto J machines.
		works := make([]float64, len(res.Workers))
		regions := plan.Regions
		for i := range res.Workers {
			works[i] = res.Workers[i].Work
		}
		for i := range regions {
			regions[i].Weight = works[i]
		}
		caps := make([]float64, cfg.J)
		for i := range caps {
			caps[i] = 1
		}
		a, err := partition.AssignRegions(regions, caps)
		if err != nil {
			return err
		}
		makespan := a.Makespan()
		if k == 1 {
			base = makespan
		}
		fmt.Fprintf(w, "%-10s %10d %14d | %14d %14.0f %11.2fx\n",
			fmt.Sprintf("K=%d", k), len(regions), ciShipped,
			res.NetworkTuples, makespan, makespan/base)
	}
	return nil
}

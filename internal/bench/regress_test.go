package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func row(name string, wall, out, net int64, maxWork float64) ExecBenchRow {
	return ExecBenchRow{Name: name, WallNS: wall, Output: out,
		NetworkTuples: net, MaxWork: maxWork}
}

func TestCompareExecBenchGate(t *testing.T) {
	base := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
		row("a", 100_000_000, 50, 200, 10),
		row("b", 200_000_000, 70, 300, 20),
	}}

	t.Run("identical passes", func(t *testing.T) {
		regs, err := CompareExecBench(base, base, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("within tolerance passes, improvements pass", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 120_000_000, 50, 200, 9), // +20% wall, under the 25% gate
			row("b", 50_000_000, 70, 300, 20), // 4x faster
		}}
		regs, err := CompareExecBench(base, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("sub-slack jitter on tiny rows passes", func(t *testing.T) {
		tiny := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 1_000_000, 50, 200, 10), // 1ms row
		}}
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 3_000_000, 50, 200, 10), // 3x, but only +2ms — under wallSlackNS
		}}
		regs, err := CompareExecBench(tiny, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("scheduler jitter under the absolute slack flagged: %v", regs)
		}
	})

	t.Run("wall regression caught", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 130_000_000, 50, 200, 10), // +30%
			row("b", 200_000_000, 70, 300, 20),
		}}
		regs, err := CompareExecBench(base, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Row != "a" || regs[0].Metric != "wall_ns" {
			t.Fatalf("want one wall_ns regression on row a, got %v", regs)
		}
		if r := regs[0].Ratio(); r < 1.29 || r > 1.31 {
			t.Fatalf("ratio %v, want ~1.3", r)
		}
	})

	t.Run("output drift is a correctness failure either direction", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 100_000_000, 49, 200, 10), // fewer results than the baseline
			row("b", 200_000_000, 70, 300, 20),
		}}
		regs, err := CompareExecBench(base, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Metric != "output" {
			t.Fatalf("want one output regression, got %v", regs)
		}
	})

	t.Run("missing row caught, new rows ignored", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 100_000_000, 50, 200, 10),
			row("c", 1, 1, 1, 1), // new coverage: fine
		}}
		regs, err := CompareExecBench(base, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Row != "b" || regs[0].Metric != "missing" {
			t.Fatalf("want row b reported missing, got %v", regs)
		}
	})

	t.Run("network and max_work gated", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row("a", 100_000_000, 50, 300, 10), // +50% network
			row("b", 200_000_000, 70, 300, 30), // +50% max_work
		}}
		regs, err := CompareExecBench(base, cur, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 2 || regs[0].Metric != "network_tuples" || regs[1].Metric != "max_work" {
			t.Fatalf("want network_tuples and max_work regressions, got %v", regs)
		}
	})

	t.Run("calibration row normalizes wall across machines", func(t *testing.T) {
		calBase := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row(CalibrationRow, 50_000_000, 7, 0, 0),
			row("a", 100_000_000, 50, 200, 10),
		}}
		// A machine 2x slower: calibration doubles, row "a" doubling with it
		// is hardware, not regression.
		slower := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row(CalibrationRow, 100_000_000, 7, 0, 0),
			row("a", 200_000_000, 50, 200, 10),
		}}
		regs, err := CompareExecBench(calBase, slower, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("hardware slowdown flagged as regression: %v", regs)
		}
		// Same slower machine, but row "a" is 4x — 2x beyond hardware: real.
		worse := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row(CalibrationRow, 100_000_000, 7, 0, 0),
			row("a", 400_000_000, 50, 200, 10),
		}}
		regs, err = CompareExecBench(calBase, worse, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Metric != "wall_ns" {
			t.Fatalf("want one wall_ns regression beyond calibration, got %v", regs)
		}
		// A drifted calibration checksum is a correctness failure.
		badSum := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
			row(CalibrationRow, 50_000_000, 8, 0, 0),
			row("a", 100_000_000, 50, 200, 10),
		}}
		regs, err = CompareExecBench(calBase, badSum, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Row != CalibrationRow || regs[0].Metric != "output" {
			t.Fatalf("want calibration output mismatch, got %v", regs)
		}
	})

	t.Run("config mismatch is an error", func(t *testing.T) {
		cur := &ExecBenchReport{Scale: 2, Seed: 42}
		if _, err := CompareExecBench(base, cur, 0.25); err == nil {
			t.Fatal("mismatched scale accepted")
		}
	})
}

func TestCheckExecBenchAgainstRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	cfgRep := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
		row("a", 100_000_000, 50, 200, 10),
	}}
	// Write the baseline through the same JSON shape the CLI emits.
	if err := writeReportJSON(path, cfgRep); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := CheckExecBenchAgainst(&sb, cfgRep, path, 0.25); err != nil {
		t.Fatalf("gate failed on identical report: %v (output %q)", err, sb.String())
	}
	if !strings.Contains(sb.String(), "passed") {
		t.Fatalf("output %q lacks pass notice", sb.String())
	}
	bad := &ExecBenchReport{Scale: 1, Seed: 42, Rows: []ExecBenchRow{
		row("a", 500_000_000, 50, 200, 10),
	}}
	sb.Reset()
	err := CheckExecBenchAgainst(&sb, bad, path, 0.25)
	if err == nil {
		t.Fatal("5x wall regression passed the gate")
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("output %q lacks regression line", sb.String())
	}
}

func TestCPUMismatchWarningAnnotatesGate(t *testing.T) {
	cur := &ExecBenchReport{CPUs: 4, GOMAXPROCS: 4}
	matched := &ExecBenchReport{CPUs: 4, GOMAXPROCS: 4}
	if w := CPUMismatchWarning(matched, cur, "x.json"); w != "" {
		t.Fatalf("matching shape warned: %q", w)
	}
	// Different raw counts but the same EFFECTIVE parallelism (min of cpus
	// and gomaxprocs) must not warn: an 8-core machine pinned to 4 procs
	// delivers the same overlap as a 4-core one.
	pinned := &ExecBenchReport{CPUs: 8, GOMAXPROCS: 4}
	if w := CPUMismatchWarning(pinned, cur, "x.json"); w != "" {
		t.Fatalf("equal effective parallelism warned: %q", w)
	}
	legacy := &ExecBenchReport{} // pre-cpus baseline: nothing to compare
	if w := CPUMismatchWarning(legacy, cur, "x.json"); w != "" {
		t.Fatalf("legacy baseline warned: %q", w)
	}
	// The mc4 scenario: recorded on a 1-core container claiming
	// GOMAXPROCS=4, gating a genuine 4-core run.
	container := &ExecBenchReport{CPUs: 1, GOMAXPROCS: 4}
	if w := CPUMismatchWarning(container, cur, "x.json"); !strings.Contains(w, "WARNING") ||
		!strings.Contains(w, "x.json") {
		t.Fatalf("mismatch warning missing or unnamed: %q", w)
	}

	// End to end: a cpus-mismatched baseline must warn loudly AND annotate
	// the gate verdict, while still gating. Shapes come from the reports'
	// recorded fields, so the test is hardware-independent.
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	base := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 1, GOMAXPROCS: 4, Rows: []ExecBenchRow{
		row("a", 100_000_000, 50, 200, 10),
	}}
	if err := writeReportJSON(path, base); err != nil {
		t.Fatal(err)
	}
	curFull := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 4, GOMAXPROCS: 4, Rows: base.Rows}
	var sb strings.Builder
	if err := CheckExecBenchAgainst(&sb, curFull, path, 0.25); err != nil {
		t.Fatalf("gate failed on identical rows: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "cross-hardware") {
		t.Fatalf("output lacks the mismatch warning/annotation: %q", out)
	}
}

// TestCPUMismatchFailsWhenStreamDriftGated pins the hard edge of the
// mismatch policy: the moment a baseline gates the continuous-join drift
// row, a parallelism-shape mismatch stops being a warning and fails the
// gate outright — that row's wall/makespan verdicts require the recording
// and the run to have the same worker overlap. A matching-shape run over
// the same baseline must still pass, and a mismatched baseline WITHOUT the
// drift row must stay a warning (the legacy envelope contract).
func TestCPUMismatchFailsWhenStreamDriftGated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	rows := []ExecBenchRow{
		row("a", 100_000_000, 50, 200, 10),
		row(StreamDriftRow, 80_000_000, 1234, 20_000, 40_000),
	}
	base := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 1, GOMAXPROCS: 4, Rows: rows}
	if err := writeReportJSON(path, base); err != nil {
		t.Fatal(err)
	}

	mismatched := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 4, GOMAXPROCS: 4, Rows: rows}
	var sb strings.Builder
	err := CheckExecBenchAgainst(&sb, mismatched, path, 0.25)
	if err == nil {
		t.Fatal("parallelism mismatch over a drift-gated baseline passed")
	}
	if !strings.Contains(err.Error(), StreamDriftRow) || !strings.Contains(err.Error(), "BENCH_current") {
		t.Fatalf("failure does not name the row and the promotion remedy: %v", err)
	}
	if !strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("the loud warning must still print before the failure: %q", sb.String())
	}

	matched := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 1, GOMAXPROCS: 4, Rows: rows}
	sb.Reset()
	if err := CheckExecBenchAgainst(&sb, matched, path, 0.25); err != nil {
		t.Fatalf("matching shape failed: %v (output %q)", err, sb.String())
	}

	// Same mismatch, baseline without the drift row: warn and gate as before.
	legacyPath := filepath.Join(dir, "legacy.json")
	legacy := &ExecBenchReport{Scale: 1, Seed: 42, CPUs: 1, GOMAXPROCS: 4, Rows: rows[:1]}
	if err := writeReportJSON(legacyPath, legacy); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := CheckExecBenchAgainst(&sb, mismatched, legacyPath, 0.25); err != nil {
		t.Fatalf("legacy mismatch hard-failed: %v", err)
	}
	if !strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("legacy mismatch lost its warning: %q", sb.String())
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/matrix"
	"ewh/internal/tiling"
	"ewh/internal/workload"
)

// TableIV prints the joins' characteristics table (input/output sizes, ρoi).
func TableIV(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintf(w, "Table IV: joins' characteristics (scale=%d, sizes in tuples)\n", cfg.Scale)
	fmt.Fprintf(w, "%-8s %12s %12s %8s\n", "join", "input", "output", "rho_oi")
	for _, id := range TableIVJoins {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		rho := RhoOI(spec)
		out := int64(rho * float64(spec.InputSize()))
		fmt.Fprintf(w, "%-8s %12d %12d %8.2f\n", id, spec.InputSize(), out, rho)
	}
	return nil
}

// Fig4a prints total execution time (stats + join) for every Table IV join
// under the three schemes.
func Fig4a(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintf(w, "Fig 4a: total execution time (s), J=%d scale=%d\n", cfg.J, cfg.Scale)
	fmt.Fprintf(w, "%-8s %8s | %10s %10s %10s | %10s %10s\n",
		"join", "rho_oi", "CI total", "CSI total", "CSIO total", "CSI stats", "CSIO stats")
	for _, id := range TableIVJoins {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		tp := CalibrateThroughput(spec.Model, cfg.Seed)
		rho := RhoOI(spec)
		runs := map[string]*SchemeRun{}
		for _, s := range Schemes {
			r, err := RunScheme(spec, s, cfg, tp)
			if err != nil {
				return err
			}
			runs[s] = r
		}
		fmt.Fprintf(w, "%-8s %8.2f | %10.4f %10.4f %10.4f | %10.4f %10.4f\n",
			id, rho,
			runs["CI"].TotalSeconds, runs["CSI"].TotalSeconds, runs["CSIO"].TotalSeconds,
			runs["CSI"].StatsSeconds, runs["CSIO"].StatsSeconds)
	}
	return nil
}

// Fig4b prints total execution time for the BCB-β sweep, normalized to
// CSIO's, against the output/input ratio ρoi.
func Fig4b(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintf(w, "Fig 4b: normalized total time vs rho_oi (BCB sweep), J=%d scale=%d\n", cfg.J, cfg.Scale)
	fmt.Fprintf(w, "%-8s %8s | %8s %8s %8s\n", "join", "rho_oi", "CI", "CSI", "CSIO")
	for _, beta := range []int64{1, 2, 3, 4, 8, 16} {
		spec, err := MakeJoin(fmt.Sprintf("BCB-%d", beta), cfg)
		if err != nil {
			return err
		}
		tp := CalibrateThroughput(spec.Model, cfg.Seed)
		rho := RhoOI(spec)
		totals := map[string]float64{}
		for _, s := range Schemes {
			r, err := RunScheme(spec, s, cfg, tp)
			if err != nil {
				return err
			}
			totals[s] = r.TotalSeconds
		}
		base := totals["CSIO"]
		fmt.Fprintf(w, "BCB-%-4d %8.2f | %8.2f %8.2f %8.2f\n",
			beta, rho, totals["CI"]/base, totals["CSI"]/base, totals["CSIO"]/base)
	}
	return nil
}

// fig4cJoins are the resource-consumption joins of Figs. 4c and 4h.
var fig4cJoins = []string{"BICD", "BCB-3", "BEOCD"}

// Fig4c prints cluster memory consumption per scheme.
func Fig4c(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintf(w, "Fig 4c: cluster memory consumption (MB), J=%d scale=%d\n", cfg.J, cfg.Scale)
	fmt.Fprintf(w, "%-8s | %10s %10s %10s\n", "join", "CI", "CSI", "CSIO")
	for _, id := range fig4cJoins {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		tp := CalibrateThroughput(spec.Model, cfg.Seed)
		mems := map[string]float64{}
		for _, s := range Schemes {
			r, err := RunScheme(spec, s, cfg, tp)
			if err != nil {
				return err
			}
			mems[s] = float64(r.MemoryBytes) / (1 << 20)
		}
		fmt.Fprintf(w, "%-8s | %10.1f %10.1f %10.1f\n", id, mems["CI"], mems["CSI"], mems["CSIO"])
	}
	return nil
}

// scaleRow is one weak-scaling measurement.
type scaleRow struct {
	label   string
	j       int
	totals  map[string]float64
	memesMB map[string]float64
}

// scalabilityRows runs a join at (size ∝ J) for J in {J/2, J, 2J} — the
// paper's 16/32/64 pattern around the configured J.
func scalabilityRows(joinID string, cfg Config) ([]scaleRow, error) {
	cfg.Defaults()
	var rows []scaleRow
	baseJ := cfg.J
	for _, mult := range []int{1, 2, 4} {
		c := cfg
		c.J = baseJ * mult / 2
		if c.J < 1 {
			c.J = 1
		}
		c.Scale = cfg.Scale * mult
		spec, err := MakeJoin(joinID, c)
		if err != nil {
			return nil, err
		}
		tp := CalibrateThroughput(spec.Model, c.Seed)
		row := scaleRow{
			label:   fmt.Sprintf("%dk/%d", spec.InputSize()/1000, c.J),
			j:       c.J,
			totals:  map[string]float64{},
			memesMB: map[string]float64{},
		}
		for _, s := range Schemes {
			r, err := RunScheme(spec, s, c, tp)
			if err != nil {
				return nil, err
			}
			row.totals[s] = r.TotalSeconds
			row.memesMB[s] = float64(r.MemoryBytes) / (1 << 20)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4d prints BCB-3 weak-scaling execution time.
func Fig4d(w io.Writer, cfg Config) error {
	return scalabilityTime(w, "Fig 4d: BCB-3 scalability, total time (s)", "BCB-3", cfg)
}

// Fig4e prints BCB-3 weak-scaling memory consumption.
func Fig4e(w io.Writer, cfg Config) error {
	return scalabilityMem(w, "Fig 4e: BCB-3 scalability, memory (MB)", "BCB-3", cfg)
}

// Fig4f prints BEOCD weak-scaling execution time.
func Fig4f(w io.Writer, cfg Config) error {
	return scalabilityTime(w, "Fig 4f: BEOCD scalability, total time (s)", "BEOCD", cfg)
}

// Fig4g prints BEOCD weak-scaling memory consumption.
func Fig4g(w io.Writer, cfg Config) error {
	return scalabilityMem(w, "Fig 4g: BEOCD scalability, memory (MB)", "BEOCD", cfg)
}

func scalabilityTime(w io.Writer, title, joinID string, cfg Config) error {
	rows, err := scalabilityRows(joinID, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-14s | %10s %10s %10s\n", "input/J", "CI", "CSI", "CSIO")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s | %10.4f %10.4f %10.4f\n",
			r.label, r.totals["CI"], r.totals["CSI"], r.totals["CSIO"])
	}
	return nil
}

func scalabilityMem(w io.Writer, title, joinID string, cfg Config) error {
	rows, err := scalabilityRows(joinID, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-14s | %10s %10s %10s\n", "input/J", "CI", "CSI", "CSIO")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s | %10.1f %10.1f %10.1f\n",
			r.label, r.memesMB["CI"], r.memesMB["CSI"], r.memesMB["CSIO"])
	}
	return nil
}

// Fig4h prints the maximum region weight per scheme, plus CSIO's planner
// estimate — the cost-model accuracy figure.
func Fig4h(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintf(w, "Fig 4h: max region weight (model units, millions), J=%d scale=%d\n", cfg.J, cfg.Scale)
	fmt.Fprintf(w, "%-8s | %10s %10s %10s %10s %9s\n", "join", "CI", "CSI", "CSIO", "CSIO-est", "est-err")
	for _, id := range fig4cJoins {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		tp := CalibrateThroughput(spec.Model, cfg.Seed)
		maxw := map[string]float64{}
		var est float64
		for _, s := range Schemes {
			r, err := RunScheme(spec, s, cfg, tp)
			if err != nil {
				return err
			}
			maxw[s] = r.MaxWork
			if s == "CSIO" {
				est = r.EstMaxWork
			}
		}
		errPct := 0.0
		if maxw["CSIO"] > 0 {
			errPct = 100 * (est - maxw["CSIO"]) / maxw["CSIO"]
		}
		const mil = 1e6
		fmt.Fprintf(w, "%-8s | %10.3f %10.3f %10.3f %10.3f %8.1f%%\n",
			id, maxw["CI"]/mil, maxw["CSI"]/mil, maxw["CSIO"]/mil, est/mil, errPct)
	}
	return nil
}

// TableV prints CSI's histogram-algorithm time and join time for growing
// bucket counts p, showing that more input statistics cannot cure JPS.
func TableV(w io.Writer, cfg Config) error {
	cfg.Defaults()
	ps := []int{500, 1000, 2000, 4000, 8000, 16000}
	for _, id := range []string{"BEOCD", "BCB-3"} {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		tp := CalibrateThroughput(spec.Model, cfg.Seed)
		csio, err := RunScheme(spec, "CSIO", cfg, tp)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Table V (%s): CSI vs p; CSIO total %.2fs (hist alg %.3fs)\n",
			id, csio.TotalSeconds, csio.HistAlgSeconds)
		fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "p", "hist alg (s)", "join (s)", "total (s)")
		for _, p := range ps {
			s := *spec
			s.P = p
			r, err := RunScheme(&s, "CSI", cfg, tp)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8d %12.3f %12.2f %12.2f\n", p, r.HistAlgSeconds, r.JoinSeconds, r.TotalSeconds)
		}
	}
	return nil
}

// TableIII benchmarks the regionalization solvers — baseline BSP versus
// MonotonicBSP — on coarsened matrices of growing size nc, reporting DP
// states and wall time (the complexity-gap ablation).
func TableIII(w io.Writer, cfg Config) error {
	cfg.Defaults()
	fmt.Fprintln(w, "Table III: regionalization cost, BSP vs MonotonicBSP")
	fmt.Fprintf(w, "%-6s | %12s %12s | %12s %12s\n",
		"nc", "BSP states", "BSP time", "Mono states", "Mono time")
	spec, err := MakeJoin("BCB-3", cfg)
	if err != nil {
		return err
	}
	opts := core.Options{J: cfg.J, Model: spec.Model, Seed: cfg.Seed}
	_ = opts
	for _, nc := range []int{8, 16, 32, 64} {
		sm, err := buildSampleMatrix(spec, cfg, 4*nc)
		if err != nil {
			return err
		}
		rowCuts, colCuts := tiling.CoarsenGrid(sm, nc, spec.Model, tiling.CoarsenOptions{})
		d := matrix.Coarsen(sm, rowCuts, colCuts)
		delta := d.TotalWeight(spec.Model) / float64(cfg.J)

		bsp := tiling.NewBSP(d, spec.Model)
		t0 := time.Now()
		bsp.MinRegions(delta, 1<<20)
		bspTime := time.Since(t0)

		mono := tiling.NewMonotonicBSP(d, spec.Model)
		t0 = time.Now()
		mono.MinRegions(delta, 1<<20)
		monoTime := time.Since(t0)

		fmt.Fprintf(w, "%-6d | %12d %12s | %12d %12s\n",
			nc, bsp.Stats().States, bspTime.Round(time.Microsecond),
			mono.Stats().States, monoTime.Round(time.Microsecond))
	}
	return nil
}

// buildSampleMatrix exposes the planner's MS construction for ablations.
func buildSampleMatrix(spec *JoinSpec, cfg Config, ns int) (*matrix.Sample, error) {
	plan, err := core.BuildSampleMatrix(spec.R1, spec.R2, spec.Cond, core.Options{
		J: cfg.J, Model: spec.Model, Seed: cfg.Seed, NS: ns,
	})
	return plan, err
}

// Worst demonstrates the §VI-E worst cases: the bounded slowdown on
// input-cost-dominated joins and the high-selectivity fallback to CI.
func Worst(w io.Writer, cfg Config) error {
	cfg.Defaults()
	spec, err := MakeJoin("BICD", cfg)
	if err != nil {
		return err
	}
	tp := CalibrateThroughput(spec.Model, cfg.Seed)
	csi, err := RunScheme(spec, "CSI", cfg, tp)
	if err != nil {
		return err
	}
	csio, err := RunScheme(spec, "CSIO", cfg, tp)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Worst case 1 (input-cost dominated, BICD): CSIO/CSI total = %.3fx (paper: <= 1.04x)\n",
		csio.TotalSeconds/csi.TotalSeconds)

	// High-selectivity join: a near-Cartesian band join must trip the
	// fallback, wasting only the stats time.
	r1 := workload.Uniform(20000*cfg.Scale, 64, cfg.Seed+7)
	r2 := workload.Uniform(20000*cfg.Scale, 64, cfg.Seed+8)
	plan, err := core.PlanCSIO(r1, r2, spec.Cond, core.Options{J: cfg.J, Model: cost.DefaultBand, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Worst case 2 (high selectivity): fallback=%v scheme=%s m/n=%.0f stats wasted=%.3fs\n",
		plan.Fallback, plan.Scheme.Name(),
		float64(plan.M)/float64(len(r1)), plan.StatsDuration.Seconds())
	return nil
}

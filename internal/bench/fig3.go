package bench

import (
	"fmt"
	"io"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/tiling"
	"ewh/internal/workload"
)

// Fig3 walks the histogram algorithm's three stages on a small skewed
// workload, printing the artifacts Fig. 3 illustrates: the sample matrix MS
// (size, max cell weight σ), the coarsened matrix MC (cuts, max cell
// weight), and the equi-weight histogram MH (regions and weights). It makes
// the §III-D accuracy chain visible: σ ≤ wOPT/2, coarsening within its grid
// bound, regionalization within the BSP bound.
func Fig3(w io.Writer, cfg Config) error {
	cfg.Defaults()
	model := cost.DefaultBand
	n := 4000 * cfg.Scale
	r1 := workload.Zipfian(n, int64(n), 0.8, cfg.Seed)
	r2 := workload.Zipfian(n, int64(n), 0.8, cfg.Seed+1)
	cond := join.NewBand(3)
	j := cfg.J

	opts := core.Options{J: j, Model: model, Seed: cfg.Seed}
	sm, err := core.BuildSampleMatrix(r1, r2, cond, opts)
	if err != nil {
		return err
	}
	sigma := sm.MaxCellWeight(model)
	wOPT := (model.Wi*2*float64(n) + model.Wo*float64(sm.M)) / float64(j)
	fmt.Fprintf(w, "Fig 3: histogram algorithm stages (n=%d, J=%d, Zipf 0.8 band-3 join)\n", n, j)
	fmt.Fprintf(w, "stage 1, sampling:      MS %dx%d, m=%d, σ=%.0f (bound wOPT/2=%.0f)\n",
		sm.Rows, sm.Cols, sm.M, sigma, wOPT/2)

	nc := 2 * j
	rowCuts, colCuts := tiling.CoarsenGrid(sm, nc, model, tiling.CoarsenOptions{})
	d := matrix.Coarsen(sm, rowCuts, colCuts)
	maxCell := 0.0
	for i := 0; i < d.Rows; i++ {
		for c := 0; c < d.Cols; c++ {
			if d.Candidate(i, c) {
				if cw := d.Weight(model, matrix.Rect{R0: i, C0: c, R1: i, C1: c}); cw > maxCell {
					maxCell = cw
				}
			}
		}
	}
	fmt.Fprintf(w, "stage 2, coarsening:    MC %dx%d, max cell weight %.0f\n", d.Rows, d.Cols, maxCell)

	regions, err := tiling.Regionalize(d, model, j, tiling.RegionalizeOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stage 3, regionalization: MH with %d regions, max region weight %.0f (lower bound %.0f)\n",
		len(regions), tiling.MaxWeight(regions), wOPT)
	for i, reg := range regions {
		fmt.Fprintf(w, "  region %d: cells [%d..%d]x[%d..%d]  input=%.0f output=%.0f weight=%.0f\n",
			i, reg.Rect.R0, reg.Rect.R1, reg.Rect.C0, reg.Rect.C1, reg.Input, reg.Output, reg.Weight)
	}
	return nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"

	"ewh/internal/cost"
)

func testCfg() Config { return Config{Scale: 1, J: 4, Seed: 42} }

func TestMakeJoinIDs(t *testing.T) {
	for _, id := range TableIVJoins {
		spec, err := MakeJoin(id, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if spec.InputSize() == 0 {
			t.Fatalf("%s: empty input", id)
		}
	}
	if _, err := MakeJoin("nope", testCfg()); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := MakeJoin("BCB-x", testCfg()); err == nil {
		t.Error("bad BCB beta accepted")
	}
}

func TestCalibrateThroughputPositive(t *testing.T) {
	tp := CalibrateThroughput(cost.DefaultBand, 1)
	if tp <= 0 {
		t.Fatalf("throughput %v", tp)
	}
	if tp.Seconds(float64(tp)) < 0.99 || tp.Seconds(float64(tp)) > 1.01 {
		t.Error("Seconds(1 second of work) != 1s")
	}
	if Throughput(0).Seconds(100) != 0 {
		t.Error("zero throughput should yield 0 seconds")
	}
}

func TestRunSchemeAll(t *testing.T) {
	cfg := testCfg()
	spec, err := MakeJoin("BCB-2", Config{Scale: 1, J: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test speed.
	spec.R1 = spec.R1[:20000]
	spec.R2 = spec.R2[:20000]
	tp := CalibrateThroughput(spec.Model, cfg.Seed)
	var outputs []int64
	for _, s := range Schemes {
		r, err := RunScheme(spec, s, cfg, tp)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.TotalSeconds < 0 || r.JoinSeconds < 0 {
			t.Fatalf("%s: negative seconds", s)
		}
		outputs = append(outputs, r.Output)
	}
	// All schemes compute the same join.
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("schemes disagree on output: %v", outputs)
	}
	if _, err := RunScheme(spec, "bogus", cfg, tp); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestFig1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf, 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CI", "CSI", "CSIO", "exact output size: 29"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := TableIV(&buf, testCfg()); err != nil {
		t.Fatal(err)
	}
	for _, id := range TableIVJoins {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("Table IV missing row %s", id)
		}
	}
}

func TestTableIIIOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := TableIII(&buf, testCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MonotonicBSP") {
		t.Error("Table III missing header")
	}
}

func TestWorstOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Worst(&buf, testCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fallback=true") {
		t.Errorf("worst-case 2 did not trip the fallback:\n%s", buf.String())
	}
}

// TestDriversSmoke runs every experiment driver end to end at a small
// configuration, checking they produce output without error.
func TestDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow in -short mode")
	}
	cfg := Config{Scale: 1, J: 4, Seed: 42}
	drivers := map[string]func(*bytes.Buffer) error{
		"fig3":   func(b *bytes.Buffer) error { return Fig3(b, cfg) },
		"fig4a":  func(b *bytes.Buffer) error { return Fig4a(b, cfg) },
		"fig4b":  func(b *bytes.Buffer) error { return Fig4b(b, cfg) },
		"fig4c":  func(b *bytes.Buffer) error { return Fig4c(b, cfg) },
		"fig4d":  func(b *bytes.Buffer) error { return Fig4d(b, cfg) },
		"fig4f":  func(b *bytes.Buffer) error { return Fig4f(b, cfg) },
		"fig4h":  func(b *bytes.Buffer) error { return Fig4h(b, cfg) },
		"tab5":   func(b *bytes.Buffer) error { return TableV(b, cfg) },
		"ablate": func(b *bytes.Buffer) error { return Ablations(b, cfg) },
	}
	for name, f := range drivers {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestEquiAndStealDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow in -short mode")
	}
	cfg := Config{Scale: 1, J: 4, Seed: 42}
	var buf bytes.Buffer
	if err := EquiComparison(&buf, cfg); err != nil {
		t.Fatalf("equi: %v", err)
	}
	if !strings.Contains(buf.String(), "HashPRPD") {
		t.Error("equi output missing PRPD row")
	}
	buf.Reset()
	if err := WorkStealing(&buf, cfg); err != nil {
		t.Fatalf("steal: %v", err)
	}
	if !strings.Contains(buf.String(), "K=8") {
		t.Error("steal output missing K=8 row")
	}
}

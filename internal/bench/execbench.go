package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/stats"
	"ewh/internal/streamjoin"
)

// ExecBenchRow is one engine micro-measurement. WallNS is the minimum of
// three repetitions, the most noise-robust point estimate on shared machines.
type ExecBenchRow struct {
	Name          string  `json:"name"`
	Scheme        string  `json:"scheme"`
	N1            int     `json:"n1"`
	N2            int     `json:"n2"`
	Mappers       int     `json:"mappers"`
	WallNS        int64   `json:"wall_ns"`
	Output        int64   `json:"output"`
	NetworkTuples int64   `json:"network_tuples"`
	MaxWork       float64 `json:"max_work"`
}

// ExecBenchReport is the machine-readable engine benchmark ewhbench emits as
// BENCH_exec.json so successive PRs can track the hot-path trajectory. CPUs
// records the recording machine's core count — provenance for telling a
// single-core-recorded baseline from a genuine multi-core one (the
// regression gate compares GOMAXPROCS, not CPUs).
type ExecBenchReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	CPUs       int            `json:"cpus,omitempty"`
	Scale      int            `json:"scale"`
	Seed       uint64         `json:"seed"`
	Rows       []ExecBenchRow `json:"rows"`
}

const execBenchReps = 5

// CalibrationRow names the machine-speed calibration entry: a fixed
// xorshift spin no repo change can affect, so the ratio of its wall time
// across two reports measures hardware speed, not code. The regression gate
// normalizes wall comparisons by it, making a committed baseline portable
// across runners; its deterministic checksum rides in Output so the exact-
// output rule also validates the spin itself.
const CalibrationRow = "calibrate-spin"

// StreamDriftRow names the continuous-join benchmark entry: a stream job
// whose window distribution flips mid-stream, forcing a drift-triggered
// replan every run. Its wall time and modeled makespan depend on windows
// genuinely overlapping across workers, so the regression gate refuses to
// compare it across parallelism shapes (see CheckExecBenchAgainst).
const StreamDriftRow = "netexec-stream-drift"

// spinCalibration runs the calibration loop (min wall over the usual reps).
func spinCalibration() (int64, time.Duration) {
	var best time.Duration
	var sum uint64
	for rep := 0; rep < execBenchReps; rep++ {
		s := uint64(0x9E3779B97F4A7C15)
		var acc uint64
		start := time.Now()
		for i := 0; i < 1<<25; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			acc += s
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
		sum = acc
	}
	return int64(sum), best
}

// ExecBench times the engine's hot paths: the shuffle (fan-out-1 and
// replicating), the full CSIO band-join execution, the local merge-sweep
// count in isolation, and the distributed (netexec) path over loopback TCP
// workers — both the v2 binary protocol and its v1 gob baseline, so the
// wire-format advantage stays a tracked number.
func ExecBench(cfg Config) (*ExecBenchReport, error) {
	cfg.Defaults()
	n := 200000 * cfg.Scale
	rep := &ExecBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
		Scale: cfg.Scale, Seed: cfg.Seed}

	spinSum, spinWall := spinCalibration()
	rep.Rows = append(rep.Rows, ExecBenchRow{
		Name: CalibrationRow, Scheme: "-", Mappers: 1,
		WallNS: spinWall.Nanoseconds(), Output: spinSum,
	})

	rng := stats.NewRNG(cfg.Seed)
	r1 := make([]join.Key, n)
	r2 := make([]join.Key, n)
	for i := range r1 {
		r1[i] = rng.Int64n(int64(n))
	}
	for i := range r2 {
		r2[i] = rng.Int64n(int64(n))
	}
	empty := []join.Key{}

	hash, err := partition.NewHash(cfg.J, nil)
	if err != nil {
		return nil, err
	}
	ci := partition.NewCI(cfg.J)
	band := join.NewBand(2)
	csio, err := core.PlanCSIO(r1, r2, band, core.Options{J: cfg.J, Model: cost.DefaultBand, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("execbench: plan CSIO: %w", err)
	}

	runRow := func(name string, s partition.Scheme, ra, rb []join.Key, cond join.Condition,
		engine exec.JoinEngine) {
		var best *exec.Result
		for i := 0; i < execBenchReps; i++ {
			res := exec.Run(ra, rb, cond, s, cost.DefaultBand,
				exec.Config{Seed: cfg.Seed, Mappers: 4, Engine: engine})
			if best == nil || res.WallTime < best.WallTime {
				best = res
			}
		}
		rep.Rows = append(rep.Rows, ExecBenchRow{
			Name: name, Scheme: s.Name(), N1: len(ra), N2: len(rb), Mappers: 4,
			WallNS: best.WallTime.Nanoseconds(), Output: best.Output,
			NetworkTuples: best.NetworkTuples, MaxWork: best.MaxWork,
		})
	}

	runRow("shuffle-hash", hash, r1, empty, join.Equi{}, exec.EngineAuto)
	runRow("shuffle-ci-replicated", ci, r1, empty, band, exec.EngineAuto)
	runRow("run-csio-band", csio.Scheme, r1, r2, band, exec.EngineAuto)
	// The equi hot path under the explicit hash engine: Local consumes the
	// chunked scatter and insert-while-probes — the row the PR-9 local-join
	// work is tracked by (its merge twin is the localjoin row below; the
	// distributed twin is netexec-session-hashjoin-overlap).
	runRow("exec-hashjoin-equi", hash, r1, r2, join.Equi{}, exec.EngineHash)

	var bestCount time.Duration
	var out int64
	for i := 0; i < execBenchReps; i++ {
		start := time.Now()
		out = localjoin.Count(r1, r2, band)
		if d := time.Since(start); bestCount == 0 || d < bestCount {
			bestCount = d
		}
	}
	rep.Rows = append(rep.Rows, ExecBenchRow{
		Name: "localjoin-band-count", Scheme: "-", N1: n, N2: n, Mappers: 1,
		WallNS: bestCount.Nanoseconds(), Output: out,
	})

	// Distributed path over loopback TCP. The shuffle rows ship R1 against
	// an empty R2, so the workers' local join is a no-op and the wall time
	// is the wire path end to end: batch-route, encode, ship, decode.
	workers := cfg.J
	if w := csio.Scheme.Workers(); w > workers {
		workers = w
	}
	addrs := make([]string, workers)
	for i := range addrs {
		w, err := netexec.ListenWorker("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("execbench: loopback worker: %w", err)
		}
		go func() { _ = w.Serve() }()
		defer w.Close()
		addrs[i] = w.Addr()
	}
	runNetRow := func(name string, run func(addrs []string, r1, r2 []join.Key,
		cond join.Condition, s partition.Scheme, model cost.Model,
		cfg exec.Config) (*exec.Result, error),
		s partition.Scheme, ra, rb []join.Key, cond join.Condition) error {

		var best *exec.Result
		for i := 0; i < execBenchReps; i++ {
			res, err := run(addrs, ra, rb, cond, s, cost.DefaultBand,
				exec.Config{Seed: cfg.Seed, Mappers: 4})
			if err != nil {
				return fmt.Errorf("execbench: %s: %w", name, err)
			}
			if best == nil || res.WallTime < best.WallTime {
				best = res
			}
		}
		rep.Rows = append(rep.Rows, ExecBenchRow{
			Name: name, Scheme: best.Scheme, N1: len(ra), N2: len(rb), Mappers: 4,
			WallNS: best.WallTime.Nanoseconds(), Output: best.Output,
			NetworkTuples: best.NetworkTuples, MaxWork: best.MaxWork,
		})
		return nil
	}
	if err := runNetRow("netexec-shuffle-binary", netexec.Run, hash, r1, empty, join.Equi{}); err != nil {
		return nil, err
	}
	if err := runNetRow("netexec-shuffle-gob", netexec.RunGob, hash, r1, empty, join.Equi{}); err != nil {
		return nil, err
	}
	if err := runNetRow("netexec-csio-band-binary", netexec.Run, csio.Scheme, r1, r2, band); err != nil {
		return nil, err
	}
	if err := runNetRow("netexec-csio-band-gob", netexec.RunGob, csio.Scheme, r1, r2, band); err != nil {
		return nil, err
	}

	// Persistent-session rows: the same workers, dialed ONCE — every rep is
	// a numbered job over the open connections, so the session-vs-binary
	// delta on the shuffle row is the tracked dial-amortization win. The
	// payload row ships each tuple with an 8-byte payload segment against
	// an empty R2, isolating the v3 payload wire path (encode, ship, decode
	// into pooled flat buffers).
	sess, err := netexec.Dial(addrs)
	if err != nil {
		return nil, fmt.Errorf("execbench: dial session: %w", err)
	}
	defer sess.Close()
	sessRun := func(_ []string, ra, rb []join.Key, cond join.Condition,
		s partition.Scheme, model cost.Model, cfg exec.Config) (*exec.Result, error) {
		return exec.RunOver(sess, ra, rb, cond, s, model, cfg)
	}
	if err := runNetRow("netexec-session-shuffle", sessRun, hash, r1, empty, join.Equi{}); err != nil {
		return nil, err
	}
	if err := runNetRow("netexec-session-csio-band", sessRun, csio.Scheme, r1, r2, band); err != nil {
		return nil, err
	}
	// The distributed insert-while-probe row: an equi count job whose chunks
	// feed the workers' hash builds as they decode (relation 2 probes the
	// sealed build chunk by chunk, never materializing). The auto engine
	// resolves to hash for equi, so this is the default session equi path.
	if err := runNetRow("netexec-session-hashjoin-overlap", sessRun, hash, r1, r2, join.Equi{}); err != nil {
		return nil, err
	}

	payTuples := make([]exec.Tuple[join.Key], n)
	for i, k := range r1 {
		payTuples[i] = exec.Tuple[join.Key]{Key: k, Payload: k * 3}
	}
	encKey := func(dst []byte, p join.Key) []byte {
		return binary.LittleEndian.AppendUint64(dst, uint64(p))
	}
	var bestPay *exec.Result
	for i := 0; i < execBenchReps; i++ {
		res, err := exec.RunTuplesOver(sess, payTuples, nil, join.Equi{}, hash,
			cost.DefaultBand, exec.Config{Seed: cfg.Seed, Mappers: 4}, encKey, encKey,
			func(int, exec.Tuple[join.Key], exec.Tuple[join.Key]) {})
		if err != nil {
			return nil, fmt.Errorf("execbench: netexec-session-payload: %w", err)
		}
		if bestPay == nil || res.WallTime < bestPay.WallTime {
			bestPay = res
		}
	}
	rep.Rows = append(rep.Rows, ExecBenchRow{
		Name: "netexec-session-payload", Scheme: bestPay.Scheme, N1: n, N2: 0, Mappers: 4,
		WallNS: bestPay.WallTime.Nanoseconds(), Output: bestPay.Output,
		NetworkTuples: bestPay.NetworkTuples, MaxWork: bestPay.MaxWork,
	})

	// Multiway pipeline rows over the same session: the coordinator-relay
	// strategy (stage-1 matches stream back as pairs and the re-planned
	// intermediate re-scatters from the coordinator) against the direct
	// worker→worker peer shuffle (the intermediate never transits the
	// coordinator) — once with the pre-broadcast content-insensitive Hash
	// stage-2 plan and once with the distributed-statistics CSIO plan
	// (workers summarize their intermediates, the coordinator replans and
	// broadcasts a second PLAN frame). The relay row is both peer rows'
	// tracked baseline; the csio-vs-hash delta prices the statistics
	// exchange.
	midB := make([]join.Key, n)
	r3 := make([]join.Key, n)
	for i := range midB {
		midB[i] = rng.Int64n(int64(n))
		r3[i] = rng.Int64n(int64(n))
	}
	q := multiway.Query{
		R1:    r1,
		Mid:   multiway.MidRelation{A: r2, B: midB},
		R3:    r3,
		CondA: join.NewBand(1),
		CondB: join.Equi{},
	}
	mopts := core.Options{J: cfg.J, Model: cost.DefaultBand, Seed: cfg.Seed}
	runMwayRow := func(name string,
		run func(exec.Runtime, multiway.Query, core.Options, exec.Config) (*multiway.Result, error)) error {

		var best *multiway.Result
		var bestWall time.Duration
		for i := 0; i < execBenchReps; i++ {
			start := time.Now()
			res, err := run(sess, q, mopts, exec.Config{Seed: cfg.Seed, Mappers: 4})
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("execbench: %s: %w", name, err)
			}
			if best == nil || wall < bestWall {
				best, bestWall = res, wall
			}
		}
		var net int64
		var maxWork float64
		scheme := ""
		for _, st := range best.Stages {
			if st.Exec == nil {
				continue
			}
			net += st.Exec.NetworkTuples
			if st.Exec.MaxWork > maxWork {
				maxWork = st.Exec.MaxWork
			}
			if scheme != "" {
				scheme += "+"
			}
			scheme += st.Exec.Scheme
		}
		rep.Rows = append(rep.Rows, ExecBenchRow{
			Name: name, Scheme: scheme, N1: n, N2: n, Mappers: 4,
			WallNS: bestWall.Nanoseconds(), Output: best.Output,
			NetworkTuples: net, MaxWork: maxWork,
		})
		return nil
	}
	peerMode := func(mode multiway.Stage2Mode) func(exec.Runtime, multiway.Query, core.Options, exec.Config) (*multiway.Result, error) {
		return func(rt exec.Runtime, q multiway.Query, opts core.Options, cfg exec.Config) (*multiway.Result, error) {
			return multiway.ExecuteOverStage2(rt, q, opts, cfg, mode)
		}
	}
	if err := runMwayRow("netexec-relay-multiway", multiway.ExecuteOverRelay); err != nil {
		return nil, err
	}
	if err := runMwayRow("netexec-peer-multiway", peerMode(multiway.Stage2Hash)); err != nil {
		return nil, err
	}
	if err := runMwayRow("netexec-peer-multiway-csio", peerMode(multiway.Stage2CSIO)); err != nil {
		return nil, err
	}
	// The fully pipelined configuration: Auto picks the stats-deferred CSIO
	// replan, and the session overlaps the stage-2 peer opens and R3
	// chunk-streaming with stage 1 — the row that prices the end-to-end
	// dataflow with every barrier removed.
	if err := runMwayRow("netexec-peer-multiway-pipelined", peerMode(multiway.Stage2Auto)); err != nil {
		return nil, err
	}

	// The continuous-join row: a long-lived stream job over the same session
	// whose window distribution flips mid-stream, so every rep exercises the
	// whole drift path — per-window summaries, the drift comparison, at least
	// one mid-stream replan with a live base re-partition, and the epoch
	// cutover on the wire. Output is the stream's match total (deterministic,
	// exact-gated); MaxWork is the modeled makespan the replan is supposed to
	// keep down, so a drift-detection or replanning regression moves a gated
	// number even when wall time hides it.
	sbase, swindows := streamDriftWorkload(n, cfg.Seed)
	scond := join.NewBand(25)
	scfg := streamjoin.Config{
		Opts:  core.Options{J: cfg.J, Model: cost.DefaultBand, Seed: cfg.Seed},
		Exec:  exec.Config{Seed: cfg.Seed, Mappers: 4},
		Stats: exec.StatsSpec{Seed: cfg.Seed},
	}
	var bestStream *streamjoin.Result
	var bestStreamWall time.Duration
	for i := 0; i < execBenchReps; i++ {
		start := time.Now()
		res, err := streamjoin.Run(sess, sbase, swindows, scond, scfg)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("execbench: %s: %w", StreamDriftRow, err)
		}
		if res.Replans < 1 {
			return nil, fmt.Errorf("execbench: %s: the skew flip fired no replan; the row measures nothing", StreamDriftRow)
		}
		if bestStream == nil || wall < bestStreamWall {
			bestStream, bestStreamWall = res, wall
		}
	}
	var streamShipped, streamN1 int64
	for _, ws := range bestStream.Windows {
		streamShipped += int64(ws.Input)
	}
	for _, w := range swindows {
		streamN1 += int64(len(w))
	}
	rep.Rows = append(rep.Rows, ExecBenchRow{
		Name: StreamDriftRow, Scheme: "csio-stream", N1: int(streamN1), N2: len(sbase), Mappers: 4,
		WallNS: bestStreamWall.Nanoseconds(), Output: bestStream.Total,
		NetworkTuples: streamShipped, MaxWork: bestStream.Makespan,
	})
	return rep, nil
}

// streamDriftWorkload builds the skew-flip stream the StreamDriftRow runs:
// two windows uniform over the wide keyspace, then the distribution
// collapses into a narrow range for the rest of the stream — the flip the
// drift detector must catch and replan through.
func streamDriftWorkload(n int, seed uint64) (base []join.Key, windows [][]join.Key) {
	rng := stats.NewRNG(seed + 61)
	draw := func(count int, span int64) []join.Key {
		ks := make([]join.Key, count)
		for i := range ks {
			ks[i] = rng.Int64n(span)
		}
		return ks
	}
	base = draw(n/10, int64(2*n))
	for i := 0; i < 2; i++ {
		windows = append(windows, draw(n/100, int64(2*n)))
	}
	for i := 0; i < 8; i++ {
		windows = append(windows, draw(n/100, int64(n/20)))
	}
	return base, windows
}

// WriteExecBenchJSON runs ExecBench, writes the report to path, echoes a
// one-line summary per row to w, and returns the report so callers (the
// ewhbench CLI's -baseline gate) can compare it without re-reading the file.
func WriteExecBenchJSON(w io.Writer, cfg Config, path string) (*ExecBenchReport, error) {
	rep, err := ExecBench(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-26s %-10s wall=%8.2fms out=%d net=%d\n",
			r.Name, r.Scheme, float64(r.WallNS)/1e6, r.Output, r.NetworkTuples)
	}
	if err := writeReportJSON(path, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// writeReportJSON persists a report in the committed-baseline shape.
func writeReportJSON(path string, rep *ExecBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

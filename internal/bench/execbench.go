package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/partition"
	"ewh/internal/stats"
)

// ExecBenchRow is one engine micro-measurement. WallNS is the minimum of
// three repetitions, the most noise-robust point estimate on shared machines.
type ExecBenchRow struct {
	Name          string  `json:"name"`
	Scheme        string  `json:"scheme"`
	N1            int     `json:"n1"`
	N2            int     `json:"n2"`
	Mappers       int     `json:"mappers"`
	WallNS        int64   `json:"wall_ns"`
	Output        int64   `json:"output"`
	NetworkTuples int64   `json:"network_tuples"`
	MaxWork       float64 `json:"max_work"`
}

// ExecBenchReport is the machine-readable engine benchmark ewhbench emits as
// BENCH_exec.json so successive PRs can track the hot-path trajectory.
type ExecBenchReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      int            `json:"scale"`
	Seed       uint64         `json:"seed"`
	Rows       []ExecBenchRow `json:"rows"`
}

const execBenchReps = 3

// ExecBench times the engine's hot paths: the shuffle (fan-out-1 and
// replicating), the full CSIO band-join execution, and the local merge-sweep
// count in isolation.
func ExecBench(cfg Config) (*ExecBenchReport, error) {
	cfg.Defaults()
	n := 200000 * cfg.Scale
	rep := &ExecBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: cfg.Scale, Seed: cfg.Seed}

	rng := stats.NewRNG(cfg.Seed)
	r1 := make([]join.Key, n)
	r2 := make([]join.Key, n)
	for i := range r1 {
		r1[i] = rng.Int64n(int64(n))
	}
	for i := range r2 {
		r2[i] = rng.Int64n(int64(n))
	}
	empty := []join.Key{}

	hash, err := partition.NewHash(cfg.J, nil)
	if err != nil {
		return nil, err
	}
	ci := partition.NewCI(cfg.J)
	band := join.NewBand(2)
	csio, err := core.PlanCSIO(r1, r2, band, core.Options{J: cfg.J, Model: cost.DefaultBand, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("execbench: plan CSIO: %w", err)
	}

	runRow := func(name string, s partition.Scheme, ra, rb []join.Key, cond join.Condition) {
		var best *exec.Result
		for i := 0; i < execBenchReps; i++ {
			res := exec.Run(ra, rb, cond, s, cost.DefaultBand, exec.Config{Seed: cfg.Seed, Mappers: 4})
			if best == nil || res.WallTime < best.WallTime {
				best = res
			}
		}
		rep.Rows = append(rep.Rows, ExecBenchRow{
			Name: name, Scheme: s.Name(), N1: len(ra), N2: len(rb), Mappers: 4,
			WallNS: best.WallTime.Nanoseconds(), Output: best.Output,
			NetworkTuples: best.NetworkTuples, MaxWork: best.MaxWork,
		})
	}

	runRow("shuffle-hash", hash, r1, empty, join.Equi{})
	runRow("shuffle-ci-replicated", ci, r1, empty, band)
	runRow("run-csio-band", csio.Scheme, r1, r2, band)

	var bestCount time.Duration
	var out int64
	for i := 0; i < execBenchReps; i++ {
		start := time.Now()
		out = localjoin.Count(r1, r2, band)
		if d := time.Since(start); bestCount == 0 || d < bestCount {
			bestCount = d
		}
	}
	rep.Rows = append(rep.Rows, ExecBenchRow{
		Name: "localjoin-band-count", Scheme: "-", N1: n, N2: n, Mappers: 1,
		WallNS: bestCount.Nanoseconds(), Output: out,
	})
	return rep, nil
}

// WriteExecBenchJSON runs ExecBench and writes the report to path, echoing a
// one-line summary per row to w.
func WriteExecBenchJSON(w io.Writer, cfg Config, path string) error {
	rep, err := ExecBench(cfg)
	if err != nil {
		return err
	}
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-22s %-6s wall=%8.2fms out=%d net=%d\n",
			r.Name, r.Scheme, float64(r.WallNS)/1e6, r.Output, r.NetworkTuples)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

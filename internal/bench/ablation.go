package bench

import (
	"fmt"
	"io"

	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/sample"
)

// Ablations prints the design-choice studies DESIGN.md calls out:
//
//  1. nc = 2J versus nc = J — the coarsened-matrix size (§III-D argues 2J
//     lessens the grid-partitioning accuracy loss);
//  2. AdaptNS — the §A5 sample-matrix resizing once m is known;
//  3. output-sample size so — balance accuracy versus sampling effort;
//  4. exact (two-pass) versus reservoir (one-pass) Stream-Sample.
func Ablations(w io.Writer, cfg Config) error {
	cfg.Defaults()
	if err := ablateNC(w, cfg); err != nil {
		return err
	}
	if err := ablateAdaptNS(w, cfg); err != nil {
		return err
	}
	if err := ablateOutputSample(w, cfg); err != nil {
		return err
	}
	return ablateSamplerVariant(w, cfg)
}

// runCSIOWith plans CSIO with the given option mutator and returns the
// measured max work and the plan.
func runCSIOWith(spec *JoinSpec, cfg Config, mutate func(*core.Options)) (float64, *core.Plan, error) {
	opts := core.Options{J: cfg.J, Model: spec.Model, Seed: cfg.Seed + 1}
	if mutate != nil {
		mutate(&opts)
	}
	plan, err := core.PlanCSIO(spec.R1, spec.R2, spec.Cond, opts)
	if err != nil {
		return 0, nil, err
	}
	res := exec.Run(spec.R1, spec.R2, spec.Cond, plan.Scheme, spec.Model, exec.Config{Seed: cfg.Seed + 2})
	return res.MaxWork, plan, nil
}

func ablateNC(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Ablation 1: coarsened matrix size nc (J=%d)\n", cfg.J)
	fmt.Fprintf(w, "%-8s | %14s %14s %10s\n", "join", "nc=J maxwork", "nc=2J maxwork", "2J gain")
	for _, id := range []string{"BCB-3", "BEOCD"} {
		spec, err := MakeJoin(id, cfg)
		if err != nil {
			return err
		}
		atJ, _, err := runCSIOWith(spec, cfg, func(o *core.Options) { o.NC = cfg.J })
		if err != nil {
			return err
		}
		at2J, _, err := runCSIOWith(spec, cfg, func(o *core.Options) { o.NC = 2 * cfg.J })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s | %14.0f %14.0f %9.1f%%\n", id, atJ, at2J, 100*(atJ-at2J)/atJ)
	}
	return nil
}

func ablateAdaptNS(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 2: AdaptNS (§A5 sample-matrix resizing, BCB-8)")
	spec, err := MakeJoin("BCB-8", cfg)
	if err != nil {
		return err
	}
	off, planOff, err := runCSIOWith(spec, cfg, nil)
	if err != nil {
		return err
	}
	on, planOn, err := runCSIOWith(spec, cfg, func(o *core.Options) { o.AdaptNS = true })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  off: ns=%d maxwork=%.0f stats=%v\n", planOff.NS, off, planOff.StatsDuration.Round(1e6))
	fmt.Fprintf(w, "  on:  ns=%d maxwork=%.0f stats=%v (ρB=%.1f shrinks MS)\n",
		planOn.NS, on, planOn.StatsDuration.Round(1e6),
		float64(planOn.M)/float64(len(spec.R1)))
	return nil
}

func ablateOutputSample(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 3: output sample size so = factor·nsc (BCB-3)")
	fmt.Fprintf(w, "%-8s | %12s %12s\n", "factor", "maxwork", "est-err")
	spec, err := MakeJoin("BCB-3", cfg)
	if err != nil {
		return err
	}
	for _, factor := range []float64{0.5, 1, 2, 4, 8} {
		maxWork, plan, err := runCSIOWith(spec, cfg, func(o *core.Options) { o.OutputSampleFactor = factor })
		if err != nil {
			return err
		}
		errPct := 100 * (plan.EstimatedMaxWeight - maxWork) / maxWork
		fmt.Fprintf(w, "%-8.1f | %12.0f %11.1f%%\n", factor, maxWork, errPct)
	}
	return nil
}

func ablateSamplerVariant(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 4: Stream-Sample variants (BCB-3, so=2000)")
	spec, err := MakeJoin("BCB-3", cfg)
	if err != nil {
		return err
	}
	rng := rngFor(cfg, 4)
	exact := sample.StreamSample(spec.R1, spec.R2, spec.Cond, 2000, cfg.J, rng.Split())
	reservoir := sample.StreamSampleReservoir(spec.R1, spec.R2, spec.Cond, 2000, cfg.J, rng.Split())
	headShare := func(pairs [][2]int64) float64 {
		// The X dataset's dense segment lives below x/6; measure its share.
		head := 0
		for _, p := range pairs {
			if p[0] < int64(baseBCBX*cfg.Scale/6)+1 {
				head++
			}
		}
		return float64(head) / float64(len(pairs))
	}
	fmt.Fprintf(w, "  exact two-pass: m=%d dense-segment share=%.3f\n", exact.M, headShare(exact.Pairs))
	fmt.Fprintf(w, "  reservoir one-pass: m=%d dense-segment share=%.3f\n", reservoir.M, headShare(reservoir.Pairs))
	return nil
}

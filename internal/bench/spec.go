// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§VI), each printing the same rows/series the
// paper reports, at a configurable scale. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-versus-measured shapes.
//
// Times are made commensurable the same way the paper does it: the join
// phase's cost is the modeled makespan max_r w(r) = wi·input + wo·output,
// converted to seconds with a throughput constant calibrated from a real
// single-worker run (the paper fits wi, wo by regression on benchmark runs;
// we additionally fit the seconds-per-weight-unit scale). Statistics
// collection is measured wall-clock directly.
package bench

import (
	"fmt"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
	"ewh/internal/sample"
	"ewh/internal/stats"
	"ewh/internal/workload"
)

// JoinSpec is one evaluation join (a Table IV row).
type JoinSpec struct {
	ID    string
	R1    []join.Key
	R2    []join.Key
	Cond  join.Condition
	Model cost.Model
	// P is the CSI bucket count for this join (the paper: 2000, scaled).
	P int
}

// InputSize returns the total input tuples (Table IV "input").
func (s *JoinSpec) InputSize() int { return len(s.R1) + len(s.R2) }

// Config scales the harness.
type Config struct {
	// Scale multiplies the base dataset sizes (1 = ~100k-tuple relations,
	// about 1/1000 of the paper's cluster-scale runs).
	Scale int
	// J is the number of joiner machines (paper: 32).
	J int
	// Seed fixes all randomness.
	Seed uint64
}

// Defaults fills zero fields.
func (c *Config) Defaults() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.J <= 0 {
		c.J = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// baseBICDRows, baseBCBX and baseBEOCDRows are the Scale=1 sizes: ~1/1000 of
// the paper's (Table IV ÷ 1000, rounded to keep shapes).
const (
	baseBICDRows  = 60000 // per relation (paper: 240M)
	baseBCBX      = 19200 // dense-segment x; 5x per relation (paper x: 19.2M)
	baseBEOCDRows = 18000 // per relation after filters (paper: 18.4M)
)

// MakeJoin builds one of the Table IV joins by id: "BICD", "BCB-<beta>",
// "BEOCD".
func MakeJoin(id string, cfg Config) (*JoinSpec, error) {
	cfg.Defaults()
	switch {
	case id == "BICD":
		r1, r2, cond := workload.BICD(baseBICDRows*cfg.Scale, 0.25, cfg.Seed)
		return &JoinSpec{ID: id, R1: r1, R2: r2, Cond: cond, Model: cost.DefaultBand, P: 1000}, nil
	case id == "BEOCD":
		r1, r2, cond, err := workload.BEOCD(workload.BEOCDConfig{N: baseBEOCDRows * cfg.Scale}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return &JoinSpec{ID: id, R1: r1, R2: r2, Cond: cond, Model: cost.DefaultEquiBand, P: 1000}, nil
	case len(id) > 4 && id[:4] == "BCB-":
		var beta int64
		if _, err := fmt.Sscanf(id[4:], "%d", &beta); err != nil {
			return nil, fmt.Errorf("bench: bad join id %q", id)
		}
		r1, r2, cond := workload.BCB(baseBCBX*cfg.Scale, beta, cfg.Seed)
		return &JoinSpec{ID: id, R1: r1, R2: r2, Cond: cond, Model: cost.DefaultBand, P: 1000}, nil
	}
	return nil, fmt.Errorf("bench: unknown join id %q", id)
}

// TableIVJoins lists the eight evaluation joins in Table IV order.
var TableIVJoins = []string{
	"BICD", "BCB-1", "BCB-2", "BCB-3", "BCB-4", "BCB-8", "BCB-16", "BEOCD",
}

// Throughput is the calibrated conversion from modeled weight units to
// seconds: weight units one worker processes per second.
type Throughput float64

// CalibrateThroughput measures a single worker's processing rate on a
// band-join sized like one region's share, fitting the seconds-per-unit
// scale of the cost model (§VI-A's regression, reduced to the scale factor
// since wi/wo ratios ship with the model).
func CalibrateThroughput(model cost.Model, seed uint64) Throughput {
	const n = 200000
	r1 := workload.Uniform(n, n, seed)
	r2 := workload.Uniform(n, n, seed+1)
	cond := join.NewBand(2)
	start := time.Now()
	out := localjoin.Count(r1, r2, cond)
	elapsed := time.Since(start).Seconds()
	w := model.Weight(float64(2*n), float64(out))
	return Throughput(w / elapsed)
}

// Seconds converts a modeled weight to calibrated seconds.
func (t Throughput) Seconds(weight float64) float64 {
	if t <= 0 {
		return 0
	}
	return weight / float64(t)
}

// SchemeRun is one (join, scheme) measurement. Time accounting follows the
// substitution note in DESIGN.md: the statistics scans and the join phase
// are both expressed in modeled seconds under the same calibrated cost model
// (in the paper both are network-dominated cluster passes; locally only the
// histogram algorithm's CPU time is measured directly).
type SchemeRun struct {
	Scheme string
	// StatsSeconds = modeled scan cost (2 parallel passes over the input)
	// plus the measured histogram-algorithm time.
	StatsSeconds float64
	// HistAlgSeconds is the measured histogram-algorithm CPU time (Table V).
	HistAlgSeconds float64
	// StatsWallSeconds is the raw measured wall time of plan construction.
	StatsWallSeconds float64
	JoinSeconds      float64 // calibrated from the modeled makespan
	TotalSeconds     float64
	Output           int64
	NetworkTuples    int64
	MemoryBytes      int64
	MaxWork          float64 // measured max region weight (Fig. 4h bars)
	EstMaxWork       float64 // planner's estimate (CSIO-EST. in Fig. 4h)
	MaxInput         int64
	MaxOutput        int64
	Workers          int
	Fallback         bool
}

// RunScheme plans and executes one scheme over the join. scheme is "CI",
// "CSI" or "CSIO".
func RunScheme(spec *JoinSpec, scheme string, cfg Config, tp Throughput) (*SchemeRun, error) {
	cfg.Defaults()
	opts := core.Options{J: cfg.J, Model: spec.Model, Seed: cfg.Seed + 1}
	var plan *core.Plan
	var err error
	switch scheme {
	case "CI":
		plan, err = core.PlanCI(opts)
	case "CSI":
		plan, err = core.PlanCSI(spec.R1, spec.R2, spec.Cond, spec.P, opts)
	case "CSIO":
		plan, err = core.PlanCSIO(spec.R1, spec.R2, spec.Cond, opts)
	default:
		return nil, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	if err != nil {
		return nil, err
	}
	res := exec.Run(spec.R1, spec.R2, spec.Cond, plan.Scheme, spec.Model, exec.Config{Seed: cfg.Seed + 2})
	statsSeconds := 0.0
	if scheme != "CI" && !plan.Fallback {
		// Two statistics passes over both relations, parallel over J
		// machines (§IV-A: collecting stats repartitions the join keys).
		// Modeled with the same cost model as the join phase, so the
		// stats/join ratio is scale-invariant — at the paper's cluster scale
		// both passes are network-dominated. The histogram algorithm's CPU
		// time (sub-second at the paper's scale, reported separately via
		// HistAlgSeconds / Table V) is excluded from the modeled total.
		scanWork := spec.Model.Wi * 2 * float64(spec.InputSize()) / float64(cfg.J)
		statsSeconds = tp.Seconds(scanWork)
	}
	run := &SchemeRun{
		Scheme:           scheme,
		StatsSeconds:     statsSeconds,
		HistAlgSeconds:   plan.HistAlgDuration.Seconds(),
		StatsWallSeconds: plan.StatsDuration.Seconds(),
		JoinSeconds:      tp.Seconds(res.MaxWork),
		Output:           res.Output,
		NetworkTuples:    res.NetworkTuples,
		MemoryBytes:      res.MemoryBytes,
		MaxWork:          res.MaxWork,
		EstMaxWork:       plan.EstimatedMaxWeight,
		MaxInput:         res.MaxInput(),
		MaxOutput:        res.MaxOutput(),
		Workers:          plan.Scheme.Workers(),
		Fallback:         plan.Fallback,
	}
	run.TotalSeconds = run.StatsSeconds + run.JoinSeconds
	return run, nil
}

// RhoOI measures output/input for a join spec (Table IV's ρoi).
func RhoOI(spec *JoinSpec) float64 {
	m := sample.OutputSize(spec.R1, spec.R2, spec.Cond, 8)
	return float64(m) / float64(spec.InputSize())
}

// Schemes lists the three evaluated operators.
var Schemes = []string{"CI", "CSI", "CSIO"}

// rngFor derives a deterministic RNG for an experiment section.
func rngFor(cfg Config, salt uint64) *stats.RNG {
	return stats.NewRNG(cfg.Seed*2654435761 + salt)
}

package bench

import (
	"cmp"
	"fmt"
	"io"
	"slices"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/localjoin"
)

// fig1R1 and fig1R2 are the 16-tuple relations of the paper's running
// example (Fig. 1): a band-join |R1.A - R2.A| <= 1 over small skewed key
// sets, partitioned across 3 machines.
var (
	fig1R1 = []join.Key{17, 13, 9, 9, 20, 3, 6, 19, 5, 5, 15, 23, 3, 22, 25, 7}
	fig1R2 = []join.Key{19, 15, 11, 10, 23, 9, 22, 5, 5, 17, 2, 6, 9, 25, 3, 27}
)

// Fig1 reproduces the running example: the three schemes partition the
// 16×16 band-join matrix over 3 machines; the table shows each machine's
// input, output and weight under w(r) = input + output, demonstrating the
// CI > CSI > CSIO maximum-weight ordering of Figs. 1b-1d.
func Fig1(w io.Writer, seed uint64) error {
	cond := join.NewBand(1)
	model := cost.Model{Wi: 1, Wo: 1} // the example's unit weight function
	const j = 3

	fmt.Fprintln(w, "Fig 1: band-join |R1.A - R2.A| <= 1, 16 tuples per relation, J=3")
	fmt.Fprintf(w, "exact output size: %d tuples\n", localjoin.NestedLoopCount(fig1R1, fig1R2, cond))

	opts := core.Options{J: j, Model: model, Seed: seed, DisableFallback: true}
	plans := make(map[string]*core.Plan)
	var err error
	if plans["CI"], err = core.PlanCI(opts); err != nil {
		return err
	}
	if plans["CSI"], err = core.PlanCSI(fig1R1, fig1R2, cond, 8, opts); err != nil {
		return err
	}
	if plans["CSIO"], err = core.PlanCSIO(fig1R1, fig1R2, cond, opts); err != nil {
		return err
	}

	for _, name := range Schemes {
		res := exec.Run(fig1R1, fig1R2, cond, plans[name].Scheme, model, exec.Config{Seed: seed})
		var works []float64
		for _, m := range res.Workers {
			works = append(works, m.Work)
		}
		slices.SortFunc(works, func(a, b float64) int { return cmp.Compare(b, a) })
		fmt.Fprintf(w, "%-5s max w(r) = %-5.0f per-machine weights = %v (output %d)\n",
			name, res.MaxWork, works, res.Output)
	}
	return nil
}

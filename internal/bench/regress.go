package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file is the CI benchmark-regression gate: the workflow regenerates
// the engine benchmark and compares it against the committed
// BENCH_exec.json baseline, failing the build when a metric got worse than
// the tolerance allows. Correctness metrics (join output) must match
// exactly; cost metrics (wall time, network tuples, modeled makespan) may
// wobble up to the tolerance, which absorbs shared-runner noise.

// Regression is one benchmark metric that violated the gate.
type Regression struct {
	Row    string  // row name, e.g. "netexec-shuffle-binary"
	Metric string  // "wall_ns", "output", "network_tuples", "max_work", "missing"
	Base   float64 // baseline value
	Cur    float64 // current value (0 for a missing row)
}

// Ratio returns cur/base (0 when the baseline value is 0).
func (r Regression) Ratio() float64 {
	if r.Base == 0 {
		return 0
	}
	return r.Cur / r.Base
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: row missing from current report", r.Row)
	}
	if r.Metric == "output" {
		return fmt.Sprintf("%s: output %v != baseline %v (correctness)", r.Row, r.Cur, r.Base)
	}
	return fmt.Sprintf("%s: %s %.0f vs baseline %.0f (%.2fx)", r.Row, r.Metric, r.Cur, r.Base, r.Ratio())
}

// LoadExecBench reads an ExecBenchReport from a JSON file written by
// WriteExecBenchJSON.
func LoadExecBench(path string) (*ExecBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ExecBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &rep, nil
}

// CompareExecBench checks cur against base and returns every violation of
// the gate. maxRegress is the tolerated fractional increase for cost
// metrics (0.25 fails on >25% growth). Rules per baseline row, matched by
// name:
//
//   - row absent from cur: violation (coverage must not silently shrink;
//     rows new in cur are fine — they are new coverage)
//   - output: exact match (same seed and scale ⇒ the join result is
//     deterministic; any drift is a correctness bug, not noise)
//   - wall_ns, network_tuples, max_work: cur > base·(1+maxRegress) is a
//     violation; improvements and small wobble pass. wall_ns additionally
//     gets wallSlackNS of absolute headroom, so millisecond-scale rows on a
//     noisy shared runner can't fail the gate on scheduler jitter alone
//   - when both reports carry the CalibrationRow (a fixed spin no code
//     change affects), every baseline wall time is first scaled by the
//     calibration ratio, so a committed baseline recorded on one machine
//     gates runs on a differently-fast runner without tracking hardware;
//     the calibration row itself is exempt from the wall gate (it defines
//     the scale) but its deterministic Output stays exact-checked
//
// The reports must come from the same configuration; mismatched scale or
// seed is an error, not a regression.
func CompareExecBench(base, cur *ExecBenchReport, maxRegress float64) ([]Regression, error) {
	if base.Scale != cur.Scale || base.Seed != cur.Seed || base.GOMAXPROCS != cur.GOMAXPROCS {
		return nil, fmt.Errorf("bench: baseline (scale=%d seed=%d gomaxprocs=%d) and current (scale=%d seed=%d gomaxprocs=%d) configurations differ",
			base.Scale, base.Seed, base.GOMAXPROCS, cur.Scale, cur.Seed, cur.GOMAXPROCS)
	}
	curRows := make(map[string]ExecBenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[r.Name] = r
	}
	speed := calibrationRatio(base, cur)
	var out []Regression
	limit := 1 + maxRegress
	for _, b := range base.Rows {
		c, ok := curRows[b.Name]
		if !ok {
			out = append(out, Regression{Row: b.Name, Metric: "missing", Base: float64(b.WallNS)})
			continue
		}
		if c.Output != b.Output {
			out = append(out, Regression{Row: b.Name, Metric: "output",
				Base: float64(b.Output), Cur: float64(c.Output)})
		}
		scaledBase := float64(b.WallNS) * speed
		if w := float64(c.WallNS); b.Name != CalibrationRow &&
			w > scaledBase*limit && w-scaledBase > wallSlackNS {
			out = append(out, Regression{Row: b.Name, Metric: "wall_ns",
				Base: scaledBase, Cur: w})
		}
		costMetrics := []struct {
			name      string
			base, cur float64
		}{
			{"network_tuples", float64(b.NetworkTuples), float64(c.NetworkTuples)},
			{"max_work", b.MaxWork, c.MaxWork},
		}
		for _, m := range costMetrics {
			if m.cur > m.base*limit {
				out = append(out, Regression{Row: b.Name, Metric: m.name, Base: m.base, Cur: m.cur})
			}
		}
	}
	return out, nil
}

// wallSlackNS is the absolute wall-time headroom on top of the relative
// gate: a row must be both >maxRegress slower AND more than this much
// slower to fail, so sub-10ms rows don't flake on scheduler jitter.
const wallSlackNS = 5_000_000

// calibrationRatio returns cur's machine speed relative to base as measured
// by the CalibrationRow (>1 means cur's machine is slower), clamped to
// [0.25, 4] so a pathological calibration can't scale the gate into
// meaninglessness. Reports without the row compare wall times unscaled.
func calibrationRatio(base, cur *ExecBenchReport) float64 {
	var b, c int64
	for _, r := range base.Rows {
		if r.Name == CalibrationRow {
			b = r.WallNS
		}
	}
	for _, r := range cur.Rows {
		if r.Name == CalibrationRow {
			c = r.WallNS
		}
	}
	if b <= 0 || c <= 0 {
		return 1
	}
	ratio := float64(c) / float64(b)
	if ratio < 0.25 {
		return 0.25
	}
	if ratio > 4 {
		return 4
	}
	return ratio
}

// gatesRow reports whether rep's gate covers a row of the given name —
// baseline rows are what CompareExecBench iterates, so a row present in the
// baseline is a row the gate passes verdicts on.
func gatesRow(rep *ExecBenchReport, name string) bool {
	for _, r := range rep.Rows {
		if r.Name == name {
			return true
		}
	}
	return false
}

// effectiveParallelism is the concurrency a report's recording actually
// delivered: min(physical CPUs, GOMAXPROCS). Zero when the report predates
// the cpus field.
func effectiveParallelism(r *ExecBenchReport) int {
	if r.CPUs == 0 {
		return 0
	}
	p := r.CPUs
	if r.GOMAXPROCS > 0 && r.GOMAXPROCS < p {
		p = r.GOMAXPROCS
	}
	return p
}

// CPUMismatchWarning describes a baseline whose effective parallelism
// differs from the report it gates. The calibration row rescales total
// machine speed, but it cannot rescale parallelism: a baseline recorded
// with GOMAXPROCS=4 on a 1-core container never saw the concurrent shuffle
// actually overlap, so its wall times compare apples to oranges against a
// genuine 4-core run — the mc4 baseline's history before it was re-anchored
// from a BENCH_current recording. Both shapes come from the
// reports' recorded cpus/gomaxprocs fields, so comparing two saved files on
// a third machine stays meaningful. Empty when the shapes agree or either
// report predates the cpus field.
func CPUMismatchWarning(base, cur *ExecBenchReport, path string) string {
	basePar, curPar := effectiveParallelism(base), effectiveParallelism(cur)
	if basePar == 0 || curPar == 0 || basePar == curPar {
		return ""
	}
	return fmt.Sprintf("WARNING: baseline %s was recorded at effective parallelism %d (cpus=%d, gomaxprocs=%d) "+
		"but this run delivers %d (cpus=%d, gomaxprocs=%d) — wall times compare different parallelism shapes "+
		"(calibration rescales speed, not cores); refresh the baseline from a run on matching hardware",
		path, basePar, base.CPUs, base.GOMAXPROCS, curPar, cur.CPUs, cur.GOMAXPROCS)
}

// CheckExecBenchAgainst loads the baseline at path, compares cur against it
// and writes one line per violation to w. It returns an error carrying the
// violation count when the gate fails — the ewhbench CLI and the CI job
// turn that into a nonzero exit. A baseline whose recorded CPU count
// differs from the running GOMAXPROCS gets a loud warning and an annotated
// gate line (see CPUMismatchWarning); the gate still runs — exact-output
// checks are hardware-independent — but its wall verdicts carry the caveat.
//
// Exception: when the baseline gates the StreamDriftRow, a parallelism
// mismatch is an ERROR, not a warning. The legacy rows predate the cpus
// field and tolerated envelope baselines, but the continuous-join row's
// wall and makespan only mean something when stream windows genuinely
// overlap across workers — a 1-core recording never saw that overlap, so
// gating it across shapes would certify numbers the recording could not
// have measured. The remedy is the documented BENCH_current
// artifact-promotion flow: re-anchor the baseline from a run on matching
// hardware (DESIGN.md, "Baseline promotion").
func CheckExecBenchAgainst(w io.Writer, cur *ExecBenchReport, path string, maxRegress float64) error {
	base, err := LoadExecBench(path)
	if err != nil {
		return err
	}
	warn := CPUMismatchWarning(base, cur, path)
	if warn != "" {
		fmt.Fprintf(w, "%s\n", warn)
		if gatesRow(base, StreamDriftRow) {
			return fmt.Errorf("bench: baseline %s gates the %s row at a different parallelism shape "+
				"(baseline %d, current %d): its wall/makespan verdicts require matching worker overlap; "+
				"re-anchor the baseline via the BENCH_current artifact-promotion flow",
				path, StreamDriftRow, effectiveParallelism(base), effectiveParallelism(cur))
		}
	}
	regs, err := CompareExecBench(base, cur, maxRegress)
	if err != nil {
		return err
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s\n", r)
	}
	note := ""
	if warn != "" {
		note = fmt.Sprintf(" [baseline parallelism %d vs current %d: cross-hardware wall comparison]",
			effectiveParallelism(base), effectiveParallelism(cur))
	}
	if len(regs) > 0 {
		return fmt.Errorf("bench: %d metric(s) regressed beyond %.0f%% vs %s%s",
			len(regs), maxRegress*100, path, note)
	}
	fmt.Fprintf(w, "benchmark gate passed: no metric regressed beyond %.0f%% vs %s%s\n",
		maxRegress*100, path, note)
	return nil
}

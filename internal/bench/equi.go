package bench

import (
	"fmt"
	"io"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/sample"
	"ewh/internal/workload"
)

// EquiComparison contextualizes §V.1's advice ("for joins that have only
// equality conditions, one should use existing approaches"): on a skewed
// equi-join it compares plain hash partitioning, PRPD-style heavy-hitter
// handling, broadcast join, and the EWH scheme. The expected shape: plain
// hash collapses under a heavy hitter, PRPD fixes it with no statistics
// beyond the heavy-key list, EWH also balances (at the price of its sampling
// phase), and broadcast only competes because the build side is small.
func EquiComparison(w io.Writer, cfg Config) error {
	cfg.Defaults()
	n := 40000 * cfg.Scale
	model := cost.Model{Wi: 1, Wo: 0.2}
	// A strongly skewed probe side: Zipf z=1 gives a genuine heavy hitter.
	r1 := workload.Zipfian(n, int64(n/4), 1.0, cfg.Seed)
	r2 := workload.Zipfian(n/4, int64(n/4), 0.3, cfg.Seed+1)
	cond := join.Equi{}

	heavy := partition.DetectHeavyKeys(sample.FixedSize(r1, 4096, rngFor(cfg, 9)), 0.01)

	schemes := make([]partition.Scheme, 0, 4)
	if h, err := partition.NewHash(cfg.J, nil); err == nil {
		schemes = append(schemes, h)
	}
	if h, err := partition.NewHash(cfg.J, heavy); err == nil {
		schemes = append(schemes, h)
	}
	if b, err := partition.NewBroadcast(cfg.J); err == nil {
		schemes = append(schemes, b)
	}
	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: cfg.J, Model: model, Seed: cfg.Seed, DisableFallback: true})
	if err != nil {
		return err
	}
	schemes = append(schemes, plan.Scheme)

	fmt.Fprintf(w, "Equi-join comparison (§V.1), Zipf z=1 probe side, J=%d, %d heavy keys detected\n",
		cfg.J, len(heavy))
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "scheme", "output", "shipped", "max-input", "max-work")
	for _, s := range schemes {
		res := exec.Run(r1, r2, cond, s, model, exec.Config{Seed: cfg.Seed + 2})
		fmt.Fprintf(w, "%-10s %12d %12d %12d %12.0f\n",
			s.Name(), res.Output, res.NetworkTuples, res.MaxInput(), res.MaxWork)
	}
	return nil
}

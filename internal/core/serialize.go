package core

import (
	"encoding/json"
	"fmt"

	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/partition"
	"ewh/internal/tiling"
)

// planWire is the serialized form of a Plan. Only what routing and
// diagnostics need is persisted: the coarsened matrix is not serialized, so
// a decoded plan routes and executes normally but cannot be Refined.
type planWire struct {
	Version            int          `json:"version"`
	Scheme             string       `json:"scheme"`
	CIWorkers          int          `json:"ci_workers,omitempty"`
	Regions            []regionWire `json:"regions,omitempty"`
	EstimatedMaxWeight float64      `json:"estimated_max_weight,omitempty"`
	M                  int64        `json:"m,omitempty"`
	NS                 int          `json:"ns,omitempty"`
	NC                 int          `json:"nc,omitempty"`
	Fallback           bool         `json:"fallback,omitempty"`
}

type regionWire struct {
	R0     int      `json:"r0"`
	C0     int      `json:"c0"`
	R1     int      `json:"r1"`
	C1     int      `json:"c1"`
	RowLo  join.Key `json:"row_lo"`
	RowHi  join.Key `json:"row_hi"`
	ColLo  join.Key `json:"col_lo"`
	ColHi  join.Key `json:"col_hi"`
	Input  float64  `json:"input"`
	Output float64  `json:"output"`
	Weight float64  `json:"weight"`
}

const planWireVersion = 1

// EncodePlan serializes a plan to JSON. CI plans record only the worker
// count; region plans record the full equi-weight histogram.
func EncodePlan(p *Plan) ([]byte, error) {
	w := planWire{
		Version:            planWireVersion,
		Scheme:             p.Scheme.Name(),
		EstimatedMaxWeight: p.EstimatedMaxWeight,
		M:                  p.M,
		NS:                 p.NS,
		NC:                 p.NC,
		Fallback:           p.Fallback,
	}
	switch s := p.Scheme.(type) {
	case *partition.CI:
		w.CIWorkers = s.Workers()
	case *partition.RegionScheme:
		for _, r := range p.Regions {
			w.Regions = append(w.Regions, regionWire{
				R0: r.Rect.R0, C0: r.Rect.C0, R1: r.Rect.R1, C1: r.Rect.C1,
				RowLo: r.RowLo, RowHi: r.RowHi, ColLo: r.ColLo, ColHi: r.ColHi,
				Input: r.Input, Output: r.Output, Weight: r.Weight,
			})
		}
	default:
		return nil, fmt.Errorf("core: cannot serialize scheme %T", p.Scheme)
	}
	return json.Marshal(w)
}

// DecodePlan reconstructs a plan from EncodePlan's output. The decoded plan
// routes and executes identically; Refine requires the original in-memory
// plan (the coarsened matrix is not persisted).
func DecodePlan(data []byte) (*Plan, error) {
	var w planWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if w.Version != planWireVersion {
		return nil, fmt.Errorf("core: plan version %d unsupported (want %d)", w.Version, planWireVersion)
	}
	p := &Plan{
		EstimatedMaxWeight: w.EstimatedMaxWeight,
		M:                  w.M,
		NS:                 w.NS,
		NC:                 w.NC,
		Fallback:           w.Fallback,
	}
	switch w.Scheme {
	case "CI":
		if w.CIWorkers < 1 {
			return nil, fmt.Errorf("core: CI plan without worker count")
		}
		p.Scheme = partition.NewCI(w.CIWorkers)
	case "CSI", "CSIO":
		regions := make([]tiling.Region, len(w.Regions))
		for i, r := range w.Regions {
			if r.RowLo >= r.RowHi || r.ColLo >= r.ColHi {
				return nil, fmt.Errorf("core: region %d has empty key range", i)
			}
			regions[i] = tiling.Region{
				Rect:  matrix.Rect{R0: r.R0, C0: r.C0, R1: r.R1, C1: r.C1},
				RowLo: r.RowLo, RowHi: r.RowHi, ColLo: r.ColLo, ColHi: r.ColHi,
				Input: r.Input, Output: r.Output, Weight: r.Weight,
			}
		}
		p.Regions = regions
		p.Scheme = partition.NewRegionScheme(w.Scheme, regions)
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", w.Scheme)
	}
	return p, nil
}

package core

import (
	"fmt"
	"math"
	"time"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// PlanCSIOFromSummary builds the equi-weight histogram plan for r1' ⋈ r2
// when r1' is known only through a distributed statistics summary — the
// coordinator side of distributed statistics collection. The summary stands
// in for the left relation everywhere the planner would scan it:
//
//   - the R1 equi-depth histogram comes straight from the summary's merged
//     per-worker boundaries (computed worker-side over ALL local keys, so
//     quantile accuracy does not degrade with the sample cap);
//   - the output sample runs Stream-Sample over the summary's uniform key
//     sample against the full r2 multiset, and its exact per-sample output
//     size scales by Count/len(Keys) to estimate m (exact whenever the
//     sample holds the whole population);
//   - r2 is planner-local (the driver owns that base relation), so its
//     histogram and multiset are exact, as in PlanCSIO.
//
// The §VI-E high-selectivity fallback applies to the estimated m exactly as
// PlanCSIO applies it to the exact one: over-selective joins fall back to CI
// with Fallback reported. Results are deterministic for a given summary and
// seed.
func PlanCSIOFromSummary(sum *stats.Summary, r2 []join.Key, cond join.Condition, opts Options) (*Plan, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := sum.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n2 := len(r2)
	if sum.Count == 0 || n2 == 0 {
		return nil, fmt.Errorf("core: empty input relation (summary count=%d n2=%d)", sum.Count, n2)
	}
	if sum.Count > int64(math.MaxInt) {
		return nil, fmt.Errorf("core: summary count %d overflows", sum.Count)
	}
	n1 := int(sum.Count)
	n := maxInt(n1, n2)
	rng := stats.NewRNG(opts.Seed)

	rh, err := histogram.FromBounds(sum.Bounds)
	if err != nil {
		return nil, err
	}
	ns := opts.NS
	if ns <= 0 {
		ns = int(math.Ceil(math.Sqrt(2 * float64(n) * float64(opts.J))))
	}
	if ns > n2 {
		ns = n2
	}
	s2 := sample.FixedSize(r2, inputSampleSize(ns, n), rng)
	ch, err := histogram.FromSample(s2, ns)
	if err != nil {
		return nil, err
	}

	nsc := countCandidates(rh, ch, cond)
	so := int(opts.OutputSampleFactor * float64(nsc))
	if so < 1063 {
		so = 1063 // Kolmogorov-statistics floor (§A1), as PlanCSIO
	}
	m2 := sample.BuildMultiset(r2)
	out := sample.StreamSampleWith(sum.Keys, m2, cond, so, opts.StatWorkers, rng)
	mEst := out.M
	if int64(len(sum.Keys)) < sum.Count && len(sum.Keys) > 0 {
		mEst = int64(math.Round(float64(out.M) * float64(sum.Count) / float64(len(sum.Keys))))
	}

	overSelective := mEst > int64(opts.HighSelectivityRatio)*int64(n)
	overBudget := opts.StatsBudget > 0 &&
		time.Since(start).Seconds() > opts.StatsBudget*float64(n1+n2)/1e6
	if !opts.DisableFallback && (overSelective || overBudget) {
		p, err := PlanCI(opts)
		if err != nil {
			return nil, err
		}
		p.Fallback = true
		p.M = mEst
		p.StatsDuration = time.Since(start)
		return p, nil
	}

	algStart := time.Now()
	sm, err := matrix.BuildSample(rh, ch, cond, out.Pairs, mEst, n1, n2, 0)
	if err != nil {
		return nil, err
	}
	plan, err := regionalizePlan(sm, "CSIO", opts)
	if err != nil {
		return nil, err
	}
	plan.M = mEst
	plan.NS = sm.Rows
	plan.HistAlgDuration = time.Since(algStart)
	plan.StatsDuration = time.Since(start)
	return plan, nil
}

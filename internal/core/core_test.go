package core

import (
	"testing"

	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/stats"
	"ewh/internal/tiling"
)

var model = cost.Model{Wi: 1, Wo: 0.2}

func randKeys(n int, domain int64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(domain)
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	if _, err := PlanCI(Options{J: 0}); err == nil {
		t.Error("J=0 accepted")
	}
	if _, err := PlanCSIO(nil, []join.Key{1}, join.Equi{}, Options{J: 2}); err == nil {
		t.Error("empty r1 accepted")
	}
	r := randKeys(100, 50, 1)
	if _, err := PlanCSI(r, r, join.Equi{}, 0, Options{J: 2}); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestPlanCI(t *testing.T) {
	p, err := PlanCI(Options{J: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheme.Name() != "CI" || p.Scheme.Workers() != 16 {
		t.Fatalf("scheme %s with %d workers", p.Scheme.Name(), p.Scheme.Workers())
	}
	if p.StatsDuration != 0 {
		t.Error("CI should have zero stats time")
	}
}

func TestPlanCSIOBasics(t *testing.T) {
	r1 := randKeys(4000, 2000, 2)
	r2 := randKeys(4000, 2000, 3)
	plan, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 8, Model: model, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme.Name() != "CSIO" {
		t.Fatalf("scheme %s", plan.Scheme.Name())
	}
	if len(plan.Regions) == 0 || len(plan.Regions) > 8 {
		t.Fatalf("%d regions for J=8", len(plan.Regions))
	}
	if plan.M <= 0 {
		t.Error("M not computed")
	}
	if plan.EstimatedMaxWeight <= 0 {
		t.Error("estimated max weight missing")
	}
	if plan.StatsDuration <= 0 {
		t.Error("stats time not measured")
	}
	if plan.NS <= 0 || plan.NC != 16 {
		t.Errorf("NS=%d NC=%d", plan.NS, plan.NC)
	}
	if plan.Fallback {
		t.Error("unexpected fallback on low-selectivity join")
	}
}

func TestPlanCSIODeterministic(t *testing.T) {
	r1 := randKeys(2000, 1000, 5)
	r2 := randKeys(2000, 1000, 6)
	a, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != len(b.Regions) || a.M != b.M ||
		a.EstimatedMaxWeight != b.EstimatedMaxWeight {
		t.Fatal("same seed produced different plans")
	}
}

func TestPlanCSIOBalancesUnderJPS(t *testing.T) {
	// The X-dataset shape (§VI-A): a small dense segment produces most of
	// the output while the bulk of tuples join nothing. CSIO's estimated max
	// weight must be far below the single-machine total.
	r := stats.NewRNG(8)
	var r1, r2 []join.Key
	x := 1500
	for i := 0; i < x; i++ { // dense segment: keys in [0, x/6)
		r1 = append(r1, r.Int64n(int64(x/6)))
		r2 = append(r2, r.Int64n(int64(x/6)))
	}
	y := 4 * x
	for i := 0; i < y; i++ { // sparse segment: keys in [2y, 6y)
		r1 = append(r1, 2*int64(y)+r.Int64n(4*int64(y)))
		r2 = append(r2, 2*int64(y)+r.Int64n(4*int64(y)))
	}
	plan, err := PlanCSIO(r1, r2, join.NewBand(3), Options{J: 8, Model: model, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, reg := range plan.Regions {
		total += reg.Weight
	}
	if plan.EstimatedMaxWeight > total/2 {
		t.Fatalf("max region weight %.0f not balanced vs total %.0f",
			plan.EstimatedMaxWeight, total)
	}
}

func TestPlanCSIOFallback(t *testing.T) {
	// A tiny key domain makes the band join nearly Cartesian: m/n huge, so
	// the planner must fall back to CI.
	r1 := randKeys(2000, 8, 10)
	r2 := randKeys(2000, 8, 11)
	plan, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 4, Model: model, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fallback {
		t.Fatalf("no fallback despite m=%d for n=2000", plan.M)
	}
	if plan.Scheme.Name() != "CI" {
		t.Fatalf("fallback scheme %s", plan.Scheme.Name())
	}
	// DisableFallback forces CSIO through.
	plan2, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 4, Model: model, Seed: 12, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Fallback || plan2.Scheme.Name() != "CSIO" {
		t.Fatal("DisableFallback ignored")
	}
}

func TestPlanCSI(t *testing.T) {
	r1 := randKeys(3000, 1500, 13)
	r2 := randKeys(3000, 1500, 14)
	plan, err := PlanCSI(r1, r2, join.NewBand(2), 128, Options{J: 8, Model: model, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme.Name() != "CSI" {
		t.Fatalf("scheme %s", plan.Scheme.Name())
	}
	if len(plan.Regions) == 0 || len(plan.Regions) > 8 {
		t.Fatalf("%d regions", len(plan.Regions))
	}
	if plan.M != 0 {
		t.Error("CSI must not know m")
	}
}

func TestPlanNCOverride(t *testing.T) {
	r1 := randKeys(2000, 1000, 16)
	r2 := randKeys(2000, 1000, 17)
	plan, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 18, NC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NC != 4 {
		t.Fatalf("NC = %d, want 4", plan.NC)
	}
}

func TestPlanBaselineBSPAgrees(t *testing.T) {
	r1 := randKeys(2000, 1000, 19)
	r2 := randKeys(2000, 1000, 20)
	a, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 21, BaselineBSP: true})
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := tiling.MaxWeight(a.Regions), tiling.MaxWeight(b.Regions)
	if wa > wb*1.01 || wb > wa*1.01 {
		t.Fatalf("baseline %v vs monotonic %v max weights", wb, wa)
	}
}

func TestInputSampleSize(t *testing.T) {
	if si := inputSampleSize(100, 1000000); si < 100*4 {
		t.Fatalf("si = %d too small for ns=100", si)
	}
	if si := inputSampleSize(10, 10); si < 10 {
		t.Fatal("si below ns")
	}
}

// TestLemma31SigmaBound property-checks Lemma 3.1: with ns = √(2nJ), the
// maximum MS cell weight σ is at most half the optimum partitioning's
// maximum region weight. The proof lower-bounds wOPT by w(M)/J (the
// no-replication bound), so we check σ ≤ (wi·2n + wo·m)/(2J) on random
// workloads with m >= n.
func TestLemma31SigmaBound(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := stats.NewRNG(seed)
		n := 2000 + int(r.Int64n(3000))
		j := 2 + int(r.Int64n(14))
		domain := int64(n) / (1 + r.Int64n(4)) // denser domains raise m
		r1 := make([]join.Key, n)
		r2 := make([]join.Key, n)
		for i := 0; i < n; i++ {
			r1[i] = r.Int64n(domain)
			r2[i] = r.Int64n(domain)
		}
		cond := join.NewBand(1 + r.Int64n(3))
		sm, err := BuildSampleMatrix(r1, r2, cond, Options{J: j, Model: model, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sm.M < int64(n) {
			continue // lemma assumes m >= n
		}
		sigma := sm.MaxCellWeight(model)
		wOPT := (model.Wi*2*float64(n) + model.Wo*float64(sm.M)) / float64(j)
		// Sampling noise can push individual cells past the deterministic
		// bound; allow 25% slack over σ ≤ wOPT/2.
		if sigma > 0.5*wOPT*1.25 {
			t.Errorf("seed %d (n=%d J=%d m=%d): σ=%.0f > wOPT/2=%.0f",
				seed, n, j, sm.M, sigma, 0.5*wOPT)
		}
	}
}

func TestPlanCSIOAsymmetricSizes(t *testing.T) {
	// Relations of very different sizes: the larger drives ns; routing and
	// weights must stay consistent.
	r1 := randKeys(8000, 4000, 30)
	r2 := randKeys(500, 4000, 31)
	plan, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 6, Model: model, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) == 0 {
		t.Fatal("no regions")
	}
}

func TestPlanCSIOAdaptNS(t *testing.T) {
	// A high-rho join must shrink ns when AdaptNS is on.
	r1 := randKeys(6000, 500, 33)
	r2 := randKeys(6000, 500, 34)
	base, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 4, Model: model, Seed: 35, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := PlanCSIO(r1, r2, join.NewBand(2), Options{J: 4, Model: model, Seed: 35, DisableFallback: true, AdaptNS: true})
	if err != nil {
		t.Fatal(err)
	}
	if adapted.NS >= base.NS {
		t.Fatalf("AdaptNS did not shrink ns: %d >= %d (m=%d n=%d)",
			adapted.NS, base.NS, adapted.M, len(r1))
	}
	if adapted.M != base.M {
		t.Fatal("AdaptNS changed m")
	}
}

func TestPlanCSIOInequalityWithFallbackDisabled(t *testing.T) {
	// Inequality joins are high-selectivity (≈ half the Cartesian product);
	// with the fallback disabled the scheme must still be exact, just
	// replication-heavy.
	r1 := randKeys(400, 300, 36)
	r2 := randKeys(400, 300, 37)
	cond := join.Inequality{Op: join.LessEq}
	plan, err := PlanCSIO(r1, r2, cond, Options{J: 4, Model: model, Seed: 38, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme.Name() != "CSIO" {
		t.Fatalf("scheme %s", plan.Scheme.Name())
	}
}

func TestRefineCorrectsEstimates(t *testing.T) {
	// Plan, then pretend one region produced 10x its estimated output; the
	// refined plan must split work away from the corrected hot region.
	r1 := randKeys(4000, 2000, 40)
	r2 := randKeys(4000, 2000, 41)
	opts := Options{J: 6, Model: model, Seed: 42}
	plan, err := PlanCSIO(r1, r2, join.NewBand(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	measured := make([]int64, len(plan.Regions))
	for i, reg := range plan.Regions {
		measured[i] = int64(reg.Output)
	}
	measured[0] *= 10 // feedback: region 0 was badly underestimated
	refined, err := Refine(plan, measured, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.Regions) == 0 || len(refined.Regions) > opts.J {
		t.Fatalf("refined plan has %d regions", len(refined.Regions))
	}
	// Under the corrected weights, the refined plan must balance better than
	// the original plan would: compute the original regions' weights on the
	// corrected matrix by scaling region 0's output.
	origHot := plan.Regions[0]
	correctedOrigMax := model.Weight(origHot.Input, origHot.Output*10)
	if refined.EstimatedMaxWeight >= correctedOrigMax {
		t.Fatalf("refined max %.0f not better than stale plan's corrected max %.0f",
			refined.EstimatedMaxWeight, correctedOrigMax)
	}
}

func TestRefineValidation(t *testing.T) {
	ci, err := PlanCI(Options{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(ci, nil, Options{J: 4}); err == nil {
		t.Error("refining a CI plan accepted")
	}
	r1 := randKeys(1000, 500, 43)
	r2 := randKeys(1000, 500, 44)
	plan, err := PlanCSIO(r1, r2, join.NewBand(1), Options{J: 4, Model: model, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(plan, []int64{1}, Options{J: 4, Model: model}); err == nil {
		t.Error("mismatched measurement vector accepted")
	}
}

func TestRefineIdempotentOnAccurateFeedback(t *testing.T) {
	// Feeding back exactly the estimated outputs must not degrade the plan.
	r1 := randKeys(3000, 1500, 46)
	r2 := randKeys(3000, 1500, 47)
	opts := Options{J: 4, Model: model, Seed: 48}
	plan, err := PlanCSIO(r1, r2, join.NewBand(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	measured := make([]int64, len(plan.Regions))
	for i, reg := range plan.Regions {
		measured[i] = int64(reg.Output)
	}
	refined, err := Refine(plan, measured, opts)
	if err != nil {
		t.Fatal(err)
	}
	if refined.EstimatedMaxWeight > plan.EstimatedMaxWeight*1.05 {
		t.Fatalf("accurate feedback degraded the plan: %.0f -> %.0f",
			plan.EstimatedMaxWeight, refined.EstimatedMaxWeight)
	}
}

func TestStatsBudgetFallback(t *testing.T) {
	r1 := randKeys(3000, 1500, 60)
	r2 := randKeys(3000, 1500, 61)
	// An absurdly tight budget (1 nanosecond per million tuples) must trip
	// the §VI-E time trigger even on a low-selectivity join.
	plan, err := PlanCSIO(r1, r2, join.NewBand(1), Options{
		J: 4, Model: model, Seed: 62, StatsBudget: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fallback || plan.Scheme.Name() != "CI" {
		t.Fatalf("budget fallback not taken: fallback=%v scheme=%s", plan.Fallback, plan.Scheme.Name())
	}
	// A generous budget must not trip it.
	plan2, err := PlanCSIO(r1, r2, join.NewBand(1), Options{
		J: 4, Model: model, Seed: 62, StatsBudget: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Fallback {
		t.Fatal("generous budget tripped the fallback")
	}
}

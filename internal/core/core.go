// Package core assembles the paper's join operator (§IV): it collects input
// and output statistics, runs the 3-stage histogram algorithm (sampling →
// coarsening → regionalization) and produces the partitioning scheme the
// execution engine shuffles by. It also builds the two baselines — CI
// (1-Bucket) needs no statistics, CSI (M-Bucket) needs input statistics
// only — and implements the §VI-E fallback from CSIO to CI when the join
// turns out to be high-selectivity.
package core

import (
	"fmt"
	"math"
	"time"

	"ewh/internal/cost"
	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/partition"
	"ewh/internal/sample"
	"ewh/internal/stats"
	"ewh/internal/tiling"
)

// Options configure plan construction.
type Options struct {
	// J is the number of joiner machines (required, >= 1).
	J int
	// Model is the cost model; the zero value selects cost.DefaultBand.
	Model cost.Model
	// StatWorkers is the parallelism of statistics collection; 0 = J.
	StatWorkers int
	// Seed makes planning deterministic.
	Seed uint64

	// NS overrides the sample-matrix size (default √(2nJ), Lemma 3.1).
	NS int
	// NC overrides the coarsened-matrix size (default 2J, §III-B; the
	// nc = J ablation of DESIGN.md sets this explicitly).
	NC int
	// OutputSampleFactor sets so = factor · nsc (default 2, §A5).
	OutputSampleFactor float64
	// BaselineBSP selects the O(nc⁵) baseline solver for the
	// regionalization (ablation knob); results are identical, only slower.
	BaselineBSP bool

	// HighSelectivityRatio is the m/n ratio beyond which CSIO falls back to
	// CI (§VI-E; CI is near-optimal when output costs dominate utterly).
	// Default 200 (the paper: "up to 2 orders of magnitude").
	HighSelectivityRatio float64
	// StatsBudget is §VI-E's second fallback trigger: the statistics-time
	// allowance in seconds per million input tuples (the paper found half a
	// second per million in their setup). Zero disables the time trigger.
	StatsBudget float64
	// DisableFallback forces CSIO even for high-selectivity joins.
	DisableFallback bool

	// AdaptNS enables the §A5 sample-matrix resizing once the exact output
	// size m is known: ns' = √(2nJ/ρB) with ρB = m/n. For m > n this shrinks
	// MS (the paper uses it for BCB); for m < n it grows MS to restore the
	// Lemma 3.1 bound. The adjustment rebuilds the equi-depth histograms and
	// re-places the already-collected output sample; growth is capped at
	// 4×ns (beyond that §A5's cell-splitting case applies, which this
	// implementation approximates by the cap).
	AdaptNS bool
}

func (o *Options) defaults() error {
	if o.J < 1 {
		return fmt.Errorf("core: J = %d < 1", o.J)
	}
	if !o.Model.Valid() {
		o.Model = cost.DefaultBand
	}
	if o.StatWorkers <= 0 {
		o.StatWorkers = o.J
	}
	if o.OutputSampleFactor <= 0 {
		o.OutputSampleFactor = 2
	}
	if o.HighSelectivityRatio <= 0 {
		o.HighSelectivityRatio = 200
	}
	return nil
}

// Plan is a ready-to-execute partitioning plan plus the diagnostics the
// evaluation reports.
type Plan struct {
	// Scheme routes tuples; hand it to exec.Run.
	Scheme partition.Scheme
	// Regions is the equi-weight histogram MH (nil for CI).
	Regions []tiling.Region
	// EstimatedMaxWeight is the planner's max region weight (CSIO-EST. in
	// Fig. 4h); compare against exec.Result.MaxWork.
	EstimatedMaxWeight float64
	// StatsDuration is the statistics + histogram-algorithm time ("stats
	// time" in Fig. 4a).
	StatsDuration time.Duration
	// HistAlgDuration is the CPU time of the histogram algorithm proper
	// (sample-matrix build + coarsening + regionalization), the quantity
	// Table V tracks as the CSI bucket count p grows. It excludes the data
	// scans that collect the samples.
	HistAlgDuration time.Duration
	// M is the exact join output size (CSIO only; 0 otherwise).
	M int64
	// NS and NC are the realized matrix sizes (CSIO/CSI).
	NS, NC int
	// Fallback reports that CSIO abandoned its scheme for CI (§VI-E).
	Fallback bool

	// dense retains the coarsened matrix for Refine; nil for CI plans.
	dense *matrix.Dense
}

// Refine re-runs the regionalization with runtime feedback: measuredOutput
// holds the output tuples each region actually produced (indexed like
// plan.Regions, i.e. like the engine's workers). Cells inside each region
// are rescaled by measured/estimated before re-tiling, so systematic
// estimation error in a region — the trigger for task reassignment in
// adaptive schemes — is corrected in the next plan instead (§V: "we can use
// our technique for initial partitioning and for feeding the estimator").
func Refine(plan *Plan, measuredOutput []int64, opts Options) (*Plan, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if plan.dense == nil {
		return nil, fmt.Errorf("core: plan has no coarsened matrix (CI or fallback plans cannot be refined)")
	}
	if len(measuredOutput) != len(plan.Regions) {
		return nil, fmt.Errorf("core: %d measurements for %d regions", len(measuredOutput), len(plan.Regions))
	}
	rects := make([]matrix.Rect, len(plan.Regions))
	factors := make([]float64, len(plan.Regions))
	for i, reg := range plan.Regions {
		rects[i] = reg.Rect
		est := reg.Output
		if est < 1 {
			est = 1
		}
		factors[i] = float64(measuredOutput[i]) / est
	}
	d := plan.dense.ScaleRegions(rects, factors)
	regions, err := tiling.Regionalize(d, opts.Model, opts.J,
		tiling.RegionalizeOptions{UseBaselineBSP: opts.BaselineBSP})
	if err != nil {
		return nil, err
	}
	return &Plan{
		Scheme:             partition.NewRegionScheme(plan.Scheme.Name(), regions),
		Regions:            regions,
		EstimatedMaxWeight: tiling.MaxWeight(regions),
		M:                  plan.M,
		NS:                 plan.NS,
		NC:                 plan.NC,
		dense:              d,
	}, nil
}

// PlanCI builds the statistics-free content-insensitive plan.
func PlanCI(opts Options) (*Plan, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return &Plan{Scheme: partition.NewCI(opts.J)}, nil
}

// BuildSampleMatrix runs only the sampling stage (§III-A): input samples →
// equi-depth histograms → parallel Stream-Sample output sample → sample
// matrix MS with exact m. Exposed for ablations and diagnostics; PlanCSIO
// continues with coarsening and regionalization.
func BuildSampleMatrix(r1, r2 []join.Key, cond join.Condition, opts Options) (*matrix.Sample, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	sm, _, err := buildSampleMatrixTimed(r1, r2, cond, opts)
	return sm, err
}

// buildSampleMatrixTimed additionally reports the time spent in the MS build
// itself (the histogram-algorithm share, as opposed to the data scans).
func buildSampleMatrixTimed(r1, r2 []join.Key, cond join.Condition, opts Options) (*matrix.Sample, time.Duration, error) {
	rng := stats.NewRNG(opts.Seed)
	n1, n2 := len(r1), len(r2)
	if n1 == 0 || n2 == 0 {
		return nil, 0, fmt.Errorf("core: empty input relation (n1=%d n2=%d)", n1, n2)
	}
	n := maxInt(n1, n2)

	// Sampling stage sizes (Lemma 3.1, §A1).
	ns := opts.NS
	if ns <= 0 {
		ns = int(math.Ceil(math.Sqrt(2 * float64(n) * float64(opts.J))))
	}
	if ns > n {
		ns = n
	}
	si := inputSampleSize(ns, n)

	rh, ch, err := buildHistograms(r1, r2, ns, si, rng)
	if err != nil {
		return nil, 0, err
	}

	// Candidate MS cells determine the output sample size so = Θ(nsc) (§A5).
	nsc := countCandidates(rh, ch, cond)
	so := int(opts.OutputSampleFactor * float64(nsc))
	if so < 1063 {
		so = 1063 // Kolmogorov-statistics floor (§A1)
	}

	out := sample.StreamSample(r1, r2, cond, so, opts.StatWorkers, rng)

	if opts.AdaptNS && out.M > 0 {
		rho := float64(out.M) / float64(n)
		nsAdj := int(math.Ceil(math.Sqrt(2 * float64(n) * float64(opts.J) / rho)))
		if nsAdj > 4*ns {
			nsAdj = 4 * ns // §A5 case (ii) territory; cap instead of splitting cells
		}
		if lo := 2 * opts.J; nsAdj < lo {
			nsAdj = lo
		}
		if nsAdj > n {
			nsAdj = n
		}
		// Only rebuild when the change is worth the extra sampling pass.
		if nsAdj*4 < ns*3 || nsAdj*3 > ns*4 {
			ns = nsAdj
			rh, ch, err = buildHistograms(r1, r2, ns, inputSampleSize(ns, n), rng)
			if err != nil {
				return nil, 0, err
			}
		}
	}

	buildStart := time.Now()
	sm, err := matrix.BuildSample(rh, ch, cond, out.Pairs, out.M, n1, n2, 0)
	return sm, time.Since(buildStart), err
}

// PlanCSIO builds the paper's equi-weight histogram plan: Bernoulli input
// samples → equi-depth histograms → parallel Stream-Sample output sample
// (with exact m) → sample matrix MS (ns = √(2nJ)) → coarsened matrix MC
// (nc = 2J) → MonotonicBSP regionalization into at most J regions.
func PlanCSIO(r1, r2 []join.Key, cond join.Condition, opts Options) (*Plan, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	sm, buildDur, err := buildSampleMatrixTimed(r1, r2, cond, opts)
	if err != nil {
		return nil, err
	}
	n := maxInt(len(r1), len(r2))
	overSelective := sm.M > int64(opts.HighSelectivityRatio)*int64(n)
	overBudget := opts.StatsBudget > 0 &&
		time.Since(start).Seconds() > opts.StatsBudget*float64(len(r1)+len(r2))/1e6
	if !opts.DisableFallback && (overSelective || overBudget) {
		// High-selectivity join (or a stats phase that blew its time budget,
		// §VI-E's second trigger): CI's equal-area regions already balance
		// the dominating output cost; the stats time spent so far is the
		// small price §VI-E accounts for.
		p, err := PlanCI(opts)
		if err != nil {
			return nil, err
		}
		p.Fallback = true
		p.M = sm.M
		p.StatsDuration = time.Since(start)
		return p, nil
	}

	algStart := time.Now()
	plan, err := regionalizePlan(sm, "CSIO", opts)
	if err != nil {
		return nil, err
	}
	plan.M = sm.M
	plan.NS = sm.Rows
	plan.HistAlgDuration = buildDur + time.Since(algStart)
	plan.StatsDuration = time.Since(start)
	return plan, nil
}

// PlanCSI builds the M-Bucket baseline: p-bucket equi-depth histograms over
// each relation, a p×p candidate grid, and regions that balance input plus a
// constant assumed output per candidate cell (§II-B: CSI "ignores the actual
// number of output tuples and assigns a constant to each candidate cell").
func PlanCSI(r1, r2 []join.Key, cond join.Condition, p int, opts Options) (*Plan, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	rng := stats.NewRNG(opts.Seed)
	n1, n2 := len(r1), len(r2)
	if n1 == 0 || n2 == 0 {
		return nil, fmt.Errorf("core: empty input relation (n1=%d n2=%d)", n1, n2)
	}
	if p < 1 {
		return nil, fmt.Errorf("core: p = %d < 1", p)
	}
	if p > n1 {
		p = n1
	}
	if p > n2 {
		p = n2
	}
	si := inputSampleSize(p, maxInt(n1, n2))
	rh, ch, err := buildHistograms(r1, r2, p, si, rng)
	if err != nil {
		return nil, err
	}
	// The constant per candidate cell: its Cartesian area h = (n1/p)·(n2/p),
	// the upper bound §II-B cites; only its uniformity matters — CSI cannot
	// distinguish dense from sparse candidate cells, which is exactly the
	// JPS blindness the paper attacks.
	h := float64(n1) / float64(p) * float64(n2) / float64(p)
	algStart := time.Now()
	sm, err := matrix.BuildSample(rh, ch, cond, nil, 0, n1, n2, h)
	if err != nil {
		return nil, err
	}
	plan, err := regionalizePlan(sm, "CSI", opts)
	if err != nil {
		return nil, err
	}
	plan.NS = p
	plan.HistAlgDuration = time.Since(algStart)
	plan.StatsDuration = time.Since(start)
	return plan, nil
}

// regionalizePlan runs coarsening + regionalization over a built MS and
// wraps the regions in a routing scheme.
func regionalizePlan(sm *matrix.Sample, name string, opts Options) (*Plan, error) {
	nc := opts.NC
	if nc <= 0 {
		nc = 2 * opts.J
	}
	rowCuts, colCuts := tiling.CoarsenGrid(sm, nc, opts.Model, tiling.CoarsenOptions{})
	d := matrix.Coarsen(sm, rowCuts, colCuts)
	regions, err := tiling.Regionalize(d, opts.Model, opts.J,
		tiling.RegionalizeOptions{UseBaselineBSP: opts.BaselineBSP})
	if err != nil {
		return nil, err
	}
	return &Plan{
		Scheme:             partition.NewRegionScheme(name, regions),
		Regions:            regions,
		EstimatedMaxWeight: tiling.MaxWeight(regions),
		NC:                 nc,
		dense:              d,
	}, nil
}

// buildHistograms samples both relations and builds ns-bucket approximate
// equi-depth histograms (§III-A item a).
func buildHistograms(r1, r2 []join.Key, ns, si int, rng *stats.RNG) (*histogram.EquiDepth, *histogram.EquiDepth, error) {
	s1 := sample.FixedSize(r1, si, rng)
	s2 := sample.FixedSize(r2, si, rng)
	rh, err := histogram.FromSample(s1, ns)
	if err != nil {
		return nil, nil, err
	}
	ch, err := histogram.FromSample(s2, ns)
	if err != nil {
		return nil, nil, err
	}
	return rh, ch, nil
}

// inputSampleSize returns si = Θ(ns·log n) ([13], §A1).
func inputSampleSize(ns, n int) int {
	si := int(4 * float64(ns) * math.Log2(float64(n)+2))
	if si < ns {
		si = ns
	}
	return si
}

// countCandidates computes nsc, the number of candidate MS cells, from the
// histogram boundaries alone (no matrix materialization), as §A5 prescribes
// ("we compute nsc by counting the candidate MS cells right after collecting
// a sample of input tuples").
func countCandidates(rh, ch *histogram.EquiDepth, cond join.Condition) int64 {
	cols := ch.Buckets()
	var nsc int64
	for i := 0; i < rh.Buckets(); i++ {
		rLo, rHi := rh.Bounds(i)
		jLo, _ := cond.JoinableRange(rLo)
		_, jHi := cond.JoinableRange(rHi - 1)
		first, last, ok := ch.BucketRange(jLo, jHi)
		if !ok {
			continue
		}
		_ = first
		_ = last
		if last >= first {
			nsc += int64(last - first + 1)
		}
	}
	_ = cols
	return nsc
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"testing"

	"ewh/internal/exec"
	"ewh/internal/join"
)

func TestPlanRoundTripCSIO(t *testing.T) {
	r1 := randKeys(2500, 1200, 50)
	r2 := randKeys(2500, 1200, 51)
	cond := join.NewBand(2)
	plan, err := PlanCSIO(r1, r2, cond, Options{J: 6, Model: model, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheme.Name() != "CSIO" || len(back.Regions) != len(plan.Regions) {
		t.Fatalf("decoded scheme %s with %d regions, want CSIO/%d",
			back.Scheme.Name(), len(back.Regions), len(plan.Regions))
	}
	if back.M != plan.M || back.NS != plan.NS || back.NC != plan.NC ||
		back.EstimatedMaxWeight != plan.EstimatedMaxWeight {
		t.Fatal("plan metadata lost in round trip")
	}
	// The decoded plan must route identically: same execution result.
	orig := exec.Run(r1, r2, cond, plan.Scheme, model, exec.Config{Seed: 53})
	dec := exec.Run(r1, r2, cond, back.Scheme, model, exec.Config{Seed: 53})
	if orig.Output != dec.Output || orig.NetworkTuples != dec.NetworkTuples {
		t.Fatalf("decoded plan executes differently: out %d/%d net %d/%d",
			orig.Output, dec.Output, orig.NetworkTuples, dec.NetworkTuples)
	}
	// Refine is unavailable on decoded plans.
	if _, err := Refine(back, make([]int64, len(back.Regions)), Options{J: 6, Model: model}); err == nil {
		t.Error("Refine on a decoded plan accepted")
	}
}

func TestPlanRoundTripCI(t *testing.T) {
	plan, err := PlanCI(Options{J: 12})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheme.Name() != "CI" || back.Scheme.Workers() != 12 {
		t.Fatalf("decoded %s with %d workers", back.Scheme.Name(), back.Scheme.Workers())
	}
}

func TestDecodePlanErrors(t *testing.T) {
	if _, err := DecodePlan([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := DecodePlan([]byte(`{"version":99,"scheme":"CI","ci_workers":2}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := DecodePlan([]byte(`{"version":1,"scheme":"nope"}`)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := DecodePlan([]byte(`{"version":1,"scheme":"CI"}`)); err == nil {
		t.Error("CI without workers accepted")
	}
	bad := `{"version":1,"scheme":"CSIO","regions":[{"row_lo":5,"row_hi":5,"col_lo":0,"col_hi":1}]}`
	if _, err := DecodePlan([]byte(bad)); err == nil {
		t.Error("empty-key-range region accepted")
	}
}

package core

import (
	"strings"
	"testing"

	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/sample"
	"ewh/internal/stats"
	"ewh/internal/workload"
)

// shardSummaries splits r1 into n shards and summarizes each — the worker
// side of distributed statistics, in miniature.
func shardSummaries(r1 []join.Key, shards, cap, buckets int) []*stats.Summary {
	out := make([]*stats.Summary, shards)
	for w := 0; w < shards; w++ {
		lo, hi := len(r1)*w/shards, len(r1)*(w+1)/shards
		out[w] = sample.Summarize(r1[lo:hi], cap, buckets, stats.NewRNG(uint64(w)*7+1))
	}
	return out
}

func mergeAll(t *testing.T, sums []*stats.Summary) *stats.Summary {
	t.Helper()
	merged := sums[0]
	var err error
	for _, s := range sums[1:] {
		if merged, err = stats.MergeSummaries(merged, s); err != nil {
			t.Fatal(err)
		}
	}
	return merged
}

func TestPlanCSIOFromSummaryBalancesSkew(t *testing.T) {
	// A skewed intermediate, known to the planner only through merged shard
	// summaries: the resulting CSIO plan must beat CI's makespan on the same
	// workload, just as the full-knowledge planner does — the paper's core
	// claim carried over to distributed statistics.
	r1 := workload.Zipfian(20000, 8000, 0.7, 41)
	r2 := workload.Zipfian(15000, 8000, 0.7, 43)
	cond := join.NewBand(2)
	opts := Options{J: 8, Seed: 17}

	merged := mergeAll(t, shardSummaries(r1, 4, 2048, 128))
	if merged.Count != int64(len(r1)) {
		t.Fatalf("merged count %d, want %d", merged.Count, len(r1))
	}
	plan, err := PlanCSIOFromSummary(merged, r2, cond, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallback {
		t.Fatal("summary plan fell back to CI on a moderate-selectivity workload")
	}
	if plan.Scheme.Name() != "CSIO" {
		t.Fatalf("summary plan built %q, want CSIO", plan.Scheme.Name())
	}
	if plan.Scheme.Workers() > opts.J {
		t.Fatalf("plan routes to %d workers, J = %d", plan.Scheme.Workers(), opts.J)
	}

	// The estimated output size must be in the right ballpark of the truth.
	exactM := sample.OutputSize(r1, r2, cond, 4)
	if plan.M < exactM/3 || plan.M > exactM*3 {
		t.Fatalf("estimated m = %d, exact m = %d: summary statistics badly off", plan.M, exactM)
	}

	// The distributed-statistics claim itself: the plan built from capped
	// summaries must execute about as well as the plan built from the FULL
	// relation — same output, makespan within a modest factor.
	model := cost.DefaultBand
	cfg := exec.Config{Seed: 23, Mappers: 2}
	fromSummary := exec.Run(r1, r2, cond, plan.Scheme, model, cfg)
	fullPlan, err := PlanCSIO(r1, r2, cond, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromFull := exec.Run(r1, r2, cond, fullPlan.Scheme, model, cfg)
	if fromSummary.Output != fromFull.Output {
		t.Fatalf("schemes disagree on output: summary %d full %d", fromSummary.Output, fromFull.Output)
	}
	if fromSummary.MaxWork > 1.5*fromFull.MaxWork {
		t.Fatalf("summary-built makespan %.0f is far off the full-knowledge plan's %.0f",
			fromSummary.MaxWork, fromFull.MaxWork)
	}

	// Routing must be total even for keys the sample never saw.
	rng := stats.NewRNG(1)
	var buf []int
	for _, k := range []join.Key{r1[0], r1[len(r1)/2], -999999, 999999} {
		if buf = plan.Scheme.RouteR1(k, rng, buf[:0]); len(buf) == 0 {
			t.Fatalf("key %d routes nowhere", k)
		}
	}
}

func TestPlanCSIOFromSummaryExactWhenSampleCoversAll(t *testing.T) {
	// A cap large enough to enumerate the whole population makes m exact.
	r1 := workload.Zipfian(3000, 500, 0.6, 5)
	r2 := workload.Zipfian(2500, 500, 0.6, 6)
	cond := join.Equi{}
	merged := mergeAll(t, shardSummaries(r1, 3, len(r1), 64))
	plan, err := PlanCSIOFromSummary(merged, r2, cond, Options{J: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if want := sample.OutputSize(r1, r2, cond, 2); plan.M != want {
		t.Fatalf("full-coverage summary estimated m = %d, exact m = %d", plan.M, want)
	}
}

func TestPlanCSIOFromSummaryFallsBackOnHighSelectivity(t *testing.T) {
	// Everything joins with everything: the §VI-E fallback must fire off the
	// ESTIMATED m exactly as it does off the exact one.
	n := 2000
	r1 := make([]join.Key, n)
	r2 := make([]join.Key, n)
	merged := mergeAll(t, shardSummaries(r1, 2, 256, 32))
	plan, err := PlanCSIOFromSummary(merged, r2, join.Equi{}, Options{J: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fallback || plan.Scheme.Name() != "CI" {
		t.Fatalf("high-selectivity summary plan did not fall back: %q fallback=%v",
			plan.Scheme.Name(), plan.Fallback)
	}
}

func TestPlanCSIOFromSummaryRejectsEmpty(t *testing.T) {
	empty := sample.Summarize(nil, 16, 8, stats.NewRNG(1))
	_, err := PlanCSIOFromSummary(empty, []join.Key{1, 2}, join.Equi{}, Options{J: 2})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty summary accepted: %v", err)
	}
	full := sample.Summarize([]join.Key{1, 2, 3}, 16, 8, stats.NewRNG(1))
	if _, err := PlanCSIOFromSummary(full, nil, join.Equi{}, Options{J: 2}); err == nil {
		t.Fatal("empty r2 accepted")
	}
}

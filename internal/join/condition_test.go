package join

import (
	"testing"
	"testing/quick"
)

func TestBandMatches(t *testing.T) {
	b := NewBand(2)
	cases := []struct {
		a, k Key
		want bool
	}{
		{0, 0, true}, {0, 2, true}, {0, 3, false},
		{5, 3, true}, {5, 2, false}, {-4, -6, true}, {-4, -7, false},
	}
	for _, c := range cases {
		if got := b.Matches(c.a, c.k); got != c.want {
			t.Errorf("Band(2).Matches(%d,%d) = %v, want %v", c.a, c.k, got, c.want)
		}
	}
}

func TestBandZeroIsEquality(t *testing.T) {
	b := NewBand(0)
	e := Equi{}
	for a := Key(-5); a <= 5; a++ {
		for k := Key(-5); k <= 5; k++ {
			if b.Matches(a, k) != e.Matches(a, k) {
				t.Fatalf("Band(0) and Equi disagree at (%d,%d)", a, k)
			}
		}
	}
}

func TestNewBandPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBand(-1) did not panic")
		}
	}()
	NewBand(-1)
}

// JoinableRange must agree with Matches: b is joinable with a iff b is in the
// range. Property-checked over small keys for every condition type.
func TestJoinableRangeConsistency(t *testing.T) {
	conds := []Condition{
		NewBand(0), NewBand(1), NewBand(7),
		Equi{},
		Inequality{Less}, Inequality{LessEq}, Inequality{Greater}, Inequality{GreaterEq},
		Shifted{Inner: NewBand(2), Scale: 3, Offset: -1},
	}
	for _, c := range conds {
		f := func(a8, b8 int8) bool {
			a, b := Key(a8), Key(b8)
			lo, hi := c.JoinableRange(a)
			inRange := lo <= b && b <= hi
			return inRange == c.Matches(a, b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Range endpoints must be monotone nondecreasing in a, which CellCandidate
// relies on.
func TestJoinableRangeMonotone(t *testing.T) {
	conds := []Condition{
		NewBand(3), Equi{}, Inequality{Less}, Inequality{GreaterEq},
		Shifted{Inner: NewBand(1), Scale: 10, Offset: 0},
	}
	for _, c := range conds {
		prevLo, prevHi := c.JoinableRange(-100)
		for a := Key(-99); a <= 100; a++ {
			lo, hi := c.JoinableRange(a)
			if lo < prevLo || hi < prevHi {
				t.Fatalf("%v: joinable range not monotone at a=%d", c, a)
			}
			prevLo, prevHi = lo, hi
		}
	}
}

// CellCandidate must never report false for a cell that contains a matching
// pair (no false negatives; false positives are allowed and expected).
func TestCellCandidateNoFalseNegatives(t *testing.T) {
	conds := []Condition{NewBand(2), Equi{}, Inequality{LessEq}}
	for _, c := range conds {
		f := func(aLo8, aW, bLo8, bW uint8) bool {
			aLo := Key(int8(aLo8))
			aHi := aLo + Key(aW%16)
			bLo := Key(int8(bLo8))
			bHi := bLo + Key(bW%16)
			hasMatch := false
			for a := aLo; a <= aHi && !hasMatch; a++ {
				for b := bLo; b <= bHi; b++ {
					if c.Matches(a, b) {
						hasMatch = true
						break
					}
				}
			}
			if hasMatch && !CellCandidate(c, aLo, aHi, bLo, bHi) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// For the band condition the candidacy check is exact (no false positives
// either) because every key in a boundary range is attainable.
func TestCellCandidateExactForBand(t *testing.T) {
	c := NewBand(1)
	// Paper example §II-B: grid cell (0,1) in Fig. 1c is a non-candidate
	// because the distance between R2 lower bound 5 and R1 upper bound 3
	// exceeds the band width 1.
	if CellCandidate(c, 3, 3, 5, 5) {
		t.Error("cell with R1 in [3,3], R2 in [5,5] should not be candidate for band 1")
	}
	if !CellCandidate(c, 3, 3, 4, 5) {
		t.Error("cell with R1 in [3,3], R2 in [4,5] should be candidate for band 1")
	}
}

func TestInequalityMatches(t *testing.T) {
	cases := []struct {
		op   Op
		a, b Key
		want bool
	}{
		{Less, 1, 2, true}, {Less, 2, 2, false},
		{LessEq, 2, 2, true}, {LessEq, 3, 2, false},
		{Greater, 3, 2, true}, {Greater, 2, 2, false},
		{GreaterEq, 2, 2, true}, {GreaterEq, 1, 2, false},
	}
	for _, c := range cases {
		q := Inequality{c.op}
		if got := q.Matches(c.a, c.b); got != c.want {
			t.Errorf("%v.Matches(%d,%d) = %v, want %v", q, c.a, c.b, got, c.want)
		}
	}
}

func TestCompositeEncodingFaithful(t *testing.T) {
	spec := CompositeSpec{SecondaryMax: 7, Beta: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cond := spec.Condition()
	for c1 := int64(0); c1 < 4; c1++ {
		for p1 := int64(0); p1 <= 7; p1++ {
			for c2 := int64(0); c2 < 4; c2++ {
				for p2 := int64(0); p2 <= 7; p2++ {
					want := c1 == c2 && abs64(p1-p2) <= 2
					got := cond.Matches(spec.Encode(c1, p1), spec.Encode(c2, p2))
					if got != want {
						t.Fatalf("composite (%d,%d)x(%d,%d): got %v want %v", c1, p1, c2, p2, got, want)
					}
				}
			}
		}
	}
}

func TestCompositeValidateRejectsBadStride(t *testing.T) {
	spec := CompositeSpec{SecondaryMax: 7, Beta: 2, Stride: 8}
	if err := spec.Validate(); err == nil {
		t.Fatal("stride 8 with max 7 + beta 2 should be rejected")
	}
	spec = CompositeSpec{SecondaryMax: -1}
	if err := spec.Validate(); err == nil {
		t.Fatal("negative secondary max should be rejected")
	}
}

func TestCompositeDecode(t *testing.T) {
	spec := CompositeSpec{SecondaryMax: 7, Beta: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	p, s := spec.Decode(spec.Encode(123, 5))
	if p != 123 || s != 5 {
		t.Fatalf("decode(encode(123,5)) = (%d,%d)", p, s)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestValidateMonotonicAccepts(t *testing.T) {
	conds := []Condition{
		NewBand(0), NewBand(5), Equi{},
		Inequality{Op: Less}, Inequality{Op: LessEq},
		Inequality{Op: Greater}, Inequality{Op: GreaterEq},
		Shifted{Inner: NewBand(2), Scale: 3, Offset: 1},
	}
	for _, c := range conds {
		if err := ValidateMonotonic(c, -1000, 1000, 64); err != nil {
			t.Errorf("%v rejected: %v", c, err)
		}
	}
}

// reversedBand is a deliberately broken condition whose joinable range moves
// backwards — ValidateMonotonic must reject it.
type reversedBand struct{}

func (reversedBand) Matches(a, b Key) bool {
	d := -a - b
	if d < 0 {
		d = -d
	}
	return d <= 1
}
func (reversedBand) JoinableRange(a Key) (Key, Key) { return -a - 1, -a + 1 }
func (reversedBand) String() string                 { return "reversed band" }

// lyingRange reports a joinable range inconsistent with Matches.
type lyingRange struct{}

func (lyingRange) Matches(a, b Key) bool          { return a == b }
func (lyingRange) JoinableRange(a Key) (Key, Key) { return a, a + 5 }
func (lyingRange) String() string                 { return "lying range" }

func TestValidateMonotonicRejects(t *testing.T) {
	if err := ValidateMonotonic(reversedBand{}, -100, 100, 32); err == nil {
		t.Error("reversed band accepted")
	}
	if err := ValidateMonotonic(lyingRange{}, -100, 100, 32); err == nil {
		t.Error("lying range accepted")
	}
	if err := ValidateMonotonic(Equi{}, 10, 5, 8); err == nil {
		t.Error("inverted validation range accepted")
	}
}

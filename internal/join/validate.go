package join

import "fmt"

// ValidateMonotonic checks, over the inclusive key range [lo, hi] probed at
// `probes` evenly spaced points, that a condition behaves monotonically:
// JoinableRange endpoints nondecreasing in the key and consistent with
// Matches at the range boundaries. The whole framework (candidacy checks,
// MonotonicBSP, Stream-Sample) relies on these properties, so the planner
// can cheaply vet user-supplied conditions instead of silently producing
// wrong partitionings.
func ValidateMonotonic(c Condition, lo, hi Key, probes int) error {
	if probes < 2 {
		probes = 2
	}
	if lo > hi {
		return fmt.Errorf("join: validate range [%d, %d] inverted", lo, hi)
	}
	step := (hi - lo) / Key(probes-1)
	if step < 1 {
		step = 1
	}
	prevLo, prevHi := c.JoinableRange(lo)
	for k := lo; k <= hi; k += step {
		rLo, rHi := c.JoinableRange(k)
		if rLo < prevLo || rHi < prevHi {
			return fmt.Errorf("join: %v not monotonic: joinable range regressed at key %d", c, k)
		}
		// Boundary consistency: endpoints inside the range must match; the
		// neighbours just outside must not.
		if rLo <= rHi {
			if !c.Matches(k, rLo) {
				return fmt.Errorf("join: %v inconsistent: range start %d not matched by key %d", c, rLo, k)
			}
			if !c.Matches(k, rHi) {
				return fmt.Errorf("join: %v inconsistent: range end %d not matched by key %d", c, rHi, k)
			}
			if rLo > MinKey && c.Matches(k, rLo-1) {
				return fmt.Errorf("join: %v inconsistent: key below range start matched by key %d", c, k)
			}
			if rHi < MaxKey && c.Matches(k, rHi+1) {
				return fmt.Errorf("join: %v inconsistent: key above range end matched by key %d", c, k)
			}
		}
		prevLo, prevHi = rLo, rHi
		if k > hi-step {
			break
		}
	}
	return nil
}

// Package join defines the monotonic join conditions the partitioning schemes
// operate on: equality, band (|a-b| <= beta), inequality (<, <=, >, >=) and
// composite equality+band conditions encoded onto a single key.
//
// A condition is monotonic in the paper's sense (§III-B): over sorted join
// keys, the candidate cells of the join matrix are consecutive per row and
// per column. All conditions here expose the joinable key range of a given
// key, which is what makes O(1) grid-cell candidacy checks and the
// Stream-Sample output sampler possible.
package join

import (
	"fmt"
	"math"
)

// Key is a join key. Relations join on a single int64 attribute; composite
// conditions are encoded into one key (see EncodeComposite).
type Key = int64

const (
	// MinKey and MaxKey bound the joinable range of inequality conditions.
	MinKey Key = math.MinInt64 / 4
	MaxKey Key = math.MaxInt64 / 4
)

// Condition is a monotonic join predicate between a key a from R1 and a key
// b from R2.
type Condition interface {
	// Matches reports whether the pair (a, b) satisfies the join predicate.
	Matches(a, b Key) bool

	// JoinableRange returns the inclusive range [lo, hi] of R2 keys joinable
	// with the R1 key a. Monotonicity guarantees the range is contiguous.
	JoinableRange(a Key) (lo, hi Key)

	// String describes the predicate, e.g. "|R1.A - R2.A| <= 2".
	fmt.Stringer
}

// CellCandidate reports whether a grid cell with R1 keys in [aLo, aHi] and R2
// keys in [bLo, bHi] may contain an output tuple. For monotonic conditions
// this needs only the cell boundary keys (§II-B): the cell is a candidate iff
// the union of joinable ranges of [aLo, aHi] intersects [bLo, bHi]. Because
// JoinableRange endpoints are monotone in a, that union is
// [lo(aLo), hi(aHi)].
func CellCandidate(c Condition, aLo, aHi, bLo, bHi Key) bool {
	lo, _ := c.JoinableRange(aLo)
	_, hi := c.JoinableRange(aHi)
	return lo <= bHi && bLo <= hi
}

// Band is the band-join condition |a - b| <= Beta. Beta = 0 degenerates to
// equality.
type Band struct {
	Beta int64
}

// NewBand returns a band condition of half-width beta. It panics if beta < 0.
func NewBand(beta int64) Band {
	if beta < 0 {
		panic("join: NewBand called with beta < 0")
	}
	return Band{Beta: beta}
}

// Matches implements Condition.
func (b Band) Matches(a, k Key) bool {
	d := a - k
	if d < 0 {
		d = -d
	}
	return d <= b.Beta
}

// JoinableRange implements Condition.
func (b Band) JoinableRange(a Key) (Key, Key) {
	return a - b.Beta, a + b.Beta
}

// String implements fmt.Stringer.
func (b Band) String() string {
	if b.Beta == 0 {
		return "R1.A = R2.A"
	}
	return fmt.Sprintf("|R1.A - R2.A| <= %d", b.Beta)
}

// Equi is the equality condition a = b.
type Equi struct{}

// Matches implements Condition.
func (Equi) Matches(a, b Key) bool { return a == b }

// JoinableRange implements Condition.
func (Equi) JoinableRange(a Key) (Key, Key) { return a, a }

// String implements fmt.Stringer.
func (Equi) String() string { return "R1.A = R2.A" }

// Op selects the comparison of an Inequality condition.
type Op int

// Comparison operators for Inequality.
const (
	Less Op = iota
	LessEq
	Greater
	GreaterEq
)

func (o Op) String() string {
	switch o {
	case Less:
		return "<"
	case LessEq:
		return "<="
	case Greater:
		return ">"
	case GreaterEq:
		return ">="
	}
	return "?"
}

// Inequality is the condition "a OP b", e.g. R1.A < R2.A.
type Inequality struct {
	Op Op
}

// Matches implements Condition.
func (q Inequality) Matches(a, b Key) bool {
	switch q.Op {
	case Less:
		return a < b
	case LessEq:
		return a <= b
	case Greater:
		return a > b
	case GreaterEq:
		return a >= b
	}
	return false
}

// JoinableRange implements Condition.
func (q Inequality) JoinableRange(a Key) (Key, Key) {
	switch q.Op {
	case Less:
		return a + 1, MaxKey
	case LessEq:
		return a, MaxKey
	case Greater:
		return MinKey, a - 1
	case GreaterEq:
		return MinKey, a
	}
	return 0, -1
}

// String implements fmt.Stringer.
func (q Inequality) String() string {
	return fmt.Sprintf("R1.A %s R2.A", q.Op)
}

// Shifted wraps a condition with an affine transform of the R1 key:
// Matches(a, b) = Inner.Matches(a*Scale + Offset, b). It models predicates
// like ABS(O1.orderkey - 10*O2.custkey) <= 2 (applied from R2's side) by
// scaling one relation's key at load time; Shifted keeps the library side
// expressive for tests.
type Shifted struct {
	Inner  Condition
	Scale  int64
	Offset int64
}

// Matches implements Condition.
func (s Shifted) Matches(a, b Key) bool {
	return s.Inner.Matches(a*s.Scale+s.Offset, b)
}

// JoinableRange implements Condition.
func (s Shifted) JoinableRange(a Key) (Key, Key) {
	return s.Inner.JoinableRange(a*s.Scale + s.Offset)
}

// String implements fmt.Stringer.
func (s Shifted) String() string {
	return fmt.Sprintf("%v with R1.A := R1.A*%d%+d", s.Inner, s.Scale, s.Offset)
}

package join

import "fmt"

// CompositeSpec describes an equality+band condition over two attributes,
// e.g. BEOCD in the paper: O1.custkey = O2.custkey AND
// |O1.ship_priority - O2.ship_priority| <= 2.
//
// The pair is encoded onto one monotonic key as primary*Stride + secondary,
// which preserves the join semantics exactly when Stride > SecondaryMax+Beta:
// two encoded keys are within Beta iff the primaries are equal and the
// secondaries differ by at most Beta. The encoded condition is an ordinary
// Band, so the whole EWH machinery applies unchanged.
type CompositeSpec struct {
	// SecondaryMax is the largest value the secondary (band) attribute takes;
	// secondaries must lie in [0, SecondaryMax].
	SecondaryMax int64
	// Beta is the band half-width on the secondary attribute.
	Beta int64
	// Stride is the encoding multiplier. Zero means "pick the smallest safe
	// power of two" at Validate time.
	Stride int64
}

// Validate fills a safe default Stride and checks the encoding is faithful.
func (s *CompositeSpec) Validate() error {
	if s.SecondaryMax < 0 {
		return fmt.Errorf("join: composite secondary max %d < 0", s.SecondaryMax)
	}
	if s.Beta < 0 {
		return fmt.Errorf("join: composite beta %d < 0", s.Beta)
	}
	min := s.SecondaryMax + s.Beta + 1
	if s.Stride == 0 {
		s.Stride = 1
		for s.Stride < min {
			s.Stride <<= 1
		}
	}
	if s.Stride < min {
		return fmt.Errorf("join: composite stride %d < secondary max %d + beta %d + 1; encoding would cross primaries",
			s.Stride, s.SecondaryMax, s.Beta)
	}
	return nil
}

// Encode maps (primary, secondary) to the composite key.
func (s CompositeSpec) Encode(primary, secondary int64) Key {
	return primary*s.Stride + secondary
}

// Decode splits a composite key back into (primary, secondary).
func (s CompositeSpec) Decode(k Key) (primary, secondary int64) {
	return k / s.Stride, k % s.Stride
}

// Condition returns the band condition over encoded keys that is equivalent
// to "primary equal AND |secondary difference| <= Beta".
func (s CompositeSpec) Condition() Condition {
	return Band{Beta: s.Beta}
}

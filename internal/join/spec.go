package join

import "fmt"

// Spec is a wire-encodable description of a Condition, used by the networked
// execution mode to ship the join predicate to remote workers. All condition
// types this package defines round-trip through a Spec.
type Spec struct {
	Kind   string // "band" | "equi" | "inequality" | "shifted"
	Beta   int64  // band
	Op     Op     // inequality
	Scale  int64  // shifted
	Offset int64  // shifted
	Inner  *Spec  // shifted
}

// SpecOf describes a condition; it fails for condition types defined outside
// this package (ship those as their own Spec kinds or pre-encode the keys).
func SpecOf(c Condition) (Spec, error) {
	switch v := c.(type) {
	case Band:
		return Spec{Kind: "band", Beta: v.Beta}, nil
	case Equi:
		return Spec{Kind: "equi"}, nil
	case Inequality:
		return Spec{Kind: "inequality", Op: v.Op}, nil
	case Shifted:
		inner, err := SpecOf(v.Inner)
		if err != nil {
			return Spec{}, err
		}
		return Spec{Kind: "shifted", Scale: v.Scale, Offset: v.Offset, Inner: &inner}, nil
	}
	return Spec{}, fmt.Errorf("join: condition %T has no wire spec", c)
}

// Condition reconstructs the condition a Spec describes.
func (s Spec) Condition() (Condition, error) {
	switch s.Kind {
	case "band":
		if s.Beta < 0 {
			return nil, fmt.Errorf("join: spec band beta %d < 0", s.Beta)
		}
		return Band{Beta: s.Beta}, nil
	case "equi":
		return Equi{}, nil
	case "inequality":
		if s.Op < Less || s.Op > GreaterEq {
			return nil, fmt.Errorf("join: spec inequality op %d unknown", s.Op)
		}
		return Inequality{Op: s.Op}, nil
	case "shifted":
		if s.Inner == nil {
			return nil, fmt.Errorf("join: shifted spec without inner condition")
		}
		inner, err := s.Inner.Condition()
		if err != nil {
			return nil, err
		}
		return Shifted{Inner: inner, Scale: s.Scale, Offset: s.Offset}, nil
	}
	return nil, fmt.Errorf("join: spec kind %q unknown", s.Kind)
}

package planio

import (
	"errors"
	"testing"

	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/tiling"
)

func shrinkRegions(n int) []tiling.Region {
	regions := make([]tiling.Region, n)
	for i := range regions {
		lo := join.Key(int64(i * 100))
		regions[i] = tiling.Region{
			RowLo: lo, RowHi: lo + 100,
			ColLo: lo, ColHi: lo + 100,
			Weight: float64(1 + i),
		}
	}
	return regions
}

func TestShrinkHashPreservesHeavyKeysAndSeed(t *testing.T) {
	heavy := []join.Key{7, -3, 999}
	h, err := partition.NewHash(4, heavy)
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{Scheme: h, Seed: 42}
	out, err := ShrinkToFleet(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seed != 42 {
		t.Fatalf("seed %d, want 42", out.Seed)
	}
	h2, ok := out.Scheme.(*partition.Hash)
	if !ok || h2.Workers() != 3 {
		t.Fatalf("shrunk scheme %T/%d workers", out.Scheme, out.Scheme.Workers())
	}
	if got := h2.HeavyKeys(); len(got) != len(heavy) {
		t.Fatalf("heavy keys %v, want %v", got, heavy)
	}
}

func TestShrinkBroadcastAndCI(t *testing.T) {
	b, err := partition.NewBroadcast(5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ShrinkToFleet(&Artifact{Scheme: b, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Scheme.(*partition.Broadcast); !ok || out.Scheme.Workers() != 2 {
		t.Fatalf("broadcast shrink: %T/%d", out.Scheme, out.Scheme.Workers())
	}
	out, err = ShrinkToFleet(&Artifact{Scheme: partition.NewCI(9), Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ci, ok := out.Scheme.(*partition.CI); !ok || ci.Workers() != 4 {
		t.Fatalf("CI shrink: %T/%d", out.Scheme, out.Scheme.Workers())
	}
}

func TestShrinkFittingSchemeIsIdentity(t *testing.T) {
	h, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{Scheme: h, Seed: 5}
	out, err := ShrinkToFleet(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out != a {
		t.Fatal("a fitting content-insensitive artifact should be returned as-is")
	}
}

func TestShrinkRegionSchemeReusedWhenFits(t *testing.T) {
	// 3 regions, fleet shrinks 4 → 3: the scheme (the exactly-once unit set)
	// must be reused untouched, and the machine assignment remapped onto the
	// 3 survivors.
	regions := shrinkRegions(3)
	s := partition.NewRegionScheme("CSIO", regions)
	asn, err := partition.AssignRegions(regions, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{Scheme: s, Seed: 11, Assignment: asn}
	out, err := ShrinkToFleet(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != s {
		t.Fatal("region scheme was rebuilt; must be reused verbatim")
	}
	if out.Seed != 11 {
		t.Fatalf("seed %d", out.Seed)
	}
	if out.Assignment == nil {
		t.Fatal("assignment dropped")
	}
	if got := len(out.Assignment.Capacity); got != 3 {
		t.Fatalf("assignment spans %d machines, want 3", got)
	}
	for r, m := range out.Assignment.MachineOf {
		if m < 0 || m >= 3 {
			t.Fatalf("region %d assigned to excluded machine %d", r, m)
		}
	}
}

func TestShrinkRegionSchemeWithoutAssignment(t *testing.T) {
	s := partition.NewRegionScheme("CSI", shrinkRegions(2))
	out, err := ShrinkToFleet(&Artifact{Scheme: s, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != s || out.Assignment != nil {
		t.Fatalf("plain region artifact mangled: %+v", out)
	}
}

func TestShrinkRegionSchemeNeedsReplan(t *testing.T) {
	// 4 regions cannot run on 3 workers: merging regions manufactures pairs
	// no region contains, so the only correct answers are a stats replan or
	// the CI fallback — signalled by ErrNeedsReplan.
	s := partition.NewRegionScheme("CSIO", shrinkRegions(4))
	_, err := ShrinkToFleet(&Artifact{Scheme: s, Seed: 1}, 3)
	if !errors.Is(err, ErrNeedsReplan) {
		t.Fatalf("want ErrNeedsReplan, got %v", err)
	}
}

func TestShrinkArgumentErrors(t *testing.T) {
	if _, err := ShrinkToFleet(nil, 2); err == nil {
		t.Error("nil artifact accepted")
	}
	if _, err := ShrinkToFleet(&Artifact{}, 2); err == nil {
		t.Error("schemeless artifact accepted")
	}
	h, err := partition.NewHash(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShrinkToFleet(&Artifact{Scheme: h}, 0); err == nil {
		t.Error("zero-worker fleet accepted")
	}
}

func TestShrinkRoundTripsThroughCodec(t *testing.T) {
	// A shrunk artifact must still encode/decode — recovery re-serializes it
	// for the surviving workers.
	heavy := []join.Key{1, 2}
	h, err := partition.NewHash(6, heavy)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ShrinkToFleet(&Artifact{Scheme: h, Seed: 77}, 4)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(out)
	if err != nil {
		t.Fatalf("encode shrunk artifact: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode shrunk artifact: %v", err)
	}
	if dec.Seed != 77 || dec.Scheme.Workers() != 4 {
		t.Fatalf("round trip: seed %d, workers %d", dec.Seed, dec.Scheme.Workers())
	}
}

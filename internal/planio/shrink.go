package planio

import (
	"errors"
	"fmt"

	"ewh/internal/partition"
)

// ErrNeedsReplan marks an artifact that cannot be mechanically re-encoded
// for a smaller fleet: its routing is content-sensitive (a region scheme
// with more regions than surviving workers), so only fresh statistics — or
// the content-insensitive CI fallback of §VI-E — can produce a correct
// replacement. Callers holding the relations replan; callers holding only
// the artifact fall back to CI.
var ErrNeedsReplan = errors.New("planio: plan needs statistics to replan for a smaller fleet")

// ShrinkToFleet re-targets an artifact at a fleet of j workers after some of
// the original workers were excluded. Content-insensitive schemes (Hash,
// Broadcast, CI) rebuild mechanically — their routing depends only on the
// worker count. A region scheme's regions are the exactly-once join unit
// (merging two regions' tuple sets onto one machine manufactures pairs no
// region contains), so it is reusable only when the surviving fleet still
// fits one region per worker: then the scheme itself is unchanged and only
// the optional machine assignment is remapped over j uniform-capacity
// survivors. With more regions than survivors it returns ErrNeedsReplan.
//
// The seed is preserved — same artifact, smaller fleet, reproducible
// routing.
func ShrinkToFleet(a *Artifact, j int) (*Artifact, error) {
	if a == nil || a.Scheme == nil {
		return nil, fmt.Errorf("planio: shrink of an empty artifact")
	}
	if j < 1 {
		return nil, fmt.Errorf("planio: shrink to %d workers", j)
	}
	if _, region := a.Scheme.(*partition.RegionScheme); !region && a.Scheme.Workers() <= j {
		// Already fits the surviving fleet; nothing to rebuild. (A region
		// scheme that fits still falls through: its assignment may name
		// machines that no longer exist.)
		return a, nil
	}
	out := &Artifact{Seed: a.Seed}
	switch v := a.Scheme.(type) {
	case *partition.Hash:
		s, err := partition.NewHash(j, v.HeavyKeys())
		if err != nil {
			return nil, fmt.Errorf("planio: shrink hash plan: %w", err)
		}
		out.Scheme = s
	case *partition.Broadcast:
		s, err := partition.NewBroadcast(j)
		if err != nil {
			return nil, fmt.Errorf("planio: shrink broadcast plan: %w", err)
		}
		out.Scheme = s
	case *partition.CI:
		out.Scheme = partition.NewCI(j)
	case *partition.RegionScheme:
		if v.Workers() > j {
			return nil, fmt.Errorf("%w: %d regions, %d surviving workers",
				ErrNeedsReplan, v.Workers(), j)
		}
		out.Scheme = v
		if a.Assignment != nil {
			caps := make([]float64, j)
			for i := range caps {
				caps[i] = 1
			}
			asn, err := partition.AssignRegions(v.Regions(), caps)
			if err != nil {
				return nil, fmt.Errorf("planio: remapping assignment: %w", err)
			}
			out.Assignment = asn
		}
		return out, nil
	default:
		return nil, fmt.Errorf("planio: cannot shrink scheme %T", a.Scheme)
	}
	return out, nil
}

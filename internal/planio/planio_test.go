package planio

import (
	"bytes"
	"fmt"
	"testing"

	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/partition"
	"ewh/internal/stats"
	"ewh/internal/tiling"
)

// randScheme derives a random scheme of the given kind from an RNG stream —
// the generator both the table tests and the fuzz harness draw from.
func randScheme(t testing.TB, kind int, rng *stats.RNG) partition.Scheme {
	t.Helper()
	j := 1 + rng.Intn(16)
	switch kind % 4 {
	case 0:
		var heavy []join.Key
		for i, n := 0, rng.Intn(5); i < n; i++ {
			heavy = append(heavy, join.Key(rng.Int64n(1000)-500))
		}
		h, err := partition.NewHash(j, heavy)
		if err != nil {
			t.Fatal(err)
		}
		return h
	case 1:
		b, err := partition.NewBroadcast(j)
		if err != nil {
			t.Fatal(err)
		}
		return b
	case 2:
		return partition.NewCI(j)
	default:
		name := "CSIO"
		if rng.Intn(2) == 0 {
			name = "CSI"
		}
		regions := make([]tiling.Region, 1+rng.Intn(8))
		for i := range regions {
			rowLo := rng.Int64n(1000) - 500
			colLo := rng.Int64n(1000) - 500
			regions[i] = tiling.Region{
				Rect: matrix.Rect{
					R0: rng.Intn(32), C0: rng.Intn(32),
					R1: rng.Intn(32), C1: rng.Intn(32),
				},
				RowLo: join.Key(rowLo), RowHi: join.Key(rowLo + 1 + rng.Int64n(100)),
				ColLo: join.Key(colLo), ColHi: join.Key(colLo + 1 + rng.Int64n(100)),
				Input: rng.Float64() * 1e6, Output: rng.Float64() * 1e6,
				Weight: rng.Float64() * 1e6,
			}
		}
		return partition.NewRegionScheme(name, regions)
	}
}

func randArtifact(t testing.TB, kind int, rng *stats.RNG) *Artifact {
	t.Helper()
	a := &Artifact{Scheme: randScheme(t, kind, rng), Seed: rng.Uint64()}
	if rng.Intn(3) == 0 {
		nm := 1 + rng.Intn(4)
		caps := make([]float64, nm)
		for i := range caps {
			caps[i] = 0.5 + rng.Float64()
		}
		nr := 1 + rng.Intn(8)
		regions := make([]tiling.Region, nr)
		for i := range regions {
			regions[i].Weight = rng.Float64() * 100
		}
		assign, err := partition.AssignRegions(regions, caps)
		if err != nil {
			t.Fatal(err)
		}
		a.Assignment = assign
	}
	return a
}

// checkRoundTrip asserts the codec's two invariants for one artifact: the
// decoded scheme routes identically to the original (both relations, over a
// deterministic RNG replay), and re-encoding the decoded artifact reproduces
// the bytes exactly.
func checkRoundTrip(t testing.TB, a *Artifact, rngSeed uint64) {
	t.Helper()
	enc, err := Encode(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Seed != a.Seed {
		t.Fatalf("seed %d round-tripped to %d", a.Seed, dec.Seed)
	}
	reenc, err := Encode(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatalf("artifact not byte-exact: %d bytes vs %d after round trip", len(enc), len(reenc))
	}
	if got, want := dec.Scheme.Workers(), a.Scheme.Workers(); got != want {
		t.Fatalf("workers %d round-tripped to %d", want, got)
	}
	if got, want := dec.Scheme.Name(), a.Scheme.Name(); got != want {
		t.Fatalf("name %q round-tripped to %q", want, got)
	}
	// Routing equivalence: identical receiver sets for a spread of keys,
	// with both schemes consuming identical RNG streams.
	rngA, rngB := stats.NewRNG(rngSeed), stats.NewRNG(rngSeed)
	var bufA, bufB []int
	for i := 0; i < 64; i++ {
		k := join.Key(int64(i*37) - 700)
		bufA = a.Scheme.RouteR1(k, rngA, bufA[:0])
		bufB = dec.Scheme.RouteR1(k, rngB, bufB[:0])
		if fmt.Sprint(bufA) != fmt.Sprint(bufB) {
			t.Fatalf("RouteR1(%d): %v vs decoded %v", k, bufA, bufB)
		}
		bufA = a.Scheme.RouteR2(k, rngA, bufA[:0])
		bufB = dec.Scheme.RouteR2(k, rngB, bufB[:0])
		if fmt.Sprint(bufA) != fmt.Sprint(bufB) {
			t.Fatalf("RouteR2(%d): %v vs decoded %v", k, bufA, bufB)
		}
	}
	if a.Assignment != nil {
		if dec.Assignment == nil {
			t.Fatal("assignment lost in round trip")
		}
		if fmt.Sprint(a.Assignment.MachineOf) != fmt.Sprint(dec.Assignment.MachineOf) {
			t.Fatalf("assignment machines differ: %v vs %v",
				a.Assignment.MachineOf, dec.Assignment.MachineOf)
		}
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := stats.NewRNG(seed)
		for kind := 0; kind < 4; kind++ {
			checkRoundTrip(t, randArtifact(t, kind, rng), seed+99)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := &Artifact{Scheme: partition.NewCI(6), Seed: 7}
	enc, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), enc[4:]...),
		"bad version":   append(append([]byte{}, enc[:4]...), append([]byte{99, 0}, enc[6:]...)...),
		"truncated":     enc[:len(enc)-3],
		"trailing junk": append(append([]byte{}, enc...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt artifact", name)
		}
	}
}

func TestEncodeRejectsForeignScheme(t *testing.T) {
	if _, err := EncodeScheme(foreignScheme{}); err == nil {
		t.Fatal("encode accepted a scheme type without a codec")
	}
}

type foreignScheme struct{}

func (foreignScheme) Name() string { return "foreign" }
func (foreignScheme) Workers() int { return 1 }
func (foreignScheme) RouteR1(join.Key, *stats.RNG, []int) []int {
	return nil
}
func (foreignScheme) RouteR2(join.Key, *stats.RNG, []int) []int {
	return nil
}

// FuzzArtifactRoundTrip drives the round-trip invariants from fuzzer-chosen
// seeds: every scheme kind, random sizes, heavy keys, regions, assignments
// and RNG seeds must re-encode byte-exactly and route identically.
func FuzzArtifactRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, int(seed%4))
	}
	f.Fuzz(func(t *testing.T, seed uint64, kind int) {
		if kind < 0 {
			kind = -kind
		}
		rng := stats.NewRNG(seed)
		checkRoundTrip(t, randArtifact(t, kind, rng), seed^0xabcdef)
	})
}

// FuzzDecode throws arbitrary bytes at the decoder: it must never panic, and
// anything it accepts must re-encode byte-exactly.
func FuzzDecode(f *testing.F) {
	if enc, err := Encode(&Artifact{Scheme: partition.NewCI(8), Seed: 3}); err == nil {
		f.Add(enc)
	}
	if h, err := partition.NewHash(4, []join.Key{1, 2}); err == nil {
		if enc, err := Encode(&Artifact{Scheme: h, Seed: 9}); err == nil {
			f.Add(enc)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		reenc, err := Encode(a)
		if err != nil {
			t.Fatalf("re-encode of accepted artifact failed: %v", err)
		}
		if !bytes.Equal(data, reenc) {
			t.Fatalf("accepted artifact not canonical: %d bytes in, %d out", len(data), len(reenc))
		}
	})
}

// Package planio is the binary codec that makes partitioning plans
// first-class, wire-encodable artifacts: every scheme the repo implements —
// Hash (with PRPD heavy keys), Broadcast, CI, and the region schemes CSI and
// CSIO (full region tables) — plus an optional heterogeneous-cluster
// assignment and the routing RNG seed round-trip through a compact,
// versioned, fixed-width little-endian encoding. A plan built anywhere
// (coordinator, CLI, a file on disk) executes identically everywhere: the
// netexec coordinator broadcasts an encoded artifact in the session
// protocol's PLAN frame so each worker re-shuffles its stage-1 matches with
// the exact scheme and seed the coordinator chose, and cmd/ewhplan persists
// artifacts for plan-once/execute-many runs.
//
// Encoding is canonical: Encode(Decode(Encode(a))) == Encode(a) byte for
// byte, which the fuzz harness asserts across all schemes and seeds.
package planio

import (
	"encoding/binary"
	"fmt"
	"math"

	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/partition"
	"ewh/internal/tiling"
)

// Artifact is one serializable partitioning plan: the scheme that routes
// tuples, the seed that drives its randomized routing decisions, and the
// optional region→machine assignment for heterogeneous clusters.
type Artifact struct {
	// Scheme routes tuples. Must be one of the package partition schemes.
	Scheme partition.Scheme
	// Seed drives randomized routing (CI rows/columns, Hash heavy-key
	// scatter). Executors derive their shuffle RNG streams from it, so two
	// holders of the same artifact route identically.
	Seed uint64
	// Assignment optionally maps the scheme's regions onto physical machines
	// of heterogeneous capacity (§A5); nil when regions map 1:1 to workers.
	Assignment *partition.Assignment
}

// Wire format (all integers little-endian, floats as IEEE-754 bits):
//
//	magic "EWHP" | u16 version | u64 seed | u8 schemeTag | scheme body |
//	u8 hasAssignment | [assignment body]
//
//	schemeTag 1 Hash:      u32 workers | u32 nheavy | nheavy × u64 key
//	schemeTag 2 Broadcast: u32 workers
//	schemeTag 3 CI:        u32 rows | u32 cols
//	schemeTag 4 Region:    u8 nameLen | name | u32 nregions | nregions ×
//	                       (4 × u32 rect | 4 × u64 key bounds | 3 × f64)
//
//	assignment body: u32 nregions | nregions × u32 machine |
//	                 u32 nmachines | nmachines × (f64 load | f64 capacity)
const (
	codecVersion = 1

	tagHash      = 1
	tagBroadcast = 2
	tagCI        = 3
	tagRegion    = 4

	// maxCount bounds every decoded collection (heavy keys, regions,
	// machines): the decoder allocates from declared counts, so the cap is
	// what keeps a malformed artifact from OOMing its holder.
	maxCount = 1 << 20
)

var codecMagic = [4]byte{'E', 'W', 'H', 'P'}

// Encode serializes an artifact. It fails for scheme types outside package
// partition — external schemes need their own artifact format.
func Encode(a *Artifact) ([]byte, error) {
	if a.Scheme == nil {
		return nil, fmt.Errorf("planio: artifact without a scheme")
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, codecMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, a.Seed)
	var err error
	if buf, err = appendScheme(buf, a.Scheme); err != nil {
		return nil, err
	}
	if a.Assignment == nil {
		return append(buf, 0), nil
	}
	buf = append(buf, 1)
	return appendAssignment(buf, a.Assignment)
}

// EncodeScheme is Encode for a bare scheme (seed 0, no assignment).
func EncodeScheme(s partition.Scheme) ([]byte, error) {
	return Encode(&Artifact{Scheme: s})
}

func appendScheme(buf []byte, s partition.Scheme) ([]byte, error) {
	switch v := s.(type) {
	case *partition.Hash:
		heavy := v.HeavyKeys()
		if len(heavy) > maxCount {
			return nil, fmt.Errorf("planio: %d heavy keys exceed codec limit %d", len(heavy), maxCount)
		}
		buf = append(buf, tagHash)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Workers()))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(heavy)))
		for _, k := range heavy {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		}
		return buf, nil
	case *partition.Broadcast:
		buf = append(buf, tagBroadcast)
		return binary.LittleEndian.AppendUint32(buf, uint32(v.Workers())), nil
	case *partition.CI:
		rows, cols := v.Grid()
		buf = append(buf, tagCI)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
		return binary.LittleEndian.AppendUint32(buf, uint32(cols)), nil
	case *partition.RegionScheme:
		name := v.Name()
		regions := v.Regions()
		if len(name) > 255 {
			return nil, fmt.Errorf("planio: scheme name %q too long", name)
		}
		if len(regions) > maxCount {
			return nil, fmt.Errorf("planio: %d regions exceed codec limit %d", len(regions), maxCount)
		}
		buf = append(buf, tagRegion, byte(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(regions)))
		for _, r := range regions {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rect.R0))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rect.C0))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rect.R1))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rect.C1))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.RowLo))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.RowHi))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ColLo))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ColHi))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Input))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Output))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Weight))
		}
		return buf, nil
	}
	return nil, fmt.Errorf("planio: scheme %T has no codec", s)
}

func appendAssignment(buf []byte, a *partition.Assignment) ([]byte, error) {
	if len(a.MachineOf) > maxCount || len(a.Capacity) > maxCount {
		return nil, fmt.Errorf("planio: assignment size exceeds codec limit %d", maxCount)
	}
	if len(a.Load) != len(a.Capacity) {
		return nil, fmt.Errorf("planio: assignment has %d loads for %d capacities", len(a.Load), len(a.Capacity))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.MachineOf)))
	for _, m := range a.MachineOf {
		if m < 0 || m >= len(a.Capacity) {
			return nil, fmt.Errorf("planio: region assigned to machine %d of %d", m, len(a.Capacity))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.Capacity)))
	for i := range a.Capacity {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Load[i]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Capacity[i]))
	}
	return buf, nil
}

// decoder is a bounds-checked cursor over an encoded artifact.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) bytes(n int) ([]byte, error) {
	if d.remaining() < n {
		return nil, fmt.Errorf("planio: truncated artifact (%d bytes needed, %d left)", n, d.remaining())
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) u8() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) f64() (float64, error) {
	u, err := d.u64()
	return math.Float64frombits(u), err
}

// count reads a u32 collection size and validates it against the codec cap.
func (d *decoder) count(what string) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > maxCount {
		return 0, fmt.Errorf("planio: %s count %d exceeds codec limit %d", what, n, maxCount)
	}
	return int(n), nil
}

// Decode reconstructs an artifact from Encode's output. The decoded scheme
// routes identically to the encoded one; re-encoding it reproduces the input
// bytes exactly.
func Decode(data []byte) (*Artifact, error) {
	d := &decoder{buf: data}
	magic, err := d.bytes(len(codecMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != string(codecMagic[:]) {
		return nil, fmt.Errorf("planio: bad magic %q", magic)
	}
	version, err := d.u16()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("planio: artifact version %d unsupported (want %d)", version, codecVersion)
	}
	a := &Artifact{}
	if a.Seed, err = d.u64(); err != nil {
		return nil, err
	}
	if a.Scheme, err = decodeScheme(d); err != nil {
		return nil, err
	}
	hasAssign, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch hasAssign {
	case 0:
	case 1:
		if a.Assignment, err = decodeAssignment(d); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("planio: assignment flag %d", hasAssign)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("planio: %d trailing bytes after artifact", d.remaining())
	}
	return a, nil
}

// DecodeScheme is Decode returning only the scheme.
func DecodeScheme(data []byte) (partition.Scheme, error) {
	a, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return a.Scheme, nil
}

func decodeScheme(d *decoder) (partition.Scheme, error) {
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagHash:
		workers, err := d.u32()
		if err != nil {
			return nil, err
		}
		nheavy, err := d.count("heavy key")
		if err != nil {
			return nil, err
		}
		heavy := make([]join.Key, nheavy)
		for i := range heavy {
			k, err := d.u64()
			if err != nil {
				return nil, err
			}
			heavy[i] = join.Key(k)
			// Strictly increasing keys are the canonical wire form (NewHash
			// sorts and dedups); anything else would re-encode differently.
			if i > 0 && heavy[i] <= heavy[i-1] {
				return nil, fmt.Errorf("planio: heavy keys not strictly increasing at %d", i)
			}
		}
		return partition.NewHash(int(workers), heavy)
	case tagBroadcast:
		workers, err := d.u32()
		if err != nil {
			return nil, err
		}
		return partition.NewBroadcast(int(workers))
	case tagCI:
		rows, err := d.u32()
		if err != nil {
			return nil, err
		}
		cols, err := d.u32()
		if err != nil {
			return nil, err
		}
		if rows < 1 || cols < 1 || rows > maxCount || cols > maxCount {
			return nil, fmt.Errorf("planio: CI grid %dx%d invalid", rows, cols)
		}
		ci := partition.NewCI(int(rows) * int(cols))
		// NewCI re-derives the most square grid; an artifact carrying a
		// different factorization of the same worker count would route
		// differently, so it must be rejected rather than silently reshaped.
		if r, c := ci.Grid(); r != int(rows) || c != int(cols) {
			return nil, fmt.Errorf("planio: CI grid %dx%d is not the canonical factorization (%dx%d)",
				rows, cols, r, c)
		}
		return ci, nil
	case tagRegion:
		nameLen, err := d.u8()
		if err != nil {
			return nil, err
		}
		nameBytes, err := d.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		name := string(nameBytes)
		nregions, err := d.count("region")
		if err != nil {
			return nil, err
		}
		if nregions < 1 {
			return nil, fmt.Errorf("planio: region scheme %q without regions", name)
		}
		regions := make([]tiling.Region, nregions)
		for i := range regions {
			r := &regions[i]
			rect := [4]uint32{}
			for j := range rect {
				if rect[j], err = d.u32(); err != nil {
					return nil, err
				}
			}
			r.Rect = matrix.Rect{R0: int(rect[0]), C0: int(rect[1]), R1: int(rect[2]), C1: int(rect[3])}
			bounds := [4]uint64{}
			for j := range bounds {
				if bounds[j], err = d.u64(); err != nil {
					return nil, err
				}
			}
			r.RowLo, r.RowHi = join.Key(bounds[0]), join.Key(bounds[1])
			r.ColLo, r.ColHi = join.Key(bounds[2]), join.Key(bounds[3])
			if r.RowLo >= r.RowHi || r.ColLo >= r.ColHi {
				return nil, fmt.Errorf("planio: region %d has empty key range", i)
			}
			if r.Input, err = d.f64(); err != nil {
				return nil, err
			}
			if r.Output, err = d.f64(); err != nil {
				return nil, err
			}
			if r.Weight, err = d.f64(); err != nil {
				return nil, err
			}
		}
		return partition.NewRegionScheme(name, regions), nil
	}
	return nil, fmt.Errorf("planio: unknown scheme tag %d", tag)
}

func decodeAssignment(d *decoder) (*partition.Assignment, error) {
	nregions, err := d.count("assigned region")
	if err != nil {
		return nil, err
	}
	a := &partition.Assignment{MachineOf: make([]int, nregions)}
	for i := range a.MachineOf {
		m, err := d.u32()
		if err != nil {
			return nil, err
		}
		a.MachineOf[i] = int(m)
	}
	nmachines, err := d.count("machine")
	if err != nil {
		return nil, err
	}
	a.Load = make([]float64, nmachines)
	a.Capacity = make([]float64, nmachines)
	for i := 0; i < nmachines; i++ {
		if a.Load[i], err = d.f64(); err != nil {
			return nil, err
		}
		if a.Capacity[i], err = d.f64(); err != nil {
			return nil, err
		}
	}
	for i, m := range a.MachineOf {
		if m >= nmachines {
			return nil, fmt.Errorf("planio: region %d assigned to machine %d of %d", i, m, nmachines)
		}
	}
	return a, nil
}

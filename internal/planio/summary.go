package planio

import (
	"encoding/binary"
	"fmt"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// Summary codec: the canonical binary encoding of a distributed statistics
// summary (stats.Summary). Workers encode their local intermediate-key
// summaries with it and ship them to the coordinator in the session
// protocol's STATS frame; the coordinator decodes, merges (in worker order)
// and plans. Like the plan artifact codec, the encoding is CANONICAL —
// Encode(Decode(Encode(s))) == Encode(s) byte for byte, and the merge is
// commutative at the encoding level (MergeSummaries(a,b) and
// MergeSummaries(b,a) encode identically) — both enforced by
// FuzzStatsSummaryRoundTrip.
//
// Wire format (all integers little-endian):
//
//	magic "EWHS" | u16 version | u64 count | u32 cap |
//	u32 nkeys  | nkeys  × u64 key   (sorted ascending, duplicates allowed)
//	u32 nbounds| nbounds × u64 key  (strictly increasing; 0 iff count == 0)
const summaryVersion = 1

var summaryMagic = [4]byte{'E', 'W', 'H', 'S'}

// EncodeSummary serializes a statistics summary in canonical form. It fails
// for summaries that violate the canonical invariants (Summary.Validate) or
// exceed the codec's collection cap.
func EncodeSummary(s *stats.Summary) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Cap > maxCount {
		return nil, fmt.Errorf("planio: summary capacity %d exceeds codec limit %d", s.Cap, maxCount)
	}
	if len(s.Bounds) > maxCount {
		return nil, fmt.Errorf("planio: %d summary boundaries exceed codec limit %d", len(s.Bounds), maxCount)
	}
	buf := make([]byte, 0, 26+8*(len(s.Keys)+len(s.Bounds)))
	buf = append(buf, summaryMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, summaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Cap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Keys)))
	for _, k := range s.Keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Bounds)))
	for _, k := range s.Bounds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf, nil
}

// DecodeSummary reconstructs a summary from EncodeSummary's output,
// validating every canonical invariant so anything it accepts re-encodes
// byte-exactly.
func DecodeSummary(data []byte) (*stats.Summary, error) {
	d := &decoder{buf: data}
	magic, err := d.bytes(len(summaryMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != string(summaryMagic[:]) {
		return nil, fmt.Errorf("planio: bad summary magic %q", magic)
	}
	version, err := d.u16()
	if err != nil {
		return nil, err
	}
	if version != summaryVersion {
		return nil, fmt.Errorf("planio: summary version %d unsupported (want %d)", version, summaryVersion)
	}
	s := &stats.Summary{}
	count, err := d.u64()
	if err != nil {
		return nil, err
	}
	s.Count = int64(count)
	capacity, err := d.count("summary capacity")
	if err != nil {
		return nil, err
	}
	s.Cap = capacity
	nkeys, err := d.count("summary key")
	if err != nil {
		return nil, err
	}
	if nkeys > 0 {
		s.Keys = make([]join.Key, nkeys)
		for i := range s.Keys {
			k, err := d.u64()
			if err != nil {
				return nil, err
			}
			s.Keys[i] = join.Key(k)
		}
	}
	nbounds, err := d.count("summary boundary")
	if err != nil {
		return nil, err
	}
	if nbounds > 0 {
		s.Bounds = make([]join.Key, nbounds)
		for i := range s.Bounds {
			k, err := d.u64()
			if err != nil {
				return nil, err
			}
			s.Bounds[i] = join.Key(k)
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("planio: %d trailing bytes after summary", d.remaining())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

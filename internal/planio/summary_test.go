package planio

import (
	"bytes"
	"testing"

	"ewh/internal/join"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// randSummary builds a production-shaped summary from an RNG stream via the
// worker-side builder, so the codec is fuzzed with exactly what workers ship.
func randSummary(rng *stats.RNG) *stats.Summary {
	n := int(rng.Int64n(4000))
	domain := 1 + rng.Int64n(2000)
	keys := make([]join.Key, n)
	for i := range keys {
		keys[i] = rng.Int64n(domain) - domain/2
	}
	return sample.Summarize(keys, 1+rng.Intn(512), 1+rng.Intn(64), rng.Split())
}

func encodeSummaryOrFatal(t testing.TB, s *stats.Summary) []byte {
	t.Helper()
	enc, err := EncodeSummary(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return enc
}

// checkSummaryRoundTrip asserts the codec's canonicality for one summary:
// Encode∘Decode∘Encode is byte-exact and the decode reproduces every field.
func checkSummaryRoundTrip(t testing.TB, s *stats.Summary) []byte {
	t.Helper()
	enc := encodeSummaryOrFatal(t, s)
	dec, err := DecodeSummary(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Count != s.Count || dec.Cap != s.Cap ||
		len(dec.Keys) != len(s.Keys) || len(dec.Bounds) != len(s.Bounds) {
		t.Fatalf("summary fields changed in round trip: %+v vs %+v", s, dec)
	}
	reenc := encodeSummaryOrFatal(t, dec)
	if !bytes.Equal(enc, reenc) {
		t.Fatalf("summary not byte-exact after round trip: %d vs %d bytes", len(enc), len(reenc))
	}
	return enc
}

func TestSummaryRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		checkSummaryRoundTrip(t, randSummary(stats.NewRNG(seed)))
	}
}

func TestSummaryDecodeRejectsCorruption(t *testing.T) {
	enc := encodeSummaryOrFatal(t, randSummary(stats.NewRNG(1)))
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), enc[4:]...),
		"bad version":   append(append([]byte{}, enc[:4]...), append([]byte{9, 9}, enc[6:]...)...),
		"truncated":     enc[:len(enc)-5],
		"trailing junk": append(append([]byte{}, enc...), 7),
	}
	for name, data := range cases {
		if _, err := DecodeSummary(data); err == nil {
			t.Errorf("%s: decode accepted corrupt summary", name)
		}
	}
	if _, err := EncodeSummary(&stats.Summary{Count: 2, Cap: 4, Keys: []join.Key{3, 1},
		Bounds: []join.Key{0, 5}}); err == nil {
		t.Error("encode accepted a non-canonical (unsorted) summary")
	}
}

// FuzzStatsSummaryRoundTrip drives the two distributed-statistics codec
// invariants from fuzzer-chosen seeds: the MERGED summary of two
// production-shaped worker summaries must round-trip byte-exactly
// (Encode∘Decode∘Encode), and the merge must be canonical — merge(a,b) and
// merge(b,a) produce identical encodings.
func FuzzStatsSummaryRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, seed*3+1)
	}
	f.Fuzz(func(t *testing.T, seedA, seedB uint64) {
		a := randSummary(stats.NewRNG(seedA))
		b := randSummary(stats.NewRNG(seedB))
		ab, err := stats.MergeSummaries(a, b)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		ba, err := stats.MergeSummaries(b, a)
		if err != nil {
			t.Fatalf("reverse merge: %v", err)
		}
		encAB := checkSummaryRoundTrip(t, ab)
		encBA := checkSummaryRoundTrip(t, ba)
		if !bytes.Equal(encAB, encBA) {
			t.Fatalf("merge order changed the encoding: %d vs %d bytes", len(encAB), len(encBA))
		}
	})
}

// FuzzSummaryDecode throws arbitrary bytes at the summary decoder: it must
// never panic, and anything it accepts must re-encode byte-exactly.
func FuzzSummaryDecode(f *testing.F) {
	f.Add(encodeSummaryOrFatal(f, randSummary(stats.NewRNG(0))))
	f.Add(encodeSummaryOrFatal(f, &stats.Summary{Cap: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(data)
		if err != nil {
			return
		}
		reenc, err := EncodeSummary(s)
		if err != nil {
			t.Fatalf("re-encode of accepted summary failed: %v", err)
		}
		if !bytes.Equal(data, reenc) {
			t.Fatalf("accepted summary not canonical: %d bytes in, %d out", len(data), len(reenc))
		}
	})
}

// Package partition implements the three partitioning schemes the paper
// evaluates (§II, §VI): CI (content-insensitive, 1-Bucket [4]), CSI
// (content-sensitive on input statistics, M-Bucket [4]) and CSIO (the
// paper's equi-weight histogram scheme). A scheme decides, for each incoming
// tuple, the set of workers (regions) that must receive it.
package partition

import (
	"ewh/internal/join"
	"ewh/internal/stats"
)

// Scheme routes tuples to workers. RouteR1/RouteR2 append worker ids to buf
// and return it; buf lets hot shuffle loops avoid per-tuple allocations.
// rng is consulted only by randomized schemes (CI).
type Scheme interface {
	// Name identifies the scheme ("CI", "CSI", "CSIO").
	Name() string
	// Workers returns the number of workers the scheme routes to.
	Workers() int
	// RouteR1 appends the workers receiving an R1 tuple with key k.
	RouteR1(k join.Key, rng *stats.RNG, buf []int) []int
	// RouteR2 appends the workers receiving an R2 tuple with key k.
	RouteR2(k join.Key, rng *stats.RNG, buf []int) []int
}

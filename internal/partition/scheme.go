// Package partition implements the three partitioning schemes the paper
// evaluates (§II, §VI): CI (content-insensitive, 1-Bucket [4]), CSI
// (content-sensitive on input statistics, M-Bucket [4]) and CSIO (the
// paper's equi-weight histogram scheme). A scheme decides, for each incoming
// tuple, the set of workers (regions) that must receive it.
package partition

import (
	"ewh/internal/join"
	"ewh/internal/stats"
)

// Scheme routes tuples to workers. RouteR1/RouteR2 append worker ids to buf
// and return it; buf lets hot shuffle loops avoid per-tuple allocations.
// rng is consulted only by randomized schemes (CI).
type Scheme interface {
	// Name identifies the scheme ("CI", "CSI", "CSIO").
	Name() string
	// Workers returns the number of workers the scheme routes to.
	Workers() int
	// RouteR1 appends the workers receiving an R1 tuple with key k.
	RouteR1(k join.Key, rng *stats.RNG, buf []int) []int
	// RouteR2 appends the workers receiving an R2 tuple with key k.
	RouteR2(k join.Key, rng *stats.RNG, buf []int) []int
}

// RouteBatch accumulates the routing decisions for a whole shard of keys —
// the shuffle hot path's unit of work. Receiver ids are appended to Routes,
// concatenated in key order; per-worker totals are tallied into Counts in
// the same loop (so callers never rescan Routes). Per-key receiver counts go
// to Lens ONLY when Fanout == 0; a scheme whose every key routes to the same
// number of workers sets Fanout to that constant instead and leaves Lens
// untouched, which lets the shuffle skip an entire per-tuple array.
type RouteBatch struct {
	Routes []int32 // receiver worker ids, concatenated per key
	Lens   []int32 // per-key receiver counts; meaningful only when Fanout == 0
	Counts []int   // per-worker received-tuple totals; len = Workers()
	Fanout int     // > 0: every key routed to exactly Fanout workers
}

// Reset prepares the batch for routing into j workers, retaining backing
// storage across shards.
func (b *RouteBatch) Reset(j, sizeHint int) {
	if cap(b.Routes) < sizeHint {
		b.Routes = make([]int32, 0, sizeHint)
	} else {
		b.Routes = b.Routes[:0]
	}
	b.Lens = b.Lens[:0]
	if cap(b.Counts) < j {
		b.Counts = make([]int, j)
	} else {
		b.Counts = b.Counts[:j]
		for i := range b.Counts {
			b.Counts[i] = 0
		}
	}
	b.Fanout = 0
}

// BatchRouter is an optional Scheme extension for the shuffle hot path: it
// routes a whole shard of keys in one call, amortizing per-tuple interface
// dispatch and folding the per-worker tallies into the routing loop. A batch
// call must make exactly the same routing decisions (including RNG
// consumption) as the equivalent sequence of per-tuple RouteR1/RouteR2
// calls, so the two paths are interchangeable.
//
// All schemes in this package implement BatchRouter; the per-tuple methods
// remain the compatibility path for external Scheme implementations.
type BatchRouter interface {
	// RouteBatchR1 batch-routes R1 keys into b (appending to b.Routes/Lens,
	// tallying b.Counts, and setting b.Fanout when the fan-out is uniform).
	RouteBatchR1(keys []join.Key, rng *stats.RNG, b *RouteBatch)
	// RouteBatchR2 batch-routes R2 keys into b.
	RouteBatchR2(keys []join.Key, rng *stats.RNG, b *RouteBatch)
}

// RouteBatchR1 batch-routes R1 keys through s, using its BatchRouter fast
// path when implemented and falling back to per-tuple RouteR1 otherwise.
// b must have been Reset for s.Workers().
func RouteBatchR1(s Scheme, keys []join.Key, rng *stats.RNG, b *RouteBatch) {
	if br, ok := s.(BatchRouter); ok {
		br.RouteBatchR1(keys, rng, b)
		return
	}
	routeBatchFallback(s.RouteR1, keys, rng, b)
}

// RouteBatchR2 batch-routes R2 keys through s, using its BatchRouter fast
// path when implemented and falling back to per-tuple RouteR2 otherwise.
func RouteBatchR2(s Scheme, keys []join.Key, rng *stats.RNG, b *RouteBatch) {
	if br, ok := s.(BatchRouter); ok {
		br.RouteBatchR2(keys, rng, b)
		return
	}
	routeBatchFallback(s.RouteR2, keys, rng, b)
}

func routeBatchFallback(route func(join.Key, *stats.RNG, []int) []int,
	keys []join.Key, rng *stats.RNG, b *RouteBatch) {

	routes, lens, counts := b.Routes, b.Lens, b.Counts
	var buf []int
	for _, k := range keys {
		buf = route(k, rng, buf[:0])
		for _, w := range buf {
			routes = append(routes, int32(w))
			counts[w]++
		}
		lens = append(lens, int32(len(buf)))
	}
	b.Routes, b.Lens = routes, lens
}

package partition

import (
	"slices"

	"ewh/internal/join"
	"ewh/internal/stats"
	"ewh/internal/tiling"
)

// RegionScheme routes tuples by join key to the rectangular regions of a
// partitioning (shared by CSI and CSIO; the two differ only in how the
// regions were computed). An R1 tuple with key k goes to every region whose
// row key range contains k; since regions are disjoint rectangles aligned to
// the coarsened grid, the routing is a binary search to the grid band plus a
// precomputed band → regions list. Keys outside the sampled key range clamp
// into the edge bands, whose candidacy was widened to ±∞ at matrix build
// time, so no output is ever lost.
type RegionScheme struct {
	name    string
	regions []tiling.Region

	rowEdges []join.Key // distinct region row boundaries, sorted
	colEdges []join.Key
	rowMap   [][]int32 // per row slab: region indices
	colMap   [][]int32
}

// NewRegionScheme indexes the regions for routing. name is reported by
// Name() ("CSI" or "CSIO").
func NewRegionScheme(name string, regions []tiling.Region) *RegionScheme {
	s := &RegionScheme{name: name, regions: regions}
	s.rowEdges, s.rowMap = buildSlabs(regions, func(r tiling.Region) (join.Key, join.Key) { return r.RowLo, r.RowHi })
	s.colEdges, s.colMap = buildSlabs(regions, func(r tiling.Region) (join.Key, join.Key) { return r.ColLo, r.ColHi })
	return s
}

// buildSlabs decomposes the key axis into slabs between consecutive distinct
// region boundaries and records which regions cover each slab.
func buildSlabs(regions []tiling.Region, bounds func(tiling.Region) (join.Key, join.Key)) ([]join.Key, [][]int32) {
	edgeSet := make(map[join.Key]struct{})
	for _, r := range regions {
		lo, hi := bounds(r)
		edgeSet[lo] = struct{}{}
		edgeSet[hi] = struct{}{}
	}
	edges := make([]join.Key, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	slices.Sort(edges)
	nSlabs := len(edges) + 1 // below first edge, between edges, at/above last
	slabs := make([][]int32, nSlabs)
	for idx, r := range regions {
		lo, hi := bounds(r)
		a, _ := slices.BinarySearch(edges, lo)
		b, _ := slices.BinarySearch(edges, hi)
		// Region covers slabs (a, b]: slab s covers keys [edges[s-1], edges[s]).
		for sl := a + 1; sl <= b; sl++ {
			slabs[sl] = append(slabs[sl], int32(idx))
		}
	}
	// Clamp: keys below the first edge behave as the lowest covered slab and
	// keys at/above the last edge as the highest covered slab, mirroring the
	// edge-bucket clamping of the histograms.
	if nSlabs >= 3 {
		slabs[0] = slabs[1]
		slabs[nSlabs-1] = slabs[nSlabs-2]
	}
	return edges, slabs
}

// slabOf locates the slab of key k: slab s covers [edges[s-1], edges[s]).
// Edges are distinct, so the first index with edges[i] > k is the insertion
// point of k advanced past an exact hit.
func slabOf(edges []join.Key, k join.Key) int {
	i, found := slices.BinarySearch(edges, k)
	if found {
		i++
	}
	return i
}

// Name implements Scheme.
func (s *RegionScheme) Name() string { return s.name }

// Workers implements Scheme.
func (s *RegionScheme) Workers() int { return len(s.regions) }

// Regions returns the underlying regions (read-only).
func (s *RegionScheme) Regions() []tiling.Region { return s.regions }

// RouteR1 implements Scheme.
func (s *RegionScheme) RouteR1(k join.Key, _ *stats.RNG, buf []int) []int {
	for _, id := range s.rowMap[slabOf(s.rowEdges, k)] {
		buf = append(buf, int(id))
	}
	return buf
}

// RouteR2 implements Scheme.
func (s *RegionScheme) RouteR2(k join.Key, _ *stats.RNG, buf []int) []int {
	for _, id := range s.colMap[slabOf(s.colEdges, k)] {
		buf = append(buf, int(id))
	}
	return buf
}

// RouteBatchR1 implements BatchRouter: the slab lists are already []int32, so
// each key's receivers are appended with a single bulk copy.
func (s *RegionScheme) RouteBatchR1(keys []join.Key, _ *stats.RNG, b *RouteBatch) {
	routeBatchSlabs(s.rowEdges, s.rowMap, keys, b)
}

// RouteBatchR2 implements BatchRouter.
func (s *RegionScheme) RouteBatchR2(keys []join.Key, _ *stats.RNG, b *RouteBatch) {
	routeBatchSlabs(s.colEdges, s.colMap, keys, b)
}

func routeBatchSlabs(edges []join.Key, slabMap [][]int32, keys []join.Key, b *RouteBatch) {
	routes, lens, counts := b.Routes, b.Lens, b.Counts
	for _, k := range keys {
		ids := slabMap[slabOf(edges, k)]
		routes = append(routes, ids...)
		lens = append(lens, int32(len(ids)))
		for _, id := range ids {
			counts[id]++
		}
	}
	b.Routes, b.Lens = routes, lens
}

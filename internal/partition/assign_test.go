package partition

import (
	"testing"

	"ewh/internal/tiling"
)

func weights(ws ...float64) []tiling.Region {
	out := make([]tiling.Region, len(ws))
	for i, w := range ws {
		out[i].Weight = w
	}
	return out
}

func TestAssignRegionsUniform(t *testing.T) {
	regions := weights(5, 5, 5, 5, 5, 5, 5, 5)
	a, err := AssignRegions(regions, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for m, l := range a.Load {
		if l != 10 {
			t.Errorf("machine %d load %v, want 10", m, l)
		}
	}
	if a.Makespan() != 10 {
		t.Errorf("makespan %v, want 10", a.Makespan())
	}
}

func TestAssignRegionsHeterogeneous(t *testing.T) {
	// A machine twice as fast should receive about twice the weight.
	regions := weights(3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3)
	a, err := AssignRegions(regions, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := a.Load[0], a.Load[1]
	if fast < slow {
		t.Fatalf("fast machine load %v < slow machine load %v", fast, slow)
	}
	ratio := fast / slow
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("load ratio %v, want ≈2", ratio)
	}
}

func TestAssignRegionsErrors(t *testing.T) {
	if _, err := AssignRegions(weights(1), nil); err == nil {
		t.Error("no machines accepted")
	}
	if _, err := AssignRegions(weights(1), []float64{1, 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := AssignRegions(weights(1), []float64{-1}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestAssignLPTBeatsNaive(t *testing.T) {
	// LPT should spread one huge region and many small ones well.
	regions := weights(100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10)
	a, err := AssignRegions(regions, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal makespan = 100 (huge region alone); LPT must achieve it.
	if a.Makespan() > 110 {
		t.Fatalf("makespan %v, want ≈100", a.Makespan())
	}
}

func TestMachineWork(t *testing.T) {
	regions := weights(4, 6, 2)
	a, err := AssignRegions(regions, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := a.MachineWork([]float64{4, 6, 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	if sum != 12 {
		t.Fatalf("total work %v, want 12", sum)
	}
	if _, err := a.MachineWork([]float64{1}); err == nil {
		t.Error("mismatched work vector accepted")
	}
}

package partition

import (
	"cmp"
	"fmt"
	"slices"

	"ewh/internal/tiling"
)

// Assignment maps the regions of an equi-weight histogram onto physical
// machines of heterogeneous capacity (§A5: "we assign work to machines
// proportionally to their capacity. To do so, we set the number of regions
// in the histogram algorithm higher than the number of machines").
type Assignment struct {
	// MachineOf[r] is the machine hosting region r.
	MachineOf []int
	// Load[m] is machine m's assigned weight.
	Load []float64
	// Capacity is the (normalized) capacity vector the assignment used.
	Capacity []float64
}

// AssignRegions distributes regions over machines with the given relative
// capacities (any positive scale), greedily placing heaviest regions first
// onto the machine with the lowest load/capacity ratio — LPT adapted to
// non-uniform speeds, a 2-approximation of the optimal makespan. Plan with
// J = a few × len(capacities) regions so the packer has granularity to
// exploit.
func AssignRegions(regions []tiling.Region, capacities []float64) (*Assignment, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("partition: no machines")
	}
	for i, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("partition: machine %d capacity %v <= 0", i, c)
		}
	}
	a := &Assignment{
		MachineOf: make([]int, len(regions)),
		Load:      make([]float64, len(capacities)),
		Capacity:  capacities,
	}
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(x, y int) int {
		return cmp.Compare(regions[y].Weight, regions[x].Weight)
	})
	for _, ri := range order {
		best, bestRatio := 0, (a.Load[0]+regions[ri].Weight)/capacities[0]
		for m := 1; m < len(capacities); m++ {
			if r := (a.Load[m] + regions[ri].Weight) / capacities[m]; r < bestRatio {
				best, bestRatio = m, r
			}
		}
		a.MachineOf[ri] = best
		a.Load[best] += regions[ri].Weight
	}
	return a, nil
}

// Makespan returns the maximum load/capacity ratio — the completion time of
// the slowest machine in capacity-normalized units.
func (a *Assignment) Makespan() float64 {
	max := 0.0
	for m, l := range a.Load {
		if r := l / a.Capacity[m]; r > max {
			max = r
		}
	}
	return max
}

// MachineWork aggregates measured per-region work onto machines: regions
// remain the execution (and exactly-once join) unit; a machine hosting
// several regions processes them back to back. regionWork must be indexed
// like the regions passed to AssignRegions.
func (a *Assignment) MachineWork(regionWork []float64) ([]float64, error) {
	if len(regionWork) != len(a.MachineOf) {
		return nil, fmt.Errorf("partition: %d work entries for %d assigned regions",
			len(regionWork), len(a.MachineOf))
	}
	load := make([]float64, len(a.Capacity))
	for r, w := range regionWork {
		load[a.MachineOf[r]] += w
	}
	return load, nil
}

package partition

import (
	"testing"

	"ewh/internal/join"
	"ewh/internal/stats"
)

func TestNewHashValidation(t *testing.T) {
	if _, err := NewHash(0, nil); err == nil {
		t.Error("j=0 accepted")
	}
	if _, err := NewBroadcast(0); err == nil {
		t.Error("broadcast j=0 accepted")
	}
}

func TestHashPairMeetsExactlyOnce(t *testing.T) {
	h, err := NewHash(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for k := join.Key(-100); k <= 100; k++ {
		w1 := h.RouteR1(k, rng, nil)
		w2 := h.RouteR2(k, rng, nil)
		if len(w1) != 1 || len(w2) != 1 || w1[0] != w2[0] {
			t.Fatalf("key %d: R1 targets %v, R2 targets %v", k, w1, w2)
		}
	}
}

func TestHashHeavyKeyHandling(t *testing.T) {
	heavy := []join.Key{7, 42}
	h, err := NewHash(4, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "HashPRPD" {
		t.Fatalf("name %s", h.Name())
	}
	rng := stats.NewRNG(2)
	// Heavy R2 tuples broadcast everywhere.
	w2 := h.RouteR2(7, rng, nil)
	if len(w2) != 4 {
		t.Fatalf("heavy R2 targets %v, want all 4", w2)
	}
	// Heavy R1 tuples scatter: over many routings every worker appears.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		w1 := h.RouteR1(7, rng, nil)
		if len(w1) != 1 {
			t.Fatal("heavy R1 tuple replicated")
		}
		seen[w1[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("heavy R1 scatter hit %d/4 workers", len(seen))
	}
	// A heavy pair still meets exactly once: R1 copy at one worker, R2 copy
	// at every worker.
	w1 := h.RouteR1(42, rng, nil)
	w2 = h.RouteR2(42, rng, nil)
	common := 0
	for _, a := range w1 {
		for _, b := range w2 {
			if a == b {
				common++
			}
		}
	}
	if common != 1 {
		t.Fatalf("heavy pair meets %d times", common)
	}
}

func TestDetectHeavyKeys(t *testing.T) {
	keys := make([]join.Key, 0, 1000)
	for i := 0; i < 900; i++ {
		keys = append(keys, join.Key(i)) // 900 distinct light keys
	}
	for i := 0; i < 100; i++ {
		keys = append(keys, 5000) // one key with 10% of the mass
	}
	heavy := DetectHeavyKeys(keys, 0.05)
	if len(heavy) != 1 || heavy[0] != 5000 {
		t.Fatalf("heavy keys %v, want [5000]", heavy)
	}
	if DetectHeavyKeys(nil, 0.1) != nil {
		t.Error("nil input produced keys")
	}
	if DetectHeavyKeys(keys, 0) != nil {
		t.Error("zero fraction produced keys")
	}
}

func TestBroadcastRouting(t *testing.T) {
	b, err := NewBroadcast(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	if got := b.RouteR2(9, rng, nil); len(got) != 4 {
		t.Fatalf("R2 broadcast to %d workers", len(got))
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		w := b.RouteR1(join.Key(i), rng, nil)
		if len(w) != 1 {
			t.Fatal("R1 tuple replicated")
		}
		seen[w[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("R1 scatter hit %d/4 workers", len(seen))
	}
	if b.Name() != "Broadcast" || b.Workers() != 4 {
		t.Error("metadata wrong")
	}
}

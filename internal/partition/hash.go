package partition

import (
	"fmt"
	"slices"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// Hash is the classic equi-join partitioner the paper's related work starts
// from (§V.1): both relations hash-partition by join key, so matching tuples
// land on the same worker with no replication. It is correct ONLY for pure
// equality conditions — hashing scatters neighbouring keys, which is exactly
// why the paper develops range-based schemes for monotonic joins.
//
// HeavyKeys enables PRPD-style skew handling [1]: tuples of a heavy R1 key
// are scattered round-robin over all workers (eliminating the hash hot
// spot), while R2 tuples with that key broadcast to all workers so every
// scattered copy finds its partners; each pair still meets exactly once
// because only the R1 side is scattered.
type Hash struct {
	workers int
	heavy   []join.Key // sorted
}

// NewHash builds a hash scheme for j workers with the given heavy-hitter
// keys (may be nil).
func NewHash(j int, heavyKeys []join.Key) (*Hash, error) {
	if j < 1 {
		return nil, fmt.Errorf("partition: hash scheme needs j >= 1, got %d", j)
	}
	h := &Hash{workers: j, heavy: append([]join.Key(nil), heavyKeys...)}
	slices.Sort(h.heavy)
	// Duplicates are routing no-ops; dropping them keeps the sorted set the
	// canonical form the plan codec round-trips byte-exactly.
	h.heavy = slices.Compact(h.heavy)
	return h, nil
}

// DetectHeavyKeys returns the keys whose frequency in keys exceeds
// fraction·len(keys) — the PRPD heavy-hitter threshold. A sample works fine
// as input.
func DetectHeavyKeys(keys []join.Key, fraction float64) []join.Key {
	if fraction <= 0 || len(keys) == 0 {
		return nil
	}
	counts := make(map[join.Key]int, 1024)
	for _, k := range keys {
		counts[k]++
	}
	threshold := int(fraction * float64(len(keys)))
	if threshold < 1 {
		threshold = 1
	}
	var heavy []join.Key
	for k, c := range counts {
		if c > threshold {
			heavy = append(heavy, k)
		}
	}
	slices.Sort(heavy)
	return heavy
}

// Name implements Scheme.
func (h *Hash) Name() string {
	if len(h.heavy) > 0 {
		return "HashPRPD"
	}
	return "Hash"
}

// Workers implements Scheme.
func (h *Hash) Workers() int { return h.workers }

// HeavyKeys returns the scheme's heavy-hitter keys, sorted (read-only) — the
// plan codec persists them so a decoded Hash plan routes identically.
func (h *Hash) HeavyKeys() []join.Key { return h.heavy }

func (h *Hash) isHeavy(k join.Key) bool {
	_, found := slices.BinarySearch(h.heavy, k)
	return found
}

// hashKey is splitmix64-style mixing of the join key.
func hashKey(k join.Key) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RouteR1 implements Scheme: heavy keys scatter uniformly at random (the
// mapper-local RNG keeps routing race-free), others hash.
func (h *Hash) RouteR1(k join.Key, rng *stats.RNG, buf []int) []int {
	if h.isHeavy(k) {
		return append(buf, rng.Intn(h.workers))
	}
	return append(buf, int(hashKey(k)%uint64(h.workers)))
}

// RouteR2 implements Scheme: heavy keys broadcast, others hash.
func (h *Hash) RouteR2(k join.Key, _ *stats.RNG, buf []int) []int {
	if h.isHeavy(k) {
		for w := 0; w < h.workers; w++ {
			buf = append(buf, w)
		}
		return buf
	}
	return append(buf, int(hashKey(k)%uint64(h.workers)))
}

// RouteBatchR1 implements BatchRouter: fan-out is always exactly one worker
// (heavy keys scatter, others hash), so Lens is skipped and the common
// no-heavy-hitter case is a tight hash loop.
func (h *Hash) RouteBatchR1(keys []join.Key, rng *stats.RNG, b *RouteBatch) {
	j := uint64(h.workers)
	routes, counts := b.Routes, b.Counts // keep slice headers in registers
	if len(h.heavy) == 0 {
		for _, k := range keys {
			w := int32(hashKey(k) % j)
			routes = append(routes, w)
			counts[w]++
		}
	} else {
		for _, k := range keys {
			var w int32
			if h.isHeavy(k) {
				w = int32(rng.Intn(h.workers))
			} else {
				w = int32(hashKey(k) % j)
			}
			routes = append(routes, w)
			counts[w]++
		}
	}
	b.Routes = routes
	b.Fanout = 1
}

// RouteBatchR2 implements BatchRouter: heavy keys broadcast, others hash, so
// the fan-out is uniform (and Lens skippable) only without heavy hitters.
func (h *Hash) RouteBatchR2(keys []join.Key, _ *stats.RNG, b *RouteBatch) {
	j := uint64(h.workers)
	routes, counts := b.Routes, b.Counts
	if len(h.heavy) == 0 {
		for _, k := range keys {
			w := int32(hashKey(k) % j)
			routes = append(routes, w)
			counts[w]++
		}
		b.Routes = routes
		b.Fanout = 1
		return
	}
	lens := b.Lens
	for _, k := range keys {
		if h.isHeavy(k) {
			for w := 0; w < h.workers; w++ {
				routes = append(routes, int32(w))
				counts[w]++
			}
			lens = append(lens, int32(h.workers))
		} else {
			w := int32(hashKey(k) % j)
			routes = append(routes, w)
			counts[w]++
			lens = append(lens, 1)
		}
	}
	b.Routes, b.Lens = routes, lens
}

// Broadcast replicates R2 (conventionally the smaller relation) to every
// worker and scatters R1 uniformly — the broadcast join of §V, "efficient
// only if the replicated relation is very small". It is correct for any
// join condition.
type Broadcast struct {
	workers int
}

// NewBroadcast builds a broadcast scheme for j workers.
func NewBroadcast(j int) (*Broadcast, error) {
	if j < 1 {
		return nil, fmt.Errorf("partition: broadcast scheme needs j >= 1, got %d", j)
	}
	return &Broadcast{workers: j}, nil
}

// Name implements Scheme.
func (b *Broadcast) Name() string { return "Broadcast" }

// Workers implements Scheme.
func (b *Broadcast) Workers() int { return b.workers }

// RouteR1 implements Scheme: uniform scatter.
func (b *Broadcast) RouteR1(_ join.Key, rng *stats.RNG, buf []int) []int {
	return append(buf, rng.Intn(b.workers))
}

// RouteR2 implements Scheme: replicate everywhere.
func (b *Broadcast) RouteR2(_ join.Key, _ *stats.RNG, buf []int) []int {
	for w := 0; w < b.workers; w++ {
		buf = append(buf, w)
	}
	return buf
}

// RouteBatchR1 implements BatchRouter: one RNG draw per key, like RouteR1.
func (b *Broadcast) RouteBatchR1(keys []join.Key, rng *stats.RNG, rb *RouteBatch) {
	routes, counts := rb.Routes, rb.Counts
	for range keys {
		w := int32(rng.Intn(b.workers))
		routes = append(routes, w)
		counts[w]++
	}
	rb.Routes = routes
	rb.Fanout = 1
}

// RouteBatchR2 implements BatchRouter: every key replicates to all workers —
// constant fan-out, Lens skipped.
func (b *Broadcast) RouteBatchR2(keys []join.Key, _ *stats.RNG, rb *RouteBatch) {
	routes := rb.Routes
	for range keys {
		for w := 0; w < b.workers; w++ {
			routes = append(routes, int32(w))
		}
	}
	rb.Routes = routes
	for w := 0; w < b.workers; w++ {
		rb.Counts[w] += len(keys)
	}
	rb.Fanout = b.workers
}

package partition

import (
	"fmt"
	"sort"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// Hash is the classic equi-join partitioner the paper's related work starts
// from (§V.1): both relations hash-partition by join key, so matching tuples
// land on the same worker with no replication. It is correct ONLY for pure
// equality conditions — hashing scatters neighbouring keys, which is exactly
// why the paper develops range-based schemes for monotonic joins.
//
// HeavyKeys enables PRPD-style skew handling [1]: tuples of a heavy R1 key
// are scattered round-robin over all workers (eliminating the hash hot
// spot), while R2 tuples with that key broadcast to all workers so every
// scattered copy finds its partners; each pair still meets exactly once
// because only the R1 side is scattered.
type Hash struct {
	workers int
	heavy   []join.Key // sorted
}

// NewHash builds a hash scheme for j workers with the given heavy-hitter
// keys (may be nil).
func NewHash(j int, heavyKeys []join.Key) (*Hash, error) {
	if j < 1 {
		return nil, fmt.Errorf("partition: hash scheme needs j >= 1, got %d", j)
	}
	h := &Hash{workers: j, heavy: append([]join.Key(nil), heavyKeys...)}
	sort.Slice(h.heavy, func(a, b int) bool { return h.heavy[a] < h.heavy[b] })
	return h, nil
}

// DetectHeavyKeys returns the keys whose frequency in keys exceeds
// fraction·len(keys) — the PRPD heavy-hitter threshold. A sample works fine
// as input.
func DetectHeavyKeys(keys []join.Key, fraction float64) []join.Key {
	if fraction <= 0 || len(keys) == 0 {
		return nil
	}
	counts := make(map[join.Key]int, 1024)
	for _, k := range keys {
		counts[k]++
	}
	threshold := int(fraction * float64(len(keys)))
	if threshold < 1 {
		threshold = 1
	}
	var heavy []join.Key
	for k, c := range counts {
		if c > threshold {
			heavy = append(heavy, k)
		}
	}
	sort.Slice(heavy, func(a, b int) bool { return heavy[a] < heavy[b] })
	return heavy
}

// Name implements Scheme.
func (h *Hash) Name() string {
	if len(h.heavy) > 0 {
		return "HashPRPD"
	}
	return "Hash"
}

// Workers implements Scheme.
func (h *Hash) Workers() int { return h.workers }

func (h *Hash) isHeavy(k join.Key) bool {
	i := sort.Search(len(h.heavy), func(i int) bool { return h.heavy[i] >= k })
	return i < len(h.heavy) && h.heavy[i] == k
}

// hashKey is splitmix64-style mixing of the join key.
func hashKey(k join.Key) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RouteR1 implements Scheme: heavy keys scatter uniformly at random (the
// mapper-local RNG keeps routing race-free), others hash.
func (h *Hash) RouteR1(k join.Key, rng *stats.RNG, buf []int) []int {
	if h.isHeavy(k) {
		return append(buf, rng.Intn(h.workers))
	}
	return append(buf, int(hashKey(k)%uint64(h.workers)))
}

// RouteR2 implements Scheme: heavy keys broadcast, others hash.
func (h *Hash) RouteR2(k join.Key, _ *stats.RNG, buf []int) []int {
	if h.isHeavy(k) {
		for w := 0; w < h.workers; w++ {
			buf = append(buf, w)
		}
		return buf
	}
	return append(buf, int(hashKey(k)%uint64(h.workers)))
}

// Broadcast replicates R2 (conventionally the smaller relation) to every
// worker and scatters R1 uniformly — the broadcast join of §V, "efficient
// only if the replicated relation is very small". It is correct for any
// join condition.
type Broadcast struct {
	workers int
}

// NewBroadcast builds a broadcast scheme for j workers.
func NewBroadcast(j int) (*Broadcast, error) {
	if j < 1 {
		return nil, fmt.Errorf("partition: broadcast scheme needs j >= 1, got %d", j)
	}
	return &Broadcast{workers: j}, nil
}

// Name implements Scheme.
func (b *Broadcast) Name() string { return "Broadcast" }

// Workers implements Scheme.
func (b *Broadcast) Workers() int { return b.workers }

// RouteR1 implements Scheme: uniform scatter.
func (b *Broadcast) RouteR1(_ join.Key, rng *stats.RNG, buf []int) []int {
	return append(buf, rng.Intn(b.workers))
}

// RouteR2 implements Scheme: replicate everywhere.
func (b *Broadcast) RouteR2(_ join.Key, _ *stats.RNG, buf []int) []int {
	for w := 0; w < b.workers; w++ {
		buf = append(buf, w)
	}
	return buf
}

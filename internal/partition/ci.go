package partition

import (
	"math"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// CI is the content-insensitive scheme (1-Bucket [4], §II-A): the join
// matrix is covered by a rows×cols grid of equal-area regions. An incoming
// R1 tuple picks a random grid row and is replicated to every region in it
// (cols copies); an R2 tuple picks a random grid column (rows copies). Every
// tuple pair meets in exactly one region, so the join is complete and
// duplicate-free regardless of the join condition — at the price of a
// replication factor of rows+cols, the scheme's defining weakness for
// low-selectivity joins.
type CI struct {
	rows, cols int
}

// NewCI builds the scheme for j workers, choosing the divisor factorization
// rows×cols = j that minimizes the replication factor rows+cols — the most
// square grid using every machine (the paper's J=32 runs use 4×8).
func NewCI(j int) *CI {
	if j < 1 {
		j = 1
	}
	bestR := 1
	for r := 1; r*r <= j; r++ {
		if j%r == 0 {
			bestR = r
		}
	}
	return &CI{rows: bestR, cols: j / bestR}
}

// Grid returns the region grid dimensions.
func (s *CI) Grid() (rows, cols int) { return s.rows, s.cols }

// ReplicationFactor returns rows+cols: the copies created per tuple pair
// (cols per R1 tuple plus rows per R2 tuple, averaged over both relations
// of equal size this is (rows+cols)/2 each).
func (s *CI) ReplicationFactor() int { return s.rows + s.cols }

// Name implements Scheme.
func (s *CI) Name() string { return "CI" }

// Workers implements Scheme.
func (s *CI) Workers() int { return s.rows * s.cols }

// RouteR1 implements Scheme: a random row, replicated across all columns.
func (s *CI) RouteR1(_ join.Key, rng *stats.RNG, buf []int) []int {
	r := rng.Intn(s.rows)
	for c := 0; c < s.cols; c++ {
		buf = append(buf, r*s.cols+c)
	}
	return buf
}

// RouteR2 implements Scheme: a random column, replicated across all rows.
func (s *CI) RouteR2(_ join.Key, rng *stats.RNG, buf []int) []int {
	c := rng.Intn(s.cols)
	for r := 0; r < s.rows; r++ {
		buf = append(buf, r*s.cols+c)
	}
	return buf
}

// RouteBatchR1 implements BatchRouter: one random row per key, replicated
// across all columns, consuming exactly one RNG draw per key like RouteR1.
// The fan-out is the constant cols, so Lens is skipped entirely; per-row
// tallies are kept in a small local array and folded into Counts once.
func (s *CI) RouteBatchR1(keys []join.Key, rng *stats.RNG, b *RouteBatch) {
	cols := int32(s.cols)
	rowHits := make([]int, s.rows)
	routes := b.Routes
	for range keys {
		r := rng.Intn(s.rows)
		rowHits[r]++
		base := int32(r) * cols
		for c := int32(0); c < cols; c++ {
			routes = append(routes, base+c)
		}
	}
	b.Routes = routes
	for r, n := range rowHits {
		for c := 0; c < s.cols; c++ {
			b.Counts[r*s.cols+c] += n
		}
	}
	b.Fanout = s.cols
}

// RouteBatchR2 implements BatchRouter: one random column per key, replicated
// across all rows; constant fan-out rows.
func (s *CI) RouteBatchR2(keys []join.Key, rng *stats.RNG, b *RouteBatch) {
	cols := int32(s.cols)
	rows := int32(s.rows)
	colHits := make([]int, s.cols)
	routes := b.Routes
	for range keys {
		c := int32(rng.Intn(s.cols))
		colHits[c]++
		for r := int32(0); r < rows; r++ {
			routes = append(routes, r*cols+c)
		}
	}
	b.Routes = routes
	for c, n := range colHits {
		for r := 0; r < s.rows; r++ {
			b.Counts[r*s.cols+c] += n
		}
	}
	b.Fanout = s.rows
}

// IdealGrid reports the most balanced achievable grid for j workers —
// exposed for tests and capacity planning.
func IdealGrid(j int) (rows, cols int) {
	r := int(math.Sqrt(float64(j)))
	for ; r > 1; r-- {
		if j%r == 0 {
			break
		}
	}
	return r, j / r
}

package partition

import (
	"testing"

	"ewh/internal/join"
	"ewh/internal/matrix"
	"ewh/internal/stats"
	"ewh/internal/tiling"
)

func TestNewCIGrid(t *testing.T) {
	cases := []struct {
		j, rows, cols int
	}{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {32, 4, 8}, {64, 8, 8},
		{6, 2, 3}, {7, 1, 7}, // primes degrade to a single grid row
	}
	for _, c := range cases {
		ci := NewCI(c.j)
		r, co := ci.Grid()
		if r != c.rows || co != c.cols {
			t.Errorf("NewCI(%d) grid %dx%d, want %dx%d", c.j, r, co, c.rows, c.cols)
		}
		if ci.Workers() > c.j {
			t.Errorf("NewCI(%d) uses %d workers", c.j, ci.Workers())
		}
	}
}

func TestCIRouting(t *testing.T) {
	ci := NewCI(8) // 2x4
	rng := stats.NewRNG(1)
	rows, cols := ci.Grid()
	for i := 0; i < 200; i++ {
		w1 := ci.RouteR1(join.Key(i), rng, nil)
		if len(w1) != cols {
			t.Fatalf("R1 tuple replicated to %d workers, want %d", len(w1), cols)
		}
		// All targets share one grid row.
		row := w1[0] / cols
		for _, w := range w1 {
			if w/cols != row {
				t.Fatal("R1 targets span multiple grid rows")
			}
		}
		w2 := ci.RouteR2(join.Key(i), rng, nil)
		if len(w2) != rows {
			t.Fatalf("R2 tuple replicated to %d workers, want %d", len(w2), rows)
		}
		col := w2[0] % cols
		for _, w := range w2 {
			if w%cols != col {
				t.Fatal("R2 targets span multiple grid columns")
			}
		}
	}
}

func TestCIEveryPairMeetsOnce(t *testing.T) {
	// For any routing outcome, |targets(t1) ∩ targets(t2)| == 1.
	ci := NewCI(12)
	rng := stats.NewRNG(2)
	for i := 0; i < 100; i++ {
		w1 := ci.RouteR1(0, rng, nil)
		w2 := ci.RouteR2(0, rng, nil)
		common := 0
		for _, a := range w1 {
			for _, b := range w2 {
				if a == b {
					common++
				}
			}
		}
		if common != 1 {
			t.Fatalf("pair meets at %d workers, want exactly 1", common)
		}
	}
}

func TestCIRandomRowsCoverGrid(t *testing.T) {
	ci := NewCI(16)
	rng := stats.NewRNG(3)
	rows, cols := ci.Grid()
	seen := make([]bool, rows)
	for i := 0; i < 500; i++ {
		w := ci.RouteR1(join.Key(i), rng, nil)
		seen[w[0]/cols] = true
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("grid row %d never chosen in 500 draws", r)
		}
	}
}

func TestIdealGrid(t *testing.T) {
	r, c := IdealGrid(32)
	if r*c != 32 || r > c {
		t.Fatalf("IdealGrid(32) = %dx%d", r, c)
	}
}

// makeRegions builds a small hand-crafted partitioning:
//
//	R1 keys [0,100) × R2 keys [0,50)   -> region 0
//	R1 keys [0,100) × R2 keys [50,100) -> region 1
//	R1 keys [100,200) × R2 keys [0,100)-> region 2
func makeRegions() []tiling.Region {
	return []tiling.Region{
		{Rect: matrix.Rect{}, RowLo: 0, RowHi: 100, ColLo: 0, ColHi: 50},
		{Rect: matrix.Rect{}, RowLo: 0, RowHi: 100, ColLo: 50, ColHi: 100},
		{Rect: matrix.Rect{}, RowLo: 100, RowHi: 200, ColLo: 0, ColHi: 100},
	}
}

func TestRegionSchemeRouting(t *testing.T) {
	s := NewRegionScheme("CSIO", makeRegions())
	if s.Name() != "CSIO" || s.Workers() != 3 {
		t.Fatalf("name=%s workers=%d", s.Name(), s.Workers())
	}
	cases := []struct {
		k  join.Key
		r1 []int // expected R1 targets (sorted)
		r2 []int
	}{
		{25, []int{0, 1}, []int{0, 2}},
		{75, []int{0, 1}, []int{1, 2}},
		{150, []int{2}, []int{0, 2}}, // col 150 out of range clamps to top slab {1,2}? no: [50,100) is top
	}
	_ = cases
	check := func(got []int, want ...int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("targets %v, want %v", got, want)
		}
		m := map[int]bool{}
		for _, g := range got {
			m[g] = true
		}
		for _, w := range want {
			if !m[w] {
				t.Fatalf("targets %v, want %v", got, want)
			}
		}
	}
	check(s.RouteR1(25, nil, nil), 0, 1)
	check(s.RouteR1(150, nil, nil), 2)
	check(s.RouteR2(25, nil, nil), 0, 2)
	check(s.RouteR2(75, nil, nil), 1, 2)
	// Out-of-range keys clamp to edge slabs.
	check(s.RouteR1(-10, nil, nil), 0, 1)
	check(s.RouteR1(999, nil, nil), 2)
	check(s.RouteR2(-10, nil, nil), 0, 2)
	check(s.RouteR2(999, nil, nil), 1, 2)
}

func TestRegionSchemePairMeetsExactlyOnce(t *testing.T) {
	s := NewRegionScheme("CSIO", makeRegions())
	for k1 := join.Key(0); k1 < 200; k1 += 7 {
		for k2 := join.Key(0); k2 < 100; k2 += 7 {
			w1 := s.RouteR1(k1, nil, nil)
			w2 := s.RouteR2(k2, nil, nil)
			common := 0
			for _, a := range w1 {
				for _, b := range w2 {
					if a == b {
						common++
					}
				}
			}
			if common != 1 {
				t.Fatalf("pair (%d,%d) meets at %d workers", k1, k2, common)
			}
		}
	}
}

func TestRegionSchemeEmpty(t *testing.T) {
	s := NewRegionScheme("CSIO", nil)
	if s.Workers() != 0 {
		t.Fatal("empty scheme has workers")
	}
	if got := s.RouteR1(5, nil, nil); len(got) != 0 {
		t.Fatalf("empty scheme routed to %v", got)
	}
}

func BenchmarkRegionSchemeRouting(b *testing.B) {
	// Routing throughput matters: the shuffle calls this once per tuple.
	regions := make([]tiling.Region, 64)
	for i := range regions {
		regions[i] = tiling.Region{
			RowLo: join.Key(i * 100), RowHi: join.Key((i + 1) * 100),
			ColLo: join.Key(i * 100), ColHi: join.Key((i + 1) * 100),
		}
	}
	s := NewRegionScheme("CSIO", regions)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.RouteR1(join.Key(i%6400), nil, buf[:0])
	}
}

func BenchmarkCIRouting(b *testing.B) {
	s := NewCI(32)
	rng := stats.NewRNG(1)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.RouteR1(join.Key(i), rng, buf[:0])
	}
}

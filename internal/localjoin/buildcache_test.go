package localjoin

import (
	"testing"

	"ewh/internal/join"
)

func TestDigestCombineMatchesChunkStructure(t *testing.T) {
	keys := randKeys(1000, 50, 80)
	whole := HashBuildKey(keys)
	if again := HashBuildKey(keys); again != whole {
		t.Fatal("HashBuildKey is not deterministic")
	}
	// Same content, same chunk structure: identical key.
	split := []ChunkDigest{DigestKeys(keys[:400]), DigestKeys(keys[400:])}
	if CombineDigests(split) != CombineDigests(split) {
		t.Fatal("CombineDigests is not deterministic")
	}
	// Different content must (overwhelmingly) key differently.
	other := append([]join.Key(nil), keys...)
	other[500]++
	if HashBuildKey(other) == whole {
		t.Fatal("distinct content produced the same BuildKey")
	}
	// The fold is order-sensitive: canonical order is part of the identity.
	swapped := []ChunkDigest{split[1], split[0]}
	if CombineDigests(swapped) == CombineDigests(split) {
		t.Fatal("chunk order did not affect the combined key")
	}
	if got := CombineDigests(split).N; got != int64(len(keys)) {
		t.Fatalf("combined N = %d, want %d", got, len(keys))
	}
}

func sealedBuild(keys []join.Key) *Build {
	b := NewBuild()
	b.Insert(keys)
	b.Seal()
	return b
}

func TestBuildCacheHitMissEvict(t *testing.T) {
	r1 := randKeys(2000, 100, 81)
	b1 := sealedBuild(r1)
	c := NewBuildCache(4 * b1.MemBytes())

	k1 := HashBuildKey(r1)
	if c.Get(k1) != nil {
		t.Fatal("empty cache returned a build")
	}
	if got := c.Add(k1, b1); got != b1 {
		t.Fatal("first Add did not return the added build")
	}
	if c.Get(k1) != b1 {
		t.Fatal("Get missed a just-added entry")
	}
	// A racing Add of the same content yields the canonical first entry.
	if got := c.Add(k1, sealedBuild(r1)); got != b1 {
		t.Fatal("duplicate Add did not return the canonical build")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", st.HitRate())
	}

	// Fill past the byte cap: the LRU tail (k1, untouched below) evicts.
	var keys []BuildKey
	for i := 0; i < 6; i++ {
		r := randKeys(2000, 100, 90+uint64(i))
		k := HashBuildKey(r)
		keys = append(keys, k)
		c.Add(k, sealedBuild(r))
	}
	st = c.Stats()
	if st.Bytes > 4*b1.MemBytes() {
		t.Fatalf("cache holds %d bytes, cap %d", st.Bytes, 4*b1.MemBytes())
	}
	if c.Get(k1) != nil {
		t.Fatal("LRU tail survived eviction")
	}
	if c.Get(keys[len(keys)-1]) == nil {
		t.Fatal("most recent entry was evicted")
	}
}

func TestBuildCacheOversizedAndNil(t *testing.T) {
	r := randKeys(5000, 1000, 85)
	b := sealedBuild(r)
	c := NewBuildCache(b.MemBytes() / 2)
	k := HashBuildKey(r)
	if got := c.Add(k, b); got != b {
		t.Fatal("oversized Add did not pass the build through")
	}
	if c.Get(k) != nil || c.Stats().Entries != 0 {
		t.Fatal("oversized build was admitted")
	}

	// A nil cache is the valid always-miss degenerate (cache disabled).
	var nc *BuildCache
	if nc != NewBuildCache(0) {
		t.Fatal("NewBuildCache(0) should return nil")
	}
	if nc.Get(k) != nil {
		t.Fatal("nil cache returned a build")
	}
	if nc.Add(k, b) != b {
		t.Fatal("nil cache Add did not pass through")
	}
	if nc.Stats() != (BuildCacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
}

// TestBuildCacheSharedProbes pins the sharing contract end to end: two "jobs"
// over the same relation content resolve to one build, and both count
// correctly through it.
func TestBuildCacheSharedProbes(t *testing.T) {
	r1 := dupHeavyKeys(3000, 86)
	probeA := dupHeavyKeys(1000, 87)
	probeB := dupHeavyKeys(1000, 88)
	wantA := NestedLoopCount(r1, probeA, join.Equi{})
	wantB := NestedLoopCount(r1, probeB, join.Equi{})

	c := NewBuildCache(1 << 20)
	// Job A: miss, build, publish.
	k := HashBuildKey(r1)
	bA := c.Get(k)
	if bA != nil {
		t.Fatal("unexpected hit")
	}
	bA = c.Add(k, sealedBuild(r1))
	if got := bA.ProbeCount(probeA); got != wantA {
		t.Fatalf("job A count = %d, want %d", got, wantA)
	}
	// Job B: same content (chunked differently upstream doesn't matter here —
	// same flat digest), hit, probe the shared build.
	bB := c.Get(HashBuildKey(append([]join.Key(nil), r1...)))
	if bB != bA {
		t.Fatal("job B did not hit job A's build")
	}
	if got := bB.ProbeCount(probeB); got != wantB {
		t.Fatalf("job B count = %d, want %d", got, wantB)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hit", st)
	}
}

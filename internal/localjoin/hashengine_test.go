package localjoin

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ewh/internal/join"
	"ewh/internal/stats"
)

// dupHeavyKeys draws keys from a tiny domain so almost every key repeats —
// the multiplicity-table stress shape.
func dupHeavyKeys(n int, seed uint64) []join.Key {
	return randKeys(n, 8, seed)
}

// signedKeys mixes negative and positive keys around zero, exercising the
// sign-biased partitioning digit.
func signedKeys(n int, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(200) - 100
	}
	return out
}

func TestEquiLike(t *testing.T) {
	cases := []struct {
		cond join.Condition
		want bool
	}{
		{join.Equi{}, true},
		{join.NewBand(0), true},
		{join.NewBand(1), false},
		{join.Inequality{Op: join.Less}, false},
	}
	for _, c := range cases {
		if got := EquiLike(c.cond); got != c.want {
			t.Errorf("EquiLike(%v) = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestEngineCountMatchesNestedLoop(t *testing.T) {
	cases := []struct {
		name   string
		r1, r2 []join.Key
	}{
		{"random", randKeys(500, 100, 40), randKeys(400, 100, 41)},
		{"dup-heavy", dupHeavyKeys(600, 42), dupHeavyKeys(500, 43)},
		{"all-duplicate", make([]join.Key, 300), make([]join.Key, 200)},
		{"negative", signedKeys(400, 44), signedKeys(300, 45)},
		{"empty-r1", nil, randKeys(50, 10, 46)},
		{"empty-r2", randKeys(50, 10, 47), nil},
		{"both-empty", nil, nil},
	}
	for _, c := range cases {
		want := NestedLoopCount(c.r1, c.r2, join.Equi{})
		if got := EngineCount(c.r1, c.r2); got != want {
			t.Errorf("%s: EngineCount = %d, want %d", c.name, got, want)
		}
		// Symmetry: the equi count cannot depend on build/probe side choice.
		if got := EngineCount(c.r2, c.r1); got != want {
			t.Errorf("%s: EngineCount swapped = %d, want %d", c.name, got, want)
		}
	}
}

func TestEngineCountProperty(t *testing.T) {
	f := func(r1, r2 []int64) bool {
		k1 := make([]join.Key, len(r1))
		for i, v := range r1 {
			k1[i] = v % 64
		}
		k2 := make([]join.Key, len(r2))
		for i, v := range r2 {
			k2[i] = v % 64
		}
		return EngineCount(k1, k2) == NestedLoopCount(k1, k2, join.Equi{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInsertChunkInvariance pins the incremental API's core contract: chunk
// boundaries must not affect the finished build. The same relation inserted
// whole, key-by-key, or in random splits produces identical probe counts.
func TestInsertChunkInvariance(t *testing.T) {
	r1 := dupHeavyKeys(700, 50)
	probe := dupHeavyKeys(500, 51)
	want := EngineCount(r1, probe)

	rng := stats.NewRNG(52)
	for trial := 0; trial < 10; trial++ {
		b := NewBuild()
		for lo := 0; lo < len(r1); {
			hi := lo + 1 + int(rng.Int64n(100))
			if hi > len(r1) {
				hi = len(r1)
			}
			b.Insert(r1[lo:hi])
			lo = hi
		}
		b.Seal()
		if got := b.ProbeCount(probe); got != want {
			t.Fatalf("trial %d: chunked ProbeCount = %d, want %d", trial, got, want)
		}
		if b.Len() != int64(len(r1)) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, b.Len(), len(r1))
		}
		if b.MemBytes() <= 0 {
			t.Fatalf("trial %d: MemBytes = %d, want > 0", trial, b.MemBytes())
		}
	}
}

// TestProbeBeforeSeal pins incremental probing: against a part-built build,
// ProbeCount must count exactly the inserted prefix's matches.
func TestProbeBeforeSeal(t *testing.T) {
	r1 := dupHeavyKeys(400, 53)
	probe := dupHeavyKeys(300, 54)
	b := NewBuild()
	half := len(r1) / 2
	b.Insert(r1[:half])
	if got, want := b.ProbeCount(probe), NestedLoopCount(r1[:half], probe, join.Equi{}); got != want {
		t.Fatalf("mid-build ProbeCount = %d, want %d", got, want)
	}
	b.Insert(r1[half:])
	b.Seal()
	if got, want := b.ProbeCount(probe), NestedLoopCount(r1, probe, join.Equi{}); got != want {
		t.Fatalf("sealed ProbeCount = %d, want %d", got, want)
	}
}

func TestProbeEmit(t *testing.T) {
	r1 := []join.Key{5, -3, 5, 7, 5, -3}
	probe := []join.Key{-3, 9, 5, 5, -3}
	b := NewBuild()
	b.Insert(r1)
	b.Seal()
	type hit struct {
		i int
		m int64
	}
	var got []hit
	b.Probe(probe, func(i int, mult int64) { got = append(got, hit{i, mult}) })
	want := []hit{{0, 2}, {2, 3}, {3, 3}, {4, 2}}
	if len(got) != len(want) {
		t.Fatalf("Probe emitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Probe emitted %v, want %v", got, want)
		}
	}
}

// TestConcurrentBuildProbe runs a probe goroutine against a build that is
// still inserting — the insert-while-probe contract. Under -race this is the
// publication-safety proof; the count assertions pin monotonicity (a probe
// never sees more matches than the full build has) and the exact final
// count.
func TestConcurrentBuildProbe(t *testing.T) {
	r1 := dupHeavyKeys(20000, 60)
	probe := dupHeavyKeys(2000, 61)
	full := NestedLoopCount(r1, probe, join.Equi{})

	b := NewBuild()
	var sealed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const chunk = 256
		for lo := 0; lo < len(r1); lo += chunk {
			hi := lo + chunk
			if hi > len(r1) {
				hi = len(r1)
			}
			b.Insert(r1[lo:hi])
		}
		b.Seal()
		sealed.Store(true)
	}()
	for {
		done := sealed.Load()
		if got := b.ProbeCount(probe); got > full {
			t.Errorf("mid-build ProbeCount = %d exceeds full count %d", got, full)
			break
		}
		b.Probe(probe[:100], func(i int, mult int64) {
			if mult <= 0 {
				t.Errorf("Probe emitted non-positive multiplicity %d", mult)
			}
		})
		if done {
			break
		}
	}
	wg.Wait()
	if got := b.ProbeCount(probe); got != full {
		t.Fatalf("sealed ProbeCount = %d, want %d", got, full)
	}
}

// TestPairTablePartners checks the ordering layer against a reference index:
// every key's partner list is exactly its arrival indices, ascending.
func TestPairTablePartners(t *testing.T) {
	keys := append(dupHeavyKeys(500, 70), signedKeys(200, 71)...)
	tab := NewPairTable(keys)
	if tab.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(keys))
	}
	want := make(map[join.Key][]uint32)
	for i, k := range keys {
		want[k] = append(want[k], uint32(i))
	}
	for k, w := range want {
		got := tab.Partners(k)
		if len(got) != len(w) {
			t.Fatalf("Partners(%d) = %v, want %v", k, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("Partners(%d) = %v, want %v", k, got, w)
			}
		}
	}
	for _, absent := range []join.Key{1 << 40, -(1 << 40), 12345} {
		if _, ok := want[absent]; !ok && tab.Partners(absent) != nil {
			t.Fatalf("Partners(%d) = %v for an absent key", absent, tab.Partners(absent))
		}
	}
	if NewPairTable(nil).Partners(0) != nil {
		t.Fatal("empty table returned partners")
	}
}

// FuzzEngineCount cross-checks the hash engine (one-shot and chunk-split
// incremental) against the nested-loop oracle on fuzz-chosen key bytes.
func FuzzEngineCount(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{1, 2, 3}, uint8(3))
	f.Add([]byte{}, []byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 255, 128, 0}, []byte{255, 128}, uint8(0))
	f.Fuzz(func(t *testing.T, b1, b2 []byte, split uint8) {
		if len(b1) > 1024 || len(b2) > 1024 {
			t.Skip()
		}
		// Single bytes widen to a key domain that mixes signs and collides
		// often; the exact values are irrelevant, coverage of dup/sign
		// patterns is the point.
		mk := func(bs []byte) []join.Key {
			out := make([]join.Key, len(bs))
			for i, v := range bs {
				out[i] = join.Key(int64(v) - 128)
			}
			return out
		}
		r1, r2 := mk(b1), mk(b2)
		want := NestedLoopCount(r1, r2, join.Equi{})
		if got := EngineCount(r1, r2); got != want {
			t.Fatalf("EngineCount = %d, want %d", got, want)
		}
		bld := NewBuild()
		step := int(split)%7 + 1
		for lo := 0; lo < len(r1); lo += step {
			hi := lo + step
			if hi > len(r1) {
				hi = len(r1)
			}
			bld.Insert(r1[lo:hi])
		}
		bld.Seal()
		if got := bld.ProbeCount(r2); got != want {
			t.Fatalf("chunked ProbeCount = %d, want %d", got, want)
		}
	})
}

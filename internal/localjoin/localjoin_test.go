package localjoin

import (
	"testing"
	"testing/quick"

	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/stats"
)

func randKeys(n int, domain int64, seed uint64) []join.Key {
	r := stats.NewRNG(seed)
	out := make([]join.Key, n)
	for i := range out {
		out[i] = r.Int64n(domain)
	}
	return out
}

func TestCountMatchesNestedLoop(t *testing.T) {
	r1 := randKeys(200, 100, 1)
	r2 := randKeys(300, 100, 2)
	conds := []join.Condition{
		join.NewBand(0), join.NewBand(3), join.Equi{},
		join.Inequality{Op: join.Less}, join.Inequality{Op: join.GreaterEq},
	}
	for _, c := range conds {
		want := NestedLoopCount(r1, r2, c)
		if got := Count(r1, r2, c); got != want {
			t.Errorf("%v: Count = %d, want %d", c, got, want)
		}
		if got := AutoCount(r1, r2, c); got != want {
			t.Errorf("%v: AutoCount = %d, want %d", c, got, want)
		}
	}
}

func TestHashCountMatchesNestedLoop(t *testing.T) {
	r1 := randKeys(500, 50, 3)
	r2 := randKeys(400, 50, 4)
	want := NestedLoopCount(r1, r2, join.Equi{})
	if got := HashCount(r1, r2); got != want {
		t.Fatalf("HashCount = %d, want %d", got, want)
	}
	// Symmetry: swapping sides must not change the count.
	if got := HashCount(r2, r1); got != want {
		t.Fatalf("HashCount swapped = %d, want %d", got, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	keys := randKeys(10, 10, 5)
	if Count(nil, keys, join.Equi{}) != 0 || Count(keys, nil, join.Equi{}) != 0 {
		t.Error("empty side should count 0")
	}
	if HashCount(nil, keys) != 0 {
		t.Error("empty side should hash-count 0")
	}
	called := false
	Emit(nil, keys, join.Equi{}, func(a, b join.Key) { called = true })
	if called {
		t.Error("Emit on empty input called fn")
	}
}

func TestEmitMatchesCount(t *testing.T) {
	r1 := randKeys(100, 60, 6)
	r2 := randKeys(120, 60, 7)
	cond := join.NewBand(2)
	var n int64
	Emit(r1, r2, cond, func(a, b join.Key) {
		if !cond.Matches(a, b) {
			t.Fatalf("emitted non-matching pair (%d,%d)", a, b)
		}
		n++
	})
	if want := Count(r1, r2, cond); n != want {
		t.Fatalf("Emit produced %d pairs, Count says %d", n, want)
	}
}

func TestCountProperty(t *testing.T) {
	// Count must equal nested loop for arbitrary small inputs.
	f := func(a, b []int8, beta uint8) bool {
		r1 := make([]join.Key, len(a))
		r2 := make([]join.Key, len(b))
		for i, v := range a {
			r1[i] = join.Key(v)
		}
		for i, v := range b {
			r2[i] = join.Key(v)
		}
		cond := join.NewBand(int64(beta % 8))
		return Count(r1, r2, cond) == NestedLoopCount(r1, r2, cond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSortedAndOwnedMatchNestedLoop(t *testing.T) {
	conds := []join.Condition{
		join.NewBand(0), join.NewBand(4), join.Equi{},
		join.Inequality{Op: join.Less}, join.Inequality{Op: join.GreaterEq},
	}
	for seed := uint64(40); seed < 46; seed++ {
		r1 := randKeys(150+int(seed*17), 90, seed)
		r2 := randKeys(130+int(seed*13), 90, seed+100)
		for _, c := range conds {
			want := NestedLoopCount(r1, r2, c)
			s1 := append([]join.Key(nil), r1...)
			s2 := append([]join.Key(nil), r2...)
			if got := AutoCountOwned(s1, s2, c); got != want {
				t.Errorf("seed %d %v: AutoCountOwned = %d, want %d", seed, c, got, want)
			}
			// AutoCountOwned may have sorted s1/s2 in place; CountSorted over
			// explicitly sorted copies must agree regardless.
			s1 = append(s1[:0], r1...)
			s2 = append(s2[:0], r2...)
			keysort.Sort(s1)
			keysort.Sort(s2)
			if got := CountSorted(s1, s2, c); got != want {
				t.Errorf("seed %d %v: CountSorted = %d, want %d", seed, c, got, want)
			}
		}
	}
}

func BenchmarkCountBand(b *testing.B) {
	r1 := randKeys(100000, 50000, 8)
	r2 := randKeys(100000, 50000, 9)
	cond := join.NewBand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(r1, r2, cond)
	}
}

func BenchmarkHashCount(b *testing.B) {
	r1 := randKeys(100000, 50000, 10)
	r2 := randKeys(100000, 50000, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashCount(r1, r2)
	}
}

func TestMergeCountMatchesCount(t *testing.T) {
	r1 := randKeys(800, 400, 20)
	r2 := randKeys(700, 400, 21)
	conds := []join.Condition{
		join.NewBand(0), join.NewBand(3), join.Equi{},
		join.Inequality{Op: join.Less}, join.Inequality{Op: join.GreaterEq},
	}
	for _, c := range conds {
		if got, want := MergeCount(r1, r2, c), Count(r1, r2, c); got != want {
			t.Errorf("%v: MergeCount = %d, Count = %d", c, got, want)
		}
	}
	if MergeCount(nil, r2, join.Equi{}) != 0 {
		t.Error("empty side should merge-count 0")
	}
}

func TestMergeCountProperty(t *testing.T) {
	f := func(a, b []int8, beta uint8) bool {
		r1 := make([]join.Key, len(a))
		r2 := make([]join.Key, len(b))
		for i, v := range a {
			r1[i] = join.Key(v)
		}
		for i, v := range b {
			r2[i] = join.Key(v)
		}
		cond := join.NewBand(int64(beta % 8))
		return MergeCount(r1, r2, cond) == NestedLoopCount(r1, r2, cond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMergeCountBand(b *testing.B) {
	r1 := randKeys(100000, 50000, 22)
	r2 := randKeys(100000, 50000, 23)
	cond := join.NewBand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeCount(r1, r2, cond)
	}
}

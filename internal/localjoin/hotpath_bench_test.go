package localjoin

import (
	"testing"

	"ewh/internal/join"
	"ewh/internal/keysort"
	"ewh/internal/workload"
)

// BenchmarkLocalJoinCount measures the band-join count on one worker's
// received tuples — the reduce-phase hot path of the engine.
func BenchmarkLocalJoinCount(b *testing.B) {
	r1 := randKeys(1<<17, 1<<16, 30)
	r2 := randKeys(1<<17, 1<<16, 31)
	cond := join.NewBand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(r1, r2, cond)
	}
}

// BenchmarkLocalJoinCountInequality measures the inequality count, whose
// joinable ranges are half-open and whose output is quadratic — the count
// must still be linear after sorting.
func BenchmarkLocalJoinCountInequality(b *testing.B) {
	r1 := randKeys(1<<17, 1<<16, 32)
	r2 := randKeys(1<<17, 1<<16, 33)
	cond := join.Inequality{Op: join.LessEq}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(r1, r2, cond)
	}
}

// zipfKeys draws a Zipf-skewed workload — the paper's stressor, and the
// distribution where duplicate-heavy partitions separate the engines.
func zipfKeys(n int, domain int64, z float64, seed uint64) []join.Key {
	return workload.Zipfian(n, domain, z, seed)
}

// BenchmarkLocalJoinEngines is the engine × condition × distribution matrix
// over one worker's hot path: every local count engine against the equi and
// band conditions it serves, on uniform, duplicate-heavy and Zipf-skewed
// keys. Count/AutoCount copy-and-sort per call (the non-owning entry
// points); CountSorted amortizes the sort outside the loop; HashCount is the
// map-based baseline the radix-hash engine replaces; EngineCount and
// MergeCount are the two real engines behind exec's selection knob.
func BenchmarkLocalJoinEngines(b *testing.B) {
	const n = 1 << 17
	dists := []struct {
		name   string
		r1, r2 []join.Key
	}{
		{"uniform", randKeys(n, 1<<16, 34), randKeys(n, 1<<16, 35)},
		{"dups", randKeys(n, 1<<10, 36), randKeys(n, 1<<10, 37)},
		{"zipf", zipfKeys(n, 1<<16, 0.9, 38), zipfKeys(n, 1<<16, 0.9, 39)},
	}
	for _, d := range dists {
		s1 := append([]join.Key(nil), d.r1...)
		s2 := append([]join.Key(nil), d.r2...)
		keysort.Sort(s1)
		keysort.Sort(s2)
		band := join.NewBand(2)
		engines := []struct {
			name string
			run  func() int64
		}{
			{"equi/hash-engine", func() int64 { return EngineCount(d.r1, d.r2) }},
			{"equi/hash-map", func() int64 { return HashCount(d.r1, d.r2) }},
			{"equi/merge-sorted", func() int64 { return CountSorted(s1, s2, join.Equi{}) }},
			{"equi/merge-count", func() int64 { return Count(d.r1, d.r2, join.Equi{}) }},
			{"equi/auto", func() int64 { return AutoCount(d.r1, d.r2, join.Equi{}) }},
			{"band/merge-sorted", func() int64 { return CountSorted(s1, s2, band) }},
			{"band/merge-count", func() int64 { return Count(d.r1, d.r2, band) }},
			{"band/auto", func() int64 { return AutoCount(d.r1, d.r2, band) }},
		}
		for _, e := range engines {
			b.Run(d.name+"/"+e.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink = e.run()
				}
			})
		}
	}
}

// BenchmarkBuildInsertProbe isolates the incremental API: chunked Insert
// (the wire-arrival shape) and sealed ProbeCount, separately.
func BenchmarkBuildInsertProbe(b *testing.B) {
	const n = 1 << 17
	r1 := zipfKeys(n, 1<<16, 0.9, 40)
	probe := zipfKeys(n, 1<<16, 0.9, 41)
	b.Run("insert-chunked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld := NewBuild()
			for lo := 0; lo < len(r1); lo += 4096 {
				hi := lo + 4096
				if hi > len(r1) {
					hi = len(r1)
				}
				bld.Insert(r1[lo:hi])
			}
			bld.Seal()
		}
	})
	bld := NewBuild()
	bld.Insert(r1)
	bld.Seal()
	b.Run("probe-sealed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = bld.ProbeCount(probe)
		}
	})
}

// sink defeats dead-code elimination of benchmark loop bodies.
var sink int64

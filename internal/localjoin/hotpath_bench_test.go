package localjoin

import (
	"testing"

	"ewh/internal/join"
)

// BenchmarkLocalJoinCount measures the band-join count on one worker's
// received tuples — the reduce-phase hot path of the engine.
func BenchmarkLocalJoinCount(b *testing.B) {
	r1 := randKeys(1<<17, 1<<16, 30)
	r2 := randKeys(1<<17, 1<<16, 31)
	cond := join.NewBand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(r1, r2, cond)
	}
}

// BenchmarkLocalJoinCountInequality measures the inequality count, whose
// joinable ranges are half-open and whose output is quadratic — the count
// must still be linear after sorting.
func BenchmarkLocalJoinCountInequality(b *testing.B) {
	r1 := randKeys(1<<17, 1<<16, 32)
	r2 := randKeys(1<<17, 1<<16, 33)
	cond := join.Inequality{Op: join.LessEq}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(r1, r2, cond)
	}
}
